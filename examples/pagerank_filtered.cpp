//===- examples/pagerank_filtered.cpp - Fused tensor + relational --------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The Section 8.3 motivation made concrete: a PageRank-style iteration
// where low-scoring pages are filtered out of the propagation — a sparse
// matrix-vector multiply fused with a relational selection. The filter is
// an indexed stream intersected at the row level, so filtered-out pages
// cost nothing (Figure 21's effect).
//
// Build and run:  ./examples/pagerank_filtered
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"

#include <cstdio>

using namespace etch;

int main() {
  const Idx Pages = 50'000;
  const size_t Links = 400'000;
  const double Damping = 0.85;
  const int Iterations = 10;
  const double ScoreFloor = 1.2 / static_cast<double>(Pages);

  // A random link matrix, column-normalised on the fly via out-degrees.
  Rng R(2024);
  auto Coo = randomCoo(R, Pages, Pages, Links);
  std::vector<double> OutDeg(static_cast<size_t>(Pages), 0.0);
  for (const auto &E : Coo)
    OutDeg[static_cast<size_t>(E.Col)] += 1.0;
  for (auto &E : Coo)
    E.Val = 1.0 / OutDeg[static_cast<size_t>(E.Col)];
  auto A = CsrMatrix<double>::fromCoo(Pages, Pages, Coo);

  DenseVector<double> Rank(Pages, 1.0 / static_cast<double>(Pages));
  DenseVector<double> Next(Pages);

  for (int It = 0; It < Iterations; ++It) {
    // Relational selection: pages whose current score clears the floor.
    SparseVector<double> Keep(Pages);
    for (Idx P = 0; P < Pages; ++P)
      if (Rank.Val[static_cast<size_t>(P)] >= ScoreFloor)
        Keep.push(P, 1.0);

    // Fused filtered SpMV: next = damping * A * rank, over kept rows only.
    std::fill(Next.Val.begin(), Next.Val.end(), 0.0);
    kernels::filteredSpmvFused(A, Rank, Keep, Next);

    double Base = (1.0 - Damping) / static_cast<double>(Pages);
    for (Idx P = 0; P < Pages; ++P)
      Next.Val[static_cast<size_t>(P)] =
          Base + Damping * Next.Val[static_cast<size_t>(P)];
    std::swap(Rank.Val, Next.Val);

    double Mass = 0.0;
    for (double V : Rank.Val)
      Mass += V;
    std::printf("iteration %2d: %zu pages above floor, rank mass %.4f\n",
                It + 1, Keep.nnz(), Mass);
  }

  // Report the top pages.
  std::vector<Idx> Order(static_cast<size_t>(Pages));
  for (Idx P = 0; P < Pages; ++P)
    Order[static_cast<size_t>(P)] = P;
  std::partial_sort(Order.begin(), Order.begin() + 5, Order.end(),
                    [&](Idx L, Idx Rr) {
                      return Rank.Val[static_cast<size_t>(L)] >
                             Rank.Val[static_cast<size_t>(Rr)];
                    });
  std::puts("\ntop pages:");
  for (int K = 0; K < 5; ++K)
    std::printf("  page %6lld  score %.6f\n",
                static_cast<long long>(Order[static_cast<size_t>(K)]),
                Rank.Val[static_cast<size_t>(Order[static_cast<size_t>(K)])]);
  return 0;
}

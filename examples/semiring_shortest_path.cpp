//===- examples/semiring_shortest_path.cpp - Swapping the semiring -------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Contraction expressions are parameterised by the semiring (Section 4.3):
// the same SpMV-shaped kernel computes single-source shortest paths when
// the scalars are (min, +) instead of (+, ·) — d'(i) = min_j (A(i,j) +
// d(j)) is exactly y(i) = Σ_j A(i,j) · x(j) in the tropical semiring.
// Iterating it to a fixed point is Bellman-Ford. No iteration code changes;
// only the scalar algebra does.
//
// Build and run:  ./examples/semiring_shortest_path
//
//===----------------------------------------------------------------------===//

#include "formats/matrices.h"
#include "streams/combinators.h"
#include "streams/eval.h"
#include "support/rng.h"

#include <cstdio>
#include <limits>

using namespace etch;

int main() {
  using MP = MinPlusSemiring;
  const Idx N = 12;
  const double Inf = std::numeric_limits<double>::infinity();

  // A small weighted digraph as a CSR "matrix" over the tropical semiring.
  std::vector<CooEntry<double>> Edges = {
      {0, 1, 4.0}, {0, 2, 1.0}, {2, 1, 2.0}, {1, 3, 5.0},  {2, 3, 8.0},
      {3, 4, 3.0}, {4, 5, 2.0}, {1, 5, 20.0}, {5, 6, 1.0}, {3, 7, 2.0},
      {7, 8, 2.0}, {8, 9, 2.0}, {6, 9, 10.0}, {9, 10, 1.0}, {2, 11, 30.0},
      {10, 11, 1.0}};
  auto A = CsrMatrix<double>::fromCoo(N, N, Edges);

  // Distance vector, initialised to "zero" of (min, +): +infinity, with
  // the source at the multiplicative identity 0.
  std::vector<double> Dist(static_cast<size_t>(N), Inf);
  Dist[0] = 0.0;

  // Bellman-Ford: relax all edges via the tropical SpMV until fixpoint.
  // Note d'(i) = min(d(i), min_j (A(i,j)+d(j))) with edges stored as
  // A(dst, src) — transpose by iterating rows as destinations.
  std::vector<CooEntry<double>> Rev;
  for (const auto &E : Edges)
    Rev.push_back({E.Col, E.Row, E.Val});
  auto AT = CsrMatrix<double>::fromCoo(N, N, Rev);

  for (Idx Round = 0; Round < N; ++Round) {
    bool Changed = false;
    forEach(AT.stream(), [&](Idx I, auto Row) {
      // min_j (A(j,i)... : Row pairs incoming edges with current Dist.
      double Best = sumAll<MP>(
          mulDenseLocate<MP>(std::move(Row), Dist.data()));
      if (Best < Dist[static_cast<size_t>(I)]) {
        Dist[static_cast<size_t>(I)] = Best;
        Changed = true;
      }
    });
    if (!Changed)
      break;
  }

  std::puts("single-source shortest paths from node 0 ((min,+) SpMV):");
  for (Idx I = 0; I < N; ++I) {
    if (Dist[static_cast<size_t>(I)] == Inf)
      std::printf("  node %2lld: unreachable\n", static_cast<long long>(I));
    else
      std::printf("  node %2lld: %g\n", static_cast<long long>(I),
                  Dist[static_cast<size_t>(I)]);
  }
  return 0;
}

//===- examples/triangle_wcoj.cpp - Worst-case optimal joins -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The triangle query Σ_{a,b,c} R(a,b)·S(b,c)·T(c,a) on the adversarial
// instance of Ngo et al. (Figure 20). Demonstrates that the loop structure
// induced by nested stream multiplication is GenericJoin: the fused count
// scales linearly while the pairwise plan's intermediate grows
// quadratically. Also runs all engines on a random graph to show
// agreement.
//
// Build and run:  ./examples/triangle_wcoj
//
//===----------------------------------------------------------------------===//

#include "relational/prepared.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>

using namespace etch;

int main() {
  std::puts("Worst-case family ({0} x [n]) u ([n] x {0}):\n");
  ResultTable T({"n", "triangles", "fused_ms", "pairwise_ms",
                 "pairwise_intermediate"});
  for (Idx N : {Idx(512), Idx(1024), Idx(2048), Idx(4096)}) {
    EdgeList G = triangleWorstCase(N);
    auto P = trianglePrepare(G, G, G);

    Timer TF;
    int64_t Count = triangleFused(*P);
    double FusedMs = TF.millis();

    Timer TP;
    int64_t Count2 = triangleColumnar(G, G, G);
    double PairMs = TP.millis();
    if (Count != Count2) {
      std::puts("engines disagree!");
      return 1;
    }
    // R ⋈ S on b pairs every (a,0) with every (0,c): ~n² rows.
    T.addRow({ResultTable::num(static_cast<int64_t>(N)),
              ResultTable::num(Count), ResultTable::num(FusedMs),
              ResultTable::num(PairMs),
              ResultTable::num(static_cast<int64_t>(N) *
                               static_cast<int64_t>(N))});
  }
  T.print();

  std::puts("\nRandom tripartite instance (all engines agree):");
  Rng R(7);
  EdgeList Ra = randomEdges(R, 2000, 20000);
  EdgeList Sb = randomEdges(R, 2000, 20000);
  EdgeList Tc = randomEdges(R, 2000, 20000);
  std::printf("  fused     : %lld\n",
              static_cast<long long>(triangleFused(Ra, Sb, Tc)));
  std::printf("  columnar  : %lld\n",
              static_cast<long long>(triangleColumnar(Ra, Sb, Tc)));
  std::printf("  row store : %lld\n",
              static_cast<long long>(triangleRowStore(Ra, Sb, Tc)));
  return 0;
}

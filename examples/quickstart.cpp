//===- examples/quickstart.cpp - The Figure 2 example, end to end --------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The paper's running example: a fused three-way sparse vector product
// out = Σ_i x(i) · y(i) · z(i), shown four ways:
//
//   1. the contraction expression (language L) and its inferred shape;
//   2. direct execution through the indexed-stream model;
//   3. the Etch pipeline: lowering to the imperative IR P and running on
//      the in-process VM;
//   4. the generated C (what Figure 2's right-hand listing shows).
//
// Build and run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "compiler/c_emit.h"
#include "compiler/frontend.h"
#include "core/eval.h"
#include "formats/vectors.h"
#include "streams/combinators.h"
#include "streams/eval.h"

#include <cstdio>

using namespace etch;

int main() {
  // Three sparse vectors over an index set of size 10.
  SparseVector<double> X(10), Y(10), Z(10);
  X.push(1, 2.0);
  X.push(4, 3.0);
  X.push(7, 5.0);
  Y.push(0, 1.0);
  Y.push(4, 2.0);
  Y.push(7, 2.0);
  Y.push(9, 9.0);
  Z.push(4, 10.0);
  Z.push(7, 3.0);
  Z.push(8, 1.0);

  // 1. The contraction expression and its type (Figure 4's rules).
  Attr I = Attr::named("i");
  ExprPtr E = Expr::var("x") * Expr::var("y") * Expr::var("z");
  TypeContext Types{{"x", {I}}, {"y", {I}}, {"z", {I}}};
  auto Shape = inferShape(Expr::sum(I, E), Types);
  std::printf("expression:  sum_i (x * y * z)\n");
  std::printf("shape:       %s (scalar after contraction)\n\n",
              shapeToString(*Shape).c_str());

  // 2. Direct execution through the indexed-stream model (Section 5).
  using S = F64Semiring;
  double Fused = sumAll<S>(mulStreams<S>(
      X.stream(), mulStreams<S>(Y.stream(), Z.stream())));
  std::printf("stream model result: %g\n", Fused);

  // 3. The Etch compiler pipeline (Section 7): lower to the imperative IR
  //    P, optimize it through the pass pipeline, and execute on the VM.
  LowerCtx Ctx;
  Ctx.CollectStats = true; // Record per-pass IR statistics.
  Ctx.setDim(I, 10);
  Ctx.bind(sparseVecBinding("x", I));
  Ctx.bind(sparseVecBinding("y", I));
  Ctx.bind(sparseVecBinding("z", I));
  PRef Prog = compileFullContraction(Ctx, E, "out");

  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);
  bindSparseVector(M, "z", Z);
  VmRunResult Run = vmRun(Prog, M);
  if (Run.Error) {
    std::printf("vm error: %s\n", Run.Error->c_str());
    return 1;
  }
  std::printf("compiled (VM) result: %g\n\n",
              std::get<double>(*M.getScalar("out")));

  // The pass pipeline at work: per-pass IR node counts, and the VM step
  // count against the unoptimized program.
  std::printf("---- pass statistics (O%d) ----\n%s",
              Ctx.OptLevel, Ctx.LastPipeline.toString().c_str());
  {
    LowerCtx Raw;
    Raw.OptLevel = 0;
    Raw.setDim(I, 10);
    Raw.bind(sparseVecBinding("x", I));
    Raw.bind(sparseVecBinding("y", I));
    Raw.bind(sparseVecBinding("z", I));
    VmMemory M0;
    bindSparseVector(M0, "x", X);
    bindSparseVector(M0, "y", Y);
    bindSparseVector(M0, "z", Z);
    VmRunResult Run0 = vmRun(compileFullContraction(Raw, E, "out"), M0);
    std::printf("VM steps: %lld unoptimized -> %lld optimized\n\n",
                static_cast<long long>(Run0.Steps),
                static_cast<long long>(Run.Steps));
  }

  // 4. The generated C program (compare with Figure 2).
  std::printf("---- generated C ----\n%s",
              emitCProgram(Prog, M, {{"out"}, {}}).c_str());
  return 0;
}

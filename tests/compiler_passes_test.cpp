//===- tests/compiler_passes_test.cpp - Pass pipeline over P -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Tests for the compiler's pass-pipeline layer: the rewriter
// infrastructure, the IR verifier (accepting the compiled corpus,
// rejecting ill-formed programs), the individual passes, and the
// end-to-end properties the pipeline promises — bit-identical VM results
// across opt levels with strictly fewer VM steps on the Fig. 2 kernel and
// a TPC-H revenue query, plus golden checks on the emitted C.
//
//===----------------------------------------------------------------------===//

#include "compiler/c_emit.h"
#include "compiler/frontend.h"
#include "compiler/passes.h"
#include "relational/tpch.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <regex>

using namespace etch;

namespace {

Attr attrAt(size_t K) {
  static const std::array<Attr, 2> As = {Attr::named("pp_o"),
                                         Attr::named("pp_l")};
  return As[K];
}
Attr attrO() { return attrAt(0); }
Attr attrL() { return attrAt(1); }

ERef eVarB(std::string N) { return EExpr::var(std::move(N), ImpType::Bool); }
ERef eVarF(std::string N) { return EExpr::var(std::move(N), ImpType::F64); }
ERef eMulI(ERef A, ERef B) {
  return EExpr::call(Ops::mulI(), {std::move(A), std::move(B)});
}

SparseVector<double> vec(Idx Size, std::vector<std::pair<Idx, double>> Es) {
  SparseVector<double> V(Size);
  for (auto [I, X] : Es)
    V.push(I, X);
  return V;
}

//===----------------------------------------------------------------------===//
// Rewriter infrastructure
//===----------------------------------------------------------------------===//

TEST(Rewriter, NoopRewritePreservesSharing) {
  ERef E = eAddI(eVarI("a"), eMaxI(eVarI("b"), eConstI(3)));
  ERef Same = rewriteExpr(E, [](const ERef &) -> ERef { return nullptr; });
  EXPECT_EQ(Same, E); // Pointer-equal: nothing was reallocated.

  PRef P = PStmt::whileLoop(eLtI(eVarI("p"), eVarI("e")),
                            PStmt::storeVar("p", eAddI(eVarI("p"),
                                                       eConstI(1))));
  PRef SameP = rewriteProgram(P, nullptr, nullptr);
  EXPECT_EQ(SameP, P);
}

TEST(Rewriter, SubstituteVar) {
  ERef E = eAddI(eVarI("a"), eMaxI(eVarI("t"), eConstI(3)));
  ERef R = substituteVar(E, "t", eConstI(5));
  EXPECT_EQ(R->toString(), eAddI(eVarI("a"), eMaxI(eConstI(5),
                                                   eConstI(3)))->toString());
  // Untouched operand is shared, not copied.
  EXPECT_EQ(R->args()[0], E->args()[0]);
}

TEST(Rewriter, ExprEqualsIsStructural) {
  EXPECT_TRUE(exprEquals(eAddI(eVarI("x"), eConstI(1)),
                         eAddI(eVarI("x"), eConstI(1))));
  EXPECT_FALSE(exprEquals(eAddI(eVarI("x"), eConstI(1)),
                          eAddI(eVarI("x"), eConstI(2))));
  EXPECT_FALSE(exprEquals(eConstI(1), eConstF(1.0)));
}

TEST(Rewriter, ConjunctionFlattening) {
  ERef A = eLtI(eVarI("p"), eVarI("e"));
  ERef B = eEqI(eVarI("i"), eConstI(4));
  ERef C = eNot(eVarB("done"));
  std::vector<ERef> Conj;
  flattenConjuncts(eAnd(eAnd(A, B), C), Conj);
  ASSERT_EQ(Conj.size(), 3u);
  EXPECT_TRUE(exprEquals(Conj[0], A));
  EXPECT_TRUE(exprEquals(Conj[1], B));
  EXPECT_TRUE(exprEquals(buildConjunction({}), eBool(true)));
}

//===----------------------------------------------------------------------===//
// Individual passes
//===----------------------------------------------------------------------===//

TEST(Passes, ConstantFolding) {
  PRef P = PStmt::storeVar("x", eMulI(eAddI(eConstI(1), eConstI(2)),
                                      eVarI("y")));
  PRef F = foldConstantsPass(P);
  EXPECT_EQ(F->valueExpr()->toString(),
            eMulI(eConstI(3), eVarI("y"))->toString());

  // Division by zero must NOT fold; the trap stays at runtime.
  PRef D = PStmt::storeVar(
      "x", EExpr::call(Ops::divI(), {eConstI(4), eConstI(0)}));
  EXPECT_EQ(foldConstantsPass(D), D);

  // Lazy ops with a constant first argument short-circuit.
  PRef L = PStmt::storeVar("b", eAnd(eBool(true), eVarB("c")));
  EXPECT_EQ(foldConstantsPass(L)->valueExpr()->toString(),
            eVarB("c")->toString());
}

TEST(Passes, AlgebraicSimplification) {
  auto Simp1 = [](ERef E) {
    return simplifyAlgebraPass(PStmt::storeVar("r", std::move(E)))
        ->valueExpr();
  };
  EXPECT_EQ(Simp1(eAddI(eVarI("x"), eConstI(0)))->toString(),
            eVarI("x")->toString());
  EXPECT_EQ(Simp1(eMulI(eVarI("x"), eConstI(0)))->toString(),
            eConstI(0)->toString());
  // The dense-level skip shape: max(i, i + 1) == i + 1.
  EXPECT_EQ(Simp1(eMaxI(eVarI("i"), eAddI(eVarI("i"), eConstI(1))))
                ->toString(),
            eAddI(eVarI("i"), eConstI(1))->toString());
  EXPECT_EQ(Simp1(eMinI(eVarI("i"), eI64Max()))->toString(),
            eVarI("i")->toString());
  // 0.0 * x is NOT folded at f64 (NaN/Inf), but x * 1.0 is.
  ERef MF0 = EExpr::call(Ops::mulF(), {eConstF(0.0), eVarF("v")});
  EXPECT_EQ(Simp1(MF0)->toString(), MF0->toString());
  EXPECT_EQ(Simp1(EExpr::call(Ops::mulF(), {eVarF("v"), eConstF(1.0)}))
                ->toString(),
            eVarF("v")->toString());
  // A huge addend could wrap x + c below x; the max(x, x+c) rewrite is
  // capped to small constants and must leave this alone.
  ERef Big = eMaxI(eVarI("i"), eAddI(eVarI("i"), eConstI(5000)));
  EXPECT_EQ(Simp1(Big)->toString(), Big->toString());
}

TEST(Passes, ControlFlowCleanup) {
  PRef A = PStmt::storeVar("x", eConstI(1));
  PRef B = PStmt::storeVar("x", eConstI(2));
  EXPECT_EQ(cleanControlFlowPass(PStmt::branch(eBool(true), A, B)), A);
  EXPECT_EQ(cleanControlFlowPass(PStmt::whileLoop(eBool(false), A))->kind(),
            PKind::Noop);
  EXPECT_EQ(cleanControlFlowPass(PStmt::storeVar("x", eVarI("x")))->kind(),
            PKind::Noop);
}

TEST(Passes, DeadStoreEliminationRespectsLiveOut) {
  // skc is declared and never read: dead. out is declared and never read,
  // but listed live-out: kept. ext is never declared in-program: kept.
  PRef P = PStmt::seq({PStmt::declVar("skc", ImpType::I64, eConstI(0)),
                       PStmt::declVar("out", ImpType::F64, eConstF(0.0)),
                       PStmt::storeVar("out", eConstF(2.0)),
                       PStmt::storeVar("ext", eConstI(7))});
  PipelineOptions Opts;
  Opts.LiveOut = {"out"};
  PRef R = eliminateDeadStoresPass(P, Opts);
  std::string S = R->toString();
  EXPECT_EQ(S.find("skc"), std::string::npos);
  EXPECT_NE(S.find("out"), std::string::npos);
  EXPECT_NE(S.find("ext"), std::string::npos);
}

TEST(Passes, ForwardSubstitution) {
  // t = i; i = max(i, t + 1)  ==>  i = max(i, i + 1) — the latch shape the
  // skip snapshot produces at dense levels.
  PRef P = PStmt::seq(
      {PStmt::declVar("t", ImpType::I64, eVarI("i")),
       PStmt::storeVar("i", eMaxI(eVarI("i"), eAddI(eVarI("t"),
                                                    eConstI(1))))});
  PRef R = forwardSubstitutePass(P);
  ASSERT_EQ(R->kind(), PKind::StoreVar);
  EXPECT_EQ(R->valueExpr()->toString(),
            eMaxI(eVarI("i"), eAddI(eVarI("i"), eConstI(1)))->toString());
}

TEST(Passes, ForwardSubstitutionRespectsLiveOut) {
  PRef P = PStmt::seq(
      {PStmt::declVar("t", ImpType::I64, eAddI(eVarI("i"), eConstI(1))),
       PStmt::storeVar("out", eVarI("t"))});
  // By default t is a pure temporary and is inlined away.
  EXPECT_EQ(forwardSubstitutePass(P)->kind(), PKind::StoreVar);
  // A live-out temporary's declaration must survive for the caller's
  // post-run read.
  PipelineOptions Opts;
  Opts.LiveOut = {"t"};
  EXPECT_EQ(forwardSubstitutePass(P, Opts), P);
}

TEST(Passes, ImpliedConditionElimination) {
  // while (a && b) { if (a && b && c) .. else .. } — the branch keeps only
  // c; the loop's own conjuncts are facts inside the body (the body writes
  // nothing they read).
  ERef A = eLtI(eVarI("p"), eVarI("e"));
  ERef B = eLtI(eVarI("q"), eVarI("f"));
  ERef C = eEqI(eVarI("i"), eConstI(3));
  PRef Branch = PStmt::branch(eAnd(eAnd(A, B), C),
                              PStmt::storeVar("acc", eConstI(1)),
                              PStmt::noop());
  PRef Loop = PStmt::whileLoop(
      eAnd(A, B), PStmt::seq2(Branch, PStmt::storeVar("i", eConstI(9))));
  PRef R = eliminateImpliedConditionsPass(Loop);
  const PRef &NewBranch = R->children()[0]->children()[0];
  ASSERT_EQ(NewBranch->kind(), PKind::Branch);
  EXPECT_TRUE(exprEquals(NewBranch->cond(), C));

  // A fact invalidated by an intervening write must survive in the
  // condition: here the branch writes p before re-testing A.
  PRef Clobber = PStmt::whileLoop(
      A, PStmt::seq2(PStmt::storeVar("p", eAddI(eVarI("p"), eConstI(1))),
                     PStmt::branch(A, PStmt::storeVar("acc", eConstI(1)),
                                   PStmt::noop())));
  PRef R2 = eliminateImpliedConditionsPass(Clobber);
  const PRef &Kept = R2->children()[0]->children()[1];
  ASSERT_EQ(Kept->kind(), PKind::Branch);
  EXPECT_TRUE(exprEquals(Kept->cond(), A));
}

TEST(Passes, LoopInvariantHoisting) {
  // end = pos[1] is re-read from the array every iteration of the
  // condition; it is invariant, so it is hoisted into a fresh temporary.
  ERef End = EExpr::access("pos", ImpType::I64, eConstI(1));
  PRef Loop = PStmt::whileLoop(
      eLtI(eVarI("p"), End),
      PStmt::storeVar("p", eAddI(eVarI("p"), eConstI(1))));
  PRef R = hoistLoopInvariantsPass(Loop);
  ASSERT_EQ(R->kind(), PKind::Seq);
  ASSERT_EQ(R->children().size(), 2u);
  EXPECT_EQ(R->children()[0]->kind(), PKind::DeclVar);
  EXPECT_TRUE(exprEquals(R->children()[0]->valueExpr(), End));
  // The loop condition now reads the temporary, not the array.
  EXPECT_EQ(R->children()[1]->cond()->toString().find("pos"),
            std::string::npos);
}

TEST(Passes, HoistingSkipsLazilyGuardedConditionSubtrees) {
  // while (p < pos[1] && A[j] == v) { p = p + 1 }: pos[1] sits on the
  // unconditionally-evaluated spine of the condition and hoists, but
  // A[j] == v is guarded by the short-circuit — when p >= pos[1] initially
  // the original program never evaluates A[j] (which may be out of
  // bounds), so it must stay inside the guard.
  ERef Spine =
      eLtI(eVarI("p"), EExpr::access("pos", ImpType::I64, eConstI(1)));
  ERef Guarded =
      eEqI(EExpr::access("A", ImpType::I64, eVarI("j")), eVarI("v"));
  PRef Loop = PStmt::whileLoop(
      eAnd(Spine, Guarded),
      PStmt::storeVar("p", eAddI(eVarI("p"), eConstI(1))));
  PRef R = hoistLoopInvariantsPass(Loop);
  ASSERT_EQ(R->kind(), PKind::Seq);
  // Exactly one hoisted declaration: the pos[1] read.
  ASSERT_EQ(R->children().size(), 2u);
  ASSERT_EQ(R->children()[0]->kind(), PKind::DeclVar);
  EXPECT_NE(R->children()[0]->valueExpr()->toString().find("pos"),
            std::string::npos);
  // The guarded access is still evaluated (lazily) inside the condition.
  EXPECT_NE(R->children()[1]->cond()->toString().find("A"),
            std::string::npos);
}

TEST(Passes, HoistingAvoidsExternalNamesAndIsDeterministic) {
  // The body reads a caller-bound scalar that happens to carry the
  // hoister's preferred fresh name; the new declaration must not shadow
  // it, and two runs over the same program must emit identical names.
  ERef End = EExpr::access("pos", ImpType::I64, eConstI(1));
  PRef Loop = PStmt::whileLoop(
      eLtI(eVarI("p"), End),
      PStmt::storeVar("p", eAddI(eVarI("p"), eVarI("liv0"))));
  PRef R1 = hoistLoopInvariantsPass(Loop);
  ASSERT_EQ(R1->kind(), PKind::Seq);
  ASSERT_EQ(R1->children()[0]->kind(), PKind::DeclVar);
  EXPECT_NE(R1->children()[0]->name(), "liv0");
  EXPECT_EQ(hoistLoopInvariantsPass(Loop)->toString(), R1->toString());
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, AcceptsCompiledCorpus) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {9, 9.0}});
  for (int Opt = 0; Opt <= 2; ++Opt) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrO(), 10);
    Ctx.bind(sparseVecBinding("x", attrO()));
    Ctx.bind(sparseVecBinding("y", attrO()));
    PRef P = compileFullContraction(Ctx, Expr::var("x") * Expr::var("y"),
                                    "out");
    auto Err = verifyProgram(P);
    EXPECT_FALSE(Err.has_value()) << "O" << Opt << ": " << *Err;
  }
}

TEST(Verifier, RejectsTypeInconsistentStore) {
  PRef P = PStmt::seq2(PStmt::declVar("v", ImpType::I64, eConstI(0)),
                       PStmt::storeVar("v", eConstF(1.0)));
  auto Err = verifyProgram(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("'v'"), std::string::npos);
}

TEST(Verifier, RejectsScalarArrayConflict) {
  PRef P = PStmt::seq2(PStmt::declArr("a", ImpType::F64, eConstI(4)),
                       PStmt::storeVar("a", eConstI(1)));
  auto Err = verifyProgram(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("scalar and as array"), std::string::npos);
}

TEST(Verifier, RejectsStoreBeforeDecl) {
  PRef P = PStmt::seq2(PStmt::storeVar("v", eConstI(1)),
                       PStmt::declVar("v", ImpType::I64, eConstI(0)));
  auto Err = verifyProgram(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("before"), std::string::npos);
}

TEST(Verifier, DeclMustDominateUse) {
  // Declared only in the then-arm: a read after the branch is undefined
  // on the else path.
  PRef OneArm = PStmt::seq2(
      PStmt::branch(eVarB("c"),
                    PStmt::declVar("v", ImpType::I64, eConstI(1)),
                    PStmt::noop()),
      PStmt::storeVar("out", eVarI("v")));
  auto Err = verifyProgram(OneArm);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("'v'"), std::string::npos);

  // Declared in both arms: the declaration dominates the continuation.
  PRef BothArms = PStmt::seq2(
      PStmt::branch(eVarB("c"),
                    PStmt::declVar("v", ImpType::I64, eConstI(1)),
                    PStmt::declVar("v", ImpType::I64, eConstI(2))),
      PStmt::storeVar("out", eVarI("v")));
  EXPECT_FALSE(verifyProgram(BothArms).has_value());

  // Declared inside a loop body: the loop may run zero times, so the
  // declaration does not dominate uses after it.
  PRef InLoop = PStmt::seq2(
      PStmt::whileLoop(eVarB("c"),
                       PStmt::declVar("v", ImpType::I64, eConstI(1))),
      PStmt::storeVar("out", eVarI("v")));
  EXPECT_TRUE(verifyProgram(InLoop).has_value());
}

//===----------------------------------------------------------------------===//
// Step-count reductions (Fig. 2 and a TPC-H revenue query)
//===----------------------------------------------------------------------===//

struct CompiledAtLevel {
  PRef Program;
  double Result = 0.0;
  int64_t Steps = 0;
};

TEST(StepCounts, Fig2TripleProductShrinksAtO1) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}});
  auto Z = vec(10, {{4, 10.0}, {7, 3.0}, {8, 1.0}});

  auto RunAt = [&](int Opt) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrO(), 10);
    Ctx.bind(sparseVecBinding("x", attrO()));
    Ctx.bind(sparseVecBinding("y", attrO()));
    Ctx.bind(sparseVecBinding("z", attrO()));
    VmMemory M;
    bindSparseVector(M, "x", X);
    bindSparseVector(M, "y", Y);
    bindSparseVector(M, "z", Z);
    CompiledAtLevel C;
    C.Program = compileFullContraction(
        Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
    VmRunResult R = vmRun(C.Program, M);
    EXPECT_FALSE(R.Error.has_value()) << *R.Error;
    C.Result = std::get<double>(*M.getScalar("out"));
    C.Steps = R.Steps;
    return C;
  };

  CompiledAtLevel O0 = RunAt(0), O1 = RunAt(1), O2 = RunAt(2);
  // Bit-identical results at every level.
  EXPECT_EQ(O0.Result, 90.0);
  EXPECT_EQ(O1.Result, O0.Result);
  EXPECT_EQ(O2.Result, O0.Result);
  // The pipeline strictly reduces the VM step count.
  EXPECT_LT(O1.Steps, O0.Steps)
      << "O0=" << O0.Steps << " O1=" << O1.Steps;
  EXPECT_LT(O2.Steps, O0.Steps);
  RecordProperty("fig2_steps_O0", std::to_string(O0.Steps));
  RecordProperty("fig2_steps_O1", std::to_string(O1.Steps));
  RecordProperty("fig2_steps_O2", std::to_string(O2.Steps));
  std::printf("[fig2] VM steps: O0=%lld O1=%lld O2=%lld\n",
              static_cast<long long>(O0.Steps),
              static_cast<long long>(O1.Steps),
              static_cast<long long>(O2.Steps));
}

TEST(StepCounts, TpchRevenueQueryShrinksAtO1) {
  // A Q6/Q5-fragment revenue query pushed through the contraction
  // compiler: revenue = Σ_o Σ_l L(o, l) · f(o), where L is a CSR-shaped
  // lineitem tensor (order → line position, values extendedprice ·
  // (1 − discount)) and f is the sparse 0/1 filter of orders inside the
  // Q5 date window.
  TpchDb Db = generateTpch(0.005);
  const Idx NumOrders = static_cast<Idx>(Db.numOrders());

  std::vector<CooEntry<double>> Coo;
  {
    std::vector<Idx> NextLine(static_cast<size_t>(NumOrders), 0);
    for (size_t K = 0; K < Db.numLineitems(); ++K) {
      Idx O = Db.LiOrder[K];
      Coo.push_back({O, NextLine[static_cast<size_t>(O)]++,
                     Db.LiExtendedPrice[K] * (1.0 - Db.LiDiscount[K])});
    }
  }
  auto L = CsrMatrix<double>::fromCoo(NumOrders, 8, std::move(Coo));

  SparseVector<double> F(NumOrders);
  for (Idx O = 0; O < NumOrders; ++O)
    if (Db.OrdDate[static_cast<size_t>(O)] >= TpchDb::q5DateLo() &&
        Db.OrdDate[static_cast<size_t>(O)] < TpchDb::q5DateHi())
      F.push(O, 1.0);

  double Want = 0.0;
  for (size_t K = 0; K < Db.numLineitems(); ++K) {
    Idx D = Db.OrdDate[static_cast<size_t>(Db.LiOrder[K])];
    if (D >= TpchDb::q5DateLo() && D < TpchDb::q5DateHi())
      Want += Db.LiExtendedPrice[K] * (1.0 - Db.LiDiscount[K]);
  }

  auto RunAt = [&](int Opt) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrO(), NumOrders);
    Ctx.setDim(attrL(), 8);
    Ctx.bind(csrBinding("L", attrO(), attrL()));
    Ctx.bind(sparseVecBinding("f", attrO()));
    VmMemory M;
    bindCsr(M, "L", L);
    bindSparseVector(M, "f", F);
    std::string Err;
    ExprPtr Prod = mulExpand(Expr::var("L"), Expr::var("f"), Ctx.types(),
                             &Err);
    EXPECT_NE(Prod, nullptr) << Err;
    CompiledAtLevel C;
    C.Program = compileFullContraction(Ctx, Prod, "revenue");
    VmRunResult R = vmRun(C.Program, M);
    EXPECT_FALSE(R.Error.has_value()) << *R.Error;
    C.Result = std::get<double>(*M.getScalar("revenue"));
    C.Steps = R.Steps;
    return C;
  };

  CompiledAtLevel O0 = RunAt(0), O1 = RunAt(1);
  EXPECT_NEAR(O0.Result, Want, 1e-6 * std::abs(Want));
  EXPECT_EQ(O1.Result, O0.Result); // Bit-identical across levels.
  EXPECT_LT(O1.Steps, O0.Steps)
      << "O0=" << O0.Steps << " O1=" << O1.Steps;
  RecordProperty("tpch_steps_O0", std::to_string(O0.Steps));
  RecordProperty("tpch_steps_O1", std::to_string(O1.Steps));
  std::printf("[tpch-revenue] VM steps: O0=%lld O1=%lld\n",
              static_cast<long long>(O0.Steps),
              static_cast<long long>(O1.Steps));
}

//===----------------------------------------------------------------------===//
// Golden C emission at -O0 / -O1
//===----------------------------------------------------------------------===//

std::string normalizeCounters(std::string S) {
  // The skip-latch (skc) and snapshot (skt) name counters are
  // process-global; normalise their digits so the golden text is stable
  // regardless of test execution order.
  S = std::regex_replace(S, std::regex("skc[0-9]+"), "skc");
  S = std::regex_replace(S, std::regex("skt[0-9]+"), "skt");
  return S;
}

std::string compileAndRunC(const std::string &Source, const char *Tag) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/golden_" + Tag + ".c";
  std::string BinPath = Dir + "/golden_" + Tag;
  {
    std::ofstream Out(CPath);
    Out << Source;
  }
  std::string Cmd = "cc -O1 -o " + BinPath + " " + CPath + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  char Buf[4096];
  std::string CompileOut;
  while (fgets(Buf, sizeof(Buf), Pipe))
    CompileOut += Buf;
  EXPECT_EQ(pclose(Pipe), 0) << "C compile failed:\n" << CompileOut;
  Pipe = popen(BinPath.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string RunOut;
  while (fgets(Buf, sizeof(Buf), Pipe))
    RunOut += Buf;
  EXPECT_EQ(pclose(Pipe), 0);
  return RunOut;
}

TEST(GoldenC, Fig2AtBothOptLevels) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}});
  auto Z = vec(10, {{4, 10.0}, {7, 3.0}, {8, 1.0}});

  auto EmitAt = [&](int Opt, PRef *ProgOut, VmMemory *MemOut) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrO(), 10);
    Ctx.bind(sparseVecBinding("x", attrO()));
    Ctx.bind(sparseVecBinding("y", attrO()));
    Ctx.bind(sparseVecBinding("z", attrO()));
    VmMemory M;
    bindSparseVector(M, "x", X);
    bindSparseVector(M, "y", Y);
    bindSparseVector(M, "z", Z);
    PRef P = compileFullContraction(
        Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
    *ProgOut = P;
    std::string Src = emitCProgram(P, M, {{"out"}, {}});
    *MemOut = std::move(M);
    return Src;
  };

  PRef P0, P1;
  VmMemory M0, M1;
  std::string Src0 = EmitAt(0, &P0, &M0);
  std::string Src1 = EmitAt(1, &P1, &M1);

  // Golden structure: the unoptimized kernel carries the dead skip
  // latches (`skc = <index>` before every skip call at a contracted
  // level); the optimized one must not.
  EXPECT_NE(normalizeCounters(Src0).find("skc"), std::string::npos);
  EXPECT_EQ(normalizeCounters(Src1).find("skc"), std::string::npos);
  // And it must be smaller outright.
  EXPECT_LT(countStmtNodes(P1), countStmtNodes(P0));
  EXPECT_LT(Src1.size(), Src0.size());

  // Cross-check: both compile with the system C compiler and agree with
  // the VM.
  EXPECT_EQ(compileAndRunC(Src0, "fig2_o0"), "out=90\n");
  EXPECT_EQ(compileAndRunC(Src1, "fig2_o1"), "out=90\n");
  auto E0 = vmExecute(P0, M0);
  auto E1 = vmExecute(P1, M1);
  ASSERT_FALSE(E0.has_value()) << *E0;
  ASSERT_FALSE(E1.has_value()) << *E1;
  EXPECT_EQ(std::get<double>(*M0.getScalar("out")), 90.0);
  EXPECT_EQ(std::get<double>(*M1.getScalar("out")), 90.0);
}

//===----------------------------------------------------------------------===//
// Pipeline statistics plumbing
//===----------------------------------------------------------------------===//

TEST(PassManager, CollectsPerPassStatistics) {
  LowerCtx Ctx;
  Ctx.CollectStats = true;
  Ctx.setDim(attrO(), 10);
  Ctx.bind(sparseVecBinding("x", attrO()));
  Ctx.bind(sparseVecBinding("y", attrO()));
  (void)compileFullContraction(Ctx, Expr::var("x") * Expr::var("y"), "out");
  ASSERT_FALSE(Ctx.LastPipeline.Stats.empty());
  // The O1 pipeline must shrink the program overall.
  EXPECT_LT(Ctx.LastPipeline.Stats.back().StmtsAfter,
            Ctx.LastPipeline.Stats.front().StmtsBefore);
  bool AnyChanged = false;
  for (const PassStats &S : Ctx.LastPipeline.Stats)
    AnyChanged |= S.changed();
  EXPECT_TRUE(AnyChanged);
  EXPECT_NE(Ctx.LastPipeline.toString().find("dse"), std::string::npos);
}

} // namespace

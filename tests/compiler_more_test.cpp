//===- tests/compiler_more_test.cpp - Wider compiler coverage ------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Beyond the pipeline smoke tests: every binding format (dense/sparse
// vectors, CSR, DCSR, CSF) through the compiler, every scalar algebra,
// randomized agreement sweeps against the denotational oracle, additions
// at nested levels, masked streams, and further emitted-C golden runs.
//
//===----------------------------------------------------------------------===//

#include "compiler/c_emit.h"
#include "compiler/frontend.h"
#include "core/eval.h"
#include "formats/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <fstream>

using namespace etch;

namespace {

Attr attrAt(size_t K) {
  static const std::array<Attr, 3> As = {
      Attr::named("cm_i"), Attr::named("cm_j"), Attr::named("cm_k")};
  return As[K];
}
Attr AI() { return attrAt(0); }
Attr AJ() { return attrAt(1); }
Attr AK() { return attrAt(2); }

double scalarResult(LowerCtx &Ctx, const ExprPtr &E, VmMemory &M) {
  PRef Prog = compileFullContraction(Ctx, E, "out");
  auto Err = vmExecute(Prog, M);
  EXPECT_FALSE(Err.has_value()) << *Err;
  return std::get<double>(*M.getScalar("out"));
}

class CompilerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompilerSweep, DcsrTimesDcsrAgainstOracle) {
  Rng R(GetParam());
  auto A = randomDcsr(R, 15, 15, R.nextBelow(40) + 1);
  auto B = randomDcsr(R, 15, 15, R.nextBelow(40) + 1);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 15);
  Ctx.setDim(AJ(), 15);
  Ctx.bind(dcsrBinding("A", AI(), AJ()));
  Ctx.bind(dcsrBinding("B", AI(), AJ(), SearchPolicy::Binary));
  VmMemory M;
  bindDcsr(M, "A", A);
  bindDcsr(M, "B", B);

  double Got = scalarResult(Ctx, Expr::var("A") * Expr::var("B"), M);
  auto Want = A.toKRelation<F64Semiring>(AI(), AJ())
                  .mul(B.toKRelation<F64Semiring>(AI(), AJ()))
                  .contract(AJ())
                  .contract(AI());
  EXPECT_NEAR(Got, Want.at({}), 1e-9);
}

TEST_P(CompilerSweep, CsfContractionAgainstOracle) {
  Rng R(GetParam() + 100);
  auto T = randomCsf3(R, 6, 7, 8, R.nextBelow(40) + 1);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 6);
  Ctx.setDim(AJ(), 7);
  Ctx.setDim(AK(), 8);
  Ctx.bind(csf3Binding("T", AI(), AJ(), AK()));
  VmMemory M;
  bindCsf3(M, "T", T);

  double Got = scalarResult(Ctx, Expr::var("T"), M);
  auto Want = T.toKRelation<F64Semiring>(AI(), AJ(), AK())
                  .contract(AK())
                  .contract(AJ())
                  .contract(AI());
  EXPECT_NEAR(Got, Want.at({}), 1e-9);
}

TEST_P(CompilerSweep, MixedAddMulAgainstOracle) {
  // Σ (x + y) * z over random sparse vectors: addition nested under
  // multiplication through the syntactic combinators.
  Rng R(GetParam() + 200);
  const Idx N = 60;
  auto X = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Y = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Z = randomSparseVector(R, N, R.nextBelow(30) + 1);

  LowerCtx Ctx;
  Ctx.setDim(AI(), N);
  Ctx.bind(sparseVecBinding("x", AI()));
  Ctx.bind(sparseVecBinding("y", AI()));
  Ctx.bind(sparseVecBinding("z", AI()));
  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);
  bindSparseVector(M, "z", Z);

  double Got = scalarResult(
      Ctx, (Expr::var("x") + Expr::var("y")) * Expr::var("z"), M);
  auto KX = X.toKRelation<F64Semiring>(AI());
  auto KY = Y.toKRelation<F64Semiring>(AI());
  auto KZ = Z.toKRelation<F64Semiring>(AI());
  EXPECT_NEAR(Got, KX.add(KY).mul(KZ).contract(AI()).at({}), 1e-9);
}

TEST_P(CompilerSweep, MatrixAddAgainstOracle) {
  // Nested addition: CSR + DCSR summed to a scalar.
  Rng R(GetParam() + 300);
  auto A = randomCsr(R, 10, 12, R.nextBelow(40) + 1);
  auto B = randomDcsr(R, 10, 12, R.nextBelow(40) + 1);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 10);
  Ctx.setDim(AJ(), 12);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  Ctx.bind(dcsrBinding("B", AI(), AJ()));
  VmMemory M;
  bindCsr(M, "A", A);
  bindDcsr(M, "B", B);

  double Got = scalarResult(Ctx, Expr::var("A") + Expr::var("B"), M);
  auto Want = A.toKRelation<F64Semiring>(AI(), AJ())
                  .add(B.toKRelation<F64Semiring>(AI(), AJ()))
                  .contract(AJ())
                  .contract(AI());
  EXPECT_NEAR(Got, Want.at({}), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerSweep,
                         ::testing::Range<uint64_t>(0, 8));

//===----------------------------------------------------------------------===//
// Other scalar algebras through the compiler
//===----------------------------------------------------------------------===//

TEST(CompilerAlgebras, MinPlusShortestHop) {
  // Two (min,+) "vectors": the contraction computes min_i (x_i + y_i).
  LowerCtx Ctx;
  Ctx.Alg = &minPlusAlgebra();
  Ctx.setDim(AI(), 10);
  Ctx.bind(sparseVecBinding("x", AI()));
  Ctx.bind(sparseVecBinding("y", AI()));

  VmMemory M;
  M.setArrayI64("x_pos0", {0, 3});
  M.setArrayI64("x_crd0", {1, 4, 7});
  M.setArrayF64("x_vals", {3.0, 1.0, 9.0});
  M.setArrayI64("y_pos0", {0, 3});
  M.setArrayI64("y_crd0", {1, 4, 8});
  M.setArrayF64("y_vals", {2.0, 6.0, 0.5});

  PRef Prog = compileFullContraction(
      Ctx, Expr::var("x") * Expr::var("y"), "out");
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  // Shared indices: 1 -> 3+2 = 5, 4 -> 1+6 = 7; min is 5.
  EXPECT_DOUBLE_EQ(std::get<double>(*M.getScalar("out")), 5.0);
}

TEST(CompilerAlgebras, BoolIntersectionNonEmpty) {
  LowerCtx Ctx;
  Ctx.Alg = &boolAlgebra();
  Ctx.setDim(AI(), 10);
  Ctx.bind(sparseVecBinding("r", AI()));
  Ctx.bind(sparseVecBinding("s", AI()));

  VmMemory M;
  M.setArrayI64("r_pos0", {0, 2});
  M.setArrayI64("r_crd0", {2, 5});
  M.setArray("r_vals", {true, true});
  M.setArrayI64("s_pos0", {0, 2});
  M.setArrayI64("s_crd0", {5, 7});
  M.setArray("s_vals", {true, true});

  PRef Prog = compileFullContraction(
      Ctx, Expr::var("r") * Expr::var("s"), "out");
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  EXPECT_TRUE(std::get<bool>(*M.getScalar("out"))); // They share index 5.
}

TEST(CompilerAlgebras, I64CountsJoinSize) {
  LowerCtx Ctx;
  Ctx.Alg = &i64Algebra();
  Ctx.setDim(AI(), 10);
  Ctx.bind(sparseVecBinding("r", AI()));
  Ctx.bind(sparseVecBinding("s", AI()));

  VmMemory M;
  M.setArrayI64("r_pos0", {0, 3});
  M.setArrayI64("r_crd0", {1, 5, 9});
  M.setArrayI64("r_vals", {2, 1, 1});
  M.setArrayI64("s_pos0", {0, 2});
  M.setArrayI64("s_crd0", {5, 9});
  M.setArrayI64("s_vals", {3, 4});

  PRef Prog = compileFullContraction(
      Ctx, Expr::var("r") * Expr::var("s"), "out");
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  EXPECT_EQ(std::get<int64_t>(*M.getScalar("out")), 1 * 3 + 1 * 4);
}

//===----------------------------------------------------------------------===//
// Lowering details
//===----------------------------------------------------------------------===//

TEST(Lowering, RenameIsTypeLevelOnly) {
  // Renaming j to k must not change the generated program's behaviour.
  Rng R(9);
  auto X = randomSparseVector(R, 20, 8);
  LowerCtx Ctx;
  Ctx.setDim(AJ(), 20);
  Ctx.setDim(AK(), 20);
  Ctx.bind(sparseVecBinding("x", AJ()));
  VmMemory M;
  bindSparseVector(M, "x", X);

  ExprPtr Renamed = Expr::rename({{AJ(), AK()}}, Expr::var("x"));
  double Got = scalarResult(Ctx, Renamed, M);
  double Want = 0;
  for (double V : X.Val)
    Want += V;
  EXPECT_NEAR(Got, Want, 1e-9);
}

TEST(Lowering, SynShapeLenTracksLevels) {
  LowerCtx Ctx;
  Ctx.setDim(AI(), 4);
  Ctx.setDim(AJ(), 5);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  SynValue V = lowerExpr(Ctx, Expr::var("A"));
  ASSERT_TRUE(V.Inner);
  EXPECT_EQ(synShapeLen(V.Inner), 2);
  SynValue C = lowerExpr(Ctx, Expr::sum(AJ(), Expr::var("A")));
  EXPECT_EQ(synShapeLen(C.Inner), 1);
}

TEST(Lowering, ExpandOfScalarExpressionWorks) {
  // ↑_i over a fully contracted (scalar) expression: Σ_i ↑_i (Σ_j x(j))
  // equals dim(i) * Σ_j x(j).
  Rng R(10);
  auto X = randomSparseVector(R, 12, 5);
  LowerCtx Ctx;
  Ctx.setDim(AI(), 3);
  Ctx.setDim(AJ(), 12);
  Ctx.bind(sparseVecBinding("x", AJ()));
  VmMemory M;
  bindSparseVector(M, "x", X);

  ExprPtr E = Expr::expand(AI(), Expr::sum(AJ(), Expr::var("x")));
  double Got = scalarResult(Ctx, E, M);
  double SumX = 0;
  for (double V : X.Val)
    SumX += V;
  EXPECT_NEAR(Got, 3.0 * SumX, 1e-9);
}

//===----------------------------------------------------------------------===//
// Emitted C golden tests
//===----------------------------------------------------------------------===//

/// Compiles and runs a C source, returning stdout.
std::string compileAndRun(const std::string &Source, const std::string &Tag) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/" + Tag + ".c";
  std::string Bin = Dir + "/" + Tag;
  {
    std::ofstream F(CPath);
    F << Source;
  }
  std::string Cmd = "cc -O1 -o " + Bin + " " + CPath + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  char Buf[4096];
  std::string CompileOut;
  while (fgets(Buf, sizeof(Buf), P))
    CompileOut += Buf;
  EXPECT_EQ(pclose(P), 0) << CompileOut << "\n" << Source;
  P = popen(Bin.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  while (fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  EXPECT_EQ(pclose(P), 0);
  return Out;
}

TEST(CGolden, SpmvIntoArrayMatchesVm) {
  Rng R(31);
  auto A = randomCsr(R, 6, 8, 18);
  auto X = randomSparseVector(R, 8, 4);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 6);
  Ctx.setDim(AJ(), 8);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  Ctx.bind(sparseVecBinding("x", AJ()));
  VmMemory M;
  bindCsr(M, "A", A);
  bindSparseVector(M, "x", X);

  ExprPtr E = Expr::sum(
      AJ(), Expr::mul(Expr::var("A"), Expr::expand(AI(), Expr::var("x"))));
  PRef Prog = PStmt::seq2(
      PStmt::declArr("y", ImpType::F64, eConstI(6)),
      compileExpr(Ctx, E, denseDest(f64Algebra(), "y", {eConstI(1)})));

  // VM side.
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  const auto *Y = M.getArray("y");

  // C side.
  VmMemory Inputs;
  bindCsr(Inputs, "A", A);
  bindSparseVector(Inputs, "x", X);
  std::string Out =
      compileAndRun(emitCProgram(Prog, Inputs, {{}, {{"y", 6}}}),
                    "etch_spmv_golden");
  for (Idx I = 0; I < 6; ++I) {
    char Want[64];
    std::snprintf(Want, sizeof(Want), "y[%lld]=%.17g",
                  static_cast<long long>(I),
                  std::get<double>((*Y)[static_cast<size_t>(I)]));
    EXPECT_NE(Out.find(Want), std::string::npos)
        << "missing " << Want << " in:\n" << Out;
  }
}

//===----------------------------------------------------------------------===//
// Hashed destinations (compiled group-by) and hashed source bindings
//===----------------------------------------------------------------------===//

TEST(HashDest, ColumnGroupByMatchesDenseSums) {
  // Σ_i A(i,j) accumulated into a hash-table destination keyed by j — the
  // compiled group-by. Every column with a stored entry must own exactly
  // one slot, and each slot must hold the dense column sum.
  Rng R(41);
  auto A = randomCsr(R, 12, 40, 60);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 12);
  Ctx.setDim(AJ(), 40);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  VmMemory M;
  bindCsr(M, "A", A);

  const int64_t TabSize = 128;
  M.setArrayI64("gkey", std::vector<int64_t>(TabSize, -1));
  M.setArrayF64("gval", std::vector<double>(TabSize, 0.0));
  PRef Prog = PStmt::seq2(
      PStmt::declVar("gcnt", ImpType::I64, eConstI(0)),
      compileExpr(Ctx, Expr::sum(AI(), Expr::var("A")),
                  hashDest(f64Algebra(), "gkey", "gval", "gcnt", TabSize)));
  ASSERT_FALSE(vmExecute(Prog, M).has_value());

  std::vector<double> Want(40, 0.0);
  std::vector<bool> Touched(40, false);
  for (size_t I = 0; I < 12; ++I)
    for (size_t P = static_cast<size_t>(A.Pos[I]);
         P < static_cast<size_t>(A.Pos[I + 1]); ++P) {
      Want[static_cast<size_t>(A.Crd[P])] += A.Val[P];
      Touched[static_cast<size_t>(A.Crd[P])] = true;
    }
  int64_t WantGroups = 0;
  for (bool T : Touched)
    WantGroups += T;

  EXPECT_EQ(std::get<int64_t>(*M.getScalar("gcnt")), WantGroups);
  const auto *Key = M.getArray("gkey");
  const auto *Val = M.getArray("gval");
  std::vector<bool> SeenSlot(40, false);
  for (int64_t H = 0; H < TabSize; ++H) {
    int64_t K = std::get<int64_t>((*Key)[static_cast<size_t>(H)]);
    if (K == -1)
      continue;
    ASSERT_GE(K, 0);
    ASSERT_LT(K, 40);
    EXPECT_TRUE(Touched[static_cast<size_t>(K)]) << "phantom key " << K;
    EXPECT_FALSE(SeenSlot[static_cast<size_t>(K)]) << "duplicate key " << K;
    SeenSlot[static_cast<size_t>(K)] = true;
    EXPECT_NEAR(std::get<double>((*Val)[static_cast<size_t>(H)]),
                Want[static_cast<size_t>(K)], 1e-9)
        << "key " << K;
  }
  for (Idx J = 0; J < 40; ++J)
    EXPECT_EQ(SeenSlot[static_cast<size_t>(J)],
              Touched[static_cast<size_t>(J)])
        << "column " << J;
}

TEST(CGolden, HashDestGroupByMatchesVm) {
  // The same compiled group-by, emitted as C: the probe/insert loop is
  // plain P code, so every slot of the hash table must match the VM's
  // bit for bit (identical insertion order => identical layout).
  Rng R(43);
  auto A = randomCsr(R, 10, 30, 45);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 10);
  Ctx.setDim(AJ(), 30);
  Ctx.bind(csrBinding("A", AI(), AJ()));

  const int64_t TabSize = 64;
  PRef Prog = PStmt::seq2(
      PStmt::declVar("gcnt", ImpType::I64, eConstI(0)),
      compileExpr(Ctx, Expr::sum(AI(), Expr::var("A")),
                  hashDest(f64Algebra(), "gkey", "gval", "gcnt", TabSize)));

  VmMemory M;
  bindCsr(M, "A", A);
  M.setArrayI64("gkey", std::vector<int64_t>(TabSize, -1));
  M.setArrayF64("gval", std::vector<double>(TabSize, 0.0));
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  const auto *Key = M.getArray("gkey");
  const auto *Val = M.getArray("gval");

  VmMemory Inputs;
  bindCsr(Inputs, "A", A);
  Inputs.setArrayI64("gkey", std::vector<int64_t>(TabSize, -1));
  Inputs.setArrayF64("gval", std::vector<double>(TabSize, 0.0));
  std::string Out = compileAndRun(
      emitCProgram(Prog, Inputs,
                   {{"gcnt"}, {{"gkey", TabSize}, {"gval", TabSize}}}),
      "etch_hashdest_golden");
  EXPECT_NE(Out.find("gcnt=" + std::to_string(std::get<int64_t>(
                                   *M.getScalar("gcnt")))),
            std::string::npos)
      << Out;
  for (int64_t H = 0; H < TabSize; ++H) {
    char Line[96];
    std::snprintf(Line, sizeof(Line), "gkey[%lld]=%lld",
                  static_cast<long long>(H),
                  static_cast<long long>(std::get<int64_t>(
                      (*Key)[static_cast<size_t>(H)])));
    EXPECT_NE(Out.find(Line), std::string::npos)
        << "missing " << Line << " in:\n" << Out;
    std::snprintf(Line, sizeof(Line), "gval[%lld]=%.17g",
                  static_cast<long long>(H),
                  std::get<double>((*Val)[static_cast<size_t>(H)]));
    EXPECT_NE(Out.find(Line), std::string::npos)
        << "missing " << Line << " in:\n" << Out;
  }
}

TEST(HashedBinding, HugeExtentIntersectionAgainstOracle) {
  // x stored hashed over a 2^40 coordinate space (a dense or even
  // compressed-with-binary-search binding would be unusable there for a
  // build; the probe table costs O(nnz)); y compressed. The contraction
  // Σ x*y runs the synHashed probe-then-fallback skip under every policy.
  const Idx Extent = Idx(1) << 40;
  std::vector<Idx> Shared = {17, 99991, 1048576, (Idx(1) << 35) + 5};
  std::vector<Idx> OnlyX = {3, (Idx(1) << 30) + 1};
  std::vector<Idx> OnlyY = {18, 99990, (Idx(1) << 39)};

  HashedVector<double> X(Extent, Shared.size() + OnlyX.size());
  double Want = 0.0;
  double V = 1.0;
  for (Idx C : Shared) {
    X.accumulate(C, V);
    Want += V * (V + 0.5);
    V += 1.0;
  }
  for (Idx C : OnlyX)
    X.accumulate(C, 100.0);
  X.freeze();

  SparseVector<double> Y;
  Y.Size = Extent;
  V = 1.0;
  for (Idx C : Shared) {
    Y.Crd.push_back(C);
    Y.Val.push_back(V + 0.5);
    V += 1.0;
  }
  for (Idx C : OnlyY) {
    Y.Crd.push_back(C);
    Y.Val.push_back(7.0);
  }
  std::sort(Y.Crd.begin(), Y.Crd.end());
  // Re-derive values in sorted coordinate order.
  for (size_t K = 0; K < Y.Crd.size(); ++K) {
    bool IsShared = false;
    for (size_t S = 0; S < Shared.size(); ++S)
      if (Shared[S] == Y.Crd[K]) {
        Y.Val[K] = static_cast<double>(S + 1) + 0.5;
        IsShared = true;
      }
    if (!IsShared)
      Y.Val[K] = 7.0;
  }

  for (SearchPolicy P :
       {SearchPolicy::Linear, SearchPolicy::Binary, SearchPolicy::Gallop}) {
    LowerCtx Ctx;
    Ctx.setDim(AI(), Extent);
    VmMemory M;
    int64_t TabSize = bindHashedVector(M, "x", X);
    Ctx.bind(hashedVecBinding("x", AI(), TabSize, P));
    Ctx.bind(sparseVecBinding("y", AI(), P));
    bindSparseVector(M, "y", Y);
    double Got = scalarResult(Ctx, Expr::var("x") * Expr::var("y"), M);
    EXPECT_NEAR(Got, Want, 1e-9) << "policy " << static_cast<int>(P);
  }
}

TEST(CGolden, HashedBindingIntersectionMatchesVm) {
  // A hashed source binding through the C backend: the emitted probe code
  // (mod + linear wraparound over the baked _hkey0/_hpos0 arrays) must
  // reproduce the VM's scalar exactly.
  Rng R(44);
  auto XS = randomSparseVector(R, 4000, 50);
  auto Y = randomSparseVector(R, 4000, 300);
  HashedVector<double> X(4000, XS.Crd.size());
  for (size_t K = XS.Crd.size(); K-- > 0;)
    X.accumulate(XS.Crd[K], XS.Val[K]);
  X.freeze();

  LowerCtx Ctx;
  Ctx.setDim(AI(), 4000);
  VmMemory M;
  int64_t TabSize = bindHashedVector(M, "x", X);
  Ctx.bind(hashedVecBinding("x", AI(), TabSize, SearchPolicy::Gallop));
  Ctx.bind(sparseVecBinding("y", AI()));
  bindSparseVector(M, "y", Y);

  PRef Prog = compileFullContraction(
      Ctx, Expr::var("x") * Expr::var("y"), "out");
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  double Want = std::get<double>(*M.getScalar("out"));

  VmMemory Inputs;
  bindHashedVector(Inputs, "x", X);
  bindSparseVector(Inputs, "y", Y);
  std::string Out = compileAndRun(
      emitCProgram(Prog, Inputs, {{"out"}, {}}), "etch_hashed_golden");
  char Line[64];
  std::snprintf(Line, sizeof(Line), "out=%.17g", Want);
  EXPECT_NE(Out.find(Line), std::string::npos) << Out;
}

TEST(CGolden, BinarySearchSkipCompiles) {
  Rng R(32);
  auto X = randomSparseVector(R, 500, 10);
  auto Y = randomSparseVector(R, 500, 200);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 500);
  Ctx.bind(sparseVecBinding("x", AI()));
  Ctx.bind(sparseVecBinding("y", AI(), SearchPolicy::Binary));
  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);

  PRef Prog = compileFullContraction(
      Ctx, Expr::var("x") * Expr::var("y"), "out");
  ASSERT_FALSE(vmExecute(Prog, M).has_value());
  double Want = std::get<double>(*M.getScalar("out"));

  VmMemory Inputs;
  bindSparseVector(Inputs, "x", X);
  bindSparseVector(Inputs, "y", Y);
  std::string Out = compileAndRun(
      emitCProgram(Prog, Inputs, {{"out"}, {}}), "etch_bsearch_golden");
  char Line[64];
  std::snprintf(Line, sizeof(Line), "out=%.17g", Want);
  EXPECT_NE(Out.find(Line), std::string::npos) << Out;
}

} // namespace

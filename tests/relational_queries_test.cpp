//===- tests/relational_queries_test.cpp - Engine agreement tests --------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// All three execution engines (fused indexed streams, columnar hash join,
// row-store index nested loop) must return identical answers on Q5, Q9 and
// the triangle query; the nested-loop reference is the oracle. The tests
// also pin basic properties of the TPC-H generator.
//
//===----------------------------------------------------------------------===//

#include "relational/groupby.h"
#include "relational/joinplan.h"
#include "relational/queries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace etch;

namespace {

void expectClose(const double *A, const double *B, size_t N,
                 const char *Tag) {
  for (size_t I = 0; I < N; ++I) {
    double Scale = std::max({1.0, std::fabs(A[I]), std::fabs(B[I])});
    EXPECT_NEAR(A[I], B[I], 1e-6 * Scale) << Tag << " cell " << I;
  }
}

TEST(TpchGenerator, CardinalityRatios) {
  TpchDb Db = generateTpch(0.01);
  EXPECT_EQ(Db.RegionName.size(), 5u);
  EXPECT_EQ(Db.NationRegion.size(), 25u);
  EXPECT_EQ(Db.numSuppliers(), 100u);
  EXPECT_EQ(Db.numCustomers(), 1500u);
  EXPECT_EQ(Db.numParts(), 2000u);
  EXPECT_EQ(Db.PsPart.size(), 8000u);
  EXPECT_EQ(Db.numOrders(), 15000u);
  // 1..7 lines per order, mean 4.
  EXPECT_GT(Db.numLineitems(), Db.numOrders() * 3);
  EXPECT_LT(Db.numLineitems(), Db.numOrders() * 5);
}

TEST(TpchGenerator, Deterministic) {
  TpchDb A = generateTpch(0.002, 42);
  TpchDb B = generateTpch(0.002, 42);
  EXPECT_EQ(A.LiOrder, B.LiOrder);
  EXPECT_EQ(A.LiExtendedPrice, B.LiExtendedPrice);
  TpchDb C = generateTpch(0.002, 43);
  EXPECT_NE(A.LiExtendedPrice, C.LiExtendedPrice);
}

TEST(Q5, AllEnginesAgree) {
  TpchDb Db = generateTpch(0.01);
  Q5Result Ref = q5Reference(Db);
  Q5Result Fused = q5Fused(Db);
  Q5Result Col = q5Columnar(Db);
  Q5Result Row = q5RowStore(Db);
  expectClose(Ref.data(), Fused.data(), Ref.size(), "fused");
  expectClose(Ref.data(), Col.data(), Ref.size(), "columnar");
  expectClose(Ref.data(), Row.data(), Ref.size(), "rowstore");
  // The result must be non-trivial and confined to ASIA nations (10..14).
  double Total = std::accumulate(Ref.begin(), Ref.end(), 0.0);
  EXPECT_GT(Total, 0.0);
  for (size_t N = 0; N < 25; ++N)
    if (Db.NationRegion[N] != TpchDb::asiaRegion()) {
      EXPECT_EQ(Ref[N], 0.0) << "nation " << N;
    }
}

TEST(Q9, AllEnginesAgree) {
  TpchDb Db = generateTpch(0.01);
  Q9Result Ref = q9Reference(Db);
  Q9Result Fused = q9Fused(Db);
  Q9Result Col = q9Columnar(Db);
  Q9Result Row = q9RowStore(Db);
  expectClose(Ref.data(), Fused.data(), Ref.size(), "fused");
  expectClose(Ref.data(), Col.data(), Ref.size(), "columnar");
  expectClose(Ref.data(), Row.data(), Ref.size(), "rowstore");
  double Total = std::accumulate(Ref.begin(), Ref.end(), 0.0,
                                 [](double A, double B) {
                                   return A + std::fabs(B);
                                 });
  EXPECT_GT(Total, 0.0);
}

TEST(SparseKeyRevenue, MatchesReference) {
  // Revenue grouped by the 2^40-sparse external customer id: the hashed
  // group-by path against the dense-over-dictionary-keys oracle.
  TpchDb Db = generateTpch(0.02);
  auto Got = revenueBySparseKey(Db);
  auto Want = revenueBySparseKeyReference(Db);
  ASSERT_EQ(Got.size(), Want.size());
  ASSERT_GT(Got.size(), 0u);
  for (size_t K = 0; K < Got.size(); ++K) {
    EXPECT_EQ(Got[K].first, Want[K].first) << "row " << K;
    double Scale = std::max(1.0, std::fabs(Want[K].second));
    EXPECT_NEAR(Got[K].second, Want[K].second, 1e-6 * Scale) << "row " << K;
  }
  // Results are in id order over the sparse space, not custkey order.
  for (size_t K = 1; K < Got.size(); ++K)
    EXPECT_LT(Got[K - 1].first, Got[K].first);
}

TEST(GroupByGuardDeathTest, DenseOverSparseKeySpaceDies) {
  EXPECT_DEATH(DenseGroupBy<double>(MaxDenseGroupByExtent + 1),
               "dense group-by over a sparse key space");
}

TEST(GroupBySelect, CutoffPicksLayoutAndAgrees) {
  GroupBy<double> Small(GroupBy<double>::DenseCutoff);
  EXPECT_TRUE(Small.isDense());
  GroupBy<double> Big(Idx(1) << 40, 8);
  EXPECT_FALSE(Big.isDense());
  EXPECT_FALSE(GroupBy<double>(GroupBy<double>::DenseCutoff + 1).isDense());
  // Same adds into both layouts (keys clamped to the small extent) must
  // produce the same sorted entries.
  for (Idx K : {Idx(3), Idx(700), Idx(3), Idx(41)}) {
    Small.add(K, 1.5);
    Big.add(K, 1.5);
  }
  Big.add(Idx(1) << 39, 2.5); // Far outside any dense extent.
  auto SE = Small.sortedEntries();
  auto BE = Big.sortedEntries();
  ASSERT_EQ(BE.size(), SE.size() + 1);
  for (size_t K = 0; K < SE.size(); ++K) {
    EXPECT_EQ(BE[K].first, SE[K].first);
    EXPECT_DOUBLE_EQ(BE[K].second, SE[K].second);
  }
  EXPECT_EQ(BE.back().first, Idx(1) << 39);
  EXPECT_DOUBLE_EQ(BE.back().second, 2.5);
  // The hashed pick stays O(groups): far below one slot per key.
  EXPECT_LT(Big.memoryBytes(), size_t(64) << 10);
}

TEST(Triangle, WorstCaseCountIsLinear) {
  // On ({0} x [n]) ∪ ([n] x {0}) the triangle count is 3n - 2: triangles
  // (0,0,c), (0,b,0) and (a,0,0) overlap at the all-zero triangle.
  for (Idx N : {Idx(1), Idx(2), Idx(5), Idx(100)}) {
    EdgeList G = triangleWorstCase(N);
    int64_t Ref = triangleReference(G, G, G);
    EXPECT_EQ(Ref, 3 * N - 2) << "n=" << N;
    EXPECT_EQ(triangleFused(G, G, G), Ref) << "n=" << N;
    EXPECT_EQ(triangleColumnar(G, G, G), Ref) << "n=" << N;
    EXPECT_EQ(triangleRowStore(G, G, G), Ref) << "n=" << N;
  }
}

TEST(Triangle, RandomGraphsAgree) {
  Rng R(99);
  for (int Case = 0; Case < 8; ++Case) {
    Idx N = 20 + static_cast<Idx>(R.nextBelow(60));
    size_t E = 1 + R.nextBelow(static_cast<uint64_t>(N) * 4);
    EdgeList Ra = randomEdges(R, N, E);
    EdgeList Sb = randomEdges(R, N, E);
    EdgeList Tc = randomEdges(R, N, E);
    int64_t Ref = triangleReference(Ra, Sb, Tc);
    EXPECT_EQ(triangleFused(Ra, Sb, Tc), Ref) << "case " << Case;
    EXPECT_EQ(triangleColumnar(Ra, Sb, Tc), Ref) << "case " << Case;
    EXPECT_EQ(triangleRowStore(Ra, Sb, Tc), Ref) << "case " << Case;
  }
}

TEST(TriangleJoinPlan, AllSixOrdersAgreeWithReference) {
  Rng R(7);
  std::array<int, 3> Ord{0, 1, 2};
  for (int Case = 0; Case < 4; ++Case) {
    Idx N = 20 + static_cast<Idx>(R.nextBelow(40));
    size_t E = 1 + R.nextBelow(static_cast<uint64_t>(N) * 3);
    EdgeList Ra = randomEdges(R, N, E);
    EdgeList Sb = randomEdges(R, N, E);
    EdgeList Tc = randomEdges(R, N, E);
    int64_t Ref = triangleReference(Ra, Sb, Tc);
    std::sort(Ord.begin(), Ord.end());
    do {
      EXPECT_EQ(triangleFusedOrdered(Ra, Sb, Tc, Ord), Ref)
          << "case " << Case << " order " << Ord[0] << Ord[1] << Ord[2];
    } while (std::next_permutation(Ord.begin(), Ord.end()));
  }
}

TEST(TriangleJoinPlan, IdentityOrderMatchesHandWrittenFused) {
  EdgeList G = triangleWorstCase(64);
  EXPECT_EQ(triangleFusedOrdered(G, G, G, {0, 1, 2}),
            triangleFused(G, G, G));
}

TEST(TriangleJoinPlan, PlannedOrderAgreesAndIsCostMinimal) {
  Rng R(13);
  EdgeList Ra = randomEdges(R, 50, 120);
  EdgeList Sb = randomEdges(R, 50, 120);
  EdgeList Tc = randomEdges(R, 50, 120);
  TriangleJoinPlan JP;
  int64_t Got = triangleFusedPlanned(Ra, Sb, Tc, &JP);
  EXPECT_EQ(Got, triangleReference(Ra, Sb, Tc));
  // The chosen order is a permutation of {a, b, c} and the EXPLAIN report
  // names all three join variables.
  std::array<int, 3> Sorted = JP.VarOrder;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, (std::array<int, 3>{0, 1, 2}));
  EXPECT_NE(JP.Explain.find("tj_a"), std::string::npos);
  EXPECT_NE(JP.Explain.find("tj_b"), std::string::npos);
  EXPECT_NE(JP.Explain.find("tj_c"), std::string::npos);
  EXPECT_GT(JP.Cost, 0.0);
}

TEST(TriangleJoinPlan, WorstCaseFamilyStaysWorstCaseOptimal) {
  // On the Θ(n²)-for-pairwise family the planner must keep a GenericJoin
  // order whose estimate stays near-linear in n, far below n².
  Idx N = 2000;
  EdgeList G = triangleWorstCase(N);
  TriangleJoinPlan JP;
  int64_t Got = triangleFusedPlanned(G, G, G, &JP);
  EXPECT_EQ(Got, 3 * static_cast<int64_t>(N) - 2);
  EXPECT_LT(JP.Cost, static_cast<double>(N) * 50.0);
}

} // namespace

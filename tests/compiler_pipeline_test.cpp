//===- tests/compiler_pipeline_test.cpp - Expr -> SynStream -> P -> VM ---===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the Etch pipeline (Figure 1): contraction
// expressions are lowered through syntactic indexed streams to P programs,
// executed on the VM, and compared against the denotational oracle and the
// runtime stream model. A golden test additionally emits C, compiles it
// with the system compiler, runs it, and compares outputs.
//
//===----------------------------------------------------------------------===//

#include "compiler/c_emit.h"
#include "compiler/frontend.h"
#include "core/eval.h"
#include "formats/random.h"
#include "streams/combinators.h"
#include "streams/eval.h"

#include <gtest/gtest.h>

#include <array>

#include <cmath>
#include <cstdio>
#include <fstream>

using namespace etch;

namespace {

// Intern all three in one deterministic order (the global attribute
// order); see kernels_test.cpp.
Attr attrAt(size_t K) {
  static const std::array<Attr, 3> As = {
      Attr::named("cp_i"), Attr::named("cp_j"), Attr::named("cp_k")};
  return As[K];
}
Attr attrI() { return attrAt(0); }
Attr attrJ() { return attrAt(1); }
Attr attrK() { return attrAt(2); }

SparseVector<double> vec(Idx Size, std::vector<std::pair<Idx, double>> Es) {
  SparseVector<double> V(Size);
  for (auto [I, X] : Es)
    V.push(I, X);
  return V;
}

double runScalar(LowerCtx &Ctx, const ExprPtr &E, VmMemory &M) {
  PRef Prog = compileFullContraction(Ctx, E, "out");
  auto Err = vmExecute(Prog, M);
  EXPECT_FALSE(Err.has_value()) << *Err;
  auto V = M.getScalar("out");
  EXPECT_TRUE(V.has_value());
  return std::get<double>(*V);
}

TEST(CompilerPipeline, TripleSparseProduct) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}});
  auto Z = vec(10, {{4, 10.0}, {7, 3.0}, {8, 1.0}});

  LowerCtx Ctx;
  Ctx.setDim(attrI(), 10);
  Ctx.bind(sparseVecBinding("x", attrI()));
  Ctx.bind(sparseVecBinding("y", attrI()));
  Ctx.bind(sparseVecBinding("z", attrI()));

  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);
  bindSparseVector(M, "z", Z);

  ExprPtr E = Expr::var("x") * Expr::var("y") * Expr::var("z");
  // Shared indices: 4 (3*2*10=60) and 7 (5*2*3=30).
  EXPECT_DOUBLE_EQ(runScalar(Ctx, E, M), 90.0);
}

TEST(CompilerPipeline, BinarySearchSkipAgrees) {
  Rng R(7);
  auto X = randomSparseVector(R, 1000, 40);
  auto Y = randomSparseVector(R, 1000, 600);

  LowerCtx Ctx;
  Ctx.setDim(attrI(), 1000);
  Ctx.bind(sparseVecBinding("x", attrI(), SearchPolicy::Linear));
  Ctx.bind(sparseVecBinding("y", attrI(), SearchPolicy::Binary));

  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);

  double Got = runScalar(Ctx, Expr::var("x") * Expr::var("y"), M);
  double Want = sumAll<F64Semiring>(mulStreams<F64Semiring>(
      X.stream(), Y.stream<SearchPolicy::Gallop>()));
  EXPECT_NEAR(Got, Want, 1e-9);
}

TEST(CompilerPipeline, SpmvIntoDenseDest) {
  Rng R(21);
  auto A = randomCsr(R, 17, 23, 60);
  auto X = randomSparseVector(R, 23, 9);

  LowerCtx Ctx;
  Ctx.setDim(attrI(), 17);
  Ctx.setDim(attrJ(), 23);
  Ctx.bind(csrBinding("A", attrI(), attrJ()));
  Ctx.bind(sparseVecBinding("x", attrJ()));

  VmMemory M;
  bindCsr(M, "A", A);
  bindSparseVector(M, "x", X);

  // y(i) = Σ_j A(i,j) * ↑_i x(j)
  ExprPtr E = Expr::sum(
      attrJ(), Expr::mul(Expr::var("A"), Expr::expand(attrI(),
                                                      Expr::var("x"))));

  PRef Decl = PStmt::declArr("y", ImpType::F64, eConstI(17));
  PRef Body = compileExpr(Ctx, E, denseDest(f64Algebra(), "y",
                                            {eConstI(1)}));
  auto Err = vmExecute(PStmt::seq2(Decl, Body), M);
  ASSERT_FALSE(Err.has_value()) << *Err;

  // Oracle.
  auto Want = A.toKRelation<F64Semiring>(attrI(), attrJ())
                  .mul(X.toKRelation<F64Semiring>(attrJ()).expand(attrI()))
                  .contract(attrJ());
  const auto *Y = M.getArray("y");
  ASSERT_NE(Y, nullptr);
  for (Idx I = 0; I < 17; ++I)
    EXPECT_NEAR(std::get<double>((*Y)[static_cast<size_t>(I)]),
                Want.at({I}), 1e-9)
        << "row " << I;
}

TEST(CompilerPipeline, SparseAddIntoSparseDest) {
  auto X = vec(12, {{1, 2.0}, {4, 3.0}, {9, 1.0}});
  auto Y = vec(12, {{0, 1.0}, {4, 2.5}, {11, 4.0}});

  LowerCtx Ctx;
  Ctx.setDim(attrI(), 12);
  Ctx.bind(sparseVecBinding("x", attrI()));
  Ctx.bind(sparseVecBinding("y", attrI()));

  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);

  PRef Decls = PStmt::seq(
      {PStmt::declArr("o_crd", ImpType::I64, eConstI(12)),
       PStmt::declArr("o_val", ImpType::F64, eConstI(12)),
       PStmt::declVar("o_cnt", ImpType::I64, eConstI(0))});
  PRef Body =
      compileExpr(Ctx, Expr::var("x") + Expr::var("y"),
                  sparseVecDest(f64Algebra(), "o_crd", "o_val", "o_cnt"));
  auto Err = vmExecute(PStmt::seq2(Decls, Body), M);
  ASSERT_FALSE(Err.has_value()) << *Err;

  int64_t Cnt = std::get<int64_t>(*M.getScalar("o_cnt"));
  ASSERT_EQ(Cnt, 5);
  std::vector<Idx> WantCrd = {0, 1, 4, 9, 11};
  std::vector<double> WantVal = {1.0, 2.0, 5.5, 1.0, 4.0};
  const auto *Crd = M.getArray("o_crd");
  const auto *Val = M.getArray("o_val");
  for (int64_t P = 0; P < Cnt; ++P) {
    EXPECT_EQ(std::get<int64_t>((*Crd)[static_cast<size_t>(P)]),
              WantCrd[static_cast<size_t>(P)]);
    EXPECT_DOUBLE_EQ(std::get<double>((*Val)[static_cast<size_t>(P)]),
                     WantVal[static_cast<size_t>(P)]);
  }
}

TEST(CompilerPipeline, MatmulLinearCombination) {
  Rng R(5);
  auto A = randomCsr(R, 9, 11, 30);
  auto B = randomCsr(R, 11, 13, 40);

  // C(i,k) = Σ_j A(i,j) * B(j,k): attributes i < j < k; A over {i,j},
  // B over {j,k}; expand A over k at depth 2, B over i at depth 0.
  LowerCtx Ctx;
  Ctx.setDim(attrI(), 9);
  Ctx.setDim(attrJ(), 11);
  Ctx.setDim(attrK(), 13);
  Ctx.bind(csrBinding("A", attrI(), attrJ()));
  Ctx.bind(csrBinding("B", attrJ(), attrK()));

  VmMemory M;
  bindCsr(M, "A", A);
  bindCsr(M, "B", B);

  std::string Err;
  ExprPtr Prod =
      mulExpand(Expr::var("A"), Expr::var("B"), Ctx.types(), &Err);
  ASSERT_NE(Prod, nullptr) << Err;
  ExprPtr E = Expr::sum(attrJ(), Prod);

  PRef Decl = PStmt::declArr("c", ImpType::F64, eConstI(9 * 13));
  PRef Body = compileExpr(
      Ctx, E, denseDest(f64Algebra(), "c", {eConstI(13), eConstI(1)}));
  auto VmErr = vmExecute(PStmt::seq2(Decl, Body), M);
  ASSERT_FALSE(VmErr.has_value()) << *VmErr;

  auto Want = A.toKRelation<F64Semiring>(attrI(), attrJ())
                  .expand(attrK())
                  .mul(B.toKRelation<F64Semiring>(attrJ(), attrK())
                           .expand(attrI()))
                  .contract(attrJ());
  const auto *C = M.getArray("c");
  for (Idx I = 0; I < 9; ++I)
    for (Idx K = 0; K < 13; ++K)
      EXPECT_NEAR(std::get<double>((*C)[static_cast<size_t>(I * 13 + K)]),
                  Want.at({I, K}), 1e-9);
}

TEST(CompilerPipeline, RandomizedDifferentialAcrossOptLevels) {
  // Random small contraction expressions — sums of products of sparse and
  // dense vectors over one attribute — compiled at every opt level. All
  // levels must produce bit-identical VM results, and those must agree
  // with the core denotational evaluator.
  Rng R(0xe7c4);
  for (int Trial = 0; Trial < 25; ++Trial) {
    Idx N = 5 + static_cast<Idx>(R.nextBelow(36));
    auto A = randomSparseVector(R, N, R.nextBelow(static_cast<uint64_t>(N)));
    auto B = randomSparseVector(R, N, R.nextBelow(static_cast<uint64_t>(N)));
    auto C = randomSparseVector(R, N, R.nextBelow(static_cast<uint64_t>(N)));
    auto D = randomDenseVector(R, N);

    const std::array<std::string, 4> Names = {"a", "b", "c", "d"};
    size_t NumTerms = 1 + R.nextBelow(3);
    ExprPtr E;
    for (size_t T = 0; T < NumTerms; ++T) {
      size_t NumFactors = 1 + R.nextBelow(3);
      ExprPtr Term;
      for (size_t F = 0; F < NumFactors; ++F) {
        ExprPtr V = Expr::var(Names[R.nextBelow(4)]);
        Term = Term ? Expr::mul(Term, V) : V;
      }
      E = E ? Expr::add(E, Term) : Term;
    }

    // Oracle: the denotational semantics of Σ_i E.
    ValueContext<F64Semiring> VC;
    VC.emplace("a", A.toKRelation<F64Semiring>(attrI()));
    VC.emplace("b", B.toKRelation<F64Semiring>(attrI()));
    VC.emplace("c", C.toKRelation<F64Semiring>(attrI()));
    KRelation<F64Semiring> DK(Shape{attrI()});
    for (Idx I = 0; I < N; ++I)
      DK.insert({I}, D.Val[static_cast<size_t>(I)]);
    VC.emplace("d", DK);
    std::string Err;
    ExprPtr Full = sumAll(E, typesOf(VC), &Err);
    ASSERT_NE(Full, nullptr) << Err;
    double Want = evalT(Full, VC).at({});

    std::array<double, 3> Got{};
    for (int Opt = 0; Opt <= 2; ++Opt) {
      LowerCtx Ctx;
      Ctx.OptLevel = Opt;
      Ctx.setDim(attrI(), N);
      Ctx.bind(sparseVecBinding("a", attrI()));
      Ctx.bind(sparseVecBinding("b", attrI(),
                                Trial % 2 ? SearchPolicy::Binary
                                          : SearchPolicy::Linear));
      Ctx.bind(sparseVecBinding("c", attrI()));
      Ctx.bind(denseVecBinding("d", attrI()));
      VmMemory M;
      bindSparseVector(M, "a", A);
      bindSparseVector(M, "b", B);
      bindSparseVector(M, "c", C);
      bindDenseVector(M, "d", D);
      PRef Prog = compileFullContraction(Ctx, E, "out");
      auto VmErr = vmExecute(Prog, M);
      ASSERT_FALSE(VmErr.has_value())
          << "trial " << Trial << " O" << Opt << ": " << *VmErr;
      Got[static_cast<size_t>(Opt)] = std::get<double>(*M.getScalar("out"));
    }
    // Bit-identical across opt levels; near the oracle.
    EXPECT_EQ(Got[0], Got[1]) << "trial " << Trial;
    EXPECT_EQ(Got[0], Got[2]) << "trial " << Trial;
    EXPECT_NEAR(Got[0], Want, 1e-9 * (1.0 + std::abs(Want)))
        << "trial " << Trial;
  }
}

TEST(CompilerPipeline, EmittedCMatchesVm) {
  // Figure 2's example, end to end through the system C compiler.
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}});
  auto Z = vec(10, {{4, 10.0}, {7, 3.0}, {8, 1.0}});

  LowerCtx Ctx;
  Ctx.setDim(attrI(), 10);
  Ctx.bind(sparseVecBinding("x", attrI()));
  Ctx.bind(sparseVecBinding("y", attrI()));
  Ctx.bind(sparseVecBinding("z", attrI()));

  VmMemory M;
  bindSparseVector(M, "x", X);
  bindSparseVector(M, "y", Y);
  bindSparseVector(M, "z", Z);

  ExprPtr E = Expr::var("x") * Expr::var("y") * Expr::var("z");
  PRef Prog = compileFullContraction(Ctx, E, "out");

  std::string Source = emitCProgram(Prog, M, {{"out"}, {}});
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/etch_triple.c";
  std::string BinPath = Dir + "/etch_triple";
  {
    std::ofstream F(CPath);
    F << Source;
  }
  std::string Cmd = "cc -O1 -o " + BinPath + " " + CPath + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  char Buf[4096];
  std::string CompileOut;
  while (fgets(Buf, sizeof(Buf), Pipe))
    CompileOut += Buf;
  ASSERT_EQ(pclose(Pipe), 0) << "C compile failed:\n"
                             << CompileOut << "\n"
                             << Source;

  Pipe = popen(BinPath.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string RunOut;
  while (fgets(Buf, sizeof(Buf), Pipe))
    RunOut += Buf;
  ASSERT_EQ(pclose(Pipe), 0);
  EXPECT_EQ(RunOut, "out=90\n");
}

} // namespace

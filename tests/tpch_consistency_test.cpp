//===- tests/tpch_consistency_test.cpp - Prepared queries & scaling ------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Consistency checks on the prepared-query API (the split between index
// building and timed execution used by bench_fig19_tpch) and on the TPC-H
// generator's scaling behaviour: reusing a prepared structure across runs
// must be idempotent, one-shot and prepared paths must agree, and results
// must grow roughly linearly with the scale factor.
//
//===----------------------------------------------------------------------===//

#include "relational/prepared.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace etch;

namespace {

double total(const Q5Result &R) {
  return std::accumulate(R.begin(), R.end(), 0.0);
}

double totalAbs(const Q9Result &R) {
  return std::accumulate(R.begin(), R.end(), 0.0,
                         [](double A, double B) { return A + std::fabs(B); });
}

TEST(PreparedQueries, ReuseIsIdempotent) {
  TpchDb Db = generateTpch(0.005);
  auto P5 = q5Prepare(Db);
  Q5Result First = q5Fused(Db, *P5);
  Q5Result Second = q5Fused(Db, *P5);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(q5RowStore(Db, *P5), q5RowStore(Db, *P5));

  auto P9 = q9Prepare(Db);
  EXPECT_EQ(q9Fused(Db, *P9), q9Fused(Db, *P9));
  EXPECT_EQ(q9RowStore(Db, *P9), q9RowStore(Db, *P9));
}

TEST(PreparedQueries, OneShotMatchesPrepared) {
  TpchDb Db = generateTpch(0.005);
  auto P5 = q5Prepare(Db);
  EXPECT_EQ(q5Fused(Db), q5Fused(Db, *P5));
  auto P9 = q9Prepare(Db);
  EXPECT_EQ(q9Fused(Db), q9Fused(Db, *P9));
}

TEST(PreparedQueries, TrianglePreparedMatchesOneShot) {
  EdgeList G = triangleWorstCase(300);
  auto P = trianglePrepare(G, G, G);
  EXPECT_EQ(triangleFused(*P), triangleFused(G, G, G));
  EXPECT_EQ(triangleRowStore(G, G, G, *P), triangleRowStore(G, G, G));
}

TEST(TpchScaling, ResultsGrowWithScaleFactor) {
  TpchDb Small = generateTpch(0.005);
  TpchDb Large = generateTpch(0.02);
  // Revenue/profit totals scale with the data (roughly 4x here; allow a
  // broad band since the join selectivities shift slightly with size).
  double R5S = total(q5Reference(Small)), R5L = total(q5Reference(Large));
  EXPECT_GT(R5L, R5S * 1.5);
  double R9S = totalAbs(q9Reference(Small)),
         R9L = totalAbs(q9Reference(Large));
  EXPECT_GT(R9L, R9S * 1.5);
}

TEST(TpchScaling, Q9YearsSpanTheDateRange) {
  TpchDb Db = generateTpch(0.01);
  Q9Result R = q9Reference(Db);
  // Orders are uniform over 1992..1998; every year column should be
  // populated for at least one nation.
  for (int Y = 0; Y < 7; ++Y) {
    double Col = 0.0;
    for (int N = 0; N < 25; ++N)
      Col += std::fabs(R[static_cast<size_t>(N * 7 + Y)]);
    EXPECT_GT(Col, 0.0) << "year " << (1992 + Y);
  }
}

TEST(TpchScaling, GreenSelectivityNearOfficial) {
  TpchDb Db = generateTpch(0.1);
  size_t Green = 0;
  for (uint8_t G : Db.PartGreen)
    Green += G;
  double Frac = static_cast<double>(Green) /
                static_cast<double>(Db.numParts());
  EXPECT_GT(Frac, 0.035);
  EXPECT_LT(Frac, 0.075); // Official p_name LIKE '%green%' is ~5.4%.
}

} // namespace

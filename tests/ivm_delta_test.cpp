//===- tests/ivm_delta_test.cpp - Delta K-relations and grouped views -----===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The algebraic core of incremental view maintenance (ivm/delta.h):
//
//  * the delta-rewrite identity T[e](Ctx[t := A+Δ]) = T[e](Ctx) + δ_t[e]
//    holds exactly, in every semiring, for sums, products (including the
//    Δ·Δ cross term of self-joins), contractions, expands, and renames;
//  * deletions are negative-weight deltas: a batch that cancels a stored
//    weight to the semiring zero leaves *no* tuple behind, at the
//    K-relation layer and through a maintained GroupedView;
//  * GroupedView::applyDelta keeps value() bit-identical to recompute().
//
// Values are dyadic rationals of small magnitude, so f64 equality is
// exact (the sides agree as reals, hence bit-for-bit; see ivm/delta.h).
//
//===----------------------------------------------------------------------===//

#include "ivm/delta.h"

#include <gtest/gtest.h>

using namespace etch;

namespace {

Attr DI() { return Attr::named("ivd_i"); }
Attr DJ() { return Attr::named("ivd_j"); }

/// Checks the delta-rewrite identity for one (expression, variable, batch)
/// triple: evaluating with the shifted binding must equal base + delta.
template <Semiring S>
void expectIdentity(const ExprPtr &E, const ValueContext<S> &Ctx,
                    const std::string &Var, const KRelation<S> &Delta) {
  ValueContext<S> Shifted = Ctx;
  Shifted.at(Var) = Shifted.at(Var).add(Delta);
  KRelation<S> Lhs = evalT(E, Shifted);
  KRelation<S> Rhs = evalT(E, Ctx).add(evalDeltaT(E, Ctx, Var, Delta));
  EXPECT_TRUE(Lhs.equals(Rhs))
      << S::name() << " shifted=" << Lhs.toString()
      << " base+delta=" << Rhs.toString();
}

/// Σ_i Σ_j M(i,j) · (↑_i v)(j): the SpMV-total shape shared by the driver
/// tests, built over an arbitrary semiring.
template <Semiring S>
ExprPtr spmvTotal() {
  ExprPtr M = Expr::var("M");
  ExprPtr V = Expr::expand(DI(), Expr::var("v"));
  return Expr::sum(DI(), Expr::sum(DJ(), Expr::mul(M, V)));
}

template <Semiring S>
ValueContext<S> spmvBindings() {
  KRelation<S> M(Shape{DI(), DJ()});
  M.insert({0, 0}, S::one());
  M.insert({0, 2}, S::mul(S::one(), S::one()));
  M.insert({1, 1}, S::one());
  M.insert({2, 0}, S::one());
  KRelation<S> V(Shape{DJ()});
  V.insert({0}, S::one());
  V.insert({2}, S::one());
  ValueContext<S> Ctx;
  Ctx.emplace("M", std::move(M));
  Ctx.emplace("v", std::move(V));
  return Ctx;
}

//===----------------------------------------------------------------------===//
// The delta-rewrite identity, across semirings
//===----------------------------------------------------------------------===//

TEST(DeltaIdentity, SpmvAppendF64) {
  ValueContext<F64Semiring> Ctx = spmvBindings<F64Semiring>();
  ExprPtr E = spmvTotal<F64Semiring>();
  KRelation<F64Semiring> DM(Shape{DI(), DJ()});
  DM.insert({1, 1}, 0.5);   // update of a stored entry
  DM.insert({2, 2}, -1.25); // fresh negative weight
  expectIdentity(E, Ctx, "M", DM);
  KRelation<F64Semiring> DV(Shape{DJ()});
  DV.insert({1}, 2.0);
  expectIdentity(E, Ctx, "v", DV);
}

TEST(DeltaIdentity, SpmvAppendI64) {
  ValueContext<I64Semiring> Ctx = spmvBindings<I64Semiring>();
  ExprPtr E = spmvTotal<I64Semiring>();
  KRelation<I64Semiring> DM(Shape{DI(), DJ()});
  DM.insert({0, 1}, 3);
  DM.insert({2, 0}, -2);
  expectIdentity(E, Ctx, "M", DM);
}

TEST(DeltaIdentity, AppendOnlySemiringsNeedNoNegation) {
  // (min,+) and bool have no additive inverses, but the identity only
  // uses distributivity — append-only maintenance is exact.
  {
    ValueContext<MinPlusSemiring> Ctx = spmvBindings<MinPlusSemiring>();
    KRelation<MinPlusSemiring> DM(Shape{DI(), DJ()});
    DM.insert({0, 0}, -1.5); // a shorter edge, not a deletion
    DM.insert({1, 2}, 2.0);
    expectIdentity(spmvTotal<MinPlusSemiring>(), Ctx, "M", DM);
  }
  {
    ValueContext<BoolSemiring> Ctx = spmvBindings<BoolSemiring>();
    KRelation<BoolSemiring> DM(Shape{DI(), DJ()});
    DM.insert({1, 0}, true);
    expectIdentity(spmvTotal<BoolSemiring>(), Ctx, "M", DM);
  }
  EXPECT_FALSE(semiringHasNegation<MinPlusSemiring>());
  EXPECT_FALSE(semiringHasNegation<BoolSemiring>());
  EXPECT_TRUE(semiringHasNegation<F64Semiring>());
  EXPECT_TRUE(semiringHasNegation<I64Semiring>());
}

TEST(DeltaIdentity, SelfJoinCrossTerm) {
  // e = Σ_i x(i)·x(i) with Δ touching stored coordinates: without the
  // Δ·Δ cross term the maintained value would miss Δ², so this pins the
  // product rule's third summand.
  KRelation<F64Semiring> X(Shape{DI()});
  X.insert({0}, 2.0);
  X.insert({3}, -0.5);
  ValueContext<F64Semiring> Ctx;
  Ctx.emplace("x", std::move(X));
  ExprPtr E = Expr::sum(DI(), Expr::mul(Expr::var("x"), Expr::var("x")));
  KRelation<F64Semiring> DX(Shape{DI()});
  DX.insert({0}, 1.5);
  DX.insert({1}, 0.25);
  expectIdentity(E, Ctx, "x", DX);

  // The cross term itself: δ = Δ·X + X·Δ + Δ·Δ, checked structurally.
  KRelation<F64Semiring> D =
      evalDeltaT(E, Ctx, "x", DX);
  KRelation<F64Semiring> Want(Shape{});
  // d/dx[x²] at {0}: 2·2·1.5 + 1.5² ; fresh {1}: 0.25².
  Want.insert({}, 2.0 * 1.5 + 1.5 * 2.0 + 1.5 * 1.5 + 0.25 * 0.25);
  EXPECT_TRUE(D.equals(Want)) << D.toString();
}

TEST(DeltaIdentity, RenameAndAddCommute) {
  KRelation<F64Semiring> X(Shape{DI()});
  X.insert({1}, 1.5);
  X.insert({4}, -2.0);
  ValueContext<F64Semiring> Ctx;
  Ctx.emplace("x", std::move(X));
  // e = Σ_j (ρ_{i→j} x + ρ_{i→j} x)
  ExprPtr Rho = Expr::rename({{DI(), DJ()}}, Expr::var("x"));
  ExprPtr E = Expr::sum(DJ(), Expr::add(Rho, Rho));
  KRelation<F64Semiring> DX(Shape{DI()});
  DX.insert({4}, 2.0); // exact deletion of the stored -2
  expectIdentity(E, Ctx, "x", DX);
}

//===----------------------------------------------------------------------===//
// Deletions compact to nothing
//===----------------------------------------------------------------------===//

TEST(DeltaDeletion, NegationCancelsToEmptySupport) {
  KRelation<F64Semiring> X(Shape{DI()});
  X.insert({0}, 1.25);
  X.insert({2}, -3.5);
  KRelation<F64Semiring> Gone = X.add(negateRelation(X));
  EXPECT_EQ(Gone.supportSize(), 0u); // no zombie zero-weight tuples
}

TEST(DeltaDeletion, PartialCancellationKeepsTheRest) {
  KRelation<I64Semiring> X(Shape{DI()});
  X.insert({0}, 4);
  X.insert({1}, 7);
  KRelation<I64Semiring> D(Shape{DI()});
  D.insert({0}, -4); // exact deletion
  D.insert({1}, -2); // partial decrement
  KRelation<I64Semiring> After = X.add(D);
  EXPECT_EQ(After.supportSize(), 1u);
  KRelation<I64Semiring> Want(Shape{DI()});
  Want.insert({1}, 5);
  EXPECT_TRUE(After.equals(Want));
}

//===----------------------------------------------------------------------===//
// GroupedView maintenance
//===----------------------------------------------------------------------===//

TEST(GroupedViewIvm, ApplyDeltaMatchesRecompute) {
  // Row sums of M·(↑v): group by i, contract j.
  ValueContext<F64Semiring> Ctx = spmvBindings<F64Semiring>();
  ExprPtr E = Expr::sum(
      DJ(), Expr::mul(Expr::var("M"), Expr::expand(DI(), Expr::var("v"))));
  GroupedView<F64Semiring> GV(E, Ctx);
  EXPECT_TRUE(GV.value().equals(GV.recompute()));

  KRelation<F64Semiring> DM(Shape{DI(), DJ()});
  DM.insert({0, 0}, 0.75);
  DM.insert({1, 0}, 1.0);
  GV.applyDelta("M", DM);
  EXPECT_TRUE(GV.value().equals(GV.recompute()))
      << GV.value().toString() << " vs " << GV.recompute().toString();

  KRelation<F64Semiring> DV(Shape{DJ()});
  DV.insert({0}, -0.5);
  GV.applyDelta("v", DV);
  EXPECT_TRUE(GV.value().equals(GV.recompute()));
  EXPECT_EQ(GV.refreshes(), 2u);
}

TEST(GroupedViewIvm, DeletionEvictsTheGroup) {
  // One group's entire weight is deleted: the group must vanish from the
  // maintained relation, not linger with weight zero.
  KRelation<F64Semiring> M(Shape{DI(), DJ()});
  M.insert({0, 0}, 2.0);
  M.insert({1, 1}, 3.0);
  ValueContext<F64Semiring> Ctx;
  Ctx.emplace("M", std::move(M));
  ExprPtr E = Expr::sum(DJ(), Expr::var("M"));
  GroupedView<F64Semiring> GV(E, Ctx);
  EXPECT_EQ(GV.value().supportSize(), 2u);

  KRelation<F64Semiring> DM(Shape{DI(), DJ()});
  DM.insert({1, 1}, -3.0);
  GV.applyDelta("M", DM);
  EXPECT_EQ(GV.value().supportSize(), 1u);
  EXPECT_TRUE(GV.value().equals(GV.recompute()));
  // The base binding compacted too: no zero-weight tuple survives.
  EXPECT_EQ(GV.bindings().at("M").supportSize(), 1u);
}

} // namespace

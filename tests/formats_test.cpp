//===- tests/formats_test.cpp - Level formats and builders ---------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Unit and property tests for the data-structure substrate: COO
// canonicalisation, CSR/DCSR/CSF builders (including duplicate folding and
// empty slices), format/stream round-trips against the K-relation oracle,
// skip-policy equivalence, and the random generators' contracts.
//
//===----------------------------------------------------------------------===//

#include "formats/levels.h"
#include "formats/random.h"
#include "streams/eval.h"

#include <gtest/gtest.h>

#include <array>

using namespace etch;

namespace {

Attr attrAt(size_t K) {
  static const std::array<Attr, 3> As = {
      Attr::named("ft_i"), Attr::named("ft_j"), Attr::named("ft_k")};
  return As[K];
}
Attr AI() { return attrAt(0); }
Attr AJ() { return attrAt(1); }
Attr AK() { return attrAt(2); }

TEST(Coo, CanonicalizeSortsSumsAndPrunes) {
  std::vector<CooEntry<double>> Coo = {
      {1, 1, 2.0}, {0, 0, 1.0}, {1, 1, 3.0}, {0, 1, 4.0}, {2, 2, -1.0},
      {2, 2, 1.0}};
  auto Out = canonicalizeCoo(std::move(Coo));
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].Row, 0);
  EXPECT_EQ(Out[0].Col, 0);
  EXPECT_EQ(Out[1].Col, 1);
  EXPECT_DOUBLE_EQ(Out[2].Val, 5.0); // 2 + 3 summed; the (2,2) pair pruned.
}

TEST(Csr, BuilderHandlesEmptyRows) {
  auto M = CsrMatrix<double>::fromCoo(4, 4, {{0, 1, 1.0}, {3, 0, 2.0}});
  EXPECT_EQ(M.nnz(), 2u);
  EXPECT_EQ(M.Pos[1], 1u);
  EXPECT_EQ(M.Pos[2], 1u); // Rows 1 and 2 empty.
  EXPECT_EQ(M.Pos[3], 1u);
  EXPECT_EQ(M.Pos[4], 2u);
}

TEST(Csr, StreamRoundTripsThroughOracle) {
  Rng R(5);
  auto M = randomCsr(R, 8, 9, 20);
  auto FromStream =
      evalStream<F64Semiring>(M.stream(), {AI(), AJ()});
  EXPECT_TRUE(FromStream.approxEquals(
      M.toKRelation<F64Semiring>(AI(), AJ())));
}

TEST(Dcsr, SkipsEmptyRowsEntirely) {
  auto M = DcsrMatrix<double>::fromCoo(
      100, 100, {{5, 1, 1.0}, {90, 2, 2.0}});
  EXPECT_EQ(M.RowCrd, (std::vector<Idx>{5, 90}));
  // Outer iteration touches exactly the two nonempty rows.
  int Rows = 0;
  forEach(M.stream(), [&](Idx, auto) { ++Rows; });
  EXPECT_EQ(Rows, 2);
}

TEST(Dcsr, StreamRoundTripsThroughOracle) {
  Rng R(6);
  auto M = randomDcsr(R, 30, 30, 40);
  auto FromStream =
      evalStream<F64Semiring>(M.stream(), {AI(), AJ()});
  EXPECT_TRUE(FromStream.approxEquals(
      M.toKRelation<F64Semiring>(AI(), AJ())));
}

TEST(Csf, BuilderGroupsFibers) {
  auto T = CsfTensor3<double>::fromCoo(
      3, 3, 3,
      {{0, 0, 0, 1.0}, {0, 0, 2, 2.0}, {0, 1, 1, 3.0}, {2, 2, 2, 4.0}});
  EXPECT_EQ(T.Crd0, (std::vector<Idx>{0, 2}));
  EXPECT_EQ(T.Crd1, (std::vector<Idx>{0, 1, 2}));
  EXPECT_EQ(T.Pos0[0], 0u);
  EXPECT_EQ(T.Pos0[1], 2u); // i=0 has two j-fibers.
  EXPECT_EQ(T.nnz(), 4u);
}

TEST(Csf, StreamRoundTripsThroughOracle) {
  Rng R(7);
  auto T = randomCsf3(R, 6, 7, 8, 30);
  auto FromStream =
      evalStream<F64Semiring>(T.stream(), {AI(), AJ(), AK()});
  EXPECT_TRUE(FromStream.approxEquals(
      T.toKRelation<F64Semiring>(AI(), AJ(), AK())));
}

TEST(SparseVectorFmt, PushEnforcesOrder) {
  SparseVector<double> V(10);
  V.push(3, 1.0);
  EXPECT_DEATH(V.push(3, 2.0), "strictly increasing");
  EXPECT_DEATH(V.push(1, 2.0), "strictly increasing");
}

class PolicySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicySweep, AllPoliciesVisitTheSameStates) {
  // Property: for random skip sequences, Linear / Binary / Gallop land on
  // the same position — the policy is an implementation detail of `skip`.
  Rng R(GetParam());
  const Idx N = 500;
  auto V = randomSparseVector(R, N, 60);
  auto L = V.stream<SearchPolicy::Linear>();
  auto B = V.stream<SearchPolicy::Binary>();
  auto G = V.stream<SearchPolicy::Gallop>();
  for (int Step = 0; Step < 40 && L.valid(); ++Step) {
    Idx Target = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(N)));
    bool Strict = R.nextBool(0.5);
    L.skip(Target, Strict);
    B.skip(Target, Strict);
    G.skip(Target, Strict);
    ASSERT_EQ(L.valid(), B.valid());
    ASSERT_EQ(L.valid(), G.valid());
    if (!L.valid())
      break;
    ASSERT_EQ(L.index(), B.index());
    ASSERT_EQ(L.index(), G.index());
    ASSERT_EQ(L.position(), B.position());
    ASSERT_EQ(L.position(), G.position());
  }
}

TEST_P(PolicySweep, GeneratorsHonourTheirContracts) {
  Rng R(GetParam() + 50);
  size_t Nnz = R.nextBelow(200) + 1;
  auto V = randomSparseVector(R, 1000, Nnz);
  EXPECT_EQ(V.nnz(), Nnz);
  for (size_t I = 1; I < V.Crd.size(); ++I)
    EXPECT_LT(V.Crd[I - 1], V.Crd[I]);
  for (double X : V.Val) {
    EXPECT_GE(X, 0.5);
    EXPECT_LT(X, 1.5);
  }

  auto M = randomCsr(R, 40, 50, 300);
  EXPECT_EQ(M.nnz(), 300u);
  auto T = randomCsf3(R, 10, 10, 10, 123);
  EXPECT_EQ(T.nnz(), 123u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicySweep,
                         ::testing::Range<uint64_t>(0, 6));

TEST(Csr, TransposeSwapsCoordinates) {
  // A = [[1,0,2],[0,3,0]]; its transpose is [[1,0],[0,3],[2,0]].
  auto A = CsrMatrix<double>::fromCoo(2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  auto T = transpose(A);
  EXPECT_EQ(T.NumRows, 3);
  EXPECT_EQ(T.NumCols, 2);
  EXPECT_EQ(T.Pos, (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(T.Crd, (std::vector<Idx>{0, 1, 0}));
  EXPECT_EQ(T.Val, (std::vector<double>{1, 3, 2}));
}

TEST(Csr, TransposeAgreesWithOracleAndInvolutes) {
  Rng R(77);
  auto A = randomCsr(R, 37, 23, 150); // Rectangular, with empty rows/cols.
  auto T = transpose(A);
  // Swapped-coordinate relations coincide (the attribute order constraint
  // means we compare entry lists, not KRelations, across the swap).
  auto Rel = A.toKRelation<F64Semiring>(AI(), AJ());
  size_t Nnz = 0;
  for (Idx Row = 0; Row < T.NumRows; ++Row)
    for (size_t Q = T.Pos[static_cast<size_t>(Row)];
         Q < T.Pos[static_cast<size_t>(Row) + 1]; ++Q) {
      EXPECT_DOUBLE_EQ(Rel.at({T.Crd[Q], Row}), T.Val[Q]);
      ++Nnz;
    }
  EXPECT_EQ(Nnz, A.nnz());
  // Columns within each transposed row arrive sorted (canonical CSR).
  for (Idx Row = 0; Row < T.NumRows; ++Row)
    for (size_t Q = T.Pos[static_cast<size_t>(Row)] + 1;
         Q < T.Pos[static_cast<size_t>(Row) + 1]; ++Q)
      EXPECT_LT(T.Crd[Q - 1], T.Crd[Q]);
  // Transposing twice is the identity.
  auto TT = transpose(T);
  EXPECT_EQ(TT.Pos, A.Pos);
  EXPECT_EQ(TT.Crd, A.Crd);
  EXPECT_EQ(TT.Val, A.Val);
}

TEST(Csr, TransposeHandlesEmptyMatrix) {
  CsrMatrix<double> A(4, 6);
  auto T = transpose(A);
  EXPECT_EQ(T.NumRows, 6);
  EXPECT_EQ(T.NumCols, 4);
  EXPECT_EQ(T.nnz(), 0u);
  EXPECT_EQ(T.Pos, (std::vector<size_t>(7, 0)));
}

TEST(PackLevels, DenseOverCompressedMatchesCsr) {
  // {Dense, Compressed} is exactly the CSR composition: pos1 segments the
  // column fibers of every row, including empty ones.
  std::vector<std::pair<std::array<Idx, 2>, double>> Sorted = {
      {{0, 1}, 1.0}, {{3, 0}, 2.0}};
  auto P = packLevels<double, 2>({LevelKind::Dense, LevelKind::Compressed},
                                 {4, 4}, Sorted);
  EXPECT_TRUE(P.Crd[0].empty()); // Dense levels carry no arrays.
  EXPECT_EQ(P.Pos[1], (std::vector<size_t>{0, 1, 1, 1, 2}));
  EXPECT_EQ(P.Crd[1], (std::vector<Idx>{1, 0}));
  EXPECT_EQ(P.Val, (std::vector<double>{1.0, 2.0}));
  // The CsrMatrix builder routes through the same packing.
  auto M = CsrMatrix<double>::fromCoo(4, 4, {{0, 1, 1.0}, {3, 0, 2.0}});
  EXPECT_EQ(M.Pos, P.Pos[1]);
  EXPECT_EQ(M.Crd, P.Crd[1]);
}

TEST(PackLevels, CompressedOverCompressedMatchesDcsr) {
  std::vector<std::pair<std::array<Idx, 2>, double>> Sorted = {
      {{5, 1}, 1.0}, {{5, 7}, 2.0}, {{90, 2}, 3.0}};
  auto P = packLevels<double, 2>(
      {LevelKind::Compressed, LevelKind::Compressed}, {100, 100}, Sorted);
  EXPECT_EQ(P.Crd[0], (std::vector<Idx>{5, 90}));
  EXPECT_EQ(P.Pos[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(P.Pos[1], (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(P.Crd[1], (std::vector<Idx>{1, 7, 2}));
  auto M = DcsrMatrix<double>::fromCoo(100, 100,
                                       {{5, 1, 1.0}, {5, 7, 2.0}, {90, 2, 3.0}});
  EXPECT_EQ(M.RowCrd, P.Crd[0]);
  EXPECT_EQ(M.Pos, P.Pos[1]);
}

TEST(PackLevels, RejectsUnsortedAndOutOfRange) {
  std::vector<std::pair<std::array<Idx, 1>, double>> Dup = {{{2}, 1.0},
                                                            {{2}, 2.0}};
  EXPECT_DEATH((packLevels<double, 1>({LevelKind::Compressed}, {4}, Dup)),
               "sorted, duplicate-free");
  std::vector<std::pair<std::array<Idx, 1>, double>> Big = {{{9}, 1.0}};
  EXPECT_DEATH((packLevels<double, 1>({LevelKind::Compressed}, {4}, Big)),
               "out of range");
}

TEST(CoordHash, InsertLookupGrowAndUpdate) {
  CoordHashTable T(0); // 16 buckets: growth must trigger below.
  const size_t Initial = T.buckets();
  for (Idx I = 0; I < 100; ++I)
    EXPECT_EQ(T.insert(I * 1000003 + 7, static_cast<size_t>(I)),
              static_cast<size_t>(I));
  EXPECT_EQ(T.size(), 100u);
  EXPECT_GT(T.buckets(), Initial); // Grew past 2/3 load.
  for (Idx I = 0; I < 100; ++I)
    EXPECT_EQ(T.lookup(I * 1000003 + 7), static_cast<size_t>(I));
  EXPECT_EQ(T.lookup(12345), static_cast<size_t>(-1));
  // Duplicate insert returns the stored position, not the new one.
  EXPECT_EQ(T.insert(7, 999), 0u);
  EXPECT_EQ(T.size(), 100u);
  T.update(7, 42);
  EXPECT_EQ(T.lookup(7), 42u);
}

TEST(HashedVectorFmt, AccumulateMergesAndFreezeSorts) {
  HashedVector<double> H(1 << 20);
  H.accumulate(777, 1.0);
  H.accumulate(3, 2.0);
  H.accumulate(777, 0.5); // Duplicate coordinate merges in place.
  H.slot(100000) = 4.0;
  EXPECT_EQ(H.nnz(), 3u);
  EXPECT_FALSE(H.frozen());
  H.freeze();
  EXPECT_TRUE(H.frozen());
  EXPECT_EQ(H.Crd, (std::vector<Idx>{3, 777, 100000}));
  EXPECT_EQ(H.Val, (std::vector<double>{2.0, 1.5, 4.0}));
  // The table now maps coordinates to sorted ranks.
  EXPECT_EQ(H.table().lookup(777), 1u);
  EXPECT_EQ(H.table().lookup(100000), 2u);
  // Frozen vectors are immutable accumulators.
  EXPECT_DEATH(H.accumulate(5, 1.0), "after freeze");
}

TEST(HashedVectorFmt, StreamAgreesWithSparseLayout) {
  // Same data inserted unsorted into a hashed level and sorted into a
  // sparse vector: identical relations under evaluation.
  Rng R(21);
  auto V = randomSparseVector(R, 5000, 120);
  HashedVector<double> H(5000, V.nnz());
  for (size_t P = V.nnz(); P-- > 0;) // Reverse order: freeze must sort.
    H.accumulate(V.Crd[P], V.Val[P]);
  H.freeze();
  auto Want = evalStream<F64Semiring>(V.stream(), {AI()});
  EXPECT_TRUE(
      evalStream<F64Semiring>(H.stream(), {AI()}).approxEquals(Want));
  EXPECT_TRUE(H.toKRelation<F64Semiring>(AI()).approxEquals(Want));
}

TEST(DenseVectorFmt, StreamVisitsEverySlot) {
  DenseVector<double> V(5, 2.0);
  V.Val[3] = 7.0;
  int Count = 0;
  double Sum = 0.0;
  forEach(V.stream(), [&](Idx, double X) {
    ++Count;
    Sum += X;
  });
  EXPECT_EQ(Count, 5);
  EXPECT_DOUBLE_EQ(Sum, 4 * 2.0 + 7.0);
}

} // namespace

//===- tests/streams_property_test.cpp - Theorem 6.1 as property tests ---===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The paper's correctness theorem (Theorem 6.1) states that stream
// evaluation is a homomorphism from the stream algebra S to the K-relation
// algebra T:
//
//   [[a * b]] = [[a]] * [[b]]     [[a + b]] = [[a]] + [[b]]
//   [[Σ a]]   = Σ [[a]]           [[↑ v]]   = ↑ v
//
// The Lean development proves this once and for all; here it is checked as
// randomized properties over the concrete combinators, across semirings,
// skip policies, nesting depths, and degenerate inputs (empty streams,
// disjoint and identical supports). Every case evaluates both sides into
// KRelations through independent code paths and compares.
//
//===----------------------------------------------------------------------===//

#include "core/eval.h"
#include "formats/matrices.h"
#include "formats/random.h"
#include "formats/vectors.h"
#include "streams/combinators.h"
#include "streams/eval.h"

#include <gtest/gtest.h>

#include <array>

using namespace etch;

namespace {

Attr attrAt(size_t K) {
  static const std::array<Attr, 2> As = {Attr::named("sp_i"),
                                         Attr::named("sp_j")};
  return As[K];
}
Attr attrI() { return attrAt(0); }
Attr attrJ() { return attrAt(1); }

/// A random sparse vector whose support/density varies with the seed,
/// including empty and singleton cases.
SparseVector<double> randomVec(Rng &R, Idx N) {
  size_t Nnz = static_cast<size_t>(R.nextBelow(static_cast<uint64_t>(N)));
  if (R.nextBool(0.1))
    Nnz = 0;
  if (R.nextBool(0.1))
    Nnz = 1;
  return randomSparseVector(R, N, Nnz);
}

class StreamHom : public ::testing::TestWithParam<uint64_t> {};

//===----------------------------------------------------------------------===//
// Vector-level homomorphisms
//===----------------------------------------------------------------------===//

TEST_P(StreamHom, MulVectors) {
  Rng R(GetParam());
  const Idx N = 64;
  auto X = randomVec(R, N);
  auto Y = randomVec(R, N);
  auto Lhs = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(X.stream(), Y.stream()), {attrI()});
  auto Rhs = X.toKRelation<F64Semiring>(attrI())
                 .mul(Y.toKRelation<F64Semiring>(attrI()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs)) << Lhs.toString() << Rhs.toString();
}

TEST_P(StreamHom, MulThreeWay) {
  Rng R(GetParam() + 1000);
  const Idx N = 48;
  auto X = randomVec(R, N);
  auto Y = randomVec(R, N);
  auto Z = randomVec(R, N);
  auto Lhs = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(
          X.stream(),
          mulStreams<F64Semiring>(Y.stream<SearchPolicy::Binary>(),
                                  Z.stream<SearchPolicy::Gallop>())),
      {attrI()});
  auto Rhs = X.toKRelation<F64Semiring>(attrI())
                 .mul(Y.toKRelation<F64Semiring>(attrI()))
                 .mul(Z.toKRelation<F64Semiring>(attrI()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, AddVectors) {
  Rng R(GetParam() + 2000);
  const Idx N = 64;
  auto X = randomVec(R, N);
  auto Y = randomVec(R, N);
  auto Lhs = evalStream<F64Semiring>(
      addStreams<F64Semiring>(X.stream(), Y.stream()), {attrI()});
  auto Rhs = X.toKRelation<F64Semiring>(attrI())
                 .add(Y.toKRelation<F64Semiring>(attrI()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, AddThenMulDistributes) {
  // eval(x * (y + z)) == eval(x*y) + eval(x*z): exercises add nested under
  // mul plus the semiring distributive law.
  Rng R(GetParam() + 3000);
  const Idx N = 64;
  auto X = randomVec(R, N);
  auto Y = randomVec(R, N);
  auto Z = randomVec(R, N);
  auto Lhs = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(
          X.stream(), addStreams<F64Semiring>(Y.stream(), Z.stream())),
      {attrI()});
  auto Rhs = evalStream<F64Semiring>(
                 mulStreams<F64Semiring>(X.stream(), Y.stream()), {attrI()})
                 .add(evalStream<F64Semiring>(
                     mulStreams<F64Semiring>(X.stream(), Z.stream()),
                     {attrI()}));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, ContractVector) {
  Rng R(GetParam() + 4000);
  auto X = randomVec(R, 64);
  auto Lhs = evalStream<F64Semiring>(contractStream(X.stream()), {});
  auto Rhs = X.toKRelation<F64Semiring>(attrI()).contract(attrI());
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, ExpandTimesSparse) {
  // eval(↑v * x) == v · x pointwise: expansion under multiplication.
  Rng R(GetParam() + 5000);
  const Idx N = 64;
  auto X = randomVec(R, N);
  double V = randomValue(R);
  auto Lhs = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(RepeatStream<double>(N, V), X.stream()),
      {attrI()});
  auto Rhs = KRelation<F64Semiring>::scalar(V)
                 .expand(attrI())
                 .mul(X.toKRelation<F64Semiring>(attrI()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

//===----------------------------------------------------------------------===//
// Matrix-level (nested) homomorphisms
//===----------------------------------------------------------------------===//

TEST_P(StreamHom, MulMatrices) {
  Rng R(GetParam() + 6000);
  auto A = randomCsr(R, 12, 16, R.nextBelow(100) + 1);
  auto B = randomCsr(R, 12, 16, R.nextBelow(100) + 1);
  auto Lhs = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(A.stream(), B.stream()),
      {attrI(), attrJ()});
  auto Rhs = A.toKRelation<F64Semiring>(attrI(), attrJ())
                 .mul(B.toKRelation<F64Semiring>(attrI(), attrJ()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, MulDcsrMatrices) {
  Rng R(GetParam() + 7000);
  auto A = randomDcsr(R, 20, 20, R.nextBelow(80) + 1);
  auto B = randomDcsr(R, 20, 20, R.nextBelow(80) + 1);
  auto Lhs = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(A.stream(), B.stream<SearchPolicy::Gallop,
                                                   SearchPolicy::Binary>()),
      {attrI(), attrJ()});
  auto Rhs = A.toKRelation<F64Semiring>(attrI(), attrJ())
                 .mul(B.toKRelation<F64Semiring>(attrI(), attrJ()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, AddMatrices) {
  Rng R(GetParam() + 8000);
  auto A = randomCsr(R, 10, 14, R.nextBelow(60) + 1);
  auto B = randomDcsr(R, 10, 14, R.nextBelow(60) + 1);
  // Mixed formats: CSR + DCSR through the same combinator.
  auto Lhs = evalStream<F64Semiring>(
      addStreams<F64Semiring>(A.stream(), B.stream()), {attrI(), attrJ()});
  auto Rhs = A.toKRelation<F64Semiring>(attrI(), attrJ())
                 .add(B.toKRelation<F64Semiring>(attrI(), attrJ()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, ContractInnerMatrix) {
  // eval(map Σ_j A) == Σ_j eval(A): row sums.
  Rng R(GetParam() + 9000);
  auto A = randomCsr(R, 10, 14, R.nextBelow(60) + 1);
  auto Lhs = evalStream<F64Semiring>(contractInner(A.stream()), {attrI()});
  auto Rhs = A.toKRelation<F64Semiring>(attrI(), attrJ()).contract(attrJ());
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, ContractOuterMatrix) {
  // eval(Σ_i A) == Σ_i eval(A): column sums (a contracted outer level over
  // a nested value).
  Rng R(GetParam() + 10000);
  auto A = randomDcsr(R, 10, 14, R.nextBelow(60) + 1);
  // Σ_i with j kept requires adding the per-row streams; evaluate via the
  // oracle on both sides instead: stream side sums rows with AddStream by
  // folding forEach.
  auto Rhs = A.toKRelation<F64Semiring>(attrI(), attrJ()).contract(attrI());
  KRelation<F64Semiring> Lhs(Shape{attrJ()});
  forEach(A.stream(), [&](Idx, auto Row) {
    Lhs = Lhs.add(evalStream<F64Semiring>(std::move(Row), {attrJ()}));
  });
  Lhs.pruneZeros();
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, MatrixVectorProductFull) {
  // Full SpMV as streams vs the denotational pipeline
  // Σ_j (A · ↑_i x) — checks expansion, nested mul, and inner contraction
  // together.
  Rng R(GetParam() + 11000);
  auto A = randomCsr(R, 9, 11, R.nextBelow(50) + 1);
  auto X = randomVec(R, 11);
  auto Lifted = repeatUnbounded(X.stream()); // [i*, j]
  auto Prod = mulStreams<F64Semiring>(A.stream(), Lifted);
  auto Lhs = evalStream<F64Semiring>(contractInner(std::move(Prod)),
                                     {attrI()});
  auto Rhs = A.toKRelation<F64Semiring>(attrI(), attrJ())
                 .mul(X.toKRelation<F64Semiring>(attrJ()).expand(attrI()))
                 .contract(attrJ());
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

//===----------------------------------------------------------------------===//
// Other semirings
//===----------------------------------------------------------------------===//

TEST_P(StreamHom, BoolSemiringRelations) {
  Rng R(GetParam() + 12000);
  const Idx N = 40;
  // Two "relations" (indicator vectors): intersection and union.
  // (uint8_t storage: std::vector<bool> has no data() to stream over.)
  auto MakeRel = [&](SparseVector<uint8_t> &V) {
    for (Idx I = 0; I < N; ++I)
      if (R.nextBool(0.3))
        V.push(I, 1);
  };
  SparseVector<uint8_t> X(N), Y(N);
  MakeRel(X);
  MakeRel(Y);
  auto Lhs = evalStream<BoolSemiring>(
      mulStreams<BoolSemiring>(X.stream(), Y.stream()), {attrI()});
  auto Rhs = X.toKRelation<BoolSemiring>(attrI())
                 .mul(Y.toKRelation<BoolSemiring>(attrI()));
  EXPECT_TRUE(Lhs.equals(Rhs));

  auto LhsU = evalStream<BoolSemiring>(
      addStreams<BoolSemiring>(X.stream(), Y.stream()), {attrI()});
  auto RhsU = X.toKRelation<BoolSemiring>(attrI())
                  .add(Y.toKRelation<BoolSemiring>(attrI()));
  EXPECT_TRUE(LhsU.equals(RhsU));
}

TEST_P(StreamHom, MinPlusSemiring) {
  Rng R(GetParam() + 13000);
  const Idx N = 40;
  auto MakeVec = [&](SparseVector<double> &V) {
    for (Idx I = 0; I < N; ++I)
      if (R.nextBool(0.4))
        V.push(I, R.nextDouble() * 10.0);
  };
  SparseVector<double> X(N), Y(N);
  MakeVec(X);
  MakeVec(Y);
  // (min, +): mul adds weights at shared indices.
  auto Lhs = evalStream<MinPlusSemiring>(
      mulStreams<MinPlusSemiring>(X.stream(), Y.stream()), {attrI()});
  auto Rhs = X.toKRelation<MinPlusSemiring>(attrI())
                 .mul(Y.toKRelation<MinPlusSemiring>(attrI()));
  EXPECT_TRUE(Lhs.approxEquals(Rhs));
}

TEST_P(StreamHom, I64Counting) {
  Rng R(GetParam() + 14000);
  const Idx N = 50;
  SparseVector<int64_t> X(N), Y(N);
  for (Idx I = 0; I < N; ++I) {
    if (R.nextBool(0.4))
      X.push(I, static_cast<int64_t>(R.nextBelow(5)) + 1);
    if (R.nextBool(0.4))
      Y.push(I, static_cast<int64_t>(R.nextBelow(5)) + 1);
  }
  auto Lhs = evalStream<I64Semiring>(
      mulStreams<I64Semiring>(X.stream(), Y.stream()), {attrI()});
  auto Rhs = X.toKRelation<I64Semiring>(attrI())
                 .mul(Y.toKRelation<I64Semiring>(attrI()));
  EXPECT_TRUE(Lhs.equals(Rhs));
}

//===----------------------------------------------------------------------===//
// Degenerate cases
//===----------------------------------------------------------------------===//

TEST(StreamHomEdge, EmptyTimesAnything) {
  SparseVector<double> E(10), X(10);
  X.push(3, 5.0);
  auto R = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(E.stream(), X.stream()), {attrI()});
  EXPECT_EQ(R.supportSize(), 0u);
}

TEST(StreamHomEdge, EmptyPlusX) {
  SparseVector<double> E(10), X(10);
  X.push(3, 5.0);
  X.push(9, 2.0);
  auto R = evalStream<F64Semiring>(
      addStreams<F64Semiring>(E.stream(), X.stream()), {attrI()});
  EXPECT_TRUE(R.approxEquals(X.toKRelation<F64Semiring>(attrI())));
}

TEST(StreamHomEdge, DisjointSupportsMulIsEmpty) {
  SparseVector<double> X(10), Y(10);
  X.push(1, 1.0);
  X.push(3, 1.0);
  Y.push(2, 1.0);
  Y.push(4, 1.0);
  EXPECT_DOUBLE_EQ(
      sumAll<F64Semiring>(mulStreams<F64Semiring>(X.stream(), Y.stream())),
      0.0);
}

TEST(StreamHomEdge, SelfMulSquares) {
  SparseVector<double> X(10);
  X.push(2, 3.0);
  X.push(7, -2.0);
  auto R = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(X.stream(), X.stream()), {attrI()});
  EXPECT_DOUBLE_EQ(R.at({2}), 9.0);
  EXPECT_DOUBLE_EQ(R.at({7}), 4.0);
}

TEST(StreamHomEdge, SingletonStreamEvaluates) {
  SingletonStream<double> S(5, 2.5);
  auto R = evalStream<F64Semiring>(S, {attrI()});
  EXPECT_EQ(R.supportSize(), 1u);
  EXPECT_DOUBLE_EQ(R.at({5}), 2.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamHom,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Regression: the addition tie case
//===----------------------------------------------------------------------===//

// When both sides of an addition sit at the same index but one is a
// composite that is *not ready yet* (a product still aligning its
// operands), the sum must not emit the ready side alone — the blocked side
// may still produce a value at that index. This is the subtle case the
// AddStream ready-condition handles; see streams/combinators.h.
TEST(StreamHomEdge, AddWaitsAtTiedIndexForBlockedSide) {
  SparseVector<double> X(10), Y(10), Z(10);
  X.push(1, 2.0);
  X.push(5, 1.0);
  Y.push(2, 3.0);
  Y.push(5, 4.0);
  Z.push(2, 10.0);
  // mul(X, Y) starts blocked at max(1, 2) = 2; Z is ready at 2.
  auto Q = addStreams<F64Semiring>(
      mulStreams<F64Semiring>(X.stream(), Y.stream()), Z.stream());
  auto R = evalStream<F64Semiring>(Q, {attrI()});
  EXPECT_DOUBLE_EQ(R.at({2}), 10.0); // Z's value survives.
  EXPECT_DOUBLE_EQ(R.at({5}), 4.0);  // The product's value survives too.
  EXPECT_EQ(R.supportSize(), 2u);
}

// The contracted-level analogue: adding two Σ streams where one side is a
// blocked product must interleave correctly (all indices compare equal at
// a contracted level).
TEST(StreamHomEdge, AddOfContractedStreams) {
  SparseVector<double> X(10), Y(10), Z(10);
  X.push(1, 2.0);
  X.push(5, 3.0);
  Y.push(2, 1.0);
  Y.push(5, 10.0);
  Z.push(0, 7.0);
  Z.push(9, 1.0);
  auto Sum = addStreams<F64Semiring>(
      contractStream(mulStreams<F64Semiring>(X.stream(), Y.stream())),
      contractStream(Z.stream()));
  auto R = evalStream<F64Semiring>(Sum, {});
  // Σ(x*y) = 30 at index 5; Σz = 8.
  EXPECT_DOUBLE_EQ(R.at({}), 38.0);
}

} // namespace

//===- tests/fuzz_smoke_test.cpp - Deterministic fuzz pipeline ------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Deterministic, fixed-seed exercise of the differential fuzzing pipeline
// (src/fuzz/): generation is reproducible, every generated case is
// well-typed, the corpus format round-trips, the shrinker contracts cases
// under a toy predicate, and — the headline — a 200-seed slice of the
// executor matrix agrees across all three semantics. Long randomized
// campaigns live in tools/etch-fuzz; this test is the tier-1 guarantee
// that the matrix itself stays green.
//
//===----------------------------------------------------------------------===//

#include "fuzz/corpus.h"
#include "fuzz/exec.h"
#include "fuzz/gen.h"
#include "fuzz/shrink.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace etch;

namespace {

TEST(FuzzGen, DeterministicAcrossCalls) {
  // Equal seeds must yield byte-identical cases (the corpus serialization
  // is the canonical form), or replaying "seed N" from a report would be
  // meaningless.
  for (uint64_t Seed : {0u, 1u, 7u, 42u, 123u, 999u}) {
    FuzzCase A = genCase(Seed);
    FuzzCase B = genCase(Seed);
    EXPECT_EQ(serializeCase(A), serializeCase(B)) << "seed " << Seed;
  }
}

TEST(FuzzGen, SeedsAreWellTyped) {
  // The generator is typed by construction; fuzzValidate re-derives the
  // typing independently. 300 seeds cover both generation modes.
  for (uint64_t Seed = 0; Seed < 300; ++Seed) {
    FuzzCase C = genCase(Seed);
    std::string Err;
    EXPECT_TRUE(fuzzValidate(C, &Err).has_value())
        << "seed " << Seed << ": " << Err << "\n"
        << serializeCase(C);
  }
}

TEST(FuzzGen, ProducesVariedSemirings) {
  // The matrix only tests what the generator emits: make sure the seed
  // window the smoke run uses actually spans multiple algebras.
  std::set<std::string> Seen;
  for (uint64_t Seed = 0; Seed < 200; ++Seed)
    Seen.insert(genCase(Seed).SemiringName);
  EXPECT_GE(Seen.size(), 2u) << "generator collapsed to one semiring";
}

TEST(FuzzCorpus, SerializationRoundTrips) {
  for (uint64_t Seed = 0; Seed < 100; ++Seed) {
    FuzzCase C = genCase(Seed);
    std::string Text = serializeCase(C, "round-trip seed");
    std::string Err;
    auto Back = parseCase(Text, &Err);
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed << ": " << Err;
    // Fixpoint: parse(serialize(C)) serializes identically (comments are
    // not part of the case, so serialize without one).
    EXPECT_EQ(serializeCase(*Back), serializeCase(C)) << "seed " << Seed;
  }
}

TEST(FuzzCorpus, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseCase("", &Err).has_value());
  EXPECT_FALSE(parseCase("not-a-header\n", &Err).has_value());
  EXPECT_FALSE(parseCase("etch-fuzz-case v1\nsemiring f64\n", &Err)
                   .has_value()); // no expr
  EXPECT_FALSE(
      parseCase("etch-fuzz-case v1\nsemiring f64\nattr fza 4\n"
                "tensor t0 sv fza\nentry 1 2 1.0\nexpr (var t0)\n",
                &Err)
          .has_value()); // coord arity mismatch
}

TEST(FuzzShrink, ContractsUnderToyPredicate) {
  // A predicate independent of most of the case ("some tensor mentions
  // coordinate 3") lets the shrinker discard nearly everything else.
  FuzzCase C = genCase(11);
  auto HasCoord3 = [](const FuzzCase &Cand) {
    for (const FuzzTensor &T : Cand.Tensors)
      for (const FuzzEntry &E : T.Entries)
        for (Idx I : E.Coords)
          if (I == 3)
            return true;
    return false;
  };
  // Find a seed whose case satisfies the predicate.
  uint64_t Seed = 11;
  while (!HasCoord3(C))
    C = genCase(++Seed);
  FuzzCase Min = shrinkCase(C, HasCoord3);
  EXPECT_TRUE(HasCoord3(Min)) << "shrinking escaped the predicate";
  std::string Err;
  EXPECT_TRUE(fuzzValidate(Min, &Err).has_value()) << Err;
  EXPECT_LE(fuzzCaseSize(Min), fuzzCaseSize(C));
}

TEST(FuzzExec, FormatsMatrixAgrees) {
  // Deterministic slice of `etch-fuzz --formats`: every sparse vector
  // re-materialized hashed must agree with the oracle on the stream legs,
  // and hashed vs compressed compiled legs must agree bit-for-bit.
  ThreadPool Pool(3);
  int WithSparseVec = 0;
  for (uint64_t Seed = 0; Seed < 150; ++Seed) {
    FuzzCase C = genCase(Seed);
    for (const FuzzTensor &T : C.Tensors)
      if (T.Fmt == FuzzFormat::SparseVec) {
        ++WithSparseVec;
        break;
      }
    FuzzReport Rep = runFuzzFormats(C, Pool);
    EXPECT_TRUE(Rep.ok()) << "seed " << Seed << ":\n"
                          << Rep.toString() << "\n"
                          << serializeCase(C);
  }
  // The slice must actually exercise the matrix, not vacuously skip it.
  EXPECT_GT(WithSparseVec, 20) << "generator stopped emitting sparse vectors";
}

TEST(FuzzExec, TwoHundredSeedMatrixAgrees) {
  // The deterministic slice of the full campaign: every leg of the
  // executor matrix (oracle x stream policies x parallel drivers x VM
  // opt levels) must agree on seeds 0..199.
  ThreadPool Pool(3);
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    FuzzCase C = genCase(Seed);
    FuzzReport Rep = runFuzzCase(C, Pool);
    EXPECT_TRUE(Rep.ok()) << "seed " << Seed << ":\n"
                          << Rep.toString() << "\n"
                          << serializeCase(C);
  }
}

} // namespace

//===- tests/bytecode_vm_test.cpp - Bytecode VM vs tree VM ---------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The register-allocated bytecode backend (compiler/bytecode.h) promises
// the tree-walking VM's observable semantics exactly: identical step
// counts, identical error text, bit-identical outputs. These tests pin
// that contract — on hand-built programs exercising every error path, on
// the compiled Fig. 2 kernel at O0/O1/O2, on the lazy operators guarding
// out-of-bounds accesses, and on randomized fuzz cases through the full
// differential matrix.
//
//===----------------------------------------------------------------------===//

#include "compiler/bytecode.h"
#include "compiler/frontend.h"
#include "compiler/ops.h"
#include "fuzz/exec.h"
#include "fuzz/gen.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace etch;

namespace {

ERef eVarF(std::string N) { return EExpr::var(std::move(N), ImpType::F64); }
ERef eAccF(std::string A, ERef I) {
  return EExpr::access(std::move(A), ImpType::F64, std::move(I));
}
ERef eAccI(std::string A, ERef I) {
  return EExpr::access(std::move(A), ImpType::I64, std::move(I));
}
ERef eAddF(ERef A, ERef B) {
  return EExpr::call(Ops::addF(), {std::move(A), std::move(B)});
}

/// The two executors' outcomes on one program, each against its own copy
/// of the initial memory.
struct BothRuns {
  VmRunResult Tree, Bc;
  VmMemory TreeMem, BcMem;
};

BothRuns runBoth(const PRef &Prog, const VmMemory &Init,
                 int64_t MaxSteps = int64_t(1) << 28) {
  BothRuns R;
  R.TreeMem = Init;
  R.BcMem = Init;
  R.Tree = vmRun(Prog, R.TreeMem, MaxSteps);
  R.Bc = bytecodeCompileAndRun(Prog, R.BcMem, MaxSteps);
  return R;
}

/// Bit-pattern scalar equality (NaNs must agree too).
bool bitsEq(const ImpValue &A, const ImpValue &B) {
  if (impTypeOf(A) != impTypeOf(B))
    return false;
  if (const double *X = std::get_if<double>(&A)) {
    uint64_t XB, YB;
    std::memcpy(&XB, X, sizeof(XB));
    std::memcpy(&YB, &std::get<double>(B), sizeof(YB));
    return XB == YB;
  }
  return A == B;
}

/// Asserts full observable agreement on a SUCCESSFUL run: steps, no
/// error, and bit-identical final memory for every name the tree VM
/// holds that the program could have touched (the bytecode VM writes
/// back everything it defined).
void expectSuccessParity(const BothRuns &R,
                         const std::vector<std::string> &Scalars,
                         const std::vector<std::string> &Arrays) {
  ASSERT_FALSE(R.Tree.Error.has_value()) << *R.Tree.Error;
  ASSERT_FALSE(R.Bc.Error.has_value()) << *R.Bc.Error;
  EXPECT_EQ(R.Tree.Steps, R.Bc.Steps);
  for (const std::string &S : Scalars) {
    auto A = R.TreeMem.getScalar(S), B = R.BcMem.getScalar(S);
    ASSERT_EQ(A.has_value(), B.has_value()) << "scalar " << S;
    if (A) {
      EXPECT_TRUE(bitsEq(*A, *B)) << "scalar " << S;
    }
  }
  for (const std::string &Name : Arrays) {
    const auto *A = R.TreeMem.getArray(Name);
    const auto *B = R.BcMem.getArray(Name);
    ASSERT_EQ(A != nullptr, B != nullptr) << "array " << Name;
    if (!A)
      continue;
    ASSERT_EQ(A->size(), B->size()) << "array " << Name;
    for (size_t I = 0; I < A->size(); ++I)
      EXPECT_TRUE(bitsEq((*A)[I], (*B)[I]))
          << "array " << Name << "[" << I << "]";
  }
}

/// Error runs compare only the result (the documented contract: after an
/// error the bytecode VM leaves memory untouched, the tree VM does not).
void expectErrorParity(const BothRuns &R, const std::string &WantErr) {
  ASSERT_TRUE(R.Tree.Error.has_value());
  ASSERT_TRUE(R.Bc.Error.has_value());
  EXPECT_EQ(*R.Tree.Error, WantErr);
  EXPECT_EQ(*R.Bc.Error, *R.Tree.Error);
  EXPECT_EQ(R.Tree.Steps, R.Bc.Steps);
}

/// sum = 0; i = 0; while (i < n) { sum += a[i]; i += 1 }; out = sum
PRef sumLoopProgram() {
  return PStmt::seq({
      PStmt::declVar("sum", ImpType::F64, eConstF(0.0)),
      PStmt::declVar("i", ImpType::I64, eConstI(0)),
      PStmt::whileLoop(
          eLtI(eVarI("i"), eVarI("n")),
          PStmt::seq2(PStmt::storeVar(
                          "sum", eAddF(eVarF("sum"), eAccF("a", eVarI("i")))),
                      PStmt::storeVar("i", eAddI(eVarI("i"), eConstI(1))))),
      PStmt::storeVar("out", eVarF("sum")),
  });
}

//===----------------------------------------------------------------------===//
// Hand-built programs: success parity
//===----------------------------------------------------------------------===//

TEST(BytecodeVm, SumLoopMatchesTreeVm) {
  VmMemory Init;
  Init.setScalar("n", int64_t{4});
  Init.setArrayF64("a", {1.5, 2.0, 3.25, 4.0});
  BothRuns R = runBoth(sumLoopProgram(), Init);
  expectSuccessParity(R, {"sum", "i", "out", "n"}, {"a"});
  EXPECT_EQ(std::get<double>(*R.BcMem.getScalar("out")), 10.75);
  EXPECT_EQ(R.Bc.Steps, 22);
}

TEST(BytecodeVm, ZeroTripLoopAndWriteback) {
  VmMemory Init;
  Init.setScalar("n", int64_t{0});
  Init.setArrayF64("a", {});
  BothRuns R = runBoth(sumLoopProgram(), Init);
  expectSuccessParity(R, {"sum", "i", "out", "n"}, {"a"});
  EXPECT_EQ(std::get<double>(*R.BcMem.getScalar("out")), 0.0);
}

TEST(BytecodeVm, DeclArrZeroInitAndStores) {
  // b[k] = a[k] * 2 over a freshly declared output array.
  PRef Prog = PStmt::seq({
      PStmt::declArr("b", ImpType::I64, eConstI(5)),
      PStmt::declVar("k", ImpType::I64, eConstI(0)),
      PStmt::whileLoop(
          eLtI(eVarI("k"), eConstI(3)),
          PStmt::seq2(PStmt::storeArr(
                          "b", eVarI("k"),
                          EExpr::call(Ops::mulI(), {eAccI("a", eVarI("k")),
                                                    eConstI(2)})),
                      PStmt::storeVar("k", eAddI(eVarI("k"), eConstI(1))))),
  });
  VmMemory Init;
  Init.setArrayI64("a", {7, -3, 11});
  BothRuns R = runBoth(Prog, Init);
  expectSuccessParity(R, {"k"}, {"a", "b"});
  const auto *B = R.BcMem.getArray("b");
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(B->size(), 5u); // Positions 3,4 keep the zero initialiser.
  EXPECT_EQ(std::get<int64_t>((*B)[1]), -6);
  EXPECT_EQ(std::get<int64_t>((*B)[4]), 0);
}

TEST(BytecodeVm, BranchArmStoresStayOnTheirPath) {
  // Only the taken arm's store may appear in the final memory.
  auto Prog = [](ERef Cond) {
    return PStmt::branch(std::move(Cond),
                         PStmt::storeVar("t", eConstI(1)),
                         PStmt::storeVar("e", eConstI(2)));
  };
  VmMemory Init;
  BothRuns R = runBoth(Prog(eBool(true)), Init);
  expectSuccessParity(R, {"t", "e"}, {});
  EXPECT_TRUE(R.BcMem.getScalar("t").has_value());
  EXPECT_FALSE(R.BcMem.getScalar("e").has_value());
  BothRuns R2 = runBoth(Prog(eBool(false)), Init);
  expectSuccessParity(R2, {"t", "e"}, {});
  EXPECT_FALSE(R2.BcMem.getScalar("t").has_value());
}

TEST(BytecodeVm, LazyOpsGuardOutOfBounds) {
  // The short-circuit operators and select must protect the unevaluated
  // argument, exactly as the tree VM (and C) do: a[9] here is out of
  // bounds but never reached.
  PRef Prog = PStmt::seq({
      PStmt::declVar("g", ImpType::Bool,
                     eAnd(eBool(false),
                          eLtI(eAccI("a", eConstI(9)), eConstI(5)))),
      PStmt::declVar("h", ImpType::Bool,
                     eOr(eBool(true),
                         eLtI(eAccI("a", eConstI(9)), eConstI(5)))),
      PStmt::declVar("s", ImpType::I64,
                     eSelect(eBool(false), eAccI("a", eConstI(9)),
                             eConstI(42))),
  });
  VmMemory Init;
  Init.setArrayI64("a", {1, 2});
  BothRuns R = runBoth(Prog, Init);
  expectSuccessParity(R, {"g", "h", "s"}, {"a"});
  EXPECT_EQ(std::get<bool>(*R.BcMem.getScalar("g")), false);
  EXPECT_EQ(std::get<bool>(*R.BcMem.getScalar("h")), true);
  EXPECT_EQ(std::get<int64_t>(*R.BcMem.getScalar("s")), 42);
}

//===----------------------------------------------------------------------===//
// Error parity
//===----------------------------------------------------------------------===//

TEST(BytecodeVm, OutOfBoundsAccessParity) {
  PRef Prog = PStmt::storeVar("out", eAccI("a", eConstI(10)));
  VmMemory Init;
  Init.setArrayI64("a", {1, 2, 3});
  expectErrorParity(runBoth(Prog, Init),
                    "out-of-bounds access a[10], size 3");
  // Negative indices report through the same path.
  PRef Neg = PStmt::storeVar("out", eAccI("a", eConstI(-1)));
  expectErrorParity(runBoth(Neg, Init),
                    "out-of-bounds access a[-1], size 3");
}

TEST(BytecodeVm, OutOfBoundsStoreParity) {
  PRef Prog = PStmt::storeArr("a", eConstI(7), eConstI(0));
  VmMemory Init;
  Init.setArrayI64("a", {1, 2, 3});
  expectErrorParity(runBoth(Prog, Init), "out-of-bounds store a[7], size 3");
}

TEST(BytecodeVm, UndefinedNameParity) {
  VmMemory Empty;
  expectErrorParity(runBoth(PStmt::storeVar("out", eVarI("nope")), Empty),
                    "read of undefined variable 'nope'");
  expectErrorParity(
      runBoth(PStmt::storeVar("out", eAccI("gone", eConstI(0))), Empty),
      "access of undefined array 'gone'");
  expectErrorParity(
      runBoth(PStmt::storeArr("gone", eConstI(0), eConstI(1)), Empty),
      "store to undefined array 'gone'");
}

TEST(BytecodeVm, UndefinedArrayReportedBeforeBadIndex) {
  // The tree VM reports the unbound array before evaluating the index
  // expression, even when the index itself would fail.
  VmMemory Empty;
  expectErrorParity(
      runBoth(PStmt::storeVar("out", eAccI("gone", eVarI("alsogone"))),
              Empty),
      "access of undefined array 'gone'");
}

TEST(BytecodeVm, NegativeArraySizeParity) {
  VmMemory Empty;
  expectErrorParity(
      runBoth(PStmt::declArr("b", ImpType::F64, eConstI(-4)), Empty),
      "negative array size for 'b'");
}

TEST(BytecodeVm, StepBudgetParity) {
  PRef Spin = PStmt::seq2(
      PStmt::declVar("x", ImpType::I64, eConstI(0)),
      PStmt::whileLoop(eBool(true),
                       PStmt::storeVar("x", eAddI(eVarI("x"), eConstI(1)))));
  VmMemory Empty;
  BothRuns R = runBoth(Spin, Empty, /*MaxSteps=*/100);
  expectErrorParity(R, "step budget exhausted (possible non-termination)");
  // The budget-crossing charge itself is counted: Steps = MaxSteps + 1.
  EXPECT_EQ(R.Bc.Steps, 101);
}

//===----------------------------------------------------------------------===//
// Golden disassembly
//===----------------------------------------------------------------------===//

TEST(BytecodeVm, GoldenDisassembly) {
  BytecodeProgram BC = compileBytecode(sumLoopProgram());
  ASSERT_TRUE(BC.ok()) << BC.CompileError;
  EXPECT_EQ(BC.disassemble(),
            "   0: steps 2\n"
            "   1: mov.f sum, #0.0\n"
            "   2: setdef sum\n"
            "   3: steps 1\n"
            "   4: mov.i i, #0\n"
            "   5: setdef i\n"
            "   6: steps 1\n"
            "   7: steps 1\n"
            "   8: chkdef n\n"
            "   9: lt.i t0, i, n\n"
            "  10: jf t0, @17\n"
            "  11: steps 2\n"
            "  12: ld.f t0, a[i]\n"
            "  13: add.f sum, sum, t0\n"
            "  14: steps 1\n"
            "  15: add.i i, i, #1\n"
            "  16: jmp @7\n"
            "  17: steps 1\n"
            "  18: mov.f out, sum\n"
            "  19: setdef out\n"
            "  20: halt\n");
}

TEST(BytecodeVm, CompileErrorOnIllTypedProgram) {
  // One name used at two types is outside the statically-typed fragment.
  PRef Bad = PStmt::seq2(PStmt::storeVar("x", eConstI(1)),
                         PStmt::storeVar("x", eConstF(1.0)));
  BytecodeProgram BC = compileBytecode(Bad);
  EXPECT_FALSE(BC.ok());
  VmMemory Empty;
  VmRunResult R = bytecodeRun(BC, Empty);
  ASSERT_TRUE(R.Error.has_value());
  EXPECT_NE(R.Error->find("bytecode compile error"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compiled programs: the Fig. 2 kernel at O0/O1/O2
//===----------------------------------------------------------------------===//

TEST(BytecodeVm, Fig2CompiledParityAtAllOptLevels) {
  Attr AO = Attr::named("bvm_o");
  SparseVector<double> X(10), Y(10), Z(10);
  for (auto [I, V] : {std::pair<Idx, double>{1, 2.0}, {4, 3.0}, {7, 5.0}})
    X.push(I, V);
  for (auto [I, V] :
       {std::pair<Idx, double>{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}})
    Y.push(I, V);
  for (auto [I, V] : {std::pair<Idx, double>{4, 10.0}, {7, 3.0}, {8, 1.0}})
    Z.push(I, V);

  for (int Opt : {0, 1, 2}) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(AO, 10);
    Ctx.bind(sparseVecBinding("x", AO));
    Ctx.bind(sparseVecBinding("y", AO));
    Ctx.bind(sparseVecBinding("z", AO));
    PRef Prog = compileFullContraction(
        Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
    VmMemory Init;
    bindSparseVector(Init, "x", X);
    bindSparseVector(Init, "y", Y);
    bindSparseVector(Init, "z", Z);
    BothRuns R = runBoth(Prog, Init);
    expectSuccessParity(R, {"out"}, {});
    EXPECT_EQ(std::get<double>(*R.BcMem.getScalar("out")), 90.0)
        << "O" << Opt;
  }
}

//===----------------------------------------------------------------------===//
// Randomized differential (the full fuzz matrix, tree ≡ bytecode legs)
//===----------------------------------------------------------------------===//

TEST(BytecodeVm, RandomizedDifferentialAcrossOptLevels) {
  // Each case runs the compiled program at O0/O1/O2 on both executors and
  // cross-checks them directly (steps, error text, bit-identical output)
  // on top of the oracle comparison. A seed window distinct from the
  // 200-seed smoke test buys extra coverage.
  for (uint64_t Seed = 50'000; Seed < 50'060; ++Seed) {
    FuzzCase C = genCase(Seed);
    FuzzReport Rep = runFuzzCase(C, VmBackend::Both);
    EXPECT_TRUE(Rep.ok()) << "seed " << Seed << ": " << Rep.toString();
  }
}

} // namespace

//===- tests/tiling_test.cpp - Indexing maps, schedules, tiled kernels ----===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The indexing-map layer (planner/indexing.h) and the planner-scheduled
// kernel variants it selects (baselines/etch_kernels.h, relational/
// queries.h):
//
//   - classification goldens: the per-access maps and sequential/strided/
//     gather labels on hand-built plans;
//   - the EXPLAIN access-pattern cost term;
//   - bit-identity: every tiled/SIMD variant reproduces its serial
//     original bit for bit, exhaustively over tile sizes (including
//     tile = 1 and tile > extent) and on randomized inputs with empty
//     rows;
//   - schedule selection: chooseSchedule picks tiled/SIMD exactly when
//     the cache model predicts, and never vectorizes a reduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "planner/indexing.h"
#include "planner/plan.h"
#include "relational/prepared.h"
#include "support/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

using namespace etch;

namespace {

// Fresh attributes for this binary, interned in hierarchy order.
Attr tlA(int I) {
  static std::vector<Attr> As = [] {
    std::vector<Attr> V;
    for (const char *N : {"tl_i", "tl_j", "tl_k"})
      V.push_back(Attr::named(N));
    return V;
  }();
  return As.at(static_cast<size_t>(I));
}
Attr tlI() { return tlA(0); }
Attr tlJ() { return tlA(1); }
Attr tlK() { return tlA(2); }

/// Σ_j A(i,j) · x(j) with CSR A and dense x — the SpMV planning query.
struct SpmvQuery {
  PlanQuery Q;
};

SpmvQuery spmvQuery(const CsrMatrix<double> &A, const DenseVector<double> &X) {
  TypeContext Ctx;
  Ctx["A"] = Shape{tlI(), tlJ()};
  Ctx["x"] = Shape{tlJ()};
  ExprPtr E = Expr::sum(tlJ(), mulExpand(Expr::var("A"), Expr::var("x"), Ctx));
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, tlI(), tlJ());
  Stats["x"] = statsOfDenseVector("x", X, tlJ());
  auto Q = extractQuery(E, Ctx, Stats, {});
  EXPECT_TRUE(Q);
  return {std::move(*Q)};
}

/// Σ_j A(i,j) · B(j,k) with CSR inputs — the matmul planning query.
PlanQuery matmulQuery(const CsrMatrix<double> &A, const CsrMatrix<double> &B) {
  TypeContext Ctx;
  Ctx["A"] = Shape{tlI(), tlJ()};
  Ctx["B"] = Shape{tlJ(), tlK()};
  ExprPtr E = Expr::sum(tlJ(), mulExpand(Expr::var("A"), Expr::var("B"), Ctx));
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, tlI(), tlJ());
  Stats["B"] = statsOfCsr("B", B, tlJ(), tlK());
  auto Q = extractQuery(E, Ctx, Stats, {});
  EXPECT_TRUE(Q);
  return std::move(*Q);
}

bool sameBits(const std::vector<double> &A, const std::vector<double> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0;
}

bool sameCsr(const CsrMatrix<double> &A, const CsrMatrix<double> &B) {
  return A.Pos == B.Pos && A.Crd == B.Crd && sameBits(A.Val, B.Val);
}

//===----------------------------------------------------------------------===//
// Classification goldens
//===----------------------------------------------------------------------===//

TEST(Indexing, SpmvClassification) {
  // A located dense vector under a compressed driver is a gather; the
  // driving CSR walks its own storage sequentially at both levels.
  auto A = CsrMatrix<double>::fromCoo(3, 4, {{0, 1, 1}, {0, 3, 2}, {2, 0, 3}});
  DenseVector<double> X(4, 1.0);
  auto S = spmvQuery(A, X);
  auto P = planForOrder(S.Q, {tlI(), tlJ()});
  ASSERT_TRUE(P);
  IndexingInfo Info = analyzeIndexing(S.Q, *P);
  ASSERT_EQ(Info.Accesses.size(), 2u);

  const AccessIndexing *IA = Info.access("A");
  ASSERT_NE(IA, nullptr);
  EXPECT_EQ(IA->Map, "(tl_i, tl_j) -> (tl_i, tl_j)");
  ASSERT_EQ(IA->Levels.size(), 2u);
  EXPECT_TRUE(IA->Levels[0].Driving);
  EXPECT_EQ(IA->Levels[0].Pattern, AccessPattern::Sequential);
  EXPECT_TRUE(IA->Levels[1].Driving);
  EXPECT_EQ(IA->Levels[1].Pattern, AccessPattern::Sequential);

  const AccessIndexing *IX = Info.access("x");
  ASSERT_NE(IX, nullptr);
  EXPECT_EQ(IX->Map, "(tl_i, tl_j) -> (tl_j)");
  ASSERT_EQ(IX->Levels.size(), 1u);
  EXPECT_FALSE(IX->Levels[0].Driving);
  EXPECT_EQ(IX->Levels[0].Pattern, AccessPattern::Gather);

  // The gather is priced: x is visited once per (i, j) iteration.
  EXPECT_GT(Info.AccessCost, 0.0);
  PlanOptions Free;
  Free.GatherVisitCost = 0.0;
  Free.StridedVisitCost = 0.0;
  EXPECT_EQ(analyzeIndexing(S.Q, *P, Free).AccessCost, 0.0);
}

TEST(Indexing, DenseMatrixStrideUnderDenseDriver) {
  // Two dense matrices multiplied pointwise: one drives each level, the
  // other is located. The located matrix's *outer* level advances by the
  // inner dense extent per visit — strided(xNJ) — and its inner level is
  // unit stride.
  const Idx NI = 3, NJ = 5;
  std::vector<Tuple> T;
  for (Idx I = 0; I < NI; ++I)
    for (Idx J = 0; J < NJ; ++J)
      T.push_back({I, J});
  PlanQuery Q;
  PlanTerm Term;
  Term.Factors = {{"M", {tlI(), tlJ()}}, {"N", {tlI(), tlJ()}}};
  Term.Free = {};
  Term.Summed = {tlI(), tlJ()};
  Q.Terms.push_back(Term);
  auto DenseStats = [&](const char *Name) {
    return statsFromTuples(Name, {tlI(), tlJ()},
                           {LevelSpec::Dense, LevelSpec::Dense}, {NI, NJ}, T);
  };
  Q.Stats.emplace("M", DenseStats("M"));
  Q.Stats.emplace("N", DenseStats("N"));
  Q.Dims.emplace(tlI().id(), NI);
  Q.Dims.emplace(tlJ().id(), NJ);
  auto P = planForOrder(Q, {tlI(), tlJ()});
  ASSERT_TRUE(P);
  IndexingInfo Info = analyzeIndexing(Q, *P);
  ASSERT_EQ(Info.Accesses.size(), 2u);
  // Exactly one access drives the outer level; the other is the located
  // one, whatever the tie-break picked.
  const AccessIndexing &L0 = Info.Accesses[0].Levels[0].Driving
                                 ? Info.Accesses[1]
                                 : Info.Accesses[0];
  ASSERT_EQ(L0.Levels.size(), 2u);
  EXPECT_FALSE(L0.Levels[0].Driving);
  EXPECT_EQ(L0.Levels[0].Pattern, AccessPattern::Strided);
  EXPECT_EQ(L0.Levels[0].Stride, NJ);
  EXPECT_FALSE(L0.Levels[1].Driving);
  EXPECT_EQ(L0.Levels[1].Pattern, AccessPattern::Sequential);
  // The strided level renders its stride.
  EXPECT_NE(Info.toString().find("dense strided(x5)"), std::string::npos);
}

TEST(Indexing, MatmulRowGatherGolden) {
  // Linear-combination matmul: B's dense row level is located by A's
  // compressed j coordinates — a gather; B's k level drives.
  auto A = CsrMatrix<double>::fromCoo(2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  auto B = CsrMatrix<double>::fromCoo(3, 2, {{0, 1, 4}, {2, 0, 5}, {2, 1, 6}});
  PlanQuery Q = matmulQuery(A, B);
  auto P = planForOrder(Q, {tlI(), tlJ(), tlK()});
  ASSERT_TRUE(P);
  IndexingInfo Info = analyzeIndexing(Q, *P);
  EXPECT_EQ(Info.toString(),
            "indexing:\n"
            "  A: (tl_i, tl_j, tl_k) -> (tl_i, tl_j); tl_i dense sequential"
            " [drives], tl_j compressed sequential [drives]\n"
            "  B: (tl_i, tl_j, tl_k) -> (tl_j, tl_k); tl_j dense gather,"
            " tl_k compressed sequential [drives]\n");
}

TEST(Indexing, ExplainRendersAccessTerm) {
  auto A = CsrMatrix<double>::fromCoo(3, 4, {{0, 1, 1}, {0, 3, 2}, {2, 0, 3}});
  DenseVector<double> X(4, 1.0);
  auto S = spmvQuery(A, X);
  auto Best = bestPlan(S.Q);
  ASSERT_TRUE(Best);
  std::string Explain = Best->explain(S.Q);
  EXPECT_NE(Explain.find(" access\n"), std::string::npos);
  EXPECT_NE(Explain.find("indexing:\n"), std::string::npos);
  EXPECT_NE(Explain.find("tl_j dense gather"), std::string::npos);
  // The access term the EXPLAIN prices is the stored AccessCost.
  EXPECT_GT(Best->AccessCost, 0.0);
  EXPECT_EQ(Best->cost(), Best->StreamCost + Best->TransposeCost +
                              Best->RehashCost + Best->AccessCost);
}

//===----------------------------------------------------------------------===//
// Schedule selection
//===----------------------------------------------------------------------===//

TEST(Schedule, SpmvTiledExactlyWhenGatherSpillsL1) {
  Rng R(5);
  const Idx N = 1 << 12; // x occupies 32 KiB: exactly the boundary.
  auto A = randomCsr(R, N, N, 20000);
  auto X = randomDenseVector(R, N);
  auto S = spmvQuery(A, X);
  auto Best = bestPlan(S.Q);
  ASSERT_TRUE(Best);
  IndexingInfo Info = analyzeIndexing(S.Q, *Best);

  // L1 smaller than the gathered vector -> tiled, tile = L1/2 elements.
  ScheduleOptions Small;
  Small.L1Bytes = 16 * 1024;
  KernelSchedule KS = chooseSchedule(S.Q, *Best, Info, Small);
  EXPECT_TRUE(KS.Tiled);
  EXPECT_EQ(KS.ColTile, 16 * 1024 / 2 / 8);
  // Inner j is a reduction: never vectorized, whatever the width.
  EXPECT_FALSE(KS.Simd);

  // L1 big enough to hold x -> the plain kernel.
  ScheduleOptions Big;
  Big.L1Bytes = 64 * 1024;
  EXPECT_FALSE(chooseSchedule(S.Q, *Best, Info, Big).Tiled);
}

TEST(Schedule, MatmulTilesOnWorkspaceScatter) {
  // Lin-comb matmul rewrites the whole dense workspace row once per summed
  // j step, so the output row is a gathered operand in its own right. With
  // k wider than j it outweighs B's row gather and is named in the reason.
  Rng R(6);
  const Idx N = 1 << 12;
  auto A = randomCsr(R, N, N, 20000);
  auto B = randomCsr(R, N, 2 * N, 20000);
  PlanQuery Q = matmulQuery(A, B);
  auto P = planForOrder(Q, {tlI(), tlJ(), tlK()});
  ASSERT_TRUE(P);
  IndexingInfo Info = analyzeIndexing(Q, *P);

  ScheduleOptions Small;
  Small.L1Bytes = 16 * 1024;
  KernelSchedule KS = chooseSchedule(Q, *P, Info, Small);
  EXPECT_TRUE(KS.Tiled);
  EXPECT_NE(KS.Reason.find("output(tl_k)"), std::string::npos);
  // Inner k drives a compressed level: not a dense-sequential tail.
  EXPECT_FALSE(KS.Simd);

  ScheduleOptions Big;
  Big.L1Bytes = 1 << 20;
  EXPECT_FALSE(chooseSchedule(Q, *P, Info, Big).Tiled);
}

TEST(Schedule, SimdOnlyOnFreeDenseSequentialInner) {
  // A free dense innermost loop (every lane an independent output) is
  // vectorized once its extent covers a vector; a forced width of 1
  // (the ETCH_SIMD=OFF build) keeps it scalar.
  const Idx NI = 8, NJ = 16;
  std::vector<Tuple> T;
  for (Idx I = 0; I < NI; ++I)
    for (Idx J = 0; J < NJ; ++J)
      T.push_back({I, J});
  PlanQuery Q;
  PlanTerm Term;
  Term.Factors = {{"M", {tlI(), tlJ()}}};
  Term.Free = {tlI(), tlJ()};
  Q.Terms.push_back(Term);
  Q.Stats.emplace("M", statsFromTuples("M", {tlI(), tlJ()},
                                       {LevelSpec::Dense, LevelSpec::Dense},
                                       {NI, NJ}, T));
  Q.Dims.emplace(tlI().id(), NI);
  Q.Dims.emplace(tlJ().id(), NJ);
  auto P = planForOrder(Q, {tlI(), tlJ()});
  ASSERT_TRUE(P);
  IndexingInfo Info = analyzeIndexing(Q, *P);

  ScheduleOptions SO;
  SO.SimdWidth = 4;
  EXPECT_TRUE(chooseSchedule(Q, *P, Info, SO).Simd);
  SO.SimdWidth = 1;
  EXPECT_FALSE(chooseSchedule(Q, *P, Info, SO).Simd);
  // Too narrow for one vector: scalar.
  SO.SimdWidth = 32;
  EXPECT_FALSE(chooseSchedule(Q, *P, Info, SO).Simd);

  // The same loop as a reduction must never vectorize: lanes would split
  // a serial fp accumulation chain.
  PlanQuery QSum = Q;
  QSum.Terms[0].Free = {};
  QSum.Terms[0].Summed = {tlI(), tlJ()};
  auto PSum = planForOrder(QSum, {tlI(), tlJ()});
  ASSERT_TRUE(PSum);
  IndexingInfo InfoSum = analyzeIndexing(QSum, *PSum);
  SO.SimdWidth = 4;
  KernelSchedule KS = chooseSchedule(QSum, *PSum, InfoSum, SO);
  EXPECT_FALSE(KS.Simd);
  EXPECT_NE(KS.Reason.find("reduction"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bit-identity: tiled variants vs their serial originals
//===----------------------------------------------------------------------===//

// Tile sweeps cover the degenerate shapes: 0 = unblocked path, 1 = one
// column per block, extent and beyond = a single block.
const int64_t kTiles[] = {0, 1, 2, 3, 7, 64, 1 << 20};

TEST(TiledKernels, SpmvAllTilesMatchSerialExhaustively) {
  // Hand-built matrix with an empty row, a full row, and a singleton.
  auto A = CsrMatrix<double>::fromCoo(
      4, 6,
      {{0, 0, 1.5}, {0, 5, -2.25}, {2, 1, 3.0}, {2, 2, 0.5},
       {2, 3, -1.0}, {2, 4, 2.0}, {3, 2, 7.0}});
  Rng R(7);
  auto X = randomDenseVector(R, 6);
  DenseVector<double> Ref(4), Y(4);
  kernels::spmv(A, X, Ref);
  for (int64_t Tile : kTiles) {
    kernels::spmvTiled(A, X, Y, Tile);
    EXPECT_TRUE(sameBits(Y.Val, Ref.Val)) << "tile " << Tile;
  }
}

TEST(TiledKernels, SpmvRandomizedMatchesSerial) {
  Rng R(11);
  for (int Case = 0; Case < 20; ++Case) {
    Idx Rows = 1 + static_cast<Idx>(R.nextBelow(60));
    Idx Cols = 1 + static_cast<Idx>(R.nextBelow(80));
    size_t Nnz = R.nextBelow(
        static_cast<uint64_t>(Rows) * static_cast<uint64_t>(Cols) / 2 + 1);
    auto A = randomCsr(R, Rows, Cols, Nnz);
    auto X = randomDenseVector(R, Cols);
    DenseVector<double> Ref(Rows), Y(Rows);
    kernels::spmv(A, X, Ref);
    for (int64_t Tile : kTiles) {
      kernels::spmvTiled(A, X, Y, Tile);
      EXPECT_TRUE(sameBits(Y.Val, Ref.Val))
          << "case " << Case << " tile " << Tile;
    }
    ThreadPool Pool(3);
    for (size_t Chunks : {size_t(1), size_t(2), size_t(5)}) {
      kernels::spmvTiledParallel(Pool, A, X, Y, 3, Chunks);
      EXPECT_TRUE(sameBits(Y.Val, Ref.Val))
          << "case " << Case << " chunks " << Chunks;
    }
  }
}

TEST(TiledKernels, InnerMatchesStreamKernel) {
  Rng R(13);
  for (int Case = 0; Case < 20; ++Case) {
    Idx N = 1 + static_cast<Idx>(R.nextBelow(40));
    uint64_t Cap = static_cast<uint64_t>(N) * static_cast<uint64_t>(N);
    auto A = randomCsr(
        R, N, N,
        std::min(Cap, R.nextBelow(static_cast<uint64_t>(N) * 4)));
    auto B = randomCsr(
        R, N, N,
        std::min(Cap, R.nextBelow(static_cast<uint64_t>(N) * 4)));
    double Ref = kernels::inner(A, B);
    double Raw = kernels::innerTiled(A, B);
    EXPECT_TRUE(std::memcmp(&Ref, &Raw, sizeof(double)) == 0)
        << "case " << Case;
  }
}

TEST(TiledKernels, MmulAllTilesMatchSerialExhaustively) {
  auto A = CsrMatrix<double>::fromCoo(
      3, 4, {{0, 0, 1.0}, {0, 3, 2.0}, {2, 1, -3.0}, {2, 2, 0.25}});
  auto B = CsrMatrix<double>::fromCoo(
      4, 5,
      {{0, 0, 1.0}, {0, 4, 2.0}, {1, 2, 3.0}, {2, 2, -1.5},
       {3, 1, 0.5}, {3, 4, -2.0}});
  auto Ref = kernels::mmul(A, B);
  for (int64_t Tile : kTiles)
    EXPECT_TRUE(sameCsr(kernels::mmulTiled(A, B, Tile), Ref))
        << "tile " << Tile;
}

TEST(TiledKernels, MmulRandomizedMatchesSerialIncludingCancellation) {
  Rng R(17);
  for (int Case = 0; Case < 12; ++Case) {
    Idx N = 1 + static_cast<Idx>(R.nextBelow(30));
    uint64_t Cap = static_cast<uint64_t>(N) * static_cast<uint64_t>(N);
    auto A = randomCsr(
        R, N, N,
        std::min(Cap, R.nextBelow(static_cast<uint64_t>(N) * 3)));
    auto B = randomCsr(
        R, N, N,
        std::min(Cap, R.nextBelow(static_cast<uint64_t>(N) * 3)));
    // Mix in exact negations so some workspace sums cancel to exactly 0.0
    // mid-row (the duplicate-Touched-push path must fire identically).
    for (size_t I = 0; I + 1 < A.Val.size(); I += 2)
      A.Val[I + 1] = -A.Val[I];
    auto Ref = kernels::mmul(A, B);
    for (int64_t Tile : kTiles)
      EXPECT_TRUE(sameCsr(kernels::mmulTiled(A, B, Tile), Ref))
          << "case " << Case << " tile " << Tile;
  }
}

TEST(TiledKernels, MttkrpSimdAndParallelMatchSerial) {
  Rng R(19);
  for (int64_t Rank : {1, 3, 4, 7, 16, 33}) {
    auto B = randomCsf3(R, 12, 10, 8, 80);
    std::vector<double> C(static_cast<size_t>(10 * Rank)),
        D(static_cast<size_t>(8 * Rank));
    for (auto &V : C)
      V = randomValue(R);
    for (auto &V : D)
      V = randomValue(R);
    std::vector<double> Ref, Out;
    kernels::mttkrp(B, C, D, Rank, Ref);
    for (bool Simd : {false, true}) {
      kernels::mttkrpTiled(B, C, D, Rank, Out, Simd);
      EXPECT_TRUE(sameBits(Out, Ref)) << "rank " << Rank << " simd " << Simd;
    }
    ThreadPool Pool(3);
    for (size_t Chunks : {size_t(1), size_t(3), size_t(16)}) {
      kernels::mttkrpTiledParallel(Pool, B, C, D, Rank, Out, true, Chunks);
      EXPECT_TRUE(sameBits(Out, Ref))
          << "rank " << Rank << " chunks " << Chunks;
    }
  }
}

TEST(TiledKernels, TriangleRawGallopMatchesStreamPlan) {
  // Worst-case family plus a random graph; the raw GenericJoin with
  // galloping intersections must count exactly what the stream plan does.
  for (Idx N : {Idx(1), Idx(2), Idx(64), Idx(300)}) {
    EdgeList G = triangleWorstCase(N);
    auto P = trianglePrepare(G, G, G);
    int64_t Ref = triangleFused(*P);
    EXPECT_EQ(triangleFusedTiled(*P), Ref) << "worst-case n " << N;
    ThreadPool Pool(3);
    for (size_t Chunks : {size_t(1), size_t(4)})
      EXPECT_EQ(triangleFusedTiledParallel(Pool, *P, Chunks), Ref)
          << "worst-case n " << N << " chunks " << Chunks;
  }
  Rng R(23);
  EdgeList G;
  for (int E = 0; E < 400; ++E)
    G.Edges.push_back({static_cast<Idx>(R.nextBelow(40)),
                       static_cast<Idx>(R.nextBelow(40))});
  auto P = trianglePrepare(G, G, G);
  int64_t Ref = triangleFused(*P);
  EXPECT_EQ(triangleFusedTiled(*P), Ref);
  ThreadPool Pool(2);
  EXPECT_EQ(triangleFusedTiledParallel(Pool, *P, 7), Ref);
}

#if ETCH_SIMD_F64
TEST(Simd, LaneOpsMatchScalarBitForBit) {
  // The portable vector type applies IEEE ops per lane: a*b+c per lane
  // equals the scalar expression exactly.
  Rng R(29);
  for (int Case = 0; Case < 200; ++Case) {
    double A[4], B[4], C[4], Out[4];
    for (int L = 0; L < 4; ++L) {
      A[L] = randomValue(R);
      B[L] = randomValue(R);
      C[L] = randomValue(R);
    }
    simdStore(Out, simdLoad(A) + simdLoad(B) * simdLoad(C));
    for (int L = 0; L < 4; ++L) {
      double Want = A[L] + B[L] * C[L];
      EXPECT_TRUE(std::memcmp(&Out[L], &Want, sizeof(double)) == 0);
    }
  }
}
#endif

} // namespace

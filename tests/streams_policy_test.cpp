//===- tests/streams_policy_test.cpp - SearchPolicy equivalence ----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Example 5.2 allows a compressed level to implement `skip` with any search
// method that lands on the first coordinate >= the target; the Linear,
// Binary, and Gallop policies must therefore be *observationally
// identical* — same cursor position, validity, index, and value after any
// sequence of operations. The ablation bench exercises the policies for
// speed; this randomized property test pins down their equivalence, which
// the parallel partitioner also relies on (a chunk boundary lands on the
// same position under every policy).
//
//===----------------------------------------------------------------------===//

#include "formats/random.h"
#include "formats/vectors.h"
#include "streams/primitives.h"

#include <gtest/gtest.h>

using namespace etch;

namespace {

class PolicyEquiv : public ::testing::TestWithParam<uint64_t> {};

/// Asserts the three cursors are in identical states.
template <typename L, typename B, typename G>
void expectSameState(const L &Lin, const B &Bin, const G &Gal,
                     const char *Ctx) {
  ASSERT_EQ(Lin.position(), Bin.position()) << Ctx;
  ASSERT_EQ(Lin.position(), Gal.position()) << Ctx;
  ASSERT_EQ(Lin.valid(), Bin.valid()) << Ctx;
  ASSERT_EQ(Lin.valid(), Gal.valid()) << Ctx;
  if (Lin.valid()) {
    ASSERT_EQ(Lin.index(), Bin.index()) << Ctx;
    ASSERT_EQ(Lin.index(), Gal.index()) << Ctx;
    ASSERT_EQ(Lin.value(), Bin.value()) << Ctx;
    ASSERT_EQ(Lin.value(), Gal.value()) << Ctx;
  }
}

TEST_P(PolicyEquiv, IdenticalSkipTrajectories) {
  Rng R(GetParam());
  const Idx N = 1 + static_cast<Idx>(R.nextBelow(3000));
  size_t Nnz = static_cast<size_t>(R.nextBelow(static_cast<uint64_t>(N)));
  auto V = randomSparseVector(R, N, Nnz);

  auto Lin = V.stream<SearchPolicy::Linear>();
  auto Bin = V.stream<SearchPolicy::Binary>();
  auto Gal = V.stream<SearchPolicy::Gallop>();
  expectSameState(Lin, Bin, Gal, "initial");

  for (int Step = 0; Step < 256 && Lin.valid(); ++Step) {
    // A mix of skip targets: at the cursor (δ-like), slightly ahead, far
    // ahead, and behind (must be a no-op for every policy).
    Idx Target;
    switch (R.nextBelow(4)) {
    case 0:
      Target = Lin.index();
      break;
    case 1:
      Target = Lin.index() + static_cast<Idx>(R.nextBelow(8));
      break;
    case 2:
      Target = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(N) + 16));
      break;
    default:
      Target = Lin.index() - static_cast<Idx>(R.nextBelow(32));
      break;
    }
    bool Strict = R.nextBool(0.5);
    Lin.skip(Target, Strict);
    Bin.skip(Target, Strict);
    Gal.skip(Target, Strict);
    SCOPED_TRACE(::testing::Message()
                 << "step " << Step << " skip(" << Target << ", " << Strict
                 << ")");
    expectSameState(Lin, Bin, Gal, "after skip");
  }
}

TEST_P(PolicyEquiv, FullWalkVisitsSameEntries) {
  Rng R(GetParam() + 5000);
  const Idx N = 1 + static_cast<Idx>(R.nextBelow(500));
  size_t Nnz = static_cast<size_t>(R.nextBelow(static_cast<uint64_t>(N)));
  auto V = randomSparseVector(R, N, Nnz);

  auto Lin = V.stream<SearchPolicy::Linear>();
  auto Bin = V.stream<SearchPolicy::Binary>();
  auto Gal = V.stream<SearchPolicy::Gallop>();
  size_t Visited = 0;
  while (Lin.valid()) {
    expectSameState(Lin, Bin, Gal, "during walk");
    // δ via the generic strict skip (not next()), so the policies' search
    // loops are what is being exercised.
    Lin.skip(Lin.index(), true);
    Bin.skip(Bin.index(), true);
    Gal.skip(Gal.index(), true);
    ++Visited;
  }
  expectSameState(Lin, Bin, Gal, "terminal");
  EXPECT_EQ(Visited, Nnz);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyEquiv,
                         ::testing::Range<uint64_t>(0, 24));

} // namespace

//===- tests/streams_policy_test.cpp - SearchPolicy equivalence ----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Example 5.2 allows a compressed level to implement `skip` with any search
// method that lands on the first coordinate >= the target; the Linear,
// Binary, and Gallop policies must therefore be *observationally
// identical* — same cursor position, validity, index, and value after any
// sequence of operations. The ablation bench exercises the policies for
// speed; this randomized property test pins down their equivalence, which
// the parallel partitioner also relies on (a chunk boundary lands on the
// same position under every policy).
//
//===----------------------------------------------------------------------===//

#include "formats/random.h"
#include "formats/vectors.h"
#include "streams/primitives.h"

#include <gtest/gtest.h>

#include <limits>

using namespace etch;

namespace {

class PolicyEquiv : public ::testing::TestWithParam<uint64_t> {};

/// Asserts the three cursors are in identical states.
template <typename L, typename B, typename G>
void expectSameState(const L &Lin, const B &Bin, const G &Gal,
                     const char *Ctx) {
  ASSERT_EQ(Lin.position(), Bin.position()) << Ctx;
  ASSERT_EQ(Lin.position(), Gal.position()) << Ctx;
  ASSERT_EQ(Lin.valid(), Bin.valid()) << Ctx;
  ASSERT_EQ(Lin.valid(), Gal.valid()) << Ctx;
  if (Lin.valid()) {
    ASSERT_EQ(Lin.index(), Bin.index()) << Ctx;
    ASSERT_EQ(Lin.index(), Gal.index()) << Ctx;
    ASSERT_EQ(Lin.value(), Bin.value()) << Ctx;
    ASSERT_EQ(Lin.value(), Gal.value()) << Ctx;
  }
}

TEST_P(PolicyEquiv, IdenticalSkipTrajectories) {
  Rng R(GetParam());
  const Idx N = 1 + static_cast<Idx>(R.nextBelow(3000));
  size_t Nnz = static_cast<size_t>(R.nextBelow(static_cast<uint64_t>(N)));
  auto V = randomSparseVector(R, N, Nnz);

  auto Lin = V.stream<SearchPolicy::Linear>();
  auto Bin = V.stream<SearchPolicy::Binary>();
  auto Gal = V.stream<SearchPolicy::Gallop>();
  expectSameState(Lin, Bin, Gal, "initial");

  for (int Step = 0; Step < 256 && Lin.valid(); ++Step) {
    // A mix of skip targets: at the cursor (δ-like), slightly ahead, far
    // ahead, and behind (must be a no-op for every policy).
    Idx Target;
    switch (R.nextBelow(4)) {
    case 0:
      Target = Lin.index();
      break;
    case 1:
      Target = Lin.index() + static_cast<Idx>(R.nextBelow(8));
      break;
    case 2:
      Target = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(N) + 16));
      break;
    default:
      Target = Lin.index() - static_cast<Idx>(R.nextBelow(32));
      break;
    }
    bool Strict = R.nextBool(0.5);
    Lin.skip(Target, Strict);
    Bin.skip(Target, Strict);
    Gal.skip(Target, Strict);
    SCOPED_TRACE(::testing::Message()
                 << "step " << Step << " skip(" << Target << ", " << Strict
                 << ")");
    expectSameState(Lin, Bin, Gal, "after skip");
  }
}

TEST_P(PolicyEquiv, FullWalkVisitsSameEntries) {
  Rng R(GetParam() + 5000);
  const Idx N = 1 + static_cast<Idx>(R.nextBelow(500));
  size_t Nnz = static_cast<size_t>(R.nextBelow(static_cast<uint64_t>(N)));
  auto V = randomSparseVector(R, N, Nnz);

  auto Lin = V.stream<SearchPolicy::Linear>();
  auto Bin = V.stream<SearchPolicy::Binary>();
  auto Gal = V.stream<SearchPolicy::Gallop>();
  size_t Visited = 0;
  while (Lin.valid()) {
    expectSameState(Lin, Bin, Gal, "during walk");
    // δ via the generic strict skip (not next()), so the policies' search
    // loops are what is being exercised.
    Lin.skip(Lin.index(), true);
    Bin.skip(Bin.index(), true);
    Gal.skip(Gal.index(), true);
    ++Visited;
  }
  expectSameState(Lin, Bin, Gal, "terminal");
  EXPECT_EQ(Visited, Nnz);
}

//===----------------------------------------------------------------------===//
// Boundary coordinates: galloping near the top of the index space
//===----------------------------------------------------------------------===//

// The galloping probe `Pos + Step` must not wrap size_t (and the doubling
// `Step *= 2` must not overflow) when coordinates sit near `1 << 62` and
// the Idx maximum — extents real kernels never reach but skip arithmetic
// must still be total over.
TEST(PolicyBoundary, GallopNearIdxMax) {
  constexpr Idx IMax = std::numeric_limits<Idx>::max();
  constexpr Idx Big = Idx(1) << 62;
  SparseVector<double> V(IMax);
  int K = 0;
  for (Idx I : {Idx(0), Idx(5), Big, Big + 3, IMax - 2, IMax - 1})
    V.push(I, 1.0 + K++);

  // Every policy, skipped to the same adversarial targets, must land in
  // the same state (first coordinate >= target; strict: > target).
  struct Probe {
    Idx Target;
    bool Strict;
  };
  const Probe Probes[] = {
      {0, false},        {0, true},        {6, false},      {Big - 1, false},
      {Big, false},      {Big, true},      {Big + 2, true}, {Big + 3, false},
      {IMax - 2, false}, {IMax - 2, true}, {IMax - 1, true}};
  for (const Probe &P : Probes) {
    auto Lin = V.stream<SearchPolicy::Linear>();
    auto Bin = V.stream<SearchPolicy::Binary>();
    auto Gal = V.stream<SearchPolicy::Gallop>();
    Lin.skip(P.Target, P.Strict);
    Bin.skip(P.Target, P.Strict);
    Gal.skip(P.Target, P.Strict);
    SCOPED_TRACE(::testing::Message()
                 << "skip(" << P.Target << ", " << P.Strict << ")");
    expectSameState(Lin, Bin, Gal, "after boundary skip");
  }

  // A full strict-skip walk terminates and visits all six entries under
  // every policy (the last entry sits one below the Idx maximum, where a
  // saturating strict skip must still reach the terminal state).
  auto Lin = V.stream<SearchPolicy::Linear>();
  auto Bin = V.stream<SearchPolicy::Binary>();
  auto Gal = V.stream<SearchPolicy::Gallop>();
  size_t Visited = 0;
  while (Gal.valid()) {
    expectSameState(Lin, Bin, Gal, "during boundary walk");
    Lin.skip(Lin.index(), true);
    Bin.skip(Bin.index(), true);
    Gal.skip(Gal.index(), true);
    ++Visited;
  }
  expectSameState(Lin, Bin, Gal, "boundary terminal");
  EXPECT_EQ(Visited, 6u);
}

// Incremental galloping from a mid-stream cursor: after skipping to the
// middle of the support, a further long skip probes from the cursor, where
// `End - 1 - Pos` (not the array length) bounds the doubling.
TEST(PolicyBoundary, GallopResumesFromCursor) {
  constexpr Idx IMax = std::numeric_limits<Idx>::max();
  SparseVector<double> V(IMax);
  for (int I = 0; I < 64; ++I)
    V.push(static_cast<Idx>(I) * 3, I);
  V.push(IMax - 4, 64.0);
  V.push(IMax - 1, 65.0);

  auto Gal = V.stream<SearchPolicy::Gallop>();
  Gal.skip(90, false); // Mid-support: position 30.
  ASSERT_TRUE(Gal.valid());
  ASSERT_EQ(Gal.index(), 90);
  Gal.skip(IMax - 4, false); // Gallop across the tail without wrapping.
  ASSERT_TRUE(Gal.valid());
  EXPECT_EQ(Gal.index(), IMax - 4);
  Gal.skip(IMax - 4, true);
  ASSERT_TRUE(Gal.valid());
  EXPECT_EQ(Gal.index(), IMax - 1);
  Gal.skip(IMax - 1, true); // Strict skip at the last representable - 1.
  EXPECT_FALSE(Gal.valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyEquiv,
                         ::testing::Range<uint64_t>(0, 24));

} // namespace

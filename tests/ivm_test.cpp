//===- tests/ivm_test.cpp - Incremental view maintenance, serve layer -----===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The IVM subsystem's promises through the real serving stack:
//
//  * catalog merge-appends build exactly the payload `fromCoo` over the
//    union would, with `CatalogStats` accounting the rebuild cost;
//  * every registered view stays *bit-identical* to full recomputation
//    across append and delete batches, including self-joins (the
//    binomial expansion) — data is integer-valued, so f64 sums are exact
//    in any association order;
//  * after the first batch, a refresh performs no planner enumeration:
//    retained delta plans are rebound, and the PlanCache counters prove
//    it;
//  * deletions (negative-weight deltas) drive stored entries to exact
//    zero and the zeros are compacted — no zombies in payloads or views;
//  * `readView` is snapshot-consistent: its epoch tracks the catalog
//    epoch even for writes the view does not read;
//  * wholesale replacement recomputes, erasure invalidates, reload heals;
//  * concurrent readers race a writer without torn readings (run under
//    TSan in CI).
//
//===----------------------------------------------------------------------===//

#include "serve/service.h"

#include "formats/random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>

using namespace etch;

namespace {

namespace fs = std::filesystem;

// Registered in this order, so VI < VJ globally. Tests touching attrs
// before constructing a ScopedService must call pinAttrs() first —
// argument evaluation order would otherwise intern VJ before VI.
Attr VI() { return Attr::named("ivm_i"); }
Attr VJ() { return Attr::named("ivm_j"); }
void pinAttrs() {
  VI();
  VJ();
}

bool sameBits(double A, double B) {
  uint64_t X, Y;
  std::memcpy(&X, &A, sizeof(X));
  std::memcpy(&Y, &B, sizeof(Y));
  return X == Y;
}

/// Integer-valued test data: exact under f64 in any summation order.
CsrMatrix<double> makeMatrix() {
  return CsrMatrix<double>::fromCoo(
      4, 5,
      {{0, 0, 2.0}, {0, 3, -1.0}, {1, 1, 3.0}, {2, 0, 1.0}, {2, 4, 5.0},
       {3, 2, -2.0}});
}

SparseVector<double> makeVector() {
  SparseVector<double> V(5);
  V.push(0, 1.0);
  V.push(2, 4.0);
  V.push(3, 2.0);
  return V;
}

/// Σ_i Σ_j A(i,j)·x(j), densely, from the live payloads.
double refSpmv(const CsrMatrix<double> &A, const SparseVector<double> &X) {
  std::vector<double> XD(static_cast<size_t>(A.NumCols), 0.0);
  for (size_t K = 0; K < X.Crd.size(); ++K)
    XD[static_cast<size_t>(X.Crd[K])] = X.Val[K];
  double S = 0.0;
  for (size_t P = 0; P < A.Val.size(); ++P)
    S += A.Val[P] * XD[static_cast<size_t>(A.Crd[P])];
  return S;
}

/// A service whose JIT cache lives under the gtest temp dir.
struct ScopedService {
  std::string Dir;
  std::unique_ptr<ContractionService> S;

  explicit ScopedService(const std::string &Tag, ServeOptions O = {}) {
    Dir = (fs::path(::testing::TempDir()) / ("etch-ivm-test-" + Tag)).string();
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    O.JitCacheDir = Dir;
    S = std::make_unique<ContractionService>(O);
    pinAttrs();
    S->loadCsr("A", makeMatrix(), VI(), VJ());
    S->loadSparse("x", makeVector(), VJ());
  }
  ~ScopedService() {
    S.reset();
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  ContractionService &operator*() { return *S; }
  ContractionService *operator->() { return S.get(); }
};

/// Reads a view and checks it against the driver's own planner-free full
/// recomputation, bit for bit, and against the catalog epoch.
void expectViewCurrent(ContractionService &S, const std::string &Name) {
  auto Rd = S.readView(Name);
  ASSERT_TRUE(Rd.has_value());
  ASSERT_TRUE(Rd->Ok) << Rd->Error;
  auto Rc = S.maintenance().recompute(Name);
  ASSERT_TRUE(Rc.has_value());
  ASSERT_TRUE(Rc->Ok) << Rc->Error;
  EXPECT_TRUE(sameBits(Rd->Value, Rc->Value))
      << Name << ": stored=" << Rd->Value << " recomputed=" << Rc->Value;
  EXPECT_EQ(Rd->Epoch, S.catalog().epoch());
}

//===----------------------------------------------------------------------===//
// Catalog merge-appends
//===----------------------------------------------------------------------===//

TEST(IvmCatalog, MergeAppendEqualsFromCooOverTheUnion) {
  pinAttrs();
  TensorCatalog Cat;
  std::vector<CooEntry<double>> Base = {
      {0, 0, 2.0}, {1, 2, 3.0}, {2, 1, -1.0}};
  Cat.putCsr("A", CsrMatrix<double>::fromCoo(3, 3, Base), VI(), VJ());
  // Colliding coordinate (0,0), a fresh one, and a duplicate pair within
  // the delta itself.
  std::vector<CooEntry<double>> Delta = {
      {0, 0, 5.0}, {2, 2, 4.0}, {1, 0, 1.5}, {1, 0, 1.5}};
  ASSERT_NE(Cat.appendCsr("A", Delta), 0u);

  std::vector<CooEntry<double>> All = Base;
  All.insert(All.end(), Delta.begin(), Delta.end());
  CsrMatrix<double> Want = CsrMatrix<double>::fromCoo(3, 3, All);
  CatalogTensorRef T = Cat.snapshot()->find("A");
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Csr.Pos, Want.Pos);
  EXPECT_EQ(T->Csr.Crd, Want.Crd);
  EXPECT_EQ(T->Csr.Val, Want.Val);

  CatalogStats CS = Cat.stats();
  EXPECT_EQ(CS.Appends, 1u);
  EXPECT_EQ(CS.DeltaNnz, 3u); // canonicalized: the duplicate pair merged
  EXPECT_EQ(CS.MergedNnz, Base.size());
  EXPECT_EQ(CS.Replaces, 1u);
}

TEST(IvmCatalog, AppendCompactsExactZeros) {
  pinAttrs();
  TensorCatalog Cat;
  SparseVector<double> V(6);
  V.push(1, 2.5);
  V.push(4, -3.0);
  Cat.putSparse("v", V, VJ());
  // Cancel one entry exactly, decrement the other.
  ASSERT_NE(Cat.appendSparse("v", {{4, 3.0}, {1, -0.5}}), 0u);
  CatalogTensorRef T = Cat.snapshot()->find("v");
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Sparse.nnz(), 1u);
  EXPECT_EQ(T->Sparse.Crd, (std::vector<Idx>{1}));
  EXPECT_EQ(T->Sparse.Val, (std::vector<double>{2.0}));
  EXPECT_EQ(Cat.stats().CompactedZeros, 1u);
}

TEST(IvmCatalog, AppendToAbsentOrMismatchedTensorIsRejected) {
  pinAttrs();
  TensorCatalog Cat;
  Cat.putSparse("v", SparseVector<double>(4), VJ());
  EXPECT_EQ(Cat.appendCsr("missing", {{0, 0, 1.0}}), 0u);
  EXPECT_EQ(Cat.appendCsr("v", {{0, 0, 1.0}}), 0u); // wrong kind
  EXPECT_EQ(Cat.stats().Appends, 0u);
}

//===----------------------------------------------------------------------===//
// Scalar views: registration, incremental bit-identity
//===----------------------------------------------------------------------===//

TEST(IvmViews, RegistrationComputesTheInitialValue) {
  ScopedService Svc("register");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("spmv", ServeQuery{{"A", "x"}}, &Err)) << Err;
  auto Rd = Svc->readView("spmv");
  ASSERT_TRUE(Rd && Rd->Ok);
  EXPECT_EQ(Rd->Value, refSpmv(makeMatrix(), makeVector()));
  EXPECT_EQ(Rd->Epoch, Svc->catalog().epoch());
  EXPECT_FALSE(Svc->readView("unknown").has_value());
  EXPECT_FALSE(Svc->registerView("bad", ServeQuery{{"A", "ghost"}}, &Err));
}

TEST(IvmViews, IncrementalRefreshIsBitIdenticalToRecompute) {
  ScopedService Svc("increments");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("spmv", ServeQuery{{"A", "x"}}, &Err)) << Err;

  // Appends and deletions interleaved, on both factors.
  ASSERT_NE(Svc->appendCsr("A", {{0, 1, 3.0}, {3, 3, -2.0}}), 0u);
  expectViewCurrent(*Svc, "spmv");
  ASSERT_NE(Svc->appendSparse("x", {{1, 2.0}, {4, -1.0}}), 0u);
  expectViewCurrent(*Svc, "spmv");
  ASSERT_NE(Svc->appendCsr("A", {{0, 0, -2.0}}), 0u); // deletes A(0,0)
  expectViewCurrent(*Svc, "spmv");

  // And against the dense reference over the live payloads.
  CatalogSnapshotRef Snap = Svc->snapshot();
  double Want = refSpmv(Snap->find("A")->Csr, Snap->find("x")->Sparse);
  auto Rd = Svc->readView("spmv");
  ASSERT_TRUE(Rd && Rd->Ok);
  EXPECT_EQ(Rd->Value, Want);
}

TEST(IvmViews, SelfJoinExpandsBinomially) {
  // spmv_sq = Σ_{i,j} A(i,j)·A(i,j): the factor occurs twice, so a batch
  // must contribute 2·A·Δ + Δ·Δ — an append-only driver that forgot the
  // Δ² term (or the coefficient) would drift.
  ScopedService Svc("selfjoin");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("sq", ServeQuery{{"A", "A"}}, &Err)) << Err;
  // Batches deliberately hit stored coordinates.
  ASSERT_NE(Svc->appendCsr("A", {{0, 0, 1.0}, {1, 1, -3.0}}), 0u);
  expectViewCurrent(*Svc, "sq");
  ASSERT_NE(Svc->appendCsr("A", {{0, 3, 2.0}, {2, 4, 1.0}}), 0u);
  expectViewCurrent(*Svc, "sq");

  CatalogSnapshotRef Snap = Svc->snapshot();
  double Want = 0.0;
  for (double V : Snap->find("A")->Csr.Val)
    Want += V * V;
  auto Rd = Svc->readView("sq");
  ASSERT_TRUE(Rd && Rd->Ok);
  EXPECT_EQ(Rd->Value, Want);
}

//===----------------------------------------------------------------------===//
// Plan retention: refreshes are planner-free after the first batch
//===----------------------------------------------------------------------===//

TEST(IvmViews, DeltaRefreshesArePlannerFreeAfterTheFirstBatch) {
  ScopedService Svc("retention");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("spmv", ServeQuery{{"A", "x"}}, &Err)) << Err;
  ASSERT_TRUE(Svc->registerView("sq", ServeQuery{{"A", "A"}}, &Err)) << Err;

  // First batches build the delta plans.
  ASSERT_NE(Svc->appendCsr("A", {{1, 2, 2.0}}), 0u);
  ASSERT_NE(Svc->appendSparse("x", {{0, 1.0}}), 0u);
  MaintainStats MS = Svc->viewStats();
  EXPECT_GT(MS.DeltaPlanBuilds, 0u);

  // Every further batch rebinds retained plans: the planner never runs
  // again, and the hit counter advances.
  uint64_t Planned = Svc->planStats().PlannerRuns;
  uint64_t Hits = MS.DeltaPlanHits;
  for (int I = 0; I < 4; ++I) {
    ASSERT_NE(Svc->appendCsr("A", {{0, static_cast<Idx>(I + 1), 1.0}}), 0u);
    ASSERT_NE(Svc->appendSparse("x", {{static_cast<Idx>(I), 2.0}}), 0u);
    expectViewCurrent(*Svc, "spmv");
    expectViewCurrent(*Svc, "sq");
  }
  EXPECT_EQ(Svc->planStats().PlannerRuns, Planned);
  EXPECT_GT(Svc->viewStats().DeltaPlanHits, Hits);
  EXPECT_GE(Svc->viewStats().DeltaRefreshes, 8u);
}

//===----------------------------------------------------------------------===//
// Deletions
//===----------------------------------------------------------------------===//

TEST(IvmDeletion, DeleteDrivesEntriesToExactZeroWithNoZombies) {
  ScopedService Svc("deletion");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("spmv", ServeQuery{{"A", "x"}}, &Err)) << Err;

  size_t NnzBefore = Svc->snapshot()->find("A")->Csr.nnz();
  ASSERT_NE(Svc->deleteCsr("A", {{0, 0}, {2, 4}}), 0u);
  CatalogSnapshotRef Snap = Svc->snapshot();
  const CsrMatrix<double> &A = Snap->find("A")->Csr;
  EXPECT_EQ(A.nnz(), NnzBefore - 2);
  for (double V : A.Val)
    EXPECT_NE(V, 0.0); // compacted, not zeroed in place
  expectViewCurrent(*Svc, "spmv");

  // Vector deletions through the same path; absent coordinates ignored.
  ASSERT_NE(Svc->deleteSparse("x", {3, 4}), 0u); // 4 has no stored weight
  const SparseVector<double> &X = Svc->snapshot()->find("x")->Sparse;
  EXPECT_EQ(X.nnz(), 2u);
  for (double V : X.Val)
    EXPECT_NE(V, 0.0);
  expectViewCurrent(*Svc, "spmv");

  // Deleting everything leaves an empty payload and a zero view.
  ASSERT_NE(Svc->deleteSparse("x", {0, 2}), 0u);
  EXPECT_EQ(Svc->snapshot()->find("x")->Sparse.nnz(), 0u);
  auto Rd = Svc->readView("spmv");
  ASSERT_TRUE(Rd && Rd->Ok);
  EXPECT_EQ(Rd->Value, 0.0);
}

//===----------------------------------------------------------------------===//
// Snapshot consistency
//===----------------------------------------------------------------------===//

TEST(IvmViews, EpochTracksWritesTheViewDoesNotRead) {
  ScopedService Svc("epoch");
  Svc->loadSparse("y", makeVector(), VJ());
  std::string Err;
  ASSERT_TRUE(Svc->registerView("ytot", ServeQuery{{"y"}}, &Err)) << Err;
  double Before = Svc->readView("ytot")->Value;

  // Writes to tensors the view never reads still advance its epoch (the
  // view is consistent *with the catalog*, not merely with its factors),
  // and leave its value untouched bit for bit.
  ASSERT_NE(Svc->appendCsr("A", {{1, 1, 1.0}}), 0u);
  ASSERT_NE(Svc->appendSparse("x", {{2, -4.0}}), 0u);
  auto Rd = Svc->readView("ytot");
  ASSERT_TRUE(Rd && Rd->Ok);
  EXPECT_EQ(Rd->Epoch, Svc->catalog().epoch());
  EXPECT_TRUE(sameBits(Rd->Value, Before));
}

//===----------------------------------------------------------------------===//
// Replace / erase lifecycle
//===----------------------------------------------------------------------===//

TEST(IvmViews, ReplaceRecomputesAndEraseInvalidates) {
  ScopedService Svc("lifecycle");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("spmv", ServeQuery{{"A", "x"}}, &Err)) << Err;

  // Wholesale replacement has no delta: the view recomputes in full.
  CsrMatrix<double> B = CsrMatrix<double>::fromCoo(4, 5, {{0, 2, 7.0}});
  Svc->loadCsr("A", B, VI(), VJ());
  auto Rd = Svc->readView("spmv");
  ASSERT_TRUE(Rd && Rd->Ok);
  EXPECT_EQ(Rd->Value, refSpmv(B, makeVector()));
  expectViewCurrent(*Svc, "spmv");

  // Erasing a factor puts the view into an error state...
  Svc->catalog().erase("x");
  Svc->maintenance().onErase("x", Svc->snapshot());
  Rd = Svc->readView("spmv");
  ASSERT_TRUE(Rd.has_value());
  EXPECT_FALSE(Rd->Ok);

  // ...and reloading it heals the view.
  Svc->loadSparse("x", makeVector(), VJ());
  expectViewCurrent(*Svc, "spmv");
}

//===----------------------------------------------------------------------===//
// Grouped views through the driver
//===----------------------------------------------------------------------===//

TEST(IvmGrouped, RowSumsMaintainAndCompact) {
  ScopedService Svc("grouped");
  std::string Err;
  ASSERT_TRUE(Svc->maintenance().registerGroupedView(
      "rows", {"A", "x"}, Shape{VI()}, &Err))
      << Err;

  auto check = [&] {
    auto Got = Svc->maintenance().readGrouped("rows");
    auto Want = Svc->maintenance().recomputeGrouped("rows");
    ASSERT_TRUE(Got && Want);
    EXPECT_TRUE(Got->equals(*Want))
        << Got->toString() << " vs " << Want->toString();
  };
  check();

  ASSERT_NE(Svc->appendCsr("A", {{3, 0, 4.0}}), 0u);
  check();
  ASSERT_NE(Svc->appendSparse("x", {{1, 1.0}}), 0u);
  check();

  // Delete row 1 of A entirely: its group must vanish from the view.
  ASSERT_NE(Svc->deleteCsr("A", {{1, 1}}), 0u);
  check();
  auto Got = Svc->maintenance().readGrouped("rows");
  ASSERT_TRUE(Got.has_value());
  for (const auto &[T, V] : Got->entries()) {
    EXPECT_NE(T[0], 1);
    EXPECT_NE(V, 0.0);
  }
}

//===----------------------------------------------------------------------===//
// Concurrency (TSan)
//===----------------------------------------------------------------------===//

TEST(IvmConcurrency, ReadersRaceTheWriterWithoutTornReadings) {
  ScopedService Svc("race");
  std::string Err;
  ASSERT_TRUE(Svc->registerView("spmv", ServeQuery{{"A", "x"}}, &Err)) << Err;

  constexpr int Writes = 60;
  std::thread Writer([&] {
    for (int I = 0; I < Writes; ++I) {
      if (I % 3 == 2)
        Svc->deleteCsr("A", {{static_cast<Idx>(I % 4), 0}});
      else if (I % 2)
        Svc->appendSparse("x", {{static_cast<Idx>(I % 5), 1.0}});
      else
        Svc->appendCsr(
            "A", {{static_cast<Idx>(I % 4), static_cast<Idx>(I % 5), 2.0}});
    }
  });
  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      for (int I = 0; I < 150; ++I) {
        auto Rd = Svc->readView("spmv");
        ASSERT_TRUE(Rd.has_value());
        ASSERT_TRUE(Rd->Ok) << Rd->Error;
        ServeResult Q = Svc->query(ServeQuery{{"A", "x"}});
        ASSERT_TRUE(Q.Ok) << Q.Error;
      }
    });
  Writer.join();
  for (std::thread &T : Readers)
    T.join();

  // Quiescent state: the stored value equals recomputation exactly.
  expectViewCurrent(*Svc, "spmv");
}

} // namespace

//===- tests/fuzz_corpus_test.cpp - Regression corpus replay --------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Replays every shrunken repro in tests/corpus/ through the full executor
// matrix. Each file is a minimized witness of a bug the differential
// fuzzer once found (its comment names the bug); a red replay here means
// a fixed bug has regressed. The corpus directory is baked in at compile
// time (ETCH_CORPUS_DIR) so the test runs from any build directory.
//
//===----------------------------------------------------------------------===//

#include "fuzz/corpus.h"
#include "fuzz/exec.h"
#include "fuzz/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace etch;

namespace {

std::vector<std::string> corpusFiles() {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  for (const auto &Ent : fs::directory_iterator(ETCH_CORPUS_DIR))
    if (Ent.is_regular_file() && Ent.path().extension() == ".txt")
      Out.push_back(Ent.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(FuzzCorpus, AllReprosReplayGreen) {
  auto Files = corpusFiles();
  // The corpus is seeded with the partitionDense overflow repros; an empty
  // or missing directory would make this test vacuous.
  ASSERT_GE(Files.size(), 3u)
      << "expected checked-in repros under " << ETCH_CORPUS_DIR;
  for (const std::string &F : Files) {
    std::string Err;
    auto C = readCaseFile(F, &Err);
    ASSERT_TRUE(C.has_value()) << F << ": " << Err;
    FuzzReport Rep = runFuzzCase(*C);
    EXPECT_FALSE(Rep.Invalid) << F << ": " << Rep.ValidationError;
    EXPECT_TRUE(Rep.ok()) << F << " regressed:\n" << Rep.toString();
  }
}

TEST(FuzzCorpus, AllReprosReplayGreenUnderEveryLegalOrder) {
  // A repro guards its bug regardless of which attribute permutation
  // originally triggered it: the whole matrix reruns under every legal
  // global order of each case (bounded; cases here are shrunken and tiny).
  for (const std::string &F : corpusFiles()) {
    std::string Err;
    auto C = readCaseFile(F, &Err);
    ASSERT_TRUE(C.has_value()) << F << ": " << Err;
    FuzzOrderReport Rep = runFuzzCaseOrders(*C, /*MaxOrders=*/8);
    EXPECT_FALSE(Rep.failing())
        << F << " regressed under an order sweep:\n"
        << Rep.toString();
  }
}

} // namespace

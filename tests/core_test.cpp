//===- tests/core_test.cpp - Attributes, semirings, K-relations, L -------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Unit and property tests for the core layer: attribute interning and
// shape algebra, semiring axioms (Definition 4.5) over random values, the
// K-relation operations of Figure 4c (including the algebraic laws the
// positive algebra guarantees), and the typing rules of Figure 4b with
// their error cases.
//
//===----------------------------------------------------------------------===//

#include "core/eval.h"

#include <gtest/gtest.h>

#include <array>

using namespace etch;

namespace {

Attr attrAt(size_t K) {
  static const std::array<Attr, 4> As = {
      Attr::named("ct_a"), Attr::named("ct_b"), Attr::named("ct_c"),
      Attr::named("ct_d")};
  return As[K];
}
Attr A() { return attrAt(0); }
Attr B() { return attrAt(1); }
Attr C() { return attrAt(2); }
Attr D() { return attrAt(3); }

//===----------------------------------------------------------------------===//
// Attributes and shapes
//===----------------------------------------------------------------------===//

TEST(Attr, InterningIsStable) {
  Attr X = Attr::named("ct_stable");
  Attr Y = Attr::named("ct_stable");
  EXPECT_EQ(X, Y);
  EXPECT_EQ(X.name(), "ct_stable");
}

TEST(Attr, InterningOrderIsTheGlobalOrder) {
  EXPECT_LT(A(), B());
  EXPECT_LT(B(), C());
  EXPECT_LE(A(), A());
}

TEST(Shape, MakeShapeSortsAndDedups) {
  Shape S = makeShape({C(), A(), C(), B(), A()});
  EXPECT_EQ(S, (Shape{A(), B(), C()}));
}

TEST(Shape, SetOperations) {
  Shape X = makeShape({A(), B(), C()});
  Shape Y = makeShape({B(), D()});
  EXPECT_EQ(shapeUnion(X, Y), makeShape({A(), B(), C(), D()}));
  EXPECT_EQ(shapeIntersect(X, Y), makeShape({B()}));
  EXPECT_EQ(shapeMinus(X, Y), makeShape({A(), C()}));
  EXPECT_TRUE(shapeContains(X, B()));
  EXPECT_FALSE(shapeContains(Y, A()));
}

TEST(Shape, IndexOfAndAttrsBefore) {
  Shape S = makeShape({A(), C(), D()});
  EXPECT_EQ(shapeIndexOf(S, A()), 0);
  EXPECT_EQ(shapeIndexOf(S, C()), 1);
  EXPECT_EQ(shapeIndexOf(S, B()), -1);
  EXPECT_EQ(attrsBefore(S, B()), 1); // Only A precedes B.
  EXPECT_EQ(attrsBefore(S, D()), 2);
}

TEST(Shape, ToStringRendersNames) {
  EXPECT_EQ(shapeToString(makeShape({A(), B()})), "{ct_a, ct_b}");
  EXPECT_EQ(shapeToString({}), "{}");
}

//===----------------------------------------------------------------------===//
// Semiring axioms (Definition 4.5), randomized
//===----------------------------------------------------------------------===//

template <Semiring S>
void checkAxioms(const std::vector<typename S::Value> &Samples) {
  using V = typename S::Value;
  for (V X : Samples) {
    // Identities.
    EXPECT_EQ(S::add(X, S::zero()), X);
    EXPECT_EQ(S::add(S::zero(), X), X);
    EXPECT_EQ(S::mul(X, S::one()), X);
    EXPECT_EQ(S::mul(S::one(), X), X);
    // Absorption.
    EXPECT_TRUE(S::isZero(S::mul(X, S::zero())));
    EXPECT_TRUE(S::isZero(S::mul(S::zero(), X)));
    for (V Y : Samples) {
      // Commutativity of addition.
      EXPECT_EQ(S::add(X, Y), S::add(Y, X));
      for (V Z : Samples) {
        // Associativity (exact for these carriers' operations on the
        // sample sets chosen below).
        EXPECT_EQ(S::add(S::add(X, Y), Z), S::add(X, S::add(Y, Z)));
        EXPECT_EQ(S::mul(S::mul(X, Y), Z), S::mul(X, S::mul(Y, Z)));
      }
    }
  }
}

TEST(Semiring, I64Axioms) {
  checkAxioms<I64Semiring>({0, 1, 2, -3, 7, 100});
}

TEST(Semiring, BoolAxioms) { checkAxioms<BoolSemiring>({false, true}); }

TEST(Semiring, MinPlusAxioms) {
  checkAxioms<MinPlusSemiring>(
      {MinPlusSemiring::zero(), 0.0, 1.0, 2.5, 10.0});
  // Distributivity: x + min(y, z) == min(x+y, x+z).
  using MP = MinPlusSemiring;
  EXPECT_EQ(MP::mul(3.0, MP::add(1.0, 5.0)), MP::add(MP::mul(3.0, 1.0),
                                                     MP::mul(3.0, 5.0)));
}

TEST(Semiring, F64DistributesOnIntegers) {
  using F = F64Semiring;
  for (double X : {0.0, 1.0, 2.0, 5.0})
    for (double Y : {0.0, 3.0, 4.0})
      for (double Z : {1.0, 7.0})
        EXPECT_EQ(F::mul(X, F::add(Y, Z)),
                  F::add(F::mul(X, Y), F::mul(X, Z)));
}

//===----------------------------------------------------------------------===//
// K-relations (the T algebra)
//===----------------------------------------------------------------------===//

using KR = KRelation<F64Semiring>;

KR rel2(std::vector<std::tuple<Idx, Idx, double>> Es) {
  KR R(Shape{A(), B()});
  for (auto [I, J, V] : Es)
    R.insert({I, J}, V);
  return R;
}

TEST(KRelationT, InsertAccumulates) {
  KR R(Shape{A()});
  R.insert({3}, 2.0);
  R.insert({3}, 4.0);
  EXPECT_DOUBLE_EQ(R.at({3}), 6.0);
  EXPECT_EQ(R.supportSize(), 1u);
}

TEST(KRelationT, AddIsPointwise) {
  KR X = rel2({{0, 0, 1.0}, {1, 2, 3.0}});
  KR Y = rel2({{1, 2, 4.0}, {2, 2, 5.0}});
  KR Z = X.add(Y);
  EXPECT_DOUBLE_EQ(Z.at({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Z.at({1, 2}), 7.0);
  EXPECT_DOUBLE_EQ(Z.at({2, 2}), 5.0);
}

TEST(KRelationT, AddPrunesCancellation) {
  KR X = rel2({{0, 0, 1.0}});
  KR Y = rel2({{0, 0, -1.0}});
  EXPECT_EQ(X.add(Y).supportSize(), 0u);
}

TEST(KRelationT, MulIntersects) {
  KR X = rel2({{0, 0, 2.0}, {1, 1, 3.0}});
  KR Y = rel2({{1, 1, 5.0}, {2, 2, 7.0}});
  KR Z = X.mul(Y);
  EXPECT_EQ(Z.supportSize(), 1u);
  EXPECT_DOUBLE_EQ(Z.at({1, 1}), 15.0);
}

TEST(KRelationT, MulWithDenseActsAsJoin) {
  // f over {a}, expanded to {a,b}, times g over {a,b}: values multiply on
  // g's support with f looked up on the shared attribute.
  KR F(Shape{A()});
  F.insert({1}, 10.0);
  F.insert({2}, 20.0);
  KR G = rel2({{1, 5, 1.0}, {2, 6, 2.0}, {3, 7, 3.0}});
  KR Z = F.expand(B()).mul(G);
  EXPECT_EQ(Z.supportSize(), 2u);
  EXPECT_DOUBLE_EQ(Z.at({1, 5}), 10.0);
  EXPECT_DOUBLE_EQ(Z.at({2, 6}), 40.0);
}

TEST(KRelationT, ContractSumsOut) {
  KR X = rel2({{0, 1, 1.0}, {0, 2, 2.0}, {1, 1, 5.0}});
  KR RowSums = X.contract(B());
  EXPECT_EQ(RowSums.shape(), Shape{A()});
  EXPECT_DOUBLE_EQ(RowSums.at({0}), 3.0);
  EXPECT_DOUBLE_EQ(RowSums.at({1}), 5.0);
  // Contraction commutes: Σ_a Σ_b == Σ_b Σ_a.
  EXPECT_TRUE(X.contract(A()).contract(B()).approxEquals(
      X.contract(B()).contract(A())));
}

TEST(KRelationT, ExpandFiniteMatchesDense) {
  KR F(Shape{A()});
  F.insert({1}, 3.0);
  KR Dense = F.expand(B());
  KR Finite = F.expandFinite(B(), {0, 1, 2});
  // Both agree with a finite partner under multiplication.
  KR G = rel2({{1, 0, 1.0}, {1, 2, 1.0}});
  EXPECT_TRUE(Dense.mul(G).approxEquals(Finite.mul(G)));
}

TEST(KRelationT, RenamePermutesCoordinates) {
  KR X = rel2({{1, 9, 4.0}});
  // Swap is illegal for streams but fine denotationally: a -> d puts the
  // old first coordinate last.
  KR Y = X.rename({{A(), D()}});
  EXPECT_EQ(Y.shape(), (Shape{B(), D()}));
  EXPECT_DOUBLE_EQ(Y.at({9, 1}), 4.0);
}

TEST(KRelationT, ScalarRelation) {
  auto S = KR::scalar(5.0);
  EXPECT_DOUBLE_EQ(S.at({}), 5.0);
  EXPECT_EQ(KR::scalar(0.0).supportSize(), 0u);
}

//===----------------------------------------------------------------------===//
// Language L: typing (Figure 4b) and denotational evaluation (Figure 4c)
//===----------------------------------------------------------------------===//

TEST(ExprTyping, VariableAndArithmetic) {
  TypeContext Ctx{{"x", {A(), B()}}, {"y", {A(), B()}}, {"z", {A()}}};
  EXPECT_EQ(*inferShape(Expr::var("x"), Ctx), (Shape{A(), B()}));
  EXPECT_EQ(*inferShape(Expr::var("x") + Expr::var("y"), Ctx),
            (Shape{A(), B()}));
  EXPECT_EQ(*inferShape(Expr::var("x") * Expr::var("y"), Ctx),
            (Shape{A(), B()}));

  std::string Err;
  EXPECT_FALSE(inferShape(Expr::var("w"), Ctx, &Err));
  EXPECT_NE(Err.find("unbound"), std::string::npos);
  EXPECT_FALSE(inferShape(Expr::var("x") + Expr::var("z"), Ctx, &Err));
  EXPECT_NE(Err.find("equal shapes"), std::string::npos);
}

TEST(ExprTyping, SumAndExpand) {
  TypeContext Ctx{{"x", {A(), B()}}};
  EXPECT_EQ(*inferShape(Expr::sum(B(), Expr::var("x")), Ctx), (Shape{A()}));
  EXPECT_EQ(*inferShape(Expr::expand(C(), Expr::var("x")), Ctx),
            (Shape{A(), B(), C()}));

  std::string Err;
  EXPECT_FALSE(inferShape(Expr::sum(C(), Expr::var("x")), Ctx, &Err));
  EXPECT_FALSE(inferShape(Expr::expand(A(), Expr::var("x")), Ctx, &Err));
}

TEST(ExprTyping, RenameRules) {
  TypeContext Ctx{{"x", {A(), B()}}};
  EXPECT_EQ(*inferShape(Expr::rename({{B(), C()}}, Expr::var("x")), Ctx),
            (Shape{A(), C()}));
  std::string Err;
  // Merging two attributes is rejected.
  EXPECT_FALSE(
      inferShape(Expr::rename({{B(), A()}}, Expr::var("x")), Ctx, &Err));
}

TEST(ExprTyping, MulExpandInfersExpansions) {
  TypeContext Ctx{{"x", {A(), B()}}, {"y", {B(), C()}}};
  std::string Err;
  ExprPtr E = mulExpand(Expr::var("x"), Expr::var("y"), Ctx, &Err);
  ASSERT_NE(E, nullptr) << Err;
  EXPECT_EQ(*inferShape(E, Ctx), (Shape{A(), B(), C()}));
}

TEST(ExprTyping, SumAllContractsEverything) {
  TypeContext Ctx{{"x", {A(), B(), C()}}};
  ExprPtr E = sumAll(Expr::var("x"), Ctx);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(inferShape(E, Ctx)->size(), 0u);
}

TEST(ExprPrint, MatchesPaperNotation) {
  ExprPtr E = Expr::sum(B(), Expr::expand(C(), Expr::var("x")) *
                                 Expr::expand(A(), Expr::var("y")));
  EXPECT_EQ(E->toString(), "sum_ct_b (up_ct_c x * up_ct_a y)");
}

TEST(ExprEval, MatrixMultiplyDenotation) {
  // Example 4.1 / 5.9: Σ_b (↑c x · ↑a y) is matrix product.
  ValueContext<F64Semiring> Ctx;
  KR X(Shape{A(), B()});
  X.insert({0, 0}, 2.0);
  X.insert({0, 1}, 3.0);
  X.insert({1, 1}, 4.0);
  KR Y(Shape{B(), C()});
  Y.insert({0, 0}, 5.0);
  Y.insert({1, 0}, 6.0);
  Y.insert({1, 1}, 7.0);
  Ctx.emplace("x", X);
  Ctx.emplace("y", Y);

  ExprPtr E = Expr::sum(B(), Expr::expand(C(), Expr::var("x")) *
                                 Expr::expand(A(), Expr::var("y")));
  KR Z = evalT(E, Ctx);
  EXPECT_EQ(Z.shape(), (Shape{A(), C()}));
  EXPECT_DOUBLE_EQ(Z.at({0, 0}), 2.0 * 5.0 + 3.0 * 6.0);
  EXPECT_DOUBLE_EQ(Z.at({0, 1}), 3.0 * 7.0);
  EXPECT_DOUBLE_EQ(Z.at({1, 0}), 4.0 * 6.0);
  EXPECT_DOUBLE_EQ(Z.at({1, 1}), 4.0 * 7.0);
}

TEST(ExprEval, RelationalSelectionViaBoolMul) {
  // Figure 6: selection is multiplication by an indicator.
  ValueContext<BoolSemiring> Ctx;
  KRelation<BoolSemiring> T(Shape{A(), B()});
  T.insert({0, 0}, true);
  T.insert({0, 1}, true);
  T.insert({1, 1}, true);
  KRelation<BoolSemiring> P(Shape{A()});
  P.insert({0}, true);
  Ctx.emplace("t", T);
  Ctx.emplace("p", P);

  ExprPtr E = Expr::mul(Expr::var("t"),
                        Expr::expand(B(), Expr::var("p")));
  auto Z = evalT(E, Ctx);
  EXPECT_EQ(Z.supportSize(), 2u);
  EXPECT_TRUE(Z.at({0, 0}));
  EXPECT_FALSE(Z.at({1, 1}));
}

TEST(ExprEval, TypesOfDerivesContext) {
  ValueContext<F64Semiring> Ctx;
  Ctx.emplace("x", rel2({{0, 0, 1.0}}));
  TypeContext T = typesOf(Ctx);
  EXPECT_EQ(T.at("x"), (Shape{A(), B()}));
}

} // namespace

//===- tests/streams_laws_test.cpp - Lawfulness & monotonicity -----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The proof obligations of Section 6, checked at runtime over primitives
// and composites (the role the Lean proofs play for the paper, and the
// checklist it gives implementers of new data structures):
//
//   - monotonicity: index never decreases along δ;
//   - strict monotonicity (Section 6.2): ready states strictly advance —
//     required for multiplication's eager emission to be sound;
//   - lawfulness (Section 6.1): skip(q, (i, r)) cannot change evaluation
//     at any j with (i, r) <= (j, 0);
//   - finiteness: every stream reaches its terminal state.
//
//===----------------------------------------------------------------------===//

#include "formats/levels.h"
#include "formats/matrices.h"
#include "formats/random.h"
#include "formats/vectors.h"
#include "streams/combinators.h"
#include "streams/laws.h"

#include <gtest/gtest.h>

#include <array>

using namespace etch;

namespace {

Attr attrL() { return Attr::named("lw_i"); }

std::vector<std::pair<Idx, bool>> probesFor(Rng &R, Idx N, int Count) {
  std::vector<std::pair<Idx, bool>> Out;
  for (int I = 0; I < Count; ++I)
    Out.push_back({static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(N))),
                   R.nextBool(0.5)});
  // Include the boundary probes.
  Out.push_back({0, false});
  Out.push_back({N - 1, true});
  return Out;
}

class StreamLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamLaws, SparsePrimitiveAllPolicies) {
  Rng R(GetParam());
  const Idx N = 80;
  auto X = randomSparseVector(R, N, R.nextBelow(40) + 1);
  auto Probes = probesFor(R, N, 16);

  auto Check = [&](auto Q) {
    EXPECT_TRUE(checkStrictMonotone(Q));
    EXPECT_TRUE(checkSkipMonotone(Q, Probes));
    for (auto [I, B] : Probes)
      EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B))
          << "probe (" << I << ", " << B << ")";
  };
  Check(X.stream<SearchPolicy::Linear>());
  Check(X.stream<SearchPolicy::Binary>());
  Check(X.stream<SearchPolicy::Gallop>());
}

TEST_P(StreamLaws, DensePrimitive) {
  Rng R(GetParam() + 100);
  const Idx N = 30;
  auto X = randomDenseVector(R, N);
  auto Q = X.stream();
  EXPECT_TRUE(checkStrictMonotone(Q));
  for (auto [I, B] : probesFor(R, N, 8))
    EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B));
}

TEST_P(StreamLaws, RepeatPrimitive) {
  Rng R(GetParam() + 200);
  RepeatStream<double> Q(25, randomValue(R));
  EXPECT_TRUE(checkStrictMonotone(Q));
  for (auto [I, B] : probesFor(R, 25, 8))
    EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B));
}

TEST_P(StreamLaws, MulComposite) {
  Rng R(GetParam() + 300);
  const Idx N = 60;
  auto X = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Y = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Q = mulStreams<F64Semiring>(X.stream(),
                                   Y.stream<SearchPolicy::Gallop>());
  EXPECT_TRUE(checkStrictMonotone(Q));
  auto Probes = probesFor(R, N, 12);
  EXPECT_TRUE(checkSkipMonotone(Q, Probes));
  for (auto [I, B] : Probes)
    EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B));
}

TEST_P(StreamLaws, AddComposite) {
  Rng R(GetParam() + 400);
  const Idx N = 60;
  auto X = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Y = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Q = addStreams<F64Semiring>(X.stream(), Y.stream());
  EXPECT_TRUE(checkStrictMonotone(Q));
  auto Probes = probesFor(R, N, 12);
  EXPECT_TRUE(checkSkipMonotone(Q, Probes));
  for (auto [I, B] : Probes)
    EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B));
}

TEST_P(StreamLaws, NestedCompositeOuterLevel) {
  // The outer level of a matrix product must satisfy the same laws; inner
  // evaluation is part of the evaluated relation.
  Rng R(GetParam() + 500);
  auto A = randomCsr(R, 10, 12, R.nextBelow(40) + 1);
  auto B = randomDcsr(R, 10, 12, R.nextBelow(40) + 1);
  auto Q = mulStreams<F64Semiring>(A.stream(), B.stream());
  EXPECT_TRUE(checkStrictMonotone(Q));
  Attr AJ = Attr::named("lw_j");
  Rng RP(GetParam());
  for (auto [I, Bit] : probesFor(RP, 10, 6))
    EXPECT_TRUE(
        (checkSkipLawful<F64Semiring>(Q, Shape{attrL(), AJ}, I, Bit)));
}

TEST_P(StreamLaws, MulOfAddComposite) {
  Rng R(GetParam() + 600);
  const Idx N = 50;
  auto X = randomSparseVector(R, N, R.nextBelow(25) + 1);
  auto Y = randomSparseVector(R, N, R.nextBelow(25) + 1);
  auto Z = randomSparseVector(R, N, R.nextBelow(25) + 1);
  auto Q = mulStreams<F64Semiring>(
      X.stream(), addStreams<F64Semiring>(Y.stream(), Z.stream()));
  EXPECT_TRUE(checkStrictMonotone(Q));
  for (auto [I, B] : probesFor(R, N, 10))
    EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B));
}

/// The same support as \p X, inserted in reverse order into a hashed
/// level (freeze must re-sort for the laws to have a chance).
HashedVector<double> hashedFrom(const SparseVector<double> &X) {
  HashedVector<double> H(X.Size, X.nnz());
  for (size_t P = X.nnz(); P-- > 0;)
    H.accumulate(X.Crd[P], X.Val[P]);
  H.freeze();
  return H;
}

TEST_P(StreamLaws, HashedPrimitiveAllPolicies) {
  // A hashed level's stream iterates the sorted snapshot, so it owes the
  // same proof obligations as any compressed primitive — including under
  // skips that hit the probe table's O(1) path.
  Rng R(GetParam() + 900);
  const Idx N = 80;
  auto X = randomSparseVector(R, N, R.nextBelow(40) + 1);
  HashedVector<double> H = hashedFrom(X);
  auto Probes = probesFor(R, N, 16);
  auto Check = [&](auto Q) {
    EXPECT_TRUE(checkStrictMonotone(Q));
    EXPECT_TRUE(checkSkipMonotone(Q, Probes));
    for (auto [I, B] : Probes)
      EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B))
          << "probe (" << I << ", " << B << ")";
  };
  Check(H.stream<SearchPolicy::Linear>());
  Check(H.stream<SearchPolicy::Binary>());
  Check(H.stream<SearchPolicy::Gallop>());
}

TEST_P(StreamLaws, HashedObservationallyEqualsSparse) {
  // Same data, either layout: evaluation agrees for every policy, and the
  // hashed stream walks the exact same (index, ready, value) trajectory
  // as the sparse one.
  Rng R(GetParam() + 1000);
  const Idx N = 200;
  auto X = randomSparseVector(R, N, R.nextBelow(60) + 1);
  HashedVector<double> H = hashedFrom(X);
  Shape Sh{attrL()};
  auto Want = evalStream<F64Semiring>(X.stream(), Sh);
  EXPECT_TRUE(
      evalStream<F64Semiring>(H.stream<SearchPolicy::Linear>(), Sh)
          .equals(Want));
  EXPECT_TRUE(
      evalStream<F64Semiring>(H.stream<SearchPolicy::Binary>(), Sh)
          .equals(Want));
  EXPECT_TRUE(
      evalStream<F64Semiring>(H.stream<SearchPolicy::Gallop>(), Sh)
          .equals(Want));
}

TEST_P(StreamLaws, HashedInMulComposite) {
  // Intersections drive the probe-first skip: a hashed factor zipped with
  // a sparse one must satisfy the laws and match the all-sparse product.
  Rng R(GetParam() + 1100);
  const Idx N = 120;
  auto X = randomSparseVector(R, N, R.nextBelow(50) + 1);
  auto Y = randomSparseVector(R, N, R.nextBelow(50) + 1);
  HashedVector<double> H = hashedFrom(Y);
  auto Q = mulStreams<F64Semiring>(X.stream(),
                                   H.stream<SearchPolicy::Gallop>());
  EXPECT_TRUE(checkStrictMonotone(Q));
  auto Probes = probesFor(R, N, 12);
  EXPECT_TRUE(checkSkipMonotone(Q, Probes));
  for (auto [I, B] : Probes)
    EXPECT_TRUE(checkSkipLawful<F64Semiring>(Q, Shape{attrL()}, I, B));
  Shape Sh{attrL()};
  EXPECT_TRUE(evalStream<F64Semiring>(Q, Sh).equals(evalStream<F64Semiring>(
      mulStreams<F64Semiring>(X.stream(), Y.stream()), Sh)));
}

TEST(StreamLawsEdge, HashedStrictSkipSaturates) {
  HashedVector<double> H(100);
  for (Idx I : {10, 20, 30, 40})
    H.accumulate(I, static_cast<double>(I));
  H.freeze();
  auto Q = H.stream();
  Q.skip(40, true); // Strictly past the last coordinate: terminal.
  EXPECT_FALSE(Q.valid());
  Q.skip(0, false); // Terminal state is fixed.
  EXPECT_FALSE(Q.valid());
}

TEST(StreamLawsEdge, HashedProbeHitLandsExactly) {
  // A skip to a stored coordinate takes the O(1) probe path and must land
  // on it ready; a probe miss falls back to the policy search and lands
  // on the successor.
  HashedVector<double> H(Idx(1) << 20, 8);
  for (Idx I : {3, 1000, 65536, 999999})
    H.accumulate(I, 1.5);
  H.freeze();
  auto Q = H.stream<SearchPolicy::Linear>();
  Q.skip(65536, false);
  ASSERT_TRUE(Q.valid());
  EXPECT_EQ(Q.index(), 65536);
  EXPECT_TRUE(Q.ready());
  EXPECT_EQ(Q.value(), 1.5);
  auto Q2 = H.stream<SearchPolicy::Gallop>();
  Q2.skip(65537, false);
  ASSERT_TRUE(Q2.valid());
  EXPECT_EQ(Q2.index(), 999999);
  // Probe hits never move the stream backwards (lawfulness would break).
  Q2.skip(3, false);
  EXPECT_EQ(Q2.index(), 999999);
}

TEST(StreamLawsEdge, TerminalStateIsFixed) {
  SparseVector<double> X(10);
  X.push(4, 1.0);
  auto Q = X.stream();
  advance(Q); // Past the single entry.
  EXPECT_FALSE(Q.valid());
  // Skipping a terminal stream keeps it terminal.
  Q.skip(0, false);
  EXPECT_FALSE(Q.valid());
  Q.skip(9, true);
  EXPECT_FALSE(Q.valid());
}

TEST(StreamLawsEdge, SkipIsIdempotentAtTarget) {
  SparseVector<double> X(100);
  for (Idx I = 0; I < 100; I += 7)
    X.push(I, 1.0);
  auto Q = X.stream<SearchPolicy::Binary>();
  Q.skip(30, false);
  Idx At = Q.index();
  Q.skip(30, false);
  EXPECT_EQ(Q.index(), At); // Non-strict re-skip to the same bound: no-op.
}

TEST(StreamLawsEdge, CountTransitionsMatchesSupport) {
  // A bare sparse stream takes exactly nnz transitions to terminate.
  SparseVector<double> X(100);
  for (Idx I = 0; I < 100; I += 9)
    X.push(I, 1.0);
  EXPECT_EQ(countTransitions(X.stream()),
            static_cast<int64_t>(X.nnz()));
}

//===----------------------------------------------------------------------===//
// AddStream's tied-index-aware next() against the strict-skip fallback
//===----------------------------------------------------------------------===//

/// Hides next() so advanceReady must take the `skip(index(), true)`
/// fallback — the δ path AddStream used before it grew a fast successor.
/// Equal trajectories of the wrapped and unwrapped stream prove the fast
/// path implements exactly the strict skip from every ready state.
template <AnIndexedStream St> struct NoNext {
  St Inner;
  using ValueType = typename St::ValueType;
  static constexpr bool Contracted = IsContractedV<St>;
  bool valid() const { return Inner.valid(); }
  Idx index() const { return Inner.index(); }
  bool ready() const { return Inner.ready(); }
  ValueType value() const { return Inner.value(); }
  void skip(Idx I, bool Strict) { Inner.skip(I, Strict); }
};

static_assert(!HasNext<NoNext<RepeatStream<double>>>,
              "NoNext must force the strict-skip fallback");

/// Drives \p Fast (next()) and \p Slow (skip fallback) in lockstep,
/// asserting identical (valid, index, ready, value) at every state.
template <typename A, typename B> void expectLockstep(A Fast, B Slow) {
  int Guard = 0;
  while ((Fast.valid() || Slow.valid()) && ++Guard < 100000) {
    ASSERT_EQ(Fast.valid(), Slow.valid());
    ASSERT_EQ(Fast.index(), Slow.index());
    ASSERT_EQ(Fast.ready(), Slow.ready());
    if (Fast.ready()) {
      ASSERT_EQ(Fast.value(), Slow.value());
      advanceReady(Fast);
      advanceReady(Slow);
    } else {
      Fast.skip(Fast.index(), false);
      Slow.skip(Slow.index(), false);
    }
  }
  EXPECT_FALSE(Fast.valid());
  EXPECT_FALSE(Slow.valid());
}

TEST_P(StreamLaws, HashedLockstepWithSparse) {
  // The hashed stream walks the exact same (valid, index, ready, value)
  // trajectory as a sparse stream over the same data.
  Rng R(GetParam() + 1200);
  auto X = randomSparseVector(R, 200, R.nextBelow(60) + 1);
  HashedVector<double> H = hashedFrom(X);
  expectLockstep(X.stream(), H.stream());
}

TEST_P(StreamLaws, AddNextMatchesStrictSkipFlat) {
  Rng R(GetParam() + 700);
  const Idx N = 60;
  // Strided supports overlap heavily, covering tied indices as well as
  // strictly-ahead states on either side.
  auto X = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Y = randomSparseVector(R, N, R.nextBelow(30) + 1);
  auto Fast = addStreams<F64Semiring>(X.stream(), Y.stream());
  NoNext<decltype(Fast)> Slow{
      addStreams<F64Semiring>(X.stream(), Y.stream())};
  expectLockstep(Fast, Slow);
}

TEST(StreamLawsEdge, AddNextTiedIndexCases) {
  // Deterministic coverage of every next() branch: A ahead, B ahead, tie,
  // and one side exhausted while the other still emits.
  SparseVector<double> X(16);
  for (Idx I : {1, 5, 7, 9})
    X.push(I, 1.0 + I);
  SparseVector<double> Y(16);
  for (Idx I : {5, 9, 11, 14})
    Y.push(I, 2.0 + I);
  auto Fast = addStreams<F64Semiring>(X.stream(), Y.stream());
  NoNext<decltype(Fast)> Slow{
      addStreams<F64Semiring>(X.stream(), Y.stream())};
  expectLockstep(Fast, Slow);

  // One side entirely empty.
  SparseVector<double> E(16);
  auto Fast2 = addStreams<F64Semiring>(X.stream(), E.stream());
  NoNext<decltype(Fast2)> Slow2{
      addStreams<F64Semiring>(X.stream(), E.stream())};
  expectLockstep(Fast2, Slow2);
}

TEST_P(StreamLaws, AddNextMatchesStrictSkipNested) {
  // Two-level union-merge: the outer δ of the wrapped stream takes the
  // skip path while the bare stream takes next(); evaluation must agree
  // exactly (same merge order, same additions).
  Rng R(GetParam() + 800);
  auto A = randomDcsr(R, 12, 9, R.nextBelow(40) + 1);
  auto B = randomDcsr(R, 12, 9, R.nextBelow(40) + 1);
  auto Fast = addStreams<F64Semiring>(A.stream(), B.stream());
  NoNext<decltype(Fast)> Slow{
      addStreams<F64Semiring>(A.stream(), B.stream())};
  Shape Sh{attrL(), Attr::named("lw_j")};
  EXPECT_TRUE(evalStream<F64Semiring>(Fast, Sh)
                  .equals(evalStream<F64Semiring>(Slow, Sh)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamLaws,
                         ::testing::Range<uint64_t>(0, 10));

} // namespace

//===- tests/jit_concurrency_test.cpp - JIT cache under concurrency -------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The serve layer turned the JIT cache from a single-threaded convenience
// into shared infrastructure, and these tests pin the concurrency
// contracts that shift demands:
//
//  * N threads jitCompile-ing the same key all converge on ONE in-process
//    handle (the insert race keeps the incumbent), and a second round is
//    pure memory hits;
//  * the eviction scan tolerates files vanishing mid-scan: a failed stat
//    is skipped, never counted — the old code folded file_size's error
//    value (uintmax_t(-1)) into Total, blowing past any budget and
//    evicting the entire cache;
//  * the in-process handle cache is bounded: past the cap, LRU handles
//    are dropped (counted in JitCacheStats), while kernels still pinned
//    by a live NativeKernelRef keep working — eviction only drops the
//    cache's reference, dlclose happens on the last release.
//
// The whole file runs under TSan in CI (see .github/workflows/ci.yml).
//
//===----------------------------------------------------------------------===//

#include "compiler/frontend.h"
#include "compiler/jit.h"
#include "formats/random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

using namespace etch;

namespace {

namespace fs = std::filesystem;

Attr AI() { return Attr::named("jc_i"); }

struct ScopedCache {
  std::string Dir;
  explicit ScopedCache(const std::string &Tag) {
    Dir = (fs::path(::testing::TempDir()) / ("etch-jitcc-test-" + Tag))
              .string();
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    jitResetCacheStatsForTest();
  }
  ~ScopedCache() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    jitResetCacheStatsForTest();
  }
  JitOptions opts() const {
    JitOptions O;
    O.CacheDir = Dir;
    O.CountSteps = false;
    return O;
  }
};

/// Σ x·y·z over a fixed intersection; Opt splits the cache key so each
/// level is a distinct kernel. Programs are lowered once and reused:
/// re-lowering the same expression gensyms fresh internal names, which
/// changes the emitted C and therefore the content-address.
struct TripleFixture {
  SparseVector<double> X{10}, Y{10}, Z{10};
  PRef Progs[3];
  TripleFixture() {
    for (auto [I, V] : {std::pair<Idx, double>{1, 2.0}, {4, 3.0}, {7, 5.0}})
      X.push(I, V);
    for (auto [I, V] :
         {std::pair<Idx, double>{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}})
      Y.push(I, V);
    for (auto [I, V] : {std::pair<Idx, double>{4, 10.0}, {7, 3.0}, {8, 1.0}})
      Z.push(I, V);
    for (int Opt : {0, 1, 2}) {
      LowerCtx Ctx;
      Ctx.OptLevel = Opt;
      Ctx.setDim(AI(), 10);
      Ctx.bind(sparseVecBinding("x", AI()));
      Ctx.bind(sparseVecBinding("y", AI()));
      Ctx.bind(sparseVecBinding("z", AI()));
      Progs[Opt] = compileFullContraction(
          Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
    }
  }
  const PRef &compile(int Opt) const { return Progs[Opt]; }
  VmMemory memory() const {
    VmMemory M;
    bindSparseVector(M, "x", X);
    bindSparseVector(M, "y", Y);
    bindSparseVector(M, "z", Z);
    return M;
  }
};

double runKernel(const NativeKernelRef &K, const TripleFixture &F) {
  VmMemory M = F.memory();
  VmRunResult R = K->run(M);
  EXPECT_FALSE(R.Error.has_value());
  return std::get<double>(*M.getScalar("out"));
}

//===----------------------------------------------------------------------===//
// Same-key compilation from many threads
//===----------------------------------------------------------------------===//

TEST(JitConcurrency, SameKeyFromManyThreadsConvergesOnOneHandle) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  TripleFixture F;
  PRef Prog = F.compile(2);
  ScopedCache Cache("samekey");

  constexpr int N = 8;
  std::vector<NativeKernelRef> Got(N);
  std::vector<std::string> Errs(N);
  {
    std::vector<std::thread> Ts;
    for (int I = 0; I < N; ++I)
      Ts.emplace_back([&, I] {
        Got[static_cast<size_t>(I)] =
            jitCompile(Prog, Cache.opts(), &Errs[static_cast<size_t>(I)]);
      });
    for (std::thread &T : Ts)
      T.join();
  }
  for (int I = 0; I < N; ++I) {
    ASSERT_NE(Got[static_cast<size_t>(I)], nullptr) << Errs[size_t(I)];
    // The insert race keeps the incumbent: every caller gets the same
    // in-process handle, so racing compiles never leak N dlopens.
    EXPECT_EQ(Got[static_cast<size_t>(I)].get(), Got[0].get());
    EXPECT_EQ(runKernel(Got[static_cast<size_t>(I)], F), 90.0);
  }
  JitCacheStats St = jitCacheStats();
  EXPECT_EQ(St.HandlesResident, 1u);
  // Every thread is accounted for exactly once on its first pass.
  EXPECT_EQ(St.Compiles + St.DiskHits + St.MemHits, static_cast<uint64_t>(N));
  EXPECT_GE(St.Compiles, 1u);

  // Round two: the handle is resident, so all N threads memory-hit.
  {
    std::vector<std::thread> Ts;
    for (int I = 0; I < N; ++I)
      Ts.emplace_back([&, I] {
        Got[static_cast<size_t>(I)] = jitCompile(Prog, Cache.opts(), nullptr);
      });
    for (std::thread &T : Ts)
      T.join();
  }
  JitCacheStats St2 = jitCacheStats();
  EXPECT_EQ(St2.MemHits, St.MemHits + N);
  EXPECT_EQ(St2.Compiles, St.Compiles);
}

//===----------------------------------------------------------------------===//
// Eviction scan vs concurrent removal (the PR's bugfix)
//===----------------------------------------------------------------------===//

TEST(JitConcurrency, EvictionScanSkipsFilesVanishingMidScan) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  TripleFixture F;
  ScopedCache Cache("evictrace");
  std::string Err;
  NativeKernelRef K1 = jitCompile(F.compile(1), Cache.opts(), &Err);
  NativeKernelRef K2 = jitCompile(F.compile(2), Cache.opts(), &Err);
  ASSERT_TRUE(K1 && K2) << Err;
  fs::path Real1 = fs::path(Cache.Dir) / (K1->key() + ".so");
  fs::path Real2 = fs::path(Cache.Dir) / (K2->key() + ".so");
  ASSERT_TRUE(fs::exists(Real1) && fs::exists(Real2));

  // Churn: `junk.c` persists with an ever-fresh mtime while `junk.so`
  // (same stem) is created and removed in a tight loop. When a scan's
  // readdir sees junk.so but the file is gone by stat time, the broken
  // code folded file_size's uintmax_t(-1) error value into that stem's
  // byte count AND the running total — and since the stem's mtime is the
  // newest in the directory, the "older" real kernels were evicted first
  // to chase an unreachable budget. The fix skips stat-failed entries,
  // so the scan stays under budget and evicts nothing.
  fs::path JunkC = fs::path(Cache.Dir) / "junk.c";
  fs::path JunkSo = fs::path(Cache.Dir) / "junk.so";
  std::atomic<bool> Stop{false};
  std::thread Churn([&] {
    std::error_code Ec;
    while (!Stop.load(std::memory_order_relaxed)) {
      std::ofstream(JunkC) << "// fresh\n";
      std::ofstream(JunkSo) << "gone in a moment\n";
      fs::remove(JunkSo, Ec);
    }
  });
  const uint64_t Budget = uint64_t(1) << 30; // far above real usage
  for (int I = 0; I < 300; ++I)
    EXPECT_EQ(jitEvictCache(Cache.Dir, Budget), 0) << "scan " << I;
  Stop.store(true, std::memory_order_relaxed);
  Churn.join();

  EXPECT_TRUE(fs::exists(Real1));
  EXPECT_TRUE(fs::exists(Real2));
}

//===----------------------------------------------------------------------===//
// Bounded handle cache (LRU) with pinning
//===----------------------------------------------------------------------===//

TEST(JitConcurrency, HandleCacheLruEvictionAndPinning) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  TripleFixture F;
  ScopedCache Cache("handlecap");
  jitSetHandleCacheCap(2);
  EXPECT_EQ(jitHandleCacheCap(), 2u);

  std::string Err;
  NativeKernelRef K0 = jitCompile(F.compile(0), Cache.opts(), &Err);
  NativeKernelRef K1 = jitCompile(F.compile(1), Cache.opts(), &Err);
  ASSERT_TRUE(K0 && K1) << Err;
  EXPECT_EQ(jitCacheStats().HandlesResident, 2u);
  EXPECT_EQ(jitCacheStats().HandleEvictions, 0u);

  // A third distinct kernel pushes the LRU entry (K0) out of the cache.
  NativeKernelRef K2 = jitCompile(F.compile(2), Cache.opts(), &Err);
  ASSERT_NE(K2, nullptr) << Err;
  JitCacheStats St = jitCacheStats();
  EXPECT_EQ(St.HandlesResident, 2u);
  EXPECT_EQ(St.HandleEvictions, 1u);

  // Eviction dropped only the cache's reference: K0 is still pinned by
  // our shared_ptr and keeps executing.
  EXPECT_EQ(runKernel(K0, F), 90.0);

  // Resident entries still memory-hit...
  uint64_t MemBefore = St.MemHits;
  NativeKernelRef K1b = jitCompile(F.compile(1), Cache.opts(), &Err);
  ASSERT_NE(K1b, nullptr);
  EXPECT_EQ(K1b.get(), K1.get());
  EXPECT_EQ(jitCacheStats().MemHits, MemBefore + 1);

  // ...while the evicted key reloads from disk (a new handle, no
  // recompilation) and re-enters the cache, displacing the next LRU.
  uint64_t CompilesBefore = jitCacheStats().Compiles;
  NativeKernelRef K0b = jitCompile(F.compile(0), Cache.opts(), &Err);
  ASSERT_NE(K0b, nullptr) << Err;
  EXPECT_NE(K0b.get(), K0.get());
  JitCacheStats St2 = jitCacheStats();
  EXPECT_EQ(St2.Compiles, CompilesBefore);
  EXPECT_GE(St2.DiskHits, 1u);
  EXPECT_EQ(St2.HandlesResident, 2u);
  EXPECT_EQ(St2.HandleEvictions, 2u);
  EXPECT_EQ(runKernel(K0b, F), 90.0);

  // Tightening the cap evicts immediately; the test-reset restores the
  // default so later tests see the production bound.
  jitSetHandleCacheCap(1);
  EXPECT_EQ(jitCacheStats().HandlesResident, 1u);
  jitResetCacheStatsForTest();
  EXPECT_EQ(jitHandleCacheCap(), JitHandleCacheDefaultCap);
}

TEST(JitConcurrency, HandleCapHoldsUnderConcurrentDistinctCompiles) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  TripleFixture F;
  ScopedCache Cache("capthreads");
  jitSetHandleCacheCap(2);

  // Three distinct kernels compiled from three threads repeatedly: the
  // resident count may never exceed the cap, whatever the interleaving.
  std::vector<std::thread> Ts;
  for (int Opt : {0, 1, 2})
    Ts.emplace_back([&, Opt] {
      for (int I = 0; I < 6; ++I) {
        NativeKernelRef K = jitCompile(F.compile(Opt), Cache.opts(), nullptr);
        ASSERT_NE(K, nullptr);
        EXPECT_EQ(runKernel(K, F), 90.0);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_LE(jitCacheStats().HandlesResident, 2u);
  EXPECT_GE(jitCacheStats().HandleEvictions, 1u);
}

} // namespace

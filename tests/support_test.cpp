//===- tests/support_test.cpp - PRNG, tables, timers ---------------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "support/benchjson.h"
#include "support/rng.h"
#include "support/simd.h"
#include "support/table.h"
#include "support/timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace etch;

namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng A(123), B(123), C(124);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Rng A2(123);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(1);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng R(2);
  std::vector<int> Counts(10, 0);
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    ++Counts[R.nextBelow(10)];
  for (int C : Counts) {
    EXPECT_GT(C, N / 10 - N / 50);
    EXPECT_LT(C, N / 10 + N / 50);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(4);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, SampleDistinctSortedProperties) {
  Rng R(5);
  for (auto [Count, Universe] :
       {std::pair<uint64_t, uint64_t>{0, 10},
        {1, 1},
        {10, 10},
        {5, 1000},
        {100, 120}}) {
    auto S = R.sampleDistinctSorted(Count, Universe);
    EXPECT_EQ(S.size(), Count);
    EXPECT_TRUE(std::is_sorted(S.begin(), S.end()));
    EXPECT_TRUE(std::adjacent_find(S.begin(), S.end()) == S.end());
    for (uint64_t V : S)
      EXPECT_LT(V, Universe);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(6);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  auto Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Table, AlignsColumns) {
  ResultTable T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.toString();
  EXPECT_NE(Out.find("name    value"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(Table, CsvEscapesNothingButDelimits) {
  ResultTable T({"a", "b"});
  T.addRow({"1", "2"});
  EXPECT_EQ(T.toCsv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(ResultTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(ResultTable::num(int64_t{-42}), "-42");
}

TEST(Table, ShortRowsArePadded) {
  ResultTable T({"a", "b", "c"});
  T.addRow({"1"});
  EXPECT_NE(T.toString().find("1"), std::string::npos);
}

TEST(BenchJson, EmitsOneObjectPerRow) {
  BenchJson J;
  J.add("spmv", "density=0.01", 4, 0.00125);
  J.add("mttkrp", "serial", 1, 2.5);
  std::string Out = J.toJson();
  EXPECT_EQ(J.size(), 2u);
  EXPECT_NE(Out.find("{\"bench\": \"spmv\", \"config\": \"density=0.01\", "
                     "\"threads\": 4, \"best_seconds\": 0.00125}"),
            std::string::npos);
  EXPECT_NE(Out.find("\"bench\": \"mttkrp\""), std::string::npos);
  // Top-level shape: an object with the host block first, then the rows.
  EXPECT_EQ(Out.front(), '{');
  EXPECT_NE(Out.find("\"host\": {"), std::string::npos);
  EXPECT_NE(Out.find("\"rows\": ["), std::string::npos);
  EXPECT_EQ(Out[Out.size() - 2], '}');
}

TEST(BenchJson, HostBlockRecordsMachineMetadata) {
  std::string Host = BenchJson::hostJson();
  EXPECT_NE(Host.find("\"cpu\": \""), std::string::npos);
  EXPECT_NE(Host.find("\"cores\": "), std::string::npos);
  EXPECT_NE(Host.find("\"simd\": \""), std::string::npos);
  // The recorded width matches the compiled-in SIMD configuration, so a
  // scalar build and a SIMD build are distinguishable in checked-in JSON.
  EXPECT_NE(Host.find("\"simd_width\": " + std::to_string(simdWidth())),
            std::string::npos);
}

TEST(BenchJson, AccessCostRowCarriesBothCostTerms) {
  BenchJson J;
  J.add("tiles", "spmv/tile=2048", 1, 0.25, 100.0, 12.5);
  std::string Out = J.toJson();
  EXPECT_NE(Out.find("\"planner_cost\": 100"), std::string::npos);
  EXPECT_NE(Out.find("\"planner_access_cost\": 12.5"), std::string::npos);
}

TEST(BenchJson, EscapesQuotesAndControlChars) {
  BenchJson J;
  J.add("a\"b", "c\\d\ne", 1, 0.0);
  std::string Out = J.toJson();
  EXPECT_NE(Out.find("a\\\"b"), std::string::npos);
  EXPECT_NE(Out.find("c\\\\d\\ne"), std::string::npos);
}

TEST(BenchJson, WritesFile) {
  BenchJson J;
  J.add("bench", "cfg", 2, 0.5);
  std::string Path = ::testing::TempDir() + "benchjson_test.json";
  ASSERT_TRUE(J.writeFile(Path));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[512] = {0};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_EQ(std::string(Buf, N), J.toJson());
}

TEST(Timer, MeasuresElapsedTime) {
  Timer T;
  double First = T.seconds();
  EXPECT_GE(First, 0.0);
  // Monotone: later reads never go backwards (the clock may be coarse
  // enough that a short busy loop reads as zero, so only order is checked).
  volatile double X = 0;
  for (int I = 0; I < 100000; ++I)
    X += I;
  (void)X;
  EXPECT_GE(T.seconds(), First);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(Timer, TimeBestTakesMinimum) {
  int Calls = 0;
  double Best = timeBest([&] { ++Calls; }, 5);
  EXPECT_EQ(Calls, 5);
  EXPECT_GE(Best, 0.0);
}

} // namespace

//===- tests/kernels_test.cpp - TACO vs Etch kernel agreement ------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Each Figure-17 benchmark expression has a TACO-style hand-written kernel
// and an indexed-stream (Etch) kernel; both must agree with each other and
// with the K-relation oracle on random inputs across sparsity levels.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "baselines/taco_kernels.h"
#include "core/eval.h"
#include "formats/random.h"

#include <gtest/gtest.h>

#include <array>

using namespace etch;

namespace {

// Intern both attributes in one deterministic order: interning order IS
// the global attribute order, and C++ argument evaluation order would
// otherwise make it depend on which test runs first.
Attr attrAt(size_t K) {
  static const std::array<Attr, 2> As = {Attr::named("kt_i"),
                                         Attr::named("kt_j")};
  return As[K];
}
Attr attrI() { return attrAt(0); }
Attr attrJ() { return attrAt(1); }

void expectCsrEqual(const CsrMatrix<double> &A, const CsrMatrix<double> &B) {
  ASSERT_EQ(A.NumRows, B.NumRows);
  ASSERT_EQ(A.Pos, B.Pos);
  ASSERT_EQ(A.Crd, B.Crd);
  ASSERT_EQ(A.Val.size(), B.Val.size());
  for (size_t I = 0; I < A.Val.size(); ++I)
    EXPECT_NEAR(A.Val[I], B.Val[I], 1e-9);
}

void expectDcsrEqual(const DcsrMatrix<double> &A,
                     const DcsrMatrix<double> &B) {
  ASSERT_EQ(A.RowCrd, B.RowCrd);
  ASSERT_EQ(A.Pos, B.Pos);
  ASSERT_EQ(A.Crd, B.Crd);
  for (size_t I = 0; I < A.Val.size(); ++I)
    EXPECT_NEAR(A.Val[I], B.Val[I], 1e-9);
}

class KernelsSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelsSweep, TripleDot) {
  Rng R(GetParam());
  size_t Nnz = 5 + GetParam() * 37;
  auto X = randomSparseVector(R, 2000, Nnz);
  auto Y = randomSparseVector(R, 2000, Nnz * 2);
  auto Z = randomSparseVector(R, 2000, Nnz / 2 + 1);
  double T = taco::tripleDot(X, Y, Z);
  EXPECT_NEAR(kernels::tripleDot(X, Y, Z), T, 1e-9);
  EXPECT_NEAR(kernels::tripleDot<SearchPolicy::Binary>(X, Y, Z), T, 1e-9);
  EXPECT_NEAR(kernels::tripleDot<SearchPolicy::Gallop>(X, Y, Z), T, 1e-9);
  // Oracle.
  Attr A = attrI();
  auto Want = X.toKRelation<F64Semiring>(A)
                  .mul(Y.toKRelation<F64Semiring>(A))
                  .mul(Z.toKRelation<F64Semiring>(A))
                  .contract(A);
  EXPECT_NEAR(T, Want.at({}), 1e-9);
}

TEST_P(KernelsSweep, Spmv) {
  Rng R(GetParam() + 100);
  auto A = randomCsr(R, 40, 60, 20 + GetParam() * 120);
  auto X = randomDenseVector(R, 60);
  DenseVector<double> Y1(40), Y2(40);
  taco::spmv(A, X, Y1);
  kernels::spmv(A, X, Y2);
  for (size_t I = 0; I < 40; ++I)
    EXPECT_NEAR(Y1.Val[I], Y2.Val[I], 1e-9);
}

TEST_P(KernelsSweep, MatAdd) {
  Rng R(GetParam() + 200);
  auto A = randomCsr(R, 30, 30, 10 + GetParam() * 60);
  auto B = randomCsr(R, 30, 30, 5 + GetParam() * 90);
  auto T = taco::matAdd(A, B);
  auto E = kernels::matAdd(A, B);
  expectCsrEqual(T, E);
  // Oracle.
  auto Want = A.toKRelation<F64Semiring>(attrI(), attrJ())
                  .add(B.toKRelation<F64Semiring>(attrI(), attrJ()));
  EXPECT_TRUE(
      T.toKRelation<F64Semiring>(attrI(), attrJ()).approxEquals(Want));
}

TEST_P(KernelsSweep, Inner) {
  Rng R(GetParam() + 300);
  auto A = randomCsr(R, 50, 50, 30 + GetParam() * 100);
  auto B = randomCsr(R, 50, 50, 30 + GetParam() * 50);
  EXPECT_NEAR(taco::inner(A, B), kernels::inner(A, B), 1e-9);
}

TEST_P(KernelsSweep, Mmul) {
  Rng R(GetParam() + 400);
  auto A = randomCsr(R, 25, 35, 20 + GetParam() * 50);
  auto B = randomCsr(R, 35, 20, 20 + GetParam() * 50);
  auto T = taco::mmul(A, B);
  auto E = kernels::mmul(A, B);
  expectCsrEqual(T, E);
}

TEST_P(KernelsSweep, MmulInnerProductAgrees) {
  Rng R(GetParam() + 450);
  auto A = randomCsr(R, 20, 30, 25 + GetParam() * 30);
  auto B = randomCsr(R, 30, 15, 25 + GetParam() * 30);
  // Transpose B for the inner-product ordering.
  std::vector<CooEntry<double>> BtCoo;
  for (Idx I = 0; I < B.NumRows; ++I)
    for (size_t P = B.Pos[static_cast<size_t>(I)];
         P < B.Pos[static_cast<size_t>(I) + 1]; ++P)
      BtCoo.push_back({B.Crd[P], I, B.Val[P]});
  auto BT = CsrMatrix<double>::fromCoo(B.NumCols, B.NumRows, BtCoo);

  auto Fast = kernels::mmul(A, B);
  auto Slow = kernels::mmulInnerProduct(A, BT);
  // The inner-product form writes explicit rows without pruning zeros the
  // same way; compare via the oracle instead of structurally.
  EXPECT_TRUE(Slow.toKRelation<F64Semiring>(attrI(), attrJ())
                  .approxEquals(
                      Fast.toKRelation<F64Semiring>(attrI(), attrJ())));
}

TEST_P(KernelsSweep, Smul) {
  Rng R(GetParam() + 500);
  auto A = randomDcsr(R, 60, 60, 25 + GetParam() * 80);
  auto B = randomDcsr(R, 60, 60, 10 + GetParam() * 200);
  auto T = taco::smul(A, B);
  auto E1 = kernels::smul(A, B);
  auto E2 = kernels::smul<SearchPolicy::Gallop>(A, B);
  expectDcsrEqual(T, E1);
  expectDcsrEqual(T, E2);
  // Oracle.
  auto Want = A.toKRelation<F64Semiring>(attrI(), attrJ())
                  .mul(B.toKRelation<F64Semiring>(attrI(), attrJ()));
  EXPECT_TRUE(
      T.toKRelation<F64Semiring>(attrI(), attrJ()).approxEquals(Want));
}

TEST_P(KernelsSweep, Mttkrp) {
  Rng R(GetParam() + 600);
  const int64_t Rank = 8;
  auto B = randomCsf3(R, 15, 12, 10, 20 + GetParam() * 40);
  std::vector<double> C(static_cast<size_t>(12 * Rank)),
      D(static_cast<size_t>(10 * Rank));
  for (auto &V : C)
    V = randomValue(R);
  for (auto &V : D)
    V = randomValue(R);
  std::vector<double> A1, A2;
  taco::mttkrp(B, C, D, Rank, A1);
  kernels::mttkrp(B, C, D, Rank, A2);
  ASSERT_EQ(A1.size(), A2.size());
  for (size_t I = 0; I < A1.size(); ++I)
    EXPECT_NEAR(A1[I], A2[I], 1e-9);
}

TEST_P(KernelsSweep, FilteredSpmv) {
  Rng R(GetParam() + 700);
  auto A = randomCsr(R, 50, 40, 30 + GetParam() * 100);
  auto X = randomDenseVector(R, 40);
  auto Pass = randomSparseVector(R, 50, 1 + GetParam() * 5);
  DenseVector<double> Y1(50), Y2(50);
  kernels::filteredSpmvFused(A, X, Pass, Y1);
  kernels::filteredSpmvUnfused(A, X, Pass, Y2);
  for (size_t I = 0; I < 50; ++I)
    EXPECT_NEAR(Y1.Val[I], Y2.Val[I], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelsSweep, ::testing::Range<size_t>(0, 8));

} // namespace

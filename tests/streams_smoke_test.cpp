//===- tests/streams_smoke_test.cpp - Early end-to-end smoke checks ------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// A handful of small, fully hand-checked cases exercising the primitive
// streams, the combinators, and evaluation. Deeper coverage lives in the
// dedicated per-module test files; this file exists so a broken core fails
// fast and obviously.
//
//===----------------------------------------------------------------------===//

#include "core/eval.h"
#include "formats/matrices.h"
#include "formats/vectors.h"
#include "streams/combinators.h"
#include "streams/eval.h"

#include <gtest/gtest.h>

using namespace etch;

namespace {

SparseVector<double> vec(Idx Size, std::vector<std::pair<Idx, double>> Es) {
  SparseVector<double> V(Size);
  for (auto [I, X] : Es)
    V.push(I, X);
  return V;
}

TEST(StreamsSmoke, SparseVectorEvaluates) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  Attr A = Attr::named("smoke_i");
  auto R = evalStream<F64Semiring>(X.stream(), Shape{A});
  EXPECT_EQ(R.supportSize(), 3u);
  EXPECT_DOUBLE_EQ(R.at({4}), 3.0);
  EXPECT_DOUBLE_EQ(R.at({5}), 0.0);
}

TEST(StreamsSmoke, TripleProductFuses) {
  // The running example of Figure 2: a three-way sparse vector product.
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}});
  auto Z = vec(10, {{4, 10.0}, {8, 1.0}});
  auto P = mulStreams<F64Semiring>(
      mulStreams<F64Semiring>(X.stream(), Y.stream()), Z.stream());
  // Only index 4 is shared: 3 * 2 * 10 = 60.
  EXPECT_DOUBLE_EQ(sumAll<F64Semiring>(P), 60.0);
}

TEST(StreamsSmoke, AdditionMerges) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}});
  auto Y = vec(10, {{4, 2.0}, {9, 9.0}});
  Attr A = Attr::named("smoke_i");
  auto R = evalStream<F64Semiring>(
      addStreams<F64Semiring>(X.stream(), Y.stream()), Shape{A});
  EXPECT_DOUBLE_EQ(R.at({1}), 2.0);
  EXPECT_DOUBLE_EQ(R.at({4}), 5.0);
  EXPECT_DOUBLE_EQ(R.at({9}), 9.0);
  EXPECT_EQ(R.supportSize(), 3u);
}

TEST(StreamsSmoke, SpmvMatchesDenseLoop) {
  // y[i] = sum_j A[i,j] * x[j] via streams vs. a plain loop.
  CsrMatrix<double> A = CsrMatrix<double>::fromCoo(
      3, 4, {{0, 1, 2.0}, {0, 3, 1.0}, {1, 0, 4.0}, {2, 2, 5.0}});
  auto X = vec(4, {{0, 1.0}, {1, 3.0}, {2, 2.0}, {3, 7.0}});

  std::vector<double> Want(3, 0.0);
  Want[0] = 2.0 * 3.0 + 1.0 * 7.0;
  Want[1] = 4.0 * 1.0;
  Want[2] = 5.0 * 2.0;

  std::vector<double> Got(3, 0.0);
  auto Rows = A.stream();
  forEach(Rows, [&](Idx I, auto Row) {
    Got[static_cast<size_t>(I)] =
        sumAll<F64Semiring>(mulStreams<F64Semiring>(Row, X.stream()));
  });
  EXPECT_EQ(Got, Want);
}

TEST(StreamsSmoke, ContractAndMapCompose) {
  // Row sums of a CSR matrix: map Σ over the column level.
  CsrMatrix<double> A = CsrMatrix<double>::fromCoo(
      3, 4, {{0, 1, 2.0}, {0, 3, 1.0}, {2, 2, 5.0}});
  Attr AI = Attr::named("smoke_i");
  auto R = evalStream<F64Semiring>(contractInner(A.stream()), Shape{AI});
  EXPECT_DOUBLE_EQ(R.at({0}), 3.0);
  EXPECT_DOUBLE_EQ(R.at({1}), 0.0);
  EXPECT_DOUBLE_EQ(R.at({2}), 5.0);
}

TEST(StreamsSmoke, OracleAgreesOnProduct) {
  auto X = vec(10, {{1, 2.0}, {4, 3.0}, {7, 5.0}});
  auto Y = vec(10, {{0, 1.0}, {4, 2.0}, {7, 2.0}});
  Attr A = Attr::named("smoke_i");
  auto RX = X.toKRelation<F64Semiring>(A);
  auto RY = Y.toKRelation<F64Semiring>(A);
  auto Streamed = evalStream<F64Semiring>(
      mulStreams<F64Semiring>(X.stream(), Y.stream()), Shape{A});
  EXPECT_TRUE(Streamed.approxEquals(RX.mul(RY)));
}

} // namespace

//===- tests/jit_native_test.cpp - JIT-to-native backend -----------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The native backend (compiler/jit.h) promises the tree-walking VM's
// observable semantics exactly — identical step counts (when compiled
// step-counting), identical error text, bit-identical outputs — plus a
// content-addressed kernel cache with specific hit/miss/corruption
// behavior and a degrade-don't-abort fallback. These tests pin all of
// it: golden parity on the compiled Fig. 2 / SpMV / hash-destination
// programs against both the tree VM and the denotational oracle, cache
// key discrimination and reuse counters, corrupted-entry recompilation,
// the bogus-compiler fallback, error/step-budget text parity, prepared
// NativeCall re-invocation, and cache-directory hygiene.
//
// Every test that touches the cache uses its own directory under the
// gtest temp dir (via JitOptions::CacheDir), so runs never litter $PWD,
// /tmp, or the user's real kernel cache.
//
//===----------------------------------------------------------------------===//

#include "compiler/bytecode.h"
#include "compiler/frontend.h"
#include "compiler/jit.h"
#include "compiler/ops.h"
#include "core/eval.h"
#include "formats/random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace etch;

namespace {

namespace fs = std::filesystem;

Attr AI() { return Attr::named("jn_i"); }
Attr AJ() { return Attr::named("jn_j"); }

/// A fresh cache directory per test, cleaned by the destructor. Also
/// flushes the in-process handle cache and counters, so every test sees
/// a genuinely cold cache.
struct ScopedCache {
  std::string Dir;
  explicit ScopedCache(const std::string &Tag) {
    Dir = (fs::path(::testing::TempDir()) / ("etch-jit-test-" + Tag))
              .string();
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    jitResetCacheStatsForTest();
  }
  ~ScopedCache() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    jitResetCacheStatsForTest();
  }
  JitOptions opts(bool CountSteps = true) const {
    JitOptions O;
    O.CacheDir = Dir;
    O.CountSteps = CountSteps;
    return O;
  }
};

bool bitsEq(const ImpValue &A, const ImpValue &B) {
  if (impTypeOf(A) != impTypeOf(B))
    return false;
  if (const double *X = std::get_if<double>(&A)) {
    uint64_t XB, YB;
    std::memcpy(&XB, X, sizeof(XB));
    std::memcpy(&YB, &std::get<double>(B), sizeof(YB));
    return XB == YB;
  }
  return A == B;
}

/// Runs \p Prog on the tree VM and a freshly jit-compiled step-counting
/// kernel (each against its own copy of \p Init) and asserts full
/// observable agreement: error text, step count, and bit-identical
/// values for every named scalar and array.
struct ParityRuns {
  VmRunResult Tree, Nat;
  VmMemory TreeMem, NatMem;
};

ParityRuns runParity(const PRef &Prog, const VmMemory &Init,
                     const JitOptions &JO,
                     int64_t MaxSteps = int64_t(1) << 28) {
  ParityRuns R;
  R.TreeMem = Init;
  R.NatMem = Init;
  R.Tree = vmRun(Prog, R.TreeMem, MaxSteps);
  std::string Err;
  NativeKernelRef K = jitCompile(Prog, JO, &Err);
  EXPECT_NE(K, nullptr) << Err;
  if (K)
    R.Nat = K->run(R.NatMem, MaxSteps);
  return R;
}

void expectParity(const ParityRuns &R,
                  const std::vector<std::string> &Scalars,
                  const std::vector<std::string> &Arrays) {
  EXPECT_EQ(R.Tree.Error.has_value(), R.Nat.Error.has_value());
  if (R.Tree.Error && R.Nat.Error) {
    EXPECT_EQ(*R.Tree.Error, *R.Nat.Error);
  }
  EXPECT_EQ(R.Tree.Steps, R.Nat.Steps);
  if (R.Tree.Error)
    return; // after an error, native memory is untouched by contract
  for (const std::string &S : Scalars) {
    auto A = R.TreeMem.getScalar(S), B = R.NatMem.getScalar(S);
    ASSERT_EQ(A.has_value(), B.has_value()) << "scalar " << S;
    if (A) {
      EXPECT_TRUE(bitsEq(*A, *B)) << "scalar " << S;
    }
  }
  for (const std::string &Name : Arrays) {
    const auto *A = R.TreeMem.getArray(Name);
    const auto *B = R.NatMem.getArray(Name);
    ASSERT_EQ(A != nullptr, B != nullptr) << "array " << Name;
    if (!A)
      continue;
    ASSERT_EQ(A->size(), B->size()) << "array " << Name;
    for (size_t I = 0; I < A->size(); ++I) {
      EXPECT_TRUE(bitsEq((*A)[I], (*B)[I]))
          << "array " << Name << "[" << I << "]";
    }
  }
}

/// Figure 2's triple sparse product; the intersection {4, 7} gives
/// 3·2·10 + 5·2·3 = 90.
struct Fig2 {
  SparseVector<double> X{10}, Y{10}, Z{10};
  Fig2() {
    for (auto [I, V] : {std::pair<Idx, double>{1, 2.0}, {4, 3.0}, {7, 5.0}})
      X.push(I, V);
    for (auto [I, V] :
         {std::pair<Idx, double>{0, 1.0}, {4, 2.0}, {7, 2.0}, {9, 9.0}})
      Y.push(I, V);
    for (auto [I, V] : {std::pair<Idx, double>{4, 10.0}, {7, 3.0}, {8, 1.0}})
      Z.push(I, V);
  }
  PRef compile(int Opt) const {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(AI(), 10);
    Ctx.bind(sparseVecBinding("x", AI()));
    Ctx.bind(sparseVecBinding("y", AI()));
    Ctx.bind(sparseVecBinding("z", AI()));
    return compileFullContraction(
        Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
  }
  VmMemory memory() const {
    VmMemory M;
    bindSparseVector(M, "x", X);
    bindSparseVector(M, "y", Y);
    bindSparseVector(M, "z", Z);
    return M;
  }
};

//===----------------------------------------------------------------------===//
// Golden parity: compiled contractions vs tree VM vs oracle
//===----------------------------------------------------------------------===//

TEST(JitNative, Fig2TripleProductAllOptLevels) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Fig2 F;
  ScopedCache C("fig2");
  for (int Opt : {0, 1, 2}) {
    ParityRuns R = runParity(F.compile(Opt), F.memory(), C.opts());
    expectParity(R, {"out"}, {});
    ASSERT_FALSE(R.Nat.Error.has_value());
    EXPECT_EQ(std::get<double>(*R.NatMem.getScalar("out")), 90.0);
  }
}

TEST(JitNative, SpmvAgainstOracle) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Rng R(51);
  auto A = randomCsr(R, 25, 25, 120);
  auto X = randomSparseVector(R, 25, 12);

  LowerCtx Ctx;
  Ctx.OptLevel = 2;
  Ctx.setDim(AI(), 25);
  Ctx.setDim(AJ(), 25);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  Ctx.bind(sparseVecBinding("x", AJ()));
  std::string Err;
  ExprPtr Prod = mulExpand(Expr::var("A"), Expr::var("x"), Ctx.types(), &Err);
  ASSERT_NE(Prod, nullptr) << Err;
  PRef Prog = compileFullContraction(Ctx, Prod, "out");

  VmMemory Init;
  bindCsr(Init, "A", A);
  bindSparseVector(Init, "x", X);

  ScopedCache Cache("spmv");
  ParityRuns PR = runParity(Prog, Init, Cache.opts());
  expectParity(PR, {"out"}, {});
  ASSERT_FALSE(PR.Nat.Error.has_value());

  // The dense reference sum: Σ_i Σ_j A(i,j)·x(j), straight off the CSR
  // arrays.
  std::vector<double> XD(25, 0.0);
  for (size_t K = 0; K < X.Crd.size(); ++K)
    XD[static_cast<size_t>(X.Crd[K])] = X.Val[K];
  double Want = 0.0;
  for (size_t I = 0; I < 25; ++I)
    for (size_t P = static_cast<size_t>(A.Pos[I]);
         P < static_cast<size_t>(A.Pos[I + 1]); ++P)
      Want += A.Val[P] * XD[static_cast<size_t>(A.Crd[P])];
  EXPECT_NEAR(std::get<double>(*PR.NatMem.getScalar("out")), Want, 1e-9);
}

TEST(JitNative, TileDenseTailsBlocksLoopsAndPreservesBits) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Rng R(57);
  auto A = randomCsr(R, 40, 40, 300);
  auto X = randomSparseVector(R, 40, 20);

  LowerCtx Ctx;
  Ctx.OptLevel = 2;
  Ctx.setDim(AI(), 40);
  Ctx.setDim(AJ(), 40);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  Ctx.bind(sparseVecBinding("x", AJ()));
  std::string Err;
  ExprPtr Prod = mulExpand(Expr::var("A"), Expr::var("x"), Ctx.types(), &Err);
  ASSERT_NE(Prod, nullptr) << Err;
  PRef Prog = compileFullContraction(Ctx, Prod, "out");

  // Source level: the option blocks every loop-invariant-bound while loop
  // into an outer guarded re-check plus a counted inner loop. The blocked
  // form carries the unsigned block-end clamp; the plain form never does.
  auto Manifest = deriveKernelManifest(Prog, &Err);
  ASSERT_TRUE(Manifest) << Err;
  CKernelOptions Plain, Tiled;
  Tiled.TileDenseTails = 64;
  std::string PlainSrc = emitCKernel(Prog, *Manifest, Plain);
  std::string TiledSrc = emitCKernel(Prog, *Manifest, Tiled);
  EXPECT_EQ(PlainSrc.find("(uint64_t)64)"), std::string::npos);
  EXPECT_NE(TiledSrc.find("(uint64_t)64)"), std::string::npos);

  // Step-counting kernels are never blocked: the per-iteration charge
  // would be re-timed, breaking step parity with the tree VM.
  CKernelOptions Counted, CountedTiled;
  Counted.CountSteps = true;
  CountedTiled.CountSteps = true;
  CountedTiled.TileDenseTails = 64;
  EXPECT_EQ(emitCKernel(Prog, *Manifest, Counted),
            emitCKernel(Prog, *Manifest, CountedTiled));

  // Behavior: tree VM, untiled native, and tiled native agree bit for
  // bit; the tile is part of the content-address.
  VmMemory Init;
  bindCsr(Init, "A", A);
  bindSparseVector(Init, "x", X);
  VmMemory TreeM = Init, PlainM = Init, TiledM = Init;
  VmRunResult TreeR = vmRun(Prog, TreeM);
  ASSERT_FALSE(TreeR.Error.has_value());

  ScopedCache Cache("tiledtails");
  NativeKernelRef PK = jitCompile(Prog, Cache.opts(false), &Err);
  ASSERT_NE(PK, nullptr) << Err;
  JitOptions TO = Cache.opts(false);
  TO.TileDenseTails = 64;
  NativeKernelRef TK = jitCompile(Prog, TO, &Err);
  ASSERT_NE(TK, nullptr) << Err;
  EXPECT_NE(PK->key(), TK->key());

  VmRunResult PlainR = PK->run(PlainM);
  VmRunResult TiledR = TK->run(TiledM);
  ASSERT_FALSE(PlainR.Error.has_value());
  ASSERT_FALSE(TiledR.Error.has_value());
  auto Want = TreeM.getScalar("out");
  ASSERT_TRUE(Want.has_value());
  ASSERT_TRUE(PlainM.getScalar("out").has_value());
  ASSERT_TRUE(TiledM.getScalar("out").has_value());
  EXPECT_TRUE(bitsEq(*Want, *PlainM.getScalar("out")));
  EXPECT_TRUE(bitsEq(*Want, *TiledM.getScalar("out")));
}

TEST(JitNative, HashDestGroupByMatchesTreeVm) {
  // The PR-6 compiled group-by: probe/insert into caller-provided hash
  // arrays. The kernel mutates bound arrays in place, so this also pins
  // the array write-back path bit for bit.
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Rng R(43);
  auto A = randomCsr(R, 10, 30, 45);

  LowerCtx Ctx;
  Ctx.setDim(AI(), 10);
  Ctx.setDim(AJ(), 30);
  Ctx.bind(csrBinding("A", AI(), AJ()));

  const int64_t TabSize = 64;
  PRef Prog = PStmt::seq2(
      PStmt::declVar("gcnt", ImpType::I64, eConstI(0)),
      compileExpr(Ctx, Expr::sum(AI(), Expr::var("A")),
                  hashDest(f64Algebra(), "gkey", "gval", "gcnt", TabSize)));

  VmMemory Init;
  bindCsr(Init, "A", A);
  Init.setArrayI64("gkey", std::vector<int64_t>(TabSize, -1));
  Init.setArrayF64("gval", std::vector<double>(TabSize, 0.0));

  ScopedCache Cache("hashdest");
  ParityRuns PR = runParity(Prog, Init, Cache.opts());
  expectParity(PR, {"gcnt"}, {"gkey", "gval"});
}

//===----------------------------------------------------------------------===//
// Error and step-budget parity
//===----------------------------------------------------------------------===//

TEST(JitNative, OutOfBoundsErrorTextMatches) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  PRef Prog = PStmt::declVar(
      "out", ImpType::F64,
      EExpr::access("a", ImpType::F64, eConstI(5)));
  VmMemory Init;
  Init.setArrayF64("a", {1.0, 2.0, 3.0});
  ScopedCache Cache("oob");
  ParityRuns PR = runParity(Prog, Init, Cache.opts());
  expectParity(PR, {}, {});
  ASSERT_TRUE(PR.Nat.Error.has_value());
  EXPECT_EQ(*PR.Nat.Error, "out-of-bounds access a[5], size 3");
}

TEST(JitNative, StepBudgetExhaustionMatches) {
  // i = 0; while (i < n) i += 1 — with a budget too small to finish.
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  PRef Prog = PStmt::seq2(
      PStmt::declVar("i", ImpType::I64, eConstI(0)),
      PStmt::whileLoop(eLtI(eVarI("i"), eVarI("n")),
                       PStmt::storeVar("i", eAddI(eVarI("i"), eConstI(1)))));
  VmMemory Init;
  Init.setScalar("n", int64_t{1000});
  ScopedCache Cache("budget");
  ParityRuns PR = runParity(Prog, Init, Cache.opts(), /*MaxSteps=*/10);
  expectParity(PR, {}, {});
  ASSERT_TRUE(PR.Nat.Error.has_value());
  EXPECT_EQ(*PR.Nat.Error,
            "step budget exhausted (possible non-termination)");
  EXPECT_EQ(PR.Nat.Steps, 11); // budget + 1, exactly like the tree VM
}

TEST(JitNative, BindingTypeMismatchMatchesBytecodeText) {
  // The host-side marshaling errors must use the bytecode VM's wording.
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  PRef Prog =
      PStmt::declVar("out", ImpType::F64, EExpr::var("x", ImpType::F64));
  VmMemory Init;
  Init.setScalar("x", int64_t{7}); // bound i64, used f64
  ScopedCache Cache("bindtype");
  std::string Err;
  NativeKernelRef K = jitCompile(Prog, Cache.opts(), &Err);
  ASSERT_NE(K, nullptr) << Err;
  VmMemory NatM = Init, BcM = Init;
  VmRunResult NatR = K->run(NatM);
  VmRunResult BcR = bytecodeCompileAndRun(Prog, BcM);
  ASSERT_TRUE(NatR.Error.has_value());
  ASSERT_TRUE(BcR.Error.has_value());
  EXPECT_EQ(*NatR.Error, *BcR.Error);
  EXPECT_EQ(*NatR.Error, "scalar 'x' is bound as i64 but used as f64");
}

//===----------------------------------------------------------------------===//
// The content-addressed cache
//===----------------------------------------------------------------------===//

TEST(JitNative, SameProgramCompilesOnce) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Fig2 F;
  PRef Prog = F.compile(2);
  ScopedCache Cache("once");
  std::string Err;
  NativeKernelRef K1 = jitCompile(Prog, Cache.opts(), &Err);
  ASSERT_NE(K1, nullptr) << Err;
  NativeKernelRef K2 = jitCompile(Prog, Cache.opts(), &Err);
  ASSERT_NE(K2, nullptr) << Err;
  EXPECT_EQ(K1.get(), K2.get()); // the same in-process handle
  JitCacheStats St = jitCacheStats();
  EXPECT_EQ(St.Compiles, 1u);
  EXPECT_EQ(St.MemHits, 1u);
  EXPECT_EQ(St.DiskHits, 0u);

  // Drop the in-process handles: the on-disk .so must now be reused
  // without invoking the compiler (the cross-run cold-start path).
  jitResetCacheStatsForTest();
  NativeKernelRef K3 = jitCompile(Prog, Cache.opts(), &Err);
  ASSERT_NE(K3, nullptr) << Err;
  St = jitCacheStats();
  EXPECT_EQ(St.Compiles, 0u);
  EXPECT_EQ(St.DiskHits, 1u);
}

TEST(JitNative, KeyDiscriminatesProgramOptionsAndLayout) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Fig2 F;
  ScopedCache Cache("keys");
  std::string Err;

  // Different optimization of the same contraction => different source
  // => different key.
  NativeKernelRef O0 = jitCompile(F.compile(0), Cache.opts(), &Err);
  NativeKernelRef O2 = jitCompile(F.compile(2), Cache.opts(), &Err);
  ASSERT_TRUE(O0 && O2) << Err;
  EXPECT_NE(O0->key(), O2->key());

  // Step counting changes the emitted source, so it must not collide.
  NativeKernelRef Fast = jitCompile(F.compile(2), Cache.opts(false), &Err);
  ASSERT_NE(Fast, nullptr) << Err;
  EXPECT_NE(Fast->key(), O2->key());

  // A caller-supplied tag (e.g. a format-layout fingerprint) splits the
  // key even for byte-identical source.
  JitOptions Tagged = Cache.opts();
  Tagged.ExtraKey = "layout=v2";
  NativeKernelRef Tag = jitCompile(F.compile(2), Tagged, &Err);
  ASSERT_NE(Tag, nullptr) << Err;
  EXPECT_NE(Tag->key(), O2->key());

  // A different level format for the same logical expression (hashed
  // instead of sorted-compressed x) lowers to different probe code.
  Rng R(7);
  auto XS = randomSparseVector(R, 100, 20);
  HashedVector<double> XH(100, XS.Crd.size());
  for (size_t I = 0; I < XS.Crd.size(); ++I)
    XH.accumulate(XS.Crd[I], XS.Val[I]);
  XH.freeze();
  VmMemory M;
  int64_t TabSize = bindHashedVector(M, "x", XH);
  LowerCtx HCtx;
  HCtx.OptLevel = 2;
  HCtx.setDim(AI(), 100);
  HCtx.bind(hashedVecBinding("x", AI(), TabSize));
  PRef HProg = compileFullContraction(HCtx, Expr::var("x"), "out");
  LowerCtx SCtx;
  SCtx.OptLevel = 2;
  SCtx.setDim(AI(), 100);
  SCtx.bind(sparseVecBinding("x", AI()));
  PRef SProg = compileFullContraction(SCtx, Expr::var("x"), "out");
  NativeKernelRef HK = jitCompile(HProg, Cache.opts(), &Err);
  NativeKernelRef SK = jitCompile(SProg, Cache.opts(), &Err);
  ASSERT_TRUE(HK && SK) << Err;
  EXPECT_NE(HK->key(), SK->key());
}

TEST(JitNative, CorruptedCacheEntryRecompiles) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Fig2 F;
  PRef Prog = F.compile(2);
  ScopedCache Cache("corrupt");
  std::string Err;
  NativeKernelRef K1 = jitCompile(Prog, Cache.opts(), &Err);
  ASSERT_NE(K1, nullptr) << Err;
  std::string So = Cache.Dir + "/" + K1->key() + ".so";
  ASSERT_TRUE(fs::exists(So));

  // Clobber the cached object, drop the in-process handle, recompile.
  // The loaded kernel is released first, and the file is replaced via a
  // fresh inode (remove + create) rather than truncated in place — the
  // dynamic loader mmaps the .so, and shrinking the mapped inode would
  // SIGBUS the process.
  K1.reset();
  jitResetCacheStatsForTest();
  fs::remove(So);
  {
    std::ofstream Out(So, std::ios::binary);
    Out << "this is not a shared object";
  }
  NativeKernelRef K2 = jitCompile(Prog, Cache.opts(), &Err);
  ASSERT_NE(K2, nullptr) << Err;
  JitCacheStats St = jitCacheStats();
  EXPECT_EQ(St.Recompiles, 1u);
  EXPECT_EQ(St.Compiles, 1u);
  EXPECT_EQ(St.DiskHits, 0u);

  // And the recompiled kernel still runs correctly.
  VmMemory M = F.memory();
  VmRunResult R = K2->run(M);
  ASSERT_FALSE(R.Error.has_value()) << *R.Error;
  EXPECT_EQ(std::get<double>(*M.getScalar("out")), 90.0);
}

TEST(JitNative, CacheHygieneAndEviction) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Fig2 F;
  ScopedCache Cache("hygiene");
  std::string Err;
  for (int Opt : {0, 1, 2})
    ASSERT_NE(jitCompile(F.compile(Opt), Cache.opts(), &Err), nullptr)
        << Err;

  // Every file in the cache dir is a content-addressed .c/.so pair —
  // no temp files, no stray names.
  size_t Files = 0;
  for (const auto &Ent : fs::directory_iterator(Cache.Dir)) {
    ++Files;
    std::string Name = Ent.path().filename().string();
    std::string Stem = Ent.path().stem().string();
    std::string Ext = Ent.path().extension().string();
    EXPECT_TRUE(Ext == ".c" || Ext == ".so") << Name;
    EXPECT_EQ(Stem.size(), 64u) << Name;
    EXPECT_EQ(Stem.find_first_not_of("0123456789abcdef"), std::string::npos)
        << Name;
  }
  EXPECT_EQ(Files, 6u); // three kernels, .c + .so each

  // Eviction to zero bytes clears the directory entirely.
  EXPECT_GT(jitEvictCache(Cache.Dir, 0), 0);
  EXPECT_TRUE(fs::is_empty(Cache.Dir));
}

//===----------------------------------------------------------------------===//
// Prepared dispatch (NativeCall)
//===----------------------------------------------------------------------===//

TEST(JitNative, PreparedCallRepeatedInvokeIsStable) {
  // The hash-destination kernel writes into its bound arrays; NativeCall
  // must re-seed them from the pristine copy so every invoke sees the
  // same initial memory.
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no system C compiler: " << jitToolchain().Diag;
  Rng R(43);
  auto A = randomCsr(R, 10, 30, 45);
  LowerCtx Ctx;
  Ctx.setDim(AI(), 10);
  Ctx.setDim(AJ(), 30);
  Ctx.bind(csrBinding("A", AI(), AJ()));
  const int64_t TabSize = 64;
  PRef Prog = PStmt::seq2(
      PStmt::declVar("gcnt", ImpType::I64, eConstI(0)),
      compileExpr(Ctx, Expr::sum(AI(), Expr::var("A")),
                  hashDest(f64Algebra(), "gkey", "gval", "gcnt", TabSize)));

  VmMemory Init;
  bindCsr(Init, "A", A);
  Init.setArrayI64("gkey", std::vector<int64_t>(TabSize, -1));
  Init.setArrayF64("gval", std::vector<double>(TabSize, 0.0));

  VmMemory TreeM = Init;
  VmRunResult TreeR = vmRun(Prog, TreeM);
  ASSERT_FALSE(TreeR.Error.has_value());
  int64_t Want = std::get<int64_t>(*TreeM.getScalar("gcnt"));

  ScopedCache Cache("prepared");
  std::string Err;
  NativeKernelRef K = jitCompile(Prog, Cache.opts(false), &Err);
  ASSERT_NE(K, nullptr) << Err;
  NativeCall Call(K);
  ASSERT_TRUE(Call.bind(Init, &Err)) << Err;
  for (int I = 0; I < 3; ++I) {
    VmRunResult CR = Call.invoke();
    ASSERT_FALSE(CR.Error.has_value()) << *CR.Error;
    auto Got = Call.scalar("gcnt");
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(std::get<int64_t>(*Got), Want) << "invoke " << I;
  }
  // bind()'s source memory is never written.
  EXPECT_FALSE(Init.getScalar("gcnt").has_value());
}

//===----------------------------------------------------------------------===//
// Fallback: no usable compiler
//===----------------------------------------------------------------------===//

TEST(JitNative, BogusCompilerFallsBackToBytecode) {
  // Point the toolchain at a nonexistent compiler: jitCompile must fail
  // with a diagnostic (not abort), and nativeRunWithFallback must still
  // produce the correct result via the bytecode VM.
  const char *OldCc = std::getenv("ETCH_CC");
  std::string Saved = OldCc ? OldCc : "";
  setenv("ETCH_CC", "/nonexistent/etch-no-such-cc", 1);
  jitResetToolchainForTest();

  EXPECT_FALSE(jitToolchain().Available);
  EXPECT_FALSE(jitToolchain().Diag.empty());

  Fig2 F;
  PRef Prog = F.compile(2);
  std::string Err;
  EXPECT_EQ(jitCompile(Prog, {}, &Err), nullptr);
  EXPECT_FALSE(Err.empty());

  VmMemory M = F.memory();
  VmRunResult R = nativeRunWithFallback(Prog, M);
  ASSERT_FALSE(R.Error.has_value()) << *R.Error;
  EXPECT_EQ(std::get<double>(*M.getScalar("out")), 90.0);
  // Steps stay meaningful on the fallback path (parity with the tree VM).
  VmMemory TreeM = F.memory();
  VmRunResult TreeR = vmRun(Prog, TreeM);
  EXPECT_EQ(R.Steps, TreeR.Steps);

  // Restore the real toolchain for the remaining tests.
  if (OldCc)
    setenv("ETCH_CC", Saved.c_str(), 1);
  else
    unsetenv("ETCH_CC");
  jitResetToolchainForTest();
}

TEST(JitNative, SourceSizeCapDeclinesAndFallsBack) {
  if (!jitToolchain().Available)
    GTEST_SKIP() << "no native toolchain: " << jitToolchain().Diag;
  ScopedCache Cache("sizecap");

  // Deeply nested fuzz programs can lower to megabytes of C that cc -O2
  // chews on for minutes; past MaxSourceBytes jitCompile must decline
  // with the stable too-large prefix instead of invoking the compiler.
  Fig2 F;
  PRef Prog = F.compile(2);
  JitOptions JO = Cache.opts(false);
  JO.MaxSourceBytes = 16; // Every real kernel exceeds this.
  std::string Err;
  EXPECT_EQ(jitCompile(Prog, JO, &Err), nullptr);
  EXPECT_EQ(Err.rfind(JitSourceTooLargePrefix, 0), 0u) << Err;
  // The compiler was never invoked and nothing landed in the cache dir.
  EXPECT_EQ(jitCacheStats().Compiles, 0u);
  std::error_code Ec;
  EXPECT_TRUE(!fs::exists(Cache.Dir, Ec) || fs::is_empty(Cache.Dir, Ec));

  // Production entry point degrades to the bytecode VM, same answer,
  // same step count as the tree VM.
  VmMemory M = F.memory();
  VmRunResult R = nativeRunWithFallback(Prog, M, int64_t(1) << 28, JO);
  ASSERT_FALSE(R.Error.has_value()) << *R.Error;
  EXPECT_EQ(std::get<double>(*M.getScalar("out")), 90.0);
  VmMemory TreeM = F.memory();
  EXPECT_EQ(R.Steps, vmRun(Prog, TreeM).Steps);

  // The default cap leaves ~100x headroom over real kernels: the same
  // program compiles untouched under default options.
  std::string Err2;
  EXPECT_NE(jitCompile(Prog, Cache.opts(false), &Err2), nullptr) << Err2;
}

} // namespace

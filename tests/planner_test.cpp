//===- tests/planner_test.cpp - Planner invariants and goldens ------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for src/planner/: statistics builders, sum-of-products
// extraction (renames resolved), the cost model's required rankings
// (Section 8.1 linear-combination over inner-product; a worst-case-optimal
// triangle order), rename invariance, enumerator validity (every emitted
// plan realizes to sorted bindings and a well-typed expression — the
// Definition 5.7 requirements), EXPLAIN goldens, and an end-to-end
// realize-install-compile-run check including a forced transposed order.
//
//===----------------------------------------------------------------------===//

#include "planner/realize.h"

#include "core/eval.h"
#include "formats/random.h"

#include <gtest/gtest.h>

using namespace etch;

namespace {

// Fresh attributes interned in hierarchy order for this test binary.
Attr plA(int I) {
  static std::vector<Attr> As = [] {
    std::vector<Attr> V;
    for (const char *N : {"pl_i", "pl_j", "pl_jj", "pl_k"})
      V.push_back(Attr::named(N));
    return V;
  }();
  return As.at(static_cast<size_t>(I));
}
Attr plI() { return plA(0); }
Attr plJ() { return plA(1); }
Attr plJJ() { return plA(2); } // An alias for pl_j used by rename tests.
Attr plK() { return plA(3); }

// The Section 8.1 matmul query Σ_j A(i,j)·B(j,k) over the given matrices.
struct MatmulQuery {
  ExprPtr E;
  TypeContext Ctx;
  PlanQuery Q;
};

MatmulQuery matmulQuery(const CsrMatrix<double> &A,
                        const CsrMatrix<double> &B) {
  MatmulQuery M;
  M.Ctx["A"] = Shape{plI(), plJ()};
  M.Ctx["B"] = Shape{plJ(), plK()};
  ExprPtr Prod = mulExpand(Expr::var("A"), Expr::var("B"), M.Ctx);
  EXPECT_TRUE(Prod);
  M.E = Expr::sum(plJ(), Prod);
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, plI(), plJ());
  Stats["B"] = statsOfCsr("B", B, plJ(), plK());
  std::string Err;
  auto Q = extractQuery(M.E, M.Ctx, Stats, {}, &Err);
  EXPECT_TRUE(Q) << Err;
  M.Q = *Q;
  return M;
}

std::vector<Attr> order3(Attr A, Attr B, Attr C) { return {A, B, C}; }

} // namespace

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(PlannerStats, FromTuplesCountsDistinctAndFill) {
  // 2x3 matrix with rows {0: cols 0,2} and {1: col 1}.
  TensorStats S = statsFromTuples(
      "A", {plI(), plJ()}, {LevelSpec::Dense, LevelSpec::Compressed}, {2, 3},
      {{0, 0}, {0, 2}, {1, 1}});
  EXPECT_EQ(S.Nnz, 3);
  ASSERT_EQ(S.Levels.size(), 2u);
  EXPECT_EQ(S.Levels[0].Distinct, 2);
  EXPECT_EQ(S.Levels[1].Distinct, 3);
  EXPECT_DOUBLE_EQ(S.Levels[0].AvgFill, 2.0);       // 2 rows from 1 root.
  EXPECT_DOUBLE_EQ(S.Levels[1].AvgFill, 3.0 / 2.0); // 3 entries / 2 rows.
  EXPECT_EQ(S.shape(), (Shape{plI(), plJ()}));
  EXPECT_EQ(S.distinctOf(plJ()), 3);
  EXPECT_EQ(S.distinctOf(plK()), 0);
}

TEST(PlannerStats, CsrBuilderMatchesTuples) {
  Rng R(3);
  auto A = randomCsr(R, 50, 40, 120);
  TensorStats S = statsOfCsr("A", A, plI(), plJ());
  EXPECT_EQ(S.Nnz, static_cast<int64_t>(A.nnz()));
  EXPECT_EQ(S.Levels[0].Kind, LevelSpec::Dense);
  EXPECT_EQ(S.Levels[1].Kind, LevelSpec::Compressed);
  EXPECT_EQ(S.Levels[0].Extent, 50);
  EXPECT_EQ(S.Levels[1].Extent, 40);
  EXPECT_TRUE(S.CanTranspose);
  // Distinct column count must match a direct computation.
  std::set<Idx> Cols(A.Crd.begin(), A.Crd.end());
  EXPECT_EQ(S.Levels[1].Distinct, static_cast<int64_t>(Cols.size()));
}

TEST(PlannerStats, HashedVectorBuilderReportsHashedKind) {
  HashedVector<double> X(Idx(1) << 20);
  X.accumulate(7, 1.0);
  X.accumulate(1000000, 2.0);
  X.accumulate(7, 0.5); // Duplicate accumulation: still one entry.
  X.freeze();
  TensorStats S = statsOfHashedVector("h", X, plI());
  EXPECT_EQ(S.Nnz, 2);
  ASSERT_EQ(S.Levels.size(), 1u);
  EXPECT_EQ(S.Levels[0].Kind, LevelSpec::Hashed);
  EXPECT_EQ(S.Levels[0].Extent, Idx(1) << 20);
  EXPECT_EQ(S.Levels[0].Distinct, 2);
  EXPECT_TRUE(S.CanHash);
  EXPECT_FALSE(S.CanTranspose);
  EXPECT_NE(statsToString(S).find("hashed(pl_i:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

TEST(PlannerExtract, MatmulShape) {
  Rng R(5);
  auto A = randomCsr(R, 30, 30, 90);
  auto B = randomCsr(R, 30, 30, 90);
  auto M = matmulQuery(A, B);
  ASSERT_EQ(M.Q.Terms.size(), 1u);
  const PlanTerm &T = M.Q.Terms[0];
  ASSERT_EQ(T.Factors.size(), 2u);
  EXPECT_EQ(T.Free, (Shape{plI(), plK()}));
  EXPECT_EQ(T.Summed, (std::vector<Attr>{plJ()}));
  EXPECT_TRUE(T.Expanded.empty());
  EXPECT_EQ(M.Q.allAttrs(), (Shape{plI(), plJ(), plK()}));
  EXPECT_EQ(M.Q.dimOf(plI()), 30);
}

TEST(PlannerExtract, ResolvesRenamesToLeafAccesses) {
  // B2 is stored at (pl_jj, pl_k); the query renames pl_jj -> pl_j.
  TypeContext Ctx;
  Ctx["A"] = Shape{plI(), plJ()};
  Ctx["B2"] = Shape{plJJ(), plK()};
  ExprPtr B2 = Expr::rename({{plJJ(), plJ()}}, Expr::var("B2"));
  ExprPtr Prod = mulExpand(Expr::var("A"), B2, Ctx);
  ASSERT_TRUE(Prod);
  ExprPtr E = Expr::sum(plJ(), Prod);

  Rng R(7);
  auto Am = randomCsr(R, 20, 20, 60);
  auto Bm = randomCsr(R, 20, 20, 60);
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", Am, plI(), plJ());
  Stats["B2"] = statsOfCsr("B2", Bm, plJJ(), plK());
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  ASSERT_TRUE(Q) << Err;
  // The B2 factor's query attributes are the renamed ones, positionally
  // aligned with its stored levels.
  const PlanTerm &T = Q->Terms[0];
  bool Found = false;
  for (const PlanFactor &F : T.Factors)
    if (F.Tensor == "B2") {
      Found = true;
      EXPECT_EQ(F.Query, (std::vector<Attr>{plJ(), plK()}));
    }
  EXPECT_TRUE(Found);
}

TEST(PlannerExtract, RejectsSumUnderMul) {
  TypeContext Ctx;
  Ctx["x"] = Shape{plI()};
  Ctx["y"] = Shape{plI()};
  // (Σ_i x) · (Σ_i y) distributes into a product of contractions.
  ExprPtr E = Expr::mul(Expr::sum(plI(), Expr::var("x")),
                        Expr::sum(plI(), Expr::var("y")));
  std::map<std::string, TensorStats> Stats;
  SparseVector<double> V(4);
  Stats["x"] = statsOfSparseVector("x", V, plI());
  Stats["y"] = statsOfSparseVector("y", V, plI());
  std::string Err;
  EXPECT_FALSE(extractQuery(E, Ctx, Stats, {}, &Err));
  EXPECT_NE(Err.find("Σ under"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cost model rankings
//===----------------------------------------------------------------------===//

TEST(PlannerCost, Sec81RanksLinearCombinationFirst) {
  // Scaled-down Section 8.1 instance: n x n with n*20 nonzeros.
  Rng R(11);
  const Idx N = 1000;
  auto A = randomCsr(R, N, N, 20000);
  auto B = randomCsr(R, N, N, 20000);
  auto M = matmulQuery(A, B);

  auto LinComb = planForOrder(M.Q, order3(plI(), plJ(), plK()));
  auto InnerProd = planForOrder(M.Q, order3(plI(), plK(), plJ()));
  ASSERT_TRUE(LinComb && InnerProd);
  // The asymptotic gap (O(n k^2) vs O(n^2 k)) dominates everything else.
  EXPECT_LT(LinComb->cost() * 10.0, InnerProd->cost());
  // The inner-product order iterates B column-major: a transposed copy.
  EXPECT_EQ(LinComb->TransposeCost, 0.0);
  EXPECT_GT(InnerProd->TransposeCost, 0.0);

  // And the full enumeration recovers the linear-combination order on top.
  auto Best = bestPlan(M.Q);
  ASSERT_TRUE(Best);
  EXPECT_EQ(Best->Order, order3(plI(), plJ(), plK()));
}

TEST(PlannerCost, TriangleWorstCasePicksUntransposedOrder) {
  // The worst-case family of queries_triangle.cpp: R = S = T =
  // {0}x[n] ∪ [n]x{0}. Any pairwise join materializes Θ(n²); the fused
  // (a,b,c) order is Θ(n) and is also the only transpose-free one.
  const Idx N = 500;
  std::vector<Tuple> Edges;
  for (Idx I = 0; I < N; ++I) {
    Edges.push_back({0, I});
    Edges.push_back({I, 0});
  }
  Attr Aa = Attr::named("pl_ta"), Ab = Attr::named("pl_tb"),
       Ac = Attr::named("pl_tc");
  auto edgeStats = [&](const char *Name, Attr X, Attr Y) {
    TensorStats S =
        statsFromTuples(Name, {X, Y},
                        {LevelSpec::Compressed, LevelSpec::Compressed},
                        {N, N}, Edges);
    S.CanTranspose = true;
    return S;
  };
  TypeContext Ctx;
  Ctx["R"] = Shape{Aa, Ab};
  Ctx["S"] = Shape{Ab, Ac};
  Ctx["T"] = Shape{Aa, Ac};
  std::map<std::string, TensorStats> Stats;
  Stats["R"] = edgeStats("R", Aa, Ab);
  Stats["S"] = edgeStats("S", Ab, Ac);
  Stats["T"] = edgeStats("T", Aa, Ac);
  ExprPtr Prod = mulExpand(
      mulExpand(Expr::var("R"), Expr::var("S"), Ctx), Expr::var("T"), Ctx);
  ASSERT_TRUE(Prod);
  ExprPtr E = Expr::sum(Aa, Expr::sum(Ab, Expr::sum(Ac, Prod)));
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  ASSERT_TRUE(Q) << Err;

  auto Best = bestPlan(*Q);
  ASSERT_TRUE(Best);
  EXPECT_EQ(Best->Order, order3(Aa, Ab, Ac));
  for (const PlanAccess &Acc : Best->Accesses)
    EXPECT_FALSE(Acc.Transposed);
  // Worst-case-optimality in miniature: the chosen plan's estimate is
  // near-linear, far below the Θ(n²) a pairwise-join order would pay.
  EXPECT_LT(Best->cost(), 100.0 * static_cast<double>(N));
}

TEST(PlannerCost, InvariantUnderRename) {
  Rng R(13);
  auto Am = randomCsr(R, 64, 64, 512);
  auto Bm = randomCsr(R, 64, 64, 512);

  // Plain query at (i, j, k).
  auto Plain = matmulQuery(Am, Bm);
  // Same query with B stored at (pl_jj, pl_k) and renamed into place.
  TypeContext Ctx;
  Ctx["A"] = Shape{plI(), plJ()};
  Ctx["B2"] = Shape{plJJ(), plK()};
  ExprPtr B2 = Expr::rename({{plJJ(), plJ()}}, Expr::var("B2"));
  ExprPtr Prod = mulExpand(Expr::var("A"), B2, Ctx);
  ASSERT_TRUE(Prod);
  ExprPtr E = Expr::sum(plJ(), Prod);
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", Am, plI(), plJ());
  Stats["B2"] = statsOfCsr("B2", Bm, plJJ(), plK());
  std::string Err;
  auto Q2 = extractQuery(E, Ctx, Stats, {}, &Err);
  ASSERT_TRUE(Q2) << Err;

  // Identical costs order-by-order: the model only sees positional stats.
  for (const auto &Order :
       {order3(plI(), plJ(), plK()), order3(plI(), plK(), plJ()),
        order3(plJ(), plI(), plK()), order3(plK(), plJ(), plI())}) {
    auto P1 = planForOrder(Plain.Q, Order);
    auto P2 = planForOrder(*Q2, Order);
    ASSERT_EQ(P1.has_value(), P2.has_value());
    if (P1) {
      EXPECT_DOUBLE_EQ(P1->StreamCost, P2->StreamCost);
      EXPECT_DOUBLE_EQ(P1->TransposeCost, P2->TransposeCost);
    }
  }
}

//===----------------------------------------------------------------------===//
// Enumerator validity (Definition 5.7 via realization)
//===----------------------------------------------------------------------===//

TEST(PlannerEnumerate, EveryPlanRealizesToValidStreams) {
  Rng R(17);
  auto Am = randomCsr(R, 32, 32, 128);
  auto Bm = randomCsr(R, 32, 32, 128);
  auto M = matmulQuery(Am, Bm);
  auto Plans = enumeratePlans(M.Q);
  ASSERT_FALSE(Plans.empty());
  // 3! = 6 candidate orders; all are realizable since both inputs are
  // two-level transposable matrices.
  EXPECT_EQ(Plans.size(), 6u);
  for (const Plan &P : Plans) {
    RealizedPlan RP = realizePlan(M.Q, P, "pt_en");
    // Definition 5.7: every binding's shape ascends in the global
    // (interning) order, and the rebuilt expression type-checks.
    for (const TensorBinding &B : RP.Bindings) {
      EXPECT_TRUE(std::is_sorted(B.Shp.begin(), B.Shp.end()));
      EXPECT_EQ(B.Shp.size(), B.Levels.size());
    }
    TypeContext Ctx;
    for (const TensorBinding &B : RP.Bindings)
      Ctx[B.Name] = B.Shp;
    std::string Err;
    auto Shp = inferShape(RP.E, Ctx, &Err);
    ASSERT_TRUE(Shp) << Err;
    // Free shape maps to the realized attributes of the plan order.
    Shape Want;
    for (Attr A : M.Q.Terms[0].Free)
      Want.push_back(RP.fresh(A));
    std::sort(Want.begin(), Want.end());
    EXPECT_EQ(*Shp, Want);
  }
  // Costs come out sorted best-first.
  for (size_t I = 1; I < Plans.size(); ++I)
    EXPECT_LE(Plans[I - 1].cost(), Plans[I].cost());
}

//===----------------------------------------------------------------------===//
// EXPLAIN goldens
//===----------------------------------------------------------------------===//

TEST(PlannerExplain, MatmulGolden) {
  // Hand-built instance so every statistic in the golden is checkable:
  // A = [[1,0,2],[0,3,0]] (CSR 2x3), B = [[0,4],[0,0],[5,6]] (CSR 3x2).
  auto A = CsrMatrix<double>::fromCoo(2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  auto B = CsrMatrix<double>::fromCoo(3, 2, {{0, 1, 4}, {2, 0, 5}, {2, 1, 6}});
  auto M = matmulQuery(A, B);
  auto Best = bestPlan(M.Q);
  ASSERT_TRUE(Best);
  EXPECT_EQ(Best->explain(M.Q),
            "order: pl_i < pl_j < pl_k\n"
            "cost: 10.2 = 9.5 stream + 0 transpose + 0 rehash"
            " + 0.75 access\n"
            "inputs:\n"
            "  A: dense(pl_i:2, distinct 2) compressed(pl_j:3, distinct 3)"
            " nnz 3\n"
            "  B: dense(pl_j:3, distinct 2) compressed(pl_k:2, distinct 2)"
            " nnz 3\n"
            "term 1: Σpl_j A(pl_i, pl_j) · B(pl_j, pl_k)\n"
            "  for pl_i [2]: iters 2, visits 2, drivers A\n"
            "  Σ pl_j [3]: iters 1.5, visits 3, drivers A B\n"
            "  for pl_k [2]: iters 1.5, visits 4.5, drivers B\n"

            "accesses:\n"
            "  A: dense(pl_i) -> compressed(pl_j, linear)  [as stored]\n"
            "  B: dense(pl_j) -> compressed(pl_k, linear)  [as stored]\n"
            "indexing:\n"
            "  A: (pl_i, pl_j, pl_k) -> (pl_i, pl_j); pl_i dense sequential"
            " [drives], pl_j compressed sequential [drives]\n"
            "  B: (pl_i, pl_j, pl_k) -> (pl_j, pl_k); pl_j dense gather,"
            " pl_k compressed sequential [drives]\n");
}

TEST(PlannerExplain, TriangleGolden) {
  // Four-node triangle instance: edges of a square plus one diagonal.
  std::vector<Tuple> Edges{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}};
  Attr Aa = Attr::named("pl_ga"), Ab = Attr::named("pl_gb"),
       Ac = Attr::named("pl_gc");
  auto edgeStats = [&](const char *Name, Attr X, Attr Y) {
    return statsFromTuples(Name, {X, Y},
                           {LevelSpec::Compressed, LevelSpec::Compressed},
                           {4, 4}, Edges);
  };
  TypeContext Ctx;
  Ctx["R"] = Shape{Aa, Ab};
  Ctx["S"] = Shape{Ab, Ac};
  Ctx["T"] = Shape{Aa, Ac};
  std::map<std::string, TensorStats> Stats;
  Stats["R"] = edgeStats("R", Aa, Ab);
  Stats["S"] = edgeStats("S", Ab, Ac);
  Stats["T"] = edgeStats("T", Aa, Ac);
  ExprPtr Prod = mulExpand(
      mulExpand(Expr::var("R"), Expr::var("S"), Ctx), Expr::var("T"), Ctx);
  ASSERT_TRUE(Prod);
  ExprPtr E = Expr::sum(Aa, Expr::sum(Ab, Expr::sum(Ac, Prod)));
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  ASSERT_TRUE(Q) << Err;
  auto Best = bestPlan(*Q);
  ASSERT_TRUE(Best);
  EXPECT_EQ(Best->explain(*Q),
            "order: pl_ga < pl_gb < pl_gc\n"
            "cost: 54.6 = 50.5 stream + 0 transpose + 0 rehash"
            " + 4.08 access\n"
            "inputs:\n"
            "  R: compressed(pl_ga:4, distinct 3) compressed(pl_gb:4,"
            " distinct 3) nnz 5\n"
            "  S: compressed(pl_gb:4, distinct 3) compressed(pl_gc:4,"
            " distinct 3) nnz 5\n"
            "  T: compressed(pl_ga:4, distinct 3) compressed(pl_gc:4,"
            " distinct 3) nnz 5\n"
            "term 1: Σpl_gc Σpl_gb Σpl_ga R(pl_ga, pl_gb) · S(pl_gb, pl_gc)"
            " · T(pl_ga, pl_gc)\n"
            "  Σ pl_ga [4]: iters 3, visits 3, drivers R T\n"
            "  Σ pl_gb [4]: iters 1.67, visits 5, drivers R S\n"
            "  Σ pl_gc [4]: iters 1.67, visits 8.33, drivers S T\n"
            "accesses:\n"
            "  R: compressed(pl_ga, linear) -> compressed(pl_gb, linear)"
            "  [as stored]\n"
            "  S: compressed(pl_gb, linear) -> compressed(pl_gc, linear)"
            "  [as stored]\n"
            "  T: compressed(pl_ga, linear) -> compressed(pl_gc, linear)"
            "  [as stored]\n"
            "indexing:\n"
            "  R: (pl_ga, pl_gb, pl_gc) -> (pl_ga, pl_gb); pl_ga compressed"
            " sequential [drives], pl_gb compressed sequential [drives]\n"
            "  S: (pl_ga, pl_gb, pl_gc) -> (pl_gb, pl_gc); pl_gb compressed"
            " gather, pl_gc compressed sequential [drives]\n"
            "  T: (pl_ga, pl_gb, pl_gc) -> (pl_ga, pl_gc); pl_ga compressed"
            " gather, pl_gc compressed gather\n");
}

namespace {

/// Hand-built single-level sparse-vector statistics over a huge key space,
/// so every number in the hashed-selection goldens is checkable by hand.
TensorStats sparseKeyStats(const char *Name, Attr A, int64_t Extent,
                           int64_t Nnz) {
  TensorStats S;
  S.Name = Name;
  S.Nnz = Nnz;
  S.Levels = {{A, LevelSpec::Compressed, Extent, Nnz,
               static_cast<double>(Nnz)}};
  S.CanHash = true;
  return S;
}

/// Σ_h s(h)·x(h) over a 2^40 key space: s drives with 5000 entries, x is
/// probed and holds 20000.
PlanQuery sparseKeyQuery() {
  Attr Ah = Attr::named("pl_h");
  const int64_t Extent = int64_t(1) << 40;
  TypeContext Ctx;
  Ctx["s"] = Shape{Ah};
  Ctx["x"] = Shape{Ah};
  ExprPtr Prod = mulExpand(Expr::var("s"), Expr::var("x"), Ctx);
  EXPECT_TRUE(Prod);
  ExprPtr E = Expr::sum(Ah, std::move(Prod));
  std::map<std::string, TensorStats> Stats;
  Stats["s"] = sparseKeyStats("s", Ah, Extent, 5000);
  Stats["x"] = sparseKeyStats("x", Ah, Extent, 20000);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  EXPECT_TRUE(Q) << Err;
  return *Q;
}

} // namespace

TEST(PlannerCost, PicksHashedWhenProbesDominate) {
  // Probe-vs-scan arithmetic: the driver visits x 5000 times. Compressed,
  // each visit scans log2(2 + 20000) ≈ 14.3 — ≈ 7.1e4 total; hashed, each
  // visit probes once (5e3) plus a 4e4 one-pass table build. Hashed wins;
  // rehashing s (the driver, which pays no locates) never does.
  PlanQuery Q = sparseKeyQuery();
  auto Best = bestPlan(Q);
  ASSERT_TRUE(Best);
  ASSERT_EQ(Best->Accesses.size(), 2u);
  const PlanAccess &S = Best->Accesses[0], &X = Best->Accesses[1];
  EXPECT_EQ(S.Tensor, "s");
  EXPECT_EQ(S.Levels[0].K, LevelSpec::Compressed);
  EXPECT_FALSE(S.Rehashed);
  EXPECT_EQ(X.Tensor, "x");
  EXPECT_EQ(X.Levels[0].K, LevelSpec::Hashed);
  EXPECT_TRUE(X.Rehashed);
  // The probe table the caller must build: 2^ceil(log2(2*20000)).
  EXPECT_EQ(X.Levels[0].TabSize, 65536);
  EXPECT_DOUBLE_EQ(Best->RehashCost, 2.0 * 20000);

  // The same plan under AllowHashed = false keeps both compressed and
  // pays the scan charge instead.
  PlanOptions NoHash;
  NoHash.AllowHashed = false;
  auto Stored = bestPlan(Q, NoHash);
  ASSERT_TRUE(Stored);
  for (const PlanAccess &A : Stored->Accesses)
    EXPECT_EQ(A.Levels[0].K, LevelSpec::Compressed);
  EXPECT_GT(Stored->cost(), Best->cost());
}

TEST(PlannerExplain, SparseKeyHashedGolden) {
  PlanQuery Q = sparseKeyQuery();
  auto Best = bestPlan(Q);
  ASSERT_TRUE(Best);
  EXPECT_EQ(Best->explain(Q),
            "order: pl_h\n"
            "cost: 5.12e+04 = 1e+04 stream + 0 transpose + 4e+04 rehash"
            " + 1.25e+03 access\n"
            "inputs:\n"
            "  s: compressed(pl_h:1099511627776, distinct 5000) nnz 5000\n"
            "  x: compressed(pl_h:1099511627776, distinct 20000) nnz"
            " 20000\n"
            "term 1: Σpl_h s(pl_h) · x(pl_h)\n"
            "  Σ pl_h [1099511627776]: iters 5e+03, visits 5e+03, drivers"
            " s x\n"
            "accesses:\n"
            "  s: compressed(pl_h, gallop)  [as stored]\n"
            "  x: hashed(pl_h, gallop)  [hashed copy]\n"
            "indexing:\n"
            "  s: (pl_h) -> (pl_h); pl_h compressed sequential [drives]\n"
            "  x: (pl_h) -> (pl_h); pl_h hashed gather\n");
}

//===----------------------------------------------------------------------===//
// End to end: realize, install, compile, run
//===----------------------------------------------------------------------===//

namespace {

double oracleMatmulTotal(const CsrMatrix<double> &A,
                         const CsrMatrix<double> &B) {
  double Total = 0.0;
  for (Idx I = 0; I < A.NumRows; ++I)
    for (size_t P = A.Pos[static_cast<size_t>(I)];
         P < A.Pos[static_cast<size_t>(I) + 1]; ++P) {
      Idx J = A.Crd[P];
      for (size_t Q = B.Pos[static_cast<size_t>(J)];
           Q < B.Pos[static_cast<size_t>(J) + 1]; ++Q)
        Total += A.Val[P] * B.Val[Q];
    }
  return Total;
}

double runPlannedMatmul(const CsrMatrix<double> &A, const CsrMatrix<double> &B,
                        const Plan &P, const PlanQuery &Q,
                        const std::string &Tag) {
  RealizedPlan RP = realizePlan(Q, P, Tag);
  LowerCtx Ctx;
  installPlan(Ctx, RP);
  VmMemory M;
  for (const PlanAccess &Acc : RP.Accesses) {
    const CsrMatrix<double> &Src = Acc.Tensor == "A" ? A : B;
    if (Acc.Transposed)
      bindCsr(M, Acc.bindName(), transpose(Src));
    else
      bindCsr(M, Acc.bindName(), Src);
  }
  PRef Prog = compileFullContraction(Ctx, RP.E, "out");
  auto Err = vmExecute(Prog, M);
  EXPECT_FALSE(Err.has_value()) << *Err;
  auto V = M.getScalar("out");
  EXPECT_TRUE(V.has_value());
  return std::get<double>(*V);
}

} // namespace

TEST(PlannerRealize, PlannedMatmulMatchesOracleAllOrders) {
  Rng R(23);
  auto A = randomCsr(R, 40, 40, 200);
  auto B = randomCsr(R, 40, 40, 200);
  auto M = matmulQuery(A, B);
  const double Want = oracleMatmulTotal(A, B);
  auto Plans = enumeratePlans(M.Q);
  ASSERT_EQ(Plans.size(), 6u);
  size_t Transposed = 0;
  for (size_t I = 0; I < Plans.size(); ++I) {
    for (const PlanAccess &Acc : Plans[I].Accesses)
      Transposed += Acc.Transposed;
    double Got = runPlannedMatmul(A, B, Plans[I], M.Q,
                                  "pt_e2e" + std::to_string(I));
    EXPECT_NEAR(Got, Want, 1e-6 * std::abs(Want)) << "plan #" << I;
  }
  // The sweep exercised both storage orientations.
  EXPECT_GT(Transposed, 0u);
}

TEST(PlannerRealize, PlannedHashedAccessMatchesOracle) {
  // Σ_h s(h)·x(h) over a 2^40 key space with real data: x holds 4000
  // entries, s the 1000 entries at every 4th coordinate of x. The saving
  // (1000 probes replacing 1000 log2(4002)-deep scans) beats the 8000
  // table-build charge, so the best plan re-formats x as hashed; the test
  // then binds the hashed copy and runs the planned kernel.
  Attr Ah = Attr::named("pl_e2h");
  const Idx Space = Idx(1) << 40;
  SparseVector<double> Xv(Space), Sv(Space);
  double Want = 0.0;
  for (Idx I = 0; I < 4000; ++I) {
    Idx C = I * 1000003 + 17;
    double V = 1.0 + 0.25 * static_cast<double>(I % 7);
    Xv.push(C, V);
    if (I % 4 == 0) {
      double W = 2.0 - 0.125 * static_cast<double>(I % 5);
      Sv.push(C, W);
      Want += V * W;
    }
  }

  TypeContext Ctx;
  Ctx["s"] = Shape{Ah};
  Ctx["x"] = Shape{Ah};
  ExprPtr Prod = mulExpand(Expr::var("s"), Expr::var("x"), Ctx);
  ASSERT_TRUE(Prod);
  ExprPtr E = Expr::sum(Ah, std::move(Prod));
  std::map<std::string, TensorStats> Stats;
  Stats["s"] = statsOfSparseVector("s", Sv, Ah);
  Stats["x"] = statsOfSparseVector("x", Xv, Ah);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  ASSERT_TRUE(Q) << Err;
  auto Best = bestPlan(*Q);
  ASSERT_TRUE(Best);

  RealizedPlan RP = realizePlan(*Q, *Best, "pt_hash");
  LowerCtx LCtx;
  installPlan(LCtx, RP);
  VmMemory M;
  size_t Hashed = 0;
  for (const PlanAccess &Acc : RP.Accesses) {
    const SparseVector<double> &Src = Acc.Tensor == "x" ? Xv : Sv;
    if (Acc.Levels[0].K == LevelSpec::Hashed) {
      ++Hashed;
      HashedVector<double> H(Src.Size, Src.nnz());
      for (size_t I = 0; I < Src.nnz(); ++I)
        H.accumulate(Src.Crd[I], Src.Val[I]);
      H.freeze();
      int64_t TabSize = bindHashedVector(M, Acc.bindName(), H);
      // The data-derived table size must match what the plan promised the
      // lowering (the emitted probes index arrays of exactly this size).
      EXPECT_EQ(TabSize, Acc.Levels[0].TabSize);
    } else {
      bindSparseVector(M, Acc.bindName(), Src);
    }
  }
  EXPECT_EQ(Hashed, 1u) << "the cost model should rehash exactly x";

  PRef Prog = compileFullContraction(LCtx, RP.E, "out");
  auto VmErr = vmExecute(Prog, M);
  ASSERT_FALSE(VmErr.has_value()) << *VmErr;
  auto V = M.getScalar("out");
  ASSERT_TRUE(V.has_value());
  EXPECT_NEAR(std::get<double>(*V), Want, 1e-9 * std::abs(Want));
}

TEST(PlannerRealize, InstallPlanSetsBindingsAndDims) {
  Rng R(29);
  auto A = randomCsr(R, 12, 18, 40);
  auto B = randomCsr(R, 18, 9, 40);
  auto M = matmulQuery(A, B);
  auto Best = bestPlan(M.Q);
  ASSERT_TRUE(Best);
  RealizedPlan RP = realizePlan(M.Q, *Best, "pt_inst");
  LowerCtx Ctx;
  installPlan(Ctx, RP);
  EXPECT_EQ(Ctx.Bindings.size(), 2u);
  for (const auto &[A2, N] : RP.FreshDims)
    EXPECT_EQ(Ctx.dimOf(A2), N);
  // Rectangular extents survive the mapping.
  EXPECT_EQ(Ctx.dimOf(RP.fresh(plI())), 12);
  EXPECT_EQ(Ctx.dimOf(RP.fresh(plJ())), 18);
  EXPECT_EQ(Ctx.dimOf(RP.fresh(plK())), 9);
}

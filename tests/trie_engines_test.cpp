//===- tests/trie_engines_test.cpp - Tries and baseline engine primitives ===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Unit and property tests for the relational substrate: trie construction
// (all supported ranks, duplicate merging, stream round-trips against a
// sorted reference) and the baseline engines' building blocks (HashIndex,
// hashJoin with/without selection vectors, gather, SortedIndex).
//
//===----------------------------------------------------------------------===//

#include "relational/engines.h"
#include "relational/trie.h"
#include "streams/eval.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace etch;

namespace {

//===----------------------------------------------------------------------===//
// Tries
//===----------------------------------------------------------------------===//

TEST(Trie, Rank1FromKeysDedups) {
  auto T = Trie<1, double>::fromKeys({{3}, {1}, {3}, {7}}, 1.0);
  EXPECT_EQ(T.Crd[0], (std::vector<Idx>{1, 3, 7}));
  EXPECT_EQ(T.numLeaves(), 3u);
}

TEST(Trie, Rank2GroupsChildren) {
  auto T = Trie<2, double>::fromRows(
      {{{1, 5}, 1.0}, {{0, 2}, 2.0}, {{1, 3}, 3.0}, {{1, 5}, 4.0}},
      [](double &A, double B) { A += B; });
  EXPECT_EQ(T.Crd[0], (std::vector<Idx>{0, 1}));
  EXPECT_EQ(T.Crd[1], (std::vector<Idx>{2, 3, 5}));
  EXPECT_EQ(T.Pos[0], (std::vector<size_t>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(T.Val[2], 5.0); // (1,5) merged: 1 + 4.
}

TEST(Trie, CountingMerge) {
  auto T = Trie<2, int64_t>::fromKeysCounting(
      {{0, 0}, {0, 0}, {0, 1}, {2, 0}, {0, 0}});
  EXPECT_EQ(T.Val[0], 3); // (0,0) three times.
  EXPECT_EQ(T.Val[1], 1);
  EXPECT_EQ(T.Val[2], 1);
}

template <int R> void randomTrieRoundTrip(uint64_t Seed) {
  Rng Rand(Seed);
  std::map<std::array<Idx, R>, double> Ref;
  std::vector<std::pair<std::array<Idx, R>, double>> Rows;
  size_t N = Rand.nextBelow(200) + 1;
  for (size_t I = 0; I < N; ++I) {
    std::array<Idx, R> Key;
    for (int L = 0; L < R; ++L)
      Key[static_cast<size_t>(L)] =
          static_cast<Idx>(Rand.nextBelow(8));
    double V = 0.5 + Rand.nextDouble();
    Ref[Key] += V;
    Rows.push_back({Key, V});
  }
  auto T = Trie<R, double>::fromRows(std::move(Rows),
                                     [](double &A, double B) { A += B; });
  // Walk the trie via its stream and compare against the reference map.
  std::map<std::array<Idx, R>, double> Seen;
  std::array<Idx, R> Cur{};
  auto Walk = [&](auto &&Self, auto Stream, int Level) -> void {
    forEach(std::move(Stream), [&](Idx I, auto V) {
      Cur[static_cast<size_t>(Level)] = I;
      if constexpr (IsStreamV<decltype(V)>)
        Self(Self, std::move(V), Level + 1);
      else
        Seen[Cur] = V;
    });
  };
  Walk(Walk, T.stream(), 0);
  ASSERT_EQ(Seen.size(), Ref.size());
  for (const auto &[K, V] : Ref)
    EXPECT_NEAR(Seen.at(K), V, 1e-9);
}

TEST(Trie, Rank2RandomRoundTrip) {
  for (uint64_t S = 0; S < 6; ++S)
    randomTrieRoundTrip<2>(S);
}

TEST(Trie, Rank3RandomRoundTrip) {
  for (uint64_t S = 0; S < 6; ++S)
    randomTrieRoundTrip<3>(S + 10);
}

TEST(Trie, Rank4RandomRoundTrip) {
  for (uint64_t S = 0; S < 4; ++S)
    randomTrieRoundTrip<4>(S + 20);
}

TEST(Trie, EmptyTrieHasNoStates) {
  Trie<2, double> T = Trie<2, double>::fromKeys({}, 1.0);
  int Visits = 0;
  forEach(T.stream(), [&](Idx, auto) { ++Visits; });
  EXPECT_EQ(Visits, 0);
}

//===----------------------------------------------------------------------===//
// Engine primitives
//===----------------------------------------------------------------------===//

TEST(HashIndex, ProbeFindsAllDuplicates) {
  std::vector<Idx> Keys = {5, 3, 5, 9, 5, 3};
  HashIndex H(Keys);
  std::vector<RowId> Out;
  H.probe(5, Out);
  std::sort(Out.begin(), Out.end());
  EXPECT_EQ(Out, (std::vector<RowId>{0, 2, 4}));
  Out.clear();
  H.probe(42, Out);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(H.probeOne(9), 3);
  EXPECT_EQ(H.probeOne(1), -1);
}

TEST(HashJoin, MatchesNestedLoopReference) {
  Rng R(11);
  for (int Case = 0; Case < 6; ++Case) {
    std::vector<Idx> Build, Probe;
    size_t NB = R.nextBelow(50) + 1, NP = R.nextBelow(50) + 1;
    for (size_t I = 0; I < NB; ++I)
      Build.push_back(static_cast<Idx>(R.nextBelow(10)));
    for (size_t I = 0; I < NP; ++I)
      Probe.push_back(static_cast<Idx>(R.nextBelow(10)));

    JoinPairs Got = hashJoin(Build, Probe);
    size_t Want = 0;
    for (Idx B : Build)
      for (Idx P : Probe)
        Want += B == P;
    EXPECT_EQ(Got.size(), Want);
    for (size_t I = 0; I < Got.size(); ++I)
      EXPECT_EQ(Build[Got.Left[I]], Probe[Got.Right[I]]);
  }
}

TEST(HashJoin, SelectionVectorRestrictsProbes) {
  std::vector<Idx> Build = {1, 2, 3};
  std::vector<Idx> Probe = {1, 2, 3, 1};
  std::vector<RowId> Sel = {0, 3}; // Only the two 1s.
  JoinPairs Got = hashJoin(Build, Probe, Sel);
  EXPECT_EQ(Got.size(), 2u);
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_EQ(Build[Got.Left[I]], 1);
    // Right holds actual row ids, not positions in Sel.
    EXPECT_TRUE(Got.Right[I] == 0 || Got.Right[I] == 3);
  }
}

TEST(Gather, MaterialisesSelectedRows) {
  std::vector<Idx> Col = {10, 20, 30, 40};
  std::vector<RowId> Sel = {3, 0, 3};
  EXPECT_EQ(gather(Col, Sel), (std::vector<Idx>{40, 10, 40}));
  std::vector<double> ColF = {0.5, 1.5};
  std::vector<RowId> SelF = {1, 1};
  EXPECT_EQ(gather(ColF, SelF), (std::vector<double>{1.5, 1.5}));
}

TEST(FilterRows, ReturnsMatchingRowIds) {
  std::vector<Idx> Col = {5, 10, 15, 20};
  auto Sel = filterRows(Col, [](Idx V) { return V >= 10 && V < 20; });
  EXPECT_EQ(Sel, (std::vector<RowId>{1, 2}));
}

TEST(SortedIndexT, ScanEqualVisitsAllMatches) {
  std::vector<Idx> Keys = {7, 3, 7, 1, 7};
  SortedIndex Idx_(Keys);
  std::vector<RowId> Rows;
  Idx_.scanEqual(7, [&](RowId R) { Rows.push_back(R); });
  std::sort(Rows.begin(), Rows.end());
  EXPECT_EQ(Rows, (std::vector<RowId>{0, 2, 4}));
  int Missing = 0;
  Idx_.scanEqual(100, [&](RowId) { ++Missing; });
  EXPECT_EQ(Missing, 0);
  EXPECT_EQ(Idx_.size(), 5u);
}

} // namespace

//===- tests/serve_test.cpp - Concurrent contraction service --------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The serve layer (serve/service.h) promises three amortization layers
// and one isolation guarantee, and these tests pin all of them:
//
//  * plan-cache amortization: the first query of a shape runs the planner
//    exactly once; every subsequent query is a counted hit that performs
//    NO planner enumeration (PlannerRuns stays put) and returns
//    bit-identical results;
//  * canonical keying: permuted factor lists share one plan;
//  * invalidation precision: a write to tensor T drops only plans
//    reading T — unrelated shapes keep hitting;
//  * snapshot isolation: readers pinned to epoch E see bit-identical
//    results no matter how many epochs a concurrent writer installs;
//  * batching: queryBatch groups identical queries onto one dispatch
//    each, and every result is bit-identical to per-request serial
//    execution on an identically-loaded service.
//
// The concurrency tests run under TSan in CI.
//
//===----------------------------------------------------------------------===//

#include "serve/service.h"

#include "formats/random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

using namespace etch;

namespace {

namespace fs = std::filesystem;

// Registered in this order, so SI < SJ in the global attribute order.
Attr SI() { return Attr::named("sv_i"); }
Attr SJ() { return Attr::named("sv_j"); }

bool sameBits(double A, double B) {
  uint64_t X, Y;
  std::memcpy(&X, &A, sizeof(X));
  std::memcpy(&Y, &B, sizeof(Y));
  return X == Y;
}

/// Dense reference for Σ_i Σ_j A(i,j)·x(j).
double refSpmv(const CsrMatrix<double> &A, const SparseVector<double> &X) {
  std::vector<double> XD(static_cast<size_t>(A.NumCols), 0.0);
  for (size_t K = 0; K < X.Crd.size(); ++K)
    XD[static_cast<size_t>(X.Crd[K])] = X.Val[K];
  double S = 0.0;
  for (size_t P = 0; P < A.Val.size(); ++P)
    S += A.Val[P] * XD[static_cast<size_t>(A.Crd[P])];
  return S;
}

/// Dense reference for Σ_i y(i)·z(i)·w(i).
double refTriple(const SparseVector<double> &Y, const SparseVector<double> &Z,
                 const SparseVector<double> &W) {
  std::vector<double> YD(static_cast<size_t>(Y.Size), 0.0),
      ZD(YD.size(), 0.0), WD(YD.size(), 0.0);
  for (size_t K = 0; K < Y.Crd.size(); ++K)
    YD[static_cast<size_t>(Y.Crd[K])] = Y.Val[K];
  for (size_t K = 0; K < Z.Crd.size(); ++K)
    ZD[static_cast<size_t>(Z.Crd[K])] = Z.Val[K];
  for (size_t K = 0; K < W.Crd.size(); ++K)
    WD[static_cast<size_t>(W.Crd[K])] = W.Val[K];
  double S = 0.0;
  for (size_t I = 0; I < YD.size(); ++I)
    S += YD[I] * ZD[I] * WD[I];
  return S;
}

/// Dense reference for Σ_i Σ_j A(i,j)·d(j).
double refMatDense(const CsrMatrix<double> &A, const DenseVector<double> &D) {
  double S = 0.0;
  for (size_t P = 0; P < A.Val.size(); ++P)
    S += A.Val[P] * D.Val[static_cast<size_t>(A.Crd[P])];
  return S;
}

/// One shared data set, loadable into any number of services so serial
/// and concurrent executions can be compared bit for bit.
struct ServeData {
  CsrMatrix<double> A;
  SparseVector<double> X{40}, Y{30}, Z{30}, W{30};
  DenseVector<double> D{40};

  ServeData() {
    Rng R(97);
    A = randomCsr(R, 30, 40, 180);
    X = randomSparseVector(R, 40, 18);
    Y = randomSparseVector(R, 30, 15);
    Z = randomSparseVector(R, 30, 15);
    W = randomSparseVector(R, 30, 15);
    for (Idx I = 0; I < D.Size; ++I)
      D.Val[static_cast<size_t>(I)] = randomValue(R);
  }

  void load(ContractionService &S) const {
    SI(); // pin the attribute registration order
    S.loadCsr("A", A, SI(), SJ());
    S.loadSparse("x", X, SJ());
    S.loadSparse("y", Y, SI());
    S.loadSparse("z", Z, SI());
    S.loadSparse("w", W, SI());
    S.loadDense("d", D, SJ());
  }
};

/// A service with a per-test JIT cache directory under the gtest temp
/// dir, removed on destruction.
struct ScopedService {
  std::string Dir;
  std::unique_ptr<ContractionService> S;

  explicit ScopedService(const std::string &Tag, const ServeData &Data,
                         ServeOptions O = {}) {
    Dir = (fs::path(::testing::TempDir()) / ("etch-serve-test-" + Tag))
              .string();
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    O.JitCacheDir = Dir;
    S = std::make_unique<ContractionService>(O);
    Data.load(*S);
  }
  ~ScopedService() {
    S.reset();
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  ContractionService &operator*() { return *S; }
  ContractionService *operator->() { return S.get(); }
};

//===----------------------------------------------------------------------===//
// Plan-cache amortization
//===----------------------------------------------------------------------===//

TEST(Serve, FirstQueryPlansOnceThenEveryQueryHits) {
  ServeData Data;
  ScopedService Svc("amortize", Data);
  ServeQuery Q{{"A", "x"}};

  ServeResult First = Svc->query(Q);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_FALSE(First.PlanCacheHit);
  EXPECT_NEAR(First.Value, refSpmv(Data.A, Data.X), 1e-9);
  PlanCacheStats PS = Svc->planStats();
  EXPECT_EQ(PS.Misses, 1u);
  EXPECT_EQ(PS.PlannerRuns, 1u);
  EXPECT_EQ(PS.Hits, 0u);
  EXPECT_EQ(PS.Resident, 1u);

  for (int I = 0; I < 10; ++I) {
    ServeResult R = Svc->query(Q);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.PlanCacheHit);
    EXPECT_TRUE(sameBits(R.Value, First.Value));
    EXPECT_EQ(R.Backend, First.Backend);
  }
  PS = Svc->planStats();
  EXPECT_EQ(PS.Hits, 10u);
  // The acceptance contract: a hit performs no planner enumeration.
  EXPECT_EQ(PS.PlannerRuns, 1u);

  ServiceStats SS = Svc->stats();
  EXPECT_EQ(SS.Queries, 11u);
  EXPECT_EQ(SS.Executions, 11u);
  EXPECT_EQ(SS.Coalesced, 0u);
}

TEST(Serve, PermutedFactorsShareOnePlan) {
  ServeData Data;
  ScopedService Svc("canon", Data);
  ServeResult R1 = Svc->query(ServeQuery{{"y", "z", "w"}});
  ASSERT_TRUE(R1.Ok) << R1.Error;
  EXPECT_NEAR(R1.Value, refTriple(Data.Y, Data.Z, Data.W), 1e-9);

  ServeResult R2 = Svc->query(ServeQuery{{"w", "y", "z"}});
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_TRUE(R2.PlanCacheHit);
  EXPECT_TRUE(sameBits(R1.Value, R2.Value));
  EXPECT_EQ(Svc->planStats().PlannerRuns, 1u);
}

TEST(Serve, WriteInvalidatesOnlyPlansReadingThatTensor) {
  ServeData Data;
  ScopedService Svc("invalidate", Data);
  ASSERT_TRUE(Svc->query(ServeQuery{{"A", "x"}}).Ok);
  ASSERT_TRUE(Svc->query(ServeQuery{{"y", "z", "w"}}).Ok);
  ASSERT_TRUE(Svc->query(ServeQuery{{"A", "d"}}).Ok);
  EXPECT_EQ(Svc->planStats().Resident, 3u);

  // Append one entry in a column where x is nonzero, so the SpMV value
  // genuinely changes.
  Idx C = Data.X.Crd[0];
  Svc->appendCsr("A", {{0, C, 3.5}});
  PlanCacheStats PS = Svc->planStats();
  EXPECT_EQ(PS.Invalidations, 2u); // {A,x} and {A,d} both read A
  EXPECT_EQ(PS.Resident, 1u);

  // The unaffected shape still hits.
  ServeResult RT = Svc->query(ServeQuery{{"y", "z", "w"}});
  ASSERT_TRUE(RT.Ok);
  EXPECT_TRUE(RT.PlanCacheHit);

  // The affected shape re-plans against the new version and sees the
  // appended entry.
  ServeResult RS = Svc->query(ServeQuery{{"A", "x"}});
  ASSERT_TRUE(RS.Ok) << RS.Error;
  EXPECT_FALSE(RS.PlanCacheHit);
  CsrMatrix<double> A2 = Svc->snapshot()->find("A")->Csr;
  EXPECT_NEAR(RS.Value, refSpmv(A2, Data.X), 1e-9);
  EXPECT_EQ(Svc->planStats().PlannerRuns, 4u);
}

TEST(Serve, UnknownTensorFailsWithoutCachingAnything) {
  ServeData Data;
  ScopedService Svc("unknown", Data);
  ServeResult R = Svc->query(ServeQuery{{"A", "nosuch"}});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("nosuch"), std::string::npos) << R.Error;
  PlanCacheStats PS = Svc->planStats();
  EXPECT_EQ(PS.Misses, 0u);
  EXPECT_EQ(PS.Resident, 0u);
  EXPECT_EQ(PS.PlannerRuns, 0u);
}

//===----------------------------------------------------------------------===//
// Snapshot isolation
//===----------------------------------------------------------------------===//

TEST(Serve, PinnedSnapshotReadsAreBitIdenticalUnderConcurrentWrites) {
  ServeData Data;
  ScopedService Svc("isolation", Data);
  ServeQuery Q{{"A", "x"}};

  CatalogSnapshotRef Pin = Svc->snapshot();
  ServeResult Baseline = Svc->query(Q, Pin);
  ASSERT_TRUE(Baseline.Ok) << Baseline.Error;
  EXPECT_EQ(Baseline.Epoch, Pin->epoch());

  // A writer installs 20 successor epochs while 4 pinned readers rerun
  // the query; every pinned result must carry the pinned epoch and the
  // exact baseline bits.
  Idx C = Data.X.Crd[0];
  std::atomic<int> Failures{0};
  std::thread Writer([&] {
    for (int I = 0; I < 20; ++I)
      Svc->appendCsr("A", {{I % 30, C, 1.0}});
  });
  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&] {
      for (int I = 0; I < 25; ++I) {
        ServeResult R = Svc->query(Q, Pin);
        if (!R.Ok || R.Epoch != Pin->epoch() ||
            !sameBits(R.Value, Baseline.Value))
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  Writer.join();
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  // The current epoch has moved on and sees all 20 appended entries.
  ServeResult Now = Svc->query(Q);
  ASSERT_TRUE(Now.Ok) << Now.Error;
  EXPECT_EQ(Now.Epoch, Pin->epoch() + 20);
  CsrMatrix<double> A2 = Svc->snapshot()->find("A")->Csr;
  EXPECT_NEAR(Now.Value, refSpmv(A2, Data.X), 1e-9);
}

//===----------------------------------------------------------------------===//
// Batching
//===----------------------------------------------------------------------===//

TEST(Serve, BatchCoalescesGroupsAndMatchesSerialExecutionBitForBit) {
  ServeData Data;
  const std::vector<ServeQuery> Shapes = {
      ServeQuery{{"A", "x"}}, ServeQuery{{"y", "z", "w"}},
      ServeQuery{{"A", "d"}}, ServeQuery{{"x", "x"}}};

  // Serial oracle: a fresh single-threaded service answering one request
  // at a time.
  ScopedService Serial("batch-serial", Data, [] {
    ServeOptions O;
    O.Threads = 1;
    return O;
  }());
  std::vector<double> Want(Shapes.size());
  for (size_t I = 0; I < Shapes.size(); ++I) {
    ServeResult R = Serial->query(Shapes[I]);
    ASSERT_TRUE(R.Ok) << R.Error;
    Want[I] = R.Value;
  }
  EXPECT_NEAR(Want[0], refSpmv(Data.A, Data.X), 1e-9);
  EXPECT_NEAR(Want[1], refTriple(Data.Y, Data.Z, Data.W), 1e-9);
  EXPECT_NEAR(Want[2], refMatDense(Data.A, Data.D), 1e-9);

  ScopedService Svc("batch", Data);
  std::vector<ServeQuery> Batch;
  for (int I = 0; I < 64; ++I)
    Batch.push_back(Shapes[static_cast<size_t>(I) % Shapes.size()]);
  std::vector<ServeResult> Out = Svc->queryBatch(Batch);
  ASSERT_EQ(Out.size(), Batch.size());

  size_t Coalesced = 0;
  for (size_t I = 0; I < Out.size(); ++I) {
    ASSERT_TRUE(Out[I].Ok) << I << ": " << Out[I].Error;
    EXPECT_TRUE(sameBits(Out[I].Value, Want[I % Shapes.size()]))
        << "batch[" << I << "]";
    Coalesced += Out[I].Coalesced ? 1 : 0;
  }
  // One dispatch per distinct shape; everyone else rode along.
  EXPECT_EQ(Coalesced, Batch.size() - Shapes.size());
  ServiceStats SS = Svc->stats();
  EXPECT_EQ(SS.Queries, Batch.size());
  EXPECT_EQ(SS.Executions, Shapes.size());
  EXPECT_EQ(SS.Coalesced, Batch.size() - Shapes.size());
  EXPECT_EQ(Svc->planStats().PlannerRuns, Shapes.size());
}

TEST(Serve, BatchReportsPerQueryErrorsWithoutPoisoningTheRest) {
  ServeData Data;
  ScopedService Svc("batch-err", Data);
  std::vector<ServeResult> Out = Svc->queryBatch(
      {ServeQuery{{"A", "x"}}, ServeQuery{{"ghost"}}, ServeQuery{{"A", "x"}}});
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_TRUE(Out[0].Ok) << Out[0].Error;
  EXPECT_FALSE(Out[1].Ok);
  EXPECT_NE(Out[1].Error.find("ghost"), std::string::npos);
  EXPECT_TRUE(Out[2].Ok);
  EXPECT_TRUE(sameBits(Out[0].Value, Out[2].Value));
}

//===----------------------------------------------------------------------===//
// Concurrent mixed workload (TSan)
//===----------------------------------------------------------------------===//

TEST(Serve, ConcurrentClientsSustainHighHitRateUnderWrites) {
  ServeData Data;
  ScopedService Svc("mixed", Data);
  const std::vector<ServeQuery> Shapes = {
      ServeQuery{{"A", "x"}}, ServeQuery{{"y", "z", "w"}},
      ServeQuery{{"A", "d"}}, ServeQuery{{"x", "d"}}};

  constexpr int Threads = 8, Iters = 40;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < Threads; ++T)
    Clients.emplace_back([&, T] {
      for (int I = 0; I < Iters; ++I) {
        const ServeQuery &Q = Shapes[static_cast<size_t>(T + I) %
                                     Shapes.size()];
        ServeResult R = Svc->query(Q);
        if (!R.Ok)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  // Two mid-flight writes to one tensor: a handful of re-plans, nothing
  // more.
  std::thread Writer([&] {
    Svc->appendSparse("y", {{3, 0.25}});
    Svc->appendSparse("y", {{5, 0.25}});
  });
  for (std::thread &T : Clients)
    T.join();
  Writer.join();
  EXPECT_EQ(Failures.load(), 0);

  // Steady state: misses are bounded by first-touches plus write-induced
  // re-plans, so >90% of requests perform no planner enumeration.
  PlanCacheStats PS = Svc->planStats();
  ServiceStats SS = Svc->stats();
  EXPECT_EQ(SS.Queries, static_cast<uint64_t>(Threads) * Iters);
  EXPECT_LE(PS.Misses, Shapes.size() + 2 * 2); // ≤2 invalidations/write
  EXPECT_EQ(PS.PlannerRuns, PS.Misses);
  double HitRate = 1.0 - double(PS.Misses) / double(SS.Queries);
  EXPECT_GT(HitRate, 0.9);
  // Every request is accounted for: its own dispatch or a ride-along.
  EXPECT_EQ(SS.Executions + SS.Coalesced, SS.Queries);
}

} // namespace

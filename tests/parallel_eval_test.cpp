//===- tests/parallel_eval_test.cpp - Parallel vs serial oracles ---------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Oracle tests for the data-parallel evaluation layer (streams/parallel.h,
// support/threadpool.h) and the parallel baseline kernels:
//
//   - the thread pool runs every index exactly once, under serial pools,
//     oversubscription, and nesting;
//   - partitioners produce disjoint, covering, ordered chunk lists;
//   - parallelEvalStream and the chunk-partitioned kernels are
//     *bit-identical* to their serial counterparts (every output value is
//     fully computed within one chunk, with the serial association);
//   - parallelSumAll is bit-identical to the chunk-ordered serial fold for
//     every thread count (determinism), exact for integer semirings, and
//     within float tolerance of the flat serial sum;
//   - degenerate shapes: 1 chunk, more chunks than threads, more chunks
//     than elements (empty chunks), empty streams.
//
// The CI ThreadSanitizer job runs exactly this binary to race-check the
// concurrency layer.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "relational/prepared.h"
#include "streams/laws.h"
#include "streams/parallel.h"
#include "support/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

using namespace etch;

namespace {

using S = F64Semiring;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_EQ(Pool.threadCount(), Threads);
    const size_t N = 1000;
    std::vector<std::atomic<int>> Hits(N);
    Pool.parallelFor(N, [&](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << ", " << Threads
                                   << " threads";
  }
}

TEST(ThreadPool, HandlesEmptyAndSingleton) {
  ThreadPool Pool(4);
  int Calls = 0;
  Pool.parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool Pool(4);
  const size_t Outer = 16, Inner = 16;
  std::vector<std::atomic<int>> Hits(Outer * Inner);
  Pool.parallelFor(Outer, [&](size_t O) {
    Pool.parallelFor(Inner, [&](size_t I) { ++Hits[O * Inner + I]; });
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, SurvivesManySmallRegions) {
  ThreadPool Pool(3);
  std::atomic<int64_t> Sum{0};
  for (int Round = 0; Round < 200; ++Round)
    Pool.parallelFor(7, [&](size_t I) {
      Sum += static_cast<int64_t>(I) + 1;
    });
  EXPECT_EQ(Sum.load(), 200 * (7 * 8 / 2));
}

//===----------------------------------------------------------------------===//
// Partitioners
//===----------------------------------------------------------------------===//

void expectPartition(const std::vector<IdxRange> &Chunks, Idx Lo, Idx Hi) {
  ASSERT_FALSE(Chunks.empty());
  EXPECT_EQ(Chunks.front().Lo, Lo);
  EXPECT_EQ(Chunks.back().Hi, Hi);
  for (size_t C = 0; C < Chunks.size(); ++C) {
    EXPECT_LE(Chunks[C].Lo, Chunks[C].Hi);
    if (C + 1 < Chunks.size())
      EXPECT_EQ(Chunks[C].Hi, Chunks[C + 1].Lo);
  }
}

TEST(Partition, DenseCoversAndBalances) {
  for (Idx Size : {Idx(0), Idx(1), Idx(7), Idx(100)}) {
    for (size_t Chunks : {size_t(1), size_t(3), size_t(8), size_t(200)}) {
      auto P = partitionDense(Size, Chunks);
      EXPECT_EQ(P.size(), Chunks);
      expectPartition(P, 0, Size);
      for (const IdxRange &R : P)
        EXPECT_LE(R.Hi - R.Lo, Size / static_cast<Idx>(Chunks) + 1);
    }
  }
}

TEST(Partition, SparseSplitsByPosition) {
  Rng R(7);
  auto V = randomSparseVector(R, 1000, 237);
  for (size_t Chunks : {size_t(1), size_t(4), size_t(64), size_t(500)}) {
    auto P = partitionSparse(V.stream(), Chunks);
    EXPECT_EQ(P.size(), Chunks);
    expectPartition(P, 0, IdxRangeMax);
    // Each chunk holds a near-equal share of the stored entries.
    for (const IdxRange &Range : P) {
      size_t Count = 0;
      forEach(BoundedStream<decltype(V.stream())>(V.stream(), Range.Lo,
                                                  Range.Hi),
              [&](Idx, double) { ++Count; });
      EXPECT_LE(Count, 237 / Chunks + 1);
    }
  }
}

TEST(Partition, ByPosBalancesSkewedRows) {
  // One huge row among many empty ones: the nnz-balanced partitioner must
  // isolate it rather than splitting rows evenly.
  std::vector<CooEntry<double>> Coo;
  for (Idx J = 0; J < 100; ++J)
    Coo.push_back({50, J, 1.0});
  Coo.push_back({0, 0, 1.0});
  Coo.push_back({99, 0, 1.0});
  auto A = CsrMatrix<double>::fromCoo(100, 100, Coo);
  auto P = partitionByPos(A.Pos.data(), A.NumRows, 4);
  expectPartition(P, 0, 100);
  size_t MaxNnz = 0;
  for (const IdxRange &Range : P)
    MaxNnz = std::max<size_t>(
        MaxNnz, A.Pos[static_cast<size_t>(Range.Hi)] -
                    A.Pos[static_cast<size_t>(Range.Lo)]);
  // The dominant row cannot be split; the worst chunk holds it plus at
  // most a fair share of the two remaining entries.
  EXPECT_LE(MaxNnz, 101u);
}

//===----------------------------------------------------------------------===//
// BoundedStream
//===----------------------------------------------------------------------===//

TEST(BoundedStream, SatisfiesStreamLaws) {
  Rng R(11);
  auto V = randomSparseVector(R, 200, 40);
  using St = decltype(V.stream());
  BoundedStream<St> B(V.stream(), 30, 150);
  EXPECT_TRUE(checkStrictMonotone(B));
  std::vector<std::pair<Idx, bool>> Probes;
  for (Idx I : {0, 10, 50, 149, 150, 151})
    for (bool Strict : {false, true})
      Probes.push_back({I, Strict});
  EXPECT_TRUE(checkSkipMonotone(B, Probes));
}

TEST(BoundedStream, VisitsExactlyTheRange) {
  Rng R(12);
  auto V = randomSparseVector(R, 300, 120);
  for (auto [Lo, Hi] : {std::pair<Idx, Idx>{0, 300},
                        {50, 200},
                        {100, 100},
                        {250, IdxRangeMax}}) {
    std::vector<Idx> Got;
    forEach(BoundedStream<decltype(V.stream())>(V.stream(), Lo, Hi),
            [&](Idx I, double) { Got.push_back(I); });
    std::vector<Idx> Want;
    for (Idx C : V.Crd)
      if (C >= Lo && C < Hi)
        Want.push_back(C);
    EXPECT_EQ(Got, Want) << "range [" << Lo << ", " << Hi << ")";
  }
}

//===----------------------------------------------------------------------===//
// Parallel drivers vs serial oracles
//===----------------------------------------------------------------------===//

/// The chunk-ordered serial fold parallelSumAll must reproduce bit-exactly
/// at every thread count.
template <Semiring K, AnIndexedStream St>
typename K::Value chunkedSerialSum(const St &Q,
                                   const std::vector<IdxRange> &Chunks) {
  typename K::Value Acc = K::zero();
  for (const IdxRange &R : Chunks)
    Acc = K::add(Acc, sumAll<K>(BoundedStream<St>(Q, R.Lo, R.Hi)));
  return Acc;
}

TEST(ParallelSumAll, DeterministicAcrossThreadCounts) {
  Rng R(21);
  const Idx N = 5000;
  auto X = randomSparseVector(R, N, 900);
  auto Y = randomSparseVector(R, N, 1100);
  auto Q = mulStreams<S>(X.stream(), Y.stream());
  for (size_t Chunks : {size_t(1), size_t(7), size_t(64)}) {
    auto Ranges = partitionSparse(X.stream(), Chunks);
    double Want = chunkedSerialSum<S>(Q, Ranges);
    for (unsigned Threads : {1u, 2u, 3u, 8u}) {
      ThreadPool Pool(Threads);
      // Bit-identical: chunk partials fold in chunk order.
      EXPECT_EQ(parallelSumAll<S>(Pool, Q, Ranges), Want)
          << Chunks << " chunks, " << Threads << " threads";
    }
    // And within float tolerance of the flat serial fold (reassociation
    // across chunk boundaries only).
    EXPECT_NEAR(Want, sumAll<S>(Q), 1e-9 * std::abs(Want) + 1e-12);
  }
}

TEST(ParallelSumAll, ExactForIntegerSemiring) {
  // Integer payloads through the I64 semiring: chunked reassociation is
  // exact, so the parallel sum equals the flat serial sum bit-for-bit.
  std::vector<std::array<Idx, 2>> Keys;
  Rng R(22);
  for (uint64_t C : R.sampleDistinctSorted(4000, 300 * 300))
    Keys.push_back({static_cast<Idx>(C / 300), static_cast<Idx>(C % 300)});
  auto T = Trie<2, int64_t>::fromKeysCounting(std::move(Keys));
  using K = I64Semiring;
  int64_t Want = sumAll<K>(T.stream());
  ThreadPool Pool(4);
  for (size_t Chunks : {size_t(1), size_t(5), size_t(32), size_t(1000)}) {
    EXPECT_EQ(parallelSumAll<K>(Pool, T.stream(),
                                partitionSparse(T.stream(), Chunks)),
              Want)
        << Chunks << " chunks";
  }
}

TEST(ParallelSumAll, EmptyStreamAndEmptyChunks) {
  SparseVector<double> Empty(100);
  ThreadPool Pool(4);
  auto Q = Empty.stream();
  EXPECT_EQ(parallelSumAll<S>(Pool, Q, partitionSparse(Q, 8)), 0.0);
  // More chunks than elements: trailing chunks are empty ranges.
  Rng R(23);
  auto V = randomSparseVector(R, 50, 3);
  EXPECT_EQ(parallelSumAll<S>(Pool, V.stream(),
                              partitionSparse(V.stream(), 16)),
            chunkedSerialSum<S>(V.stream(),
                                partitionSparse(V.stream(), 16)));
}

TEST(ParallelEvalStream, BitIdenticalToSerialExhaustive) {
  // Exhaustive small inputs: every support pattern of two 5-dim vectors.
  const Idx N = 5;
  Attr A = Attr::named("par_i");
  ThreadPool Pool(3);
  for (unsigned MX = 0; MX < (1u << N); ++MX) {
    for (unsigned MY = 0; MY < (1u << N); ++MY) {
      SparseVector<double> X(N), Y(N);
      for (Idx I = 0; I < N; ++I) {
        if (MX & (1u << I))
          X.push(I, 1.0 + static_cast<double>(I) / 3.0);
        if (MY & (1u << I))
          Y.push(I, 2.0 - static_cast<double>(I) / 7.0);
      }
      auto Q = mulStreams<S>(X.stream(), Y.stream());
      auto Serial = evalStream<S>(Q, {A});
      for (size_t Chunks : {size_t(1), size_t(3), size_t(8)}) {
        auto Par = parallelEvalStream<S>(Pool, Q, {A},
                                         partitionDense(N, Chunks));
        ASSERT_EQ(Par.entries(), Serial.entries())
            << "supports " << MX << "/" << MY << ", " << Chunks
            << " chunks";
      }
    }
  }
}

TEST(ParallelEvalStream, BitIdenticalOnNestedRandomInput) {
  Rng R(31);
  auto A = randomCsr(R, 200, 150, 3000);
  Attr Ai = Attr::named("par_r"), Aj = Attr::named("par_s");
  auto Serial = evalStream<S>(A.stream(), {Ai, Aj});
  for (unsigned Threads : {1u, 4u}) {
    ThreadPool Pool(Threads);
    for (size_t Chunks : {size_t(1), size_t(6), size_t(64)}) {
      auto Par = parallelEvalStream<S>(
          Pool, A.stream(), {Ai, Aj},
          partitionByPos(A.Pos.data(), A.NumRows, Chunks));
      ASSERT_EQ(Par.entries(), Serial.entries());
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel kernels vs serial kernels
//===----------------------------------------------------------------------===//

TEST(ParallelKernels, SpmvBitIdentical) {
  Rng R(41);
  const Idx N = 500;
  auto A = randomCsr(R, N, N, 20'000);
  auto X = randomDenseVector(R, N);
  DenseVector<double> YSerial(N), YPar(N);
  kernels::spmv(A, X, YSerial);
  for (unsigned Threads : {1u, 4u}) {
    ThreadPool Pool(Threads);
    for (size_t Chunks : {size_t(1), size_t(8), size_t(700)}) {
      YPar.Val.assign(static_cast<size_t>(N), -1.0);
      kernels::spmvParallel(Pool, A, X, YPar, Chunks);
      ASSERT_EQ(YPar.Val, YSerial.Val)
          << Threads << " threads, " << Chunks << " chunks";
    }
  }
}

TEST(ParallelKernels, MttkrpBitIdentical) {
  Rng R(42);
  const Idx NI = 60, NJ = 50, NK = 40;
  const int64_t Rank = 8;
  auto B = randomCsf3(R, NI, NJ, NK, 4000);
  std::vector<double> C(static_cast<size_t>(NJ * Rank)),
      D(static_cast<size_t>(NK * Rank));
  for (auto &V : C)
    V = randomValue(R);
  for (auto &V : D)
    V = randomValue(R);
  std::vector<double> Serial, Par;
  kernels::mttkrp(B, C, D, Rank, Serial);
  ThreadPool Pool(4);
  for (size_t Chunks : {size_t(1), size_t(7), size_t(100)}) {
    kernels::mttkrpParallel(Pool, B, C, D, Rank, Par, Chunks);
    ASSERT_EQ(Par, Serial) << Chunks << " chunks";
  }
}

TEST(ParallelKernels, SmulBitIdentical) {
  Rng R(43);
  const Idx N = 400;
  auto A = randomDcsr(R, N, N, 2000);
  auto B = randomDcsr(R, N, N, 30'000);
  auto Serial = kernels::smul<SearchPolicy::Gallop>(A, B);
  ThreadPool Pool(4);
  for (size_t Chunks : {size_t(1), size_t(6), size_t(64)}) {
    auto Par = kernels::smulParallel<SearchPolicy::Gallop>(Pool, A, B,
                                                           Chunks);
    ASSERT_EQ(Par.RowCrd, Serial.RowCrd) << Chunks << " chunks";
    ASSERT_EQ(Par.Pos, Serial.Pos) << Chunks << " chunks";
    ASSERT_EQ(Par.Crd, Serial.Crd) << Chunks << " chunks";
    ASSERT_EQ(Par.Val, Serial.Val) << Chunks << " chunks";
  }
}

TEST(ParallelKernels, FilteredSpmvBitIdentical) {
  Rng R(44);
  const Idx N = 600;
  auto A = randomCsr(R, N, N, 25'000);
  auto X = randomDenseVector(R, N);
  for (size_t Pass : {size_t(0), size_t(1), size_t(150), size_t(600)}) {
    Rng RP(45);
    auto PassRows = randomSparseVector(RP, N, Pass);
    DenseVector<double> YSerial(N), YPar(N);
    kernels::filteredSpmvFused(A, X, PassRows, YSerial);
    ThreadPool Pool(4);
    for (size_t Chunks : {size_t(1), size_t(8), size_t(64)}) {
      YPar.Val.assign(static_cast<size_t>(N), 0.0);
      kernels::filteredSpmvFusedParallel(Pool, A, X, PassRows, YPar,
                                         Chunks);
      ASSERT_EQ(YPar.Val, YSerial.Val)
          << Pass << " passing rows, " << Chunks << " chunks";
    }
  }
}

TEST(ParallelKernels, TriangleMatchesSerialAndReference) {
  // Worst-case family and random graphs, across chunk/thread shapes.
  for (Idx N : {Idx(1), Idx(64), Idx(1000)}) {
    EdgeList G = triangleWorstCase(N);
    auto P = trianglePrepare(G, G, G);
    int64_t Want = triangleFused(*P);
    EXPECT_EQ(Want, triangleReference(G, G, G));
    for (unsigned Threads : {1u, 4u}) {
      ThreadPool Pool(Threads);
      for (size_t Chunks : {size_t(1), size_t(5), size_t(64)})
        EXPECT_EQ(triangleFusedParallel(Pool, *P, Chunks), Want)
            << "n=" << N << ", " << Threads << "x" << Chunks;
    }
  }
  Rng R(46);
  for (int Round = 0; Round < 4; ++Round) {
    EdgeList Rab = randomEdges(R, 80, 600), Sbc = randomEdges(R, 80, 600),
             Tca = randomEdges(R, 80, 600);
    auto P = trianglePrepare(Rab, Sbc, Tca);
    int64_t Want = triangleFused(*P);
    EXPECT_EQ(Want, triangleReference(Rab, Sbc, Tca));
    ThreadPool Pool(4);
    EXPECT_EQ(triangleFusedParallel(Pool, *P, 16), Want);
  }
}

//===----------------------------------------------------------------------===//
// Saturating skip (overflow regression)
//===----------------------------------------------------------------------===//

TEST(SaturatingSkip, UnboundedRepeatSurvivesAdversarialStrictSkip) {
  auto Rep = repeatUnbounded(2.5);
  // Strict skip at the maximum index must saturate, not wrap negative.
  Rep.skip(std::numeric_limits<Idx>::max(), true);
  EXPECT_FALSE(Rep.valid());

  auto Rep2 = repeatUnbounded(1.0);
  Rep2.skip(std::numeric_limits<Idx>::max() - 1, true);
  EXPECT_FALSE(Rep2.valid()); // max-1 + 1 == max >= 1<<62: exhausted.

  DenseStream<double (*)(Idx)> D(
      100, +[](Idx) { return 1.0; });
  D.skip(std::numeric_limits<Idx>::max(), true);
  EXPECT_FALSE(D.valid());
  DenseStream<double (*)(Idx)> D2(
      100, +[](Idx) { return 1.0; });
  D2.skip(50, true);
  EXPECT_TRUE(D2.valid());
  EXPECT_EQ(D2.index(), 51);
}

} // namespace

//===- tests/imp_vm_test.cpp - The target IR, ops, VM, and C emitter -----===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the compiler's substrate: expression/statement
// construction and printing (Figure 11), the user-extensible operation set
// (Figure 12) including laziness/short-circuit semantics, the VM's memory
// model and failure modes, and the C emitter's rendering.
//
//===----------------------------------------------------------------------===//

#include "compiler/c_emit.h"
#include "compiler/ops.h"
#include "compiler/vm.h"

#include <gtest/gtest.h>

using namespace etch;

namespace {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TEST(Imp, ConstantRendering) {
  EXPECT_EQ(eConstI(42)->toString(), "42");
  EXPECT_EQ(eConstI(-7)->toString(), "-7");
  EXPECT_EQ(eConstF(1.5)->toString(), "1.5");
  EXPECT_EQ(eConstF(2.0)->toString(), "2.0"); // Forced float literal.
  EXPECT_EQ(eBool(true)->toString(), "1");
  EXPECT_EQ(
      eConstF(std::numeric_limits<double>::infinity())->toString(),
      "INFINITY");
}

TEST(Imp, CallRenderingSubstitutesPlaceholders) {
  ERef E = eAddI(eVarI("x"), eConstI(1));
  EXPECT_EQ(E->toString(), "(x + 1)");
  ERef M = eMaxI(eVarI("a"), eVarI("b"));
  EXPECT_EQ(M->toString(), "((a > b) ? a : b)");
  ERef Acc = EExpr::access("arr", ImpType::F64, eVarI("i"));
  EXPECT_EQ(Acc->toString(), "arr[i]");
}

TEST(Imp, ExpressionTypes) {
  EXPECT_EQ(eAddI(eVarI("x"), eConstI(1))->type(), ImpType::I64);
  EXPECT_EQ(eLtI(eVarI("x"), eConstI(1))->type(), ImpType::Bool);
  EXPECT_EQ(eSelect(eBool(true), eConstF(1.0), eConstF(2.0))->type(),
            ImpType::F64);
}

TEST(Imp, SeqFlattensAndDropsNoops) {
  PRef S = PStmt::seq({PStmt::noop(),
                       PStmt::seq2(PStmt::storeVar("x", eConstI(1)),
                                   PStmt::noop()),
                       PStmt::storeVar("y", eConstI(2))});
  ASSERT_EQ(S->kind(), PKind::Seq);
  EXPECT_EQ(S->children().size(), 2u);
}

TEST(Imp, StatementPrinting) {
  PRef P = PStmt::whileLoop(
      eLtI(eVarI("i"), eConstI(3)),
      PStmt::storeVar("i", eAddI(eVarI("i"), eConstI(1))));
  EXPECT_EQ(P->toString(), "while ((i < 3)) {\n  i = (i + 1);\n}\n");
}

//===----------------------------------------------------------------------===//
// Operations
//===----------------------------------------------------------------------===//

TEST(Ops, InterpretersMatchCSemantics) {
  auto Run = [](const OpDef *Op, std::vector<ImpValue> Args) {
    return Op->Spec(Args);
  };
  EXPECT_EQ(std::get<int64_t>(Run(Ops::addI(), {int64_t{2}, int64_t{3}})),
            5);
  EXPECT_EQ(std::get<int64_t>(Run(Ops::divI(), {int64_t{7}, int64_t{2}})),
            3);
  EXPECT_EQ(std::get<int64_t>(Run(Ops::modI(), {int64_t{7}, int64_t{2}})),
            1);
  EXPECT_EQ(std::get<bool>(Run(Ops::leI(), {int64_t{2}, int64_t{2}})),
            true);
  EXPECT_EQ(std::get<double>(Run(Ops::minF(), {3.0, 1.0})), 1.0);
  EXPECT_EQ(std::get<bool>(Run(Ops::notB(), {false})), true);
}

TEST(Ops, CustomOpIsUnprivileged) {
  // The Figure 12 mechanism: a user-defined op with its own C helper.
  auto Sq = makeCustomOp(
      "square", ImpType::I64, {ImpType::I64},
      [](std::span<const ImpValue> A) -> ImpValue {
        int64_t X = std::get<int64_t>(A[0]);
        return X * X;
      },
      "etch_square({0})",
      "static int64_t etch_square(int64_t x) { return x * x; }");
  ERef E = EExpr::call(Sq.get(), {eConstI(9)});
  VmMemory M;
  auto V = vmEval(E, M);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(std::get<int64_t>(*V), 81);
  EXPECT_EQ(E->toString(), "etch_square(9)");
}

TEST(Ops, ScalarAlgebras) {
  EXPECT_EQ(f64Algebra().Ty, ImpType::F64);
  EXPECT_EQ(boolAlgebra().Ty, ImpType::Bool);
  // min-plus: zero is +inf, add is min, mul is +.
  const ScalarAlgebra &MP = minPlusAlgebra();
  VmMemory M;
  auto V = vmEval(MP.add(eConstF(3.0), eConstF(1.0)), M);
  EXPECT_EQ(std::get<double>(*V), 1.0);
  V = vmEval(MP.mul(eConstF(3.0), eConstF(1.0)), M);
  EXPECT_EQ(std::get<double>(*V), 4.0);
}

//===----------------------------------------------------------------------===//
// The VM
//===----------------------------------------------------------------------===//

TEST(Vm, LazyAndProtectsOutOfBounds) {
  // (i < len) && (arr[i] < 5): with i == len the access must not run.
  VmMemory M;
  M.setArrayI64("arr", {1, 2, 3});
  M.setScalar("i", int64_t{3});
  ERef Guarded = eAnd(eLtI(eVarI("i"), eConstI(3)),
                      eLtI(EExpr::access("arr", ImpType::I64, eVarI("i")),
                           eConstI(5)));
  auto V = vmEval(Guarded, M);
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(std::get<bool>(*V));

  // Without the guard the VM reports the bounds violation.
  std::string Err;
  auto Bad =
      vmEval(EExpr::access("arr", ImpType::I64, eVarI("i")), M, &Err);
  EXPECT_FALSE(Bad.has_value());
  EXPECT_NE(Err.find("out-of-bounds"), std::string::npos);
}

TEST(Vm, LazySelectTakesOneBranch) {
  VmMemory M;
  M.setArrayF64("v", {1.5});
  // select(false, v[9], 2.0) must not touch v[9].
  ERef E = eSelect(eBool(false),
                   EExpr::access("v", ImpType::F64, eConstI(9)),
                   eConstF(2.0));
  auto V = vmEval(E, M);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(std::get<double>(*V), 2.0);
}

TEST(Vm, UndefinedNamesAreErrors) {
  VmMemory M;
  std::string Err;
  EXPECT_FALSE(vmEval(eVarI("nope"), M, &Err).has_value());
  EXPECT_NE(Err.find("undefined variable"), std::string::npos);

  auto Status = vmExecute(
      PStmt::storeArr("ghost", eConstI(0), eConstI(1)), M);
  ASSERT_TRUE(Status.has_value());
  EXPECT_NE(Status->find("undefined array"), std::string::npos);
}

TEST(Vm, DeclArrZeroInitialises) {
  VmMemory M;
  auto Status = vmExecute(
      PStmt::declArr("w", ImpType::F64, eConstI(4)), M);
  EXPECT_FALSE(Status.has_value());
  const auto *W = M.getArray("w");
  ASSERT_NE(W, nullptr);
  ASSERT_EQ(W->size(), 4u);
  for (const auto &V : *W)
    EXPECT_EQ(std::get<double>(V), 0.0);
}

TEST(Vm, StepBudgetCatchesNonTermination) {
  VmMemory M;
  PRef Loop = PStmt::seq2(
      PStmt::declVar("i", ImpType::I64, eConstI(0)),
      PStmt::whileLoop(eBool(true), PStmt::storeVar("i", eVarI("i"))));
  auto Status = vmExecute(Loop, M, /*MaxSteps=*/1000);
  ASSERT_TRUE(Status.has_value());
  EXPECT_NE(Status->find("step budget"), std::string::npos);
}

TEST(Vm, BranchAndWhileSemantics) {
  VmMemory M;
  // sum = 0; i = 0; while (i < 10) { if (i % 2 == 0) sum += i; i++ }
  PRef P = PStmt::seq(
      {PStmt::declVar("sum", ImpType::I64, eConstI(0)),
       PStmt::declVar("i", ImpType::I64, eConstI(0)),
       PStmt::whileLoop(
           eLtI(eVarI("i"), eConstI(10)),
           PStmt::seq(
               {PStmt::branch(
                    eEqI(EExpr::call(Ops::modI(),
                                     {eVarI("i"), eConstI(2)}),
                         eConstI(0)),
                    PStmt::storeVar("sum", eAddI(eVarI("sum"), eVarI("i"))),
                    PStmt::noop()),
                PStmt::storeVar("i", eAddI(eVarI("i"), eConstI(1)))}))});
  ASSERT_FALSE(vmExecute(P, M).has_value());
  EXPECT_EQ(std::get<int64_t>(*M.getScalar("sum")), 0 + 2 + 4 + 6 + 8);
}

//===----------------------------------------------------------------------===//
// The C emitter
//===----------------------------------------------------------------------===//

TEST(CEmit, StatementsRenderAsC) {
  PRef P = PStmt::seq(
      {PStmt::declVar("x", ImpType::I64, eConstI(0)),
       PStmt::declArr("buf", ImpType::F64, eConstI(8)),
       PStmt::branch(eLtI(eVarI("x"), eConstI(1)),
                     PStmt::storeArr("buf", eVarI("x"), eConstF(1.0)),
                     PStmt::noop())});
  std::string C = emitCStatements(P, 0);
  EXPECT_NE(C.find("int64_t x = 0;"), std::string::npos);
  EXPECT_NE(C.find("double *buf = calloc"), std::string::npos);
  EXPECT_NE(C.find("if ((x < 1)) {"), std::string::npos);
}

TEST(CEmit, ProgramBakesInputsAndPreludes) {
  auto Twice = makeCustomOp(
      "twice", ImpType::I64, {ImpType::I64},
      [](std::span<const ImpValue> A) -> ImpValue {
        return std::get<int64_t>(A[0]) * 2;
      },
      "etch_twice({0})",
      "static int64_t etch_twice(int64_t x) { return 2 * x; }");
  VmMemory Inputs;
  Inputs.setArrayI64("data", {10, 20});
  PRef Body = PStmt::declVar(
      "out", ImpType::I64,
      EExpr::call(Twice.get(),
                  {EExpr::access("data", ImpType::I64, eConstI(1))}));
  std::string Src = emitCProgram(Body, Inputs, {{"out"}, {}});
  EXPECT_NE(Src.find("static int64_t data[] = {10, 20};"),
            std::string::npos);
  EXPECT_NE(Src.find("static int64_t etch_twice"), std::string::npos);
  EXPECT_NE(Src.find("printf(\"out=%.17g\\n\""), std::string::npos);
}

} // namespace

//===- tests/planner_oracle_test.cpp - Plans vs the K-relation oracle -----===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The planner's end-to-end soundness argument: every order the enumerator
// emits for a generated contraction must compute the same result as the
// denotational oracle. Each fuzz case is statted, extracted into planning
// form, and every enumerated plan's attribute order is realized as a fuzz
// universe permutation; the permuted case then runs the full differential
// executor matrix (oracle vs streams vs VM), and its oracle total must
// match the original case's total.
//
//===----------------------------------------------------------------------===//

#include "fuzz/gen.h"
#include "fuzz/reorder.h"
#include "planner/plan.h"
#include "support/assert.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

namespace etch {
namespace {

std::vector<LevelSpec::Kind> kindsOf(FuzzFormat F) {
  switch (F) {
  case FuzzFormat::SparseVec:
    return {LevelSpec::Compressed};
  case FuzzFormat::DenseVec:
    return {LevelSpec::Dense};
  case FuzzFormat::Csr:
    return {LevelSpec::Dense, LevelSpec::Compressed};
  case FuzzFormat::Dcsr:
    return {LevelSpec::Compressed, LevelSpec::Compressed};
  case FuzzFormat::Csf3:
    return {LevelSpec::Compressed, LevelSpec::Compressed,
            LevelSpec::Compressed};
  }
  ETCH_UNREACHABLE("unknown fuzz format");
}

/// Per-tensor statistics straight from a fuzz tensor's entry list.
std::map<std::string, TensorStats> statsOf(const FuzzCase &C) {
  std::map<std::string, TensorStats> Stats;
  for (const FuzzTensor &T : C.Tensors) {
    std::vector<int64_t> Extents;
    for (Attr A : T.Shp)
      Extents.push_back(C.dimOf(A));
    std::vector<Tuple> Tuples;
    Tuples.reserve(T.Entries.size());
    for (const FuzzEntry &E : T.Entries)
      Tuples.push_back(E.Coords);
    TensorStats S =
        statsFromTuples(T.Name, T.Shp, kindsOf(T.Fmt), Extents, Tuples);
    S.CanTranspose = T.Shp.size() == 2;
    Stats.emplace(T.Name, std::move(S));
  }
  return Stats;
}

/// Maps a plan's attribute order onto a full fuzz-universe permutation:
/// the planned attributes first, in plan order, then every remaining
/// universe attribute ascending. Attributes absent from the query either
/// do not occur in the case at all or only feed renames; if their forced
/// placement breaks rename monotonicity the induced order is *illegal*
/// (fuzzReorder rejects it) — a mapping artifact, not a planner bug.
FuzzPerm permOf(const Plan &P) {
  const auto &U = fuzzAttrUniverse();
  FuzzPerm Perm;
  std::set<int> Placed;
  for (Attr A : P.Order)
    for (size_t I = 0; I < U.size(); ++I)
      if (U[I].id() == A.id()) {
        Perm.push_back(static_cast<int>(I));
        Placed.insert(static_cast<int>(I));
      }
  for (size_t I = 0; I < U.size(); ++I)
    if (!Placed.count(static_cast<int>(I)))
      Perm.push_back(static_cast<int>(I));
  return Perm;
}

bool totalsAgree(const FuzzCase &C, const FuzzTotal &A, const FuzzTotal &B) {
  if (C.SemiringName == "f64") {
    double Scale = std::max({1.0, std::fabs(A.Num), std::fabs(B.Num)});
    return std::fabs(A.Num - B.Num) <= 1e-9 * Scale;
  }
  return A.Text == B.Text;
}

TEST(PlannerOracle, EveryEnumeratedPlanAgreesWithOracle) {
  GenOptions GO;
  GO.HugeProb = 0.0; // Huge extents cost runtime, not planner coverage.
  size_t Planned = 0, PlansRun = 0;
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    FuzzCase C = genCase(Seed, GO);
    auto Base = fuzzOracleTotal(C);
    ASSERT_TRUE(Base) << "generator produced an invalid case, seed " << Seed;

    std::map<uint32_t, int64_t> Dims;
    for (const auto &[A, N] : C.Dims)
      Dims.emplace(A.id(), N);
    std::string Err;
    auto Q = extractQuery(C.E, C.types(), statsOf(C), Dims, &Err);
    if (!Q)
      continue; // Outside the plannable fragment (e.g. Σ under ·).
    ++Planned;

    std::vector<Plan> Plans = enumeratePlans(*Q);
    ASSERT_FALSE(Plans.empty()) << "seed " << Seed;
    bool RanOne = false;
    for (const Plan &P : Plans) {
      auto RC = fuzzReorder(C, permOf(P), &Err);
      if (!RC)
        continue; // Induced universe order illegal for the raw case.
      RanOne = true;
      ++PlansRun;
      auto Tot = fuzzOracleTotal(*RC);
      ASSERT_TRUE(Tot) << "seed " << Seed;
      EXPECT_TRUE(totalsAgree(C, *Base, *Tot))
          << "seed " << Seed << ": plan order changed the oracle total: "
          << Base->Text << " vs " << Tot->Text;
      FuzzReport Rep = runFuzzCase(*RC);
      EXPECT_TRUE(Rep.ok())
          << "seed " << Seed << " diverged under a planned order:\n"
          << Rep.toString();
    }
    EXPECT_TRUE(RanOne) << "seed " << Seed
                        << ": no enumerated plan was realizable as a "
                           "universe order";
  }
  // The sweep must exercise real volume, or the loop is vacuously green.
  EXPECT_GE(Planned, 10u);
  EXPECT_GE(PlansRun, 40u);
}

} // namespace
} // namespace etch

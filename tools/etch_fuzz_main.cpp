//===- tools/etch_fuzz_main.cpp - Differential fuzzing driver -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `etch-fuzz` command line tool:
///
///   etch-fuzz --seeds 1000                 # run seeds 0..999
///   etch-fuzz --start 5000 --seeds 200     # a different seed window
///   etch-fuzz --time-budget 120            # stop after ~2 minutes
///   etch-fuzz --corpus tests/corpus        # write shrunken repros there
///   etch-fuzz --replay tests/corpus        # re-run saved cases (file/dir)
///   etch-fuzz --orders 6                   # sweep legal attribute orders
///   etch-fuzz --delta --seeds 500          # incremental-maintenance legs
///   etch-fuzz --no-shrink --verbose
///
/// Exit status is nonzero iff any case diverged (after shrinking) or any
/// replayed case failed — suitable for CI.
///
//===----------------------------------------------------------------------===//

#include "compiler/jit.h"
#include "fuzz/corpus.h"
#include "fuzz/exec.h"
#include "fuzz/gen.h"
#include "fuzz/reorder.h"
#include "fuzz/shrink.h"
#include "ivm/deltafuzz.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace etch;

namespace {

struct Options {
  uint64_t Seeds = 1000;
  uint64_t Start = 0;
  double TimeBudget = 0; // seconds; 0 = unlimited
  std::string CorpusDir;
  std::string ReplayPath;
  bool NoShrink = false;
  bool Verbose = false;
  bool Formats = false; // also run the level-format cross-check matrix
  bool Delta = false;   // the incremental-maintenance legs instead
  bool Tiles = false;   // also run the dense-tail tiling cross-check
  double HugeProb = 0.10;
  size_t Orders = 1; // legal attribute orders per case; 1 = original only
  VmBackend Backend = VmBackend::Both;
  std::string JitCacheDir; // --jit-cache-dir (native backend)
};

/// Exit status for "the native backend cannot run here" (no system C
/// compiler) — the automake SKIP convention, distinct from pass (0) and
/// divergence (1) so CI can tell a skip from a green run.
constexpr int ExitSkip = 77;

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds N] [--start S] [--time-budget SEC]\n"
      "          [--corpus DIR] [--replay FILE|DIR] [--no-shrink]\n"
      "          [--orders N] [--huge-prob P] [--formats] [--delta]\n"
      "          [--tiles] [--verbose]\n"
      "          [--backend tree|bytecode|both|native]\n"
      "          [--jit-cache-dir DIR]\n",
      Argv0);
  std::exit(2);
}

Options parseArgs(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (A == "--seeds")
      O.Seeds = std::strtoull(Next(), nullptr, 10);
    else if (A == "--start")
      O.Start = std::strtoull(Next(), nullptr, 10);
    else if (A == "--time-budget")
      O.TimeBudget = std::strtod(Next(), nullptr);
    else if (A == "--corpus")
      O.CorpusDir = Next();
    else if (A == "--replay")
      O.ReplayPath = Next();
    else if (A == "--no-shrink")
      O.NoShrink = true;
    else if (A == "--formats")
      O.Formats = true;
    else if (A == "--delta")
      O.Delta = true;
    else if (A == "--tiles")
      O.Tiles = true;
    else if (A == "--verbose")
      O.Verbose = true;
    else if (A == "--huge-prob")
      O.HugeProb = std::strtod(Next(), nullptr);
    else if (A == "--orders")
      O.Orders = std::strtoull(Next(), nullptr, 10);
    else if (A == "--backend") {
      std::string B = Next();
      if (B == "tree")
        O.Backend = VmBackend::Tree;
      else if (B == "bytecode")
        O.Backend = VmBackend::Bytecode;
      else if (B == "both")
        O.Backend = VmBackend::Both;
      else if (B == "native")
        O.Backend = VmBackend::Native;
      else
        usage(Argv[0]);
    } else if (A == "--jit-cache-dir")
      O.JitCacheDir = Next();
    else
      usage(Argv[0]);
  }
  return O;
}

/// The executor matrix, plus the level-format matrix under --formats and
/// the dense-tail tiling matrix under --tiles (their divergences are
/// appended, so shrinking and repro comments see them all).
/// Under --delta the per-case matrix is the delta-rewrite identity check
/// instead (ivm/deltafuzz.h); the batch seed derives from the case itself,
/// so generation, shrinking, and corpus replay all rebuild the same batch.
FuzzReport runMatrix(const FuzzCase &C, const Options &O) {
  if (O.Delta)
    return runFuzzDelta(C, fuzzDeltaBatchSeed(C));
  FuzzReport Rep = runFuzzCase(C, O.Backend);
  if (O.Formats && !Rep.Invalid) {
    FuzzReport FRep = runFuzzFormats(C, O.Backend);
    Rep.Divs.insert(Rep.Divs.end(), FRep.Divs.begin(), FRep.Divs.end());
  }
  if (O.Tiles && !Rep.Invalid) {
    FuzzReport TRep = runFuzzTiles(C);
    Rep.Divs.insert(Rep.Divs.end(), TRep.Divs.begin(), TRep.Divs.end());
  }
  return Rep;
}

/// The legs a report diverged on, comma-joined (for the repro comment).
std::string legList(const FuzzReport &Rep) {
  std::string Out;
  for (const FuzzDivergence &D : Rep.Divs) {
    if (!Out.empty())
      Out += ", ";
    Out += D.Leg;
  }
  return Out;
}

int replay(const Options &O) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  if (fs::is_directory(O.ReplayPath)) {
    for (const auto &Ent : fs::directory_iterator(O.ReplayPath))
      if (Ent.is_regular_file() && Ent.path().extension() == ".txt")
        Files.push_back(Ent.path().string());
    std::sort(Files.begin(), Files.end());
  } else {
    Files.push_back(O.ReplayPath);
  }
  if (Files.empty()) {
    std::fprintf(stderr, "etch-fuzz: no .txt cases under %s\n",
                 O.ReplayPath.c_str());
    return 2;
  }
  int Bad = 0;
  for (const std::string &F : Files) {
    std::string Err;
    auto C = readCaseFile(F, &Err);
    if (!C) {
      std::fprintf(stderr, "%s: parse error: %s\n", F.c_str(), Err.c_str());
      ++Bad;
      continue;
    }
    FuzzReport Rep = runMatrix(*C, O);
    if (Rep.ok()) {
      // A clean matrix run still has to agree under alternative attribute
      // orders, so harvested cases guard regressions regardless of which
      // permutation originally triggered them.
      if (O.Orders > 1) {
        FuzzOrderReport ORep = runFuzzCaseOrders(*C, O.Orders, O.Backend);
        if (ORep.failing()) {
          ++Bad;
          std::printf("%s: order sweep: %s\n", F.c_str(),
                      ORep.toString().c_str());
          continue;
        }
      }
      if (O.Verbose)
        std::printf("%s: ok (%s)\n", F.c_str(), C->summary().c_str());
      continue;
    }
    ++Bad;
    std::printf("%s: %s\n", F.c_str(), Rep.toString().c_str());
  }
  std::printf("replayed %zu case(s), %d failing\n", Files.size(), Bad);
  return Bad ? 1 : 0;
}

int fuzz(const Options &O) {
  using Clock = std::chrono::steady_clock;
  auto Began = Clock::now();
  auto Elapsed = [&]() {
    return std::chrono::duration<double>(Clock::now() - Began).count();
  };

  GenOptions GO;
  GO.HugeProb = O.HugeProb;

  uint64_t Ran = 0, Diverged = 0;
  for (uint64_t Seed = O.Start; Seed < O.Start + O.Seeds; ++Seed) {
    if (O.TimeBudget > 0 && Elapsed() > O.TimeBudget) {
      std::printf("time budget reached after %llu seed(s)\n",
                  static_cast<unsigned long long>(Ran));
      break;
    }
    FuzzCase C = genCase(Seed, GO);
    FuzzReport Rep = runMatrix(C, O);
    ++Ran;
    if (O.Delta) {
      // The serve-stack scenario is seeded independently of the case; its
      // failures are reported directly (there is no FuzzCase to shrink).
      FuzzReport DRep = runFuzzDeltaDriver(Seed, O.Backend, O.JitCacheDir);
      if (DRep.failing()) {
        ++Diverged;
        std::printf("seed %llu: driver scenario: %s\n",
                    static_cast<unsigned long long>(Seed),
                    DRep.toString().c_str());
      }
    }
    if (O.Verbose && Ran % 100 == 0)
      std::printf("... %llu seeds, %llu divergence(s), %.1fs\n",
                  static_cast<unsigned long long>(Ran),
                  static_cast<unsigned long long>(Diverged), Elapsed());
    if (Rep.Invalid) {
      // The generator asserts validity, so this is itself a bug.
      std::printf("seed %llu: generator produced an invalid case: %s\n",
                  static_cast<unsigned long long>(Seed),
                  Rep.ValidationError.c_str());
      ++Diverged;
      continue;
    }
    bool MatrixFail = Rep.failing();
    FuzzOrderReport ORep;
    if (!MatrixFail) {
      if (O.Orders > 1)
        ORep = runFuzzCaseOrders(C, O.Orders, O.Backend);
      if (!ORep.failing())
        continue;
    }
    ++Diverged;
    if (MatrixFail)
      std::printf("seed %llu: %s\n", static_cast<unsigned long long>(Seed),
                  Rep.toString().c_str());
    else
      std::printf("seed %llu: order sweep: %s\n",
                  static_cast<unsigned long long>(Seed),
                  ORep.toString().c_str());
    // A matrix divergence shrinks under the plain matrix; an order-only
    // divergence must keep failing the sweep, or shrinking loses the bug.
    auto StillFails = [&O, MatrixFail](const FuzzCase &Cand) {
      return MatrixFail ? runMatrix(Cand, O).failing()
                        : runFuzzCaseOrders(Cand, O.Orders, O.Backend).failing();
    };
    FuzzCase Min = C;
    if (!O.NoShrink) {
      Min = shrinkCase(C, StillFails);
      std::printf("seed %llu: shrunk %zu -> %zu\n",
                  static_cast<unsigned long long>(Seed), fuzzCaseSize(C),
                  fuzzCaseSize(Min));
    }
    std::string Comment = "seed " + std::to_string(Seed);
    if (MatrixFail)
      Comment += "; diverging legs: " + legList(runMatrix(Min, O));
    else
      Comment += "; diverges under an attribute-order sweep (--orders)";
    if (!O.CorpusDir.empty()) {
      std::filesystem::create_directories(O.CorpusDir);
      std::string Path =
          O.CorpusDir + "/fuzz-seed-" + std::to_string(Seed) + ".txt";
      if (writeCaseFile(Path, Min, Comment))
        std::printf("seed %llu: wrote %s\n",
                    static_cast<unsigned long long>(Seed), Path.c_str());
      else
        std::fprintf(stderr, "etch-fuzz: cannot write %s\n", Path.c_str());
    } else {
      std::printf("--- repro ---\n%s-------------\n",
                  serializeCase(Min, Comment).c_str());
    }
  }
  std::printf("ran %llu seed(s): %llu divergence(s), %.1fs\n",
              static_cast<unsigned long long>(Ran),
              static_cast<unsigned long long>(Diverged), Elapsed());
  return Diverged ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseArgs(Argc, Argv);
  if (O.Backend == VmBackend::Native || O.Tiles) {
    // The executor matrix resolves its cache dir through the environment.
    if (!O.JitCacheDir.empty())
      setenv("ETCH_JIT_CACHE", O.JitCacheDir.c_str(), 1);
    const JitToolchain &Tc = jitToolchain();
    if (!Tc.Available) {
      // A skip, loudly logged — NOT a pass: the native legs did not run.
      std::fprintf(stderr,
                   "etch-fuzz: SKIP --backend native: no usable system C "
                   "compiler (%s)\n",
                   Tc.Diag.c_str());
      return ExitSkip;
    }
    std::fprintf(stderr, "etch-fuzz: native backend via %s (%s)\n",
                 Tc.Cmd.c_str(), Tc.VersionLine.c_str());
  }
  if (!O.ReplayPath.empty())
    return replay(O);
  return fuzz(O);
}

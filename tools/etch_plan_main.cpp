//===- tools/etch_plan_main.cpp - EXPLAIN for contraction plans -----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `etch-plan` command line tool: builds a demo contraction over
/// randomly generated inputs, runs the cost-based planner, and prints the
/// ranked orders plus the full EXPLAIN report of the winner.
///
///   etch-plan --demo matmul [--n N] [--nnz NNZ] [--seed S]
///   etch-plan --demo triangle [--n N] [--edges E] [--seed S] [--worst-case]
///   etch-plan --demo matmul --all        # EXPLAIN every enumerated plan
///   etch-plan --demo matmul --execute --backend native
///                                        # run the winning plan
///
/// `--execute` realizes the winning plan, binds the demo data (transposed
/// where the plan says so), compiles it, and runs it on the chosen
/// executor: the tree VM, the bytecode VM, or the JIT-to-native backend.
/// The native backend goes through nativeRunWithFallback — a machine
/// without a C compiler still executes (bytecode, with a warning) — and
/// runs the kernel twice to show the content-addressed cache at work,
/// reporting the jit cache counters.
///
/// Exit status is nonzero on planner failure — the CI smoke invocation
/// relies on this.
///
//===----------------------------------------------------------------------===//

#include "compiler/bytecode.h"
#include "compiler/jit.h"
#include "formats/random.h"
#include "planner/plan.h"
#include "planner/realize.h"
#include "relational/joinplan.h"
#include "support/timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace etch;

namespace {

struct Options {
  std::string Demo = "matmul";
  int64_t N = 1000;
  int64_t Nnz = 20'000;
  int64_t Edges = 4000;
  uint64_t Seed = 11;
  bool WorstCase = false;
  bool All = false;
  bool Execute = false;
  std::string Backend = "tree";
};

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --demo matmul|triangle [--n N] [--nnz NNZ]\n"
               "          [--edges E] [--seed S] [--worst-case] [--all]\n"
               "          [--execute [--backend tree|bytecode|native]]\n",
               Argv0);
  std::exit(2);
}

Options parseArgs(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (A == "--demo")
      O.Demo = Next();
    else if (A == "--n")
      O.N = std::strtoll(Next(), nullptr, 10);
    else if (A == "--nnz")
      O.Nnz = std::strtoll(Next(), nullptr, 10);
    else if (A == "--edges")
      O.Edges = std::strtoll(Next(), nullptr, 10);
    else if (A == "--seed")
      O.Seed = std::strtoull(Next(), nullptr, 10);
    else if (A == "--worst-case")
      O.WorstCase = true;
    else if (A == "--all")
      O.All = true;
    else if (A == "--execute")
      O.Execute = true;
    else if (A == "--backend")
      O.Backend = Next();
    else
      usage(Argv[0]);
  }
  if (O.N < 1 || O.Nnz < 0 || O.Edges < 0)
    usage(Argv[0]);
  if (O.Backend != "tree" && O.Backend != "bytecode" && O.Backend != "native")
    usage(Argv[0]);
  return O;
}

void printRanking(const std::vector<Plan> &Plans, const PlanQuery &Q,
                  bool All) {
  std::printf("%zu realizable order(s), best first:\n", Plans.size());
  for (size_t I = 0; I < Plans.size(); ++I) {
    const Plan &P = Plans[I];
    std::string Order;
    for (Attr A : P.Order) {
      if (!Order.empty())
        Order += " < ";
      Order += A.name();
    }
    int Transposed = 0;
    for (const PlanAccess &Acc : P.Accesses)
      Transposed += Acc.Transposed;
    std::printf("  %zu. %-30s cost %.3g  (%d transpose%s)\n", I + 1,
                Order.c_str(), P.cost(), Transposed,
                Transposed == 1 ? "" : "s");
  }
  std::puts("");
  for (size_t I = 0; I < (All ? Plans.size() : size_t(1)); ++I) {
    if (All)
      std::printf("--- plan %zu ---\n", I + 1);
    std::fputs(Plans[I].explain(Q).c_str(), stdout);
    std::puts("");
  }
}

/// Realizes and runs the winning matmul plan on the requested backend.
/// The planner's EXPLAIN already chose the attribute order and the
/// storage orientation of each access; here the choice becomes a wall
/// clock number.
int executeMatmulPlan(const Plan &P, const PlanQuery &Q,
                      const CsrMatrix<double> &A, const CsrMatrix<double> &B,
                      const Options &O) {
  RealizedPlan RP = realizePlan(Q, P, "ep_exec");
  LowerCtx Ctx;
  installPlan(Ctx, RP);
  auto Bind = [&](VmMemory &M) {
    for (const PlanAccess &Acc : RP.Accesses) {
      const CsrMatrix<double> &Src = Acc.Tensor == "A" ? A : B;
      if (Acc.Transposed)
        bindCsr(M, Acc.bindName(), transpose(Src));
      else
        bindCsr(M, Acc.bindName(), Src);
    }
  };
  PRef Prog = compileFullContraction(Ctx, RP.E, "out");

  auto RunOnce = [&](VmMemory &M, VmRunResult &R) {
    Timer T;
    if (O.Backend == "tree")
      R = vmRun(Prog, M);
    else if (O.Backend == "bytecode")
      R = bytecodeCompileAndRun(Prog, M);
    else
      R = nativeRunWithFallback(Prog, M);
    return T.seconds();
  };

  VmMemory M;
  Bind(M);
  VmRunResult R;
  double Sec = RunOnce(M, R);
  if (R.Error) {
    std::fprintf(stderr, "etch-plan: execution failed: %s\n",
                 R.Error->c_str());
    return 1;
  }
  std::printf("executed winner on the %s backend: out = %.17g   "
              "(%lld steps, %.3f ms)\n",
              O.Backend.c_str(), std::get<double>(*M.getScalar("out")),
              static_cast<long long>(R.Steps), Sec * 1e3);
  if (O.Backend == "native") {
    // A second execution of the same plan: the content-addressed cache
    // serves the kernel without touching the C compiler again.
    VmMemory M2;
    Bind(M2);
    VmRunResult R2;
    double Sec2 = RunOnce(M2, R2);
    if (R2.Error) {
      std::fprintf(stderr, "etch-plan: re-execution failed: %s\n",
                   R2.Error->c_str());
      return 1;
    }
    std::printf("re-executed (cached kernel): %.3f ms\n", Sec2 * 1e3);
    JitCacheStats St = jitCacheStats();
    std::printf("jit cache: %llu compile(s), %llu in-process hit(s), "
                "%llu disk hit(s), %llu recompile(s)\n",
                static_cast<unsigned long long>(St.Compiles),
                static_cast<unsigned long long>(St.MemHits),
                static_cast<unsigned long long>(St.DiskHits),
                static_cast<unsigned long long>(St.Recompiles));
  }
  return 0;
}

int demoMatmul(const Options &O) {
  std::printf("=== matmul demo: sum_j A(i,j) * B(j,k), n = %lld, "
              "nnz = %lld ===\n\n",
              static_cast<long long>(O.N), static_cast<long long>(O.Nnz));
  Rng R(O.Seed);
  Idx N = static_cast<Idx>(O.N);
  size_t Nnz = static_cast<size_t>(O.Nnz);
  auto A = randomCsr(R, N, N, Nnz);
  auto B = randomCsr(R, N, N, Nnz);

  Attr I = Attr::named("i"), J = Attr::named("j"), K = Attr::named("k");
  TypeContext Ctx;
  Ctx["A"] = Shape{I, J};
  Ctx["B"] = Shape{J, K};
  ExprPtr E = Expr::sum(J, mulExpand(Expr::var("A"), Expr::var("B"), Ctx));
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, I, J);
  Stats["B"] = statsOfCsr("B", B, J, K);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  if (!Q) {
    std::fprintf(stderr, "etch-plan: extraction failed: %s\n", Err.c_str());
    return 1;
  }
  std::vector<Plan> Plans = enumeratePlans(*Q);
  if (Plans.empty()) {
    std::fprintf(stderr, "etch-plan: no realizable order\n");
    return 1;
  }
  printRanking(Plans, *Q, O.All);
  if (O.Execute)
    return executeMatmulPlan(Plans[0], *Q, A, B, O);
  return 0;
}

int demoTriangle(const Options &O) {
  std::printf("=== triangle demo: sum_{a,b,c} R(a,b) * S(b,c) * T(c,a), "
              "n = %lld%s ===\n\n",
              static_cast<long long>(O.N),
              O.WorstCase ? ", worst-case family"
                          : (", " + std::to_string(O.Edges) +
                             " random edges each")
                                .c_str());
  EdgeList Ra, Sb, Tc;
  if (O.WorstCase) {
    Ra = Sb = Tc = triangleWorstCase(static_cast<Idx>(O.N));
  } else {
    Rng R(O.Seed);
    Ra = randomEdges(R, static_cast<Idx>(O.N), static_cast<size_t>(O.Edges));
    Sb = randomEdges(R, static_cast<Idx>(O.N), static_cast<size_t>(O.Edges));
    Tc = randomEdges(R, static_cast<Idx>(O.N), static_cast<size_t>(O.Edges));
  }
  TriangleJoinPlan JP;
  int64_t Count = triangleFusedPlanned(Ra, Sb, Tc, &JP);
  const char Names[] = {'a', 'b', 'c'};
  std::printf("planner order: %c < %c < %c   (estimated cost %.3g)\n\n",
              Names[JP.VarOrder[0]], Names[JP.VarOrder[1]],
              Names[JP.VarOrder[2]], JP.Cost);
  std::fputs(JP.Explain.c_str(), stdout);
  std::printf("\ntriangle count under the planned order: %lld\n",
              static_cast<long long>(Count));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseArgs(Argc, Argv);
  if (O.Execute && O.Demo != "matmul") {
    std::fprintf(stderr, "etch-plan: --execute supports the matmul demo "
                         "only\n");
    return 2;
  }
  if (O.Demo == "matmul")
    return demoMatmul(O);
  if (O.Demo == "triangle")
    return demoTriangle(O);
  usage(Argv[0]);
}

//===- core/semiring.h - Semiring scalar structures ------------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semirings (Definition 4.5). A semiring `K` supplies `(+, 0)` as a
/// commutative monoid, `(*, 1)` as a monoid, distributivity, and the
/// absorption law `0 * x = 0`. Contraction expressions are parameterised by
/// the semiring: ordinary arithmetic gives tensors, booleans give relations,
/// (min, +) gives shortest paths, and counting gives bags. Everything in the
/// repository that combines values goes through one of these trait structs,
/// so swapping the scalar algebra never touches iteration code.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_CORE_SEMIRING_H
#define ETCH_CORE_SEMIRING_H

#include <concepts>
#include <cstdint>
#include <limits>
#include <string>

namespace etch {

/// The interface every semiring trait struct satisfies.
template <typename S>
concept Semiring = requires(typename S::Value A, typename S::Value B) {
  typename S::Value;
  { S::zero() } -> std::same_as<typename S::Value>;
  { S::one() } -> std::same_as<typename S::Value>;
  { S::add(A, B) } -> std::same_as<typename S::Value>;
  { S::mul(A, B) } -> std::same_as<typename S::Value>;
  { S::isZero(A) } -> std::same_as<bool>;
};

/// Real arithmetic over double: the scalar algebra of sparse tensor algebra.
struct F64Semiring {
  using Value = double;
  static Value zero() { return 0.0; }
  static Value one() { return 1.0; }
  static Value add(Value A, Value B) { return A + B; }
  static Value mul(Value A, Value B) { return A * B; }
  static bool isZero(Value A) { return A == 0.0; }
  static std::string name() { return "f64"; }
};

/// Integer arithmetic: multisets / bags (a function I_S -> N counts
/// multiplicities).
struct I64Semiring {
  using Value = int64_t;
  static Value zero() { return 0; }
  static Value one() { return 1; }
  static Value add(Value A, Value B) { return A + B; }
  static Value mul(Value A, Value B) { return A * B; }
  static bool isZero(Value A) { return A == 0; }
  static std::string name() { return "i64"; }
};

/// Booleans with (or, and): classical relations. A relation is an indicator
/// function on a Cartesian product of index sets (Section 4.3).
struct BoolSemiring {
  using Value = bool;
  static Value zero() { return false; }
  static Value one() { return true; }
  static Value add(Value A, Value B) { return A || B; }
  static Value mul(Value A, Value B) { return A && B; }
  static bool isZero(Value A) { return !A; }
  static std::string name() { return "bool"; }
};

/// The tropical (min, +) semiring over double, used by the paper's
/// evaluation for shortest-path style aggregates. Zero is +infinity.
struct MinPlusSemiring {
  using Value = double;
  static Value zero() { return std::numeric_limits<double>::infinity(); }
  static Value one() { return 0.0; }
  static Value add(Value A, Value B) { return A < B ? A : B; }
  static Value mul(Value A, Value B) { return A + B; }
  static bool isZero(Value A) {
    return A == std::numeric_limits<double>::infinity();
  }
  static std::string name() { return "minplus"; }
};

/// (max, *) over non-negative doubles: Viterbi-style most-probable-path.
struct MaxTimesSemiring {
  using Value = double;
  static Value zero() { return 0.0; }
  static Value one() { return 1.0; }
  static Value add(Value A, Value B) { return A > B ? A : B; }
  static Value mul(Value A, Value B) { return A * B; }
  static bool isZero(Value A) { return A == 0.0; }
  static std::string name() { return "maxtimes"; }
};

static_assert(Semiring<F64Semiring>);
static_assert(Semiring<I64Semiring>);
static_assert(Semiring<BoolSemiring>);
static_assert(Semiring<MinPlusSemiring>);
static_assert(Semiring<MaxTimesSemiring>);

} // namespace etch

#endif // ETCH_CORE_SEMIRING_H

//===- core/attr.h - Attributes, shapes, and the global order --*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes (Definition 4.2 of the paper) are unique names for the
/// dimensions of tensors / columns of relations. A *shape* is a set of
/// attributes. The stream algebra (Section 5.2) additionally requires a
/// total order on attributes; we use the interning order (the order in
/// which `Attr::named` first sees each name), which callers control by
/// registering attributes in their preferred hierarchy order. Helpers for
/// sorted-set operations on shapes live here too.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_CORE_ATTR_H
#define ETCH_CORE_ATTR_H

#include <cstdint>
#include <string>
#include <vector>

namespace etch {

/// An interned attribute name. Attributes compare by their interning order,
/// which doubles as the global attribute order of the stream algebra.
class Attr {
public:
  Attr() : Id(~0u) {}

  /// Interns \p Name and returns its attribute. Repeated calls with the same
  /// name return the same attribute.
  static Attr named(const std::string &Name);

  /// Returns the attribute's name.
  const std::string &name() const;

  /// Returns the interning index (position in the global order).
  uint32_t id() const { return Id; }

  bool valid() const { return Id != ~0u; }

  friend bool operator==(Attr A, Attr B) { return A.Id == B.Id; }
  friend bool operator!=(Attr A, Attr B) { return A.Id != B.Id; }
  friend bool operator<(Attr A, Attr B) { return A.Id < B.Id; }
  friend bool operator<=(Attr A, Attr B) { return A.Id <= B.Id; }

private:
  explicit Attr(uint32_t Id) : Id(Id) {}
  uint32_t Id;
};

/// A shape: a set of attributes kept sorted by the global order.
using Shape = std::vector<Attr>;

/// Returns a sorted, duplicate-free shape from \p Attrs.
Shape makeShape(std::vector<Attr> Attrs);

/// Returns true if sorted \p S contains \p A.
bool shapeContains(const Shape &S, Attr A);

/// Returns the union of two sorted shapes.
Shape shapeUnion(const Shape &A, const Shape &B);

/// Returns the intersection of two sorted shapes.
Shape shapeIntersect(const Shape &A, const Shape &B);

/// Returns A \ B for sorted shapes.
Shape shapeMinus(const Shape &A, const Shape &B);

/// Returns the position of \p A within sorted \p S, or -1 if absent.
int shapeIndexOf(const Shape &S, Attr A);

/// Returns #(a, S): the number of attributes in \p S strictly before \p A in
/// the global order (Definition 5.8). This is the nesting depth at which the
/// `map^k` operators insert or contract \p A.
int attrsBefore(const Shape &S, Attr A);

/// Renders "{a, b, c}" for diagnostics.
std::string shapeToString(const Shape &S);

} // namespace etch

#endif // ETCH_CORE_ATTR_H

//===- core/expr.cpp - The contraction expression language L -------------===//

#include "core/expr.h"

#include "support/assert.h"

#include <algorithm>

using namespace etch;

ExprPtr Expr::var(std::string Name) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Var;
  E->VarName = std::move(Name);
  return E;
}

ExprPtr Expr::add(ExprPtr A, ExprPtr B) {
  ETCH_ASSERT(A && B, "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Add;
  E->Lhs = std::move(A);
  E->Rhs = std::move(B);
  return E;
}

ExprPtr Expr::mul(ExprPtr A, ExprPtr B) {
  ETCH_ASSERT(A && B, "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Mul;
  E->Lhs = std::move(A);
  E->Rhs = std::move(B);
  return E;
}

ExprPtr Expr::sum(Attr A, ExprPtr Child) {
  ETCH_ASSERT(Child, "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Sum;
  E->BoundAttr = A;
  E->Lhs = std::move(Child);
  return E;
}

ExprPtr Expr::expand(Attr A, ExprPtr Child) {
  ETCH_ASSERT(Child, "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Expand;
  E->BoundAttr = A;
  E->Lhs = std::move(Child);
  return E;
}

ExprPtr Expr::rename(std::vector<std::pair<Attr, Attr>> Mapping,
                     ExprPtr Child) {
  ETCH_ASSERT(Child, "null operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Rename;
  E->Mapping = std::move(Mapping);
  E->Lhs = std::move(Child);
  return E;
}

std::string Expr::toString() const {
  switch (Kind) {
  case ExprKind::Var:
    return VarName;
  case ExprKind::Add:
    return "(" + Lhs->toString() + " + " + Rhs->toString() + ")";
  case ExprKind::Mul:
    return "(" + Lhs->toString() + " * " + Rhs->toString() + ")";
  case ExprKind::Sum:
    return "sum_" + BoundAttr.name() + " " + Lhs->toString();
  case ExprKind::Expand:
    return "up_" + BoundAttr.name() + " " + Lhs->toString();
  case ExprKind::Rename: {
    std::string Out = "rename[";
    for (size_t I = 0; I < Mapping.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Mapping[I].first.name() + ":=" + Mapping[I].second.name();
    }
    return Out + "] " + Lhs->toString();
  }
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

static void setErr(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
}

std::optional<Shape> etch::inferShape(const ExprPtr &E, const TypeContext &Ctx,
                                      std::string *Err) {
  ETCH_ASSERT(E, "null expression");
  switch (E->kind()) {
  case ExprKind::Var: {
    auto It = Ctx.find(E->varName());
    if (It == Ctx.end()) {
      setErr(Err, "unbound variable '" + E->varName() + "'");
      return std::nullopt;
    }
    return It->second;
  }
  case ExprKind::Add:
  case ExprKind::Mul: {
    auto A = inferShape(E->lhs(), Ctx, Err);
    if (!A)
      return std::nullopt;
    auto B = inferShape(E->rhs(), Ctx, Err);
    if (!B)
      return std::nullopt;
    if (*A != *B) {
      setErr(Err, std::string(E->kind() == ExprKind::Add ? "+" : "*") +
                      " requires equal shapes, got " + shapeToString(*A) +
                      " and " + shapeToString(*B));
      return std::nullopt;
    }
    return A;
  }
  case ExprKind::Sum: {
    auto A = inferShape(E->lhs(), Ctx, Err);
    if (!A)
      return std::nullopt;
    if (!shapeContains(*A, E->attr())) {
      setErr(Err, "sum over attribute '" + E->attr().name() +
                      "' absent from shape " + shapeToString(*A));
      return std::nullopt;
    }
    return shapeMinus(*A, {E->attr()});
  }
  case ExprKind::Expand: {
    auto A = inferShape(E->lhs(), Ctx, Err);
    if (!A)
      return std::nullopt;
    if (shapeContains(*A, E->attr())) {
      setErr(Err, "expansion over attribute '" + E->attr().name() +
                      "' already present in shape " + shapeToString(*A));
      return std::nullopt;
    }
    return shapeUnion(*A, {E->attr()});
  }
  case ExprKind::Rename: {
    auto A = inferShape(E->lhs(), Ctx, Err);
    if (!A)
      return std::nullopt;
    std::vector<Attr> Renamed;
    for (Attr X : *A) {
      Attr Y = X;
      for (const auto &[From, To] : E->mapping())
        if (From == X)
          Y = To;
      Renamed.push_back(Y);
    }
    Shape Out = makeShape(Renamed);
    if (Out.size() != A->size()) {
      setErr(Err, "rename merges attributes in shape " + shapeToString(*A));
      return std::nullopt;
    }
    return Out;
  }
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

ExprPtr etch::mulExpand(ExprPtr A, ExprPtr B, const TypeContext &Ctx,
                        std::string *Err) {
  auto SA = inferShape(A, Ctx, Err);
  if (!SA)
    return nullptr;
  auto SB = inferShape(B, Ctx, Err);
  if (!SB)
    return nullptr;
  // Expand each side over the attributes only the other side has. Expansion
  // order is irrelevant to the semantics; apply in global attribute order.
  for (Attr X : shapeMinus(*SB, *SA))
    A = Expr::expand(X, std::move(A));
  for (Attr X : shapeMinus(*SA, *SB))
    B = Expr::expand(X, std::move(B));
  return Expr::mul(std::move(A), std::move(B));
}

ExprPtr etch::sumAll(ExprPtr E, const TypeContext &Ctx, std::string *Err) {
  auto SE = inferShape(E, Ctx, Err);
  if (!SE)
    return nullptr;
  // Contract innermost (last in the global order) attributes first so the
  // stream lowering peels sums from the inside out.
  Shape S = *SE;
  std::reverse(S.begin(), S.end());
  for (Attr A : S)
    E = Expr::sum(A, std::move(E));
  return E;
}

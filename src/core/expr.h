//===- core/expr.h - The contraction expression language L -----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contraction expression language `L` (Figure 4a) and its typing rules
/// (Figure 4b). Expressions are immutable trees: variables, `+`, `·`, the
/// contraction operator `Σ_a`, the expansion operator `↑_a`, and attribute
/// renaming. Typing assigns each expression a *shape* (a set of attributes);
/// `inferShape` implements Figure 4b and reports violations.
///
/// Both semantics consume this AST: the denotational evaluator in
/// core/eval.h (the `T` algebra) and the stream lowering in
/// streams/lower.h / compiler/frontend.h (the `S` algebra).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_CORE_EXPR_H
#define ETCH_CORE_EXPR_H

#include "core/attr.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace etch {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Discriminator for the expression forms of Figure 4a.
enum class ExprKind { Var, Add, Mul, Sum, Expand, Rename };

/// An immutable contraction-language expression node.
class Expr {
public:
  ExprKind kind() const { return Kind; }

  /// Variable name (Kind == Var).
  const std::string &varName() const { return VarName; }

  /// Operands: lhs() for unary nodes, lhs()/rhs() for binary ones.
  const ExprPtr &lhs() const { return Lhs; }
  const ExprPtr &rhs() const { return Rhs; }

  /// The bound attribute of Σ_a / ↑_a (Kind == Sum or Expand).
  Attr attr() const { return BoundAttr; }

  /// The (old, new) pairs of a rename node.
  const std::vector<std::pair<Attr, Attr>> &mapping() const { return Mapping; }

  /// Factory functions. These are the only way to build expressions.
  static ExprPtr var(std::string Name);
  static ExprPtr add(ExprPtr A, ExprPtr B);
  static ExprPtr mul(ExprPtr A, ExprPtr B);
  static ExprPtr sum(Attr A, ExprPtr E);
  static ExprPtr expand(Attr A, ExprPtr E);
  static ExprPtr rename(std::vector<std::pair<Attr, Attr>> Mapping, ExprPtr E);

  /// Renders the expression with the paper's notation, e.g.
  /// "Σb (↑c x · ↑a y)".
  std::string toString() const;

private:
  Expr() = default;
  ExprKind Kind = ExprKind::Var;
  std::string VarName;
  ExprPtr Lhs, Rhs;
  Attr BoundAttr;
  std::vector<std::pair<Attr, Attr>> Mapping;
};

/// A typing context: variable name -> declared shape (the `τ` of Figure 4a).
using TypeContext = std::map<std::string, Shape>;

/// Infers the shape of \p E under \p Ctx per Figure 4b. On a typing error
/// returns std::nullopt and, if \p Err is non-null, stores a diagnostic.
std::optional<Shape> inferShape(const ExprPtr &E, const TypeContext &Ctx,
                                std::string *Err = nullptr);

/// Builds `A · B` inserting the expansion operators each side needs so both
/// reach the union shape, as the paper notes can always be inferred from the
/// argument shapes ("in every operation involving ↑, the set of attributes
/// to expand over can be inferred"). Returns nullptr on a typing error.
ExprPtr mulExpand(ExprPtr A, ExprPtr B, const TypeContext &Ctx,
                  std::string *Err = nullptr);

/// Builds `Σ_{a1} Σ_{a2} ... E` over every attribute of E's shape, yielding
/// a scalar expression (full contraction / aggregate). Sums innermost
/// attributes first. Returns nullptr on a typing error.
ExprPtr sumAll(ExprPtr E, const TypeContext &Ctx, std::string *Err = nullptr);

/// Convenience operators mirroring the paper's infix notation. These perform
/// *strict* (same-shape) combination; use mulExpand for the inferred form.
inline ExprPtr operator+(ExprPtr A, ExprPtr B) {
  return Expr::add(std::move(A), std::move(B));
}
inline ExprPtr operator*(ExprPtr A, ExprPtr B) {
  return Expr::mul(std::move(A), std::move(B));
}

} // namespace etch

#endif // ETCH_CORE_EXPR_H

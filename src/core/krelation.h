//===- core/krelation.h - K-relations: the functional semantics -*- C++-*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-relations (Definition 4.6): functions `I_S -> K` from tuples of a shape
/// S into a semiring K, the denotational semantics `T` of the contraction
/// language (Figure 4c, after Green et al.'s positive algebra). This is the
/// *reference* implementation — a finite map with nested-loop operations —
/// used as the oracle that indexed streams are tested against (Theorem 6.1).
/// It is deliberately simple, not fast.
///
/// The paper permits K-relations with infinite support as long as they are
/// multiplied with something finite (expansion `↑a` produces them). We
/// represent this by splitting a relation's shape into a *finite* part,
/// carried by the map, and a *dense* part along which the value is constant
/// (the expanded attributes). Multiplication intersects dense parts away;
/// addition and contraction require their operands to be finite along the
/// attributes they touch, matching the paper's well-formedness condition.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_CORE_KRELATION_H
#define ETCH_CORE_KRELATION_H

#include "core/attr.h"
#include "core/semiring.h"
#include "support/assert.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace etch {

/// Index values. The core semantics fixes every index set to (a subset of)
/// the integers; the relational layer dictionary-encodes strings into dense
/// integer ids before they reach this layer.
using Idx = int64_t;

/// A tuple: coordinates aligned with a sorted shape.
using Tuple = std::vector<Idx>;

/// A K-relation over semiring \p S. See the file comment.
template <Semiring S> class KRelation {
public:
  using Value = typename S::Value;

  /// An empty (all-zero) relation of the given full shape; \p Dense must be
  /// a subset of \p Full.
  explicit KRelation(Shape Full = {}, Shape Dense = {})
      : Full(std::move(Full)), Dense(std::move(Dense)),
        Finite(shapeMinus(this->Full, this->Dense)) {
    ETCH_ASSERT(shapeIntersect(this->Full, this->Dense).size() ==
                    this->Dense.size(),
                "dense attributes must belong to the shape");
  }

  /// A scalar relation (shape {}) holding \p V.
  static KRelation scalar(Value V) {
    KRelation R;
    if (!S::isZero(V))
      R.Data.emplace(Tuple{}, V);
    return R;
  }

  const Shape &shape() const { return Full; }
  const Shape &denseAttrs() const { return Dense; }
  const Shape &finiteShape() const { return Finite; }
  bool isFinite() const { return Dense.empty(); }

  /// Number of explicitly stored (finite-support) entries.
  size_t supportSize() const { return Data.size(); }

  /// Adds \p V at the finite-shape tuple \p T (accumulating).
  void insert(const Tuple &T, Value V) {
    ETCH_ASSERT(T.size() == Finite.size(), "tuple arity mismatch");
    auto [It, Inserted] = Data.emplace(T, V);
    if (!Inserted)
      It->second = S::add(It->second, V);
  }

  /// Returns the value at a tuple over the *finite* shape.
  Value at(const Tuple &T) const {
    ETCH_ASSERT(T.size() == Finite.size(), "tuple arity mismatch");
    auto It = Data.find(T);
    return It == Data.end() ? S::zero() : It->second;
  }

  /// Iteration over stored entries (finite tuples), sorted lexicographically.
  const std::map<Tuple, Value> &entries() const { return Data; }

  /// Pointwise addition. Shapes and dense parts must agree.
  KRelation add(const KRelation &Other) const {
    ETCH_ASSERT(Full == Other.Full && Dense == Other.Dense,
                "addition requires identical shapes");
    KRelation Out(Full, Dense);
    Out.Data = Data;
    for (const auto &[T, V] : Other.Data)
      Out.insert(T, V);
    Out.pruneZeros();
    return Out;
  }

  /// Pointwise multiplication of relations with the same full shape
  /// (the typing rule for `·`). Dense attributes of one side are resolved
  /// against finite attributes of the other (the intersection optimisation);
  /// attributes dense on both sides stay dense.
  KRelation mul(const KRelation &Other) const {
    ETCH_ASSERT(Full == Other.Full, "multiplication requires equal shapes");
    Shape OutDense = shapeIntersect(Dense, Other.Dense);
    KRelation Out(Full, OutDense);

    // Positions, within each operand's finite tuple, of every attribute of
    // the output finite shape (-1 when the operand is dense there).
    std::vector<int> PosA, PosB;
    for (Attr A : Out.Finite) {
      PosA.push_back(shapeIndexOf(Finite, A));
      PosB.push_back(shapeIndexOf(Other.Finite, A));
    }

    for (const auto &[TA, VA] : Data) {
      for (const auto &[TB, VB] : Other.Data) {
        bool Agree = true;
        Tuple T(Out.Finite.size());
        for (size_t I = 0; I < Out.Finite.size() && Agree; ++I) {
          int IA = PosA[I], IB = PosB[I];
          if (IA >= 0 && IB >= 0 && TA[IA] != TB[IB])
            Agree = false;
          else
            T[I] = IA >= 0 ? TA[IA] : TB[IB];
        }
        if (!Agree)
          continue;
        Value V = S::mul(VA, VB);
        if (!S::isZero(V))
          Out.insert(T, V);
      }
    }
    Out.pruneZeros();
    return Out;
  }

  /// Contraction `Σ_a` (Figure 4c): sums out attribute \p A, which must be
  /// finitely supported (summing a dense attribute would be an infinite sum).
  KRelation contract(Attr A) const {
    ETCH_ASSERT(shapeContains(Full, A), "contracted attribute not in shape");
    ETCH_ASSERT(!shapeContains(Dense, A),
                "cannot contract an expanded (infinite-support) attribute");
    int Pos = shapeIndexOf(Finite, A);
    KRelation Out(shapeMinus(Full, {A}), Dense);
    for (const auto &[T, V] : Data) {
      Tuple U = T;
      U.erase(U.begin() + Pos);
      Out.insert(U, V);
    }
    Out.pruneZeros();
    return Out;
  }

  /// Expansion `↑a` (Figure 4c): repeats the value along a new attribute,
  /// producing a relation dense in \p A.
  KRelation expand(Attr A) const {
    ETCH_ASSERT(!shapeContains(Full, A), "expansion over existing attribute");
    KRelation Out(shapeUnion(Full, {A}), shapeUnion(Dense, {A}));
    Out.Data = Data;
    return Out;
  }

  /// Expansion with an explicit finite universe, materialising the copies.
  /// Used by tests to compare against the dense representation.
  KRelation expandFinite(Attr A, const std::vector<Idx> &Universe) const {
    ETCH_ASSERT(!shapeContains(Full, A), "expansion over existing attribute");
    KRelation Out(shapeUnion(Full, {A}), Dense);
    int Pos = shapeIndexOf(Out.Finite, A);
    for (const auto &[T, V] : Data) {
      for (Idx I : Universe) {
        Tuple U = T;
        U.insert(U.begin() + Pos, I);
        Out.insert(U, V);
      }
    }
    return Out;
  }

  /// Renaming (Figure 4c): \p Mapping lists (old, new) attribute pairs; any
  /// attribute not listed keeps its name. The result shape must be
  /// duplicate-free.
  KRelation rename(const std::vector<std::pair<Attr, Attr>> &Mapping) const {
    auto renameAttr = [&](Attr A) {
      for (const auto &[From, To] : Mapping)
        if (From == A)
          return To;
      return A;
    };
    std::vector<Attr> NewFullV, NewDenseV, NewFiniteV;
    for (Attr A : Full)
      NewFullV.push_back(renameAttr(A));
    for (Attr A : Dense)
      NewDenseV.push_back(renameAttr(A));
    for (Attr A : Finite)
      NewFiniteV.push_back(renameAttr(A));
    Shape NewFull = makeShape(NewFullV);
    ETCH_ASSERT(NewFull.size() == Full.size(),
                "rename must not merge attributes");
    KRelation Out(NewFull, makeShape(NewDenseV));

    // Permutation from old finite positions to new sorted finite positions.
    std::vector<int> Perm(NewFiniteV.size());
    for (size_t I = 0; I < NewFiniteV.size(); ++I)
      Perm[I] = shapeIndexOf(Out.Finite, NewFiniteV[I]);
    for (const auto &[T, V] : Data) {
      Tuple U(T.size());
      for (size_t I = 0; I < T.size(); ++I)
        U[Perm[I]] = T[I];
      Out.insert(U, V);
    }
    return Out;
  }

  /// Drops explicitly stored zeros so that equality compares supports.
  void pruneZeros() {
    for (auto It = Data.begin(); It != Data.end();) {
      if (S::isZero(It->second))
        It = Data.erase(It);
      else
        ++It;
    }
  }

  /// Exact structural equality (same shape, same stored nonzeros).
  bool equals(const KRelation &Other) const {
    return Full == Other.Full && Dense == Other.Dense && Data == Other.Data;
  }

  /// Equality up to a relative/absolute tolerance on values, for
  /// floating-point semirings where operation reassociation perturbs results.
  bool approxEquals(const KRelation &Other, double Tol = 1e-9) const {
    if (Full != Other.Full || Dense != Other.Dense)
      return false;
    auto Close = [Tol](double A, double B) {
      double Scale = std::fmax(1.0, std::fmax(std::fabs(A), std::fabs(B)));
      return std::fabs(A - B) <= Tol * Scale;
    };
    for (const auto &[T, V] : Data)
      if (!Close(static_cast<double>(V),
                 static_cast<double>(Other.at(T))))
        return false;
    for (const auto &[T, V] : Other.Data)
      if (!Close(static_cast<double>(V), static_cast<double>(at(T))))
        return false;
    return true;
  }

  /// Renders entries for diagnostics: "(i, j) -> v" lines.
  std::string toString() const {
    std::string Out = "shape " + shapeToString(Full);
    if (!Dense.empty())
      Out += " dense " + shapeToString(Dense);
    Out += "\n";
    for (const auto &[T, V] : Data) {
      Out += "  (";
      for (size_t I = 0; I < T.size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += std::to_string(T[I]);
      }
      Out += ") -> " + std::to_string(V) + "\n";
    }
    return Out;
  }

private:
  Shape Full;
  Shape Dense;
  Shape Finite;
  std::map<Tuple, Value> Data;
};

} // namespace etch

#endif // ETCH_CORE_KRELATION_H

//===- core/attr.cpp - Attributes, shapes, and the global order ----------===//

#include "core/attr.h"

#include "support/assert.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace etch;

namespace {

/// The process-wide attribute interner. Function-local statics avoid static
/// constructor ordering issues. Interning is mutex-guarded so concurrent
/// planners (the serve layer realizes plans from request threads) can
/// intern fresh attributes safely; `Names` is a deque because `name()`
/// hands out references that must survive later insertions.
struct Interner {
  std::mutex Mu;
  std::deque<std::string> Names;
  std::unordered_map<std::string, uint32_t> Index;
};

Interner &interner() {
  static Interner I;
  return I;
}

} // namespace

Attr Attr::named(const std::string &Name) {
  Interner &I = interner();
  std::lock_guard<std::mutex> L(I.Mu);
  auto It = I.Index.find(Name);
  if (It != I.Index.end())
    return Attr(It->second);
  uint32_t Id = static_cast<uint32_t>(I.Names.size());
  I.Names.push_back(Name);
  I.Index.emplace(Name, Id);
  return Attr(Id);
}

const std::string &Attr::name() const {
  Interner &I = interner();
  std::lock_guard<std::mutex> L(I.Mu);
  ETCH_ASSERT(Id < I.Names.size(), "invalid attribute");
  return I.Names[Id];
}

Shape etch::makeShape(std::vector<Attr> Attrs) {
  std::sort(Attrs.begin(), Attrs.end());
  Attrs.erase(std::unique(Attrs.begin(), Attrs.end()), Attrs.end());
  return Attrs;
}

bool etch::shapeContains(const Shape &S, Attr A) {
  return std::binary_search(S.begin(), S.end(), A);
}

Shape etch::shapeUnion(const Shape &A, const Shape &B) {
  Shape Out;
  Out.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Out));
  return Out;
}

Shape etch::shapeIntersect(const Shape &A, const Shape &B) {
  Shape Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Out));
  return Out;
}

Shape etch::shapeMinus(const Shape &A, const Shape &B) {
  Shape Out;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Out));
  return Out;
}

int etch::shapeIndexOf(const Shape &S, Attr A) {
  auto It = std::lower_bound(S.begin(), S.end(), A);
  if (It == S.end() || *It != A)
    return -1;
  return static_cast<int>(It - S.begin());
}

int etch::attrsBefore(const Shape &S, Attr A) {
  auto It = std::lower_bound(S.begin(), S.end(), A);
  return static_cast<int>(It - S.begin());
}

std::string etch::shapeToString(const Shape &S) {
  std::string Out = "{";
  for (size_t I = 0; I < S.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += S[I].name();
  }
  Out += "}";
  return Out;
}

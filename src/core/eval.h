//===- core/eval.h - Denotational evaluation of L into T -------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The denotational semantics `[[−]]^T : L -> T` of Figure 4c: a contraction
/// expression evaluates, under a context binding variables to K-relations,
/// to a K-relation. Each syntactic form maps onto the corresponding
/// K-relation operation. This evaluator is the oracle in every correctness
/// test: the stream semantics (streams/), the compiled VM programs
/// (compiler/), and the emitted C all must agree with it.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_CORE_EVAL_H
#define ETCH_CORE_EVAL_H

#include "core/expr.h"
#include "core/krelation.h"
#include "support/assert.h"

#include <map>

namespace etch {

/// A value context: variable name -> K-relation (the `c` of Figure 4a).
template <Semiring S>
using ValueContext = std::map<std::string, KRelation<S>>;

/// Evaluates \p E under \p Ctx. The expression must be well-typed with
/// respect to the shapes of the bound relations; violations abort.
template <Semiring S>
KRelation<S> evalT(const ExprPtr &E, const ValueContext<S> &Ctx) {
  ETCH_ASSERT(E, "null expression");
  switch (E->kind()) {
  case ExprKind::Var: {
    auto It = Ctx.find(E->varName());
    ETCH_ASSERT(It != Ctx.end(), "unbound variable in value context");
    return It->second;
  }
  case ExprKind::Add:
    return evalT(E->lhs(), Ctx).add(evalT(E->rhs(), Ctx));
  case ExprKind::Mul:
    return evalT(E->lhs(), Ctx).mul(evalT(E->rhs(), Ctx));
  case ExprKind::Sum:
    return evalT(E->lhs(), Ctx).contract(E->attr());
  case ExprKind::Expand:
    return evalT(E->lhs(), Ctx).expand(E->attr());
  case ExprKind::Rename:
    return evalT(E->lhs(), Ctx).rename(E->mapping());
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

/// Builds the TypeContext matching a ValueContext (each variable typed with
/// the full shape of its bound relation).
template <Semiring S>
TypeContext typesOf(const ValueContext<S> &Ctx) {
  TypeContext Types;
  for (const auto &[Name, Rel] : Ctx)
    Types.emplace(Name, Rel.shape());
  return Types;
}

} // namespace etch

#endif // ETCH_CORE_EVAL_H

//===- ivm/maintain.h - Materialized-view maintenance driver ---*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The maintenance driver behind live materialized views: contraction
/// queries registered over `TensorCatalog` tensors whose stored results
/// are kept current by *delta* contraction instead of recomputation.
///
/// Two kinds of views:
///
///   - **Scalar views** — the serving layer's query shape (the full
///     contraction of a product of catalog tensors: SpMV totals, TPC-H
///     revenue, triangle counts). A batch Δ on factor `t` refreshes the
///     view through the delta-rewrite identity (ivm/delta.h): the driver
///     presents Δ as a synthetic catalog tensor `t~Δ` and runs
///     `Σ Δ·B·…` through the ordinary planner / formats / backends. A
///     factor occurring k times expands binomially — for m = 1..k the
///     contraction with m delta copies runs once and contributes with
///     coefficient C(k,m), which is exactly `(A+Δ)^k - A^k` —
///     so self-joins like triangle counts maintain exactly.
///   - **Grouped views** — group-bys: only part of the attribute set is
///     contracted and the view is relation-valued. These maintain at the
///     K-relation layer (`GroupedView`), whose pruning guarantees
///     deletions that cancel a weight to the semiring zero leave no
///     zombie tuple behind.
///
/// Delta plans are *retained* in the `PlanCache` (keyed on the view, not
/// on tensor versions) and refreshed by rebinding, so after the first
/// batch a refresh performs no planner enumeration and no compilation —
/// the PlanCache counters prove it. Every stored view state is held
/// bit-identical to full recomputation by the oracle tests and the
/// `etch-fuzz --delta` leg (exact-valued data; see ivm/delta.h for the
/// f64 caveat).
///
/// Thread-safety: mutators (`register*`, `onAppend*`, `onReplace`,
/// `onErase`, `recompute`) must be serialized by the caller — the service
/// runs them under its write lock. `read*` and `stats` are safe against
/// concurrent mutators.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_IVM_MAINTAIN_H
#define ETCH_IVM_MAINTAIN_H

#include "core/semiring.h"
#include "ivm/delta.h"
#include "serve/catalog.h"
#include "serve/plancache.h"
#include "serve/prepare.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace etch {

struct IvmOptions {
  /// Plan preparation knobs for view plans. `AllowHashed` is forced off
  /// and `Retain` forced on internally: retained plans are rebound across
  /// appends, and a hashed copy bakes a per-nnz table size.
  PrepareOptions Prep;
  /// Executor for view refreshes (Auto = native when prepared, else
  /// bytecode; the fuzz leg forces Tree / Bytecode / Native).
  ExecBackend Backend = ExecBackend::Auto;
};

/// A consistent reading of a scalar view.
struct ViewReading {
  bool Ok = false;
  std::string Error;
  std::string Name;
  double Value = 0.0;
  uint64_t Epoch = 0; ///< Catalog epoch the value reflects.
  std::string Backend; ///< Executor of the last refresh.
};

struct MaintainStats {
  uint64_t ScalarViews = 0;
  uint64_t GroupedViews = 0;
  uint64_t Batches = 0;          ///< Append/delete batches observed.
  uint64_t DeltaRefreshes = 0;   ///< Scalar refreshes served by delta plans.
  uint64_t FullRecomputes = 0;   ///< Registration / replace recomputations.
  uint64_t DeltaPlanBuilds = 0;  ///< Delta plans prepared (planner ran).
  uint64_t DeltaPlanHits = 0;    ///< Delta dispatches on a retained plan.
  uint64_t GroupedRefreshes = 0; ///< Grouped-view delta applications.
  uint64_t EmptyBatches = 0;     ///< Batches that canonicalized to nothing.
};

/// Registers views over a catalog and folds every append/delete batch
/// into them. One driver per catalog; the `ContractionService` owns one
/// and routes its write path through the `on*` hooks.
class MaintenanceDriver {
public:
  MaintenanceDriver(TensorCatalog &Catalog, PlanCache &Plans,
                    IvmOptions Opts = {});
  ~MaintenanceDriver();

  /// Registers the scalar view `Name = Σ Π Factors` (duplicates allowed)
  /// and computes its initial value from the current snapshot. Fails on
  /// unknown factors or an unplannable query.
  bool registerView(const std::string &Name,
                    std::vector<std::string> Factors, std::string *Err);

  /// Registers the grouped view `Name = Σ_{attrs ∉ GroupBy} Π Factors`,
  /// maintained at the K-relation layer. Every attribute in \p GroupBy
  /// must occur in some factor's shape.
  bool registerGroupedView(const std::string &Name,
                           std::vector<std::string> Factors,
                           const Shape &GroupBy, std::string *Err);

  /// Drops a view (either kind) and its retained plans.
  bool unregister(const std::string &Name);

  std::vector<std::string> viewNames() const;

  /// Current value of a scalar view; nullopt when unknown.
  std::optional<ViewReading> read(const std::string &Name) const;

  /// Current relation of a grouped view; nullopt when unknown.
  std::optional<KRelation<F64Semiring>>
  readGrouped(const std::string &Name) const;

  /// Full recomputation of a scalar view from the *current* snapshot,
  /// without touching the stored value — the oracle `read` is held
  /// bit-identical to (under exact arithmetic). Runs on the view's
  /// retained refresh plan (rebound, planner-free).
  std::optional<ViewReading> recompute(const std::string &Name);

  /// Full recomputation of a grouped view from its maintained base.
  std::optional<KRelation<F64Semiring>>
  recomputeGrouped(const std::string &Name) const;

  /// Write-path hooks. \p Pre is the snapshot the batch was applied *to*
  /// (captured before the catalog installed it), \p Post the snapshot
  /// after: old factor occurrences bind Pre payloads, so multi-occurrence
  /// views expand `(A+Δ)^k` against the right A.
  void onAppendCsr(const std::string &Name,
                   const std::vector<CooEntry<double>> &Delta,
                   const CatalogSnapshotRef &Pre,
                   const CatalogSnapshotRef &Post);
  void onAppendSparse(const std::string &Name,
                      const std::vector<std::pair<Idx, double>> &Delta,
                      const CatalogSnapshotRef &Pre,
                      const CatalogSnapshotRef &Post);
  /// A load replaced \p Name wholesale: affected views rebuild their
  /// plans and recompute in full (a replacement has no delta).
  void onReplace(const std::string &Name, const CatalogSnapshotRef &Post);
  /// \p Name was erased: affected views enter an error state until a
  /// factor reappears via onReplace.
  void onErase(const std::string &Name, const CatalogSnapshotRef &Post);

  MaintainStats stats() const;

private:
  struct ScalarView {
    std::string Name;
    std::vector<std::string> Factors; ///< Sorted.
    bool Ok = false;
    std::string Error;
    double Value = 0.0;
    uint64_t Epoch = 0;
    std::string Backend;
    std::vector<std::string> PlanKeys; ///< Retained keys owned by the view.
  };
  struct Grouped {
    std::string Name;
    std::vector<std::string> Factors; ///< Sorted.
    Shape GroupBy;
    bool Ok = false;
    std::string Error;
    GroupedView<F64Semiring> View;
  };

  std::string planKey(const std::string &View, const std::string &Tag) const;
  /// Prepares (or rebinds) and runs the view's full-refresh plan against
  /// \p Snap; returns false with a diagnostic on failure.
  bool runFull(ScalarView &V, const CatalogSnapshotRef &Snap, double *Out,
               std::string *Backend, std::string *Err);
  void refreshScalar(ScalarView &V, const std::string &Tensor,
                     const CatalogTensorRef &DeltaT,
                     const CatalogSnapshotRef &Pre,
                     const CatalogSnapshotRef &Post);
  void replaceScalar(ScalarView &V, const CatalogSnapshotRef &Post);
  /// Builds the grouped view's expression and base context from \p Snap.
  bool buildGrouped(Grouped &G, const CatalogSnapshotRef &Snap,
                    std::string *Err);
  void onBatch(const std::string &Name, const CatalogTensorRef &DeltaT,
               const KRelation<F64Semiring> &DeltaRel,
               const CatalogSnapshotRef &Pre, const CatalogSnapshotRef &Post);

  TensorCatalog &Catalog;
  PlanCache &Plans;
  IvmOptions Opts;

  mutable std::mutex Mu; ///< Guards the view tables and stats.
  std::map<std::string, ScalarView> Scalars;
  std::map<std::string, Grouped> Groups;
  MaintainStats Stats;
};

/// The synthetic catalog-tensor name a delta batch on \p Tensor is
/// resolved under. Stays a valid C identifier (the native emitter
/// requires it); registration rejects factor names that collide with it.
std::string deltaFactorName(const std::string &Tensor);

/// The canonicalized batch as a catalog tensor shaped like \p Base
/// (same kind, attrs, extents), with fresh stats — ready to resolve as a
/// plan factor. Returns null for an empty (fully cancelled) batch.
CatalogTensorRef deltaTensorCsr(const CatalogTensor &Base,
                                const std::vector<CooEntry<double>> &Delta);
CatalogTensorRef
deltaTensorSparse(const CatalogTensor &Base,
                  const std::vector<std::pair<Idx, double>> &Delta);

} // namespace etch

#endif // ETCH_IVM_MAINTAIN_H

//===- ivm/deltafuzz.cpp - Fuzzing the incremental-maintenance path -------===//

#include "ivm/deltafuzz.h"

#include "core/eval.h"
#include "core/expr.h"
#include "fuzz/corpus.h"
#include "ivm/delta.h"
#include "ivm/maintain.h"
#include "serve/catalog.h"
#include "serve/plancache.h"
#include "serve/prepare.h"
#include "support/rng.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace etch;

namespace {

void reportDiv(FuzzReport &Rep, const std::string &Leg,
               const std::string &Detail) {
  constexpr size_t Cap = 400;
  std::string D = Detail;
  if (D.size() > Cap)
    D = D.substr(0, Cap) + "...";
  Rep.Divs.push_back({Leg, D});
}

/// The generator's per-semiring value pool (fuzz/gen.cpp): dyadic
/// rationals of bounded magnitude, so the delta identity holds bit-for-bit
/// even over f64.
double rawDeltaValue(Rng &R, const std::string &Semiring) {
  if (Semiring == "i64")
    return static_cast<double>(R.nextInRange(-3, 3));
  if (Semiring == "bool")
    return R.nextBool(0.9) ? 1.0 : 0.0;
  if (Semiring == "minplus")
    return R.nextBool(0.06)
               ? std::numeric_limits<double>::infinity()
               : static_cast<double>(R.nextInRange(-6, 12)) * 0.5;
  return static_cast<double>(R.nextInRange(-8, 8)) * 0.5; // f64
}

uint64_t mix(uint64_t A, uint64_t B) {
  uint64_t Z = A + 0x9e3779b97f4a7c15ULL * (B + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return Z ^ (Z >> 31);
}

//===----------------------------------------------------------------------===//
// K-relation layer: the delta-rewrite identity on generated cases
//===----------------------------------------------------------------------===//

/// A random batch over \p A: fresh coordinates (biased toward reuse, so
/// updates of stored entries happen), plus — in ring semirings — exact
/// negations of stored entries (deletions).
template <Semiring S>
KRelation<S> genDelta(const FuzzCase &C, const FuzzTensor &T,
                      const KRelation<S> &A, Rng &R) {
  KRelation<S> D(A.shape());
  // A zero extent leaves no legal coordinates: the only batch is empty.
  for (Attr At : T.Shp)
    if (C.dimOf(At) <= 0)
      return D;
  size_t N = R.nextBelow(5);
  for (size_t I = 0; I < N; ++I) {
    if (semiringHasNegation<S>() && A.supportSize() > 0 && R.nextBool(0.35)) {
      auto It = A.entries().begin();
      std::advance(It, R.nextBelow(A.supportSize()));
      D.insert(It->first, -It->second);
      continue;
    }
    Tuple Tu(T.Shp.size());
    for (size_t Ax = 0; Ax < T.Shp.size(); ++Ax) {
      Idx Dim = C.dimOf(T.Shp[Ax]);
      if (A.supportSize() > 0 && R.nextBool(0.5)) {
        auto It = A.entries().begin();
        std::advance(It, R.nextBelow(A.supportSize()));
        Tu[Ax] = It->first[Ax];
      } else {
        Tu[Ax] = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(Dim)));
      }
    }
    D.insert(Tu, fuzzValue<S>(rawDeltaValue(R, C.SemiringName)));
  }
  D.pruneZeros();
  return D;
}

template <Semiring S>
void runDeltaTyped(const FuzzCase &C, uint64_t BatchSeed, FuzzReport &Rep) {
  ValueContext<S> Inputs;
  for (const FuzzTensor &T : C.Tensors)
    Inputs.emplace(T.Name, fuzzTensorRelation<S>(T));

  KRelation<S> Base = evalT<S>(C.E, Inputs);
  for (size_t TI = 0; TI < C.Tensors.size(); ++TI) {
    const FuzzTensor &T = C.Tensors[TI];
    Rng R(mix(BatchSeed, TI));
    KRelation<S> D = genDelta<S>(C, T, Inputs.at(T.Name), R);

    // Identity: T[e](Ctx[t := A+Δ]) == T[e](Ctx) + δ_t[e](Ctx, Δ).
    ValueContext<S> Patched = Inputs;
    Patched.at(T.Name) = Inputs.at(T.Name).add(D);
    KRelation<S> Left = evalT<S>(C.E, Patched);
    KRelation<S> Right = Base.add(evalDeltaT<S>(C.E, Inputs, T.Name, D));
    if (!Left.equals(Right))
      reportDiv(Rep, "delta/" + C.SemiringName + "/t=" + T.Name,
                "recompute=" + Left.toString() +
                    " incremental=" + Right.toString() +
                    " delta=" + D.toString());

    // The maintenance engine itself: apply the batch, compare against a
    // recomputation from the maintained base.
    GroupedView<S> GV(C.E, Inputs);
    GV.applyDelta(T.Name, D);
    if (!GV.value().equals(GV.recompute()))
      reportDiv(Rep, "delta/grouped/" + C.SemiringName + "/t=" + T.Name,
                "maintained=" + GV.value().toString() +
                    " recomputed=" + GV.recompute().toString() +
                    " delta=" + D.toString());
  }
}

//===----------------------------------------------------------------------===//
// Serve-stack layer: random append/delete scenarios through the driver
//===----------------------------------------------------------------------===//

int nonZeroInt(Rng &R) {
  int V = static_cast<int>(R.nextInRange(-3, 3));
  return V == 0 ? 1 : V;
}

/// What one scenario ends with, for the Both cross-check.
struct ScenarioFinals {
  std::map<std::string, double> Scalars;
  std::string Grouped;
};

struct Scenario {
  Scenario(uint64_t Seed, ExecBackend EB, bool UseNative,
           const std::string &JitCacheDir, const std::string &LegPrefix,
           FuzzReport &Rep)
      : R(mix(Seed, 0xde17a)), Plans(64), Leg(LegPrefix), Rep(Rep) {
    const std::vector<Attr> &U = fuzzAttrUniverse();
    AI = U[0];
    AJ = U[1];
    NR = 2 + static_cast<Idx>(R.nextBelow(5));
    NC = 2 + static_cast<Idx>(R.nextBelow(5));

    std::vector<CooEntry<double>> Coo;
    for (Idx I = 0; I < NR; ++I)
      for (Idx J = 0; J < NC; ++J)
        if (R.nextBool(0.45))
          Coo.push_back({I, J, static_cast<double>(nonZeroInt(R))});
    Cat.putCsr("M", CsrMatrix<double>::fromCoo(NR, NC, std::move(Coo)), AI,
               AJ);
    SparseVector<double> V(NC);
    for (Idx J = 0; J < NC; ++J)
      if (R.nextBool(0.5))
        V.push(J, static_cast<double>(nonZeroInt(R)));
    Cat.putSparse("v", std::move(V), AJ);
    SparseVector<double> Uv(NR);
    for (Idx I = 0; I < NR; ++I)
      if (R.nextBool(0.5))
        Uv.push(I, static_cast<double>(nonZeroInt(R)));
    Cat.putSparse("u", std::move(Uv), AI);
    DenseVector<double> Dv(NR);
    for (Idx I = 0; I < NR; ++I)
      Dv.Val[static_cast<size_t>(I)] =
          static_cast<double>(R.nextInRange(-2, 2));
    Cat.putDense("d", std::move(Dv), AI);

    IvmOptions IO;
    IO.Backend = EB;
    IO.Prep.UseNative = UseNative;
    IO.Prep.JitCacheDir = JitCacheDir;
    Drv = std::make_unique<MaintenanceDriver>(Cat, Plans, IO);

    registerScalar("vw_tot", {"M"});
    registerScalar("vw_spmv", {"M", "v", "u"});
    registerScalar("vw_sq", {"M", "M"});
    registerScalar("vw_vv", {"v", "v"});
    registerScalar("vw_du", {"d", "u"});
    std::string Err;
    if (!Drv->registerGroupedView("gv_rows", {"M", "v"}, {AI}, &Err))
      reportDiv(Rep, Leg + "/register/gv_rows", Err);
  }

  void registerScalar(const std::string &Name,
                      std::vector<std::string> Factors) {
    std::string Err;
    if (!Drv->registerView(Name, Factors, &Err))
      reportDiv(Rep, Leg + "/register/" + Name, Err);
    else
      Views.push_back({Name, std::move(Factors)});
  }

  /// One append/delete batch on "M" or "v", routed exactly the way the
  /// service write path routes it. Returns whether the canonicalized
  /// batch was non-empty.
  bool applyBatch(const std::string &Target) {
    CatalogSnapshotRef Pre = Cat.snapshot();
    bool NonEmpty = false;
    if (Target == "M") {
      const CsrMatrix<double> &M = Pre->find("M")->Csr;
      std::vector<CooEntry<double>> Delta;
      size_t N = 1 + R.nextBelow(3);
      for (size_t I = 0; I < N; ++I) {
        if (M.nnz() > 0 && R.nextBool(0.4)) {
          // Deletion: negate one stored entry exactly.
          size_t K = R.nextBelow(M.nnz());
          auto RowIt = std::upper_bound(M.Pos.begin(), M.Pos.end(), K);
          Idx Row = static_cast<Idx>(RowIt - M.Pos.begin()) - 1;
          Delta.push_back({Row, M.Crd[K], -M.Val[K]});
        } else {
          Delta.push_back({static_cast<Idx>(R.nextBelow(NR)),
                           static_cast<Idx>(R.nextBelow(NC)),
                           static_cast<double>(nonZeroInt(R))});
        }
      }
      if (R.nextBool(0.15)) {
        // A pair that cancels within the batch itself.
        Idx Rr = static_cast<Idx>(R.nextBelow(NR));
        Idx Cc = static_cast<Idx>(R.nextBelow(NC));
        Delta.push_back({Rr, Cc, 2.0});
        Delta.push_back({Rr, Cc, -2.0});
      }
      for (const CooEntry<double> &E : canonicalizeCoo(Delta))
        NonEmpty = NonEmpty || E.Val != 0.0;
      Cat.appendCsr("M", Delta);
      Drv->onAppendCsr("M", Delta, Pre, Cat.snapshot());
    } else {
      const SparseVector<double> &V = Pre->find("v")->Sparse;
      std::vector<std::pair<Idx, double>> Delta;
      size_t N = 1 + R.nextBelow(3);
      for (size_t I = 0; I < N; ++I) {
        if (V.nnz() > 0 && R.nextBool(0.4)) {
          size_t K = R.nextBelow(V.nnz());
          Delta.emplace_back(V.Crd[K], -V.Val[K]);
        } else {
          Delta.emplace_back(static_cast<Idx>(R.nextBelow(NC)),
                             static_cast<double>(nonZeroInt(R)));
        }
      }
      std::map<Idx, double> Sum;
      for (const auto &[I, X] : Delta)
        Sum[I] += X;
      for (const auto &[I, X] : Sum) {
        (void)I;
        NonEmpty = NonEmpty || X != 0.0;
      }
      Cat.appendSparse("v", Delta);
      Drv->onAppendSparse("v", Delta, Pre, Cat.snapshot());
    }
    return NonEmpty;
  }

  /// The independent oracle: evalT over the live catalog payloads.
  KRelation<F64Semiring> oracle(const std::vector<std::string> &Factors,
                                const Shape &GroupBy, bool *Ok) {
    CatalogSnapshotRef Snap = Cat.snapshot();
    ValueContext<F64Semiring> Ctx;
    for (const std::string &F : Factors) {
      if (Ctx.count(F))
        continue;
      CatalogTensorRef T = Snap->find(F);
      switch (T->K) {
      case CatalogTensor::Kind::Csr:
        Ctx.emplace(F, T->Csr.toKRelation<F64Semiring>(T->Shp[0], T->Shp[1]));
        break;
      case CatalogTensor::Kind::Sparse:
        Ctx.emplace(F, T->Sparse.toKRelation<F64Semiring>(T->Shp[0]));
        break;
      case CatalogTensor::Kind::Dense: {
        KRelation<F64Semiring> Rel({T->Shp[0]});
        for (size_t I = 0; I < T->Dense.Val.size(); ++I)
          if (T->Dense.Val[I] != 0.0)
            Rel.insert({static_cast<Idx>(I)}, T->Dense.Val[I]);
        Ctx.emplace(F, std::move(Rel));
        break;
      }
      }
    }
    TypeContext Ty = typesOf(Ctx);
    std::string Err;
    ExprPtr E;
    for (const std::string &F : Factors)
      E = E ? mulExpand(std::move(E), Expr::var(F), Ty, &Err) : Expr::var(F);
    std::optional<Shape> Shp = E ? inferShape(E, Ty, &Err) : std::nullopt;
    if (!Shp) {
      *Ok = false;
      return KRelation<F64Semiring>();
    }
    for (auto It = Shp->rbegin(); It != Shp->rend(); ++It)
      if (!shapeContains(GroupBy, *It))
        E = Expr::sum(*It, std::move(E));
    *Ok = true;
    return evalT<F64Semiring>(E, Ctx);
  }

  void checkViews(const std::string &When) {
    for (const auto &[Name, Factors] : Views) {
      auto Rd = Drv->read(Name);
      auto Rc = Drv->recompute(Name);
      if (!Rd || !Rc || !Rd->Ok || !Rc->Ok) {
        reportDiv(Rep, Leg + "/view/" + Name,
                  When + ": read/recompute failed: " +
                      (Rd ? Rd->Error : "missing") + " / " +
                      (Rc ? Rc->Error : "missing"));
        continue;
      }
      if (std::memcmp(&Rd->Value, &Rc->Value, sizeof(double)) != 0)
        reportDiv(Rep, Leg + "/view/" + Name,
                  When + ": maintained=" + std::to_string(Rd->Value) +
                      " recomputed=" + std::to_string(Rc->Value));
      if (Rd->Epoch != Cat.epoch())
        reportDiv(Rep, Leg + "/view-epoch/" + Name,
                  When + ": reading at epoch " + std::to_string(Rd->Epoch) +
                      ", catalog at " + std::to_string(Cat.epoch()));
      bool Ok = false;
      KRelation<F64Semiring> Want = oracle(Factors, {}, &Ok);
      if (!Ok) {
        reportDiv(Rep, Leg + "/oracle/" + Name, When + ": oracle untypable");
        continue;
      }
      double WantV = Want.at({});
      if (std::memcmp(&Rd->Value, &WantV, sizeof(double)) != 0)
        reportDiv(Rep, Leg + "/oracle/" + Name,
                  When + ": maintained=" + std::to_string(Rd->Value) +
                      " evalT=" + std::to_string(WantV));
    }

    auto G1 = Drv->readGrouped("gv_rows");
    auto G2 = Drv->recomputeGrouped("gv_rows");
    if (!G1 || !G2) {
      reportDiv(Rep, Leg + "/grouped/gv_rows", When + ": read failed");
    } else {
      if (!G1->equals(*G2))
        reportDiv(Rep, Leg + "/grouped/gv_rows",
                  When + ": maintained=" + G1->toString() +
                      " recomputed=" + G2->toString());
      bool Ok = false;
      KRelation<F64Semiring> Want = oracle({"M", "v"}, {AI}, &Ok);
      if (Ok && !G1->equals(Want))
        reportDiv(Rep, Leg + "/grouped-oracle/gv_rows",
                  When + ": maintained=" + G1->toString() +
                      " evalT=" + Want.toString());
    }

    // Deletion compaction: no payload may carry an explicit zero weight.
    CatalogSnapshotRef Snap = Cat.snapshot();
    for (const char *N : {"M", "v", "u"}) {
      CatalogTensorRef T = Snap->find(N);
      const std::vector<double> &Vals =
          T->K == CatalogTensor::Kind::Csr ? T->Csr.Val : T->Sparse.Val;
      for (double X : Vals)
        if (X == 0.0)
          reportDiv(Rep, Leg + "/zombie-zero/" + std::string(N),
                    When + ": payload stores an explicit zero weight");
    }
  }

  void run() {
    checkViews("after registration");
    size_t NB = 5 + R.nextBelow(4);
    std::map<std::string, int> NonEmptyBatches;
    for (size_t B = 0; B < NB; ++B) {
      std::string Target = B == 0 ? "M" : B == 1 ? "v" : pickTarget();
      if (applyBatch(Target))
        ++NonEmptyBatches[Target];
      checkViews("after batch " + std::to_string(B) + " on " + Target);
    }

    // Retention: after a priming round (the main batches may all have
    // canceled to empty for a tensor, leaving its delta plans unbuilt), a
    // second round of batches on the same tensors must run without a
    // single planner enumeration.
    for (const char *Target : {"M", "v"})
      for (int Try = 0; Try < 8; ++Try) {
        bool NE = applyBatch(Target);
        if (NE)
          ++NonEmptyBatches[Target];
        checkViews(std::string("priming batch on ") + Target);
        if (NE)
          break; // The tensor's delta plans exist now.
      }
    uint64_t Planned = Plans.stats().PlannerRuns;
    for (size_t B = 0; B < 3; ++B) {
      std::string Target = B % 2 == 0 ? "M" : "v";
      if (applyBatch(Target))
        ++NonEmptyBatches[Target];
      checkViews("warm batch " + std::to_string(B) + " on " + Target);
    }
    if (Plans.stats().PlannerRuns != Planned)
      reportDiv(Rep, Leg + "/planner-rerun",
                "warm batches re-ran the planner: " + std::to_string(Planned) +
                    " -> " + std::to_string(Plans.stats().PlannerRuns));
    if (NonEmptyBatches["M"] >= 2 && Drv->stats().DeltaPlanHits == 0)
      reportDiv(Rep, Leg + "/no-plan-hits",
                "repeat batches on M never hit a retained delta plan");
  }

  std::string pickTarget() { return R.nextBool(0.5) ? "M" : "v"; }

  ScenarioFinals finals() {
    ScenarioFinals F;
    for (const auto &[Name, Factors] : Views) {
      (void)Factors;
      auto Rd = Drv->read(Name);
      F.Scalars[Name] = Rd && Rd->Ok
                            ? Rd->Value
                            : std::numeric_limits<double>::quiet_NaN();
    }
    auto G = Drv->readGrouped("gv_rows");
    F.Grouped = G ? G->toString() : "<missing>";
    return F;
  }

  Rng R;
  TensorCatalog Cat;
  PlanCache Plans;
  std::unique_ptr<MaintenanceDriver> Drv;
  std::string Leg;
  FuzzReport &Rep;
  Attr AI, AJ;
  Idx NR = 0, NC = 0;
  std::vector<std::pair<std::string, std::vector<std::string>>> Views;
};

ScenarioFinals runScenario(uint64_t Seed, ExecBackend EB, bool UseNative,
                           const std::string &JitCacheDir,
                           const std::string &LegPrefix, FuzzReport &Rep) {
  Scenario Sc(Seed, EB, UseNative, JitCacheDir, LegPrefix, Rep);
  Sc.run();
  return Sc.finals();
}

} // namespace

FuzzReport etch::runFuzzDelta(const FuzzCase &C, uint64_t BatchSeed) {
  FuzzReport Rep;
  std::string Err;
  if (!fuzzValidate(C, &Err)) {
    Rep.Invalid = true;
    Rep.ValidationError = Err;
    return Rep;
  }
  if (C.SemiringName == "f64")
    runDeltaTyped<F64Semiring>(C, BatchSeed, Rep);
  else if (C.SemiringName == "i64")
    runDeltaTyped<I64Semiring>(C, BatchSeed, Rep);
  else if (C.SemiringName == "bool")
    runDeltaTyped<BoolSemiring>(C, BatchSeed, Rep);
  else if (C.SemiringName == "minplus")
    runDeltaTyped<MinPlusSemiring>(C, BatchSeed, Rep);
  else {
    Rep.Invalid = true;
    Rep.ValidationError = "unknown semiring '" + C.SemiringName + "'";
  }
  return Rep;
}

uint64_t etch::fuzzDeltaBatchSeed(const FuzzCase &C) {
  // FNV-1a over the canonical serialization: stable across processes.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char Ch : serializeCase(C)) {
    H ^= static_cast<unsigned char>(Ch);
    H *= 0x100000001b3ULL;
  }
  return H;
}

FuzzReport etch::runFuzzDeltaDriver(uint64_t Seed, VmBackend Backend,
                                    const std::string &JitCacheDir) {
  FuzzReport Rep;
  switch (Backend) {
  case VmBackend::Tree:
    runScenario(Seed, ExecBackend::Tree, false, JitCacheDir,
                "delta-driver/tree", Rep);
    break;
  case VmBackend::Bytecode:
    runScenario(Seed, ExecBackend::Bytecode, false, JitCacheDir,
                "delta-driver/bytecode", Rep);
    break;
  case VmBackend::Native:
    runScenario(Seed, ExecBackend::Native, true, JitCacheDir,
                "delta-driver/native", Rep);
    break;
  case VmBackend::Both: {
    ScenarioFinals T = runScenario(Seed, ExecBackend::Tree, false, JitCacheDir,
                                   "delta-driver/tree", Rep);
    ScenarioFinals B = runScenario(Seed, ExecBackend::Bytecode, false,
                                   JitCacheDir, "delta-driver/bytecode", Rep);
    for (const auto &[Name, TV] : T.Scalars) {
      auto It = B.Scalars.find(Name);
      if (It == B.Scalars.end() ||
          std::memcmp(&TV, &It->second, sizeof(double)) != 0)
        reportDiv(Rep, "delta-driver/tree-vs-bytecode/" + Name,
                  "tree=" + std::to_string(TV) + " bytecode=" +
                      (It == B.Scalars.end() ? "<missing>"
                                             : std::to_string(It->second)));
    }
    if (T.Grouped != B.Grouped)
      reportDiv(Rep, "delta-driver/tree-vs-bytecode/gv_rows",
                "tree=" + T.Grouped + " bytecode=" + B.Grouped);
    break;
  }
  }
  return Rep;
}

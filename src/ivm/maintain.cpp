//===- ivm/maintain.cpp - Materialized-view maintenance driver ------------===//

#include "ivm/maintain.h"

#include "core/eval.h"
#include "support/assert.h"

#include <algorithm>

using namespace etch;

//===----------------------------------------------------------------------===//
// Delta tensors
//===----------------------------------------------------------------------===//

std::string etch::deltaFactorName(const std::string &Tensor) {
  return Tensor + "__ivm_dlt";
}

CatalogTensorRef
etch::deltaTensorCsr(const CatalogTensor &Base,
                     const std::vector<CooEntry<double>> &Delta) {
  ETCH_ASSERT(Base.K == CatalogTensor::Kind::Csr,
              "csr delta over a non-csr base");
  // canonicalizeCoo sorts, sums duplicates, and drops exact zeros — the
  // same normalization fromCoo applies, so the delta contraction sees the
  // batch exactly as the catalog merge will.
  std::vector<CooEntry<double>> Coo = canonicalizeCoo(Delta);
  if (Coo.empty())
    return nullptr;
  auto T = std::make_shared<CatalogTensor>();
  T->Name = deltaFactorName(Base.Name);
  T->K = CatalogTensor::Kind::Csr;
  // Distinct per batch (the base version advances with every accepted
  // append), so rebindPlan sees a version change and never reuses a prior
  // batch's bound delta.
  T->Version = Base.Version + 1;
  T->Shp = Base.Shp;
  T->Csr = CsrMatrix<double>::fromCoo(Base.Csr.NumRows, Base.Csr.NumCols,
                                      std::move(Coo));
  T->Stats = statsOfCsr(T->Name, T->Csr, Base.Shp[0], Base.Shp[1]);
  return T;
}

CatalogTensorRef
etch::deltaTensorSparse(const CatalogTensor &Base,
                        const std::vector<std::pair<Idx, double>> &Delta) {
  ETCH_ASSERT(Base.K == CatalogTensor::Kind::Sparse,
              "sparse delta over a non-sparse base");
  std::vector<std::pair<Idx, double>> D = Delta;
  std::sort(D.begin(), D.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  SparseVector<double> V(Base.Sparse.Size);
  for (size_t I = 0; I < D.size();) {
    Idx C = D[I].first;
    double X = 0.0;
    for (; I < D.size() && D[I].first == C; ++I)
      X += D[I].second;
    if (X != 0.0)
      V.push(C, X);
  }
  if (V.nnz() == 0)
    return nullptr;
  auto T = std::make_shared<CatalogTensor>();
  T->Name = deltaFactorName(Base.Name);
  T->K = CatalogTensor::Kind::Sparse;
  T->Version = Base.Version + 1; // distinct per batch; see deltaTensorCsr
  T->Shp = Base.Shp;
  T->Stats = statsOfSparseVector(T->Name, V, Base.Shp[0]);
  T->Sparse = std::move(V);
  return T;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

MaintenanceDriver::MaintenanceDriver(TensorCatalog &Catalog, PlanCache &Plans,
                                     IvmOptions O)
    : Catalog(Catalog), Plans(Plans), Opts(std::move(O)) {
  // Retained plans are refreshed by rebinding; a hashed copy would bake a
  // per-nnz probe-table size into the compiled kernel.
  Opts.Prep.AllowHashed = false;
  Opts.Prep.Retain = true;
}

MaintenanceDriver::~MaintenanceDriver() {
  for (const auto &[_, V] : Scalars)
    for (const std::string &K : V.PlanKeys)
      Plans.erase(K);
}

std::string MaintenanceDriver::planKey(const std::string &View,
                                       const std::string &Tag) const {
  return "ivm;view=" + View + ";" + Tag +
         ";opt=" + std::to_string(Opts.Prep.OptLevel) +
         ";native=" + (Opts.Prep.UseNative ? "1" : "0");
}

bool MaintenanceDriver::runFull(ScalarView &V, const CatalogSnapshotRef &Snap,
                                double *Out, std::string *Backend,
                                std::string *Err) {
  std::string Key = planKey(V.Name, "full");
  TensorResolver R = snapshotResolver(Snap);
  CachedPlanRef P = Plans.lookup(Key);
  if (!P) {
    P = prepareContraction(Key, V.Factors, R, Opts.Prep, &Plans, Err);
    if (!P)
      return false;
    P = Plans.insert(P);
    if (std::find(V.PlanKeys.begin(), V.PlanKeys.end(), Key) ==
        V.PlanKeys.end())
      V.PlanKeys.push_back(Key);
  }
  ExecOutcome O = executePlan(*P, Opts.Backend, &R);
  if (!O.Ok) {
    if (Err)
      *Err = O.Error;
    return false;
  }
  *Out = O.Value;
  if (Backend)
    *Backend = O.Backend;
  return true;
}

bool MaintenanceDriver::registerView(const std::string &Name,
                                     std::vector<std::string> Factors,
                                     std::string *Err) {
  if (Factors.empty()) {
    if (Err)
      *Err = "a view needs at least one factor";
    return false;
  }
  std::sort(Factors.begin(), Factors.end());
  for (const std::string &F : Factors)
    if (std::find(Factors.begin(), Factors.end(), deltaFactorName(F)) !=
        Factors.end()) {
      if (Err)
        *Err = "factor '" + F + "' collides with its delta name";
      return false;
    }

  std::lock_guard<std::mutex> L(Mu);
  if (Scalars.count(Name) || Groups.count(Name)) {
    if (Err)
      *Err = "view '" + Name + "' already registered";
    return false;
  }
  ScalarView V;
  V.Name = Name;
  V.Factors = std::move(Factors);
  CatalogSnapshotRef Snap = Catalog.snapshot();
  std::string E;
  if (!runFull(V, Snap, &V.Value, &V.Backend, &E)) {
    for (const std::string &K : V.PlanKeys)
      Plans.erase(K);
    if (Err)
      *Err = E;
    return false;
  }
  V.Ok = true;
  V.Epoch = Snap->epoch();
  ++Stats.FullRecomputes;
  ++Stats.ScalarViews;
  Scalars.emplace(Name, std::move(V));
  return true;
}

bool MaintenanceDriver::buildGrouped(Grouped &G,
                                     const CatalogSnapshotRef &Snap,
                                     std::string *Err) {
  TypeContext Ctx;
  ValueContext<F64Semiring> Vals;
  for (const std::string &F : G.Factors) {
    if (Vals.count(F))
      continue;
    CatalogTensorRef T = Snap->find(F);
    if (!T) {
      if (Err)
        *Err = "unknown tensor '" + F + "'";
      return false;
    }
    Ctx[F] = T->Shp;
    switch (T->K) {
    case CatalogTensor::Kind::Csr:
      Vals[F] = T->Csr.toKRelation<F64Semiring>(T->Shp[0], T->Shp[1]);
      break;
    case CatalogTensor::Kind::Sparse:
      Vals[F] = T->Sparse.toKRelation<F64Semiring>(T->Shp[0]);
      break;
    case CatalogTensor::Kind::Dense: {
      KRelation<F64Semiring> R(T->Shp);
      for (Idx I = 0; I < T->Dense.Size; ++I)
        if (T->Dense.Val[static_cast<size_t>(I)] != 0.0)
          R.insert({I}, T->Dense.Val[static_cast<size_t>(I)]);
      Vals[F] = std::move(R);
      break;
    }
    }
  }

  ExprPtr Prod;
  for (const std::string &F : G.Factors) {
    ExprPtr V = Expr::var(F);
    Prod = Prod ? mulExpand(std::move(Prod), std::move(V), Ctx, Err)
                : std::move(V);
    if (!Prod)
      return false;
  }
  std::optional<Shape> Shp = inferShape(Prod, Ctx, Err);
  if (!Shp)
    return false;
  for (Attr A : G.GroupBy)
    if (!shapeContains(*Shp, A)) {
      if (Err)
        *Err = "group-by attribute " + A.name() +
               " does not occur in the view's factors";
      return false;
    }
  ExprPtr E = std::move(Prod);
  for (Attr A : *Shp)
    if (!shapeContains(G.GroupBy, A))
      E = Expr::sum(A, std::move(E));
  G.View = GroupedView<F64Semiring>(std::move(E), std::move(Vals));
  return true;
}

bool MaintenanceDriver::registerGroupedView(const std::string &Name,
                                            std::vector<std::string> Factors,
                                            const Shape &GroupBy,
                                            std::string *Err) {
  if (Factors.empty()) {
    if (Err)
      *Err = "a view needs at least one factor";
    return false;
  }
  std::sort(Factors.begin(), Factors.end());
  std::lock_guard<std::mutex> L(Mu);
  if (Scalars.count(Name) || Groups.count(Name)) {
    if (Err)
      *Err = "view '" + Name + "' already registered";
    return false;
  }
  Grouped G;
  G.Name = Name;
  G.Factors = std::move(Factors);
  G.GroupBy = GroupBy;
  if (!buildGrouped(G, Catalog.snapshot(), Err))
    return false;
  G.Ok = true;
  ++Stats.FullRecomputes;
  ++Stats.GroupedViews;
  Groups.emplace(Name, std::move(G));
  return true;
}

bool MaintenanceDriver::unregister(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Scalars.find(Name);
  if (It != Scalars.end()) {
    for (const std::string &K : It->second.PlanKeys)
      Plans.erase(K);
    Scalars.erase(It);
    --Stats.ScalarViews;
    return true;
  }
  if (Groups.erase(Name)) {
    --Stats.GroupedViews;
    return true;
  }
  return false;
}

std::vector<std::string> MaintenanceDriver::viewNames() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<std::string> Out;
  for (const auto &[N, _] : Scalars)
    Out.push_back(N);
  for (const auto &[N, _] : Groups)
    Out.push_back(N);
  return Out;
}

std::optional<ViewReading>
MaintenanceDriver::read(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Scalars.find(Name);
  if (It == Scalars.end())
    return std::nullopt;
  const ScalarView &V = It->second;
  ViewReading R;
  R.Ok = V.Ok;
  R.Error = V.Error;
  R.Name = V.Name;
  R.Value = V.Value;
  R.Epoch = V.Epoch;
  R.Backend = V.Backend;
  return R;
}

std::optional<KRelation<F64Semiring>>
MaintenanceDriver::readGrouped(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Groups.find(Name);
  if (It == Groups.end() || !It->second.Ok)
    return std::nullopt;
  return It->second.View.value();
}

std::optional<ViewReading>
MaintenanceDriver::recompute(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Scalars.find(Name);
  if (It == Scalars.end())
    return std::nullopt;
  ScalarView &V = It->second;
  CatalogSnapshotRef Snap = Catalog.snapshot();
  ViewReading R;
  R.Name = Name;
  R.Epoch = Snap->epoch();
  std::string E;
  double Out = 0.0;
  if (!runFull(V, Snap, &Out, &R.Backend, &E)) {
    R.Error = E;
    return R;
  }
  ++Stats.FullRecomputes;
  R.Ok = true;
  R.Value = Out;
  return R;
}

std::optional<KRelation<F64Semiring>>
MaintenanceDriver::recomputeGrouped(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Groups.find(Name);
  if (It == Groups.end() || !It->second.Ok)
    return std::nullopt;
  return It->second.View.recompute();
}

//===----------------------------------------------------------------------===//
// Refresh
//===----------------------------------------------------------------------===//

namespace {

/// C(k, m) for the binomial expansion of a k-fold factor occurrence;
/// exact in double for every k a planner-admissible query can have.
double binomial(size_t K, size_t M) {
  double C = 1.0;
  for (size_t I = 0; I < M; ++I)
    C = C * static_cast<double>(K - I) / static_cast<double>(I + 1);
  return C;
}

} // namespace

void MaintenanceDriver::refreshScalar(ScalarView &V, const std::string &Tensor,
                                      const CatalogTensorRef &DeltaT,
                                      const CatalogSnapshotRef &Pre,
                                      const CatalogSnapshotRef &Post) {
  size_t K = static_cast<size_t>(
      std::count(V.Factors.begin(), V.Factors.end(), Tensor));
  ETCH_ASSERT(K > 0, "refresh routed to a view without the factor");

  // Old occurrences bind the *pre-append* payloads: the stored value is
  // Σ A^k·…, and the delta terms rebuild Σ (A+Δ)^k·… - Σ A^k·… from A.
  const std::string DName = DeltaT->Name;
  TensorResolver R = [&](const std::string &N) -> CatalogTensorRef {
    if (N == DName)
      return DeltaT;
    return Pre->find(N);
  };

  double Acc = 0.0;
  for (size_t M = 1; M <= K; ++M) {
    // Factor list for the m-delta term: replace m occurrences of the
    // tensor with the synthetic delta factor.
    std::vector<std::string> Factors = V.Factors;
    size_t Replaced = 0;
    for (auto It = Factors.rbegin(); It != Factors.rend() && Replaced < M;
         ++It)
      if (*It == Tensor) {
        *It = DName;
        ++Replaced;
      }
    std::string Key =
        planKey(V.Name, "t=" + Tensor + ";m=" + std::to_string(M));
    CachedPlanRef P = Plans.lookup(Key);
    if (!P) {
      std::string Err;
      P = prepareContraction(Key, Factors, R, Opts.Prep, &Plans, &Err);
      if (!P) {
        V.Ok = false;
        V.Error = "delta plan failed: " + Err;
        return;
      }
      P = Plans.insert(P);
      if (std::find(V.PlanKeys.begin(), V.PlanKeys.end(), Key) ==
          V.PlanKeys.end())
        V.PlanKeys.push_back(Key);
      ++Stats.DeltaPlanBuilds;
    } else {
      ++Stats.DeltaPlanHits;
    }
    ExecOutcome O = executePlan(*P, Opts.Backend, &R);
    if (!O.Ok) {
      V.Ok = false;
      V.Error = "delta refresh failed: " + O.Error;
      return;
    }
    Acc += binomial(K, M) * O.Value;
    V.Backend = O.Backend;
  }
  V.Value += Acc;
  V.Epoch = Post->epoch();
  ++Stats.DeltaRefreshes;
}

void MaintenanceDriver::replaceScalar(ScalarView &V,
                                      const CatalogSnapshotRef &Post) {
  // A wholesale replacement may have changed extents or storage kinds —
  // drop the view's retained plans and rebuild from scratch.
  for (const std::string &K : V.PlanKeys)
    Plans.erase(K);
  V.PlanKeys.clear();
  std::string E;
  double Out = 0.0;
  if (!runFull(V, Post, &Out, &V.Backend, &E)) {
    V.Ok = false;
    V.Error = E;
    return;
  }
  V.Ok = true;
  V.Error.clear();
  V.Value = Out;
  V.Epoch = Post->epoch();
  ++Stats.FullRecomputes;
}

void MaintenanceDriver::onBatch(const std::string &Name,
                                const CatalogTensorRef &DeltaT,
                                const KRelation<F64Semiring> &DeltaRel,
                                const CatalogSnapshotRef &Pre,
                                const CatalogSnapshotRef &Post) {
  std::lock_guard<std::mutex> L(Mu);
  ++Stats.Batches;
  if (!DeltaT) {
    // The batch cancelled to nothing; views only advance their epoch.
    ++Stats.EmptyBatches;
    for (auto &[_, V] : Scalars)
      if (V.Ok)
        V.Epoch = Post->epoch();
    return;
  }
  for (auto &[_, V] : Scalars) {
    if (!V.Ok)
      continue;
    if (std::find(V.Factors.begin(), V.Factors.end(), Name) !=
        V.Factors.end())
      refreshScalar(V, Name, DeltaT, Pre, Post);
    else
      // A batch a view does not read still leaves its value current at
      // the new epoch — readings stay snapshot-consistent.
      V.Epoch = Post->epoch();
  }
  for (auto &[_, G] : Groups)
    if (G.Ok && std::find(G.Factors.begin(), G.Factors.end(), Name) !=
                    G.Factors.end()) {
      G.View.applyDelta(Name, DeltaRel);
      ++Stats.GroupedRefreshes;
    }
}

void MaintenanceDriver::onAppendCsr(const std::string &Name,
                                    const std::vector<CooEntry<double>> &Delta,
                                    const CatalogSnapshotRef &Pre,
                                    const CatalogSnapshotRef &Post) {
  CatalogTensorRef Base = Pre->find(Name);
  if (!Base || Base->K != CatalogTensor::Kind::Csr)
    return; // The catalog rejected the append; nothing changed.
  CatalogTensorRef DeltaT = deltaTensorCsr(*Base, Delta);
  KRelation<F64Semiring> Rel(Base->Shp);
  if (DeltaT)
    Rel = DeltaT->Csr.toKRelation<F64Semiring>(Base->Shp[0], Base->Shp[1]);
  onBatch(Name, DeltaT, Rel, Pre, Post);
}

void MaintenanceDriver::onAppendSparse(
    const std::string &Name, const std::vector<std::pair<Idx, double>> &Delta,
    const CatalogSnapshotRef &Pre, const CatalogSnapshotRef &Post) {
  CatalogTensorRef Base = Pre->find(Name);
  if (!Base || Base->K != CatalogTensor::Kind::Sparse)
    return;
  CatalogTensorRef DeltaT = deltaTensorSparse(*Base, Delta);
  KRelation<F64Semiring> Rel(Base->Shp);
  if (DeltaT)
    Rel = DeltaT->Sparse.toKRelation<F64Semiring>(Base->Shp[0]);
  onBatch(Name, DeltaT, Rel, Pre, Post);
}

void MaintenanceDriver::onReplace(const std::string &Name,
                                  const CatalogSnapshotRef &Post) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &[_, V] : Scalars)
    if (std::find(V.Factors.begin(), V.Factors.end(), Name) !=
        V.Factors.end())
      replaceScalar(V, Post);
  for (auto &[_, G] : Groups)
    if (std::find(G.Factors.begin(), G.Factors.end(), Name) !=
        G.Factors.end()) {
      std::string Err;
      if (buildGrouped(G, Post, &Err)) {
        G.Ok = true;
        G.Error.clear();
      } else {
        G.Ok = false;
        G.Error = Err;
      }
      ++Stats.FullRecomputes;
    }
}

void MaintenanceDriver::onErase(const std::string &Name,
                                const CatalogSnapshotRef &Post) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &[_, V] : Scalars)
    if (std::find(V.Factors.begin(), V.Factors.end(), Name) !=
        V.Factors.end()) {
      V.Ok = false;
      V.Error = "factor '" + Name + "' was erased";
      V.Epoch = Post->epoch();
    }
  for (auto &[_, G] : Groups)
    if (std::find(G.Factors.begin(), G.Factors.end(), Name) !=
        G.Factors.end()) {
      G.Ok = false;
      G.Error = "factor '" + Name + "' was erased";
    }
}

MaintainStats MaintenanceDriver::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

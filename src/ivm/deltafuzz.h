//===- ivm/deltafuzz.h - Fuzzing the incremental-maintenance path -*-C++-*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `etch-fuzz --delta` leg: differential fuzzing of incremental view
/// maintenance against full recomputation, in two layers.
///
///   - `runFuzzDelta` checks the delta-rewrite identity (ivm/delta.h) on
///     an arbitrary generated case, at the K-relation layer: for every
///     tensor `t` of the case it derives a random batch Δ_t (appends in
///     every semiring; exact deletions where the semiring is a ring) and
///     requires `T[e](Ctx[t := A+Δ]) == T[e](Ctx) + δ_t[e](Ctx, Δ)`
///     *exactly*, plus `GroupedView::applyDelta` against its own
///     `recompute`. Exactness is sound because the generator draws dyadic
///     values of bounded magnitude — the sides agree as reals, hence
///     bit-for-bit.
///
///   - `runFuzzDeltaDriver` runs a seeded random scenario through the
///     real serving stack — `TensorCatalog` merge-appends, retained
///     `PlanCache` delta plans, `MaintenanceDriver` scalar and grouped
///     views — applying random append/delete batches (integer-valued f64
///     data) and holding every stored view bit-identical to (a) the
///     driver's own planner-free recomputation and (b) an independent
///     `evalT` oracle over the live catalog payloads. It also checks that
///     no payload carries a zero weight (deletion compaction) and that a
///     repeat round of batches runs without any planner enumeration
///     (plan retention). `VmBackend::Both` runs the scenario under the
///     tree and bytecode executors and cross-checks the two bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_IVM_DELTAFUZZ_H
#define ETCH_IVM_DELTAFUZZ_H

#include "fuzz/exec.h"
#include "fuzz/fuzzcase.h"

#include <cstdint>
#include <string>

namespace etch {

/// The K-relation-layer delta-identity matrix on \p C. \p BatchSeed
/// derives the per-tensor batches; equal seeds yield equal batches, so a
/// corpus case replays deterministically.
FuzzReport runFuzzDelta(const FuzzCase &C, uint64_t BatchSeed);

/// A deterministic batch seed for \p C, stable across processes (a hash
/// of the serialized case) — what replay uses when no seed is recorded.
uint64_t fuzzDeltaBatchSeed(const FuzzCase &C);

/// The serve-stack scenario for \p Seed under \p Backend. \p JitCacheDir
/// overrides the JIT kernel cache for the native executor (callers verify
/// toolchain availability first; a per-plan compile failure is reported
/// as a divergence, never silently degraded).
FuzzReport runFuzzDeltaDriver(uint64_t Seed, VmBackend Backend,
                              const std::string &JitCacheDir = "");

} // namespace etch

#endif // ETCH_IVM_DELTAFUZZ_H

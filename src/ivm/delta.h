//===- ivm/delta.h - Delta K-relations for incremental views ---*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algebraic core of incremental view maintenance. A batch of appends
/// (or, in ring semirings, deletions encoded as negative weights) is
/// itself a K-relation Δ, and distributivity gives the delta-rewrite
/// identity for every contraction expression `e` and variable `t`:
///
///   T[e](Ctx[t := A + Δ]) = T[e](Ctx) + δ_t[e](Ctx, Δ)
///
/// where the delta transform δ is structural on the expression:
///
///   δ_t[v]       = Δ if v == t, else 0            (zero of v's shape)
///   δ_t[a + b]   = δ_t[a] + δ_t[b]
///   δ_t[a · b]   = δ_t[a]·T[b] + T[a]·δ_t[b] + δ_t[a]·δ_t[b]
///   δ_t[Σ_x a]   = Σ_x δ_t[a]
///   δ_t[↑_x a]   = ↑_x δ_t[a]
///   δ_t[ρ a]     = ρ δ_t[a]
///
/// The product rule's cross term makes repeated occurrences of `t` exact:
/// expanding `(A+Δ)·(A+Δ)` yields `A·A + (Δ·A + A·Δ + Δ·Δ)` — the
/// parenthesized tail is precisely δ. The identity holds in *every*
/// semiring (it only uses distributivity and commutativity of +), so
/// append-only maintenance works even where subtraction does not exist;
/// *deletions* additionally require additive inverses, i.e. a ring
/// semiring (`semiringHasNegation`). Exact cancellation to the semiring
/// zero is compacted away by `KRelation::pruneZeros`, so maintained
/// relations never accumulate zombie zero-weight tuples.
///
/// Bit-identity caveat: over f64 the identity is exact only when no
/// intermediate rounds (e.g. dyadic-rational inputs of bounded magnitude,
/// as the fuzzer generates); with rounding the two sides are equal as real
/// numbers but may differ in the last ulp. The IVM oracle suite and fuzz
/// leg therefore generate exact-valued data.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_IVM_DELTA_H
#define ETCH_IVM_DELTA_H

#include "core/eval.h"
#include "core/expr.h"
#include "core/krelation.h"
#include "core/semiring.h"
#include "support/assert.h"

#include <string>

namespace etch {

/// True when the semiring has additive inverses (is a ring in +), which is
/// what deletion-as-negative-weight requires: only then can a stored
/// weight be driven back to zero by appending more weight. (min,+), (max,×)
/// and bool are idempotent/absorbing in + and support append-only
/// maintenance.
template <Semiring S> constexpr bool semiringHasNegation() { return false; }
template <> constexpr bool semiringHasNegation<F64Semiring>() { return true; }
template <> constexpr bool semiringHasNegation<I64Semiring>() { return true; }

/// The additive inverse, for ring semirings only.
template <Semiring S>
KRelation<S> negateRelation(const KRelation<S> &R) {
  static_assert(semiringHasNegation<S>(),
                "negation requires a ring semiring");
  KRelation<S> Out(R.shape(), R.denseAttrs());
  for (const auto &[T, V] : R.entries())
    Out.insert(T, -V);
  return Out;
}

/// δ_t[E]: the change of `evalT(E, Ctx)` caused by replacing the binding
/// of \p Var with `Ctx[Var] + Delta`. \p Delta must have the same shape
/// (full and dense parts) as `Ctx.at(Var)`. Recomputes base values of
/// subtrees on demand — this is the *oracle* of the IVM subsystem, sized
/// for tests and fuzzing, not for production data.
template <Semiring S>
KRelation<S> evalDeltaT(const ExprPtr &E, const ValueContext<S> &Ctx,
                        const std::string &Var, const KRelation<S> &Delta) {
  switch (E->kind()) {
  case ExprKind::Var: {
    const KRelation<S> &Base = Ctx.at(E->varName());
    if (E->varName() == Var) {
      ETCH_ASSERT(Base.shape() == Delta.shape() &&
                      Base.denseAttrs() == Delta.denseAttrs(),
                  "delta shape must match the base relation");
      return Delta;
    }
    return KRelation<S>(Base.shape(), Base.denseAttrs());
  }
  case ExprKind::Add:
    return evalDeltaT(E->lhs(), Ctx, Var, Delta)
        .add(evalDeltaT(E->rhs(), Ctx, Var, Delta));
  case ExprKind::Mul: {
    // Product rule with the cross term: (A+Δa)(B+Δb) - A·B
    //   = Δa·B + A·Δb + Δa·Δb.
    KRelation<S> DA = evalDeltaT(E->lhs(), Ctx, Var, Delta);
    KRelation<S> DB = evalDeltaT(E->rhs(), Ctx, Var, Delta);
    KRelation<S> A = evalT(E->lhs(), Ctx);
    KRelation<S> B = evalT(E->rhs(), Ctx);
    return DA.mul(B).add(A.mul(DB)).add(DA.mul(DB));
  }
  case ExprKind::Sum:
    return evalDeltaT(E->lhs(), Ctx, Var, Delta).contract(E->attr());
  case ExprKind::Expand:
    return evalDeltaT(E->lhs(), Ctx, Var, Delta).expand(E->attr());
  case ExprKind::Rename:
    return evalDeltaT(E->lhs(), Ctx, Var, Delta).rename(E->mapping());
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

/// A materialized relation-valued view over a `ValueContext` — the
/// K-relation-level maintenance engine behind group-by views (contract
/// only some attributes; the survivors are the grouping keys). Holds the
/// base bindings and the current view value; `applyDelta` folds one batch
/// into both using the delta-rewrite identity, with zero-weight
/// compaction via `KRelation::add`'s pruning.
template <Semiring S> class GroupedView {
public:
  GroupedView() = default;
  GroupedView(ExprPtr E, ValueContext<S> Base)
      : E(std::move(E)), Base(std::move(Base)),
        Value(evalT(this->E, this->Base)), Refreshes(0) {}

  const KRelation<S> &value() const { return Value; }
  const ValueContext<S> &bindings() const { return Base; }
  const ExprPtr &expr() const { return E; }
  uint64_t refreshes() const { return Refreshes; }

  /// Applies one delta batch to \p Var: the view gains δ_t[E], the base
  /// binding gains Δ. Deltas with entries the + of S cannot cancel are
  /// always legal; exact cancellations are pruned on merge.
  void applyDelta(const std::string &Var, const KRelation<S> &Delta) {
    Value = Value.add(evalDeltaT(E, Base, Var, Delta));
    auto It = Base.find(Var);
    ETCH_ASSERT(It != Base.end(), "delta over an unbound variable");
    It->second = It->second.add(Delta);
    ++Refreshes;
  }

  /// Full recomputation from the current base — the oracle the tests hold
  /// `value()` bit-identical to.
  KRelation<S> recompute() const { return evalT(E, Base); }

private:
  ExprPtr E;
  ValueContext<S> Base;
  KRelation<S> Value;
  uint64_t Refreshes = 0;
};

} // namespace etch

#endif // ETCH_IVM_DELTA_H

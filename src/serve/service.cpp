//===- serve/service.cpp - Concurrent contraction service -----------------===//

#include "serve/service.h"

#include "support/assert.h"

#include <algorithm>

using namespace etch;

ContractionService::ContractionService(ServeOptions O)
    : Opts(std::move(O)), Plans(Opts.PlanCacheCap), Exec(Opts.Threads) {
  IvmOptions IO;
  IO.Prep.OptLevel = Opts.OptLevel;
  IO.Prep.UseNative = Opts.UseNative;
  IO.Prep.JitCacheDir = Opts.JitCacheDir;
  Views = std::make_unique<MaintenanceDriver>(Catalog, Plans, std::move(IO));
}

//===----------------------------------------------------------------------===//
// Write-through mutations
//===----------------------------------------------------------------------===//

uint64_t ContractionService::loadCsr(const std::string &Name,
                                     CsrMatrix<double> M, Attr Row,
                                     Attr Col) {
  std::lock_guard<std::mutex> W(WriteMu);
  uint64_t E = Catalog.putCsr(Name, std::move(M), Row, Col);
  Plans.invalidateTensor(Name);
  Views->onReplace(Name, Catalog.snapshot());
  return E;
}

uint64_t ContractionService::loadSparse(const std::string &Name,
                                        SparseVector<double> V, Attr A) {
  std::lock_guard<std::mutex> W(WriteMu);
  uint64_t E = Catalog.putSparse(Name, std::move(V), A);
  Plans.invalidateTensor(Name);
  Views->onReplace(Name, Catalog.snapshot());
  return E;
}

uint64_t ContractionService::loadDense(const std::string &Name,
                                       DenseVector<double> V, Attr A) {
  std::lock_guard<std::mutex> W(WriteMu);
  uint64_t E = Catalog.putDense(Name, std::move(V), A);
  Plans.invalidateTensor(Name);
  Views->onReplace(Name, Catalog.snapshot());
  return E;
}

uint64_t
ContractionService::appendCsrLocked(const std::string &Name,
                                    const std::vector<CooEntry<double>> &Delta) {
  CatalogSnapshotRef Pre = Catalog.snapshot();
  uint64_t E = Catalog.appendCsr(Name, Delta);
  if (E) {
    Plans.invalidateTensor(Name);
    Views->onAppendCsr(Name, Delta, Pre, Catalog.snapshot());
  }
  return E;
}

uint64_t ContractionService::appendSparseLocked(
    const std::string &Name,
    const std::vector<std::pair<Idx, double>> &Delta) {
  CatalogSnapshotRef Pre = Catalog.snapshot();
  uint64_t E = Catalog.appendSparse(Name, Delta);
  if (E) {
    Plans.invalidateTensor(Name);
    Views->onAppendSparse(Name, Delta, Pre, Catalog.snapshot());
  }
  return E;
}

uint64_t
ContractionService::appendCsr(const std::string &Name,
                              const std::vector<CooEntry<double>> &Delta) {
  std::lock_guard<std::mutex> W(WriteMu);
  return appendCsrLocked(Name, Delta);
}

uint64_t ContractionService::appendSparse(
    const std::string &Name,
    const std::vector<std::pair<Idx, double>> &Delta) {
  std::lock_guard<std::mutex> W(WriteMu);
  return appendSparseLocked(Name, Delta);
}

uint64_t
ContractionService::deleteCsr(const std::string &Name,
                              const std::vector<std::pair<Idx, Idx>> &Coords) {
  std::lock_guard<std::mutex> W(WriteMu);
  CatalogTensorRef T = Catalog.snapshot()->find(Name);
  if (!T || T->K != CatalogTensor::Kind::Csr)
    return 0;
  std::vector<CooEntry<double>> Delta;
  for (const auto &[R, C] : Coords) {
    if (R < 0 || R >= T->Csr.NumRows)
      continue;
    for (size_t Q = T->Csr.Pos[static_cast<size_t>(R)];
         Q < T->Csr.Pos[static_cast<size_t>(R) + 1]; ++Q)
      if (T->Csr.Crd[Q] == C) {
        Delta.push_back({R, C, -T->Csr.Val[Q]});
        break;
      }
  }
  if (Delta.empty())
    return T->Version;
  return appendCsrLocked(Name, Delta);
}

uint64_t ContractionService::deleteSparse(const std::string &Name,
                                          const std::vector<Idx> &Coords) {
  std::lock_guard<std::mutex> W(WriteMu);
  CatalogTensorRef T = Catalog.snapshot()->find(Name);
  if (!T || T->K != CatalogTensor::Kind::Sparse)
    return 0;
  std::vector<std::pair<Idx, double>> Delta;
  for (Idx C : Coords) {
    auto It = std::lower_bound(T->Sparse.Crd.begin(), T->Sparse.Crd.end(), C);
    if (It != T->Sparse.Crd.end() && *It == C)
      Delta.emplace_back(
          C, -T->Sparse.Val[static_cast<size_t>(It - T->Sparse.Crd.begin())]);
  }
  if (Delta.empty())
    return T->Version;
  return appendSparseLocked(Name, Delta);
}

//===----------------------------------------------------------------------===//
// Views
//===----------------------------------------------------------------------===//

bool ContractionService::registerView(const std::string &Name,
                                      const ServeQuery &Q, std::string *Err) {
  std::lock_guard<std::mutex> W(WriteMu);
  return Views->registerView(Name, Q.Tensors, Err);
}

std::optional<ViewReading>
ContractionService::readView(const std::string &Name) const {
  return Views->read(Name);
}

bool ContractionService::unregisterView(const std::string &Name) {
  std::lock_guard<std::mutex> W(WriteMu);
  return Views->unregister(Name);
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

std::optional<std::string>
ContractionService::makeKey(const ServeQuery &Q, const CatalogSnapshot &Snap,
                            std::string *Err) const {
  if (Q.Tensors.empty()) {
    if (Err)
      *Err = "empty query";
    return std::nullopt;
  }
  // Canonical factor order: f64 multiplication commutes bit-exactly, so
  // permuted requests may share one plan and one admission flight.
  std::vector<std::string> Names = Q.Tensors;
  std::sort(Names.begin(), Names.end());

  std::string K = "alg=f64;opt=" + std::to_string(Opts.OptLevel) +
                  ";native=" + (Opts.UseNative ? "1" : "0");
  for (const std::string &Name : Names) {
    CatalogTensorRef T = Snap.find(Name);
    if (!T) {
      if (Err)
        *Err = "unknown tensor '" + Name + "'";
      return std::nullopt;
    }
    // The version pins data, stats, and extents; shape and per-level
    // storage kinds are spelled out so the key reads as the query shape
    // plus per-factor format selection.
    K += "|" + Name + "@v" + std::to_string(T->Version) + "#k" +
         std::to_string(static_cast<int>(T->K));
    for (size_t L = 0; L < T->Stats.Levels.size(); ++L) {
      const LevelStat &LS = T->Stats.Levels[L];
      K += ":" + LS.A.name() + "/" + std::to_string(LS.Extent) + "/f" +
           std::to_string(static_cast<int>(LS.Kind));
    }
  }
  return K;
}

//===----------------------------------------------------------------------===//
// Planning + compilation (the miss path)
//===----------------------------------------------------------------------===//

CachedPlanRef ContractionService::planAndCompile(const std::string &Key,
                                                 const ServeQuery &Q,
                                                 const CatalogSnapshotRef &Snap,
                                                 std::string *Err) {
  std::vector<std::string> Names = Q.Tensors;
  std::sort(Names.begin(), Names.end());
  PrepareOptions PO;
  PO.AllowHashed = Opts.AllowHashed;
  PO.OptLevel = Opts.OptLevel;
  PO.UseNative = Opts.UseNative;
  PO.JitCacheDir = Opts.JitCacheDir;
  return prepareContraction(Key, Names, snapshotResolver(Snap), PO, &Plans,
                            Err);
}

//===----------------------------------------------------------------------===//
// Execution + admission
//===----------------------------------------------------------------------===//

ServeResult ContractionService::execute(const std::string &Key,
                                        const ServeQuery &Q,
                                        const CatalogSnapshotRef &Snap) {
  ServeResult R;
  R.Epoch = Snap->epoch();

  CachedPlanRef P = Plans.lookup(Key);
  R.PlanCacheHit = P != nullptr;
  if (!P) {
    std::string Err;
    P = planAndCompile(Key, Q, Snap, &Err);
    if (!P) {
      R.Error = Err;
      return R;
    }
    P = Plans.insert(P);
  }

  ExecOutcome O = executePlan(*P);
  if (!O.Ok) {
    R.Error = O.Error;
    return R;
  }
  R.Value = O.Value;
  R.Backend = O.Backend;
  R.Ok = true;
  {
    std::lock_guard<std::mutex> SL(StatMu);
    ++Stats.Executions;
    if (R.Backend == "native")
      ++Stats.NativeRuns;
    else
      ++Stats.BytecodeRuns;
  }
  return R;
}

ServeResult ContractionService::admit(const ServeQuery &Q,
                                      const CatalogSnapshotRef &Snap) {
  {
    std::lock_guard<std::mutex> SL(StatMu);
    ++Stats.Queries;
  }
  std::string KeyErr;
  std::optional<std::string> Key = makeKey(Q, *Snap, &KeyErr);
  if (!Key) {
    ServeResult R;
    R.Epoch = Snap->epoch();
    R.Error = KeyErr;
    return R;
  }

  std::shared_ptr<Flight> F;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> L(AdmMu);
    auto It = Inflight.find(*Key);
    if (It != Inflight.end()) {
      F = It->second;
    } else {
      F = std::make_shared<Flight>();
      Inflight.emplace(*Key, F);
      Leader = true;
    }
  }

  if (!Leader) {
    // Ride the in-flight execution: identical key means identical tensor
    // versions, so the leader's result is this request's result.
    std::unique_lock<std::mutex> L(F->Mu);
    F->Cv.wait(L, [&] { return F->Done; });
    ServeResult R = F->R;
    R.Coalesced = true;
    std::lock_guard<std::mutex> SL(StatMu);
    ++Stats.Coalesced;
    return R;
  }

  ServeResult R = execute(*Key, Q, Snap);
  {
    // Retire the flight before publishing: arrivals from here on start a
    // fresh execution instead of joining a completed one.
    std::lock_guard<std::mutex> L(AdmMu);
    Inflight.erase(*Key);
  }
  {
    std::lock_guard<std::mutex> L(F->Mu);
    F->R = R;
    F->Done = true;
  }
  F->Cv.notify_all();
  return R;
}

ServeResult ContractionService::query(const ServeQuery &Q) {
  return admit(Q, Catalog.snapshot());
}

ServeResult ContractionService::query(const ServeQuery &Q,
                                      const CatalogSnapshotRef &Snap) {
  ETCH_ASSERT(Snap, "null snapshot");
  return admit(Q, Snap);
}

std::vector<ServeResult>
ContractionService::queryBatch(const std::vector<ServeQuery> &Qs) {
  CatalogSnapshotRef Snap = Catalog.snapshot();
  std::vector<ServeResult> Out(Qs.size());

  // Group identical queries: one dispatch per group, results fanned back
  // out. Keys also dedupe against concurrent query() callers via admit().
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Qs.size(); ++I) {
    std::string KeyErr;
    std::optional<std::string> Key = makeKey(Qs[I], *Snap, &KeyErr);
    if (!Key) {
      Out[I].Epoch = Snap->epoch();
      Out[I].Error = KeyErr;
      std::lock_guard<std::mutex> SL(StatMu);
      ++Stats.Queries;
      continue;
    }
    Groups[*Key].push_back(I);
  }

  std::vector<const std::vector<size_t> *> Work;
  Work.reserve(Groups.size());
  for (const auto &[_, Idxs] : Groups)
    Work.push_back(&Idxs);

  Exec.parallelFor(Work.size(), [&](size_t G) {
    const std::vector<size_t> &Idxs = *Work[G];
    ServeResult R = admit(Qs[Idxs.front()], Snap);
    Out[Idxs.front()] = R;
    for (size_t J = 1; J < Idxs.size(); ++J) {
      Out[Idxs[J]] = R;
      Out[Idxs[J]].Coalesced = true;
    }
    if (Idxs.size() > 1) {
      std::lock_guard<std::mutex> SL(StatMu);
      Stats.Queries += Idxs.size() - 1;
      Stats.Coalesced += Idxs.size() - 1;
    }
  });
  return Out;
}

ServiceStats ContractionService::stats() const {
  std::lock_guard<std::mutex> SL(StatMu);
  return Stats;
}

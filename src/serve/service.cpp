//===- serve/service.cpp - Concurrent contraction service -----------------===//

#include "serve/service.h"

#include "compiler/frontend.h"
#include "planner/plan.h"
#include "support/assert.h"

#include <algorithm>

using namespace etch;

ContractionService::ContractionService(ServeOptions O)
    : Opts(std::move(O)), Plans(Opts.PlanCacheCap), Exec(Opts.Threads) {}

//===----------------------------------------------------------------------===//
// Write-through mutations
//===----------------------------------------------------------------------===//

uint64_t ContractionService::loadCsr(const std::string &Name,
                                     CsrMatrix<double> M, Attr Row,
                                     Attr Col) {
  uint64_t E = Catalog.putCsr(Name, std::move(M), Row, Col);
  Plans.invalidateTensor(Name);
  return E;
}

uint64_t ContractionService::loadSparse(const std::string &Name,
                                        SparseVector<double> V, Attr A) {
  uint64_t E = Catalog.putSparse(Name, std::move(V), A);
  Plans.invalidateTensor(Name);
  return E;
}

uint64_t ContractionService::loadDense(const std::string &Name,
                                       DenseVector<double> V, Attr A) {
  uint64_t E = Catalog.putDense(Name, std::move(V), A);
  Plans.invalidateTensor(Name);
  return E;
}

uint64_t
ContractionService::appendCsr(const std::string &Name,
                              const std::vector<CooEntry<double>> &Delta) {
  uint64_t E = Catalog.appendCsr(Name, Delta);
  if (E)
    Plans.invalidateTensor(Name);
  return E;
}

uint64_t ContractionService::appendSparse(
    const std::string &Name,
    const std::vector<std::pair<Idx, double>> &Delta) {
  uint64_t E = Catalog.appendSparse(Name, Delta);
  if (E)
    Plans.invalidateTensor(Name);
  return E;
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

std::optional<std::string>
ContractionService::makeKey(const ServeQuery &Q, const CatalogSnapshot &Snap,
                            std::string *Err) const {
  if (Q.Tensors.empty()) {
    if (Err)
      *Err = "empty query";
    return std::nullopt;
  }
  // Canonical factor order: f64 multiplication commutes bit-exactly, so
  // permuted requests may share one plan and one admission flight.
  std::vector<std::string> Names = Q.Tensors;
  std::sort(Names.begin(), Names.end());

  std::string K = "alg=f64;opt=" + std::to_string(Opts.OptLevel) +
                  ";native=" + (Opts.UseNative ? "1" : "0");
  for (const std::string &Name : Names) {
    CatalogTensorRef T = Snap.find(Name);
    if (!T) {
      if (Err)
        *Err = "unknown tensor '" + Name + "'";
      return std::nullopt;
    }
    // The version pins data, stats, and extents; shape and per-level
    // storage kinds are spelled out so the key reads as the query shape
    // plus per-factor format selection.
    K += "|" + Name + "@v" + std::to_string(T->Version) + "#k" +
         std::to_string(static_cast<int>(T->K));
    for (size_t L = 0; L < T->Stats.Levels.size(); ++L) {
      const LevelStat &LS = T->Stats.Levels[L];
      K += ":" + LS.A.name() + "/" + std::to_string(LS.Extent) + "/f" +
           std::to_string(static_cast<int>(LS.Kind));
    }
  }
  return K;
}

//===----------------------------------------------------------------------===//
// Planning + compilation (the miss path)
//===----------------------------------------------------------------------===//

namespace {

/// Binds one realized access's data from the snapshot into \p M, honoring
/// the plan's transposed / rehashed choices.
bool bindAccess(VmMemory &M, const PlanAccess &Acc, const CatalogTensor &T,
                std::string *Err) {
  switch (T.K) {
  case CatalogTensor::Kind::Csr:
    if (Acc.Transposed)
      bindCsr(M, Acc.bindName(), transpose(T.Csr));
    else
      bindCsr(M, Acc.bindName(), T.Csr);
    return true;
  case CatalogTensor::Kind::Sparse:
    if (Acc.Rehashed) {
      HashedVector<double> H(T.Sparse.Size, T.Sparse.nnz());
      for (size_t I = 0; I < T.Sparse.Crd.size(); ++I)
        H.accumulate(T.Sparse.Crd[I], T.Sparse.Val[I]);
      H.freeze();
      int64_t TabSize = bindHashedVector(M, Acc.bindName(), H);
      if (!Acc.Levels.empty() && Acc.Levels[0].TabSize != TabSize) {
        if (Err)
          *Err = "hashed rebind table-size mismatch for '" + Acc.Tensor + "'";
        return false;
      }
    } else {
      bindSparseVector(M, Acc.bindName(), T.Sparse);
    }
    return true;
  case CatalogTensor::Kind::Dense:
    bindDenseVector(M, Acc.bindName(), T.Dense);
    return true;
  }
  if (Err)
    *Err = "unknown tensor kind for '" + Acc.Tensor + "'";
  return false;
}

} // namespace

CachedPlanRef ContractionService::planAndCompile(const std::string &Key,
                                                 const ServeQuery &Q,
                                                 const CatalogSnapshot &Snap,
                                                 std::string *Err) {
  std::vector<std::string> Names = Q.Tensors;
  std::sort(Names.begin(), Names.end());

  TypeContext Ctx;
  std::map<std::string, TensorStats> Stats;
  std::map<uint32_t, int64_t> Dims;
  for (const std::string &Name : Names) {
    CatalogTensorRef T = Snap.find(Name);
    if (!T) {
      *Err = "unknown tensor '" + Name + "'";
      return nullptr;
    }
    Ctx[Name] = T->Shp;
    Stats[Name] = T->Stats;
    for (const LevelStat &LS : T->Stats.Levels)
      Dims[LS.A.id()] = LS.Extent;
  }

  ExprPtr Prod;
  for (const std::string &Name : Names) {
    ExprPtr V = Expr::var(Name);
    Prod = Prod ? mulExpand(std::move(Prod), std::move(V), Ctx, Err)
                : std::move(V);
    if (!Prod)
      return nullptr;
  }
  ExprPtr E = sumAll(std::move(Prod), Ctx, Err);
  if (!E)
    return nullptr;

  auto PQ = extractQuery(E, Ctx, Stats, Dims, Err);
  if (!PQ)
    return nullptr;

  PlanOptions PO;
  PO.AllowHashed = Opts.AllowHashed;
  Plans.countPlannerRun();
  std::vector<Plan> Enumerated = enumeratePlans(*PQ, PO);
  if (Enumerated.empty()) {
    *Err = "no realizable attribute order";
    return nullptr;
  }
  const Plan &Best = Enumerated.front();

  RealizedPlan RP = realizePlan(*PQ, Best, "srv");
  LowerCtx LCtx;
  LCtx.OptLevel = Opts.OptLevel;
  installPlan(LCtx, RP);

  auto CP = std::make_shared<CachedPlan>();
  CP->Key = Key;
  CP->Tensors = Names;
  CP->Tensors.erase(std::unique(CP->Tensors.begin(), CP->Tensors.end()),
                    CP->Tensors.end());
  CP->Epoch = Snap.epoch();
  CP->PlannerCost = Best.cost();
  CP->Explain = Best.explain(*PQ);
  CP->OutVar = "out";
  CP->Prog = compileFullContraction(LCtx, RP.E, CP->OutVar);

  for (const PlanAccess &Acc : RP.Accesses) {
    CatalogTensorRef T = Snap.find(Acc.Tensor);
    ETCH_ASSERT(T, "planned access over a tensor missing from the snapshot");
    if (!bindAccess(CP->BoundMem, Acc, *T, Err))
      return nullptr;
  }

  CP->Bc = compileBytecode(CP->Prog);
  if (!CP->Bc.ok()) {
    *Err = "bytecode compile error: " + CP->Bc.CompileError;
    return nullptr;
  }

  if (Opts.UseNative && jitToolchain().Available) {
    JitOptions JO;
    JO.CacheDir = Opts.JitCacheDir;
    std::string JitErr;
    if (NativeKernelRef K = jitCompile(CP->Prog, JO, &JitErr)) {
      auto Call = std::make_unique<NativeCall>(K);
      std::string BindErr;
      if (Call->bind(CP->BoundMem, &BindErr)) {
        CP->Kernel = std::move(K);
        CP->Call = std::move(Call);
      }
      // A bind failure (or a jit decline) silently leaves the bytecode
      // executor in charge — degrade, never abort.
    }
  }
  return CP;
}

//===----------------------------------------------------------------------===//
// Execution + admission
//===----------------------------------------------------------------------===//

ServeResult ContractionService::execute(const std::string &Key,
                                        const ServeQuery &Q,
                                        const CatalogSnapshotRef &Snap) {
  ServeResult R;
  R.Epoch = Snap->epoch();

  CachedPlanRef P = Plans.lookup(Key);
  R.PlanCacheHit = P != nullptr;
  if (!P) {
    std::string Err;
    P = planAndCompile(Key, Q, *Snap, &Err);
    if (!P) {
      R.Error = Err;
      return R;
    }
    P = Plans.insert(P);
  }

  std::lock_guard<std::mutex> L(P->ExecMu);
  if (P->Call) {
    VmRunResult RR = P->Call->invoke();
    if (RR.Error) {
      R.Error = *RR.Error;
      return R;
    }
    auto V = P->Call->scalar(P->OutVar);
    ETCH_ASSERT(V, "native kernel finished without defining the output");
    R.Value = std::get<double>(*V);
    R.Backend = "native";
  } else {
    VmRunResult RR = bytecodeRun(P->Bc, P->BoundMem);
    if (RR.Error) {
      R.Error = *RR.Error;
      return R;
    }
    auto V = P->BoundMem.getScalar(P->OutVar);
    ETCH_ASSERT(V, "bytecode run finished without defining the output");
    R.Value = std::get<double>(*V);
    R.Backend = "bytecode";
  }
  R.Ok = true;
  {
    std::lock_guard<std::mutex> SL(StatMu);
    ++Stats.Executions;
    if (R.Backend == "native")
      ++Stats.NativeRuns;
    else
      ++Stats.BytecodeRuns;
  }
  return R;
}

ServeResult ContractionService::admit(const ServeQuery &Q,
                                      const CatalogSnapshotRef &Snap) {
  {
    std::lock_guard<std::mutex> SL(StatMu);
    ++Stats.Queries;
  }
  std::string KeyErr;
  std::optional<std::string> Key = makeKey(Q, *Snap, &KeyErr);
  if (!Key) {
    ServeResult R;
    R.Epoch = Snap->epoch();
    R.Error = KeyErr;
    return R;
  }

  std::shared_ptr<Flight> F;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> L(AdmMu);
    auto It = Inflight.find(*Key);
    if (It != Inflight.end()) {
      F = It->second;
    } else {
      F = std::make_shared<Flight>();
      Inflight.emplace(*Key, F);
      Leader = true;
    }
  }

  if (!Leader) {
    // Ride the in-flight execution: identical key means identical tensor
    // versions, so the leader's result is this request's result.
    std::unique_lock<std::mutex> L(F->Mu);
    F->Cv.wait(L, [&] { return F->Done; });
    ServeResult R = F->R;
    R.Coalesced = true;
    std::lock_guard<std::mutex> SL(StatMu);
    ++Stats.Coalesced;
    return R;
  }

  ServeResult R = execute(*Key, Q, Snap);
  {
    // Retire the flight before publishing: arrivals from here on start a
    // fresh execution instead of joining a completed one.
    std::lock_guard<std::mutex> L(AdmMu);
    Inflight.erase(*Key);
  }
  {
    std::lock_guard<std::mutex> L(F->Mu);
    F->R = R;
    F->Done = true;
  }
  F->Cv.notify_all();
  return R;
}

ServeResult ContractionService::query(const ServeQuery &Q) {
  return admit(Q, Catalog.snapshot());
}

ServeResult ContractionService::query(const ServeQuery &Q,
                                      const CatalogSnapshotRef &Snap) {
  ETCH_ASSERT(Snap, "null snapshot");
  return admit(Q, Snap);
}

std::vector<ServeResult>
ContractionService::queryBatch(const std::vector<ServeQuery> &Qs) {
  CatalogSnapshotRef Snap = Catalog.snapshot();
  std::vector<ServeResult> Out(Qs.size());

  // Group identical queries: one dispatch per group, results fanned back
  // out. Keys also dedupe against concurrent query() callers via admit().
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Qs.size(); ++I) {
    std::string KeyErr;
    std::optional<std::string> Key = makeKey(Qs[I], *Snap, &KeyErr);
    if (!Key) {
      Out[I].Epoch = Snap->epoch();
      Out[I].Error = KeyErr;
      std::lock_guard<std::mutex> SL(StatMu);
      ++Stats.Queries;
      continue;
    }
    Groups[*Key].push_back(I);
  }

  std::vector<const std::vector<size_t> *> Work;
  Work.reserve(Groups.size());
  for (const auto &[_, Idxs] : Groups)
    Work.push_back(&Idxs);

  Exec.parallelFor(Work.size(), [&](size_t G) {
    const std::vector<size_t> &Idxs = *Work[G];
    ServeResult R = admit(Qs[Idxs.front()], Snap);
    Out[Idxs.front()] = R;
    for (size_t J = 1; J < Idxs.size(); ++J) {
      Out[Idxs[J]] = R;
      Out[Idxs[J]].Coalesced = true;
    }
    if (Idxs.size() > 1) {
      std::lock_guard<std::mutex> SL(StatMu);
      Stats.Queries += Idxs.size() - 1;
      Stats.Coalesced += Idxs.size() - 1;
    }
  });
  return Out;
}

ServiceStats ContractionService::stats() const {
  std::lock_guard<std::mutex> SL(StatMu);
  return Stats;
}

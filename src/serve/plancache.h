//===- serve/plancache.h - LRU cache of planned, compiled queries -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve layer's plan cache. A key pins everything a cached execution
/// depends on: the query shape (factor names and their attribute
/// structure), each factor's per-level storage format, and each factor's
/// tensor *version* (the stats epoch that installed it) — so a hit is
/// correct by construction and performs no planner enumeration, no
/// compilation, and no rebinding. The value is the fully prepared
/// execution state: the realized plan's compiled `P` program, its
/// bytecode, the JIT'd native kernel with a marshaled-once `NativeCall`,
/// and the input bindings from the snapshot the plan was built against.
///
/// Keying on per-tensor versions (instead of the global epoch) keeps the
/// hit rate high under mixed traffic: a write to tensor `A` invalidates
/// only plans that read `A`; plans over other tensors keep hitting.
/// Superseded entries are also dropped eagerly (`invalidateTensor`,
/// counted as Invalidations) so they do not occupy LRU capacity.
///
/// Correctness contract: Kovach et al.'s semantics guarantee every
/// enumerated plan computes the same contraction, so serving a cached
/// plan is an optimization choice, never a semantic one — the serve tests
/// hold cached-hit results bit-identical to cold per-request execution.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SERVE_PLANCACHE_H
#define ETCH_SERVE_PLANCACHE_H

#include "compiler/bytecode.h"
#include "compiler/jit.h"
#include "planner/realize.h"

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace etch {

/// Counters for the serving amortization story (and the >90%-hit-rate
/// acceptance gate). PlannerRuns counts actual `enumeratePlans` calls —
/// the "a hit performs no planner enumeration" verification hangs off it.
struct PlanCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;     ///< LRU-dropped past the capacity bound.
  uint64_t Invalidations = 0; ///< Dropped because a read tensor changed.
  uint64_t Retained = 0;      ///< Survived an invalidation (delta plans).
  uint64_t PlannerRuns = 0;   ///< enumeratePlans invocations (miss path).
  uint64_t Resident = 0;      ///< Entries currently cached.
};

/// One planned + compiled + bound query. Immutable after construction
/// except for the executor state (`Call` / `BoundMem` / the rebind
/// bookkeeping), which `ExecMu` serializes: a NativeCall's resident
/// buffers are single-dispatch, and a retained plan's inputs are
/// re-marshaled in place by `rebindPlan` between dispatches.
struct CachedPlan {
  std::string Key;
  std::vector<std::string> Tensors; ///< Factor names (for invalidation).
  uint64_t Epoch = 0;               ///< Snapshot epoch the plan was built at.
  double PlannerCost = 0.0;
  std::string Explain;
  std::string OutVar;
  /// A retained plan survives `invalidateTensor`: it is keyed on what it
  /// *is* (an IVM view's delta or refresh plan), not on the tensor
  /// versions it was bound against, and is refreshed by rebinding.
  bool Retain = false;

  PRef Prog;
  BytecodeProgram Bc;
  NativeKernelRef Kernel;           ///< Null: execute on the bytecode VM.
  std::unique_ptr<NativeCall> Call; ///< Prepared native dispatch.
  VmMemory BoundMem;                ///< Inputs bound for the bytecode VM.
  std::vector<PlanAccess> Accesses; ///< Realized accesses, for rebinding.
  std::vector<uint64_t> BoundVersions; ///< Version last bound, per access.
  std::vector<int> BoundKinds;      ///< CatalogTensor::Kind per access; a
                                    ///< rebind to a different kind fails
                                    ///< (the plan's levels are format-bound).
  std::mutex ExecMu;                ///< One dispatch at a time per entry.
};

using CachedPlanRef = std::shared_ptr<CachedPlan>;

/// Thread-safe LRU map from plan key to prepared execution state.
class PlanCache {
public:
  explicit PlanCache(size_t Cap = 128);

  /// The cached plan for \p Key, or null; counts Hits / Misses.
  CachedPlanRef lookup(const std::string &Key);

  /// Inserts \p P (keyed by P->Key), evicting past capacity. A racing
  /// insert of the same key keeps the incumbent and returns it, so all
  /// callers converge on one executor per key.
  CachedPlanRef insert(CachedPlanRef P);

  /// Drops every non-retained plan reading \p Tensor (counted as
  /// Invalidations); retained plans survive and count as Retained.
  void invalidateTensor(const std::string &Tensor);

  /// Drops the plan under \p Key regardless of retention (the IVM driver
  /// uses this when a view is unregistered or its plan must be rebuilt,
  /// e.g. after a load replaced a factor's storage kind).
  void erase(const std::string &Key);

  /// Counts one planner enumeration (called by the miss path only).
  void countPlannerRun();

  PlanCacheStats stats() const;
  void clear();

private:
  struct Slot {
    CachedPlanRef P;
    std::list<std::string>::iterator LruIt;
  };
  void touchLocked(Slot &S);
  void evictToCapLocked();

  mutable std::mutex Mu;
  size_t Cap;
  std::unordered_map<std::string, Slot> Map;
  std::list<std::string> Lru; ///< Most recent first.
  PlanCacheStats Stats;
};

} // namespace etch

#endif // ETCH_SERVE_PLANCACHE_H

//===- serve/prepare.h - Shared plan/compile/bind/execute path -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one code path that turns "a product of named catalog tensors,
/// fully contracted" into a prepared `CachedPlan` and runs it — factored
/// out of `ContractionService` so the IVM maintenance driver can reuse it
/// with *synthetic* factors: a delta batch is presented as a catalog
/// tensor under a fresh name, resolved through the caller-supplied
/// `TensorResolver` instead of a snapshot. This is how `Σ ΔA·B` lowers
/// through the existing planner / formats / backends unchanged.
///
/// Rebinding: a prepared plan can be pointed at new tensor payloads
/// without re-planning or re-compiling (`rebindPlan`) — the plan records
/// its realized accesses and the version each was last bound from, so a
/// refresh rebinds only the factors that actually changed and re-marshals
/// the native call only when something did. Retained delta plans key on
/// the *view*, not the tensor versions, and live across appends this way.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SERVE_PREPARE_H
#define ETCH_SERVE_PREPARE_H

#include "serve/catalog.h"
#include "serve/plancache.h"

#include <functional>
#include <string>
#include <vector>

namespace etch {

/// Maps a factor name to its tensor. Returning null fails preparation
/// with an "unknown tensor" diagnostic. Callers close over a snapshot
/// (the service) or a snapshot-plus-synthetic-deltas overlay (the IVM
/// driver).
using TensorResolver =
    std::function<CatalogTensorRef(const std::string &)>;

/// A resolver reading \p Snap only.
TensorResolver snapshotResolver(CatalogSnapshotRef Snap);

struct PrepareOptions {
  bool AllowHashed = true; ///< Planner may choose hashed-level copies.
                           ///< Keep false for plans meant to be rebound:
                           ///< a hashed copy bakes its table size.
  int OptLevel = 2;
  bool UseNative = true;   ///< JIT when a toolchain is available.
  std::string JitCacheDir;
  bool Retain = false;     ///< Mark the plan survives tensor invalidation.
};

/// Plans, compiles, and binds the full contraction of the product of
/// \p Factors (duplicates allowed — `{"x","x"}` is Σ x·x). Counts one
/// planner run against \p Cache when non-null. Returns null with a
/// diagnostic in \p Err on failure.
CachedPlanRef prepareContraction(const std::string &Key,
                                 const std::vector<std::string> &Factors,
                                 const TensorResolver &Resolve,
                                 const PrepareOptions &PO, PlanCache *Cache,
                                 std::string *Err);

/// Re-binds the accesses of \p P whose resolved tensor version differs
/// from the one last bound (or all of them when \p Force), then
/// re-marshals the native call if anything moved. The caller must hold
/// `P.ExecMu` (or otherwise own the plan exclusively). Returns false and
/// sets \p Err if a factor no longer resolves or a bind fails.
bool rebindPlan(CachedPlan &P, const TensorResolver &Resolve, bool Force,
                std::string *Err);

/// Which executor runs a prepared plan. `Auto` is the serving default:
/// native when the plan carries a bound `NativeCall`, else bytecode.
/// `Tree` runs the tree-walking reference interpreter on a copy of the
/// bound memory (it mutates state in place); `Bytecode` forces the
/// bytecode VM even when a native call is prepared.
enum class ExecBackend { Auto, Tree, Bytecode, Native };

struct ExecOutcome {
  bool Ok = false;
  std::string Error;
  double Value = 0.0;
  std::string Backend; ///< "native", "bytecode", or "tree".
};

/// Dispatches \p P once under its ExecMu and reads the scalar output.
/// `ExecBackend::Native` fails when the plan has no native call. When
/// \p Rebind is non-null the stale accesses are re-bound first, under the
/// same ExecMu hold, so refresh-and-run is atomic against concurrent
/// dispatches of the same plan.
ExecOutcome executePlan(CachedPlan &P, ExecBackend B = ExecBackend::Auto,
                        const TensorResolver *Rebind = nullptr);

} // namespace etch

#endif // ETCH_SERVE_PREPARE_H

//===- serve/service.h - Concurrent contraction service --------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived serving layer over the whole stack: clients submit
/// contraction queries (a product of named catalog tensors, fully
/// contracted to a scalar) from any number of threads, and the service
/// answers them through three layers of amortization:
///
///   1. a snapshotted `TensorCatalog` — each query runs against one
///      consistent epoch while loads and appends install later epochs;
///   2. a `PlanCache` keyed on (query shape, per-factor storage format,
///      per-factor tensor version): a hit reuses the planner's chosen
///      order, the compiled program, the JIT'd native kernel, and the
///      marshaled input buffers — no enumeration, no compilation, no
///      rebinding;
///   3. an admission layer that coalesces identical in-flight queries:
///      concurrent requests for the same key ride one kernel dispatch and
///      fan the (immutable) result back out;
///   4. incremental view maintenance (src/ivm/): queries registered as
///      materialized views are refreshed per append by a *delta*
///      contraction over the batch instead of recomputation, on retained
///      plans that survive writes — `readView` then answers from the
///      stored value without dispatching anything.
///
/// Execution prefers the JIT-to-native backend (content-addressed kernel
/// cache, PR 7) and degrades to the bytecode VM per plan when no
/// toolchain is available — both produce bit-identical results, which the
/// serve tests and `bench_serve` verify against per-request serial
/// execution. Batch submission fans out over the PR-2 `ThreadPool`.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SERVE_SERVICE_H
#define ETCH_SERVE_SERVICE_H

#include "ivm/maintain.h"
#include "serve/catalog.h"
#include "serve/plancache.h"
#include "serve/prepare.h"
#include "support/threadpool.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace etch {

/// A client request: the full contraction Σ (over every attribute) of the
/// product of the named catalog tensors. Factor order is irrelevant — the
/// service canonicalizes it (f64 multiplication commutes exactly), so
/// permuted requests share one plan-cache entry and one admission flight.
struct ServeQuery {
  std::vector<std::string> Tensors;
};

struct ServeResult {
  bool Ok = false;
  std::string Error;
  double Value = 0.0;
  uint64_t Epoch = 0;       ///< Snapshot epoch the execution ran against.
  bool PlanCacheHit = false;
  bool Coalesced = false;   ///< Served by riding another request's dispatch.
  std::string Backend;      ///< "native" or "bytecode".
};

struct ServeOptions {
  unsigned Threads = 0;      ///< Executor-pool lanes for batches (0 = hw).
  size_t PlanCacheCap = 128;
  bool UseNative = true;     ///< JIT when a toolchain is available.
  std::string JitCacheDir;   ///< Kernel-cache override (tests, benches).
  bool AllowHashed = true;   ///< Planner may choose hashed-level copies.
  int OptLevel = 2;          ///< Pass-pipeline level for compiled plans.
};

struct ServiceStats {
  uint64_t Queries = 0;    ///< Requests admitted (incl. batch members).
  uint64_t Executions = 0; ///< Kernel dispatches actually performed.
  uint64_t Coalesced = 0;  ///< Requests served without their own dispatch.
  uint64_t NativeRuns = 0;
  uint64_t BytecodeRuns = 0;
};

class ContractionService {
public:
  explicit ContractionService(ServeOptions Opts = {});

  /// Catalog access for loading data. Prefer the write-through helpers
  /// below for mutations: they also invalidate superseded cached plans.
  TensorCatalog &catalog() { return Catalog; }
  CatalogSnapshotRef snapshot() const { return Catalog.snapshot(); }

  /// Write-through mutations: forward to the catalog, then drop cached
  /// plans reading the tensor (stale keys would only age out via LRU).
  uint64_t loadCsr(const std::string &Name, CsrMatrix<double> M, Attr Row,
                   Attr Col);
  uint64_t loadSparse(const std::string &Name, SparseVector<double> V,
                      Attr A);
  uint64_t loadDense(const std::string &Name, DenseVector<double> V, Attr A);
  uint64_t appendCsr(const std::string &Name,
                     const std::vector<CooEntry<double>> &Delta);
  uint64_t appendSparse(const std::string &Name,
                        const std::vector<std::pair<Idx, double>> &Delta);

  /// Deletions: remove the stored weight at the given coordinates by
  /// appending its negation (f64 is a ring), so views maintain through
  /// the same delta path and cancelled entries compact to nothing.
  /// Coordinates with no stored weight are ignored.
  uint64_t deleteCsr(const std::string &Name,
                     const std::vector<std::pair<Idx, Idx>> &Coords);
  uint64_t deleteSparse(const std::string &Name,
                        const std::vector<Idx> &Coords);

  /// Registers `Name = Σ Π Q.Tensors` as a live materialized view: the
  /// initial value computes now, and every append/delete batch folds in
  /// incrementally. Registration and writes serialize on the write lock.
  bool registerView(const std::string &Name, const ServeQuery &Q,
                    std::string *Err);
  /// The stored value of a view — no planner, no kernel, just a read.
  /// Consistent with the catalog: the reading's Epoch is the epoch of the
  /// last write folded in.
  std::optional<ViewReading> readView(const std::string &Name) const;
  bool unregisterView(const std::string &Name);

  /// The maintenance driver, for grouped (relation-valued) views and
  /// maintenance statistics. Mutating driver calls must not race the
  /// service write path.
  MaintenanceDriver &maintenance() { return *Views; }
  MaintainStats viewStats() const { return Views->stats(); }

  /// Answers \p Q against the current epoch (thread-safe; blocking).
  ServeResult query(const ServeQuery &Q);

  /// Answers \p Q against a pinned snapshot: the isolation primitive —
  /// results depend only on the tensor versions in \p Snap, bit-identical
  /// no matter what writers install concurrently.
  ServeResult query(const ServeQuery &Q, const CatalogSnapshotRef &Snap);

  /// Answers a batch against one consistent snapshot, grouping identical
  /// queries onto one dispatch each and fanning groups out over the
  /// executor pool. Results are index-aligned with \p Qs.
  std::vector<ServeResult> queryBatch(const std::vector<ServeQuery> &Qs);

  PlanCacheStats planStats() const { return Plans.stats(); }
  ServiceStats stats() const;

private:
  struct Flight {
    std::mutex Mu;
    std::condition_variable Cv;
    bool Done = false;
    ServeResult R;
  };

  /// Canonical plan/admission key for \p Q under \p Snap, or nullopt with
  /// a diagnostic when a factor is missing from the snapshot.
  std::optional<std::string> makeKey(const ServeQuery &Q,
                                     const CatalogSnapshot &Snap,
                                     std::string *Err) const;

  ServeResult admit(const ServeQuery &Q, const CatalogSnapshotRef &Snap);
  ServeResult execute(const std::string &Key, const ServeQuery &Q,
                      const CatalogSnapshotRef &Snap);
  CachedPlanRef planAndCompile(const std::string &Key, const ServeQuery &Q,
                               const CatalogSnapshotRef &Snap,
                               std::string *Err);
  uint64_t appendCsrLocked(const std::string &Name,
                           const std::vector<CooEntry<double>> &Delta);
  uint64_t appendSparseLocked(const std::string &Name,
                              const std::vector<std::pair<Idx, double>> &Delta);

  ServeOptions Opts;
  TensorCatalog Catalog;
  mutable PlanCache Plans;
  std::unique_ptr<MaintenanceDriver> Views;
  ThreadPool Exec;

  /// Serializes the write path end to end: capture the pre-append
  /// snapshot, install the batch, invalidate superseded plans, fold the
  /// batch into the views. Readers never take it.
  std::mutex WriteMu;

  std::mutex AdmMu;
  std::unordered_map<std::string, std::shared_ptr<Flight>> Inflight;

  mutable std::mutex StatMu;
  ServiceStats Stats;
};

} // namespace etch

#endif // ETCH_SERVE_SERVICE_H

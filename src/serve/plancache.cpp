//===- serve/plancache.cpp - LRU cache of planned, compiled queries -------===//

#include "serve/plancache.h"

#include <algorithm>

using namespace etch;

PlanCache::PlanCache(size_t Cap) : Cap(std::max<size_t>(1, Cap)) {}

void PlanCache::touchLocked(Slot &S) { Lru.splice(Lru.begin(), Lru, S.LruIt); }

void PlanCache::evictToCapLocked() {
  // Least-recently-used first, but never a retained plan: evicting one
  // would silently turn the next view refresh into a planner run. A cache
  // saturated with retained plans simply rides above its cap.
  auto It = Lru.end();
  while (Map.size() > Cap && It != Lru.begin()) {
    --It;
    auto MIt = Map.find(*It);
    if (MIt->second.P->Retain)
      continue;
    Map.erase(MIt);
    It = Lru.erase(It);
    ++Stats.Evictions;
  }
}

CachedPlanRef PlanCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  touchLocked(It->second);
  return It->second.P;
}

CachedPlanRef PlanCache::insert(CachedPlanRef P) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(P->Key);
  if (It != Map.end()) {
    touchLocked(It->second);
    return It->second.P; // Incumbent wins; concurrent planners converge.
  }
  Lru.push_front(P->Key);
  Map.emplace(P->Key, Slot{P, Lru.begin()});
  evictToCapLocked();
  return P;
}

void PlanCache::invalidateTensor(const std::string &Tensor) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto It = Map.begin(); It != Map.end();) {
    const std::vector<std::string> &Ts = It->second.P->Tensors;
    if (std::find(Ts.begin(), Ts.end(), Tensor) != Ts.end()) {
      if (It->second.P->Retain) {
        // View-keyed delta/refresh plans are refreshed by rebinding, not
        // superseded by a write; dropping them would force a planner run
        // per append — exactly what retention exists to avoid.
        ++Stats.Retained;
        ++It;
        continue;
      }
      Lru.erase(It->second.LruIt);
      It = Map.erase(It);
      ++Stats.Invalidations;
    } else {
      ++It;
    }
  }
}

void PlanCache::erase(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return;
  Lru.erase(It->second.LruIt);
  Map.erase(It);
  ++Stats.Invalidations;
}

void PlanCache::countPlannerRun() {
  std::lock_guard<std::mutex> L(Mu);
  ++Stats.PlannerRuns;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  PlanCacheStats S = Stats;
  S.Resident = Map.size();
  return S;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> L(Mu);
  Map.clear();
  Lru.clear();
  Stats = PlanCacheStats();
}

//===- serve/prepare.cpp - Shared plan/compile/bind/execute path ----------===//

#include "serve/prepare.h"

#include "compiler/frontend.h"
#include "compiler/vm.h"
#include "planner/plan.h"
#include "planner/realize.h"
#include "support/assert.h"

#include <algorithm>

using namespace etch;

TensorResolver etch::snapshotResolver(CatalogSnapshotRef Snap) {
  return [Snap = std::move(Snap)](const std::string &Name) {
    return Snap->find(Name);
  };
}

namespace {

/// Repacks a CSR matrix under a compressed outer level (DCSR): the entry
/// arrays are unchanged, only the nonempty rows are kept in the row level.
DcsrMatrix<double> dcsrOfCsr(const CsrMatrix<double> &A) {
  DcsrMatrix<double> D;
  D.NumRows = A.NumRows;
  D.NumCols = A.NumCols;
  D.Pos.push_back(0);
  for (Idx R = 0; R < A.NumRows; ++R) {
    const size_t RU = static_cast<size_t>(R);
    if (A.Pos[RU] == A.Pos[RU + 1])
      continue;
    D.RowCrd.push_back(R);
    D.Pos.push_back(A.Pos[RU + 1]);
  }
  D.Crd = A.Crd;
  D.Val = A.Val;
  return D;
}

/// Binds one realized access's data from its tensor into \p M, honoring
/// the plan's transposed / rehashed choices and its per-level formats: a
/// matrix access whose outer level the planner compressed (the DCSR-style
/// choice for hypersparse transposed copies) binds the pos0/crd0 arrays
/// the emitted program expects, not the dense-outer CSR layout.
bool bindAccess(VmMemory &M, const PlanAccess &Acc, const CatalogTensor &T,
                std::string *Err) {
  switch (T.K) {
  case CatalogTensor::Kind::Csr: {
    CsrMatrix<double> C = Acc.Transposed ? transpose(T.Csr) : T.Csr;
    if (!Acc.Levels.empty() && Acc.Levels[0].K == LevelSpec::Compressed)
      bindDcsr(M, Acc.bindName(), dcsrOfCsr(C));
    else
      bindCsr(M, Acc.bindName(), C);
    return true;
  }
  case CatalogTensor::Kind::Sparse:
    if (Acc.Rehashed) {
      HashedVector<double> H(T.Sparse.Size, T.Sparse.nnz());
      for (size_t I = 0; I < T.Sparse.Crd.size(); ++I)
        H.accumulate(T.Sparse.Crd[I], T.Sparse.Val[I]);
      H.freeze();
      int64_t TabSize = bindHashedVector(M, Acc.bindName(), H);
      if (!Acc.Levels.empty() && Acc.Levels[0].TabSize != TabSize) {
        if (Err)
          *Err = "hashed rebind table-size mismatch for '" + Acc.Tensor + "'";
        return false;
      }
    } else {
      bindSparseVector(M, Acc.bindName(), T.Sparse);
    }
    return true;
  case CatalogTensor::Kind::Dense:
    bindDenseVector(M, Acc.bindName(), T.Dense);
    return true;
  }
  if (Err)
    *Err = "unknown tensor kind for '" + Acc.Tensor + "'";
  return false;
}

} // namespace

CachedPlanRef etch::prepareContraction(const std::string &Key,
                                       const std::vector<std::string> &Factors,
                                       const TensorResolver &Resolve,
                                       const PrepareOptions &PO,
                                       PlanCache *Cache, std::string *Err) {
  if (Factors.empty()) {
    if (Err)
      *Err = "empty factor list";
    return nullptr;
  }

  TypeContext Ctx;
  std::map<std::string, TensorStats> Stats;
  std::map<uint32_t, int64_t> Dims;
  std::map<std::string, CatalogTensorRef> Resolved;
  uint64_t MaxVersion = 0;
  for (const std::string &Name : Factors) {
    if (Resolved.count(Name))
      continue;
    CatalogTensorRef T = Resolve(Name);
    if (!T) {
      if (Err)
        *Err = "unknown tensor '" + Name + "'";
      return nullptr;
    }
    Resolved[Name] = T;
    Ctx[Name] = T->Shp;
    Stats[Name] = T->Stats;
    MaxVersion = std::max(MaxVersion, T->Version);
    for (const LevelStat &LS : T->Stats.Levels)
      Dims[LS.A.id()] = LS.Extent;
  }

  ExprPtr Prod;
  for (const std::string &Name : Factors) {
    ExprPtr V = Expr::var(Name);
    Prod = Prod ? mulExpand(std::move(Prod), std::move(V), Ctx, Err)
                : std::move(V);
    if (!Prod)
      return nullptr;
  }
  ExprPtr E = sumAll(std::move(Prod), Ctx, Err);
  if (!E)
    return nullptr;

  auto PQ = extractQuery(E, Ctx, Stats, Dims, Err);
  if (!PQ)
    return nullptr;

  PlanOptions PlanOpts;
  PlanOpts.AllowHashed = PO.AllowHashed;
  if (Cache)
    Cache->countPlannerRun();
  std::vector<Plan> Enumerated = enumeratePlans(*PQ, PlanOpts);
  if (Enumerated.empty()) {
    if (Err)
      *Err = "no realizable attribute order";
    return nullptr;
  }
  const Plan &Best = Enumerated.front();

  RealizedPlan RP = realizePlan(*PQ, Best, "srv");
  LowerCtx LCtx;
  LCtx.OptLevel = PO.OptLevel;
  installPlan(LCtx, RP);

  auto CP = std::make_shared<CachedPlan>();
  CP->Key = Key;
  CP->Tensors = Factors;
  std::sort(CP->Tensors.begin(), CP->Tensors.end());
  CP->Tensors.erase(std::unique(CP->Tensors.begin(), CP->Tensors.end()),
                    CP->Tensors.end());
  CP->Epoch = MaxVersion;
  CP->Retain = PO.Retain;
  CP->PlannerCost = Best.cost();
  CP->Explain = Best.explain(*PQ);
  CP->OutVar = "out";
  CP->Prog = compileFullContraction(LCtx, RP.E, CP->OutVar);
  CP->Accesses = RP.Accesses;
  CP->BoundVersions.reserve(RP.Accesses.size());

  for (const PlanAccess &Acc : RP.Accesses) {
    CatalogTensorRef T = Resolved.at(Acc.Tensor);
    if (!bindAccess(CP->BoundMem, Acc, *T, Err))
      return nullptr;
    CP->BoundVersions.push_back(T->Version);
    CP->BoundKinds.push_back(static_cast<int>(T->K));
  }

  CP->Bc = compileBytecode(CP->Prog);
  if (!CP->Bc.ok()) {
    if (Err)
      *Err = "bytecode compile error: " + CP->Bc.CompileError;
    return nullptr;
  }

  if (PO.UseNative && jitToolchain().Available) {
    JitOptions JO;
    JO.CacheDir = PO.JitCacheDir;
    std::string JitErr;
    if (NativeKernelRef K = jitCompile(CP->Prog, JO, &JitErr)) {
      auto Call = std::make_unique<NativeCall>(K);
      std::string BindErr;
      if (Call->bind(CP->BoundMem, &BindErr)) {
        CP->Kernel = std::move(K);
        CP->Call = std::move(Call);
      }
      // A bind failure (or a jit decline) silently leaves the bytecode
      // executor in charge — degrade, never abort.
    }
  }
  return CP;
}

bool etch::rebindPlan(CachedPlan &P, const TensorResolver &Resolve,
                      bool Force, std::string *Err) {
  ETCH_ASSERT(P.Accesses.size() == P.BoundVersions.size(),
              "access/version bookkeeping out of sync");
  bool Moved = false;
  for (size_t I = 0; I < P.Accesses.size(); ++I) {
    const PlanAccess &Acc = P.Accesses[I];
    CatalogTensorRef T = Resolve(Acc.Tensor);
    if (!T) {
      if (Err)
        *Err = "rebind: unknown tensor '" + Acc.Tensor + "'";
      return false;
    }
    if (static_cast<int>(T->K) != P.BoundKinds[I]) {
      if (Err)
        *Err = "rebind: tensor '" + Acc.Tensor +
               "' changed storage kind; the plan must be rebuilt";
      return false;
    }
    if (!Force && T->Version == P.BoundVersions[I])
      continue;
    if (!bindAccess(P.BoundMem, Acc, *T, Err))
      return false;
    P.BoundVersions[I] = T->Version;
    P.Epoch = std::max(P.Epoch, T->Version);
    Moved = true;
  }
  if (Moved && P.Call) {
    std::string BindErr;
    if (!P.Call->bind(P.BoundMem, &BindErr)) {
      if (Err)
        *Err = "rebind: native re-marshal failed: " + BindErr;
      return false;
    }
  }
  return true;
}

ExecOutcome etch::executePlan(CachedPlan &P, ExecBackend B,
                              const TensorResolver *Rebind) {
  ExecOutcome R;
  std::lock_guard<std::mutex> L(P.ExecMu);
  if (Rebind && !rebindPlan(P, *Rebind, /*Force=*/false, &R.Error))
    return R;
  if (B == ExecBackend::Native && !P.Call) {
    R.Error = "native backend requested but no native call is prepared";
    return R;
  }
  bool Native = P.Call && (B == ExecBackend::Auto || B == ExecBackend::Native);
  if (Native) {
    VmRunResult RR = P.Call->invoke();
    if (RR.Error) {
      R.Error = *RR.Error;
      return R;
    }
    auto V = P.Call->scalar(P.OutVar);
    ETCH_ASSERT(V, "native kernel finished without defining the output");
    R.Value = std::get<double>(*V);
    R.Backend = "native";
  } else if (B == ExecBackend::Tree) {
    // The tree VM mutates memory in place; run on a copy so the plan's
    // bound inputs stay pristine for the next dispatch.
    VmMemory M = P.BoundMem;
    VmRunResult RR = vmRun(P.Prog, M);
    if (RR.Error) {
      R.Error = *RR.Error;
      return R;
    }
    auto V = M.getScalar(P.OutVar);
    ETCH_ASSERT(V, "tree run finished without defining the output");
    R.Value = std::get<double>(*V);
    R.Backend = "tree";
  } else {
    VmRunResult RR = bytecodeRun(P.Bc, P.BoundMem);
    if (RR.Error) {
      R.Error = *RR.Error;
      return R;
    }
    auto V = P.BoundMem.getScalar(P.OutVar);
    ETCH_ASSERT(V, "bytecode run finished without defining the output");
    R.Value = std::get<double>(*V);
    R.Backend = "bytecode";
  }
  R.Ok = true;
  return R;
}

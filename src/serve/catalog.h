//===- serve/catalog.h - Versioned tensor catalog with snapshots -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve layer's tensor store: a read-mostly catalog of named tensors
/// with copy-on-write snapshots. Readers call `snapshot()` and hold an
/// immutable, internally consistent view — every tensor in it carries the
/// version (epoch) that installed it and the planner statistics computed
/// at install time — while writers build the next epoch off to the side
/// and swap it in atomically. A query that planned and executed against
/// epoch E is unaffected by a concurrent load or append installing E+1;
/// the tensors themselves are shared (`shared_ptr<const CatalogTensor>`),
/// so a snapshot copy is one map copy, never a data copy.
///
/// Appends are COW at tensor granularity: `appendCsr` / `appendSparse`
/// rebuild the named tensor with the delta summed in (K-relation
/// addition: a batch of appends is itself a K-relation) and install the
/// result as a new version. Old versions stay alive for as long as some
/// snapshot (or plan-cache entry) references them.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SERVE_CATALOG_H
#define ETCH_SERVE_CATALOG_H

#include "formats/matrices.h"
#include "formats/vectors.h"
#include "planner/stats.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace etch {

/// One immutable version of one catalog tensor. Exactly one of the
/// payload members is populated, per `K`; `Stats` is derived from the
/// payload at install time so planning never rescans data.
struct CatalogTensor {
  enum class Kind { Csr, Sparse, Dense };

  std::string Name;
  Kind K = Kind::Sparse;
  uint64_t Version = 0; ///< Epoch that installed this version.
  Shape Shp;            ///< Attributes, outermost first.

  CsrMatrix<double> Csr;
  SparseVector<double> Sparse;
  DenseVector<double> Dense;

  TensorStats Stats;

  size_t nnz() const;
};

using CatalogTensorRef = std::shared_ptr<const CatalogTensor>;

/// An immutable view of the catalog at one epoch.
class CatalogSnapshot {
public:
  uint64_t epoch() const { return Epoch; }

  /// The tensor named \p Name, or null.
  CatalogTensorRef find(const std::string &Name) const;

  const std::map<std::string, CatalogTensorRef> &tensors() const {
    return Tensors;
  }

private:
  friend class TensorCatalog;
  uint64_t Epoch = 0;
  std::map<std::string, CatalogTensorRef> Tensors;
};

using CatalogSnapshotRef = std::shared_ptr<const CatalogSnapshot>;

/// The mutable catalog. Writers serialize against each other and publish
/// whole snapshots; readers never block writers beyond the pointer swap.
class TensorCatalog {
public:
  TensorCatalog();

  /// The current snapshot. O(1); the returned view never changes.
  CatalogSnapshotRef snapshot() const;

  /// The current epoch (monotonically increasing; bumped per mutation).
  uint64_t epoch() const { return snapshot()->epoch(); }

  /// Installs (or replaces) a tensor; returns the new epoch.
  uint64_t putCsr(const std::string &Name, CsrMatrix<double> M, Attr Row,
                  Attr Col);
  uint64_t putSparse(const std::string &Name, SparseVector<double> V, Attr A);
  uint64_t putDense(const std::string &Name, DenseVector<double> V, Attr A);

  /// COW append: rebuilds \p Name with \p Delta summed in (semiring
  /// addition on colliding coordinates) and installs it as a new version.
  /// Returns 0 if \p Name is absent or not of the matching kind.
  uint64_t appendCsr(const std::string &Name,
                     const std::vector<CooEntry<double>> &Delta);
  uint64_t appendSparse(const std::string &Name,
                        const std::vector<std::pair<Idx, double>> &Delta);

  /// Removes \p Name (no-op if absent). Returns the new epoch.
  uint64_t erase(const std::string &Name);

private:
  uint64_t installLocked(std::shared_ptr<CatalogTensor> T);

  mutable std::mutex Mu; ///< Guards the snapshot pointer swap.
  std::mutex WriterMu;   ///< Serializes writers; builds happen under it.
  CatalogSnapshotRef Snap;
};

} // namespace etch

#endif // ETCH_SERVE_CATALOG_H

//===- serve/catalog.h - Versioned tensor catalog with snapshots -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve layer's tensor store: a read-mostly catalog of named tensors
/// with copy-on-write snapshots. Readers call `snapshot()` and hold an
/// immutable, internally consistent view — every tensor in it carries the
/// version (epoch) that installed it and the planner statistics computed
/// at install time — while writers build the next epoch off to the side
/// and swap it in atomically. A query that planned and executed against
/// epoch E is unaffected by a concurrent load or append installing E+1;
/// the tensors themselves are shared (`shared_ptr<const CatalogTensor>`),
/// so a snapshot copy is one map copy, never a data copy.
///
/// Appends are COW at tensor granularity: `appendCsr` / `appendSparse`
/// build the successor payload by a *sorted merge* of the canonicalized
/// delta into the predecessor (K-relation addition: a batch of appends is
/// itself a K-relation — O(nnz + Δ log Δ), not a full re-sort) and
/// install it as a new version. Entries whose weights cancel to exact
/// zero are compacted away, so deletions (negative-weight deltas) leave
/// no zombie tuples. Old versions stay alive for as long as some snapshot
/// (or plan-cache entry) references them. `CatalogStats` surfaces the
/// per-append rebuild cost: how many predecessor entries each append
/// copied versus how many the delta actually touched.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SERVE_CATALOG_H
#define ETCH_SERVE_CATALOG_H

#include "formats/matrices.h"
#include "formats/vectors.h"
#include "planner/stats.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace etch {

/// One immutable version of one catalog tensor. Exactly one of the
/// payload members is populated, per `K`; `Stats` is derived from the
/// payload at install time so planning never rescans data.
struct CatalogTensor {
  enum class Kind { Csr, Sparse, Dense };

  std::string Name;
  Kind K = Kind::Sparse;
  uint64_t Version = 0; ///< Epoch that installed this version.
  Shape Shp;            ///< Attributes, outermost first.

  CsrMatrix<double> Csr;
  SparseVector<double> Sparse;
  DenseVector<double> Dense;

  TensorStats Stats;

  size_t nnz() const;
};

using CatalogTensorRef = std::shared_ptr<const CatalogTensor>;

/// An immutable view of the catalog at one epoch.
class CatalogSnapshot {
public:
  uint64_t epoch() const { return Epoch; }

  /// The tensor named \p Name, or null.
  CatalogTensorRef find(const std::string &Name) const;

  const std::map<std::string, CatalogTensorRef> &tensors() const {
    return Tensors;
  }

private:
  friend class TensorCatalog;
  uint64_t Epoch = 0;
  std::map<std::string, CatalogTensorRef> Tensors;
};

using CatalogSnapshotRef = std::shared_ptr<const CatalogSnapshot>;

/// Write-path cost counters. `MergedNnz / Appends` is the mean rebuild
/// cost of an append — the price of COW versioning the merge path keeps
/// at one linear pass (the old path paid an extra sort of the whole
/// payload through `fromCoo`).
struct CatalogStats {
  uint64_t Appends = 0;        ///< appendCsr + appendSparse calls accepted.
  uint64_t DeltaNnz = 0;       ///< Canonicalized delta entries merged in.
  uint64_t MergedNnz = 0;      ///< Predecessor entries copied by merges.
  uint64_t CompactedZeros = 0; ///< Entries cancelled to exact zero.
  uint64_t Replaces = 0;       ///< putCsr/putSparse/putDense installs.
};

/// The mutable catalog. Writers serialize against each other and publish
/// whole snapshots; readers never block writers beyond the pointer swap.
class TensorCatalog {
public:
  TensorCatalog();

  /// The current snapshot. O(1); the returned view never changes.
  CatalogSnapshotRef snapshot() const;

  /// The current epoch (monotonically increasing; bumped per mutation).
  uint64_t epoch() const { return snapshot()->epoch(); }

  /// Installs (or replaces) a tensor; returns the new epoch.
  uint64_t putCsr(const std::string &Name, CsrMatrix<double> M, Attr Row,
                  Attr Col);
  uint64_t putSparse(const std::string &Name, SparseVector<double> V, Attr A);
  uint64_t putDense(const std::string &Name, DenseVector<double> V, Attr A);

  /// COW append: merges the canonicalized \p Delta into \p Name (semiring
  /// addition on colliding coordinates, exact-zero sums dropped) and
  /// installs the result as a new version. Returns 0 if \p Name is absent
  /// or not of the matching kind.
  uint64_t appendCsr(const std::string &Name,
                     const std::vector<CooEntry<double>> &Delta);
  uint64_t appendSparse(const std::string &Name,
                        const std::vector<std::pair<Idx, double>> &Delta);

  /// Removes \p Name (no-op if absent). Returns the new epoch.
  uint64_t erase(const std::string &Name);

  CatalogStats stats() const;

private:
  uint64_t installLocked(std::shared_ptr<CatalogTensor> T);

  mutable std::mutex Mu; ///< Guards the snapshot pointer swap and stats.
  std::mutex WriterMu;   ///< Serializes writers; builds happen under it.
  CatalogSnapshotRef Snap;
  CatalogStats WriteStats;
};

} // namespace etch

#endif // ETCH_SERVE_CATALOG_H

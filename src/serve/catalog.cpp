//===- serve/catalog.cpp - Versioned tensor catalog with snapshots --------===//

#include "serve/catalog.h"

#include "support/assert.h"

#include <algorithm>

using namespace etch;

size_t CatalogTensor::nnz() const {
  switch (K) {
  case Kind::Csr:
    return Csr.nnz();
  case Kind::Sparse:
    return Sparse.nnz();
  case Kind::Dense:
    return Dense.Val.size();
  }
  ETCH_UNREACHABLE("unknown catalog tensor kind");
}

CatalogTensorRef CatalogSnapshot::find(const std::string &Name) const {
  auto It = Tensors.find(Name);
  return It == Tensors.end() ? nullptr : It->second;
}

TensorCatalog::TensorCatalog() : Snap(std::make_shared<CatalogSnapshot>()) {}

CatalogSnapshotRef TensorCatalog::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  return Snap;
}

uint64_t TensorCatalog::installLocked(std::shared_ptr<CatalogTensor> T) {
  // Callers hold WriterMu; build the successor snapshot from the current
  // one (map copy, tensors shared) and swap it in under Mu.
  CatalogSnapshotRef Cur = snapshot();
  auto Next = std::make_shared<CatalogSnapshot>(*Cur);
  Next->Epoch = Cur->epoch() + 1;
  T->Version = Next->Epoch;
  Next->Tensors[T->Name] = std::move(T);
  std::lock_guard<std::mutex> L(Mu);
  Snap = std::move(Next);
  return Snap->epoch();
}

uint64_t TensorCatalog::putCsr(const std::string &Name, CsrMatrix<double> M,
                               Attr Row, Attr Col) {
  ETCH_ASSERT(Row < Col, "attributes must follow the global order");
  std::lock_guard<std::mutex> W(WriterMu);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Csr;
  T->Shp = {Row, Col};
  T->Stats = statsOfCsr(Name, M, Row, Col);
  T->Csr = std::move(M);
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::putSparse(const std::string &Name,
                                  SparseVector<double> V, Attr A) {
  std::lock_guard<std::mutex> W(WriterMu);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Sparse;
  T->Shp = {A};
  T->Stats = statsOfSparseVector(Name, V, A);
  T->Sparse = std::move(V);
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::putDense(const std::string &Name,
                                 DenseVector<double> V, Attr A) {
  std::lock_guard<std::mutex> W(WriterMu);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Dense;
  T->Shp = {A};
  T->Stats = statsOfDenseVector(Name, V, A);
  T->Dense = std::move(V);
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::appendCsr(const std::string &Name,
                                  const std::vector<CooEntry<double>> &Delta) {
  std::lock_guard<std::mutex> W(WriterMu);
  CatalogTensorRef Old = snapshot()->find(Name);
  if (!Old || Old->K != CatalogTensor::Kind::Csr)
    return 0;
  const CsrMatrix<double> &M = Old->Csr;
  std::vector<CooEntry<double>> Coo;
  Coo.reserve(M.nnz() + Delta.size());
  for (Idx R = 0; R < M.NumRows; ++R)
    for (size_t Q = M.Pos[static_cast<size_t>(R)];
         Q < M.Pos[static_cast<size_t>(R) + 1]; ++Q)
      Coo.push_back({R, M.Crd[Q], M.Val[Q]});
  for (const CooEntry<double> &E : Delta) {
    ETCH_ASSERT(E.Row >= 0 && E.Row < M.NumRows && E.Col >= 0 &&
                    E.Col < M.NumCols,
                "append entry out of range");
    Coo.push_back(E);
  }
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Csr;
  T->Shp = Old->Shp;
  T->Csr = CsrMatrix<double>::fromCoo(M.NumRows, M.NumCols, std::move(Coo));
  T->Stats = statsOfCsr(Name, T->Csr, Old->Shp[0], Old->Shp[1]);
  return installLocked(std::move(T));
}

uint64_t
TensorCatalog::appendSparse(const std::string &Name,
                            const std::vector<std::pair<Idx, double>> &Delta) {
  std::lock_guard<std::mutex> W(WriterMu);
  CatalogTensorRef Old = snapshot()->find(Name);
  if (!Old || Old->K != CatalogTensor::Kind::Sparse)
    return 0;
  const SparseVector<double> &V = Old->Sparse;
  std::map<Idx, double> Merged;
  for (size_t I = 0; I < V.Crd.size(); ++I)
    Merged[V.Crd[I]] = V.Val[I];
  for (const auto &[C, X] : Delta) {
    ETCH_ASSERT(C >= 0 && C < V.Size, "append coordinate out of range");
    Merged[C] += X;
  }
  SparseVector<double> Next(V.Size);
  for (const auto &[C, X] : Merged)
    if (X != 0.0)
      Next.push(C, X);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Sparse;
  T->Shp = Old->Shp;
  T->Stats = statsOfSparseVector(Name, Next, Old->Shp[0]);
  T->Sparse = std::move(Next);
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::erase(const std::string &Name) {
  std::lock_guard<std::mutex> W(WriterMu);
  CatalogSnapshotRef Cur = snapshot();
  auto Next = std::make_shared<CatalogSnapshot>(*Cur);
  Next->Epoch = Cur->epoch() + 1;
  Next->Tensors.erase(Name);
  std::lock_guard<std::mutex> L(Mu);
  Snap = std::move(Next);
  return Snap->epoch();
}

//===- serve/catalog.cpp - Versioned tensor catalog with snapshots --------===//

#include "serve/catalog.h"

#include "support/assert.h"

#include <algorithm>

using namespace etch;

size_t CatalogTensor::nnz() const {
  switch (K) {
  case Kind::Csr:
    return Csr.nnz();
  case Kind::Sparse:
    return Sparse.nnz();
  case Kind::Dense:
    return Dense.Val.size();
  }
  ETCH_UNREACHABLE("unknown catalog tensor kind");
}

CatalogTensorRef CatalogSnapshot::find(const std::string &Name) const {
  auto It = Tensors.find(Name);
  return It == Tensors.end() ? nullptr : It->second;
}

TensorCatalog::TensorCatalog() : Snap(std::make_shared<CatalogSnapshot>()) {}

CatalogSnapshotRef TensorCatalog::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  return Snap;
}

uint64_t TensorCatalog::installLocked(std::shared_ptr<CatalogTensor> T) {
  // Callers hold WriterMu; build the successor snapshot from the current
  // one (map copy, tensors shared) and swap it in under Mu.
  CatalogSnapshotRef Cur = snapshot();
  auto Next = std::make_shared<CatalogSnapshot>(*Cur);
  Next->Epoch = Cur->epoch() + 1;
  T->Version = Next->Epoch;
  Next->Tensors[T->Name] = std::move(T);
  std::lock_guard<std::mutex> L(Mu);
  Snap = std::move(Next);
  return Snap->epoch();
}

uint64_t TensorCatalog::putCsr(const std::string &Name, CsrMatrix<double> M,
                               Attr Row, Attr Col) {
  ETCH_ASSERT(Row < Col, "attributes must follow the global order");
  std::lock_guard<std::mutex> W(WriterMu);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Csr;
  T->Shp = {Row, Col};
  T->Stats = statsOfCsr(Name, M, Row, Col);
  T->Csr = std::move(M);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++WriteStats.Replaces;
  }
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::putSparse(const std::string &Name,
                                  SparseVector<double> V, Attr A) {
  std::lock_guard<std::mutex> W(WriterMu);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Sparse;
  T->Shp = {A};
  T->Stats = statsOfSparseVector(Name, V, A);
  T->Sparse = std::move(V);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++WriteStats.Replaces;
  }
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::putDense(const std::string &Name,
                                 DenseVector<double> V, Attr A) {
  std::lock_guard<std::mutex> W(WriterMu);
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Dense;
  T->Shp = {A};
  T->Stats = statsOfDenseVector(Name, V, A);
  T->Dense = std::move(V);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++WriteStats.Replaces;
  }
  return installLocked(std::move(T));
}

uint64_t TensorCatalog::appendCsr(const std::string &Name,
                                  const std::vector<CooEntry<double>> &Delta) {
  std::lock_guard<std::mutex> W(WriterMu);
  CatalogTensorRef Old = snapshot()->find(Name);
  if (!Old || Old->K != CatalogTensor::Kind::Csr)
    return 0;
  const CsrMatrix<double> &M = Old->Csr;
  for (const CooEntry<double> &E : Delta)
    ETCH_ASSERT(E.Row >= 0 && E.Row < M.NumRows && E.Col >= 0 &&
                    E.Col < M.NumCols,
                "append entry out of range");
  // Sort only the delta; the predecessor is already row-major. One
  // two-pointer merge pass per row builds the successor, dropping sums
  // that cancel to exact zero.
  std::vector<CooEntry<double>> D = canonicalizeCoo(Delta);
  uint64_t Zeros = 0;
  CsrMatrix<double> Next;
  Next.NumRows = M.NumRows;
  Next.NumCols = M.NumCols;
  Next.Pos.assign(1, 0);
  Next.Pos.reserve(static_cast<size_t>(M.NumRows) + 1);
  Next.Crd.reserve(M.nnz() + D.size());
  Next.Val.reserve(M.nnz() + D.size());
  size_t DI = 0;
  for (Idx R = 0; R < M.NumRows; ++R) {
    size_t Q = M.Pos[static_cast<size_t>(R)];
    const size_t QEnd = M.Pos[static_cast<size_t>(R) + 1];
    while (Q < QEnd || (DI < D.size() && D[DI].Row == R)) {
      bool TakeDelta = DI < D.size() && D[DI].Row == R &&
                       (Q == QEnd || D[DI].Col <= M.Crd[Q]);
      if (TakeDelta && Q < QEnd && D[DI].Col == M.Crd[Q]) {
        double X = M.Val[Q] + D[DI].Val;
        if (X != 0.0) {
          Next.Crd.push_back(M.Crd[Q]);
          Next.Val.push_back(X);
        } else {
          ++Zeros;
        }
        ++Q;
        ++DI;
      } else if (TakeDelta) {
        Next.Crd.push_back(D[DI].Col);
        Next.Val.push_back(D[DI].Val);
        ++DI;
      } else {
        Next.Crd.push_back(M.Crd[Q]);
        Next.Val.push_back(M.Val[Q]);
        ++Q;
      }
    }
    Next.Pos.push_back(Next.Crd.size());
  }
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Csr;
  T->Shp = Old->Shp;
  T->Csr = std::move(Next);
  T->Stats = statsOfCsr(Name, T->Csr, Old->Shp[0], Old->Shp[1]);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++WriteStats.Appends;
    WriteStats.DeltaNnz += D.size();
    WriteStats.MergedNnz += M.nnz();
    WriteStats.CompactedZeros += Zeros;
  }
  return installLocked(std::move(T));
}

uint64_t
TensorCatalog::appendSparse(const std::string &Name,
                            const std::vector<std::pair<Idx, double>> &Delta) {
  std::lock_guard<std::mutex> W(WriterMu);
  CatalogTensorRef Old = snapshot()->find(Name);
  if (!Old || Old->K != CatalogTensor::Kind::Sparse)
    return 0;
  const SparseVector<double> &V = Old->Sparse;
  // Canonicalize the delta (sort, sum duplicates), then merge the two
  // sorted runs, dropping exact-zero sums.
  std::vector<std::pair<Idx, double>> D = Delta;
  std::sort(D.begin(), D.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  std::vector<std::pair<Idx, double>> DC;
  DC.reserve(D.size());
  for (size_t I = 0; I < D.size();) {
    Idx C = D[I].first;
    ETCH_ASSERT(C >= 0 && C < V.Size, "append coordinate out of range");
    double X = 0.0;
    for (; I < D.size() && D[I].first == C; ++I)
      X += D[I].second;
    DC.emplace_back(C, X);
  }
  uint64_t Zeros = 0;
  SparseVector<double> Next(V.Size);
  Next.Crd.reserve(V.nnz() + DC.size());
  Next.Val.reserve(V.nnz() + DC.size());
  size_t I = 0, J = 0;
  while (I < V.Crd.size() || J < DC.size()) {
    if (J == DC.size() || (I < V.Crd.size() && V.Crd[I] < DC[J].first)) {
      Next.push(V.Crd[I], V.Val[I]);
      ++I;
    } else if (I == V.Crd.size() || DC[J].first < V.Crd[I]) {
      if (DC[J].second != 0.0)
        Next.push(DC[J].first, DC[J].second);
      else
        ++Zeros;
      ++J;
    } else {
      double X = V.Val[I] + DC[J].second;
      if (X != 0.0)
        Next.push(V.Crd[I], X);
      else
        ++Zeros;
      ++I;
      ++J;
    }
  }
  auto T = std::make_shared<CatalogTensor>();
  T->Name = Name;
  T->K = CatalogTensor::Kind::Sparse;
  T->Shp = Old->Shp;
  T->Stats = statsOfSparseVector(Name, Next, Old->Shp[0]);
  T->Sparse = std::move(Next);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++WriteStats.Appends;
    WriteStats.DeltaNnz += DC.size();
    WriteStats.MergedNnz += V.nnz();
    WriteStats.CompactedZeros += Zeros;
  }
  return installLocked(std::move(T));
}

CatalogStats TensorCatalog::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return WriteStats;
}

uint64_t TensorCatalog::erase(const std::string &Name) {
  std::lock_guard<std::mutex> W(WriterMu);
  CatalogSnapshotRef Cur = snapshot();
  auto Next = std::make_shared<CatalogSnapshot>(*Cur);
  Next->Epoch = Cur->epoch() + 1;
  Next->Tensors.erase(Name);
  std::lock_guard<std::mutex> L(Mu);
  Snap = std::move(Next);
  return Snap->epoch();
}

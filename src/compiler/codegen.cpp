//===- compiler/codegen.cpp - Destination passing and compile ------------===//

#include "compiler/codegen.h"

#include "support/assert.h"

#include <algorithm>

using namespace etch;

Dest etch::scalarDest(const ScalarAlgebra &Alg, std::string VarName) {
  Dest D;
  D.Accum = [Alg, VarName](ERef V) {
    return PStmt::storeVar(
        VarName, Alg.add(EExpr::var(VarName, Alg.Ty), std::move(V)));
  };
  D.Live = {VarName};
  return D;
}

namespace {

Dest denseDestAt(const ScalarAlgebra &Alg, std::string ArrName, ERef Offset,
                 std::vector<ERef> Strides) {
  Dest D;
  if (Strides.empty()) {
    D.Accum = [Alg, ArrName, Offset](ERef V) {
      return PStmt::storeArr(
          ArrName, Offset,
          Alg.add(EExpr::access(ArrName, Alg.Ty, Offset), std::move(V)));
    };
    return D;
  }
  D.Locate = [Alg, ArrName, Offset,
              Strides](ERef Index) -> std::tuple<PRef, Dest, PRef> {
    ERef Step = eAddI(Offset, EExpr::call(Ops::mulI(),
                                          {std::move(Index), Strides[0]}));
    std::vector<ERef> Rest(Strides.begin() + 1, Strides.end());
    return {PStmt::noop(),
            denseDestAt(Alg, ArrName, std::move(Step), std::move(Rest)),
            PStmt::noop()};
  };
  return D;
}

} // namespace

Dest etch::denseDest(const ScalarAlgebra &Alg, std::string ArrName,
                     std::vector<ERef> Strides) {
  ETCH_ASSERT(!Strides.empty(), "dense destination needs at least one level");
  Dest D = denseDestAt(Alg, ArrName, eConstI(0), std::move(Strides));
  D.Live = {std::move(ArrName)};
  return D;
}

Dest etch::sparseVecDest(const ScalarAlgebra &Alg, std::string CrdArr,
                         std::string ValArr, std::string CntVar) {
  Dest D;
  D.Locate = [Alg, CrdArr, ValArr,
              CntVar](ERef Index) -> std::tuple<PRef, Dest, PRef> {
    ERef Cnt = eVarI(CntVar);
    // crd[cnt] = index; val[cnt] = 0; cnt = cnt + 1.
    PRef Prep = PStmt::seq(
        {PStmt::storeArr(CrdArr, Cnt, std::move(Index)),
         PStmt::storeArr(ValArr, Cnt, Alg.Zero),
         PStmt::storeVar(CntVar, eAddI(Cnt, eConstI(1)))});
    // The leaf accumulates into position cnt - 1.
    Dest Leaf;
    Leaf.Accum = [Alg, ValArr, CntVar](ERef V) {
      ERef Pos = eSubI(eVarI(CntVar), eConstI(1));
      return PStmt::storeArr(
          ValArr, Pos,
          Alg.add(EExpr::access(ValArr, Alg.Ty, Pos), std::move(V)));
    };
    return {std::move(Prep), std::move(Leaf), PStmt::noop()};
  };
  D.Live = {CrdArr, ValArr, CntVar};
  return D;
}

Dest etch::hashDest(const ScalarAlgebra &Alg, std::string KeyArr,
                    std::string ValArr, std::string CntVar, int64_t TabSize) {
  ETCH_ASSERT(TabSize > 0, "hash destination needs a positive table size");
  Dest D;
  D.Locate = [Alg, KeyArr, ValArr, CntVar,
              TabSize](ERef Index) -> std::tuple<PRef, Dest, PRef> {
    // One fresh slot variable per locate site; it lives across the nested
    // value's emission so the leaf can accumulate into the probed slot.
    static int Counter = 0;
    std::string H = "hsl" + std::to_string(Counter++);
    auto KeyAt = [&] {
      return EExpr::access(KeyArr, ImpType::I64, eVarI(H));
    };
    auto NeI = [](ERef A, ERef B) {
      return EExpr::call(Ops::neI(), {std::move(A), std::move(B)});
    };
    // h = index mod TabSize; while (key[h] != -1 && key[h] != index)
    //   h = (h + 1) mod TabSize;
    // if (key[h] == -1) { key[h] = index; val[h] = 0; cnt = cnt + 1; }
    PRef Prep = PStmt::seq(
        {PStmt::declVar(
             H, ImpType::I64,
             EExpr::call(Ops::modI(), {Index, eConstI(TabSize)})),
         PStmt::whileLoop(
             eAnd(NeI(KeyAt(), eConstI(-1)), NeI(KeyAt(), Index)),
             PStmt::storeVar(
                 H, EExpr::call(Ops::modI(), {eAddI(eVarI(H), eConstI(1)),
                                              eConstI(TabSize)}))),
         PStmt::branch(
             eEqI(KeyAt(), eConstI(-1)),
             PStmt::seq({PStmt::storeArr(KeyArr, eVarI(H), Index),
                         PStmt::storeArr(ValArr, eVarI(H), Alg.Zero),
                         PStmt::storeVar(CntVar,
                                         eAddI(eVarI(CntVar), eConstI(1)))}),
             PStmt::noop())});
    Dest Leaf;
    Leaf.Accum = [Alg, ValArr, H](ERef V) {
      return PStmt::storeArr(
          ValArr, eVarI(H),
          Alg.add(EExpr::access(ValArr, Alg.Ty, eVarI(H)), std::move(V)));
    };
    return {std::move(Prep), std::move(Leaf), PStmt::noop()};
  };
  D.Live = {KeyArr, ValArr, CntVar};
  return D;
}

PRef etch::compileValue(const Dest &D, const SynValue &V) {
  if (V.isLeaf()) {
    ETCH_ASSERT(D.Accum, "scalar value into a non-scalar destination");
    return D.Accum(V.Scalar);
  }
  return compileStream(D, V.Inner);
}

PRef etch::compileStream(const Dest &D, const SynRef &S) {
  ETCH_ASSERT(S, "null stream");

  // State declarations (zero-initialised so masked inits stay safe).
  // Reusing one stream object on both sides of an operator (e.g. x * x)
  // duplicates its variables in Vars; declare each name once.
  std::vector<PRef> Decls;
  std::vector<std::string> Seen;
  for (const VarDecl &V : S->Vars) {
    if (std::find(Seen.begin(), Seen.end(), V.Name) != Seen.end())
      continue;
    Seen.push_back(V.Name);
    ERef Zero = V.Ty == ImpType::I64   ? eConstI(0)
                : V.Ty == ImpType::F64 ? eConstF(0.0)
                                       : eBool(false);
    Decls.push_back(PStmt::declVar(V.Name, V.Ty, Zero));
  }

  // The body of the ready branch: locate the sub-destination (indexed
  // levels) or reuse this one (contracted levels), then recurse.
  PRef EmitBody;
  if (S->Contracted) {
    EmitBody = compileValue(D, S->Value);
  } else {
    ETCH_ASSERT(D.Locate, "stream level into a scalar destination");
    auto [Prep, Sub, Post] = D.Locate(S->Index);
    EmitBody = PStmt::seq({std::move(Prep), compileValue(Sub, S->Value),
                           std::move(Post)});
  }

  // The skip target must be latched into a temporary: skip loops mutate the
  // state that S->Index reads, so re-evaluating the raw expression inside
  // the search loop would chase a moving (eventually out-of-bounds) target.
  auto CallSkip = [&](const std::function<PRef(ERef)> &Skip) {
    static int Counter = 0;
    std::string T = "skc" + std::to_string(Counter++);
    return PStmt::seq2(PStmt::declVar(T, ImpType::I64, S->Index),
                       Skip(eVarI(T)));
  };

  // Figure 15's loop template.
  PRef Loop = PStmt::whileLoop(
      S->Valid,
      PStmt::branch(S->Ready,
                    PStmt::seq2(std::move(EmitBody), CallSkip(S->Skip1)),
                    CallSkip(S->Skip0)));

  std::vector<PRef> All = std::move(Decls);
  All.push_back(S->Init);
  All.push_back(std::move(Loop));
  return PStmt::seq(std::move(All));
}

//===- compiler/c_emit.h - Emitting P programs as C ------------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final lowering of the Etch pipeline (Figure 1): `P` maps directly to
/// C. `emitCStatements` renders a program body; `emitCProgram` wraps it in
/// a free-standing translation unit with the input arrays baked in as
/// static initialisers and the requested outputs printed to stdout — the
/// form used by the golden tests, which compile the result with the system
/// C compiler and compare against the VM and the denotational oracle.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_C_EMIT_H
#define ETCH_COMPILER_C_EMIT_H

#include "compiler/imp.h"
#include "compiler/vm.h"

#include <string>
#include <vector>

namespace etch {

/// Renders \p Body as C statements at the given indent level.
std::string emitCStatements(const PRef &Body, int Indent = 1);

/// Specification of what a generated program prints when it finishes.
struct COutputSpec {
  std::vector<std::string> Scalars; ///< Printed as "name=value".
  /// (name, length) pairs printed as "name[i]=value" lines.
  std::vector<std::pair<std::string, int64_t>> Arrays;
};

/// Renders a complete C translation unit: includes, any custom-op preludes
/// found in \p Body, the arrays of \p Inputs baked as static data, main()
/// running \p Body, and printf lines for \p Outputs.
std::string emitCProgram(const PRef &Body, const VmMemory &Inputs,
                         const COutputSpec &Outputs);

} // namespace etch

#endif // ETCH_COMPILER_C_EMIT_H

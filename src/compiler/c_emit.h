//===- compiler/c_emit.h - Emitting P programs as C ------------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final lowering of the Etch pipeline (Figure 1): `P` maps directly to
/// C, in two packagings.
///
/// `emitCStatements` renders a program body; `emitCProgram` wraps it in a
/// free-standing translation unit with the input arrays baked in as static
/// initialisers and the requested outputs printed to stdout — the form used
/// by the golden tests, which compile the result with the system C compiler
/// and compare against the VM and the denotational oracle.
///
/// `emitCKernel` instead renders the program as a *callable kernel*: an
/// `extern "C"` function taking pointers to the typed scalar/array memory
/// through a fixed context struct (EtchJitAbi below), with nothing baked
/// in, so the same compiled object serves any inputs. The kernel preserves
/// the tree VM's observable semantics: every array access and store is
/// bounds-checked and every read of a possibly-undefined name is guarded,
/// with the exact error text the tree VM produces, and (optionally) the
/// same per-statement step accounting. This is the unit the JIT backend
/// (compiler/jit.h) compiles with the system C compiler and dlopens.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_C_EMIT_H
#define ETCH_COMPILER_C_EMIT_H

#include "compiler/imp.h"
#include "compiler/vm.h"

#include <optional>
#include <string>
#include <vector>

namespace etch {

/// Renders \p Body as C statements at the given indent level.
std::string emitCStatements(const PRef &Body, int Indent = 1);

/// Specification of what a generated program prints when it finishes.
struct COutputSpec {
  std::vector<std::string> Scalars; ///< Printed as "name=value".
  /// (name, length) pairs printed as "name[i]=value" lines.
  std::vector<std::pair<std::string, int64_t>> Arrays;
};

/// Renders a complete C translation unit: includes, any custom-op preludes
/// found in \p Body, the arrays of \p Inputs baked as static data, main()
/// running \p Body, and printf lines for \p Outputs.
std::string emitCProgram(const PRef &Body, const VmMemory &Inputs,
                         const COutputSpec &Outputs);

//===----------------------------------------------------------------------===//
// Callable kernels (the JIT backend's unit of compilation)
//===----------------------------------------------------------------------===//

/// The kernel ABI version. Rendered into every kernel as the exported
/// `etch_jit_abi` symbol and folded into the content-address, so a cached
/// object from an older layout can never be dispatched against the current
/// context struct. Bump when EtchJitCtx (see c_emit.cpp / jit.cpp) changes.
inline constexpr int32_t EtchJitAbi = 1;

/// The exported entry point of every kernel.
inline constexpr const char *EtchJitEntrySymbol = "etch_kernel_main";

/// Host-side mirror of the `etch_jit_ctx` struct every kernel is compiled
/// against (emitCKernel renders the C twin textually; both are standard
/// layout with identical member types/order, so they match under the
/// platform ABI). Slot indices are manifest positions. Array element
/// buffers are typed per the manifest, with Bool stored as uint8_t.
struct EtchJitCtx {
  // Inputs (host-owned; arr_data buffers may be written by the kernel, so
  // the host passes private copies of written-back arrays).
  void *const *arr_data;
  const int64_t *arr_len;
  const uint8_t *arr_def;
  const int64_t *sc_i;
  const double *sc_f;
  const uint8_t *sc_b;
  const uint8_t *sc_def;
  int64_t steps_budget;
  // Outputs. err/steps_used are always valid after a call; the out_*
  // slots only on success (return 0). out_arr_owned marks kernel-calloc'd
  // buffers the host must free().
  int64_t steps_used;
  void **out_arr_data;
  int64_t *out_arr_len;
  uint8_t *out_arr_def;
  uint8_t *out_arr_owned;
  int64_t *out_sc_i;
  double *out_sc_f;
  uint8_t *out_sc_b;
  uint8_t *out_sc_def;
  char err[512];
};

/// Signature of the dlsym'd kernel entry point: 0 = success, nonzero =
/// error (text in ctx->err).
using EtchJitEntryFn = int32_t (*)(EtchJitCtx *);

/// One named scalar of a kernel's interface. `WrittenBack` marks scalars
/// the program defines (DeclVar/StoreVar); their final values are surfaced
/// through the context's output slots, mirroring bytecodeRun's write-back.
struct CKernelScalar {
  std::string Name;
  ImpType Ty;
  bool WrittenBack;
};

/// One named array of a kernel's interface. Input arrays are host-owned
/// buffers; arrays the program declares (DeclArr) are kernel-allocated and
/// handed back through the output slots with an ownership flag.
struct CKernelArray {
  std::string Name;
  ImpType Elem;
  bool WrittenBack; ///< Declared or stored-to by the program.
};

/// A kernel's complete interface, in a deterministic (name-sorted) order.
/// Index in these vectors == slot index in the context struct's arrays.
struct CKernelManifest {
  std::vector<CKernelScalar> Scalars;
  std::vector<CKernelArray> Arrays;

  int scalarIndex(const std::string &Name) const;
  int arrayIndex(const std::string &Name) const;
};

/// Derives the interface of \p Body: every scalar and array name with its
/// static type and write-back flag. Returns nullopt (with a diagnostic in
/// \p Err) when the program lies outside the statically-typed fragment —
/// one name used at two types — which the IR verifier rules out for
/// compiler output; callers degrade to the bytecode VM.
std::optional<CKernelManifest> deriveKernelManifest(const PRef &Body,
                                                    std::string *Err = nullptr);

/// Emission options for `emitCKernel`.
struct CKernelOptions {
  /// Charge steps exactly like the tree VM (one per statement execution and
  /// per while-iteration check) against the context's budget, reporting
  /// consumption and the VM's "step budget exhausted" error. Off by default:
  /// production kernels skip the counter so the C optimizer can vectorize.
  bool CountSteps = false;
  /// When >= 2 (and steps are not counted), every `while (i < n)` loop
  /// whose bound is loop-invariant — the shape of a dense tail — is
  /// emitted blocked: an outer loop re-evaluates the full condition (and
  /// its definedness guards) once per block of this many iterations, and
  /// a counted inner loop runs the body against a precomputed block end.
  /// The state sequence is identical for *any* body, because the inner
  /// bound is min(i + tile, n) and the outer loop rechecks `i < n`, so
  /// this is observable-behavior-preserving, not a heuristic. The planner
  /// (planner/indexing.h) passes its chosen tile through
  /// JitOptions::TileDenseTails.
  int64_t TileDenseTails = 0;
};

/// Renders \p Body as a self-contained kernel translation unit against
/// \p M (which must come from deriveKernelManifest on the same body).
/// Expression evaluation is linearized into temporaries so evaluation
/// order, short-circuiting, and error precedence match the tree VM's
/// interpreter exactly.
std::string emitCKernel(const PRef &Body, const CKernelManifest &M,
                        const CKernelOptions &Opts = {});

} // namespace etch

#endif // ETCH_COMPILER_C_EMIT_H

//===- compiler/jit.h - JIT-to-native backend ------------------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution backend: a `P` program is rendered as a callable
/// kernel (c_emit.h), compiled with the system C compiler
/// (`cc -O2 -fPIC -shared`, discovered and probed once per process), and
/// `dlopen`ed for dispatch. In front of the compiler sits a
/// content-addressed kernel cache: the key is a SHA-256 over the full
/// generated C source (which pins the optimized P IR and the format
/// layout), the compiler identity and flags, the kernel ABI version, and
/// an optional caller-supplied tag. Repeated queries — including
/// planner-enumerated plans and hashed-format realizations — pay
/// compilation exactly once, with in-process handle reuse and on-disk
/// reuse across runs.
///
/// Failure paths degrade, never abort: no compiler found, a compile
/// error, or a dlopen failure makes `jitCompile` return null with a
/// diagnostic, and `nativeRunWithFallback` silently switches to the
/// bytecode VM after a one-time warning. A cache entry that no longer
/// loads (corrupted .so) is treated as a miss and recompiled.
///
/// Cache hygiene: every generated `.c`/`.so` lives under one cache
/// directory (`--jit-cache-dir` flags, `ETCH_JIT_CACHE` env, or
/// `$XDG_CACHE_HOME/etch-jit-cache`), written atomically
/// (temp + rename), with size-bounded oldest-first eviction.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_JIT_H
#define ETCH_COMPILER_JIT_H

#include "compiler/c_emit.h"
#include "compiler/vm.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace etch {

/// The probed system C compiler. `Available` is decided once per process
/// by compiling and dlopening a trivial kernel.
struct JitToolchain {
  bool Available = false;
  std::string Cmd;         ///< e.g. "cc" (ETCH_CC > CC > cc).
  std::string VersionLine; ///< First line of `Cmd --version` (keyed).
  std::string Flags;       ///< e.g. "-O2 -fPIC -shared" (keyed).
  std::string Diag;        ///< Why unavailable, when !Available.
};

/// Returns the per-process toolchain (probing on first call). Honors the
/// ETCH_CC / CC environment variables at first use.
const JitToolchain &jitToolchain();

/// Drops the cached probe result (and the in-process kernel-handle cache)
/// so the next jitToolchain() re-reads ETCH_CC/CC — lets tests exercise
/// the bogus-compiler fallback path inside one process.
void jitResetToolchainForTest();

/// Process-wide cache counters (for EXPLAIN-style reporting and tests).
struct JitCacheStats {
  uint64_t MemHits = 0;   ///< Served from the in-process handle cache.
  uint64_t DiskHits = 0;  ///< Loaded an existing .so from the cache dir.
  uint64_t Compiles = 0;  ///< Invoked the C compiler.
  uint64_t Recompiles = 0; ///< A cached .so failed to load (corruption).
  uint64_t HandleEvictions = 0; ///< LRU-dropped from the in-process map.
  uint64_t HandlesResident = 0; ///< Entries currently in the in-process map.
};
JitCacheStats jitCacheStats();
void jitResetCacheStatsForTest();

/// The in-process dlopen-handle map is LRU-bounded so a long-lived server
/// compiling many distinct kernels does not accumulate one handle per key
/// forever. Eviction drops only the map's reference: a kernel stays loaded
/// (and its `NativeCall`s stay valid) while any NativeKernelRef pins it;
/// dlclose happens when the last reference dies.
inline constexpr size_t JitHandleCacheDefaultCap = 256;

/// Sets the handle-map cap (clamped to >= 1). Entries past the new cap are
/// evicted immediately, oldest first.
void jitSetHandleCacheCap(size_t Cap);
size_t jitHandleCacheCap();

/// Resolves the cache directory: \p Override if nonempty, else
/// $ETCH_JIT_CACHE, else $XDG_CACHE_HOME/etch-jit-cache, else
/// $HOME/.cache/etch-jit-cache, else /tmp/etch-jit-cache-<uid>. The
/// directory is created if missing.
std::string jitCacheDir(const std::string &Override = "");

/// Deletes oldest-mtime .c/.so pairs until the directory's total size is
/// at most \p MaxBytes. Returns the number of entries evicted.
int jitEvictCache(const std::string &Dir, uint64_t MaxBytes);

/// The default size bound applied after each compile (64 MiB — kernels
/// are a few KiB each, so this is thousands of entries).
inline constexpr uint64_t JitCacheDefaultMaxBytes = 64ull << 20;

class NativeKernel;
using NativeKernelRef = std::shared_ptr<const NativeKernel>;

struct JitOptions {
  /// Count steps exactly like the tree VM (for parity gating); production
  /// kernels leave this off so the C optimizer is unconstrained.
  bool CountSteps = false;
  /// Emit loop-invariant-bound while loops blocked into counted inner
  /// loops of this many iterations (see CKernelOptions::TileDenseTails;
  /// ignored when CountSteps is on). The tile is part of the generated
  /// source, hence of the content-address — distinct tiles cache as
  /// distinct kernels.
  int64_t TileDenseTails = 0;
  /// Cache directory override (see jitCacheDir).
  std::string CacheDir;
  /// Extra content folded into the cache key (e.g. a format-layout tag).
  std::string ExtraKey;
  /// Apply size-bounded eviction after a compile (default on).
  bool Evict = true;
  /// Refuse to JIT when the generated C source exceeds this many bytes
  /// (0 = unlimited). Deeply nested stream programs can lower to
  /// megabytes of C that the system compiler chews on for minutes at
  /// -O2; past this bound jitCompile declines (Err starts with
  /// \ref JitSourceTooLargePrefix) and callers fall back to the
  /// bytecode VM, whose cost is linear in program size. Typical kernels
  /// are tens of KiB, so the default leaves ~100x headroom.
  uint64_t MaxSourceBytes = 4ull << 20;
};

/// Stable prefix of the jitCompile diagnostic produced when
/// JitOptions::MaxSourceBytes rejects a kernel — lets callers (the
/// fuzzer's native leg) tell a deliberate size-cap skip from a real
/// emitter or toolchain failure.
inline constexpr const char *JitSourceTooLargePrefix =
    "kernel source too large";

/// A loaded kernel: dlopen'd shared object + manifest. Thread-compatible;
/// run() is const and re-entrant (each call owns its marshaling buffers).
class NativeKernel {
public:
  ~NativeKernel();
  NativeKernel(const NativeKernel &) = delete;
  NativeKernel &operator=(const NativeKernel &) = delete;

  const CKernelManifest &manifest() const { return Manifest; }
  bool countsSteps() const { return CountSteps; }
  /// The content-address (hex SHA-256) this kernel is cached under.
  const std::string &key() const { return Key; }

  /// Full VmMemory contract, mirroring bytecodeRun: marshal inputs (with
  /// the same binding-type-mismatch errors), dispatch, and on success
  /// write every defined scalar/array back; memory is untouched on error.
  /// Steps is meaningful only when countsSteps().
  VmRunResult run(VmMemory &Memory, int64_t MaxSteps = int64_t(1) << 28) const;

private:
  friend NativeKernelRef jitCompile(const PRef &, const JitOptions &,
                                    std::string *);
  friend class NativeCall;
  NativeKernel() = default;

  CKernelManifest Manifest;
  bool CountSteps = false;
  std::string Key;
  void *Handle = nullptr; ///< dlopen handle (closed by the destructor).
  EtchJitEntryFn Entry = nullptr;
};

/// Compiles \p Body (or fetches it from the cache). Returns null with a
/// diagnostic in \p Err when the program is outside the statically-typed
/// kernel fragment, no toolchain is available, or compilation/loading
/// fails — callers fall back to the bytecode VM.
NativeKernelRef jitCompile(const PRef &Body, const JitOptions &Opts = {},
                           std::string *Err = nullptr);

/// A prepared dispatch: inputs are marshaled once into resident typed
/// buffers, then invoke() reuses them — the cache-hit steady state the
/// bench rows measure (run(VmMemory&) pays the variant conversion every
/// call). Input arrays the program stores into are re-seeded from a
/// pristine copy before each invoke, so repeated invocations see the
/// same initial memory.
class NativeCall {
public:
  explicit NativeCall(NativeKernelRef K);

  /// Binds inputs from \p Memory (same typing rules as NativeKernel::run).
  /// Returns false with a diagnostic on a type mismatch.
  bool bind(const VmMemory &Memory, std::string *Err = nullptr);

  /// Dispatches against the resident buffers. Outputs are captured
  /// internally (read them back with scalar()); \p Memory from bind() is
  /// never written.
  VmRunResult invoke(int64_t MaxSteps = int64_t(1) << 28);

  /// The value of a scalar after the last successful invoke().
  std::optional<ImpValue> scalar(const std::string &Name) const;

private:
  NativeKernelRef K;
  // Resident manifest-indexed buffers.
  std::vector<std::vector<int64_t>> ArrI;
  std::vector<std::vector<double>> ArrF;
  std::vector<std::vector<uint8_t>> ArrB;
  std::vector<void *> ArrData;
  std::vector<int64_t> ArrLen;
  std::vector<uint8_t> ArrDef;
  std::vector<int64_t> ScI;
  std::vector<double> ScF;
  std::vector<uint8_t> ScB;
  std::vector<uint8_t> ScDef;
  // Pristine copies of bound arrays the kernel writes in place.
  std::vector<std::pair<size_t, std::vector<int64_t>>> RestoreI;
  std::vector<std::pair<size_t, std::vector<double>>> RestoreF;
  std::vector<std::pair<size_t, std::vector<uint8_t>>> RestoreB;
  // Last invoke's scalar outputs.
  std::vector<int64_t> OutScI;
  std::vector<double> OutScF;
  std::vector<uint8_t> OutScB;
  std::vector<uint8_t> OutScDef;
};

/// Production entry point: native when possible, else the bytecode VM
/// (one warning per process on the first fallback). \p Opts.CountSteps is
/// forced on so VmRunResult::Steps stays meaningful either way.
VmRunResult nativeRunWithFallback(const PRef &Body, VmMemory &Memory,
                                  int64_t MaxSteps = int64_t(1) << 28,
                                  const JitOptions &Opts = {});

/// Hex SHA-256 of \p Data (exposed for cache tests).
std::string jitSha256Hex(const std::string &Data);

} // namespace etch

#endif // ETCH_COMPILER_JIT_H

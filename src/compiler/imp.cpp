//===- compiler/imp.cpp - The target IRs E and P --------------------------===//

#include "compiler/imp.h"

#include <cinttypes>
#include <cstdio>
#include <limits>

using namespace etch;

const char *etch::impTypeName(ImpType T) {
  switch (T) {
  case ImpType::I64:
    return "i64";
  case ImpType::F64:
    return "f64";
  case ImpType::Bool:
    return "bool";
  }
  ETCH_UNREACHABLE("unknown ImpType");
}

ImpType etch::impTypeOf(const ImpValue &V) {
  if (std::holds_alternative<int64_t>(V))
    return ImpType::I64;
  if (std::holds_alternative<double>(V))
    return ImpType::F64;
  return ImpType::Bool;
}

//===----------------------------------------------------------------------===//
// EExpr
//===----------------------------------------------------------------------===//

ERef EExpr::var(std::string Name, ImpType Ty) {
  auto E = std::shared_ptr<EExpr>(new EExpr());
  E->Kind = EKind::Var;
  E->Name = std::move(Name);
  E->Ty = Ty;
  return E;
}

ERef EExpr::constant(ImpValue V) {
  auto E = std::shared_ptr<EExpr>(new EExpr());
  E->Kind = EKind::Const;
  E->Ty = impTypeOf(V);
  E->Payload = V;
  return E;
}

ERef EExpr::access(std::string Array, ImpType Elem, ERef Index) {
  ETCH_ASSERT(Index && Index->type() == ImpType::I64,
              "array index must be an i64 expression");
  auto E = std::shared_ptr<EExpr>(new EExpr());
  E->Kind = EKind::Access;
  E->Name = std::move(Array);
  E->Ty = Elem;
  E->Args.push_back(std::move(Index));
  return E;
}

ERef EExpr::call(const OpDef *Op, std::vector<ERef> Args) {
  ETCH_ASSERT(Op, "null op");
  ETCH_ASSERT(Args.size() == Op->ArgTypes.size(), "op arity mismatch");
  for (size_t I = 0; I < Args.size(); ++I) {
    ETCH_ASSERT(Args[I], "null op argument");
    ETCH_ASSERT(Args[I]->type() == Op->ArgTypes[I] ||
                    (Op->Lazy == OpDef::Laziness::Select && I > 0),
                "op argument type mismatch");
  }
  auto E = std::shared_ptr<EExpr>(new EExpr());
  E->Kind = EKind::Call;
  E->Ty = Op->Result;
  E->Op = Op;
  E->Args = std::move(Args);
  return E;
}

std::string EExpr::toString() const {
  switch (Kind) {
  case EKind::Var:
    return Name;
  case EKind::Const: {
    char Buf[64];
    if (const auto *I = std::get_if<int64_t>(&Payload)) {
      std::snprintf(Buf, sizeof(Buf), "%" PRId64, *I);
    } else if (const auto *D = std::get_if<double>(&Payload)) {
      if (*D == std::numeric_limits<double>::infinity())
        return "INFINITY";
      if (*D == -std::numeric_limits<double>::infinity())
        return "(-INFINITY)";
      std::snprintf(Buf, sizeof(Buf), "%.17g", *D);
      // Force a floating literal so C keeps the type.
      std::string S = Buf;
      if (S.find_first_of(".eEnif") == std::string::npos)
        S += ".0";
      return S;
    } else {
      return std::get<bool>(Payload) ? "1" : "0";
    }
    return Buf;
  }
  case EKind::Access:
    return Name + "[" + Args[0]->toString() + "]";
  case EKind::Call: {
    // Substitute {N} placeholders in the op's C format string.
    const std::string &F = Op->CFormat;
    std::string Out;
    for (size_t I = 0; I < F.size(); ++I) {
      if (F[I] == '{' && I + 2 < F.size() + 1) {
        size_t Close = F.find('}', I);
        ETCH_ASSERT(Close != std::string::npos, "bad op format string");
        int N = std::stoi(F.substr(I + 1, Close - I - 1));
        ETCH_ASSERT(N >= 0 && N < static_cast<int>(Args.size()),
                    "op format placeholder out of range");
        Out += Args[static_cast<size_t>(N)]->toString();
        I = Close;
      } else {
        Out += F[I];
      }
    }
    return Out;
  }
  }
  ETCH_UNREACHABLE("unknown EKind");
}

//===----------------------------------------------------------------------===//
// PStmt
//===----------------------------------------------------------------------===//

PRef PStmt::seq(std::vector<PRef> Stmts) {
  // Flatten nested sequences and drop no-ops for readable output.
  std::vector<PRef> Flat;
  for (auto &St : Stmts) {
    ETCH_ASSERT(St, "null statement");
    if (St->Kind == PKind::Noop)
      continue;
    if (St->Kind == PKind::Seq) {
      for (const auto &C : St->Children)
        Flat.push_back(C);
      continue;
    }
    Flat.push_back(std::move(St));
  }
  if (Flat.empty())
    return noop();
  if (Flat.size() == 1)
    return Flat[0];
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::Seq;
  P->Children = std::move(Flat);
  return P;
}

PRef PStmt::whileLoop(ERef Cond, PRef Body) {
  ETCH_ASSERT(Cond && Cond->type() == ImpType::Bool,
              "while condition must be boolean");
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::While;
  P->Cond = std::move(Cond);
  P->Children.push_back(std::move(Body));
  return P;
}

PRef PStmt::branch(ERef Cond, PRef Then, PRef Else) {
  ETCH_ASSERT(Cond && Cond->type() == ImpType::Bool,
              "branch condition must be boolean");
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::Branch;
  P->Cond = std::move(Cond);
  P->Children.push_back(std::move(Then));
  P->Children.push_back(std::move(Else));
  return P;
}

PRef PStmt::noop() {
  static PRef N = std::shared_ptr<PStmt>(new PStmt());
  return N;
}

PRef PStmt::storeVar(std::string Name, ERef Value) {
  ETCH_ASSERT(Value, "null store value");
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::StoreVar;
  P->Name = std::move(Name);
  P->Value = std::move(Value);
  return P;
}

PRef PStmt::storeArr(std::string Name, ERef Index, ERef Value) {
  ETCH_ASSERT(Index && Index->type() == ImpType::I64, "bad array index");
  ETCH_ASSERT(Value, "null store value");
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::StoreArr;
  P->Name = std::move(Name);
  P->Index = std::move(Index);
  P->Value = std::move(Value);
  return P;
}

PRef PStmt::declVar(std::string Name, ImpType Ty, ERef Init) {
  ETCH_ASSERT(Init, "null initialiser");
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::DeclVar;
  P->Name = std::move(Name);
  P->Ty = Ty;
  P->Value = std::move(Init);
  return P;
}

PRef PStmt::declArr(std::string Name, ImpType Ty, ERef Size) {
  ETCH_ASSERT(Size && Size->type() == ImpType::I64, "bad array size");
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::DeclArr;
  P->Name = std::move(Name);
  P->Ty = Ty;
  P->Value = std::move(Size);
  return P;
}

PRef PStmt::comment(std::string Text) {
  auto P = std::shared_ptr<PStmt>(new PStmt());
  P->Kind = PKind::Comment;
  P->Name = std::move(Text);
  return P;
}

std::string PStmt::toString(int IndentLevel) const {
  std::string Pad(static_cast<size_t>(IndentLevel) * 2, ' ');
  switch (Kind) {
  case PKind::Seq: {
    std::string Out;
    for (const auto &C : Children)
      Out += C->toString(IndentLevel);
    return Out;
  }
  case PKind::While: {
    std::string Out = Pad + "while (" + Cond->toString() + ") {\n";
    Out += Children[0]->toString(IndentLevel + 1);
    return Out + Pad + "}\n";
  }
  case PKind::Branch: {
    std::string Out = Pad + "if (" + Cond->toString() + ") {\n";
    Out += Children[0]->toString(IndentLevel + 1);
    if (Children[1]->Kind != PKind::Noop) {
      Out += Pad + "} else {\n";
      Out += Children[1]->toString(IndentLevel + 1);
    }
    return Out + Pad + "}\n";
  }
  case PKind::Noop:
    return "";
  case PKind::StoreVar:
    return Pad + Name + " = " + Value->toString() + ";\n";
  case PKind::StoreArr:
    return Pad + Name + "[" + Index->toString() + "] = " +
           Value->toString() + ";\n";
  case PKind::DeclVar:
    return Pad + std::string(impTypeName(Ty)) + " " + Name + " = " +
           Value->toString() + ";\n";
  case PKind::DeclArr:
    return Pad + std::string(impTypeName(Ty)) + " " + Name + "[" +
           Value->toString() + "];\n";
  case PKind::Comment:
    return Pad + "// " + Name + "\n";
  }
  ETCH_UNREACHABLE("unknown PKind");
}

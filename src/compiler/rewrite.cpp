//===- compiler/rewrite.cpp - Generic traversal over E and P -------------===//

#include "compiler/rewrite.h"

#include "compiler/ops.h"

using namespace etch;

ERef etch::rewriteExpr(const ERef &E, const ExprRewriter &Fn) {
  if (!E)
    return E;
  ERef Cur = E;
  if (!E->args().empty()) {
    std::vector<ERef> NewArgs;
    NewArgs.reserve(E->args().size());
    bool Changed = false;
    for (const ERef &A : E->args()) {
      ERef NA = rewriteExpr(A, Fn);
      Changed |= NA != A;
      NewArgs.push_back(std::move(NA));
    }
    if (Changed) {
      switch (E->kind()) {
      case EKind::Access:
        Cur = EExpr::access(E->name(), E->type(), std::move(NewArgs[0]));
        break;
      case EKind::Call:
        Cur = EExpr::call(E->op(), std::move(NewArgs));
        break;
      case EKind::Var:
      case EKind::Const:
        ETCH_UNREACHABLE("leaf expression with arguments");
      }
    }
  }
  if (Fn)
    if (ERef R = Fn(Cur))
      Cur = std::move(R);
  return Cur;
}

PRef etch::rewriteProgram(const PRef &P, const StmtRewriter &SFn,
                          const ExprRewriter &EFn) {
  if (!P)
    return P;

  auto RE = [&](const ERef &E) { return EFn ? rewriteExpr(E, EFn) : E; };

  PRef Cur = P;
  switch (P->kind()) {
  case PKind::Seq: {
    std::vector<PRef> NewCh;
    NewCh.reserve(P->children().size());
    bool Changed = false;
    for (const PRef &C : P->children()) {
      PRef NC = rewriteProgram(C, SFn, EFn);
      Changed |= NC != C;
      NewCh.push_back(std::move(NC));
    }
    if (Changed)
      Cur = PStmt::seq(std::move(NewCh));
    break;
  }
  case PKind::While: {
    ERef NC = RE(P->cond());
    PRef NB = rewriteProgram(P->children()[0], SFn, EFn);
    if (NC != P->cond() || NB != P->children()[0])
      Cur = PStmt::whileLoop(std::move(NC), std::move(NB));
    break;
  }
  case PKind::Branch: {
    ERef NC = RE(P->cond());
    PRef NT = rewriteProgram(P->children()[0], SFn, EFn);
    PRef NE = rewriteProgram(P->children()[1], SFn, EFn);
    if (NC != P->cond() || NT != P->children()[0] || NE != P->children()[1])
      Cur = PStmt::branch(std::move(NC), std::move(NT), std::move(NE));
    break;
  }
  case PKind::Noop:
  case PKind::Comment:
    break;
  case PKind::StoreVar: {
    ERef NV = RE(P->valueExpr());
    if (NV != P->valueExpr())
      Cur = PStmt::storeVar(P->name(), std::move(NV));
    break;
  }
  case PKind::StoreArr: {
    ERef NI = RE(P->indexExpr());
    ERef NV = RE(P->valueExpr());
    if (NI != P->indexExpr() || NV != P->valueExpr())
      Cur = PStmt::storeArr(P->name(), std::move(NI), std::move(NV));
    break;
  }
  case PKind::DeclVar: {
    ERef NV = RE(P->valueExpr());
    if (NV != P->valueExpr())
      Cur = PStmt::declVar(P->name(), P->type(), std::move(NV));
    break;
  }
  case PKind::DeclArr: {
    ERef NV = RE(P->valueExpr());
    if (NV != P->valueExpr())
      Cur = PStmt::declArr(P->name(), P->type(), std::move(NV));
    break;
  }
  }
  if (SFn)
    if (PRef R = SFn(Cur))
      Cur = std::move(R);
  return Cur;
}

void etch::forEachExprNode(const ERef &E,
                           const std::function<void(const EExpr &)> &Fn) {
  if (!E)
    return;
  Fn(*E);
  for (const ERef &A : E->args())
    forEachExprNode(A, Fn);
}

void etch::forEachStmtNode(const PRef &P,
                           const std::function<void(const PStmt &)> &Fn) {
  if (!P)
    return;
  Fn(*P);
  for (const PRef &C : P->children())
    forEachStmtNode(C, Fn);
}

void etch::forEachProgramExpr(const PRef &P,
                              const std::function<void(const ERef &)> &Fn) {
  forEachStmtNode(P, [&](const PStmt &S) {
    if (S.cond())
      Fn(S.cond());
    if (S.indexExpr())
      Fn(S.indexExpr());
    if (S.valueExpr())
      Fn(S.valueExpr());
  });
}

size_t etch::countStmtNodes(const PRef &P) {
  size_t N = 0;
  forEachStmtNode(P, [&](const PStmt &) { ++N; });
  return N;
}

size_t etch::countExprNodes(const PRef &P) {
  size_t N = 0;
  forEachProgramExpr(P, [&](const ERef &E) {
    forEachExprNode(E, [&](const EExpr &) { ++N; });
  });
  return N;
}

bool etch::exprEquals(const ERef &A, const ERef &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->kind() != B->kind() || A->type() != B->type())
    return false;
  switch (A->kind()) {
  case EKind::Var:
    return A->name() == B->name();
  case EKind::Const:
    return A->constant() == B->constant();
  case EKind::Access:
    if (A->name() != B->name())
      return false;
    break;
  case EKind::Call:
    if (A->op() != B->op())
      return false;
    break;
  }
  if (A->args().size() != B->args().size())
    return false;
  for (size_t I = 0; I < A->args().size(); ++I)
    if (!exprEquals(A->args()[I], B->args()[I]))
      return false;
  return true;
}

void etch::collectExprReads(const ERef &E, ReadSet &RS) {
  forEachExprNode(E, [&](const EExpr &N) {
    if (N.kind() == EKind::Var)
      RS.Scalars.insert(N.name());
    else if (N.kind() == EKind::Access)
      RS.Arrays.insert(N.name());
  });
}

void etch::collectStmtWrites(const PRef &P, WriteSet &WS) {
  forEachStmtNode(P, [&](const PStmt &S) {
    switch (S.kind()) {
    case PKind::StoreVar:
    case PKind::DeclVar:
      WS.Scalars.insert(S.name());
      break;
    case PKind::StoreArr:
    case PKind::DeclArr:
      WS.Arrays.insert(S.name());
      break;
    default:
      break;
    }
  });
}

bool etch::exprInvariantUnder(const ERef &E, const WriteSet &WS) {
  bool Invariant = true;
  forEachExprNode(E, [&](const EExpr &N) {
    if (N.kind() == EKind::Var && WS.touchesScalar(N.name()))
      Invariant = false;
    else if (N.kind() == EKind::Access && WS.touchesArray(N.name()))
      Invariant = false;
  });
  return Invariant;
}

ERef etch::substituteVar(const ERef &E, const std::string &Var,
                         const ERef &Replacement) {
  return rewriteExpr(E, [&](const ERef &N) -> ERef {
    if (N->kind() == EKind::Var && N->name() == Var)
      return Replacement;
    return nullptr;
  });
}

void etch::flattenConjuncts(const ERef &E, std::vector<ERef> &Out) {
  if (E->kind() == EKind::Call && E->op() == Ops::andB()) {
    flattenConjuncts(E->args()[0], Out);
    flattenConjuncts(E->args()[1], Out);
    return;
  }
  Out.push_back(E);
}

ERef etch::buildConjunction(const std::vector<ERef> &Conjuncts) {
  if (Conjuncts.empty())
    return eBool(true);
  ERef Acc = Conjuncts[0];
  for (size_t I = 1; I < Conjuncts.size(); ++I)
    Acc = eAnd(Acc, Conjuncts[I]);
  return Acc;
}

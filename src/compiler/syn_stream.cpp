//===- compiler/syn_stream.cpp - Syntactic indexed streams ---------------===//

#include "compiler/syn_stream.h"

#include "support/assert.h"

using namespace etch;

namespace {

/// Emits the search loop advancing position variable \p P (bounded by end
/// variable \p E) to the first position whose coordinate reaches \p Target.
/// \p Strict selects "> Target" over ">= Target".
PRef emitSearch(const std::string &CrdArr, const std::string &P,
                const std::string &E, const VarDecl &Lo, const VarDecl &Hi,
                const VarDecl &Mid, SearchPolicy Policy, ERef Target,
                bool Strict) {
  auto PV = eVarI(P);
  auto EV = eVarI(E);
  auto CrdAt = [&](ERef I) {
    return EExpr::access(CrdArr, ImpType::I64, std::move(I));
  };
  auto NotReached = [&](ERef I) {
    // Coordinate still below the target.
    return Strict ? eLeI(CrdAt(std::move(I)), Target)
                  : eLtI(CrdAt(std::move(I)), Target);
  };

  if (Policy == SearchPolicy::Linear) {
    // while (p < e && crd[p] < target) p = p + 1;
    return PStmt::whileLoop(
        eAnd(eLtI(PV, EV), NotReached(PV)),
        PStmt::storeVar(P, eAddI(PV, eConstI(1))));
  }

  // Binary (galloping is lowered as binary too): classic lower-bound.
  auto LoV = eVarI(Lo.Name);
  auto HiV = eVarI(Hi.Name);
  auto MidV = eVarI(Mid.Name);
  return PStmt::seq(
      {PStmt::storeVar(Lo.Name, PV), PStmt::storeVar(Hi.Name, EV),
       PStmt::whileLoop(
           eLtI(LoV, HiV),
           PStmt::seq(
               {PStmt::storeVar(
                    Mid.Name,
                    eAddI(LoV, EExpr::call(Ops::divI(),
                                           {eSubI(HiV, LoV), eConstI(2)}))),
                PStmt::branch(NotReached(MidV),
                              PStmt::storeVar(Lo.Name,
                                              eAddI(MidV, eConstI(1))),
                              PStmt::storeVar(Hi.Name, MidV))})),
       PStmt::storeVar(P, LoV)});
}

SynRef cloneWith(const SynRef &S,
                 const std::function<void(SynStream &)> &Mutate) {
  auto C = std::make_shared<SynStream>(*S);
  Mutate(*C);
  return C;
}

/// Snapshots \p Target into a fresh temporary before running \p Skip: skip
/// loops mutate the state the index expression reads, so the target must
/// be latched first.
PRef skipWithSnapshot(const std::function<PRef(ERef)> &Skip, ERef Target) {
  static int Counter = 0;
  std::string T = "skt" + std::to_string(Counter++);
  return PStmt::seq2(PStmt::declVar(T, ImpType::I64, std::move(Target)),
                     Skip(eVarI(T)));
}

/// Wraps one level in Σ: same iteration, dummy index, skip at own index
/// (Section 5.1.2's `skip(q, (*, r)) = skip(q, (index q, r))`).
SynRef contractNode(const SynRef &S) {
  ETCH_ASSERT(!S->Contracted, "level is already contracted");
  return cloneWith(S, [&](SynStream &C) {
    C.Contracted = true;
    C.Index = eConstI(0);
    C.Skip0 = [S](ERef) { return skipWithSnapshot(S->Skip0, S->Index); };
    C.Skip1 = [S](ERef) { return skipWithSnapshot(S->Skip1, S->Index); };
  });
}

SynValue contractValueAt(const SynValue &V, int Depth) {
  ETCH_ASSERT(V.Inner, "contraction reached past the innermost level");
  const SynRef &S = V.Inner;
  if (Depth == 0 && !S->Contracted)
    return SynValue{nullptr, contractNode(S)};
  int Next = Depth - (S->Contracted ? 0 : 1);
  ETCH_ASSERT(Next >= 0, "contraction depth out of range");
  return SynValue{nullptr, cloneWith(S, [&](SynStream &C) {
                    C.Value = contractValueAt(S->Value, Next);
                  })};
}

SynValue expandValueAt(const SynValue &V, int Depth, ERef Size, NameGen &G) {
  if (Depth == 0)
    return SynValue{nullptr, synRepeat(G, std::move(Size), V)};
  ETCH_ASSERT(V.Inner, "expansion depth out of range");
  const SynRef &S = V.Inner;
  int Next = Depth - (S->Contracted ? 0 : 1);
  return SynValue{nullptr, cloneWith(S, [&](SynStream &C) {
                    C.Value =
                        expandValueAt(S->Value, Next, std::move(Size), G);
                  })};
}

} // namespace

SynRef etch::synSparse(NameGen &G, const std::string &CrdArr, ERef Begin,
                       ERef End, SearchPolicy Policy,
                       const std::function<SynValue(ERef Pos)> &MakeValue) {
  auto S = std::make_shared<SynStream>();
  std::string P = G.fresh(CrdArr + "_p");
  std::string E = G.fresh(CrdArr + "_e");
  VarDecl Lo{G.fresh(CrdArr + "_lo"), ImpType::I64};
  VarDecl Hi{G.fresh(CrdArr + "_hi"), ImpType::I64};
  VarDecl Mid{G.fresh(CrdArr + "_mid"), ImpType::I64};
  S->Vars = {{P, ImpType::I64}, {E, ImpType::I64}};
  if (Policy != SearchPolicy::Linear) {
    S->Vars.push_back(Lo);
    S->Vars.push_back(Hi);
    S->Vars.push_back(Mid);
  }
  S->Init = PStmt::seq2(PStmt::storeVar(P, std::move(Begin)),
                        PStmt::storeVar(E, std::move(End)));
  S->Valid = eLtI(eVarI(P), eVarI(E));
  S->Ready = S->Valid;
  S->Index = EExpr::access(CrdArr, ImpType::I64, eVarI(P));
  S->Value = MakeValue(eVarI(P));
  S->Skip0 = [=](ERef I) {
    return emitSearch(CrdArr, P, E, Lo, Hi, Mid, Policy, std::move(I),
                      /*Strict=*/false);
  };
  S->Skip1 = [=](ERef I) {
    return emitSearch(CrdArr, P, E, Lo, Hi, Mid, Policy, std::move(I),
                      /*Strict=*/true);
  };
  return S;
}

SynRef etch::synHashed(NameGen &G, const std::string &CrdArr, ERef Begin,
                       ERef End, const std::string &KeyArr,
                       const std::string &RankArr, int64_t TabSize,
                       SearchPolicy Policy,
                       const std::function<SynValue(ERef Pos)> &MakeValue) {
  ETCH_ASSERT(TabSize > 0, "hashed level needs a positive table size");
  auto S = std::make_shared<SynStream>();
  std::string P = G.fresh(CrdArr + "_p");
  std::string E = G.fresh(CrdArr + "_e");
  std::string H = G.fresh(CrdArr + "_h");
  VarDecl Lo{G.fresh(CrdArr + "_lo"), ImpType::I64};
  VarDecl Hi{G.fresh(CrdArr + "_hi"), ImpType::I64};
  VarDecl Mid{G.fresh(CrdArr + "_mid"), ImpType::I64};
  S->Vars = {{P, ImpType::I64}, {E, ImpType::I64}, {H, ImpType::I64}};
  if (Policy != SearchPolicy::Linear) {
    S->Vars.push_back(Lo);
    S->Vars.push_back(Hi);
    S->Vars.push_back(Mid);
  }
  S->Init = PStmt::seq2(PStmt::storeVar(P, std::move(Begin)),
                        PStmt::storeVar(E, std::move(End)));
  S->Valid = eLtI(eVarI(P), eVarI(E));
  S->Ready = S->Valid;
  S->Index = EExpr::access(CrdArr, ImpType::I64, eVarI(P));
  S->Value = MakeValue(eVarI(P));
  // skip(i, r): probe the table for i; on a hit, jump to the stored rank
  // (plus one when strict) — max() keeps the cursor monotone. On a miss,
  // the snapshot is sorted, so the policy search finds the bound.
  auto MakeSkip = [=](bool Strict) {
    return [=](ERef I) {
      auto KeyAt = [&] {
        return EExpr::access(KeyArr, ImpType::I64, eVarI(H));
      };
      auto NeI = [](ERef A, ERef B) {
        return EExpr::call(Ops::neI(), {std::move(A), std::move(B)});
      };
      PRef Probe = PStmt::seq2(
          PStmt::storeVar(
              H, EExpr::call(Ops::modI(), {I, eConstI(TabSize)})),
          PStmt::whileLoop(
              eAnd(NeI(KeyAt(), eConstI(-1)), NeI(KeyAt(), I)),
              PStmt::storeVar(
                  H, EExpr::call(Ops::modI(), {eAddI(eVarI(H), eConstI(1)),
                                               eConstI(TabSize)}))));
      ERef Rank = EExpr::access(RankArr, ImpType::I64, eVarI(H));
      if (Strict)
        Rank = eAddI(std::move(Rank), eConstI(1));
      PRef Hit = PStmt::storeVar(P, eMaxI(eVarI(P), std::move(Rank)));
      PRef Miss =
          emitSearch(CrdArr, P, E, Lo, Hi, Mid, Policy, I, Strict);
      return PStmt::seq2(std::move(Probe),
                         PStmt::branch(eEqI(KeyAt(), I), std::move(Hit),
                                       std::move(Miss)));
    };
  };
  S->Skip0 = MakeSkip(/*Strict=*/false);
  S->Skip1 = MakeSkip(/*Strict=*/true);
  return S;
}

SynRef etch::synDense(NameGen &G, ERef Size,
                      const std::function<SynValue(ERef Index)> &MakeValue) {
  auto S = std::make_shared<SynStream>();
  std::string I = G.fresh("i");
  std::string N = G.fresh("n");
  S->Vars = {{I, ImpType::I64}, {N, ImpType::I64}};
  S->Init = PStmt::seq2(PStmt::storeVar(I, eConstI(0)),
                        PStmt::storeVar(N, std::move(Size)));
  S->Valid = eLtI(eVarI(I), eVarI(N));
  S->Ready = S->Valid;
  S->Index = eVarI(I);
  S->Value = MakeValue(eVarI(I));
  S->Skip0 = [I](ERef J) {
    return PStmt::storeVar(I, eMaxI(eVarI(I), std::move(J)));
  };
  S->Skip1 = [I](ERef J) {
    return PStmt::storeVar(I, eMaxI(eVarI(I), eAddI(std::move(J),
                                                    eConstI(1))));
  };
  return S;
}

SynRef etch::synRepeat(NameGen &G, ERef Size, SynValue Value) {
  return synDense(G, std::move(Size), [&](ERef) { return Value; });
}

SynRef etch::synMul(NameGen &G, const ScalarAlgebra &Alg, const SynRef &A,
                    const SynRef &B) {
  ETCH_ASSERT(A && B, "null stream");
  ETCH_ASSERT(!A->Contracted && !B->Contracted,
              "cannot multiply contracted levels; hoist sums first");
  ETCH_ASSERT(A->Value.isLeaf() == B->Value.isLeaf(),
              "multiplication operands must have matching nesting");
  auto S = std::make_shared<SynStream>();
  S->Vars = A->Vars;
  S->Vars.insert(S->Vars.end(), B->Vars.begin(), B->Vars.end());
  S->Init = PStmt::seq2(A->Init, B->Init);
  S->Valid = eAnd(A->Valid, B->Valid);
  S->Index = eMaxI(A->Index, B->Index);
  S->Ready = eAnd(eAnd(A->Ready, B->Ready), eEqI(A->Index, B->Index));
  if (A->Value.isLeaf())
    S->Value = SynValue{Alg.mul(A->Value.Scalar, B->Value.Scalar), nullptr};
  else
    S->Value = SynValue{nullptr, synMul(G, Alg, A->Value.Inner,
                                        B->Value.Inner)};
  S->Skip0 = [A, B](ERef I) {
    return PStmt::seq2(A->Skip0(I), B->Skip0(I));
  };
  S->Skip1 = [A, B](ERef I) {
    return PStmt::seq2(A->Skip1(I), B->Skip1(I));
  };
  return S;
}

SynRef etch::synMask(const SynRef &S, ERef Cond) {
  auto C = std::make_shared<SynStream>(*S);
  C->Init = PStmt::branch(Cond, S->Init, PStmt::noop());
  C->Valid = eAnd(Cond, S->Valid);
  C->Skip0 = [S, Cond](ERef I) {
    return PStmt::branch(Cond, S->Skip0(std::move(I)), PStmt::noop());
  };
  C->Skip1 = [S, Cond](ERef I) {
    return PStmt::branch(Cond, S->Skip1(std::move(I)), PStmt::noop());
  };
  return C;
}

SynRef etch::synAdd(NameGen &G, const ScalarAlgebra &Alg, const SynRef &A,
                    const SynRef &B) {
  ETCH_ASSERT(A && B, "null stream");
  ETCH_ASSERT(A->Contracted == B->Contracted,
              "addition operands must agree on contracted levels");
  ETCH_ASSERT(A->Value.isLeaf() == B->Value.isLeaf(),
              "addition operands must have matching nesting");

  // Guarded views of each side: act = valid && ready; index saturates to
  // +inf (I64 max) once a side is exhausted, so min/comparisons stay total.
  ERef AAct = eAnd(A->Valid, A->Ready);
  ERef BAct = eAnd(B->Valid, B->Ready);
  ERef Ia = eSelect(A->Valid, A->Index, eI64Max());
  ERef Ib = eSelect(B->Valid, B->Index, eI64Max());
  ERef EmitA = eAnd(AAct, eLeI(Ia, Ib));
  ERef EmitB = eAnd(BAct, eLeI(Ib, Ia));

  auto S = std::make_shared<SynStream>();
  S->Contracted = A->Contracted;
  S->Vars = A->Vars;
  S->Vars.insert(S->Vars.end(), B->Vars.begin(), B->Vars.end());
  S->Init = PStmt::seq2(A->Init, B->Init);
  S->Valid = eOr(A->Valid, B->Valid);
  S->Index = S->Contracted ? eConstI(0) : eMinI(Ia, Ib);
  // Emit one side alone only strictly below the other's index; at a tie
  // both sides must be ready (see streams/combinators.h).
  S->Ready = eOr(eOr(eAnd(eLtI(Ia, Ib), AAct), eAnd(eLtI(Ib, Ia), BAct)),
                 eAnd(eEqI(Ia, Ib), eAnd(AAct, BAct)));
  if (A->Value.isLeaf()) {
    S->Value =
        SynValue{Alg.add(Alg.select(EmitA, A->Value.Scalar, Alg.Zero),
                         Alg.select(EmitB, B->Value.Scalar, Alg.Zero)),
                 nullptr};
  } else {
    S->Value = SynValue{nullptr, synAdd(G, Alg,
                                        synMask(A->Value.Inner, EmitA),
                                        synMask(B->Value.Inner, EmitB))};
  }
  S->Skip0 = [A, B](ERef I) {
    return PStmt::seq2(
        PStmt::branch(A->Valid, A->Skip0(I), PStmt::noop()),
        PStmt::branch(B->Valid, B->Skip0(I), PStmt::noop()));
  };
  S->Skip1 = [A, B](ERef I) {
    return PStmt::seq2(
        PStmt::branch(A->Valid, A->Skip1(I), PStmt::noop()),
        PStmt::branch(B->Valid, B->Skip1(I), PStmt::noop()));
  };
  return S;
}

SynRef etch::synContractAt(const SynRef &S, int Depth) {
  return contractValueAt(SynValue{nullptr, S}, Depth).Inner;
}

SynRef etch::synExpandAt(const SynRef &S, int Depth, ERef Size, NameGen &G) {
  return expandValueAt(SynValue{nullptr, S}, Depth, std::move(Size), G).Inner;
}

SynValue etch::synExpandValueAt(const SynValue &V, int Depth, ERef Size,
                                NameGen &G) {
  return expandValueAt(V, Depth, std::move(Size), G);
}

int etch::synShapeLen(const SynRef &S) {
  if (!S)
    return 0;
  int N = S->Contracted ? 0 : 1;
  if (S->Value.Inner)
    N += synShapeLen(S->Value.Inner);
  return N;
}

//===- compiler/rewrite.h - Generic traversal over E and P -----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic traversal, rewriting, and analysis helpers for the target IRs
/// `E` (expressions) and `P` (statements). Every consumer of the IR used to
/// hand-roll its own recursion (c_emit, vm, codegen); the pass pipeline in
/// compiler/passes.h is built entirely on this layer instead.
///
/// Rewrites are bottom-up and sharing-preserving: a callback sees each node
/// after its children have been rewritten and returns either a replacement
/// or null ("keep"). Unchanged subtrees are returned by reference, so a
/// no-op rewrite allocates nothing and pointer equality detects change.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_REWRITE_H
#define ETCH_COMPILER_REWRITE_H

#include "compiler/imp.h"

#include <set>

namespace etch {

/// Bottom-up expression rewriter: called on each node after its children
/// were rewritten; returns the replacement, or null to keep the node.
using ExprRewriter = std::function<ERef(const ERef &)>;

/// Bottom-up statement rewriter: called on each statement after its
/// children (and, if an ExprRewriter was supplied, its expressions) were
/// rewritten; returns the replacement, or null to keep the node.
using StmtRewriter = std::function<PRef(const PRef &)>;

/// Rewrites \p E bottom-up with \p Fn. Returns \p E itself when nothing
/// changed.
ERef rewriteExpr(const ERef &E, const ExprRewriter &Fn);

/// Rewrites the statement tree \p P bottom-up. If \p EFn is non-null it is
/// applied (via rewriteExpr) to every expression of every statement first;
/// then \p SFn (if non-null) may replace the statement. Sequences are
/// re-normalised through the PStmt::seq factory, so no-ops introduced by a
/// rewrite disappear and nested sequences stay flat.
PRef rewriteProgram(const PRef &P, const StmtRewriter &SFn,
                    const ExprRewriter &EFn = nullptr);

/// Pre-order visit of every node of \p E (including \p E itself).
void forEachExprNode(const ERef &E, const std::function<void(const EExpr &)> &Fn);

/// Pre-order visit of every statement node of \p P.
void forEachStmtNode(const PRef &P, const std::function<void(const PStmt &)> &Fn);

/// Visits every expression tree attached to any statement of \p P (loop and
/// branch conditions, store indices and values, declaration initialisers).
/// The callback receives the root of each expression; use forEachExprNode
/// to descend.
void forEachProgramExpr(const PRef &P, const std::function<void(const ERef &)> &Fn);

/// Number of statement nodes in \p P.
size_t countStmtNodes(const PRef &P);

/// Number of expression nodes reachable from statements of \p P.
size_t countExprNodes(const PRef &P);

/// Structural equality of expressions (same kinds, names, constants, ops,
/// and arguments). Constants compare by type and value.
bool exprEquals(const ERef &A, const ERef &B);

/// Scalar variables and arrays an expression reads.
struct ReadSet {
  std::set<std::string> Scalars;
  std::set<std::string> Arrays;
};

/// Accumulates the names \p E reads into \p RS.
void collectExprReads(const ERef &E, ReadSet &RS);

/// Scalar variables and arrays a program writes (stores and declarations).
struct WriteSet {
  std::set<std::string> Scalars;
  std::set<std::string> Arrays;

  bool touchesScalar(const std::string &N) const { return Scalars.count(N); }
  bool touchesArray(const std::string &N) const { return Arrays.count(N); }
};

/// Accumulates the names \p P writes into \p WS.
void collectStmtWrites(const PRef &P, WriteSet &WS);

/// True when nothing \p E reads is written by \p WS (the expression is
/// invariant under executing code with that write set).
bool exprInvariantUnder(const ERef &E, const WriteSet &WS);

/// Substitutes \p Replacement for every read of scalar variable \p Var
/// inside \p E.
ERef substituteVar(const ERef &E, const std::string &Var, const ERef &Replacement);

/// Flattens a tree of short-circuit conjunctions (`andB`) into its
/// conjunct list; a non-conjunction expression yields itself.
void flattenConjuncts(const ERef &E, std::vector<ERef> &Out);

/// Rebuilds a conjunction from \p Conjuncts (empty => constant true).
ERef buildConjunction(const std::vector<ERef> &Conjuncts);

} // namespace etch

#endif // ETCH_COMPILER_REWRITE_H

//===- compiler/jit.cpp - JIT-to-native backend ---------------------------===//

#include "compiler/jit.h"

#include "compiler/bytecode.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <unordered_map>

#include <dlfcn.h>
#include <unistd.h>

using namespace etch;
namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// SHA-256 (content addressing)
//===----------------------------------------------------------------------===//

namespace {

class Sha256 {
public:
  void update(const void *Data, size_t N) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Total += N;
    while (N) {
      size_t Take = std::min(N, sizeof(Buf) - BufLen);
      std::memcpy(Buf + BufLen, P, Take);
      BufLen += Take;
      P += Take;
      N -= Take;
      if (BufLen == sizeof(Buf)) {
        block(Buf);
        BufLen = 0;
      }
    }
  }

  std::string hex() {
    uint64_t BitLen = Total * 8;
    uint8_t Pad = 0x80;
    update(&Pad, 1);
    uint8_t Zero = 0;
    while (BufLen != 56)
      update(&Zero, 1);
    // BitLen was latched before the padding, so the extra update()s below
    // cannot distort the encoded message length.
    uint8_t LenBE[8];
    for (int I = 0; I < 8; ++I)
      LenBE[I] = static_cast<uint8_t>(BitLen >> (56 - 8 * I));
    update(LenBE, 8);
    static const char *Digits = "0123456789abcdef";
    std::string Out;
    Out.reserve(64);
    for (uint32_t W : H)
      for (int I = 28; I >= 0; I -= 4)
        Out += Digits[(W >> I) & 0xF];
    return Out;
  }

private:
  static uint32_t rotr(uint32_t X, int N) { return (X >> N) | (X << (32 - N)); }

  void block(const uint8_t *P) {
    static const uint32_t K[64] = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
        0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
        0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
        0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
        0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
        0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
        0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
        0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
        0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
        0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
        0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
        0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
    uint32_t W[64];
    for (int I = 0; I < 16; ++I)
      W[I] = static_cast<uint32_t>(P[4 * I]) << 24 |
             static_cast<uint32_t>(P[4 * I + 1]) << 16 |
             static_cast<uint32_t>(P[4 * I + 2]) << 8 |
             static_cast<uint32_t>(P[4 * I + 3]);
    for (int I = 16; I < 64; ++I) {
      uint32_t S0 = rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
      uint32_t S1 = rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
      W[I] = W[I - 16] + S0 + W[I - 7] + S1;
    }
    uint32_t A = H[0], B = H[1], C = H[2], D = H[3], E = H[4], F = H[5],
             G = H[6], Hh = H[7];
    for (int I = 0; I < 64; ++I) {
      uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
      uint32_t Ch = (E & F) ^ (~E & G);
      uint32_t T1 = Hh + S1 + Ch + K[I] + W[I];
      uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
      uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
      uint32_t T2 = S0 + Maj;
      Hh = G;
      G = F;
      F = E;
      E = D + T1;
      D = C;
      C = B;
      B = A;
      A = T1 + T2;
    }
    H[0] += A;
    H[1] += B;
    H[2] += C;
    H[3] += D;
    H[4] += E;
    H[5] += F;
    H[6] += G;
    H[7] += Hh;
  }

  uint32_t H[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  uint64_t Total = 0;
  uint8_t Buf[64];
  size_t BufLen = 0;
};

//===----------------------------------------------------------------------===//
// Shelling out
//===----------------------------------------------------------------------===//

std::string shellQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += "'";
  return Out;
}

/// Runs \p Cmd (stderr folded into stdout), capturing output. Returns the
/// exit status, or -1 when the shell could not be spawned.
int runCommand(const std::string &Cmd, std::string *Output) {
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  std::string Out;
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = pclose(P);
  if (Output)
    *Output = std::move(Out);
  return St;
}

std::string firstLine(const std::string &S) {
  size_t Nl = S.find('\n');
  return Nl == std::string::npos ? S : S.substr(0, Nl);
}

constexpr const char *JitFlags = "-O2 -fPIC -shared";

std::atomic<uint64_t> TmpCounter{0};

/// Writes \p Data to \p Path atomically (temp in the same dir + rename).
bool atomicWrite(const fs::path &Path, const std::string &Data,
                 std::string *Err) {
  fs::path Tmp = Path;
  Tmp += ".tmp" + std::to_string(getpid()) + "." +
         std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Os(Tmp, std::ios::binary | std::ios::trunc);
    if (!Os || !(Os << Data)) {
      if (Err)
        *Err = "cannot write " + Tmp.string();
      return false;
    }
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    if (Err)
      *Err = "cannot rename " + Tmp.string() + ": " + Ec.message();
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Toolchain probe and caches
//===----------------------------------------------------------------------===//

struct JitState {
  std::mutex Mu;
  bool Probed = false;
  JitToolchain Tc;
  JitCacheStats Stats;
  /// In-process handle cache, LRU-bounded by HandleCap: `Lru` is ordered
  /// most-recent-first and each map entry points at its list node. The
  /// map holds shared_ptrs, so eviction never dlcloses a kernel some
  /// NativeKernelRef / NativeCall still pins.
  struct HandleEntry {
    NativeKernelRef K;
    std::list<std::string>::iterator LruIt;
  };
  std::unordered_map<std::string, HandleEntry> Handles;
  std::list<std::string> Lru;
  size_t HandleCap = JitHandleCacheDefaultCap;

  void touchLocked(HandleEntry &E) {
    Lru.splice(Lru.begin(), Lru, E.LruIt);
  }

  void evictToCapLocked() {
    while (Handles.size() > HandleCap && !Lru.empty()) {
      Handles.erase(Lru.back());
      Lru.pop_back();
      ++Stats.HandleEvictions;
    }
  }

  void insertHandleLocked(const std::string &Key, NativeKernelRef K) {
    Lru.push_front(Key);
    Handles.emplace(Key, HandleEntry{std::move(K), Lru.begin()});
    evictToCapLocked();
  }

  void clearHandlesLocked() {
    Handles.clear();
    Lru.clear();
  }
};

JitState &state() {
  static JitState S;
  return S;
}

/// Compiles \p Src to \p SoPath with the probed toolchain. The object is
/// built next to its final name and renamed in, so concurrent compiles of
/// the same key are benign.
bool compileTo(const JitToolchain &Tc, const fs::path &SrcPath,
               const fs::path &SoPath, std::string *Err) {
  fs::path Tmp = SoPath;
  Tmp += ".tmp" + std::to_string(getpid()) + "." +
         std::to_string(TmpCounter.fetch_add(1));
  std::string Out;
  int St = runCommand(Tc.Cmd + " " + Tc.Flags + " -o " +
                          shellQuote(Tmp.string()) + " " +
                          shellQuote(SrcPath.string()),
                      &Out);
  if (St != 0) {
    if (Err) {
      while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
        Out.pop_back();
      if (Out.size() > 800)
        Out = Out.substr(0, 800) + "...";
      *Err = "compile failed (status " + std::to_string(St) + "): " + Out;
    }
    std::error_code Ec;
    fs::remove(Tmp, Ec);
    return false;
  }
  std::error_code Ec;
  fs::rename(Tmp, SoPath, Ec);
  if (Ec) {
    if (Err)
      *Err = "cannot rename " + Tmp.string() + ": " + Ec.message();
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

/// dlopens \p SoPath and resolves the entry point, checking the baked ABI
/// version. Any failure reads as cache corruption / staleness.
bool loadKernel(const fs::path &SoPath, void **Handle, EtchJitEntryFn *Entry,
                std::string *Err) {
  void *H = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    if (Err)
      *Err = std::string("dlopen failed: ") + dlerror();
    return false;
  }
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    dlclose(H);
    return false;
  };
  void *AbiSym = dlsym(H, "etch_jit_abi");
  if (!AbiSym)
    return Fail("kernel lacks the etch_jit_abi symbol");
  if (*static_cast<int32_t *>(AbiSym) != EtchJitAbi)
    return Fail("kernel ABI version mismatch");
  void *EntrySym = dlsym(H, EtchJitEntrySymbol);
  if (!EntrySym)
    return Fail(std::string("kernel lacks the ") + EtchJitEntrySymbol +
                " symbol");
  *Handle = H;
  *Entry = reinterpret_cast<EtchJitEntryFn>(EntrySym);
  return true;
}

/// A minimal end-to-end probe: compile and load a trivial translation
/// unit, proving both the compiler and dlopen work before any real kernel
/// trusts them.
void probeLocked(JitState &S) {
  if (S.Probed)
    return;
  S.Probed = true;
  JitToolchain &Tc = S.Tc;
  const char *Env = std::getenv("ETCH_CC");
  if (!Env || !*Env)
    Env = std::getenv("CC");
  Tc.Cmd = Env && *Env ? Env : "cc";
  Tc.Flags = JitFlags;

  std::string VerOut;
  if (runCommand(Tc.Cmd + " --version", &VerOut) == 0)
    Tc.VersionLine = firstLine(VerOut);
  else
    Tc.VersionLine = "unknown";

  std::string Dir = jitCacheDir();
  fs::path Src = fs::path(Dir) / ("probe" + std::to_string(getpid()) + ".c");
  fs::path So = fs::path(Dir) / ("probe" + std::to_string(getpid()) + ".so");
  std::string Err;
  Tc.Available = false;
  if (!atomicWrite(Src, "int etch_jit_probe(void) { return 7; }\n", &Err)) {
    Tc.Diag = "cache dir not writable: " + Err;
  } else if (!compileTo(Tc, Src, So, &Err)) {
    Tc.Diag = "probe " + Err;
  } else {
    void *H = dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!H) {
      Tc.Diag = std::string("probe dlopen failed: ") + dlerror();
    } else {
      using ProbeFn = int (*)(void);
      auto Fn = reinterpret_cast<ProbeFn>(dlsym(H, "etch_jit_probe"));
      if (Fn && Fn() == 7)
        Tc.Available = true;
      else
        Tc.Diag = "probe kernel misbehaved";
      dlclose(H);
    }
  }
  std::error_code Ec;
  fs::remove(Src, Ec);
  fs::remove(So, Ec);
}

} // namespace

const JitToolchain &etch::jitToolchain() {
  JitState &S = state();
  std::lock_guard<std::mutex> L(S.Mu);
  probeLocked(S);
  return S.Tc;
}

void etch::jitResetToolchainForTest() {
  JitState &S = state();
  std::lock_guard<std::mutex> L(S.Mu);
  S.Probed = false;
  S.Tc = JitToolchain();
  S.clearHandlesLocked();
}

JitCacheStats etch::jitCacheStats() {
  JitState &S = state();
  std::lock_guard<std::mutex> L(S.Mu);
  JitCacheStats St = S.Stats;
  St.HandlesResident = S.Handles.size();
  return St;
}

void etch::jitResetCacheStatsForTest() {
  JitState &S = state();
  std::lock_guard<std::mutex> L(S.Mu);
  S.Stats = JitCacheStats();
  S.clearHandlesLocked();
  S.HandleCap = JitHandleCacheDefaultCap;
}

void etch::jitSetHandleCacheCap(size_t Cap) {
  JitState &S = state();
  std::lock_guard<std::mutex> L(S.Mu);
  S.HandleCap = std::max<size_t>(1, Cap);
  S.evictToCapLocked();
}

size_t etch::jitHandleCacheCap() {
  JitState &S = state();
  std::lock_guard<std::mutex> L(S.Mu);
  return S.HandleCap;
}

std::string etch::jitCacheDir(const std::string &Override) {
  std::string Dir = Override;
  if (Dir.empty())
    if (const char *E = std::getenv("ETCH_JIT_CACHE"); E && *E)
      Dir = E;
  if (Dir.empty()) {
    if (const char *X = std::getenv("XDG_CACHE_HOME"); X && *X)
      Dir = std::string(X) + "/etch-jit-cache";
    else if (const char *Home = std::getenv("HOME"); Home && *Home)
      Dir = std::string(Home) + "/.cache/etch-jit-cache";
    else
      Dir = "/tmp/etch-jit-cache-" + std::to_string(getuid());
  }
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  return Dir;
}

int etch::jitEvictCache(const std::string &Dir, uint64_t MaxBytes) {
  struct Entry {
    std::string Stem;
    fs::file_time_type Newest{};
    uint64_t Bytes = 0;
    std::vector<fs::path> Files;
  };
  std::unordered_map<std::string, Entry> ByStem;
  uint64_t Total = 0;
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    std::error_code StatEc;
    if (!It->is_regular_file(StatEc) || StatEc)
      continue;
    const fs::path &P = It->path();
    // A concurrent process (another server sharing the cache, or its own
    // eviction pass) may remove the file between readdir and stat. A
    // failed stat must NOT be counted: file_size's error value is
    // uintmax_t(-1), which would inflate Total past any budget and evict
    // the entire cache. Skip the entry — it is not on disk to count.
    uint64_t Sz = It->file_size(StatEc);
    if (StatEc)
      continue;
    auto Mt = fs::last_write_time(P, StatEc);
    if (StatEc)
      continue;
    Entry &E = ByStem[P.stem().string()];
    E.Stem = P.stem().string();
    E.Bytes += Sz;
    E.Newest = std::max(E.Newest, Mt);
    E.Files.push_back(P);
    Total += Sz;
  }
  if (Total <= MaxBytes)
    return 0;
  std::vector<const Entry *> Order;
  Order.reserve(ByStem.size());
  for (const auto &[_, E] : ByStem)
    Order.push_back(&E);
  std::sort(Order.begin(), Order.end(), [](const Entry *A, const Entry *B) {
    return A->Newest < B->Newest;
  });
  int Evicted = 0;
  for (const Entry *E : Order) {
    if (Total <= MaxBytes)
      break;
    for (const fs::path &P : E->Files)
      fs::remove(P, Ec);
    Total -= std::min(Total, E->Bytes);
    ++Evicted;
  }
  return Evicted;
}

//===----------------------------------------------------------------------===//
// jitCompile
//===----------------------------------------------------------------------===//

std::string etch::jitSha256Hex(const std::string &Data) {
  Sha256 S;
  S.update(Data.data(), Data.size());
  return S.hex();
}

NativeKernelRef etch::jitCompile(const PRef &Body, const JitOptions &Opts,
                                 std::string *Err) {
  std::string ManifestErr;
  auto Manifest = deriveKernelManifest(Body, &ManifestErr);
  if (!Manifest) {
    if (Err)
      *Err = "program outside the kernel fragment: " + ManifestErr;
    return nullptr;
  }

  const JitToolchain &Tc = jitToolchain();
  if (!Tc.Available) {
    if (Err)
      *Err = "no native toolchain: " + Tc.Diag;
    return nullptr;
  }

  CKernelOptions KO;
  KO.CountSteps = Opts.CountSteps;
  KO.TileDenseTails = Opts.TileDenseTails;
  std::string Source = emitCKernel(Body, *Manifest, KO);

  if (Opts.MaxSourceBytes && Source.size() > Opts.MaxSourceBytes) {
    if (Err)
      *Err = std::string(JitSourceTooLargePrefix) + ": " +
             std::to_string(Source.size()) + " bytes of C (cap " +
             std::to_string(Opts.MaxSourceBytes) +
             "); using the bytecode VM";
    return nullptr;
  }

  // The content-address pins everything that affects the object: the full
  // generated source (hence the optimized P IR and format layout), the
  // compiler identity and flags, the ABI, and the caller's extra tag.
  std::string Key = jitSha256Hex(
      "cc=" + Tc.Cmd + "\nver=" + Tc.VersionLine + "\nflags=" + Tc.Flags +
      "\nabi=" + std::to_string(EtchJitAbi) + "\nextra=" + Opts.ExtraKey +
      "\n---\n" + Source);

  JitState &S = state();
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Handles.find(Key);
    if (It != S.Handles.end()) {
      ++S.Stats.MemHits;
      S.touchLocked(It->second);
      return It->second.K;
    }
  }

  std::string Dir = jitCacheDir(Opts.CacheDir);
  fs::path SrcPath = fs::path(Dir) / (Key + ".c");
  fs::path SoPath = fs::path(Dir) / (Key + ".so");

  void *Handle = nullptr;
  EtchJitEntryFn Entry = nullptr;
  bool DiskHit = false;
  std::error_code Ec;
  if (fs::exists(SoPath, Ec)) {
    std::string LoadErr;
    if (loadKernel(SoPath, &Handle, &Entry, &LoadErr)) {
      DiskHit = true;
    } else {
      // Corrupted / stale entry: treat as a miss and rebuild it.
      fs::remove(SoPath, Ec);
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.Stats.Recompiles;
    }
  }

  if (!Handle) {
    std::string IoErr;
    if (!atomicWrite(SrcPath, Source, &IoErr)) {
      if (Err)
        *Err = IoErr;
      return nullptr;
    }
    std::string CcErr;
    if (!compileTo(Tc, SrcPath, SoPath, &CcErr)) {
      if (Err)
        *Err = CcErr;
      return nullptr;
    }
    {
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.Stats.Compiles;
    }
    std::string LoadErr;
    if (!loadKernel(SoPath, &Handle, &Entry, &LoadErr)) {
      if (Err)
        *Err = LoadErr;
      return nullptr;
    }
    if (Opts.Evict)
      jitEvictCache(Dir, JitCacheDefaultMaxBytes);
  }

  auto K = std::shared_ptr<NativeKernel>(new NativeKernel());
  K->Manifest = std::move(*Manifest);
  K->CountSteps = Opts.CountSteps;
  K->Key = Key;
  K->Handle = Handle;
  K->Entry = Entry;

  std::lock_guard<std::mutex> L(S.Mu);
  if (DiskHit)
    ++S.Stats.DiskHits;
  auto It = S.Handles.find(Key);
  if (It != S.Handles.end()) {
    S.touchLocked(It->second);
    return It->second.K; // Another thread won the race; ours unloads.
  }
  S.insertHandleLocked(Key, K);
  return K;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

NativeKernel::~NativeKernel() {
  if (Handle)
    dlclose(Handle);
}

namespace {

/// Marshaled inputs + output slots for one dispatch, bound to a manifest.
struct CallFrame {
  std::vector<std::vector<int64_t>> ArrI;
  std::vector<std::vector<double>> ArrF;
  std::vector<std::vector<uint8_t>> ArrB;
  std::vector<void *> ArrData;
  std::vector<int64_t> ArrLen;
  std::vector<uint8_t> ArrDef;
  std::vector<int64_t> ScI;
  std::vector<double> ScF;
  std::vector<uint8_t> ScB;
  std::vector<uint8_t> ScDef;
  std::vector<void *> OutArrData;
  std::vector<int64_t> OutArrLen;
  std::vector<uint8_t> OutArrDef;
  std::vector<uint8_t> OutArrOwned;
  std::vector<int64_t> OutScI;
  std::vector<double> OutScF;
  std::vector<uint8_t> OutScB;
  std::vector<uint8_t> OutScDef;
  EtchJitCtx Ctx{};

  void size(const CKernelManifest &M) {
    size_t NA = M.Arrays.size(), NS = M.Scalars.size();
    ArrI.resize(NA);
    ArrF.resize(NA);
    ArrB.resize(NA);
    ArrData.assign(NA, nullptr);
    ArrLen.assign(NA, 0);
    ArrDef.assign(NA, 0);
    ScI.assign(NS, 0);
    ScF.assign(NS, 0.0);
    ScB.assign(NS, 0);
    ScDef.assign(NS, 0);
    OutArrData.assign(NA, nullptr);
    OutArrLen.assign(NA, 0);
    OutArrDef.assign(NA, 0);
    OutArrOwned.assign(NA, 0);
    OutScI.assign(NS, 0);
    OutScF.assign(NS, 0.0);
    OutScB.assign(NS, 0);
    OutScDef.assign(NS, 0);
  }

  /// Loads inputs from \p Memory with bytecodeRun's binding-type errors.
  bool marshal(const CKernelManifest &M, const VmMemory &Memory,
               std::string *Err) {
    for (size_t I = 0; I < M.Scalars.size(); ++I) {
      const CKernelScalar &Sc = M.Scalars[I];
      auto V = Memory.getScalar(Sc.Name);
      if (!V)
        continue;
      if (impTypeOf(*V) != Sc.Ty) {
        if (Err)
          *Err = "scalar '" + Sc.Name + "' is bound as " +
                 impTypeName(impTypeOf(*V)) + " but used as " +
                 impTypeName(Sc.Ty);
        return false;
      }
      switch (Sc.Ty) {
      case ImpType::I64:
        ScI[I] = std::get<int64_t>(*V);
        break;
      case ImpType::F64:
        ScF[I] = std::get<double>(*V);
        break;
      case ImpType::Bool:
        ScB[I] = std::get<bool>(*V) ? 1 : 0;
        break;
      }
      ScDef[I] = 1;
    }
    for (size_t I = 0; I < M.Arrays.size(); ++I) {
      const CKernelArray &A = M.Arrays[I];
      const std::vector<ImpValue> *Src = Memory.getArray(A.Name);
      if (!Src)
        continue;
      for (const ImpValue &V : *Src)
        if (impTypeOf(V) != A.Elem) {
          if (Err)
            *Err = "array '" + A.Name + "' holds a " +
                   impTypeName(impTypeOf(V)) + " element but is used as " +
                   impTypeName(A.Elem);
          return false;
        }
      switch (A.Elem) {
      case ImpType::I64: {
        auto &D = ArrI[I];
        D.reserve(Src->size());
        for (const ImpValue &V : *Src)
          D.push_back(std::get<int64_t>(V));
        ArrData[I] = D.data();
        break;
      }
      case ImpType::F64: {
        auto &D = ArrF[I];
        D.reserve(Src->size());
        for (const ImpValue &V : *Src)
          D.push_back(std::get<double>(V));
        ArrData[I] = D.data();
        break;
      }
      case ImpType::Bool: {
        auto &D = ArrB[I];
        D.reserve(Src->size());
        for (const ImpValue &V : *Src)
          D.push_back(std::get<bool>(V) ? 1 : 0);
        ArrData[I] = D.data();
        break;
      }
      }
      ArrLen[I] = static_cast<int64_t>(Src->size());
      ArrDef[I] = 1;
    }
    return true;
  }

  void wire(int64_t MaxSteps) {
    Ctx.arr_data = ArrData.data();
    Ctx.arr_len = ArrLen.data();
    Ctx.arr_def = ArrDef.data();
    Ctx.sc_i = ScI.data();
    Ctx.sc_f = ScF.data();
    Ctx.sc_b = ScB.data();
    Ctx.sc_def = ScDef.data();
    Ctx.steps_budget = MaxSteps;
    Ctx.steps_used = 0;
    Ctx.out_arr_data = OutArrData.data();
    Ctx.out_arr_len = OutArrLen.data();
    Ctx.out_arr_def = OutArrDef.data();
    Ctx.out_arr_owned = OutArrOwned.data();
    Ctx.out_sc_i = OutScI.data();
    Ctx.out_sc_f = OutScF.data();
    Ctx.out_sc_b = OutScB.data();
    Ctx.out_sc_def = OutScDef.data();
  }

  ImpValue outScalar(const CKernelScalar &S, size_t I) const {
    switch (S.Ty) {
    case ImpType::I64:
      return OutScI[I];
    case ImpType::F64:
      return OutScF[I];
    case ImpType::Bool:
      return OutScB[I] != 0;
    }
    ETCH_UNREACHABLE("unknown ImpType");
  }

  /// Frees kernel-owned output buffers (success path only; the kernel
  /// frees them itself on error).
  void freeOwned(const CKernelManifest &M) {
    for (size_t I = 0; I < M.Arrays.size(); ++I)
      if (OutArrOwned[I]) {
        std::free(OutArrData[I]);
        OutArrOwned[I] = 0;
        OutArrData[I] = nullptr;
      }
  }
};

} // namespace

VmRunResult NativeKernel::run(VmMemory &Memory, int64_t MaxSteps) const {
  VmRunResult R;
  CallFrame F;
  F.size(Manifest);
  std::string Err;
  if (!F.marshal(Manifest, Memory, &Err)) {
    R.Error = Err;
    return R;
  }
  F.wire(MaxSteps);
  int32_t St = Entry(&F.Ctx);
  R.Steps = F.Ctx.steps_used;
  if (St != 0) {
    R.Error = std::string(F.Ctx.err);
    return R; // Memory untouched on error (the bytecode VM's contract).
  }
  // Success: write every defined name back.
  for (size_t I = 0; I < Manifest.Scalars.size(); ++I)
    if (F.OutScDef[I])
      Memory.setScalar(Manifest.Scalars[I].Name,
                       F.outScalar(Manifest.Scalars[I], I));
  for (size_t I = 0; I < Manifest.Arrays.size(); ++I) {
    if (!F.OutArrDef[I])
      continue;
    const CKernelArray &A = Manifest.Arrays[I];
    size_t N = static_cast<size_t>(F.OutArrLen[I]);
    std::vector<ImpValue> Data;
    Data.reserve(N);
    switch (A.Elem) {
    case ImpType::I64: {
      const int64_t *P = static_cast<const int64_t *>(F.OutArrData[I]);
      for (size_t J = 0; J < N; ++J)
        Data.emplace_back(P[J]);
      break;
    }
    case ImpType::F64: {
      const double *P = static_cast<const double *>(F.OutArrData[I]);
      for (size_t J = 0; J < N; ++J)
        Data.emplace_back(P[J]);
      break;
    }
    case ImpType::Bool: {
      const uint8_t *P = static_cast<const uint8_t *>(F.OutArrData[I]);
      for (size_t J = 0; J < N; ++J)
        Data.emplace_back(P[J] != 0);
      break;
    }
    }
    Memory.setArray(A.Name, std::move(Data));
  }
  F.freeOwned(Manifest);
  return R;
}

//===----------------------------------------------------------------------===//
// NativeCall (prepared, resident-buffer dispatch)
//===----------------------------------------------------------------------===//

NativeCall::NativeCall(NativeKernelRef Kernel) : K(std::move(Kernel)) {
  ETCH_ASSERT(K, "null kernel");
  const CKernelManifest &M = K->manifest();
  size_t NA = M.Arrays.size(), NS = M.Scalars.size();
  ArrI.resize(NA);
  ArrF.resize(NA);
  ArrB.resize(NA);
  ArrData.assign(NA, nullptr);
  ArrLen.assign(NA, 0);
  ArrDef.assign(NA, 0);
  ScI.assign(NS, 0);
  ScF.assign(NS, 0.0);
  ScB.assign(NS, 0);
  ScDef.assign(NS, 0);
  OutScI.assign(NS, 0);
  OutScF.assign(NS, 0.0);
  OutScB.assign(NS, 0);
  OutScDef.assign(NS, 0);
}

bool NativeCall::bind(const VmMemory &Memory, std::string *Err) {
  const CKernelManifest &M = K->manifest();
  CallFrame F;
  F.size(M);
  if (!F.marshal(M, Memory, Err))
    return false;
  ArrI = std::move(F.ArrI);
  ArrF = std::move(F.ArrF);
  ArrB = std::move(F.ArrB);
  ArrLen = std::move(F.ArrLen);
  ArrDef = std::move(F.ArrDef);
  ScI = std::move(F.ScI);
  ScF = std::move(F.ScF);
  ScB = std::move(F.ScB);
  ScDef = std::move(F.ScDef);
  RestoreI.clear();
  RestoreF.clear();
  RestoreB.clear();
  for (size_t I = 0; I < M.Arrays.size(); ++I) {
    ArrData[I] = nullptr;
    if (!ArrDef[I])
      continue;
    switch (M.Arrays[I].Elem) {
    case ImpType::I64:
      ArrData[I] = ArrI[I].data();
      break;
    case ImpType::F64:
      ArrData[I] = ArrF[I].data();
      break;
    case ImpType::Bool:
      ArrData[I] = ArrB[I].data();
      break;
    }
    // The kernel writes bound written-back arrays in place; keep a
    // pristine copy so every invoke starts from the same memory.
    if (M.Arrays[I].WrittenBack) {
      switch (M.Arrays[I].Elem) {
      case ImpType::I64:
        RestoreI.emplace_back(I, ArrI[I]);
        break;
      case ImpType::F64:
        RestoreF.emplace_back(I, ArrF[I]);
        break;
      case ImpType::Bool:
        RestoreB.emplace_back(I, ArrB[I]);
        break;
      }
    }
  }
  return true;
}

VmRunResult NativeCall::invoke(int64_t MaxSteps) {
  const CKernelManifest &M = K->manifest();
  for (auto &[I, Data] : RestoreI)
    std::copy(Data.begin(), Data.end(), ArrI[I].begin());
  for (auto &[I, Data] : RestoreF)
    std::copy(Data.begin(), Data.end(), ArrF[I].begin());
  for (auto &[I, Data] : RestoreB)
    std::copy(Data.begin(), Data.end(), ArrB[I].begin());

  std::vector<void *> OutArrData(M.Arrays.size(), nullptr);
  std::vector<int64_t> OutArrLen(M.Arrays.size(), 0);
  std::vector<uint8_t> OutArrDef(M.Arrays.size(), 0);
  std::vector<uint8_t> OutArrOwned(M.Arrays.size(), 0);

  EtchJitCtx Ctx{};
  Ctx.arr_data = ArrData.data();
  Ctx.arr_len = ArrLen.data();
  Ctx.arr_def = ArrDef.data();
  Ctx.sc_i = ScI.data();
  Ctx.sc_f = ScF.data();
  Ctx.sc_b = ScB.data();
  Ctx.sc_def = ScDef.data();
  Ctx.steps_budget = MaxSteps;
  Ctx.out_arr_data = OutArrData.data();
  Ctx.out_arr_len = OutArrLen.data();
  Ctx.out_arr_def = OutArrDef.data();
  Ctx.out_arr_owned = OutArrOwned.data();
  Ctx.out_sc_i = OutScI.data();
  Ctx.out_sc_f = OutScF.data();
  Ctx.out_sc_b = OutScB.data();
  Ctx.out_sc_def = OutScDef.data();

  VmRunResult R;
  int32_t St = K->Entry(&Ctx);
  R.Steps = Ctx.steps_used;
  if (St != 0) {
    R.Error = std::string(Ctx.err);
    std::fill(OutScDef.begin(), OutScDef.end(), 0);
    return R;
  }
  for (size_t I = 0; I < M.Arrays.size(); ++I)
    if (OutArrOwned[I])
      std::free(OutArrData[I]);
  return R;
}

std::optional<ImpValue> NativeCall::scalar(const std::string &Name) const {
  const CKernelManifest &M = K->manifest();
  int I = M.scalarIndex(Name);
  if (I < 0 || !OutScDef[static_cast<size_t>(I)])
    return std::nullopt;
  size_t Idx = static_cast<size_t>(I);
  switch (M.Scalars[Idx].Ty) {
  case ImpType::I64:
    return OutScI[Idx];
  case ImpType::F64:
    return OutScF[Idx];
  case ImpType::Bool:
    return OutScB[Idx] != 0;
  }
  ETCH_UNREACHABLE("unknown ImpType");
}

//===----------------------------------------------------------------------===//
// nativeRunWithFallback
//===----------------------------------------------------------------------===//

VmRunResult etch::nativeRunWithFallback(const PRef &Body, VmMemory &Memory,
                                        int64_t MaxSteps,
                                        const JitOptions &Opts) {
  JitOptions O = Opts;
  O.CountSteps = true; // Keep VmRunResult::Steps meaningful either way.
  std::string Err;
  if (NativeKernelRef K = jitCompile(Body, O, &Err))
    return K->run(Memory, MaxSteps);

  static std::once_flag WarnedOnce;
  std::call_once(WarnedOnce, [&Err] {
    std::fprintf(stderr,
                 "etch-jit: native backend unavailable (%s); "
                 "falling back to the bytecode VM\n",
                 Err.c_str());
  });

  BytecodeProgram BC = compileBytecode(Body);
  if (BC.ok())
    return bytecodeRun(BC, Memory, MaxSteps);
  return vmRun(Body, Memory, MaxSteps);
}

//===- compiler/codegen.h - Destination passing and compile ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code generator of Figures 15–16. `compileStream(dest, stream)`
/// produces code satisfying the Hoare triple
/// `{out = v} compile out q {out = v + [[q]]}`: one while loop per stream
/// level, with a recursive call for nested values and the same loop minus
/// the index for contracted levels.
///
/// Destinations follow destination-passing style (Section 7.3): a
/// destination either accumulates a scalar (base case) or maps an index
/// expression to a sub-destination (per level). Provided destinations:
/// scalar accumulator variables, dense (strided) arrays, and sparse
/// (crd/val appending) builders.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_CODEGEN_H
#define ETCH_COMPILER_CODEGEN_H

#include "compiler/syn_stream.h"

namespace etch {

/// Where one level of output goes. Exactly one member is set:
/// \c Accum at the scalar base case, \c Locate at stream levels.
/// Locate returns (code to run before descending, the sub-destination,
/// code to run after the inner level completes).
struct Dest {
  std::function<PRef(ERef Value)> Accum;
  std::function<std::tuple<PRef, Dest, PRef>(ERef Index)> Locate;

  /// Names the caller reads back after execution (the destination's output
  /// scalar/arrays, including any position counter). The optimization
  /// pipeline's dead-store elimination must not remove stores to these;
  /// frontend.cpp forwards them as PipelineOptions::LiveOut.
  std::vector<std::string> Live;
};

/// Accumulates into a scalar variable: `out = out + v` under \p Alg.
Dest scalarDest(const ScalarAlgebra &Alg, std::string VarName);

/// Accumulates into a dense row-major array: level k adds
/// `index * Strides[k]` to the flat offset; the leaf does
/// `arr[offset] = arr[offset] + v`.
Dest denseDest(const ScalarAlgebra &Alg, std::string ArrName,
               std::vector<ERef> Strides);

/// Appends to a one-level sparse output: on locate, pushes the index onto
/// \p CrdArr and zero-initialises \p ValArr at the write position tracked
/// by counter variable \p CntVar; the leaf accumulates into that position.
/// Arrays must be pre-sized to capacity; the caller owns CntVar's decl.
Dest sparseVecDest(const ScalarAlgebra &Alg, std::string CrdArr,
                   std::string ValArr, std::string CntVar);

/// Accumulates into a hash-table output (the paper's relational group-by
/// format): locate probes \p KeyArr (open addressing, `index mod TabSize`
/// linear probing, -1 = empty), inserting the key with a zero-initialised
/// \p ValArr slot on first touch and counting distinct keys in \p CntVar;
/// the leaf accumulates into the probed slot. Unlike dense destinations the
/// footprint is O(TabSize), not O(key space). Both arrays must be pre-sized
/// to \p TabSize with KeyArr filled with -1, TabSize must exceed 3/2 the
/// distinct-key count (so probing terminates), and the caller owns CntVar's
/// decl. The probe/insert sequence is plain P code, so the tree VM, the
/// bytecode VM, and c_emit all run it unchanged.
Dest hashDest(const ScalarAlgebra &Alg, std::string KeyArr,
              std::string ValArr, std::string CntVar, int64_t TabSize);

/// Compiles a full stream into \p D (Figure 15): declarations, init, then
/// the level loop; contracted levels reuse the same destination.
PRef compileStream(const Dest &D, const SynRef &S);

/// Compiles a value (stream or scalar) into \p D — the paper's `compile`.
PRef compileValue(const Dest &D, const SynValue &V);

} // namespace etch

#endif // ETCH_COMPILER_CODEGEN_H

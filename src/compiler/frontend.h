//===- compiler/frontend.h - Lowering L into syntactic streams -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first lowering pass of the Etch pipeline (Figure 1): contraction
/// expressions become syntactic indexed streams. Input variables carry a
/// *tensor binding* — per-level data-structure choices (dense or
/// compressed, with a skip search policy), exactly the per-level format
/// abstraction of Section 7.3 — and the lowering threads positions through
/// the levels the way TACO-style level formats do (pos/crd arrays).
///
/// Supported fragment: sums and expansions may appear anywhere except
/// underneath a multiplication operand (a product of contracted streams is
/// not the contraction of a product; write sum-of-products instead — the
/// helpers in core/expr.h produce that form). Renames must preserve the
/// global attribute order, as required for valid streams (Definition 5.7).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_FRONTEND_H
#define ETCH_COMPILER_FRONTEND_H

#include "compiler/codegen.h"
#include "compiler/passes.h"
#include "compiler/vm.h"
#include "core/expr.h"
#include "formats/csf.h"
#include "formats/levels.h"
#include "formats/matrices.h"
#include "formats/vectors.h"

#include <map>

namespace etch {

/// One storage level of a bound tensor (Chou et al.-style level formats).
/// Hashed levels (formats/levels.h) carry the probe-table bucket count in
/// TabSize; they are only supported at the outermost level (one
/// coordinate->rank table per tensor, not per fiber).
struct LevelSpec {
  enum Kind { Dense, Compressed, Hashed } K = Compressed;
  SearchPolicy Policy = SearchPolicy::Linear;
  int64_t TabSize = 0; ///< Probe-table buckets (hashed levels only).
};

/// A variable's physical binding: its shape and per-level formats. Arrays
/// follow the naming convention `<name>_pos<k>` / `<name>_crd<k>` for
/// compressed level k and `<name>_vals` for the leaf values.
struct TensorBinding {
  std::string Name;
  Shape Shp;                    ///< Attributes, outermost first (sorted).
  std::vector<LevelSpec> Levels; ///< One per attribute.
};

/// Everything lowering needs: name generation, the scalar algebra, the
/// variable bindings, and each attribute's extent (for dense levels and
/// expansions).
struct LowerCtx {
  NameGen G;
  const ScalarAlgebra *Alg = &f64Algebra();
  std::map<std::string, TensorBinding> Bindings;
  std::map<uint32_t, int64_t> Dims; ///< Attr id -> index-set size.

  /// Optimization level for the pass pipeline compiled programs flow
  /// through (see compiler/passes.h): 0 disables it, 1 (default) runs the
  /// standard suite, 2 adds implied-condition elimination and
  /// loop-invariant hoisting.
  int OptLevel = 1;

  /// When set, the statistics of the most recent pipeline run are stored
  /// in LastPipeline (one PassStats row per pass).
  bool CollectStats = false;

  /// Statistics of the most recent compileExpr/compileFullContraction
  /// pipeline run (populated when CollectStats is set).
  PipelineResult LastPipeline;

  void bind(TensorBinding B) { Bindings[B.Name] = std::move(B); }
  void setDim(Attr A, int64_t N) { Dims[A.id()] = N; }
  int64_t dimOf(Attr A) const;

  /// The typing context induced by the bindings.
  TypeContext types() const;
};

/// Lowers \p E to a syntactic stream value. Aborts on expressions outside
/// the supported fragment (see file comment).
SynValue lowerExpr(LowerCtx &Ctx, const ExprPtr &E);

/// Lowers and compiles \p E into destination \p D.
PRef compileExpr(LowerCtx &Ctx, const ExprPtr &E, const Dest &D);

/// Lowers a fully contracted version of \p E (Σ over its whole shape) into
/// scalar accumulator \p OutVar; the returned program declares OutVar.
PRef compileFullContraction(LowerCtx &Ctx, const ExprPtr &E,
                            const std::string &OutVar);

//===----------------------------------------------------------------------===//
// Binding data into the VM (and mirroring the arrays for C emission)
//===----------------------------------------------------------------------===//

/// Binds a sparse vector under \p Name: one compressed level.
void bindSparseVector(VmMemory &M, const std::string &Name,
                      const SparseVector<double> &V);

/// Binds a dense vector under \p Name: one dense level.
void bindDenseVector(VmMemory &M, const std::string &Name,
                     const DenseVector<double> &V);

/// Binds a CSR matrix: dense row level over compressed column level.
void bindCsr(VmMemory &M, const std::string &Name, const CsrMatrix<double> &A);

/// Binds a DCSR matrix: compressed over compressed.
void bindDcsr(VmMemory &M, const std::string &Name,
              const DcsrMatrix<double> &A);

/// Binds an order-3 CSF tensor: compressed at every level.
void bindCsf3(VmMemory &M, const std::string &Name,
              const CsfTensor3<double> &T);

/// Binds a frozen hashed vector under \p Name: the sorted snapshot as a
/// compressed level (`_pos0`/`_crd0`/`_vals`) plus the probe arrays
/// `_hkey0` (slot keys, -1 empty) and `_hpos0` (snapshot ranks), rebuilt
/// with the `key mod TabSize` linear-probe layout the emitted skips and
/// hashDest use. Returns the table size to pass to hashedVecBinding.
int64_t bindHashedVector(VmMemory &M, const std::string &Name,
                         const HashedVector<double> &V);

/// The probe-table bucket count bindHashedVector will use for \p Nnz
/// distinct coordinates (a power of two, load factor <= 1/2).
int64_t hashedTabSizeFor(size_t Nnz);

/// The `key mod TabSize` linear-probe arrays for sorted coordinates
/// \p Crd: slot keys (`_hkey0`, -1 empty) and snapshot ranks (`_hpos0`) —
/// the exact layout the emitted probes (synHashed skips, hashDest) index.
std::pair<std::vector<int64_t>, std::vector<int64_t>>
hashedProbeArrays(const std::vector<Idx> &Crd, int64_t TabSize);

/// The matching TensorBinding constructors (formats chosen per level).
TensorBinding sparseVecBinding(std::string Name, Attr A,
                               SearchPolicy P = SearchPolicy::Linear);
TensorBinding denseVecBinding(std::string Name, Attr A);
TensorBinding csrBinding(std::string Name, Attr Row, Attr Col,
                         SearchPolicy P = SearchPolicy::Linear);
TensorBinding dcsrBinding(std::string Name, Attr Row, Attr Col,
                          SearchPolicy P = SearchPolicy::Linear);
TensorBinding csf3Binding(std::string Name, Attr I, Attr J, Attr K,
                          SearchPolicy P = SearchPolicy::Linear);
/// \p TabSize must match what bindHashedVector returned for the data.
TensorBinding hashedVecBinding(std::string Name, Attr A, int64_t TabSize,
                               SearchPolicy P = SearchPolicy::Linear);

} // namespace etch

#endif // ETCH_COMPILER_FRONTEND_H

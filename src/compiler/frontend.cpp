//===- compiler/frontend.cpp - Lowering L into syntactic streams ---------===//

#include "compiler/frontend.h"

#include "core/eval.h"
#include "support/assert.h"

using namespace etch;

int64_t LowerCtx::dimOf(Attr A) const {
  auto It = Dims.find(A.id());
  ETCH_ASSERT(It != Dims.end(), "no extent registered for attribute");
  return It->second;
}

TypeContext LowerCtx::types() const {
  TypeContext T;
  for (const auto &[Name, B] : Bindings)
    T.emplace(Name, B.Shp);
  return T;
}

namespace {

/// Builds the stream for one bound tensor: levels outermost-first, with
/// positions threaded TACO-style (dense: p' = p * N + i; compressed:
/// [pos[p], pos[p+1]) of crd).
SynValue buildLevels(LowerCtx &Ctx, const TensorBinding &B, size_t Level,
                     ERef Pos) {
  if (Level == B.Levels.size()) {
    return SynValue{
        EExpr::access(B.Name + "_vals", Ctx.Alg->Ty, std::move(Pos)),
        nullptr};
  }
  const LevelSpec &L = B.Levels[Level];
  Attr A = B.Shp[Level];
  if (L.K == LevelSpec::Dense) {
    int64_t N = Ctx.dimOf(A);
    auto Make = [&Ctx, &B, Level, Pos, N](ERef Index) {
      ERef Next = eAddI(EExpr::call(Ops::mulI(), {Pos, eConstI(N)}),
                        std::move(Index));
      return buildLevels(Ctx, B, Level + 1, std::move(Next));
    };
    return SynValue{nullptr, synDense(Ctx.G, eConstI(N), Make)};
  }
  std::string PosArr = B.Name + "_pos" + std::to_string(Level);
  std::string CrdArr = B.Name + "_crd" + std::to_string(Level);
  ERef Begin = EExpr::access(PosArr, ImpType::I64, Pos);
  ERef End =
      EExpr::access(PosArr, ImpType::I64, eAddI(Pos, eConstI(1)));
  auto Make = [&Ctx, &B, Level](ERef P) {
    return buildLevels(Ctx, B, Level + 1, std::move(P));
  };
  if (L.K == LevelSpec::Hashed) {
    // One coordinate->rank table per tensor: only the outermost level can
    // be hashed (inner fibers would each need their own table).
    ETCH_ASSERT(Level == 0, "hashed levels are only supported outermost");
    std::string KeyArr = B.Name + "_hkey" + std::to_string(Level);
    std::string RankArr = B.Name + "_hpos" + std::to_string(Level);
    return SynValue{nullptr,
                    synHashed(Ctx.G, CrdArr, std::move(Begin),
                              std::move(End), KeyArr, RankArr, L.TabSize,
                              L.Policy, Make)};
  }
  return SynValue{nullptr, synSparse(Ctx.G, CrdArr, std::move(Begin),
                                     std::move(End), L.Policy, Make)};
}

/// Lowers an expression, also returning its shape (needed for the depth
/// computations of Σ / ↑).
SynValue lowerRec(LowerCtx &Ctx, const ExprPtr &E, Shape &OutShape) {
  std::string Err;
  auto ShOpt = inferShape(E, Ctx.types(), &Err);
  ETCH_ASSERT(ShOpt, "expression does not type-check");
  OutShape = *ShOpt;

  switch (E->kind()) {
  case ExprKind::Var: {
    auto It = Ctx.Bindings.find(E->varName());
    ETCH_ASSERT(It != Ctx.Bindings.end(), "unbound variable");
    return buildLevels(Ctx, It->second, 0, eConstI(0));
  }
  case ExprKind::Mul: {
    Shape SL, SR;
    SynValue L = lowerRec(Ctx, E->lhs(), SL);
    SynValue R = lowerRec(Ctx, E->rhs(), SR);
    if (L.isLeaf())
      return SynValue{Ctx.Alg->mul(L.Scalar, R.Scalar), nullptr};
    return SynValue{nullptr, synMul(Ctx.G, *Ctx.Alg, L.Inner, R.Inner)};
  }
  case ExprKind::Add: {
    Shape SL, SR;
    SynValue L = lowerRec(Ctx, E->lhs(), SL);
    SynValue R = lowerRec(Ctx, E->rhs(), SR);
    if (L.isLeaf())
      return SynValue{Ctx.Alg->add(L.Scalar, R.Scalar), nullptr};
    return SynValue{nullptr, synAdd(Ctx.G, *Ctx.Alg, L.Inner, R.Inner)};
  }
  case ExprKind::Sum: {
    Shape SC;
    SynValue C = lowerRec(Ctx, E->lhs(), SC);
    int Depth = shapeIndexOf(SC, E->attr());
    ETCH_ASSERT(Depth >= 0, "sum over absent attribute");
    ETCH_ASSERT(C.Inner, "sum over a scalar");
    return SynValue{nullptr, synContractAt(C.Inner, Depth)};
  }
  case ExprKind::Expand: {
    Shape SC;
    SynValue C = lowerRec(Ctx, E->lhs(), SC);
    int Depth = attrsBefore(SC, E->attr());
    return synExpandValueAt(C, Depth, eConstI(Ctx.dimOf(E->attr())), Ctx.G);
  }
  case ExprKind::Rename: {
    // Rename relabels attributes without changing the stream, but a valid
    // stream must keep its levels in global attribute order: require the
    // renaming to be order-preserving.
    Shape SC;
    SynValue C = lowerRec(Ctx, E->lhs(), SC);
    Shape Renamed;
    for (Attr A : SC) {
      Attr B = A;
      for (const auto &[From, To] : E->mapping())
        if (From == A)
          B = To;
      Renamed.push_back(B);
    }
    for (size_t I = 1; I < Renamed.size(); ++I)
      ETCH_ASSERT(Renamed[I - 1] < Renamed[I],
                  "rename must preserve the global attribute order");
    return C;
  }
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

} // namespace

SynValue etch::lowerExpr(LowerCtx &Ctx, const ExprPtr &E) {
  Shape S;
  return lowerRec(Ctx, E, S);
}

namespace {

/// Runs the raw program through the optimization pipeline at the context's
/// opt level, keeping \p Live names alive for dead-store elimination.
PRef runPipeline(LowerCtx &Ctx, PRef Raw,
                 const std::vector<std::string> &Live) {
  PipelineOptions Opts;
  Opts.OptLevel = Ctx.OptLevel;
  Opts.LiveOut.insert(Live.begin(), Live.end());
  PipelineResult R = optimizeProgram(std::move(Raw), Opts);
  PRef Program = R.Program;
  if (Ctx.CollectStats)
    Ctx.LastPipeline = std::move(R);
  return Program;
}

} // namespace

PRef etch::compileExpr(LowerCtx &Ctx, const ExprPtr &E, const Dest &D) {
  return runPipeline(Ctx, compileValue(D, lowerExpr(Ctx, E)), D.Live);
}

PRef etch::compileFullContraction(LowerCtx &Ctx, const ExprPtr &E,
                                  const std::string &OutVar) {
  std::string Err;
  ExprPtr Full = sumAll(E, Ctx.types(), &Err);
  ETCH_ASSERT(Full, "expression does not type-check");
  PRef Decl = PStmt::declVar(OutVar, Ctx.Alg->Ty, Ctx.Alg->Zero);
  // Build the raw body directly (not through compileExpr) so the whole
  // program — declaration included — is optimized in one pipeline run with
  // OutVar as the only live-out.
  PRef Body = compileValue(scalarDest(*Ctx.Alg, OutVar), lowerExpr(Ctx, Full));
  return runPipeline(Ctx, PStmt::seq2(std::move(Decl), std::move(Body)),
                     {OutVar});
}

//===----------------------------------------------------------------------===//
// Data binding
//===----------------------------------------------------------------------===//

namespace {

std::vector<int64_t> toI64(const std::vector<size_t> &V) {
  std::vector<int64_t> Out;
  Out.reserve(V.size());
  for (size_t X : V)
    Out.push_back(static_cast<int64_t>(X));
  return Out;
}

} // namespace

void etch::bindSparseVector(VmMemory &M, const std::string &Name,
                            const SparseVector<double> &V) {
  M.setArrayI64(Name + "_pos0",
                {0, static_cast<int64_t>(V.Crd.size())});
  M.setArrayI64(Name + "_crd0", V.Crd);
  M.setArrayF64(Name + "_vals", V.Val);
}

void etch::bindDenseVector(VmMemory &M, const std::string &Name,
                           const DenseVector<double> &V) {
  M.setArrayF64(Name + "_vals", V.Val);
}

void etch::bindCsr(VmMemory &M, const std::string &Name,
                   const CsrMatrix<double> &A) {
  M.setArrayI64(Name + "_pos1", toI64(A.Pos));
  M.setArrayI64(Name + "_crd1", A.Crd);
  M.setArrayF64(Name + "_vals", A.Val);
}

void etch::bindDcsr(VmMemory &M, const std::string &Name,
                    const DcsrMatrix<double> &A) {
  M.setArrayI64(Name + "_pos0",
                {0, static_cast<int64_t>(A.RowCrd.size())});
  M.setArrayI64(Name + "_crd0", A.RowCrd);
  M.setArrayI64(Name + "_pos1", toI64(A.Pos));
  M.setArrayI64(Name + "_crd1", A.Crd);
  M.setArrayF64(Name + "_vals", A.Val);
}

void etch::bindCsf3(VmMemory &M, const std::string &Name,
                    const CsfTensor3<double> &T) {
  M.setArrayI64(Name + "_pos0",
                {0, static_cast<int64_t>(T.Crd0.size())});
  M.setArrayI64(Name + "_crd0", T.Crd0);
  M.setArrayI64(Name + "_pos1", toI64(T.Pos0));
  M.setArrayI64(Name + "_crd1", T.Crd1);
  M.setArrayI64(Name + "_pos2", toI64(T.Pos1));
  M.setArrayI64(Name + "_crd2", T.Crd2);
  M.setArrayF64(Name + "_vals", T.Val);
}

int64_t etch::hashedTabSizeFor(size_t Nnz) {
  int64_t Buckets = 8;
  while (Buckets < static_cast<int64_t>(2 * Nnz))
    Buckets *= 2;
  return Buckets;
}

std::pair<std::vector<int64_t>, std::vector<int64_t>>
etch::hashedProbeArrays(const std::vector<Idx> &Crd, int64_t TabSize) {
  // The emitted probe computes `key mod TabSize` with linear wraparound
  // (no wrapping multiply in the target language), so the probe arrays use
  // that layout rather than the runtime table's Fibonacci layout.
  std::vector<int64_t> Key(static_cast<size_t>(TabSize), -1);
  std::vector<int64_t> Rank(static_cast<size_t>(TabSize), 0);
  for (size_t R = 0; R < Crd.size(); ++R) {
    size_t H = static_cast<size_t>(Crd[R] % TabSize);
    while (Key[H] != -1)
      H = (H + 1) % static_cast<size_t>(TabSize);
    Key[H] = Crd[R];
    Rank[H] = static_cast<int64_t>(R);
  }
  return {std::move(Key), std::move(Rank)};
}

int64_t etch::bindHashedVector(VmMemory &M, const std::string &Name,
                               const HashedVector<double> &V) {
  ETCH_ASSERT(V.frozen(), "bind a frozen HashedVector");
  M.setArrayI64(Name + "_pos0", {0, static_cast<int64_t>(V.Crd.size())});
  M.setArrayI64(Name + "_crd0", V.Crd);
  M.setArrayF64(Name + "_vals", V.Val);
  int64_t TabSize = hashedTabSizeFor(V.Crd.size());
  auto [Key, Rank] = hashedProbeArrays(V.Crd, TabSize);
  M.setArrayI64(Name + "_hkey0", Key);
  M.setArrayI64(Name + "_hpos0", Rank);
  return TabSize;
}

TensorBinding etch::sparseVecBinding(std::string Name, Attr A,
                                     SearchPolicy P) {
  return TensorBinding{std::move(Name), {A}, {{LevelSpec::Compressed, P}}};
}

TensorBinding etch::denseVecBinding(std::string Name, Attr A) {
  return TensorBinding{
      std::move(Name), {A}, {{LevelSpec::Dense, SearchPolicy::Linear}}};
}

TensorBinding etch::csrBinding(std::string Name, Attr Row, Attr Col,
                               SearchPolicy P) {
  ETCH_ASSERT(Row < Col, "attributes must follow the global order");
  return TensorBinding{std::move(Name),
                       {Row, Col},
                       {{LevelSpec::Dense, SearchPolicy::Linear},
                        {LevelSpec::Compressed, P}}};
}

TensorBinding etch::dcsrBinding(std::string Name, Attr Row, Attr Col,
                                SearchPolicy P) {
  ETCH_ASSERT(Row < Col, "attributes must follow the global order");
  return TensorBinding{std::move(Name),
                       {Row, Col},
                       {{LevelSpec::Compressed, P},
                        {LevelSpec::Compressed, P}}};
}

TensorBinding etch::hashedVecBinding(std::string Name, Attr A,
                                     int64_t TabSize, SearchPolicy P) {
  return TensorBinding{
      std::move(Name), {A}, {{LevelSpec::Hashed, P, TabSize}}};
}

TensorBinding etch::csf3Binding(std::string Name, Attr I, Attr J, Attr K,
                                SearchPolicy P) {
  ETCH_ASSERT(I < J && J < K, "attributes must follow the global order");
  return TensorBinding{std::move(Name),
                       {I, J, K},
                       {{LevelSpec::Compressed, P},
                        {LevelSpec::Compressed, P},
                        {LevelSpec::Compressed, P}}};
}

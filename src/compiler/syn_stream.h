//===- compiler/syn_stream.h - Syntactic indexed streams -------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic indexed streams (Section 7.2, Figure 13): the compiler-side
/// encoding of an indexed stream where every component is a program
/// fragment over named state variables instead of a function over states.
///
///   - `Vars`  : the state space — the variables this level owns;
///   - `Init`  : code establishing the initial state (paper's `init`);
///   - `Valid` : termination check; `Ready`, `Index` as in the model;
///   - `Skip0` / `Skip1`: code advancing the state to the first index
///     >= i / > i (the split of `skip`'s boolean argument, as in Fig. 13);
///   - the value is either a scalar expression (leaf) or a nested
///     syntactic stream whose Init reads this level's state.
///
/// Stream operators (multiplication as in Figure 14, addition,
/// contraction, expansion) build composite SynStreams out of simpler ones;
/// almost all the compiler's work happens here, with codegen reduced to the
/// single loop template of Figure 15.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_SYN_STREAM_H
#define ETCH_COMPILER_SYN_STREAM_H

#include "compiler/ops.h"
#include "streams/primitives.h" // SearchPolicy

#include <memory>

namespace etch {

/// A state variable owned by one stream level.
struct VarDecl {
  std::string Name;
  ImpType Ty;
};

class SynStream;
using SynRef = std::shared_ptr<const SynStream>;

/// A stream's value: exactly one of a scalar expression or a nested stream.
struct SynValue {
  ERef Scalar;
  SynRef Inner;

  bool isLeaf() const { return Scalar != nullptr; }
};

/// One level of a syntactic indexed stream. Instances are immutable after
/// construction; combinators build new ones.
class SynStream {
public:
  std::vector<VarDecl> Vars;
  PRef Init;
  ERef Valid;
  ERef Ready;
  ERef Index;
  bool Contracted = false;
  SynValue Value;
  std::function<PRef(ERef)> Skip0; ///< Advance to first index >= i.
  std::function<PRef(ERef)> Skip1; ///< Advance to first index > i.

  SynStream() = default;
};

//===----------------------------------------------------------------------===//
// Primitive levels
//===----------------------------------------------------------------------===//

/// A compressed level iterating positions [Begin, End) of the sorted
/// coordinate array \p CrdArr. \p MakeValue builds the level's value from
/// the position expression (a value array access for leaves; a nested level
/// whose bounds read a positions array for interior levels).
SynRef synSparse(NameGen &G, const std::string &CrdArr, ERef Begin, ERef End,
                 SearchPolicy Policy,
                 const std::function<SynValue(ERef Pos)> &MakeValue);

/// A hashed level (formats/levels.h): iterates positions [Begin, End) of
/// the *sorted snapshot* \p CrdArr exactly like synSparse, but skips probe
/// the open-addressing arrays first — \p KeyArr (key per slot, -1 empty)
/// and \p RankArr (the key's snapshot position) over \p TabSize slots,
/// filled with `h = key mod TabSize` linear probing (the convention
/// bindHashedVector and hashDest write). An exact coordinate hit lands in
/// O(1); misses fall back to a \p Policy search over the snapshot.
SynRef synHashed(NameGen &G, const std::string &CrdArr, ERef Begin, ERef End,
                 const std::string &KeyArr, const std::string &RankArr,
                 int64_t TabSize, SearchPolicy Policy,
                 const std::function<SynValue(ERef Pos)> &MakeValue);

/// A dense level over indices 0..Size-1. \p MakeValue receives the index
/// expression; with a closure over external arrays this also models
/// implicitly represented streams (user-defined functions / predicates).
SynRef synDense(NameGen &G, ERef Size,
                const std::function<SynValue(ERef Index)> &MakeValue);

/// The expansion operator ↑ as a level: always ready over 0..Size-1 with a
/// constant value.
SynRef synRepeat(NameGen &G, ERef Size, SynValue Value);

//===----------------------------------------------------------------------===//
// Combinators
//===----------------------------------------------------------------------===//

/// Stream multiplication (Figure 14 / Definition 5.4), recursing through
/// nested values; scalar leaves combine with \p Alg's multiplication.
SynRef synMul(NameGen &G, const ScalarAlgebra &Alg, const SynRef &A,
              const SynRef &B);

/// Stream addition (union merge); leaves combine with \p Alg's addition.
/// At a tied index a one-sided value is emitted only when the other side
/// has strictly passed it (see streams/combinators.h for why).
SynRef synAdd(NameGen &G, const ScalarAlgebra &Alg, const SynRef &A,
              const SynRef &B);

/// Σ at shape position \p Depth: marks the \p Depth-th *indexed* level
/// contracted (`map^k Σ`, Definition 5.8).
SynRef synContractAt(const SynRef &S, int Depth);

/// ↑ at shape position \p Depth: inserts a repeat level of extent \p Size
/// before the \p Depth-th indexed level (`map^k ↑`).
SynRef synExpandAt(const SynRef &S, int Depth, ERef Size, NameGen &G);

/// Value-level form of synExpandAt; also handles expanding a bare scalar
/// (Depth 0 over a leaf) into a one-level repeat stream.
SynValue synExpandValueAt(const SynValue &V, int Depth, ERef Size,
                          NameGen &G);

/// Restricts a stream by an outer condition: Valid becomes
/// `Cond && Valid`, Init and the skips run only under \p Cond. Used by
/// addition to mask the non-emitting side's nested value.
SynRef synMask(const SynRef &S, ERef Cond);

/// Number of indexed (non-contracted) levels.
int synShapeLen(const SynRef &S);

} // namespace etch

#endif // ETCH_COMPILER_SYN_STREAM_H

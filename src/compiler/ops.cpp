//===- compiler/ops.cpp - Built-in operations and E builders -------------===//

#include "compiler/ops.h"

#include <limits>

using namespace etch;

namespace {

int64_t asI(const ImpValue &V) { return std::get<int64_t>(V); }
double asF(const ImpValue &V) { return std::get<double>(V); }
bool asB(const ImpValue &V) { return std::get<bool>(V); }

OpDef makeOp(std::string Name, ImpType R, std::vector<ImpType> Args,
             std::function<ImpValue(std::span<const ImpValue>)> Spec,
             std::string Fmt,
             OpDef::Laziness Lazy = OpDef::Laziness::Eager) {
  OpDef O;
  O.Name = std::move(Name);
  O.Result = R;
  O.ArgTypes = std::move(Args);
  O.Spec = std::move(Spec);
  O.CFormat = std::move(Fmt);
  O.Lazy = Lazy;
  return O;
}

} // namespace

#define ETCH_DEFINE_OP(Getter, ...)                                           \
  const OpDef *Ops::Getter() {                                                \
    static OpDef O = makeOp(__VA_ARGS__);                                     \
    return &O;                                                                \
  }

using VS = std::span<const ImpValue>;
using IT = ImpType;

// Signed i64 overflow is undefined in the IR semantics (the Specs compute
// with C++ int64_t, where it is likewise UB): programs whose arithmetic
// wraps have no defined meaning, and passes may rewrite under the
// assumption that it does not happen (e.g. max(x, x+1) = x+1).
ETCH_DEFINE_OP(addI, "addI", IT::I64, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) + asI(A[1]); },
               "({0} + {1})")
ETCH_DEFINE_OP(subI, "subI", IT::I64, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) - asI(A[1]); },
               "({0} - {1})")
ETCH_DEFINE_OP(mulI, "mulI", IT::I64, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) * asI(A[1]); },
               "({0} * {1})")
// Division and modulo are partial (undefined on a zero divisor, and on
// INT64_MIN / -1), so they carry a FoldSafe guard: the constant folder
// leaves unsafe applications in place and the trap stays at runtime.
static bool divFoldSafe(VS A) {
  return asI(A[1]) != 0 && !(asI(A[0]) == std::numeric_limits<int64_t>::min() &&
                             asI(A[1]) == -1);
}

const OpDef *Ops::divI() {
  static OpDef O = [] {
    OpDef D = makeOp("divI", IT::I64, {IT::I64, IT::I64},
                     [](VS A) -> ImpValue { return asI(A[0]) / asI(A[1]); },
                     "({0} / {1})");
    D.FoldSafe = divFoldSafe;
    return D;
  }();
  return &O;
}
const OpDef *Ops::modI() {
  static OpDef O = [] {
    OpDef D = makeOp("modI", IT::I64, {IT::I64, IT::I64},
                     [](VS A) -> ImpValue { return asI(A[0]) % asI(A[1]); },
                     "({0} % {1})");
    D.FoldSafe = divFoldSafe;
    return D;
  }();
  return &O;
}
ETCH_DEFINE_OP(minI, "minI", IT::I64, {IT::I64, IT::I64},
               [](VS A) -> ImpValue {
                 return asI(A[0]) < asI(A[1]) ? asI(A[0]) : asI(A[1]);
               },
               "(({0} < {1}) ? {0} : {1})")
ETCH_DEFINE_OP(maxI, "maxI", IT::I64, {IT::I64, IT::I64},
               [](VS A) -> ImpValue {
                 return asI(A[0]) > asI(A[1]) ? asI(A[0]) : asI(A[1]);
               },
               "(({0} > {1}) ? {0} : {1})")
ETCH_DEFINE_OP(ltI, "ltI", IT::Bool, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) < asI(A[1]); },
               "({0} < {1})")
ETCH_DEFINE_OP(leI, "leI", IT::Bool, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) <= asI(A[1]); },
               "({0} <= {1})")
ETCH_DEFINE_OP(eqI, "eqI", IT::Bool, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) == asI(A[1]); },
               "({0} == {1})")
ETCH_DEFINE_OP(neI, "neI", IT::Bool, {IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asI(A[0]) != asI(A[1]); },
               "({0} != {1})")

ETCH_DEFINE_OP(addF, "addF", IT::F64, {IT::F64, IT::F64},
               [](VS A) -> ImpValue { return asF(A[0]) + asF(A[1]); },
               "({0} + {1})")
ETCH_DEFINE_OP(subF, "subF", IT::F64, {IT::F64, IT::F64},
               [](VS A) -> ImpValue { return asF(A[0]) - asF(A[1]); },
               "({0} - {1})")
ETCH_DEFINE_OP(mulF, "mulF", IT::F64, {IT::F64, IT::F64},
               [](VS A) -> ImpValue { return asF(A[0]) * asF(A[1]); },
               "({0} * {1})")
ETCH_DEFINE_OP(divF, "divF", IT::F64, {IT::F64, IT::F64},
               [](VS A) -> ImpValue { return asF(A[0]) / asF(A[1]); },
               "({0} / {1})")
ETCH_DEFINE_OP(minF, "minF", IT::F64, {IT::F64, IT::F64},
               [](VS A) -> ImpValue {
                 return asF(A[0]) < asF(A[1]) ? asF(A[0]) : asF(A[1]);
               },
               "(({0} < {1}) ? {0} : {1})")
ETCH_DEFINE_OP(ltF, "ltF", IT::Bool, {IT::F64, IT::F64},
               [](VS A) -> ImpValue { return asF(A[0]) < asF(A[1]); },
               "({0} < {1})")

ETCH_DEFINE_OP(andB, "andB", IT::Bool, {IT::Bool, IT::Bool},
               [](VS A) -> ImpValue { return asB(A[0]) && asB(A[1]); },
               "({0} && {1})", OpDef::Laziness::AndAlso)
ETCH_DEFINE_OP(orB, "orB", IT::Bool, {IT::Bool, IT::Bool},
               [](VS A) -> ImpValue { return asB(A[0]) || asB(A[1]); },
               "({0} || {1})", OpDef::Laziness::OrElse)
ETCH_DEFINE_OP(notB, "notB", IT::Bool, {IT::Bool},
               [](VS A) -> ImpValue { return !asB(A[0]); }, "(!{0})")

ETCH_DEFINE_OP(selectI, "selectI", IT::I64, {IT::Bool, IT::I64, IT::I64},
               [](VS A) -> ImpValue { return asB(A[0]) ? A[1] : A[2]; },
               "({0} ? {1} : {2})", OpDef::Laziness::Select)
ETCH_DEFINE_OP(selectF, "selectF", IT::F64, {IT::Bool, IT::F64, IT::F64},
               [](VS A) -> ImpValue { return asB(A[0]) ? A[1] : A[2]; },
               "({0} ? {1} : {2})", OpDef::Laziness::Select)
ETCH_DEFINE_OP(selectB, "selectB", IT::Bool, {IT::Bool, IT::Bool, IT::Bool},
               [](VS A) -> ImpValue { return asB(A[0]) ? A[1] : A[2]; },
               "({0} ? {1} : {2})", OpDef::Laziness::Select)

ETCH_DEFINE_OP(boolToI, "boolToI", IT::I64, {IT::Bool},
               [](VS A) -> ImpValue { return static_cast<int64_t>(asB(A[0])); },
               "((int64_t){0})")
ETCH_DEFINE_OP(i64ToF, "i64ToF", IT::F64, {IT::I64},
               [](VS A) -> ImpValue { return static_cast<double>(asI(A[0])); },
               "((double){0})")

#undef ETCH_DEFINE_OP

ERef etch::eAddI(ERef A, ERef B) {
  return EExpr::call(Ops::addI(), {std::move(A), std::move(B)});
}
ERef etch::eSubI(ERef A, ERef B) {
  return EExpr::call(Ops::subI(), {std::move(A), std::move(B)});
}
ERef etch::eMinI(ERef A, ERef B) {
  return EExpr::call(Ops::minI(), {std::move(A), std::move(B)});
}
ERef etch::eMaxI(ERef A, ERef B) {
  return EExpr::call(Ops::maxI(), {std::move(A), std::move(B)});
}
ERef etch::eLtI(ERef A, ERef B) {
  return EExpr::call(Ops::ltI(), {std::move(A), std::move(B)});
}
ERef etch::eLeI(ERef A, ERef B) {
  return EExpr::call(Ops::leI(), {std::move(A), std::move(B)});
}
ERef etch::eEqI(ERef A, ERef B) {
  return EExpr::call(Ops::eqI(), {std::move(A), std::move(B)});
}
ERef etch::eAnd(ERef A, ERef B) {
  return EExpr::call(Ops::andB(), {std::move(A), std::move(B)});
}
ERef etch::eOr(ERef A, ERef B) {
  return EExpr::call(Ops::orB(), {std::move(A), std::move(B)});
}
ERef etch::eNot(ERef A) { return EExpr::call(Ops::notB(), {std::move(A)}); }

ERef etch::eSelect(ERef C, ERef A, ERef B) {
  ETCH_ASSERT(A->type() == B->type(), "select branches must share a type");
  const OpDef *Op = nullptr;
  switch (A->type()) {
  case ImpType::I64:
    Op = Ops::selectI();
    break;
  case ImpType::F64:
    Op = Ops::selectF();
    break;
  case ImpType::Bool:
    Op = Ops::selectB();
    break;
  }
  return EExpr::call(Op, {std::move(C), std::move(A), std::move(B)});
}

ERef etch::eI64Max() {
  return eConstI(std::numeric_limits<int64_t>::max());
}

std::unique_ptr<OpDef> etch::makeCustomOp(
    std::string Name, ImpType Result, std::vector<ImpType> ArgTypes,
    std::function<ImpValue(std::span<const ImpValue>)> Spec,
    std::string CFormat, std::string CPrelude) {
  auto O = std::make_unique<OpDef>();
  O->Name = std::move(Name);
  O->Result = Result;
  O->ArgTypes = std::move(ArgTypes);
  O->Spec = std::move(Spec);
  O->CFormat = std::move(CFormat);
  O->CPrelude = std::move(CPrelude);
  return O;
}

const ScalarAlgebra &etch::f64Algebra() {
  static ScalarAlgebra A{ImpType::F64, eConstF(0.0), eConstF(1.0),
                         Ops::addF(), Ops::mulF(), Ops::selectF()};
  return A;
}

const ScalarAlgebra &etch::i64Algebra() {
  static ScalarAlgebra A{ImpType::I64, eConstI(0), eConstI(1), Ops::addI(),
                         Ops::mulI(), Ops::selectI()};
  return A;
}

const ScalarAlgebra &etch::boolAlgebra() {
  static ScalarAlgebra A{ImpType::Bool, eBool(false), eBool(true),
                         Ops::orB(), Ops::andB(), Ops::selectB()};
  return A;
}

const ScalarAlgebra &etch::minPlusAlgebra() {
  static ScalarAlgebra A{
      ImpType::F64, eConstF(std::numeric_limits<double>::infinity()),
      eConstF(0.0), Ops::minF(), Ops::addF(), Ops::selectF()};
  return A;
}

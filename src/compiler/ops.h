//===- compiler/ops.h - Built-in operations and E builders -----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in operation set (arithmetic, comparisons, min/max, lazy
/// booleans and select) plus terse builder helpers for E expressions. As in
/// Figure 12, nothing here is privileged: the compiler consumes OpDefs
/// through the same interface user-defined operations use, and
/// `makeCustomOp` shows how external C code is attached (the paper's Q9
/// timestamp-to-year op is built this way in the relational layer).
///
/// The scalar algebra a contraction program computes over is reified as a
/// ScalarAlgebra — the (0, 1, +, *) of one semiring as IR fragments — so
/// the code generator is generic over semirings (Section 7.3: "as long as
/// a semiring has a runtime representation ... it can be used").
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_OPS_H
#define ETCH_COMPILER_OPS_H

#include "compiler/imp.h"

namespace etch {

/// Accessors for the built-in operations. Each returns a pointer to a
/// function-local static OpDef (stable for the process lifetime).
struct Ops {
  // i64 arithmetic and comparisons.
  static const OpDef *addI();
  static const OpDef *subI();
  static const OpDef *mulI();
  static const OpDef *divI();
  static const OpDef *modI();
  static const OpDef *minI();
  static const OpDef *maxI();
  static const OpDef *ltI();
  static const OpDef *leI();
  static const OpDef *eqI();
  static const OpDef *neI();
  // f64 arithmetic.
  static const OpDef *addF();
  static const OpDef *subF();
  static const OpDef *mulF();
  static const OpDef *divF();
  static const OpDef *minF();
  static const OpDef *ltF();
  // Booleans; and/or are lazy (short-circuit) like C.
  static const OpDef *andB();
  static const OpDef *orB();
  static const OpDef *notB();
  // Lazy select (C ternary), one per result type.
  static const OpDef *selectI();
  static const OpDef *selectF();
  static const OpDef *selectB();
  // Conversions.
  static const OpDef *boolToI();
  static const OpDef *i64ToF();
};

//===----------------------------------------------------------------------===//
// Builder helpers
//===----------------------------------------------------------------------===//

inline ERef eConstI(int64_t V) { return EExpr::constant(V); }
inline ERef eConstF(double V) { return EExpr::constant(V); }
inline ERef eBool(bool V) { return EExpr::constant(V); }
inline ERef eVarI(std::string N) { return EExpr::var(std::move(N), ImpType::I64); }

ERef eAddI(ERef A, ERef B);
ERef eSubI(ERef A, ERef B);
ERef eMinI(ERef A, ERef B);
ERef eMaxI(ERef A, ERef B);
ERef eLtI(ERef A, ERef B);
ERef eLeI(ERef A, ERef B);
ERef eEqI(ERef A, ERef B);
ERef eAnd(ERef A, ERef B);
ERef eOr(ERef A, ERef B);
ERef eNot(ERef A);

/// A lazy conditional, dispatching on the branch type (A and B must agree).
ERef eSelect(ERef C, ERef A, ERef B);

/// Largest i64, used as the index of an exhausted side in additions.
ERef eI64Max();

/// Creates a user-defined operation (Figure 12's extension mechanism). The
/// caller owns the returned object and keeps it alive while expressions
/// reference it. \p CPrelude may define helper C functions used by
/// \p CFormat.
std::unique_ptr<OpDef>
makeCustomOp(std::string Name, ImpType Result, std::vector<ImpType> ArgTypes,
             std::function<ImpValue(std::span<const ImpValue>)> Spec,
             std::string CFormat, std::string CPrelude = "");

//===----------------------------------------------------------------------===//
// Scalar algebras (semirings as IR fragments)
//===----------------------------------------------------------------------===//

/// One semiring's (0, 1, +, *) in IR form.
struct ScalarAlgebra {
  ImpType Ty;
  ERef Zero;
  ERef One;
  const OpDef *Add;
  const OpDef *Mul;
  const OpDef *Select; ///< Lazy conditional at this type.

  ERef add(ERef A, ERef B) const {
    return EExpr::call(Add, {std::move(A), std::move(B)});
  }
  ERef mul(ERef A, ERef B) const {
    return EExpr::call(Mul, {std::move(A), std::move(B)});
  }
  ERef select(ERef C, ERef A, ERef B) const {
    return EExpr::call(Select, {std::move(C), std::move(A), std::move(B)});
  }
};

/// (+, *) over f64 — tensor algebra.
const ScalarAlgebra &f64Algebra();
/// (+, *) over i64 — counting / bags.
const ScalarAlgebra &i64Algebra();
/// (or, and) over bool — relations.
const ScalarAlgebra &boolAlgebra();
/// (min, +) over f64 — tropical aggregates. Zero is +inf.
const ScalarAlgebra &minPlusAlgebra();

} // namespace etch

#endif // ETCH_COMPILER_OPS_H

//===- compiler/bytecode.cpp - Register-allocated bytecode for P ----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "compiler/bytecode.h"

#include "compiler/ops.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

using namespace etch;

namespace {

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

int fileOf(ImpType T) { return static_cast<int>(T); }

/// Compiles one P tree to a BytecodeProgram. Two passes: an interning /
/// typing pre-pass over every name (so slot counts are fixed before code
/// emission), then a single emission pass that tracks the
/// definitely-defined name sets (the verifier's dominance discipline:
/// branch-arm intersection, zero-trip loops) to decide where runtime
/// defined-ness guards are required.
class BcCompiler {
public:
  BytecodeProgram run(const PStmt &Root) {
    internStmt(Root);
    if (!P.ok())
      return std::move(P);
    DefScalar.assign(P.Scalars.size(), 0);
    DefArray.assign(P.Arrays.size(), 0);
    emitStmt(Root);
    put({BcOp::Halt, 0, 0, 0});
    return std::move(P);
  }

private:
  BytecodeProgram P;

  //===--------------------------------------------------------------------===//
  // Pre-pass: intern names, check static types
  //===--------------------------------------------------------------------===//

  std::unordered_map<std::string, int32_t> ScalarId, ArrayId;
  std::unordered_set<const EExpr *> SeenExpr;
  std::unordered_set<const PStmt *> SeenStmt;

  void fail(std::string Msg) {
    if (P.CompileError.empty())
      P.CompileError = std::move(Msg);
  }

  int32_t allocReg(ImpType T, std::string DebugName) {
    switch (T) {
    case ImpType::I64:
      P.InitI.push_back(0);
      RegNames[0].push_back(std::move(DebugName));
      return static_cast<int32_t>(P.InitI.size() - 1);
    case ImpType::F64:
      P.InitF.push_back(0.0);
      RegNames[1].push_back(std::move(DebugName));
      return static_cast<int32_t>(P.InitF.size() - 1);
    case ImpType::Bool:
      P.InitB.push_back(0);
      RegNames[2].push_back(std::move(DebugName));
      return static_cast<int32_t>(P.InitB.size() - 1);
    }
    ETCH_UNREACHABLE("unknown ImpType");
  }

  int32_t internScalar(const std::string &Name, ImpType T) {
    auto It = ScalarId.find(Name);
    if (It != ScalarId.end()) {
      const BcScalar &S = P.Scalars[static_cast<size_t>(It->second)];
      if (S.Ty != T)
        fail("scalar '" + Name + "' used at both " + impTypeName(S.Ty) +
             " and " + impTypeName(T));
      return It->second;
    }
    BcScalar S;
    S.Name = Name;
    S.Ty = T;
    S.Reg = allocReg(T, Name);
    S.WrittenBack = false;
    P.Scalars.push_back(std::move(S));
    int32_t Id = static_cast<int32_t>(P.Scalars.size() - 1);
    ScalarId.emplace(Name, Id);
    return Id;
  }

  int32_t internArray(const std::string &Name, ImpType Elem) {
    auto It = ArrayId.find(Name);
    if (It != ArrayId.end()) {
      const BcArray &A = P.Arrays[static_cast<size_t>(It->second)];
      if (A.Elem != Elem)
        fail("array '" + Name + "' used at both element type " +
             impTypeName(A.Elem) + " and " + impTypeName(Elem));
      return It->second;
    }
    BcArray A;
    A.Name = Name;
    A.Elem = Elem;
    switch (Elem) {
    case ImpType::I64:
      A.Slot = static_cast<int32_t>(P.NumArrI++);
      break;
    case ImpType::F64:
      A.Slot = static_cast<int32_t>(P.NumArrF++);
      break;
    case ImpType::Bool:
      A.Slot = static_cast<int32_t>(P.NumArrB++);
      break;
    }
    A.WrittenBack = false;
    P.Arrays.push_back(std::move(A));
    int32_t Id = static_cast<int32_t>(P.Arrays.size() - 1);
    ArrayId.emplace(Name, Id);
    return Id;
  }

  void internExpr(const EExpr &E) {
    if (!SeenExpr.insert(&E).second)
      return; // Shared subtree: already interned (rewrites preserve sharing).
    switch (E.kind()) {
    case EKind::Const:
      return;
    case EKind::Var:
      internScalar(E.name(), E.type());
      return;
    case EKind::Access:
      internArray(E.name(), E.type());
      internExpr(*E.args()[0]);
      return;
    case EKind::Call:
      if (E.op()->Lazy == OpDef::Laziness::Select &&
          (E.args()[1]->type() != E.type() ||
           E.args()[2]->type() != E.type()))
        fail("select arms disagree with the result type");
      for (const auto &A : E.args())
        internExpr(*A);
      return;
    }
    ETCH_UNREACHABLE("unknown EKind");
  }

  void internStmt(const PStmt &S) {
    // Statements may be shared too, but interning is idempotent; the seen
    // set only bounds the walk on heavily shared trees.
    if (!SeenStmt.insert(&S).second)
      return;
    switch (S.kind()) {
    case PKind::Seq:
      for (const auto &C : S.children())
        internStmt(*C);
      return;
    case PKind::While:
      internExpr(*S.cond());
      internStmt(*S.children()[0]);
      return;
    case PKind::Branch:
      internExpr(*S.cond());
      internStmt(*S.children()[0]);
      internStmt(*S.children()[1]);
      return;
    case PKind::Noop:
    case PKind::Comment:
      return;
    case PKind::StoreVar: {
      internExpr(*S.valueExpr());
      int32_t Id = internScalar(S.name(), S.valueExpr()->type());
      P.Scalars[static_cast<size_t>(Id)].WrittenBack = true;
      return;
    }
    case PKind::StoreArr: {
      internExpr(*S.indexExpr());
      internExpr(*S.valueExpr());
      int32_t Id = internArray(S.name(), S.valueExpr()->type());
      P.Arrays[static_cast<size_t>(Id)].WrittenBack = true;
      return;
    }
    case PKind::DeclVar: {
      internExpr(*S.valueExpr());
      if (S.valueExpr()->type() != S.type())
        fail("initialiser type of '" + S.name() +
             "' disagrees with its declaration");
      int32_t Id = internScalar(S.name(), S.type());
      P.Scalars[static_cast<size_t>(Id)].WrittenBack = true;
      return;
    }
    case PKind::DeclArr: {
      internExpr(*S.valueExpr());
      int32_t Id = internArray(S.name(), S.type());
      P.Arrays[static_cast<size_t>(Id)].WrittenBack = true;
      return;
    }
    }
    ETCH_UNREACHABLE("unknown PKind");
  }

  //===--------------------------------------------------------------------===//
  // Emission
  //===--------------------------------------------------------------------===//

  /// Step charges accumulate here and flush as one AddSteps immediately
  /// before the next emitted instruction (or label). Charges only merge
  /// across statements that execute nothing in between (Seq headers,
  /// Noop, Comment), so the budget-crossing point — and therefore the
  /// step count and memory state at any error — matches the tree VM
  /// exactly.
  int32_t Pending = 0;

  /// Definitely-defined sets at the current emission point.
  std::vector<uint8_t> DefScalar, DefArray;

  /// Per-type free lists for expression temporaries.
  std::vector<int32_t> FreeTemps[3];
  int TempCount[3] = {0, 0, 0};

  /// Debug names per register file (named slots, '#'-prefixed constants,
  /// 't'-prefixed temporaries) — used by the disassembler.
  std::vector<std::string> RegNames[3];

  /// Interned constants: (file, value bits) -> register.
  std::unordered_map<uint64_t, int32_t> ConstReg[3];

  void flush() {
    if (Pending > 0) {
      P.Code.push_back({BcOp::AddSteps, Pending, 0, 0});
      Pending = 0;
    }
  }

  void put(BcInstr I) {
    flush();
    P.Code.push_back(I);
  }

  /// Flushes pending charges, then returns the next instruction index —
  /// the only valid way to bind a jump target.
  int32_t label() {
    flush();
    return static_cast<int32_t>(P.Code.size());
  }

  void charge() { ++Pending; }

  int32_t internConst(const ImpValue &V) {
    ImpType T = impTypeOf(V);
    uint64_t Bits = 0;
    if (const auto *I = std::get_if<int64_t>(&V))
      Bits = static_cast<uint64_t>(*I);
    else if (const auto *D = std::get_if<double>(&V))
      Bits = std::bit_cast<uint64_t>(*D);
    else
      Bits = std::get<bool>(V) ? 1 : 0;
    auto &Map = ConstReg[fileOf(T)];
    auto It = Map.find(Bits);
    if (It != Map.end())
      return It->second;
    int32_t R = allocReg(T, "#" + EExpr::constant(V)->toString());
    switch (T) {
    case ImpType::I64:
      P.InitI[static_cast<size_t>(R)] = std::get<int64_t>(V);
      break;
    case ImpType::F64:
      P.InitF[static_cast<size_t>(R)] = std::get<double>(V);
      break;
    case ImpType::Bool:
      P.InitB[static_cast<size_t>(R)] = std::get<bool>(V) ? 1 : 0;
      break;
    }
    Map.emplace(Bits, R);
    return R;
  }

  int32_t allocTemp(ImpType T) {
    int F = fileOf(T);
    if (!FreeTemps[F].empty()) {
      int32_t R = FreeTemps[F].back();
      FreeTemps[F].pop_back();
      return R;
    }
    return allocReg(T, "t" + std::to_string(TempCount[F]++));
  }

  /// An expression result: a register plus whether it is a temporary the
  /// consumer must release.
  struct Val {
    int32_t Reg;
    bool Temp;
  };

  void release(ImpType T, const Val &V) {
    if (V.Temp)
      FreeTemps[fileOf(T)].push_back(V.Reg);
  }

  /// True when evaluating \p E can latch an error at runtime: a bounds
  /// check (any Access) or a read of a name the dominance analysis cannot
  /// prove defined. Pure arithmetic cannot error (i64 division by zero is
  /// UB in the IR semantics, identically in both VMs).
  bool exprCanError(const EExpr &E) const {
    switch (E.kind()) {
    case EKind::Const:
      return false;
    case EKind::Var:
      return !DefScalar[static_cast<size_t>(
          ScalarId.at(E.name()))];
    case EKind::Access:
      return true;
    case EKind::Call:
      for (const auto &A : E.args())
        if (exprCanError(*A))
          return true;
      return false;
    }
    ETCH_UNREACHABLE("unknown EKind");
  }

  /// The dedicated opcode for a built-in eager op, or nullopt for ops that
  /// go through the generic call table. The opcode semantics must match
  /// OpDef::Spec bit for bit (see compiler/ops.cpp).
  static std::optional<BcOp> nativeOp(const OpDef *Op) {
    if (Op == Ops::addI())
      return BcOp::AddI;
    if (Op == Ops::subI())
      return BcOp::SubI;
    if (Op == Ops::mulI())
      return BcOp::MulI;
    if (Op == Ops::divI())
      return BcOp::DivI;
    if (Op == Ops::modI())
      return BcOp::ModI;
    if (Op == Ops::minI())
      return BcOp::MinI;
    if (Op == Ops::maxI())
      return BcOp::MaxI;
    if (Op == Ops::ltI())
      return BcOp::LtI;
    if (Op == Ops::leI())
      return BcOp::LeI;
    if (Op == Ops::eqI())
      return BcOp::EqI;
    if (Op == Ops::neI())
      return BcOp::NeI;
    if (Op == Ops::addF())
      return BcOp::AddF;
    if (Op == Ops::subF())
      return BcOp::SubF;
    if (Op == Ops::mulF())
      return BcOp::MulF;
    if (Op == Ops::divF())
      return BcOp::DivF;
    if (Op == Ops::minF())
      return BcOp::MinF;
    if (Op == Ops::ltF())
      return BcOp::LtF;
    if (Op == Ops::notB())
      return BcOp::NotB;
    if (Op == Ops::boolToI())
      return BcOp::BoolToI;
    if (Op == Ops::i64ToF())
      return BcOp::I64ToF;
    return std::nullopt;
  }

  static BcOp movOp(ImpType T) {
    switch (T) {
    case ImpType::I64:
      return BcOp::MovI;
    case ImpType::F64:
      return BcOp::MovF;
    case ImpType::Bool:
      return BcOp::MovB;
    }
    ETCH_UNREACHABLE("unknown ImpType");
  }

  /// Emits code leaving the value of \p E in the returned register.
  /// \p Hint, when nonnegative, is a register of E's type the caller wants
  /// the result in; it is only ever written by the final instruction of
  /// each path (so an expression may freely *read* the hinted register —
  /// `x = x + 1` compiles to one instruction).
  Val emitExpr(const EExpr &E, int32_t Hint = -1) {
    switch (E.kind()) {
    case EKind::Const:
      return {internConst(E.constant()), false};
    case EKind::Var: {
      int32_t Id = ScalarId.at(E.name());
      if (!DefScalar[static_cast<size_t>(Id)])
        put({BcOp::CheckDef, Id, 0, 0});
      return {P.Scalars[static_cast<size_t>(Id)].Reg, false};
    }
    case EKind::Access: {
      int32_t Id = ArrayId.at(E.name());
      const BcArray &A = P.Arrays[static_cast<size_t>(Id)];
      // The tree VM reports an unbound array *before* evaluating the
      // index, so when the index itself can error the defined-ness check
      // must come first. Otherwise the load's bounds check subsumes it
      // (an unbound slot is empty, and the error path picks the message
      // off the defined bit).
      if (!DefArray[static_cast<size_t>(Id)] && exprCanError(*E.args()[0]))
        put({BcOp::CheckArr, Id, /*store=*/0, 0});
      Val I = emitExpr(*E.args()[0]);
      release(ImpType::I64, I);
      int32_t Dst = Hint >= 0 ? Hint : allocTemp(E.type());
      BcOp Op = E.type() == ImpType::I64   ? BcOp::LoadI
                : E.type() == ImpType::F64 ? BcOp::LoadF
                                           : BcOp::LoadB;
      put({Op, Dst, A.Slot, I.Reg});
      return {Dst, Hint < 0};
    }
    case EKind::Call:
      return emitCall(E, Hint);
    }
    ETCH_UNREACHABLE("unknown EKind");
  }

  Val emitCall(const EExpr &E, int32_t Hint) {
    const OpDef *Op = E.op();
    switch (Op->Lazy) {
    case OpDef::Laziness::AndAlso: {
      // eval a; if (!a) false; else eval b   — C's short circuit.
      int32_t Res = Hint >= 0 ? Hint : allocTemp(ImpType::Bool);
      Val A = emitExpr(*E.args()[0]);
      put({BcOp::JumpIfFalse, A.Reg, 0, 0});
      int32_t PatchFalse = static_cast<int32_t>(P.Code.size() - 1);
      release(ImpType::Bool, A);
      Val B = emitExpr(*E.args()[1], Res);
      if (B.Reg != Res)
        put({BcOp::MovB, Res, B.Reg, 0});
      release(ImpType::Bool, B);
      put({BcOp::Jump, 0, 0, 0});
      int32_t PatchEnd = static_cast<int32_t>(P.Code.size() - 1);
      P.Code[static_cast<size_t>(PatchFalse)].B = label();
      put({BcOp::MovB, Res, internConst(false), 0});
      P.Code[static_cast<size_t>(PatchEnd)].A = label();
      return {Res, Hint < 0};
    }
    case OpDef::Laziness::OrElse: {
      int32_t Res = Hint >= 0 ? Hint : allocTemp(ImpType::Bool);
      Val A = emitExpr(*E.args()[0]);
      put({BcOp::JumpIfTrue, A.Reg, 0, 0});
      int32_t PatchTrue = static_cast<int32_t>(P.Code.size() - 1);
      release(ImpType::Bool, A);
      Val B = emitExpr(*E.args()[1], Res);
      if (B.Reg != Res)
        put({BcOp::MovB, Res, B.Reg, 0});
      release(ImpType::Bool, B);
      put({BcOp::Jump, 0, 0, 0});
      int32_t PatchEnd = static_cast<int32_t>(P.Code.size() - 1);
      P.Code[static_cast<size_t>(PatchTrue)].B = label();
      put({BcOp::MovB, Res, internConst(true), 0});
      P.Code[static_cast<size_t>(PatchEnd)].A = label();
      return {Res, Hint < 0};
    }
    case OpDef::Laziness::Select: {
      int32_t Res = Hint >= 0 ? Hint : allocTemp(E.type());
      Val C = emitExpr(*E.args()[0]);
      put({BcOp::JumpIfFalse, C.Reg, 0, 0});
      int32_t PatchElse = static_cast<int32_t>(P.Code.size() - 1);
      release(ImpType::Bool, C);
      Val A = emitExpr(*E.args()[1], Res);
      if (A.Reg != Res)
        put({movOp(E.type()), Res, A.Reg, 0});
      release(E.type(), A);
      put({BcOp::Jump, 0, 0, 0});
      int32_t PatchEnd = static_cast<int32_t>(P.Code.size() - 1);
      P.Code[static_cast<size_t>(PatchElse)].B = label();
      Val B = emitExpr(*E.args()[2], Res);
      if (B.Reg != Res)
        put({movOp(E.type()), Res, B.Reg, 0});
      release(E.type(), B);
      P.Code[static_cast<size_t>(PatchEnd)].A = label();
      return {Res, Hint < 0};
    }
    case OpDef::Laziness::Eager: {
      if (auto Native = nativeOp(Op); Native && E.args().size() == 2) {
        Val A = emitExpr(*E.args()[0]);
        Val B = emitExpr(*E.args()[1]);
        release(Op->ArgTypes[0], A);
        release(Op->ArgTypes[1], B);
        int32_t Dst = Hint >= 0 ? Hint : allocTemp(E.type());
        put({*Native, Dst, A.Reg, B.Reg});
        return {Dst, Hint < 0};
      }
      if (auto Native = nativeOp(Op); Native && E.args().size() == 1) {
        Val A = emitExpr(*E.args()[0]);
        release(Op->ArgTypes[0], A);
        int32_t Dst = Hint >= 0 ? Hint : allocTemp(E.type());
        put({*Native, Dst, A.Reg, 0});
        return {Dst, Hint < 0};
      }
      // Generic path: user-defined ops run through OpDef::Spec with
      // boxed arguments, via the call table.
      BcCall Call;
      Call.Op = Op;
      std::vector<Val> Args;
      Args.reserve(E.args().size());
      for (size_t I = 0; I < E.args().size(); ++I) {
        Val A = emitExpr(*E.args()[I]);
        Args.push_back(A);
        Call.Args.emplace_back(Op->ArgTypes[I], A.Reg);
      }
      for (size_t I = 0; I < Args.size(); ++I)
        release(Op->ArgTypes[I], Args[I]);
      int32_t Dst = Hint >= 0 ? Hint : allocTemp(E.type());
      Call.Dst = Dst;
      P.Calls.push_back(std::move(Call));
      put({BcOp::CallOp, static_cast<int32_t>(P.Calls.size() - 1), 0, 0});
      return {Dst, Hint < 0};
    }
    }
    ETCH_UNREACHABLE("unknown laziness");
  }

  /// Emits a scalar definition (StoreVar and DeclVar share semantics).
  void emitScalarDef(const PStmt &S) {
    int32_t Id = ScalarId.at(S.name());
    const BcScalar &Sc = P.Scalars[static_cast<size_t>(Id)];
    Val V = emitExpr(*S.valueExpr(), Sc.Reg);
    if (V.Reg != Sc.Reg)
      put({movOp(Sc.Ty), Sc.Reg, V.Reg, 0});
    release(Sc.Ty, V);
    if (!DefScalar[static_cast<size_t>(Id)]) {
      // First possible definition on this path: the defined bit feeds
      // both later guarded reads and the final write-back set.
      put({BcOp::SetDef, Id, 0, 0});
      DefScalar[static_cast<size_t>(Id)] = 1;
    }
  }

  void emitStmt(const PStmt &S) {
    charge(); // Every statement execution costs one step (vm.cpp).
    switch (S.kind()) {
    case PKind::Seq:
      for (const auto &C : S.children())
        emitStmt(*C);
      return;
    case PKind::While: {
      int32_t Loop = label(); // Entry charge stays outside the loop.
      charge();               // One step per iteration check.
      Val C = emitExpr(*S.cond());
      put({BcOp::JumpIfFalse, C.Reg, 0, 0});
      int32_t PatchEnd = static_cast<int32_t>(P.Code.size() - 1);
      release(ImpType::Bool, C);
      // Definitions inside the body may not execute (zero-trip loops):
      // analyse the body against a copy and discard it.
      std::vector<uint8_t> SavedS = DefScalar, SavedA = DefArray;
      emitStmt(*S.children()[0]);
      DefScalar = std::move(SavedS);
      DefArray = std::move(SavedA);
      put({BcOp::Jump, Loop, 0, 0});
      P.Code[static_cast<size_t>(PatchEnd)].B = label();
      return;
    }
    case PKind::Branch: {
      Val C = emitExpr(*S.cond());
      put({BcOp::JumpIfFalse, C.Reg, 0, 0});
      int32_t PatchElse = static_cast<int32_t>(P.Code.size() - 1);
      release(ImpType::Bool, C);
      std::vector<uint8_t> Before = DefScalar, BeforeA = DefArray;
      emitStmt(*S.children()[0]);
      std::vector<uint8_t> ThenS = std::move(DefScalar),
                           ThenA = std::move(DefArray);
      DefScalar = std::move(Before);
      DefArray = std::move(BeforeA);
      put({BcOp::Jump, 0, 0, 0});
      int32_t PatchEnd = static_cast<int32_t>(P.Code.size() - 1);
      P.Code[static_cast<size_t>(PatchElse)].B = label();
      emitStmt(*S.children()[1]);
      P.Code[static_cast<size_t>(PatchEnd)].A = label();
      // Only names defined on both arms are definitely defined after.
      for (size_t I = 0; I < DefScalar.size(); ++I)
        DefScalar[I] = DefScalar[I] && ThenS[I];
      for (size_t I = 0; I < DefArray.size(); ++I)
        DefArray[I] = DefArray[I] && ThenA[I];
      return;
    }
    case PKind::Noop:
    case PKind::Comment:
      return; // Charge only.
    case PKind::StoreVar:
    case PKind::DeclVar:
      emitScalarDef(S);
      return;
    case PKind::StoreArr: {
      // Tree-VM order: index, value, then the array lookup — so the
      // store's bounds check (whose error path distinguishes unbound
      // from out-of-bounds) needs no preceding CheckArr.
      int32_t Id = ArrayId.at(S.name());
      const BcArray &A = P.Arrays[static_cast<size_t>(Id)];
      Val I = emitExpr(*S.indexExpr());
      Val V = emitExpr(*S.valueExpr());
      release(ImpType::I64, I);
      release(A.Elem, V);
      BcOp Op = A.Elem == ImpType::I64   ? BcOp::StoreI
                : A.Elem == ImpType::F64 ? BcOp::StoreF
                                         : BcOp::StoreB;
      put({Op, A.Slot, I.Reg, V.Reg});
      return;
    }
    case PKind::DeclArr: {
      int32_t Id = ArrayId.at(S.name());
      const BcArray &A = P.Arrays[static_cast<size_t>(Id)];
      Val N = emitExpr(*S.valueExpr());
      release(ImpType::I64, N);
      BcOp Op = A.Elem == ImpType::I64   ? BcOp::AllocI
                : A.Elem == ImpType::F64 ? BcOp::AllocF
                                         : BcOp::AllocB;
      put({Op, A.Slot, N.Reg, Id});
      DefArray[static_cast<size_t>(Id)] = 1;
      return;
    }
    }
    ETCH_UNREACHABLE("unknown PKind");
  }

public:
  // Exposed for the disassembler (the compiler owns the debug names).
  const std::vector<std::string> *regNames() const { return RegNames; }
};

} // namespace

BytecodeProgram etch::compileBytecode(const PRef &Program) {
  ETCH_ASSERT(Program, "null program");
  BcCompiler C;
  BytecodeProgram P = C.run(*Program);
  // Stash debug names into the disassembly-support side tables.
  P.RegNamesI = C.regNames()[0];
  P.RegNamesF = C.regNames()[1];
  P.RegNamesB = C.regNames()[2];
  return P;
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

const char *etch::bcOpName(BcOp Op) {
  switch (Op) {
  case BcOp::AddSteps:
    return "steps";
  case BcOp::Jump:
    return "jmp";
  case BcOp::JumpIfTrue:
    return "jt";
  case BcOp::JumpIfFalse:
    return "jf";
  case BcOp::Halt:
    return "halt";
  case BcOp::MovI:
    return "mov.i";
  case BcOp::MovF:
    return "mov.f";
  case BcOp::MovB:
    return "mov.b";
  case BcOp::CheckDef:
    return "chkdef";
  case BcOp::SetDef:
    return "setdef";
  case BcOp::CheckArr:
    return "chkarr";
  case BcOp::AddI:
    return "add.i";
  case BcOp::SubI:
    return "sub.i";
  case BcOp::MulI:
    return "mul.i";
  case BcOp::DivI:
    return "div.i";
  case BcOp::ModI:
    return "mod.i";
  case BcOp::MinI:
    return "min.i";
  case BcOp::MaxI:
    return "max.i";
  case BcOp::LtI:
    return "lt.i";
  case BcOp::LeI:
    return "le.i";
  case BcOp::EqI:
    return "eq.i";
  case BcOp::NeI:
    return "ne.i";
  case BcOp::AddF:
    return "add.f";
  case BcOp::SubF:
    return "sub.f";
  case BcOp::MulF:
    return "mul.f";
  case BcOp::DivF:
    return "div.f";
  case BcOp::MinF:
    return "min.f";
  case BcOp::LtF:
    return "lt.f";
  case BcOp::NotB:
    return "not.b";
  case BcOp::BoolToI:
    return "b2i";
  case BcOp::I64ToF:
    return "i2f";
  case BcOp::CallOp:
    return "call";
  case BcOp::LoadI:
    return "ld.i";
  case BcOp::LoadF:
    return "ld.f";
  case BcOp::LoadB:
    return "ld.b";
  case BcOp::StoreI:
    return "st.i";
  case BcOp::StoreF:
    return "st.f";
  case BcOp::StoreB:
    return "st.b";
  case BcOp::AllocI:
    return "alloc.i";
  case BcOp::AllocF:
    return "alloc.f";
  case BcOp::AllocB:
    return "alloc.b";
  }
  ETCH_UNREACHABLE("unknown BcOp");
}

namespace {

/// Operand-type classes used only for rendering.
enum class FileTag { I, F, B };

const std::string &regName(const BytecodeProgram &P, FileTag F, int32_t R) {
  switch (F) {
  case FileTag::I:
    return P.RegNamesI[static_cast<size_t>(R)];
  case FileTag::F:
    return P.RegNamesF[static_cast<size_t>(R)];
  case FileTag::B:
    return P.RegNamesB[static_cast<size_t>(R)];
  }
  ETCH_UNREACHABLE("unknown file");
}

std::string arrName(const BytecodeProgram &P, ImpType Elem, int32_t Slot) {
  for (const BcArray &A : P.Arrays)
    if (A.Elem == Elem && A.Slot == Slot)
      return A.Name;
  return "<arr?>";
}

FileTag tagOf(ImpType T) {
  switch (T) {
  case ImpType::I64:
    return FileTag::I;
  case ImpType::F64:
    return FileTag::F;
  case ImpType::Bool:
    return FileTag::B;
  }
  ETCH_UNREACHABLE("unknown ImpType");
}

} // namespace

std::string BytecodeProgram::disassemble() const {
  std::string Out;
  char Buf[64];
  auto Line = [&](size_t Pc, const std::string &Body) {
    std::snprintf(Buf, sizeof(Buf), "%4zu: ", Pc);
    Out += Buf;
    Out += Body;
    Out += '\n';
  };
  auto R = [&](FileTag F, int32_t Reg) { return regName(*this, F, Reg); };
  for (size_t Pc = 0; Pc < Code.size(); ++Pc) {
    const BcInstr &I = Code[Pc];
    std::string M = bcOpName(I.Op);
    switch (I.Op) {
    case BcOp::AddSteps:
      Line(Pc, M + " " + std::to_string(I.A));
      break;
    case BcOp::Jump:
      Line(Pc, M + " @" + std::to_string(I.A));
      break;
    case BcOp::JumpIfTrue:
    case BcOp::JumpIfFalse:
      Line(Pc, M + " " + R(FileTag::B, I.A) + ", @" + std::to_string(I.B));
      break;
    case BcOp::Halt:
      Line(Pc, M);
      break;
    case BcOp::MovI:
      Line(Pc, M + " " + R(FileTag::I, I.A) + ", " + R(FileTag::I, I.B));
      break;
    case BcOp::MovF:
      Line(Pc, M + " " + R(FileTag::F, I.A) + ", " + R(FileTag::F, I.B));
      break;
    case BcOp::MovB:
      Line(Pc, M + " " + R(FileTag::B, I.A) + ", " + R(FileTag::B, I.B));
      break;
    case BcOp::CheckDef:
    case BcOp::SetDef:
      Line(Pc, M + " " + Scalars[static_cast<size_t>(I.A)].Name);
      break;
    case BcOp::CheckArr:
      Line(Pc, M + " " + Arrays[static_cast<size_t>(I.A)].Name +
                   (I.B ? ", store" : ", access"));
      break;
    case BcOp::AddI:
    case BcOp::SubI:
    case BcOp::MulI:
    case BcOp::DivI:
    case BcOp::ModI:
    case BcOp::MinI:
    case BcOp::MaxI:
      Line(Pc, M + " " + R(FileTag::I, I.A) + ", " + R(FileTag::I, I.B) +
                   ", " + R(FileTag::I, I.C));
      break;
    case BcOp::LtI:
    case BcOp::LeI:
    case BcOp::EqI:
    case BcOp::NeI:
      Line(Pc, M + " " + R(FileTag::B, I.A) + ", " + R(FileTag::I, I.B) +
                   ", " + R(FileTag::I, I.C));
      break;
    case BcOp::AddF:
    case BcOp::SubF:
    case BcOp::MulF:
    case BcOp::DivF:
    case BcOp::MinF:
      Line(Pc, M + " " + R(FileTag::F, I.A) + ", " + R(FileTag::F, I.B) +
                   ", " + R(FileTag::F, I.C));
      break;
    case BcOp::LtF:
      Line(Pc, M + " " + R(FileTag::B, I.A) + ", " + R(FileTag::F, I.B) +
                   ", " + R(FileTag::F, I.C));
      break;
    case BcOp::NotB:
      Line(Pc, M + " " + R(FileTag::B, I.A) + ", " + R(FileTag::B, I.B));
      break;
    case BcOp::BoolToI:
      Line(Pc, M + " " + R(FileTag::I, I.A) + ", " + R(FileTag::B, I.B));
      break;
    case BcOp::I64ToF:
      Line(Pc, M + " " + R(FileTag::F, I.A) + ", " + R(FileTag::I, I.B));
      break;
    case BcOp::CallOp: {
      const BcCall &C = Calls[static_cast<size_t>(I.A)];
      std::string Body = M + " " + R(tagOf(C.Op->Result), C.Dst) + ", " +
                         C.Op->Name + "(";
      for (size_t K = 0; K < C.Args.size(); ++K) {
        if (K)
          Body += ", ";
        Body += R(tagOf(C.Args[K].first), C.Args[K].second);
      }
      Body += ")";
      Line(Pc, Body);
      break;
    }
    case BcOp::LoadI:
      Line(Pc, M + " " + R(FileTag::I, I.A) + ", " +
                   arrName(*this, ImpType::I64, I.B) + "[" +
                   R(FileTag::I, I.C) + "]");
      break;
    case BcOp::LoadF:
      Line(Pc, M + " " + R(FileTag::F, I.A) + ", " +
                   arrName(*this, ImpType::F64, I.B) + "[" +
                   R(FileTag::I, I.C) + "]");
      break;
    case BcOp::LoadB:
      Line(Pc, M + " " + R(FileTag::B, I.A) + ", " +
                   arrName(*this, ImpType::Bool, I.B) + "[" +
                   R(FileTag::I, I.C) + "]");
      break;
    case BcOp::StoreI:
      Line(Pc, M + " " + arrName(*this, ImpType::I64, I.A) + "[" +
                   R(FileTag::I, I.B) + "], " + R(FileTag::I, I.C));
      break;
    case BcOp::StoreF:
      Line(Pc, M + " " + arrName(*this, ImpType::F64, I.A) + "[" +
                   R(FileTag::I, I.B) + "], " + R(FileTag::F, I.C));
      break;
    case BcOp::StoreB:
      Line(Pc, M + " " + arrName(*this, ImpType::Bool, I.A) + "[" +
                   R(FileTag::I, I.B) + "], " + R(FileTag::B, I.C));
      break;
    case BcOp::AllocI:
    case BcOp::AllocF:
    case BcOp::AllocB:
      Line(Pc, M + " " + Arrays[static_cast<size_t>(I.C)].Name + ", " +
                   R(FileTag::I, I.B));
      break;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

/// Cold-path message for a failed array bounds check: an unbound slot is
/// empty, so the check also catches accesses of undefined arrays — the
/// defined bit picks the tree VM's message.
std::string boundsError(const BytecodeProgram &BC,
                        const std::vector<uint8_t> &ADef, ImpType Elem,
                        int32_t Slot, int64_t Index, size_t Size,
                        bool IsStore) {
  for (size_t Id = 0; Id < BC.Arrays.size(); ++Id) {
    const BcArray &A = BC.Arrays[Id];
    if (A.Elem != Elem || A.Slot != Slot)
      continue;
    if (!ADef[Id])
      return std::string(IsStore ? "store to" : "access of") +
             " undefined array '" + A.Name + "'";
    return std::string(IsStore ? "out-of-bounds store "
                               : "out-of-bounds access ") +
           A.Name + "[" + std::to_string(Index) + "], size " +
           std::to_string(Size);
  }
  ETCH_UNREACHABLE("bounds error on an unknown array slot");
}

} // namespace

VmRunResult etch::bytecodeRun(const BytecodeProgram &BC, VmMemory &Memory,
                              int64_t MaxSteps) {
  VmRunResult R;
  if (!BC.ok()) {
    R.Error = "bytecode compile error: " + BC.CompileError;
    return R;
  }

  // Frame setup: typed register files seeded with the constant image,
  // typed array files, and the defined bits.
  std::vector<int64_t> RI = BC.InitI;
  std::vector<double> RF = BC.InitF;
  std::vector<uint8_t> RB = BC.InitB;
  std::vector<std::vector<int64_t>> AI(BC.NumArrI);
  std::vector<std::vector<double>> AF(BC.NumArrF);
  std::vector<std::vector<uint8_t>> AB(BC.NumArrB);
  std::vector<uint8_t> SDef(BC.Scalars.size(), 0);
  std::vector<uint8_t> ADef(BC.Arrays.size(), 0);

  // Load inputs. A name bound in memory at a type other than the
  // program's static type has no defined meaning in the tree VM either
  // (its interpreter would throw on the first typed use); report it
  // instead of crashing.
  for (size_t Id = 0; Id < BC.Scalars.size(); ++Id) {
    const BcScalar &S = BC.Scalars[Id];
    auto V = Memory.getScalar(S.Name);
    if (!V)
      continue;
    if (impTypeOf(*V) != S.Ty) {
      R.Error = "scalar '" + S.Name + "' is bound as " +
                impTypeName(impTypeOf(*V)) + " but used as " +
                impTypeName(S.Ty);
      return R;
    }
    switch (S.Ty) {
    case ImpType::I64:
      RI[static_cast<size_t>(S.Reg)] = std::get<int64_t>(*V);
      break;
    case ImpType::F64:
      RF[static_cast<size_t>(S.Reg)] = std::get<double>(*V);
      break;
    case ImpType::Bool:
      RB[static_cast<size_t>(S.Reg)] = std::get<bool>(*V) ? 1 : 0;
      break;
    }
    SDef[Id] = 1;
  }
  for (size_t Id = 0; Id < BC.Arrays.size(); ++Id) {
    const BcArray &A = BC.Arrays[Id];
    const std::vector<ImpValue> *Src = Memory.getArray(A.Name);
    if (!Src)
      continue;
    for (const ImpValue &V : *Src)
      if (impTypeOf(V) != A.Elem) {
        R.Error = "array '" + A.Name + "' holds a " +
                  impTypeName(impTypeOf(V)) + " element but is used as " +
                  impTypeName(A.Elem);
        return R;
      }
    switch (A.Elem) {
    case ImpType::I64: {
      auto &D = AI[static_cast<size_t>(A.Slot)];
      D.reserve(Src->size());
      for (const ImpValue &V : *Src)
        D.push_back(std::get<int64_t>(V));
      break;
    }
    case ImpType::F64: {
      auto &D = AF[static_cast<size_t>(A.Slot)];
      D.reserve(Src->size());
      for (const ImpValue &V : *Src)
        D.push_back(std::get<double>(V));
      break;
    }
    case ImpType::Bool: {
      auto &D = AB[static_cast<size_t>(A.Slot)];
      D.reserve(Src->size());
      for (const ImpValue &V : *Src)
        D.push_back(std::get<bool>(V) ? 1 : 0);
      break;
    }
    }
    ADef[Id] = 1;
  }

  // The dispatch loop. With GCC/Clang each handler jumps directly to the
  // next handler through a label table (threaded dispatch); elsewhere a
  // switch in a loop decodes the same opcodes.
  const BcInstr *Code = BC.Code.data();
  const BcInstr *In = Code;
  int64_t StepsLeft = MaxSteps;
  std::string Err;
  std::vector<ImpValue> CallArgs;

#if defined(__GNUC__) || defined(__clang__)
#define ETCH_BC_THREADED 1
#endif

#ifdef ETCH_BC_THREADED
  static const void *const Lbl[] = {
#define ETCH_BC_LBL(Name) &&lbl_##Name,
      ETCH_BC_OPS(ETCH_BC_LBL)
#undef ETCH_BC_LBL
  };
#define ETCH_BC_CASE(Name) lbl_##Name
#define ETCH_BC_NEXT()                                                        \
  goto *Lbl[static_cast<size_t>(In->Op)]
  ETCH_BC_NEXT();
#else
#define ETCH_BC_CASE(Name) case BcOp::Name
#define ETCH_BC_NEXT() continue
  for (;;)
    switch (In->Op) {
#endif

  ETCH_BC_CASE(AddSteps) : {
    StepsLeft -= In->A;
    if (StepsLeft < 0) {
      // The tree VM fails on the charge that crosses zero, leaving
      // StepsLeft at exactly -1 (Steps = MaxSteps + 1).
      StepsLeft = -1;
      Err = "step budget exhausted (possible non-termination)";
      goto done;
    }
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(Jump) : {
    In = Code + In->A;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(JumpIfTrue) : {
    In = RB[static_cast<size_t>(In->A)] ? Code + In->B : In + 1;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(JumpIfFalse) : {
    In = RB[static_cast<size_t>(In->A)] ? In + 1 : Code + In->B;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(Halt) : { goto done; }
  ETCH_BC_CASE(MovI) : {
    RI[static_cast<size_t>(In->A)] = RI[static_cast<size_t>(In->B)];
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(MovF) : {
    RF[static_cast<size_t>(In->A)] = RF[static_cast<size_t>(In->B)];
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(MovB) : {
    RB[static_cast<size_t>(In->A)] = RB[static_cast<size_t>(In->B)];
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(CheckDef) : {
    if (!SDef[static_cast<size_t>(In->A)]) {
      Err = "read of undefined variable '" +
            BC.Scalars[static_cast<size_t>(In->A)].Name + "'";
      goto done;
    }
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(SetDef) : {
    SDef[static_cast<size_t>(In->A)] = 1;
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(CheckArr) : {
    if (!ADef[static_cast<size_t>(In->A)]) {
      Err = std::string(In->B ? "store to" : "access of") +
            " undefined array '" +
            BC.Arrays[static_cast<size_t>(In->A)].Name + "'";
      goto done;
    }
    ++In;
    ETCH_BC_NEXT();
  }

#define ETCH_BC_BIN(Name, File, Lhs, Expr)                                    \
  ETCH_BC_CASE(Name) : {                                                      \
    const auto &Ba = Lhs[static_cast<size_t>(In->B)];                         \
    const auto &Ca = Lhs[static_cast<size_t>(In->C)];                         \
    File[static_cast<size_t>(In->A)] = (Expr);                                \
    ++In;                                                                     \
    ETCH_BC_NEXT();                                                           \
  }

  ETCH_BC_BIN(AddI, RI, RI, Ba + Ca)
  ETCH_BC_BIN(SubI, RI, RI, Ba - Ca)
  ETCH_BC_BIN(MulI, RI, RI, Ba *Ca)
  // Division and modulo by zero (and INT64_MIN / -1) are UB in the IR
  // semantics — OpDef::Spec computes them with C++ operators too.
  ETCH_BC_BIN(DivI, RI, RI, Ba / Ca)
  ETCH_BC_BIN(ModI, RI, RI, Ba % Ca)
  ETCH_BC_BIN(MinI, RI, RI, Ba < Ca ? Ba : Ca)
  ETCH_BC_BIN(MaxI, RI, RI, Ba > Ca ? Ba : Ca)
  ETCH_BC_BIN(LtI, RB, RI, Ba < Ca)
  ETCH_BC_BIN(LeI, RB, RI, Ba <= Ca)
  ETCH_BC_BIN(EqI, RB, RI, Ba == Ca)
  ETCH_BC_BIN(NeI, RB, RI, Ba != Ca)
  ETCH_BC_BIN(AddF, RF, RF, Ba + Ca)
  ETCH_BC_BIN(SubF, RF, RF, Ba - Ca)
  ETCH_BC_BIN(MulF, RF, RF, Ba *Ca)
  ETCH_BC_BIN(DivF, RF, RF, Ba / Ca)
  ETCH_BC_BIN(MinF, RF, RF, Ba < Ca ? Ba : Ca)
  ETCH_BC_BIN(LtF, RB, RF, Ba < Ca)
#undef ETCH_BC_BIN

  ETCH_BC_CASE(NotB) : {
    RB[static_cast<size_t>(In->A)] =
        RB[static_cast<size_t>(In->B)] ? 0 : 1;
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(BoolToI) : {
    RI[static_cast<size_t>(In->A)] = RB[static_cast<size_t>(In->B)] ? 1 : 0;
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(I64ToF) : {
    RF[static_cast<size_t>(In->A)] =
        static_cast<double>(RI[static_cast<size_t>(In->B)]);
    ++In;
    ETCH_BC_NEXT();
  }
  ETCH_BC_CASE(CallOp) : {
    const BcCall &C = BC.Calls[static_cast<size_t>(In->A)];
    CallArgs.clear();
    for (const auto &[T, Reg] : C.Args)
      switch (T) {
      case ImpType::I64:
        CallArgs.emplace_back(RI[static_cast<size_t>(Reg)]);
        break;
      case ImpType::F64:
        CallArgs.emplace_back(RF[static_cast<size_t>(Reg)]);
        break;
      case ImpType::Bool:
        CallArgs.emplace_back(RB[static_cast<size_t>(Reg)] != 0);
        break;
      }
    ImpValue V = C.Op->Spec(CallArgs);
    switch (C.Op->Result) {
    case ImpType::I64:
      RI[static_cast<size_t>(C.Dst)] = std::get<int64_t>(V);
      break;
    case ImpType::F64:
      RF[static_cast<size_t>(C.Dst)] = std::get<double>(V);
      break;
    case ImpType::Bool:
      RB[static_cast<size_t>(C.Dst)] = std::get<bool>(V) ? 1 : 0;
      break;
    }
    ++In;
    ETCH_BC_NEXT();
  }

#define ETCH_BC_LOAD(Name, File, Arrs, Ty)                                    \
  ETCH_BC_CASE(Name) : {                                                      \
    const auto &Arr = Arrs[static_cast<size_t>(In->B)];                       \
    int64_t Ix = RI[static_cast<size_t>(In->C)];                              \
    if (static_cast<uint64_t>(Ix) >= Arr.size()) {                            \
      Err = boundsError(BC, ADef, Ty, In->B, Ix, Arr.size(), false);          \
      goto done;                                                              \
    }                                                                         \
    File[static_cast<size_t>(In->A)] = Arr[static_cast<size_t>(Ix)];          \
    ++In;                                                                     \
    ETCH_BC_NEXT();                                                           \
  }
  ETCH_BC_LOAD(LoadI, RI, AI, ImpType::I64)
  ETCH_BC_LOAD(LoadF, RF, AF, ImpType::F64)
  ETCH_BC_LOAD(LoadB, RB, AB, ImpType::Bool)
#undef ETCH_BC_LOAD

#define ETCH_BC_STORE(Name, File, Arrs, Ty)                                   \
  ETCH_BC_CASE(Name) : {                                                      \
    auto &Arr = Arrs[static_cast<size_t>(In->A)];                             \
    int64_t Ix = RI[static_cast<size_t>(In->B)];                              \
    if (static_cast<uint64_t>(Ix) >= Arr.size()) {                            \
      Err = boundsError(BC, ADef, Ty, In->A, Ix, Arr.size(), true);           \
      goto done;                                                              \
    }                                                                         \
    Arr[static_cast<size_t>(Ix)] = File[static_cast<size_t>(In->C)];          \
    ++In;                                                                     \
    ETCH_BC_NEXT();                                                           \
  }
  ETCH_BC_STORE(StoreI, RI, AI, ImpType::I64)
  ETCH_BC_STORE(StoreF, RF, AF, ImpType::F64)
  ETCH_BC_STORE(StoreB, RB, AB, ImpType::Bool)
#undef ETCH_BC_STORE

#define ETCH_BC_ALLOC(OpName, Arrs, Zero)                                     \
  ETCH_BC_CASE(OpName) : {                                                    \
    int64_t N = RI[static_cast<size_t>(In->B)];                               \
    if (N < 0) {                                                              \
      Err = "negative array size for '" +                                     \
            BC.Arrays[static_cast<size_t>(In->C)].Name + "'";                 \
      goto done;                                                              \
    }                                                                         \
    Arrs[static_cast<size_t>(In->A)].assign(static_cast<size_t>(N), Zero);    \
    ADef[static_cast<size_t>(In->C)] = 1;                                     \
    ++In;                                                                     \
    ETCH_BC_NEXT();                                                           \
  }
  ETCH_BC_ALLOC(AllocI, AI, int64_t{0})
  ETCH_BC_ALLOC(AllocF, AF, 0.0)
  ETCH_BC_ALLOC(AllocB, AB, uint8_t{0})
#undef ETCH_BC_ALLOC

#ifndef ETCH_BC_THREADED
    } // switch
#endif
#undef ETCH_BC_CASE
#undef ETCH_BC_NEXT

done:
  R.Steps = MaxSteps - StepsLeft;
  if (!Err.empty()) {
    R.Error = std::move(Err);
    return R; // On error, memory is untouched (see the header).
  }

  // Success: mirror the tree VM's final memory for every name the program
  // defined. Read-only inputs are bit-identical already and stay as-is.
  for (size_t Id = 0; Id < BC.Scalars.size(); ++Id) {
    const BcScalar &S = BC.Scalars[Id];
    if (!S.WrittenBack || !SDef[Id])
      continue;
    switch (S.Ty) {
    case ImpType::I64:
      Memory.setScalar(S.Name, RI[static_cast<size_t>(S.Reg)]);
      break;
    case ImpType::F64:
      Memory.setScalar(S.Name, RF[static_cast<size_t>(S.Reg)]);
      break;
    case ImpType::Bool:
      Memory.setScalar(S.Name, RB[static_cast<size_t>(S.Reg)] != 0);
      break;
    }
  }
  for (size_t Id = 0; Id < BC.Arrays.size(); ++Id) {
    const BcArray &A = BC.Arrays[Id];
    if (!A.WrittenBack || !ADef[Id])
      continue;
    std::vector<ImpValue> Out;
    switch (A.Elem) {
    case ImpType::I64: {
      const auto &D = AI[static_cast<size_t>(A.Slot)];
      Out.reserve(D.size());
      for (int64_t V : D)
        Out.emplace_back(V);
      break;
    }
    case ImpType::F64: {
      const auto &D = AF[static_cast<size_t>(A.Slot)];
      Out.reserve(D.size());
      for (double V : D)
        Out.emplace_back(V);
      break;
    }
    case ImpType::Bool: {
      const auto &D = AB[static_cast<size_t>(A.Slot)];
      Out.reserve(D.size());
      for (uint8_t V : D)
        Out.emplace_back(V != 0);
      break;
    }
    }
    Memory.setArray(A.Name, std::move(Out));
  }
  return R;
}

VmRunResult etch::bytecodeCompileAndRun(const PRef &Program, VmMemory &Memory,
                                        int64_t MaxSteps) {
  return bytecodeRun(compileBytecode(Program), Memory, MaxSteps);
}

//===- compiler/passes.cpp - Verifier and pass pipeline over P -----------===//

#include "compiler/passes.h"

#include "compiler/ops.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

using namespace etch;

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

namespace {

/// Walks a program in execution order, checking types and name discipline.
/// Names never declared in-program are externals (caller-provided inputs
/// and outputs) and may be used freely, but still must be type-consistent.
class Verifier {
public:
  explicit Verifier(const PRef &Program) {
    forEachStmtNode(Program, [&](const PStmt &S) {
      if (S.kind() == PKind::DeclVar)
        DeclaredScalars.insert(S.name());
      else if (S.kind() == PKind::DeclArr)
        DeclaredArrays.insert(S.name());
    });
  }

  std::optional<std::string> run(const PRef &Program) {
    checkStmt(*Program);
    if (Error.empty())
      return std::nullopt;
    return Error;
  }

private:
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  void noteScalar(const std::string &Name, ImpType Ty) {
    if (ArrayTypes.count(Name)) {
      fail("name '" + Name + "' used both as scalar and as array");
      return;
    }
    auto [It, Inserted] = ScalarTypes.emplace(Name, Ty);
    if (!Inserted && It->second != Ty)
      fail("scalar '" + Name + "' used at both " +
           impTypeName(It->second) + " and " + impTypeName(Ty));
  }

  void noteArray(const std::string &Name, ImpType Elem) {
    if (ScalarTypes.count(Name)) {
      fail("name '" + Name + "' used both as scalar and as array");
      return;
    }
    auto [It, Inserted] = ArrayTypes.emplace(Name, Elem);
    if (!Inserted && It->second != Elem)
      fail("array '" + Name + "' used at both element types " +
           impTypeName(It->second) + " and " + impTypeName(Elem));
  }

  void checkDeclOrder(const std::string &Name, bool IsArray,
                      const char *Use) {
    const auto &Declared = IsArray ? DeclaredArrays : DeclaredScalars;
    const auto &Seen = IsArray ? SeenArrayDecls : SeenScalarDecls;
    if (Declared.count(Name) && !Seen.count(Name))
      fail(std::string(Use) + " of '" + Name +
           "' before a dominating declaration");
  }

  void checkExpr(const EExpr &E) {
    if (!Error.empty())
      return;
    switch (E.kind()) {
    case EKind::Const:
      if (impTypeOf(E.constant()) != E.type())
        fail("constant carries a payload of the wrong type");
      return;
    case EKind::Var:
      noteScalar(E.name(), E.type());
      checkDeclOrder(E.name(), /*IsArray=*/false, "read");
      return;
    case EKind::Access:
      noteArray(E.name(), E.type());
      checkDeclOrder(E.name(), /*IsArray=*/true, "read");
      if (E.args().size() != 1 || E.args()[0]->type() != ImpType::I64) {
        fail("array access of '" + E.name() + "' without an i64 index");
        return;
      }
      checkExpr(*E.args()[0]);
      return;
    case EKind::Call: {
      const OpDef *Op = E.op();
      if (!Op) {
        fail("call with a null op");
        return;
      }
      if (E.type() != Op->Result) {
        fail("call to '" + Op->Name + "' typed " +
             impTypeName(E.type()) + ", op returns " +
             impTypeName(Op->Result));
        return;
      }
      if (E.args().size() != Op->ArgTypes.size()) {
        fail("call to '" + Op->Name + "' with wrong arity");
        return;
      }
      for (size_t I = 0; I < E.args().size(); ++I) {
        // Select's value arguments must match its result type; every other
        // argument matches the declared signature exactly.
        ImpType Want = (Op->Lazy == OpDef::Laziness::Select && I > 0)
                           ? Op->Result
                           : Op->ArgTypes[I];
        if (E.args()[I]->type() != Want) {
          fail("argument " + std::to_string(I) + " of '" + Op->Name +
               "' has type " + impTypeName(E.args()[I]->type()) +
               ", expected " + impTypeName(Want));
          return;
        }
        checkExpr(*E.args()[I]);
      }
      return;
    }
    }
    ETCH_UNREACHABLE("unknown EKind");
  }

  static std::set<std::string> intersect(const std::set<std::string> &A,
                                         const std::set<std::string> &B) {
    std::set<std::string> Out;
    std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                          std::inserter(Out, Out.begin()));
    return Out;
  }

  void checkStmt(const PStmt &P) {
    if (!Error.empty())
      return;
    switch (P.kind()) {
    case PKind::Seq:
      for (const PRef &C : P.children())
        checkStmt(*C);
      return;
    case PKind::While: {
      if (P.cond()->type() != ImpType::Bool) {
        fail("while condition is not boolean");
        return;
      }
      checkExpr(*P.cond());
      // Declarations inside the body dominate uses later in the body, but
      // the loop may run zero times, so they dominate nothing after it.
      std::set<std::string> SavedS = SeenScalarDecls;
      std::set<std::string> SavedA = SeenArrayDecls;
      for (const PRef &C : P.children())
        checkStmt(*C);
      SeenScalarDecls = std::move(SavedS);
      SeenArrayDecls = std::move(SavedA);
      return;
    }
    case PKind::Branch: {
      if (P.cond()->type() != ImpType::Bool) {
        fail("branch condition is not boolean");
        return;
      }
      checkExpr(*P.cond());
      // Each arm sees only declarations dominating the branch; after it,
      // only declarations made on BOTH paths dominate the continuation.
      std::set<std::string> SavedS = SeenScalarDecls;
      std::set<std::string> SavedA = SeenArrayDecls;
      checkStmt(*P.children()[0]);
      std::set<std::string> ThenS = std::move(SeenScalarDecls);
      std::set<std::string> ThenA = std::move(SeenArrayDecls);
      SeenScalarDecls = std::move(SavedS);
      SeenArrayDecls = std::move(SavedA);
      checkStmt(*P.children()[1]);
      SeenScalarDecls = intersect(ThenS, SeenScalarDecls);
      SeenArrayDecls = intersect(ThenA, SeenArrayDecls);
      return;
    }
    case PKind::Noop:
    case PKind::Comment:
      return;
    case PKind::StoreVar:
      checkExpr(*P.valueExpr());
      noteScalar(P.name(), P.valueExpr()->type());
      checkDeclOrder(P.name(), /*IsArray=*/false, "store");
      return;
    case PKind::StoreArr:
      if (P.indexExpr()->type() != ImpType::I64) {
        fail("array store to '" + P.name() + "' without an i64 index");
        return;
      }
      checkExpr(*P.indexExpr());
      checkExpr(*P.valueExpr());
      noteArray(P.name(), P.valueExpr()->type());
      checkDeclOrder(P.name(), /*IsArray=*/true, "store");
      return;
    case PKind::DeclVar:
      checkExpr(*P.valueExpr());
      if (P.valueExpr()->type() != P.type()) {
        fail("declaration of '" + P.name() + "' (" +
             impTypeName(P.type()) + ") with a " +
             impTypeName(P.valueExpr()->type()) + " initialiser");
        return;
      }
      noteScalar(P.name(), P.type());
      SeenScalarDecls.insert(P.name());
      return;
    case PKind::DeclArr:
      if (P.valueExpr()->type() != ImpType::I64) {
        fail("declaration of array '" + P.name() + "' with a non-i64 size");
        return;
      }
      checkExpr(*P.valueExpr());
      noteArray(P.name(), P.type());
      SeenArrayDecls.insert(P.name());
      return;
    }
    ETCH_UNREACHABLE("unknown PKind");
  }

  std::set<std::string> DeclaredScalars, DeclaredArrays;
  std::set<std::string> SeenScalarDecls, SeenArrayDecls;
  std::map<std::string, ImpType> ScalarTypes, ArrayTypes;
  std::string Error;
};

} // namespace

std::optional<std::string> etch::verifyProgram(const PRef &Program) {
  ETCH_ASSERT(Program, "null program");
  return Verifier(Program).run(Program);
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

namespace {

const ImpValue *constOf(const ERef &E) {
  return E->kind() == EKind::Const ? &E->constant() : nullptr;
}

bool isConstI(const ERef &E, int64_t V) {
  const ImpValue *C = constOf(E);
  if (!C)
    return false;
  const auto *I = std::get_if<int64_t>(C);
  return I && *I == V;
}

bool isConstF(const ERef &E, double V) {
  const ImpValue *C = constOf(E);
  if (!C)
    return false;
  const auto *D = std::get_if<double>(C);
  return D && *D == V;
}

ERef foldCall(const ERef &E) {
  if (E->kind() != EKind::Call)
    return nullptr;
  const OpDef *Op = E->op();
  const auto &Args = E->args();
  switch (Op->Lazy) {
  case OpDef::Laziness::AndAlso:
    if (const ImpValue *C = constOf(Args[0]))
      return std::get<bool>(*C) ? Args[1] : eBool(false);
    return nullptr;
  case OpDef::Laziness::OrElse:
    if (const ImpValue *C = constOf(Args[0]))
      return std::get<bool>(*C) ? eBool(true) : Args[1];
    return nullptr;
  case OpDef::Laziness::Select:
    if (const ImpValue *C = constOf(Args[0]))
      return Args[std::get<bool>(*C) ? 1 : 2];
    return nullptr;
  case OpDef::Laziness::Eager: {
    std::vector<ImpValue> Vals;
    Vals.reserve(Args.size());
    for (const ERef &A : Args) {
      const ImpValue *C = constOf(A);
      if (!C)
        return nullptr;
      Vals.push_back(*C);
    }
    if (Op->FoldSafe && !Op->FoldSafe(Vals))
      return nullptr;
    ImpValue R = Op->Spec(Vals);
    ETCH_ASSERT(impTypeOf(R) == Op->Result,
                "op spec produced a value of the wrong type");
    return EExpr::constant(R);
  }
  }
  ETCH_UNREACHABLE("unknown laziness");
}

} // namespace

PRef etch::foldConstantsPass(const PRef &P) {
  return rewriteProgram(P, nullptr, foldCall);
}

//===----------------------------------------------------------------------===//
// Algebraic simplification
//===----------------------------------------------------------------------===//

namespace {

/// One round of identity/annihilator rules at a single node; null = no rule
/// applied.
ERef simplifyOnce(const ERef &E) {
  if (E->kind() != EKind::Call)
    return nullptr;
  const OpDef *Op = E->op();
  const auto &A = E->args();

  // x + 0 / 0 + x (i64 and f64; +0.0 is an identity up to the sign of
  // zero, which compares equal).
  if (Op == Ops::addI()) {
    if (isConstI(A[0], 0))
      return A[1];
    if (isConstI(A[1], 0))
      return A[0];
  }
  if (Op == Ops::addF()) {
    if (isConstF(A[0], 0.0))
      return A[1];
    if (isConstF(A[1], 0.0))
      return A[0];
  }
  if (Op == Ops::subI() && isConstI(A[1], 0))
    return A[0];

  // x * 1, x * 0 (annihilation only at i64 — 0.0 * x is not an f64
  // identity in the presence of NaN/Inf).
  if (Op == Ops::mulI()) {
    if (isConstI(A[0], 1))
      return A[1];
    if (isConstI(A[1], 1))
      return A[0];
    if (isConstI(A[0], 0) || isConstI(A[1], 0))
      return eConstI(0);
  }
  if (Op == Ops::mulF()) {
    if (isConstF(A[0], 1.0))
      return A[1];
    if (isConstF(A[1], 1.0))
      return A[0];
  }

  // Lazy booleans with a constant second argument (constant first
  // arguments fold in foldConstantsPass). Dropping the pure left operand
  // only makes the program more defined.
  if (Op == Ops::andB()) {
    if (const ImpValue *C = constOf(A[1]))
      return std::get<bool>(*C) ? A[0] : eBool(false);
    if (exprEquals(A[0], A[1]))
      return A[0];
  }
  if (Op == Ops::orB()) {
    if (const ImpValue *C = constOf(A[1]))
      return std::get<bool>(*C) ? eBool(true) : A[0];
    if (exprEquals(A[0], A[1]))
      return A[0];
  }
  if (Op == Ops::notB()) {
    if (const ImpValue *C = constOf(A[0]))
      return eBool(!std::get<bool>(*C));
    if (A[0]->kind() == EKind::Call && A[0]->op() == Ops::notB())
      return A[0]->args()[0];
  }

  // select(c, x, x) = x.
  if (Op->Lazy == OpDef::Laziness::Select && exprEquals(A[1], A[2]))
    return A[1];

  // Reflexive comparisons and idempotent min/max.
  if (A.size() == 2 && exprEquals(A[0], A[1])) {
    if (Op == Ops::eqI() || Op == Ops::leI())
      return eBool(true);
    if (Op == Ops::neI() || Op == Ops::ltI())
      return eBool(false);
    if (Op == Ops::minI() || Op == Ops::maxI() || Op == Ops::minF())
      return A[0];
  }

  // max(x, x + c) = x + c and min(x, x + c) = x for small constant c >= 0:
  // the shape the dense-level skip takes after forward substitution (c is 0
  // or 1 there). The rewrite assumes x + c does not wrap; i64 overflow is
  // undefined in the IR (see the addI Spec in ops.cpp), but we still cap c
  // so near-extreme constants from hand-built or randomized programs keep
  // their unsimplified, VM-evaluated form.
  auto PlusConst = [](const ERef &X, const ERef &Sum) -> const ImpValue * {
    if (Sum->kind() != EKind::Call || Sum->op() != Ops::addI())
      return nullptr;
    if (!exprEquals(Sum->args()[0], X))
      return nullptr;
    return constOf(Sum->args()[1]);
  };
  if (Op == Ops::maxI() || Op == Ops::minI()) {
    for (int Flip = 0; Flip < 2; ++Flip) {
      const ERef &X = A[static_cast<size_t>(Flip)];
      const ERef &S = A[static_cast<size_t>(1 - Flip)];
      if (const ImpValue *C = PlusConst(X, S)) {
        int64_t CV = std::get<int64_t>(*C);
        if (CV >= 0 && CV <= 4096)
          return Op == Ops::maxI() ? S : X;
      }
    }
  }

  // min/max against the i64 extremes (the exhausted-side sentinel of
  // stream addition).
  if (Op == Ops::minI()) {
    if (isConstI(A[1], std::numeric_limits<int64_t>::max()))
      return A[0];
    if (isConstI(A[0], std::numeric_limits<int64_t>::max()))
      return A[1];
  }
  if (Op == Ops::maxI()) {
    if (isConstI(A[1], std::numeric_limits<int64_t>::max()) ||
        isConstI(A[0], std::numeric_limits<int64_t>::max()))
      return eI64Max();
  }
  return nullptr;
}

} // namespace

PRef etch::simplifyAlgebraPass(const PRef &P) {
  return rewriteProgram(P, nullptr, [](const ERef &E) -> ERef {
    ERef Cur = E;
    for (int Round = 0; Round < 4; ++Round) {
      ERef N = simplifyOnce(Cur);
      if (!N)
        break;
      Cur = std::move(N);
    }
    return Cur == E ? nullptr : Cur;
  });
}

//===----------------------------------------------------------------------===//
// Control-flow cleanup
//===----------------------------------------------------------------------===//

PRef etch::cleanControlFlowPass(const PRef &P) {
  return rewriteProgram(P, [](const PRef &S) -> PRef {
    switch (S->kind()) {
    case PKind::While:
      if (S->cond()->kind() == EKind::Const &&
          !std::get<bool>(S->cond()->constant()))
        return PStmt::noop();
      return nullptr;
    case PKind::Branch: {
      if (S->cond()->kind() == EKind::Const)
        return S->children()[std::get<bool>(S->cond()->constant()) ? 0 : 1];
      if (S->children()[0]->kind() == PKind::Noop &&
          S->children()[1]->kind() == PKind::Noop)
        return PStmt::noop(); // The condition is pure; nothing happens.
      return nullptr;
    }
    case PKind::StoreVar:
      // x = x.
      if (S->valueExpr()->kind() == EKind::Var &&
          S->valueExpr()->name() == S->name())
        return PStmt::noop();
      return nullptr;
    default:
      return nullptr;
    }
  });
}

//===----------------------------------------------------------------------===//
// Dead-store elimination
//===----------------------------------------------------------------------===//

PRef etch::eliminateDeadStoresPass(const PRef &P,
                                   const PipelineOptions &Opts) {
  PRef Cur = P;
  for (int Round = 0; Round < 16; ++Round) {
    std::set<std::string> DeclScalars, DeclArrays;
    forEachStmtNode(Cur, [&](const PStmt &S) {
      if (S.kind() == PKind::DeclVar)
        DeclScalars.insert(S.name());
      else if (S.kind() == PKind::DeclArr)
        DeclArrays.insert(S.name());
    });
    ReadSet Reads;
    forEachProgramExpr(Cur, [&](const ERef &E) { collectExprReads(E, Reads); });

    auto DeadScalar = [&](const std::string &N) {
      return DeclScalars.count(N) && !Reads.Scalars.count(N) &&
             !Opts.LiveOut.count(N);
    };
    auto DeadArray = [&](const std::string &N) {
      return DeclArrays.count(N) && !Reads.Arrays.count(N) &&
             !Opts.LiveOut.count(N);
    };

    PRef Next = rewriteProgram(Cur, [&](const PRef &S) -> PRef {
      switch (S->kind()) {
      case PKind::DeclVar:
      case PKind::StoreVar:
        return DeadScalar(S->name()) ? PStmt::noop() : nullptr;
      case PKind::DeclArr:
      case PKind::StoreArr:
        return DeadArray(S->name()) ? PStmt::noop() : nullptr;
      default:
        return nullptr;
      }
    });
    if (Next == Cur)
      break;
    Cur = std::move(Next);
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Forward substitution of single-use temporaries
//===----------------------------------------------------------------------===//

namespace {

size_t countVarReads(const ERef &E, const std::string &Name) {
  size_t N = 0;
  forEachExprNode(E, [&](const EExpr &X) {
    if (X.kind() == EKind::Var && X.name() == Name)
      ++N;
  });
  return N;
}

size_t countStmtVarReads(const PRef &S, const std::string &Name) {
  size_t N = 0;
  if (S->cond())
    N += countVarReads(S->cond(), Name);
  if (S->indexExpr())
    N += countVarReads(S->indexExpr(), Name);
  if (S->valueExpr())
    N += countVarReads(S->valueExpr(), Name);
  return N;
}

PRef forwardSubstituteOnce(const PRef &P, const PipelineOptions &Opts,
                           bool &Changed) {
  // Global usage counts: a temporary is substitutable only when its single
  // read in the whole program sits in the store immediately following its
  // declaration.
  std::map<std::string, size_t> ReadCount, StoreCount, DeclCount;
  forEachProgramExpr(P, [&](const ERef &E) {
    forEachExprNode(E, [&](const EExpr &X) {
      if (X.kind() == EKind::Var)
        ++ReadCount[X.name()];
    });
  });
  forEachStmtNode(P, [&](const PStmt &S) {
    if (S.kind() == PKind::StoreVar)
      ++StoreCount[S.name()];
    else if (S.kind() == PKind::DeclVar)
      ++DeclCount[S.name()];
  });

  return rewriteProgram(P, [&](const PRef &S) -> PRef {
    if (S->kind() != PKind::Seq)
      return nullptr;
    std::vector<PRef> NewCh;
    NewCh.reserve(S->children().size());
    bool Local = false;
    const auto &Ch = S->children();
    for (size_t I = 0; I < Ch.size(); ++I) {
      const PRef &D = Ch[I];
      if (D->kind() == PKind::DeclVar && I + 1 < Ch.size()) {
        const std::string &T = D->name();
        const PRef &Next = Ch[I + 1];
        bool NextIsStore = Next->kind() == PKind::StoreVar ||
                           Next->kind() == PKind::StoreArr ||
                           Next->kind() == PKind::DeclVar;
        if (NextIsStore && Next->name() != T && !Opts.LiveOut.count(T) &&
            DeclCount[T] == 1 && StoreCount[T] == 0 && ReadCount[T] == 1 &&
            countStmtVarReads(Next, T) == 1 &&
            countVarReads(D->valueExpr(), T) == 0) {
          // The consuming statement evaluates its expressions entirely in
          // the declaration's state (they are adjacent and evaluation
          // precedes the single write), so inlining preserves the value.
          const ERef &Repl = D->valueExpr();
          auto Sub = [&](const ERef &E) { return substituteVar(E, T, Repl); };
          PRef NewNext;
          switch (Next->kind()) {
          case PKind::StoreVar:
            NewNext = PStmt::storeVar(Next->name(), Sub(Next->valueExpr()));
            break;
          case PKind::StoreArr:
            NewNext = PStmt::storeArr(Next->name(), Sub(Next->indexExpr()),
                                      Sub(Next->valueExpr()));
            break;
          case PKind::DeclVar:
            NewNext = PStmt::declVar(Next->name(), Next->type(),
                                     Sub(Next->valueExpr()));
            break;
          default:
            ETCH_UNREACHABLE("unexpected consumer kind");
          }
          NewCh.push_back(std::move(NewNext));
          ++I; // Skip the consumed store; the declaration is dropped.
          Local = Changed = true;
          continue;
        }
      }
      NewCh.push_back(D);
    }
    return Local ? PStmt::seq(std::move(NewCh)) : nullptr;
  });
}

} // namespace

PRef etch::forwardSubstitutePass(const PRef &P, const PipelineOptions &Opts) {
  PRef Cur = P;
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Cur = forwardSubstituteOnce(Cur, Opts, Changed);
    if (!Changed)
      break;
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Implied-condition elimination
//===----------------------------------------------------------------------===//

namespace {

struct Fact {
  ERef E;
  ReadSet Reads;
};

void invalidateFacts(std::vector<Fact> &Facts, const WriteSet &WS) {
  Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                             [&](const Fact &F) {
                               return !exprInvariantUnder(F.E, WS);
                             }),
              Facts.end());
}

void addConjunctFacts(std::vector<Fact> &Facts, const ERef &Cond) {
  std::vector<ERef> Conj;
  flattenConjuncts(Cond, Conj);
  for (const ERef &C : Conj) {
    Fact F{C, {}};
    collectExprReads(C, F.Reads);
    Facts.push_back(std::move(F));
  }
}

/// Removes conjuncts of \p Cond that structurally match a fact. A dropped
/// conjunct is implied true, so later conjuncts are evaluated exactly when
/// they were before (no guarded evaluation is exposed).
ERef dropImplied(const ERef &Cond, const std::vector<Fact> &Facts,
                 const WriteSet *MustAlsoSurvive) {
  std::vector<ERef> Conj;
  flattenConjuncts(Cond, Conj);
  std::vector<ERef> Kept;
  bool Dropped = false;
  for (const ERef &C : Conj) {
    bool Implied = false;
    for (const Fact &F : Facts) {
      if (!exprEquals(F.E, C))
        continue;
      // For loop conditions the fact must stay true across iterations.
      if (MustAlsoSurvive && !exprInvariantUnder(C, *MustAlsoSurvive))
        continue;
      Implied = true;
      break;
    }
    if (Implied)
      Dropped = true;
    else
      Kept.push_back(C);
  }
  if (!Dropped)
    return Cond;
  return buildConjunction(Kept);
}

PRef impliedCondRec(const PRef &P, std::vector<Fact> Facts) {
  switch (P->kind()) {
  case PKind::Seq: {
    std::vector<PRef> NewCh;
    NewCh.reserve(P->children().size());
    bool Changed = false;
    for (const PRef &C : P->children()) {
      PRef NC = impliedCondRec(C, Facts);
      Changed |= NC != C;
      WriteSet WS;
      collectStmtWrites(NC, WS);
      invalidateFacts(Facts, WS);
      NewCh.push_back(std::move(NC));
    }
    return Changed ? PStmt::seq(std::move(NewCh)) : P;
  }
  case PKind::While: {
    const PRef &Body = P->children()[0];
    WriteSet BodyW;
    collectStmtWrites(Body, BodyW);
    // A fact may simplify the loop condition only if the body cannot
    // invalidate it (the condition is re-evaluated every iteration).
    ERef NewCond = dropImplied(P->cond(), Facts, &BodyW);
    // Inside the body: surviving outer facts plus the (original) loop
    // condition, freshly established at each iteration's entry.
    std::vector<Fact> BodyFacts;
    for (const Fact &F : Facts)
      if (exprInvariantUnder(F.E, BodyW))
        BodyFacts.push_back(F);
    addConjunctFacts(BodyFacts, P->cond());
    PRef NewBody = impliedCondRec(Body, std::move(BodyFacts));
    if (NewCond == P->cond() && NewBody == Body)
      return P;
    return PStmt::whileLoop(std::move(NewCond), std::move(NewBody));
  }
  case PKind::Branch: {
    ERef NewCond = dropImplied(P->cond(), Facts, nullptr);
    std::vector<Fact> ThenFacts = Facts;
    addConjunctFacts(ThenFacts, P->cond());
    PRef NT = impliedCondRec(P->children()[0], std::move(ThenFacts));
    PRef NE = impliedCondRec(P->children()[1], std::move(Facts));
    if (NewCond == P->cond() && NT == P->children()[0] &&
        NE == P->children()[1])
      return P;
    return PStmt::branch(std::move(NewCond), std::move(NT), std::move(NE));
  }
  default:
    return P;
  }
}

} // namespace

PRef etch::eliminateImpliedConditionsPass(const PRef &P) {
  return impliedCondRec(P, {});
}

//===----------------------------------------------------------------------===//
// Loop-invariant hoisting
//===----------------------------------------------------------------------===//

namespace {

/// Built-in eager operations whose Spec is total (never traps) on any
/// well-typed arguments. Division and modulo trap on zero; lazy ops exist
/// to guard evaluation and are never hoisted.
bool isTotalOp(const OpDef *Op) {
  static const std::unordered_set<const OpDef *> Total = {
      Ops::addI(), Ops::subI(), Ops::mulI(), Ops::minI(), Ops::maxI(),
      Ops::ltI(),  Ops::leI(),  Ops::eqI(),  Ops::neI(),  Ops::addF(),
      Ops::subF(), Ops::mulF(), Ops::divF(), Ops::minF(), Ops::ltF(),
      Ops::notB(), Ops::boolToI(), Ops::i64ToF()};
  return Total.count(Op) != 0;
}

bool containsVarOrAccess(const ERef &E) {
  bool Found = false;
  forEachExprNode(E, [&](const EExpr &N) {
    if (N.kind() == EKind::Var || N.kind() == EKind::Access)
      Found = true;
  });
  return Found;
}

/// True when evaluating \p E cannot fail: no array accesses, only total
/// eager ops, and every variable read is defined before the loop (or
/// external input state).
bool isTotalExpr(const ERef &E, const std::set<std::string> &DefinedBefore,
                 const std::set<std::string> &DeclaredAnywhere) {
  switch (E->kind()) {
  case EKind::Const:
    return true;
  case EKind::Var:
    return DefinedBefore.count(E->name()) ||
           !DeclaredAnywhere.count(E->name());
  case EKind::Access:
    return false;
  case EKind::Call:
    if (E->op()->Lazy != OpDef::Laziness::Eager || !isTotalOp(E->op()))
      return false;
    for (const ERef &A : E->args())
      if (!isTotalExpr(A, DefinedBefore, DeclaredAnywhere))
        return false;
    return true;
  }
  ETCH_UNREACHABLE("unknown EKind");
}

/// Collects maximal hoistable subtrees of \p E into \p Out (deduplicated
/// structurally). \p FromCond permits array accesses and any op, but only
/// on the unconditionally-evaluated spine of the loop condition: that
/// spine is evaluated at least once, immediately after the hoist point, so
/// the hoisted evaluation replaces the first in-loop one exactly. The
/// lazily-guarded positions of a condition (the second argument of
/// andB/orB, either arm of select) may never run — `A[j] == v` in
/// `while (i < n && A[j] == v)` must not be evaluated when `i >= n`
/// initially — so recursion into them drops FromCond and falls back to the
/// cannot-fail isTotalExpr rule.
void collectCandidates(const ERef &E, const WriteSet &BodyW, bool FromCond,
                       const std::set<std::string> &DefinedBefore,
                       const std::set<std::string> &DeclaredAnywhere,
                       std::vector<ERef> &Out) {
  bool Hoistable = (E->kind() == EKind::Call || E->kind() == EKind::Access) &&
                   containsVarOrAccess(E) && exprInvariantUnder(E, BodyW) &&
                   (FromCond || isTotalExpr(E, DefinedBefore, DeclaredAnywhere));
  if (Hoistable) {
    for (const ERef &Seen : Out)
      if (exprEquals(Seen, E))
        return;
    Out.push_back(E);
    return;
  }
  bool IsLazy = E->kind() == EKind::Call &&
                E->op()->Lazy != OpDef::Laziness::Eager;
  const auto &Args = E->args();
  for (size_t I = 0; I < Args.size(); ++I) {
    bool ArgFromCond = FromCond && !(IsLazy && I > 0);
    collectCandidates(Args[I], BodyW, ArgFromCond, DefinedBefore,
                      DeclaredAnywhere, Out);
  }
}

/// State threaded through one hoisting run: every name the program
/// mentions anywhere (declarations, stores, reads, array accesses —
/// including caller-bound externals, which a fresh declaration must never
/// shadow), plus a per-run counter so emitted names are deterministic
/// across compilations.
struct HoistNames {
  std::set<std::string> Used;
  int Counter = 0;

  std::string fresh() {
    std::string Name;
    do {
      Name = "liv" + std::to_string(Counter++);
    } while (Used.count(Name));
    Used.insert(Name);
    return Name;
  }
};

PRef hoistRec(const PRef &P, std::set<std::string> &Defined,
              const std::set<std::string> &DeclaredAnywhere,
              HoistNames &Names) {
  switch (P->kind()) {
  case PKind::Seq: {
    std::vector<PRef> NewCh;
    NewCh.reserve(P->children().size());
    bool Changed = false;
    for (const PRef &C : P->children()) {
      PRef NC = hoistRec(C, Defined, DeclaredAnywhere, Names);
      Changed |= NC != C;
      // Only unconditional definitions extend the defined set.
      if (C->kind() == PKind::DeclVar || C->kind() == PKind::StoreVar)
        Defined.insert(C->name());
      NewCh.push_back(std::move(NC));
    }
    return Changed ? PStmt::seq(std::move(NewCh)) : P;
  }
  case PKind::Branch: {
    // Definitions inside an arm are conditional: recurse with copies.
    std::set<std::string> DT = Defined, DE = Defined;
    PRef NT = hoistRec(P->children()[0], DT, DeclaredAnywhere, Names);
    PRef NE = hoistRec(P->children()[1], DE, DeclaredAnywhere, Names);
    if (NT == P->children()[0] && NE == P->children()[1])
      return P;
    return PStmt::branch(P->cond(), std::move(NT), std::move(NE));
  }
  case PKind::While: {
    std::set<std::string> DB = Defined;
    PRef Body = hoistRec(P->children()[0], DB, DeclaredAnywhere, Names);
    WriteSet BodyW;
    collectStmtWrites(Body, BodyW);

    std::vector<ERef> Cands;
    collectCandidates(P->cond(), BodyW, /*FromCond=*/true, Defined,
                      DeclaredAnywhere, Cands);
    forEachProgramExpr(Body, [&](const ERef &E) {
      collectCandidates(E, BodyW, /*FromCond=*/false, Defined,
                        DeclaredAnywhere, Cands);
    });
    if (Cands.empty())
      return Body == P->children()[0] ? P
                                      : PStmt::whileLoop(P->cond(), Body);

    std::vector<PRef> Out;
    ERef Cond = P->cond();
    for (const ERef &Cand : Cands) {
      std::string Name = Names.fresh();
      Out.push_back(PStmt::declVar(Name, Cand->type(), Cand));
      ERef Temp = EExpr::var(Name, Cand->type());
      auto ReplaceNode = [&](const ERef &N) -> ERef {
        return exprEquals(N, Cand) ? Temp : nullptr;
      };
      // The body may reuse condition subexpressions (and vice versa), so
      // replace everywhere.
      Cond = rewriteExpr(Cond, ReplaceNode);
      Body = rewriteProgram(Body, nullptr, ReplaceNode);
    }
    Out.push_back(PStmt::whileLoop(std::move(Cond), std::move(Body)));
    return PStmt::seq(std::move(Out));
  }
  default:
    return P;
  }
}

} // namespace

PRef etch::hoistLoopInvariantsPass(const PRef &P) {
  std::set<std::string> DeclaredAnywhere;
  HoistNames Names;
  forEachStmtNode(P, [&](const PStmt &S) {
    if (S.kind() == PKind::DeclVar || S.kind() == PKind::DeclArr)
      DeclaredAnywhere.insert(S.name());
    if (S.kind() == PKind::DeclVar || S.kind() == PKind::DeclArr ||
        S.kind() == PKind::StoreVar || S.kind() == PKind::StoreArr)
      Names.Used.insert(S.name());
  });
  forEachProgramExpr(P, [&](const ERef &E) {
    forEachExprNode(E, [&](const EExpr &N) {
      if (N.kind() == EKind::Var || N.kind() == EKind::Access)
        Names.Used.insert(N.name());
    });
  });
  std::set<std::string> Defined;
  return hoistRec(P, Defined, DeclaredAnywhere, Names);
}

//===----------------------------------------------------------------------===//
// Pass manager
//===----------------------------------------------------------------------===//

std::string PipelineResult::toString() const {
  std::string Out = "pass                      stmts          exprs\n";
  char Buf[128];
  for (const PassStats &S : Stats) {
    std::snprintf(Buf, sizeof(Buf), "%-22s %5zu -> %-5zu %5zu -> %-5zu\n",
                  S.Name.c_str(), S.StmtsBefore, S.StmtsAfter, S.ExprsBefore,
                  S.ExprsAfter);
    Out += Buf;
  }
  if (!Stats.empty()) {
    std::snprintf(Buf, sizeof(Buf), "%-22s %5zu -> %-5zu %5zu -> %-5zu\n",
                  "total", Stats.front().StmtsBefore, Stats.back().StmtsAfter,
                  Stats.front().ExprsBefore, Stats.back().ExprsAfter);
    Out += Buf;
  }
  return Out;
}

PassManager PassManager::standard(int OptLevel) {
  PassManager PM;
  if (OptLevel <= 0)
    return PM;
  auto Simple = [](PRef (*Fn)(const PRef &)) {
    return [Fn](const PRef &P, const PipelineOptions &) { return Fn(P); };
  };
  PM.addPass("fold-constants", Simple(foldConstantsPass));
  PM.addPass("simplify-algebra", Simple(simplifyAlgebraPass));
  PM.addPass("clean-cfg", Simple(cleanControlFlowPass));
  PM.addPass("forward-subst", forwardSubstitutePass);
  // Substitution exposes max(i, i + 1)-style patterns and fresh constant
  // operands; run the expression passes once more.
  PM.addPass("simplify-algebra#2", Simple(simplifyAlgebraPass));
  PM.addPass("fold-constants#2", Simple(foldConstantsPass));
  PM.addPass("dse", eliminateDeadStoresPass);
  PM.addPass("clean-cfg#2", Simple(cleanControlFlowPass));
  if (OptLevel >= 2) {
    PM.addPass("implied-cond", Simple(eliminateImpliedConditionsPass));
    PM.addPass("simplify-algebra#3", Simple(simplifyAlgebraPass));
    PM.addPass("clean-cfg#3", Simple(cleanControlFlowPass));
    PM.addPass("licm", Simple(hoistLoopInvariantsPass));
  }
  return PM;
}

PipelineResult PassManager::run(const PRef &Program,
                                const PipelineOptions &Opts) const {
  ETCH_ASSERT(Program, "null program");
  PipelineResult R;
  R.Program = Program;

  auto Check = [&](const std::string &Where) {
    if (!Opts.Verify)
      return;
    if (auto Err = verifyProgram(R.Program)) {
      std::string Msg = "IR verifier failed " + Where + ": " + *Err;
      etch::fatalError(__FILE__, __LINE__, Msg.c_str());
    }
  };

  Check("on pipeline input");
  for (const Pass &P : Passes) {
    PassStats S;
    S.Name = P.Name;
    S.StmtsBefore = countStmtNodes(R.Program);
    S.ExprsBefore = countExprNodes(R.Program);
    R.Program = P.Fn(R.Program, Opts);
    ETCH_ASSERT(R.Program, "pass returned a null program");
    S.StmtsAfter = countStmtNodes(R.Program);
    S.ExprsAfter = countExprNodes(R.Program);
    R.Stats.push_back(std::move(S));
    Check("after pass '" + P.Name + "'");
  }
  return R;
}

PipelineResult etch::optimizeProgram(const PRef &Program,
                                     const PipelineOptions &Opts) {
  return PassManager::standard(Opts.OptLevel).run(Program, Opts);
}

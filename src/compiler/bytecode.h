//===- compiler/bytecode.h - Register-allocated bytecode for P -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast execution backend for compiled `P` programs. The tree-walking VM
/// in compiler/vm.h is the reference semantics, but it pays a string-keyed
/// hash lookup per variable access, a shared_ptr AST walk per node, and a
/// std::variant tag dispatch per operation. This backend compiles `P`/`E`
/// once into a flat bytecode and executes it with a tight dispatch loop:
///
///   - every scalar and array name is interned to a dense slot id at
///     compile time — no string hashing at runtime;
///   - scalars live in *typed register files* (`i64`/`f64`/`bool` vectors;
///     the static `ImpType` of every expression is known at compile time),
///     so values are raw machine words instead of std::variant;
///   - constants are interned into read-only registers materialized once
///     at frame setup, outside the instruction stream;
///   - structured control flow (while/branch and the lazy select / && / ||
///     operators) is flattened to conditional jumps;
///   - dispatch uses computed goto where the compiler supports it (GCC /
///     Clang) and a switch loop otherwise.
///
/// The backend preserves the tree VM's *observable semantics exactly*:
/// identical step counts (one per statement execution and per
/// while-iteration check, batched only across statements that execute no
/// instructions in between), identical error text for out-of-bounds
/// accesses, undefined names, negative array sizes and step-budget
/// exhaustion, and bit-identical outputs (same operations in the same
/// order). On success, `bytecodeRun` writes every scalar and array the
/// program defined back into the VmMemory, so callers observe the same
/// final memory as `vmRun`; after an error only VmRunResult::Error and
/// ::Steps are meaningful (the tree VM leaves partially-updated memory
/// behind, this backend leaves the memory untouched).
///
/// The differential-fuzz matrix (fuzz/exec.h) runs every case through both
/// VMs and checks steps/error/output agreement, and bench/bench_vm.cpp
/// measures the wall-clock gap.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_BYTECODE_H
#define ETCH_COMPILER_BYTECODE_H

#include "compiler/vm.h"

#include <cstdint>
#include <string>
#include <vector>

namespace etch {

/// Opcodes, kept in one X-macro list so the enum, the mnemonic table, and
/// the computed-goto dispatch table cannot drift apart.
///
/// Operand conventions (fields A/B/C of BcInstr; `r` = register index in
/// the type's file, `s` = scalar-table index, `a` = array-table index,
/// `pc` = instruction index):
///
///   AddSteps n            consume n steps; budget error when exhausted
///   Jump pc
///   JumpIfTrue rB, pc     / JumpIfFalse rB, pc
///   Halt
///   MovI/MovF/MovB        A=dst, B=src
///   CheckDef s            error unless scalar s is defined
///   SetDef s              mark scalar s defined
///   CheckArr a, mode      error unless array a is defined (mode 0 =
///                         "access", 1 = "store" message)
///   AddI..NeI, AddF..LtF, NotB, BoolToI, I64ToF
///                         A=dst, B/C=operands (typed per opcode)
///   CallOp k              invoke call-table entry k (custom/eager OpDefs
///                         through OpDef::Spec)
///   LoadI/LoadF/LoadB     A=dst, B=array (per-type file), C=index reg
///   StoreI/StoreF/StoreB  A=array (per-type file), B=index reg, C=value
///   AllocI/AllocF/AllocB  A=array (per-type file), B=size reg, C=table id
#define ETCH_BC_OPS(X)                                                        \
  X(AddSteps)                                                                 \
  X(Jump)                                                                     \
  X(JumpIfTrue)                                                               \
  X(JumpIfFalse)                                                              \
  X(Halt)                                                                     \
  X(MovI)                                                                     \
  X(MovF)                                                                     \
  X(MovB)                                                                     \
  X(CheckDef)                                                                 \
  X(SetDef)                                                                   \
  X(CheckArr)                                                                 \
  X(AddI)                                                                     \
  X(SubI)                                                                     \
  X(MulI)                                                                     \
  X(DivI)                                                                     \
  X(ModI)                                                                     \
  X(MinI)                                                                     \
  X(MaxI)                                                                     \
  X(LtI)                                                                      \
  X(LeI)                                                                      \
  X(EqI)                                                                      \
  X(NeI)                                                                      \
  X(AddF)                                                                     \
  X(SubF)                                                                     \
  X(MulF)                                                                     \
  X(DivF)                                                                     \
  X(MinF)                                                                     \
  X(LtF)                                                                      \
  X(NotB)                                                                     \
  X(BoolToI)                                                                  \
  X(I64ToF)                                                                   \
  X(CallOp)                                                                   \
  X(LoadI)                                                                    \
  X(LoadF)                                                                    \
  X(LoadB)                                                                    \
  X(StoreI)                                                                   \
  X(StoreF)                                                                   \
  X(StoreB)                                                                   \
  X(AllocI)                                                                   \
  X(AllocF)                                                                   \
  X(AllocB)

enum class BcOp : uint8_t {
#define ETCH_BC_ENUM(Name) Name,
  ETCH_BC_OPS(ETCH_BC_ENUM)
#undef ETCH_BC_ENUM
};

/// Returns the mnemonic for \p Op (e.g. "add.i64").
const char *bcOpName(BcOp Op);

/// One fixed-width instruction. Field meaning depends on the opcode (see
/// the table above BcOp).
struct BcInstr {
  BcOp Op;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
};

/// A scalar name interned to a typed register slot.
struct BcScalar {
  std::string Name;
  ImpType Ty;
  int32_t Reg;       ///< Slot in the type's register file.
  bool WrittenBack;  ///< Stored by the program; written back when defined.
};

/// An array name interned to a typed array slot.
struct BcArray {
  std::string Name;
  ImpType Elem;
  int32_t Slot;      ///< Slot in the element type's array file.
  bool WrittenBack;  ///< Declared or stored-to; written back when defined.
};

/// A call-table entry for ops without a dedicated opcode (user-defined
/// operations, Figure 12): the OpDef and the typed argument registers.
struct BcCall {
  const OpDef *Op;
  int32_t Dst;                                    ///< Result register.
  std::vector<std::pair<ImpType, int32_t>> Args;  ///< (type, register).
};

/// A compiled program: flat code plus the interned name tables and the
/// initial (constant-seeded) register images.
struct BytecodeProgram {
  /// Set when compilation failed (a program outside the statically-typed
  /// fragment, e.g. one name used at two types — the verifier rules these
  /// out for compiler output). bytecodeRun reports it as the run error.
  std::string CompileError;

  std::vector<BcInstr> Code;
  std::vector<BcScalar> Scalars;
  std::vector<BcArray> Arrays;
  std::vector<BcCall> Calls;

  /// Initial register-file images. Named slots come first, then interned
  /// constants (pre-materialized here, not via instructions), then
  /// expression temporaries (zeroed).
  std::vector<int64_t> InitI;
  std::vector<double> InitF;
  std::vector<uint8_t> InitB;

  /// Sizes of the typed array files.
  size_t NumArrI = 0, NumArrF = 0, NumArrB = 0;

  /// Debug names per register slot (named scalars keep their source name,
  /// interned constants render as "#value", temporaries as "tN"). Only the
  /// disassembler reads these.
  std::vector<std::string> RegNamesI, RegNamesF, RegNamesB;

  bool ok() const { return CompileError.empty(); }

  /// Renders the code as one instruction per line ("pc: mnemonic
  /// operands"), with named registers shown symbolically — the golden
  /// disassembly tests pin this format.
  std::string disassemble() const;
};

/// Compiles \p Program to bytecode. Never fails on compiler-produced
/// programs; hand-built ill-typed programs yield a BytecodeProgram whose
/// CompileError is set.
BytecodeProgram compileBytecode(const PRef &Program);

/// Executes \p BC against \p Memory under the same contract as vmRun:
/// inputs are read from \p Memory at entry, and on success every scalar
/// and array the program defined is written back. Steps and errors match
/// the tree VM exactly (see the file comment).
VmRunResult bytecodeRun(const BytecodeProgram &BC, VmMemory &Memory,
                        int64_t MaxSteps = int64_t(1) << 28);

/// Convenience: compile then run.
VmRunResult bytecodeCompileAndRun(const PRef &Program, VmMemory &Memory,
                                  int64_t MaxSteps = int64_t(1) << 28);

} // namespace etch

#endif // ETCH_COMPILER_BYTECODE_H

//===- compiler/vm.cpp - An interpreter for the target IR P --------------===//

#include "compiler/vm.h"

using namespace etch;

void VmMemory::setArrayI64(const std::string &Name,
                           const std::vector<int64_t> &Data) {
  std::vector<ImpValue> V;
  V.reserve(Data.size());
  for (int64_t X : Data)
    V.emplace_back(X);
  Arrays[Name] = std::move(V);
}

void VmMemory::setArrayF64(const std::string &Name,
                           const std::vector<double> &Data) {
  std::vector<ImpValue> V;
  V.reserve(Data.size());
  for (double X : Data)
    V.emplace_back(X);
  Arrays[Name] = std::move(V);
}

namespace {

ImpValue zeroOf(ImpType T) {
  switch (T) {
  case ImpType::I64:
    return int64_t{0};
  case ImpType::F64:
    return 0.0;
  case ImpType::Bool:
    return false;
  }
  ETCH_UNREACHABLE("unknown ImpType");
}

/// The interpreter proper. Errors latch into Error; execution then unwinds
/// quickly because every step checks ok().
class Interp {
public:
  Interp(VmMemory &M, int64_t MaxSteps) : M(M), StepsLeft(MaxSteps) {}

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }

  ImpValue eval(const EExpr &E) {
    if (!ok())
      return int64_t{0};
    switch (E.kind()) {
    case EKind::Const:
      return E.constant();
    case EKind::Var: {
      // Resolution is cached per node: the map entry's address is stable
      // across inserts, and entries are never erased, so after the first
      // hit re-execution (loop bodies) skips the string hash entirely. A
      // failed lookup is not cached — the error latches and ends the run.
      const ImpValue *&Slot = VarCache[&E];
      if (!Slot) {
        Slot = M.scalarPtr(E.name());
        if (!Slot)
          return fail("read of undefined variable '" + E.name() + "'");
      }
      return *Slot;
    }
    case EKind::Access: {
      const std::vector<ImpValue> *&Arr = AccessCache[&E];
      if (!Arr) {
        Arr = M.getArray(E.name());
        if (!Arr)
          return fail("access of undefined array '" + E.name() + "'");
      }
      ImpValue IdxV = eval(*E.args()[0]);
      if (!ok())
        return int64_t{0};
      int64_t I = std::get<int64_t>(IdxV);
      if (I < 0 || static_cast<size_t>(I) >= Arr->size())
        return fail("out-of-bounds access " + E.name() + "[" +
                    std::to_string(I) + "], size " +
                    std::to_string(Arr->size()));
      return (*Arr)[static_cast<size_t>(I)];
    }
    case EKind::Call: {
      const OpDef *Op = E.op();
      switch (Op->Lazy) {
      case OpDef::Laziness::AndAlso: {
        ImpValue A = eval(*E.args()[0]);
        if (!ok() || !std::get<bool>(A))
          return false;
        return eval(*E.args()[1]);
      }
      case OpDef::Laziness::OrElse: {
        ImpValue A = eval(*E.args()[0]);
        if (!ok())
          return false;
        if (std::get<bool>(A))
          return true;
        return eval(*E.args()[1]);
      }
      case OpDef::Laziness::Select: {
        ImpValue C = eval(*E.args()[0]);
        if (!ok())
          return int64_t{0};
        return eval(*E.args()[std::get<bool>(C) ? 1 : 2]);
      }
      case OpDef::Laziness::Eager: {
        std::vector<ImpValue> Args;
        Args.reserve(E.args().size());
        for (const auto &A : E.args()) {
          Args.push_back(eval(*A));
          if (!ok())
            return int64_t{0};
        }
        return Op->Spec(Args);
      }
      }
      ETCH_UNREACHABLE("unknown laziness");
    }
    }
    ETCH_UNREACHABLE("unknown EKind");
  }

  void exec(const PStmt &P) {
    if (!ok())
      return;
    if (--StepsLeft < 0) {
      fail("step budget exhausted (possible non-termination)");
      return;
    }
    switch (P.kind()) {
    case PKind::Seq:
      for (const auto &C : P.children()) {
        exec(*C);
        if (!ok())
          return;
      }
      return;
    case PKind::While:
      while (ok()) {
        if (--StepsLeft < 0) {
          fail("step budget exhausted (possible non-termination)");
          return;
        }
        ImpValue C = eval(*P.cond());
        if (!ok() || !std::get<bool>(C))
          return;
        exec(*P.children()[0]);
      }
      return;
    case PKind::Branch: {
      ImpValue C = eval(*P.cond());
      if (!ok())
        return;
      exec(std::get<bool>(C) ? *P.children()[0] : *P.children()[1]);
      return;
    }
    case PKind::Noop:
    case PKind::Comment:
      return;
    case PKind::StoreVar: {
      ImpValue V = eval(*P.valueExpr());
      if (ok())
        storeScalarCached(P, std::move(V));
      return;
    }
    case PKind::StoreArr: {
      ImpValue IdxV = eval(*P.indexExpr());
      ImpValue V = eval(*P.valueExpr());
      if (!ok())
        return;
      std::vector<ImpValue> *&Arr = StoreArrCache[&P];
      if (!Arr) {
        Arr = M.getArrayMutable(P.name());
        if (!Arr) {
          fail("store to undefined array '" + P.name() + "'");
          return;
        }
      }
      int64_t I = std::get<int64_t>(IdxV);
      if (I < 0 || static_cast<size_t>(I) >= Arr->size()) {
        fail("out-of-bounds store " + P.name() + "[" + std::to_string(I) +
             "], size " + std::to_string(Arr->size()));
        return;
      }
      (*Arr)[static_cast<size_t>(I)] = V;
      return;
    }
    case PKind::DeclVar: {
      ImpValue V = eval(*P.valueExpr());
      if (ok())
        storeScalarCached(P, std::move(V));
      return;
    }
    case PKind::DeclArr: {
      ImpValue SizeV = eval(*P.valueExpr());
      if (!ok())
        return;
      int64_t N = std::get<int64_t>(SizeV);
      if (N < 0) {
        fail("negative array size for '" + P.name() + "'");
        return;
      }
      M.setArray(P.name(), std::vector<ImpValue>(static_cast<size_t>(N),
                                                 zeroOf(P.type())));
      return;
    }
    }
    ETCH_UNREACHABLE("unknown PKind");
  }

private:
  ImpValue fail(std::string Msg) {
    if (Error.empty())
      Error = std::move(Msg);
    return int64_t{0};
  }

  /// setScalar through the per-node cache: the slot is created on first
  /// execution and written through its stable address afterwards.
  void storeScalarCached(const PStmt &P, ImpValue V) {
    ImpValue *&Slot = ScalarStoreCache[&P];
    if (!Slot)
      Slot = &M.scalarSlot(P.name());
    *Slot = std::move(V);
  }

public:
  int64_t stepsLeft() const { return StepsLeft; }

private:
  VmMemory &M;
  int64_t StepsLeft;
  std::string Error;

  /// Per-node resolution caches (see EKind::Var above). Keyed by node
  /// address; an Interp lives for one run against one memory, so entries
  /// can never go stale.
  std::unordered_map<const EExpr *, const ImpValue *> VarCache;
  std::unordered_map<const EExpr *, const std::vector<ImpValue> *>
      AccessCache;
  std::unordered_map<const PStmt *, ImpValue *> ScalarStoreCache;
  std::unordered_map<const PStmt *, std::vector<ImpValue> *> StoreArrCache;
};

} // namespace

VmRunResult etch::vmRun(const PRef &Program, VmMemory &Memory,
                        int64_t MaxSteps) {
  ETCH_ASSERT(Program, "null program");
  Interp I(Memory, MaxSteps);
  I.exec(*Program);
  VmRunResult R;
  R.Steps = MaxSteps - I.stepsLeft();
  if (!I.ok())
    R.Error = I.error();
  return R;
}

std::optional<std::string> etch::vmExecute(const PRef &Program,
                                           VmMemory &Memory,
                                           int64_t MaxSteps) {
  return vmRun(Program, Memory, MaxSteps).Error;
}

std::optional<ImpValue> etch::vmEval(const ERef &E, const VmMemory &Memory,
                                     std::string *Err) {
  ETCH_ASSERT(E, "null expression");
  Interp I(const_cast<VmMemory &>(Memory), 1 << 20);
  ImpValue V = I.eval(*E);
  if (!I.ok()) {
    if (Err)
      *Err = I.error();
    return std::nullopt;
  }
  return V;
}

//===- compiler/passes.h - Verifier and pass pipeline over P ----*- C++-*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pass-pipeline architecture over the target IR: a verifier, a
/// PassManager with named passes and per-pass IR statistics, and a suite of
/// optimization passes (constant folding through the OpDef::Spec
/// interpreters, algebraic simplification, control-flow cleanup, dead-store
/// elimination, forward substitution of single-use temporaries, implied-
/// condition elimination, and hoisting of loop-invariant subexpressions).
///
/// The paper's Etch compiler relies on exactly this kind of simplification
/// of the generated imperative code — the `next()` fast path of
/// streams/stream.h is "the specialisation of `skip(index, true)` the
/// generated code enjoys after constant folding". Compiled programs flow
/// through `optimizeProgram` (see frontend.cpp) before reaching the VM and
/// the C emitter; every pass must preserve VM semantics on succeeding
/// programs, and the test suite checks this differentially against the
/// denotational oracle at every opt level.
///
/// Passes may only make programs *more* defined: dropping the evaluation of
/// a pure expression (dead store, short-circuit fold) can remove a runtime
/// error (e.g. an out-of-bounds read) but never introduce one or change the
/// result of a program that succeeded unoptimized.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_PASSES_H
#define ETCH_COMPILER_PASSES_H

#include "compiler/rewrite.h"

#include <optional>

namespace etch {

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

/// Structural and type checks over a `P` program:
///   - every expression is well-typed against its OpDef (arity, argument
///     and result types; select's branches match its result type);
///   - loop and branch conditions have type Bool, array indices and sizes
///     have type I64;
///   - every name is used consistently (never both scalar and array, one
///     type per name across declarations, stores, and reads);
///   - a name declared by the program is not stored or read before a
///     dominating declaration: declarations inside one branch arm do not
///     license uses in the other arm or after the branch (unless both arms
///     declare), and declarations inside a loop body do not license uses
///     after the loop (it may run zero times). Names the program never
///     declares are treated as externals bound by the caller (input
///     tensors, caller-declared outputs).
///
/// Returns nullopt on success, a diagnostic otherwise. The PassManager runs
/// this between every pass when PipelineOptions::Verify is set.
std::optional<std::string> verifyProgram(const PRef &Program);

//===----------------------------------------------------------------------===//
// Pass manager
//===----------------------------------------------------------------------===//

/// Per-pass IR statistics: node counts before/after one pass execution.
struct PassStats {
  std::string Name;
  size_t StmtsBefore = 0;
  size_t StmtsAfter = 0;
  size_t ExprsBefore = 0;
  size_t ExprsAfter = 0;

  bool changed() const {
    return StmtsBefore != StmtsAfter || ExprsBefore != ExprsAfter;
  }
};

/// Options threaded through a pipeline run.
struct PipelineOptions {
  /// 0 = no optimization (verify only), 1 = the standard step-reducing
  /// suite, 2 = additionally implied-condition elimination and
  /// loop-invariant hoisting (expression-level wins for emitted C).
  int OptLevel = 1;

  /// Run the verifier before the first pass and after every pass; a
  /// verifier failure aborts (ETCH_ASSERT) naming the offending pass.
  bool Verify = true;

  /// Names the caller observes after execution (output scalars/arrays).
  /// Dead-store elimination removes stores only to names the program
  /// itself declares that are never read and not listed here; names never
  /// declared in-program are always preserved (they live in caller
  /// memory). Callers optimizing a program that declares its own outputs
  /// must list them.
  std::set<std::string> LiveOut;
};

/// The outcome of a pipeline run: the rewritten program plus one PassStats
/// row per executed pass.
struct PipelineResult {
  PRef Program;
  std::vector<PassStats> Stats;

  /// Renders the statistics as an aligned table (for quickstart/debugging).
  std::string toString() const;
};

/// An ordered list of named passes over `P`.
class PassManager {
public:
  using PassFn = std::function<PRef(const PRef &, const PipelineOptions &)>;

  void addPass(std::string Name, PassFn Fn) {
    Passes.push_back({std::move(Name), std::move(Fn)});
  }

  /// The standard pipeline at \p OptLevel (empty at level 0).
  static PassManager standard(int OptLevel);

  /// Runs every pass in order, collecting statistics and (optionally)
  /// verifying between passes.
  PipelineResult run(const PRef &Program, const PipelineOptions &Opts) const;

private:
  struct Pass {
    std::string Name;
    PassFn Fn;
  };
  std::vector<Pass> Passes;
};

/// Convenience: runs the standard pipeline at Opts.OptLevel.
PipelineResult optimizeProgram(const PRef &Program,
                               const PipelineOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Individual passes (exported for unit tests)
//===----------------------------------------------------------------------===//

/// Evaluates calls whose arguments are all constants through OpDef::Spec
/// (respecting OpDef::FoldSafe, e.g. division by zero stays unfolded), and
/// short-circuits lazy ops with a constant first argument.
PRef foldConstantsPass(const PRef &P);

/// Identity/annihilator rewrites over the registered ops: x+0, x*1, x*0
/// (integer/bool only — 0.0*x is not an f64 identity under NaN/Inf),
/// true&&e, e&&false, not(not e), select with equal branches, reflexive
/// comparisons, min/max idempotence, and max(x, x+c).
PRef simplifyAlgebraPass(const PRef &P);

/// Statement-level cleanup: branches and loops on constant conditions,
/// branches with two empty arms, self-assignments, and no-op sequence
/// normalisation.
PRef cleanControlFlowPass(const PRef &P);

/// Removes declarations of, and stores to, names the program declares but
/// never reads (and that are not in \p Opts.LiveOut), iterating to a fixed
/// point so dead chains disappear.
PRef eliminateDeadStoresPass(const PRef &P, const PipelineOptions &Opts);

/// Inlines `t = e; x = f(t)` into `x = f(e)` when t is a single-use
/// temporary: declared once, never re-stored, read only by the immediately
/// following store, whose evaluation happens entirely in the declaration's
/// state, and not listed in \p Opts.LiveOut (a live-out temporary's
/// declaration must survive for the caller to read). This is what turns
/// the dense-level `skip(i, true)` latch into the paper's `i = i + 1` fast
/// path.
PRef forwardSubstitutePass(const PRef &P, const PipelineOptions &Opts = {});

/// Drops conjuncts of branch/loop conditions that are implied by dominating
/// conditions still valid at the evaluation point (tracking write sets to
/// invalidate facts). E.g. inside `while (a && b)`, an immediate
/// `if (a && b && c)` becomes `if (c)`; a masked stream's
/// `while (emit && p < e)` loses `emit` when the body never writes what
/// `emit` reads.
PRef eliminateImpliedConditionsPass(const PRef &P);

/// Hoists loop-invariant subexpressions out of `while` statements into
/// fresh temporaries: any invariant non-trivial subexpression on the
/// unconditionally-evaluated spine of the loop condition (that spine runs
/// at least once, so hoisting is safe — but subexpressions under a lazy
/// guard, like the right operand of `&&`, may never run and are held to
/// the stricter body rule), and total invariant subexpressions of the body
/// (no array accesses, no trapping or lazy ops, variables defined before
/// the loop — evaluation cannot fail, so executing it when the body would
/// not have run is safe).
PRef hoistLoopInvariantsPass(const PRef &P);

} // namespace etch

#endif // ETCH_COMPILER_PASSES_H

//===- compiler/vm.h - An interpreter for the target IR P ------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter (VM) for `P` programs with a simple memory model:
/// named scalars and named arrays of scalars. This realises the paper's
/// `run : P -> S -> S` / `eval : E α -> S -> α` semantic functions as an
/// executable machine, letting every compiled program be tested in-process
/// against the denotational oracle — no external C toolchain in the loop.
/// (A separate golden test does compile the emitted C with the system
/// compiler and checks agreement with the VM.)
///
/// The VM bounds-checks all array accesses and enforces a step budget, so
/// compiler bugs surface as errors instead of undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_VM_H
#define ETCH_COMPILER_VM_H

#include "compiler/imp.h"

#include <optional>
#include <unordered_map>

namespace etch {

/// The machine state: scalar variables and arrays. Inputs are poked in
/// before execution; outputs are read back afterwards.
class VmMemory {
public:
  void setScalar(const std::string &Name, ImpValue V) { Scalars[Name] = V; }

  /// Returns the scalar, or nullopt if undefined.
  std::optional<ImpValue> getScalar(const std::string &Name) const {
    auto It = Scalars.find(Name);
    if (It == Scalars.end())
      return std::nullopt;
    return It->second;
  }

  /// Stable pointer to the scalar's storage, or nullptr if undefined.
  /// unordered_map never invalidates references on insert/assign, so the
  /// interpreter caches these per program node and skips the string hash
  /// on re-execution.
  ImpValue *scalarPtr(const std::string &Name) {
    auto It = Scalars.find(Name);
    return It == Scalars.end() ? nullptr : &It->second;
  }

  /// Stable reference to the scalar's storage, default-created when absent
  /// (assign through it to get setScalar semantics).
  ImpValue &scalarSlot(const std::string &Name) { return Scalars[Name]; }

  void setArray(const std::string &Name, std::vector<ImpValue> Data) {
    Arrays[Name] = std::move(Data);
  }
  void setArrayI64(const std::string &Name, const std::vector<int64_t> &Data);
  void setArrayF64(const std::string &Name, const std::vector<double> &Data);

  /// Returns the array, or nullptr if undefined.
  const std::vector<ImpValue> *getArray(const std::string &Name) const {
    auto It = Arrays.find(Name);
    return It == Arrays.end() ? nullptr : &It->second;
  }

  std::vector<ImpValue> *getArrayMutable(const std::string &Name) {
    auto It = Arrays.find(Name);
    return It == Arrays.end() ? nullptr : &It->second;
  }

  /// All arrays, e.g. for baking inputs into an emitted C program.
  const std::unordered_map<std::string, std::vector<ImpValue>> &
  allArrays() const {
    return Arrays;
  }

private:
  std::unordered_map<std::string, ImpValue> Scalars;
  std::unordered_map<std::string, std::vector<ImpValue>> Arrays;
};

/// The outcome of a VM run: the error (nullopt on success) and the number
/// of steps consumed. A step is charged per statement execution and per
/// while-loop iteration, so the count is a deterministic cost model for the
/// generated code — the optimization pipeline's step reductions are
/// asserted against it.
struct VmRunResult {
  std::optional<std::string> Error;
  int64_t Steps = 0;

  bool ok() const { return !Error; }
};

/// Executes \p Program against \p Memory, counting steps. \p MaxSteps
/// bounds execution (unbound name, out-of-bounds access, type error, and
/// budget exhaustion all report through VmRunResult::Error).
VmRunResult vmRun(const PRef &Program, VmMemory &Memory,
                  int64_t MaxSteps = int64_t(1) << 28);

/// Executes \p Program against \p Memory. Returns nullopt on success or a
/// diagnostic on failure (unbound name, out-of-bounds access, type error,
/// or exceeding \p MaxSteps statement executions).
std::optional<std::string> vmExecute(const PRef &Program, VmMemory &Memory,
                                     int64_t MaxSteps = int64_t(1) << 28);

/// Evaluates a closed expression against \p Memory. Returns nullopt and
/// sets \p Err on failure.
std::optional<ImpValue> vmEval(const ERef &E, const VmMemory &Memory,
                               std::string *Err = nullptr);

} // namespace etch

#endif // ETCH_COMPILER_VM_H

//===- compiler/imp.h - The target IRs E (expressions) and P ----*- C++-*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's target languages from Figure 11: a small expression
/// language `E` (variables, array accesses, and fully-applied calls to
/// operations from an open, user-extensible set — Figure 12) and a small
/// imperative language `P` (sequencing, while, branch, no-op, and stores).
/// `P` maps directly onto C; it is also directly interpretable by the VM in
/// compiler/vm.h so compiled programs can be tested without an external
/// toolchain.
///
/// Where the Lean original indexes `E` by a Lean type, we carry a small
/// runtime type tag (ImpType) and check operator applications dynamically
/// at construction time.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_COMPILER_IMP_H
#define ETCH_COMPILER_IMP_H

#include "support/assert.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace etch {

/// The scalar types of the target language.
enum class ImpType { I64, F64, Bool };

/// Returns "i64" / "f64" / "bool".
const char *impTypeName(ImpType T);

/// A runtime scalar value (used by the VM and by constant expressions).
using ImpValue = std::variant<int64_t, double, bool>;

/// Returns the type tag of a runtime value.
ImpType impTypeOf(const ImpValue &V);

class EExpr;
using ERef = std::shared_ptr<const EExpr>;

/// A user-extensible operation (Figure 12): a name, a signature, a
/// functional specification (the interpreter), and C syntax. Operations are
/// unprivileged — the semiring arithmetic, comparisons, and min/max the
/// compiler itself needs are ordinary OpDefs in compiler/ops.h, and users
/// may define more (the paper's TPC-H Q9 does this for a timestamp-to-year
/// conversion) without touching the compiler.
struct OpDef {
  std::string Name;
  ImpType Result;
  std::vector<ImpType> ArgTypes;

  /// The functional specification: evaluates the op on argument values.
  std::function<ImpValue(std::span<const ImpValue>)> Spec;

  /// C syntax: a format string where {0}, {1}, ... are the (parenthesised)
  /// arguments, e.g. "({0} + {1})" or "my_fn({0})".
  std::string CFormat;

  /// Optional C code (helper function definitions) emitted once in the
  /// preamble of any program using this op.
  std::string CPrelude;

  /// When set, constant folding calls this first and folds through Spec
  /// only if it returns true. Ops whose Spec is partial (e.g. division and
  /// modulo, undefined on a zero divisor) use this to keep the trap at
  /// runtime instead of tripping it at compile time.
  std::function<bool(std::span<const ImpValue>)> FoldSafe;

  /// Lazy ops (select / logical and / or) evaluate only the arguments the
  /// semantics demands; the VM special-cases them so that guarded
  /// expressions can protect out-of-bounds accesses, matching C's
  /// short-circuit evaluation.
  enum class Laziness { Eager, Select, AndAlso, OrElse };
  Laziness Lazy = Laziness::Eager;
};

/// Expression nodes (Figure 11's E): immutable trees.
enum class EKind { Var, Const, Access, Call };

class EExpr {
public:
  EKind kind() const { return Kind; }
  ImpType type() const { return Ty; }

  /// Variable or array name (Var / Access).
  const std::string &name() const { return Name; }

  /// Constant payload (Const).
  const ImpValue &constant() const { return Payload; }

  /// The called op (Call).
  const OpDef *op() const { return Op; }

  /// Call arguments; for Access, Args[0] is the index expression.
  const std::vector<ERef> &args() const { return Args; }

  /// Factories.
  static ERef var(std::string Name, ImpType Ty);
  static ERef constant(ImpValue V);
  static ERef access(std::string Array, ImpType Elem, ERef Index);
  static ERef call(const OpDef *Op, std::vector<ERef> Args);

  /// Renders a C-like string (used by both the C emitter and diagnostics).
  std::string toString() const;

private:
  EExpr() = default;
  EKind Kind = EKind::Const;
  ImpType Ty = ImpType::I64;
  std::string Name;
  ImpValue Payload = int64_t{0};
  const OpDef *Op = nullptr;
  std::vector<ERef> Args;
};

class PStmt;
using PRef = std::shared_ptr<const PStmt>;

/// Statement nodes (Figure 11's P).
enum class PKind {
  Seq,      ///< Children in order.
  While,    ///< while (Cond) Children[0]
  Branch,   ///< if (Cond) Children[0] else Children[1]
  Noop,     ///< No-op ("skip" in the paper; renamed to avoid clashing with
            ///< stream skip).
  StoreVar, ///< Name = Value
  StoreArr, ///< Name[Index] = Value
  DeclVar,  ///< Ty Name = Value  (zero default)
  DeclArr,  ///< Ty Name[Size]   (zero-initialised; Size an I64 expr)
  Comment,  ///< Emitted as a C comment; no semantics.
};

class PStmt {
public:
  PKind kind() const { return Kind; }
  const std::string &name() const { return Name; }
  ImpType type() const { return Ty; }
  const ERef &cond() const { return Cond; }
  const ERef &indexExpr() const { return Index; }
  const ERef &valueExpr() const { return Value; }
  const std::vector<PRef> &children() const { return Children; }
  const std::string &text() const { return Name; }

  /// Factories.
  static PRef seq(std::vector<PRef> Stmts);
  static PRef seq2(PRef A, PRef B) { return seq({std::move(A), std::move(B)}); }
  static PRef whileLoop(ERef Cond, PRef Body);
  static PRef branch(ERef Cond, PRef Then, PRef Else);
  static PRef noop();
  static PRef storeVar(std::string Name, ERef Value);
  static PRef storeArr(std::string Name, ERef Index, ERef Value);
  static PRef declVar(std::string Name, ImpType Ty, ERef Init);
  static PRef declArr(std::string Name, ImpType Ty, ERef Size);
  static PRef comment(std::string Text);

  /// Renders indented pseudo-C for diagnostics.
  std::string toString(int IndentLevel = 0) const;

private:
  PStmt() = default;
  PKind Kind = PKind::Noop;
  std::string Name;
  ImpType Ty = ImpType::I64;
  ERef Cond, Index, Value;
  std::vector<PRef> Children;
};

/// Generates fresh, unique names with a common prefix ("x0_p", "x1_crd"...).
class NameGen {
public:
  /// Returns Base + the next counter value, e.g. fresh("q") -> "q3".
  std::string fresh(const std::string &Base) {
    return Base + std::to_string(Counter++);
  }

private:
  int Counter = 0;
};

} // namespace etch

#endif // ETCH_COMPILER_IMP_H

//===- planner/plan.h - Plan IR, enumerator, and cost model ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The planning pipeline for contraction expressions:
///
///   expression + TensorStats  --extractQuery-->  PlanQuery (sum of
///   products)  --enumeratePlans-->  ranked Plans  --realizePlan (see
///   planner/realize.h)-->  expression + bindings under the chosen order.
///
/// A *global attribute order* in this repo is the attribute interning
/// order (Definition 5.7 keys every stream invariant to it), so a "plan"
/// is a permutation of the query's attributes plus, per tensor access, the
/// storage orientation (as stored, or a transposed copy) and per-level
/// format choices — including hashed coordinate levels (formats/levels.h)
/// for accesses whose role is locate-dominated. The enumerator only emits
/// orders every access can realize; the cost model scores each with an
/// asymptotic-plus-stats estimate of fused-loop iterations (Section 8.1's
/// ~40x gap is exactly such an asymptotic difference) plus a per-level
/// probe-vs-scan locate term, and `Plan::explain` renders the choice as a
/// readable EXPLAIN report.
///
/// The cost model consumes only per-attribute distinct counts, extents,
/// nnz, and level kinds — all invariant under renaming — so equal queries
/// modulo `Rename` cost the same (tested in tests/planner_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_PLANNER_PLAN_H
#define ETCH_PLANNER_PLAN_H

#include "planner/stats.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace etch {

/// One tensor access inside a product term. `Query[i]` is the query-level
/// attribute bound to stored level i of the tensor (so `Query` follows the
/// *stored* hierarchy order and, after renames, need not be sorted).
struct PlanFactor {
  std::string Tensor;
  std::vector<Attr> Query;
};

/// One product term of the sum-of-products normal form.
struct PlanTerm {
  std::vector<PlanFactor> Factors;
  Shape Free;                 ///< Output attributes (sorted).
  std::vector<Attr> Summed;   ///< Contracted attributes.
  std::vector<Attr> Expanded; ///< Attributes driven by no factor (↑ only).

  /// Every attribute the term iterates (free ∪ summed), as a sorted shape.
  Shape allAttrs() const;
};

/// A contraction query in planning form plus everything needed to cost it.
struct PlanQuery {
  std::vector<PlanTerm> Terms;
  std::map<std::string, TensorStats> Stats; ///< Per tensor name.
  std::map<uint32_t, int64_t> Dims;         ///< Attr id -> extent.

  /// Union of every term's attributes, sorted by the current global order.
  Shape allAttrs() const;

  int64_t dimOf(Attr A) const;
};

/// Normalizes \p E (typed under \p Ctx) into sum-of-products planning form,
/// resolving renames down to the leaf accesses. Returns nullopt — with a
/// diagnostic in \p Err — on expressions outside the plannable fragment
/// (Σ under a `·` operand, rename collisions with contracted attributes,
/// or a term blow-up past PlanOptions-independent cap of 64 terms).
std::optional<PlanQuery> extractQuery(const ExprPtr &E, const TypeContext &Ctx,
                                      std::map<std::string, TensorStats> Stats,
                                      std::map<uint32_t, int64_t> Dims,
                                      std::string *Err = nullptr);

/// One loop level of a planned fused stream.
struct PlanLevel {
  Attr A;
  int64_t Extent = 0;
  bool Summed = false;
  double Iters = 1.0;    ///< Estimated iterations per enclosing context.
  double CumIters = 1.0; ///< Estimated total visits of this level.
  std::vector<std::string> Drivers; ///< Tensors intersected at this level.
  /// bindName of the access whose stream the cost model chose to drive the
  /// intersection (smallest conditional iteration estimate); empty for
  /// expand-only levels. The indexing-map analysis (planner/indexing.h)
  /// classifies every other access at this level relative to it.
  std::string Driver;
};

/// One physical tensor access of a plan.
struct PlanAccess {
  std::string Tensor;
  std::vector<Attr> Stored; ///< Query attrs in stored level order.
  std::vector<Attr> Used;   ///< Same attrs re-sorted by the plan order.
  bool Transposed = false;  ///< Used != Stored: needs a level-permuted copy.
  /// The plan chose a hashed outer level for a compressed-stored access:
  /// the caller binds a hashed copy (bindHashedVector) whose probe table
  /// is one build pass over the entries. Stored-hashed accesses keep
  /// Rehashed false — their table already exists.
  bool Rehashed = false;
  std::vector<LevelSpec> Levels; ///< Chosen per-level formats for `Used`.

  /// Realized binding name: "<tensor>" as stored, "<tensor>_T" transposed.
  std::string bindName() const;
};

/// Cost-model and enumeration knobs.
struct PlanOptions {
  /// Permit level-permuted copies of accesses whose stats say CanTranspose.
  bool AllowTranspose = true;
  /// Enumerate all n! orders while n! <= MaxOrders, else greedy fallback.
  size_t MaxOrders = 5040;
  /// Charged per nonzero of every transposed access (one extra pass over
  /// the data to build the copy, amortized).
  double TransposeCostPerNnz = 4.0;
  /// Permit re-formatting eligible accesses (stats say CanHash, single
  /// level, as stored) with a hashed outer level when the probe-vs-scan
  /// cost term favors O(1) locates over log-fill searches.
  bool AllowHashed = true;
  /// Charged per nonzero of every rehashed access (building the
  /// coordinate probe table is one pass over the entries).
  double HashBuildCostPerNnz = 2.0;
  /// Estimated cost of one locate into a hashed level (an O(1) probe);
  /// compressed levels instead pay log2(2 + fill) per locate.
  double HashProbeCost = 1.0;
  /// Access-pattern penalties (planner/indexing.h), charged per estimated
  /// visit of a level the indexing analysis classifies as gather (data-
  /// dependent jumps the prefetcher cannot follow) or strided (constant
  /// stride > 1). Sequential visits are free. Kept small relative to the
  /// per-iteration unit of StreamCost: they break ties between orders with
  /// equal iteration counts, not override asymptotics.
  double GatherVisitCost = 0.25;
  double StridedVisitCost = 0.0625;
};

/// A validated execution plan for one global attribute order.
struct Plan {
  std::vector<Attr> Order; ///< The chosen global order, outermost first.
  std::vector<std::vector<PlanLevel>> TermLevels; ///< Levels per term.
  std::vector<PlanAccess> Accesses;
  double StreamCost = 0.0;    ///< Estimated fused-loop iterations plus
                              ///< per-level locate (probe-vs-scan) charges.
  double TransposeCost = 0.0; ///< Estimated copy cost for transposed inputs.
  double RehashCost = 0.0;    ///< Estimated build cost for rehashed inputs.
  double AccessCost = 0.0;    ///< Access-pattern term: gather/strided visits
                              ///< priced by the indexing-map analysis.

  double cost() const {
    return StreamCost + TransposeCost + RehashCost + AccessCost;
  }

  /// Renders the EXPLAIN report (deterministic; golden-tested).
  std::string explain(const PlanQuery &Q) const;
};

/// Builds and costs the plan realizing \p Order (a permutation of
/// Q.allAttrs()). Returns nullopt if some access cannot be realized under
/// the order (needs a transpose that is unavailable or disallowed).
std::optional<Plan> planForOrder(const PlanQuery &Q,
                                 const std::vector<Attr> &Order,
                                 const PlanOptions &O = {});

/// Enumerates every realizable order (all permutations up to O.MaxOrders,
/// then a per-starting-attribute greedy sweep) and returns the plans sorted
/// best-first: by cost, then fewer transposes, then lexicographic order
/// names — fully deterministic.
std::vector<Plan> enumeratePlans(const PlanQuery &Q,
                                 const PlanOptions &O = {});

/// Convenience: the best plan, or nullopt if no order is realizable.
std::optional<Plan> bestPlan(const PlanQuery &Q, const PlanOptions &O = {});

} // namespace etch

#endif // ETCH_PLANNER_PLAN_H

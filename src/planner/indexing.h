//===- planner/indexing.h - Access indexing maps and schedules -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Indexing-map analysis over realized plans, after XLA's HLO indexing
/// analysis (SNIPPETS.md): for every physical access of a plan, derive the
/// symbolic map from the fused loop nest's iteration variables to the
/// access's stored coordinates — e.g. `(i, j, k) -> (j, k)` for factor
/// B(j,k) under order i < j < k — and classify how each storage level is
/// touched as the loops advance:
///
///   - *sequential*: the level walks its own storage monotonically (it
///     drives the intersection at its loop), or it is a dense level whose
///     coordinate is supplied by a dense driver at unit stride;
///   - *strided*: a dense level located at a constant stride > 1 — an
///     outer dense level of dense value storage whose inner extents
///     separate consecutive visits;
///   - *gather*: the visit order is data-dependent — a dense level whose
///     coordinates come from a compressed/hashed driver (indices jump with
///     the driver's crd array), or any non-driving compressed/hashed level
///     (each visit searches or probes its fiber).
///
/// The classification feeds two consumers. First, a new access-pattern
/// term in `PlanCost` (`Plan::AccessCost`, rendered by EXPLAIN): gathers
/// and wide strides touch memory the prefetcher cannot predict, so two
/// orders with equal iteration counts no longer tie when one of them
/// streams its operands. Second, `chooseSchedule` turns the classification
/// plus `TensorStats` into a concrete kernel schedule — tile sizes and
/// tiled-vs-plain / SIMD-vs-scalar decisions — so the tiled kernel
/// variants in baselines/etch_kernels.h are selected by the planner
/// rather than by hand-picked constants.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_PLANNER_INDEXING_H
#define ETCH_PLANNER_INDEXING_H

#include "planner/plan.h"

#include <cstdint>
#include <string>
#include <vector>

namespace etch {

/// How one storage level is touched as the fused loops advance.
enum class AccessPattern { Sequential, Strided, Gather };

const char *accessPatternName(AccessPattern P);

/// Classification of one stored level of one access.
struct LevelIndexing {
  Attr A;                   ///< The loop attribute bound to this level.
  LevelSpec::Kind Kind = LevelSpec::Compressed;
  bool Driving = false;     ///< This access drives the intersection at A.
  AccessPattern Pattern = AccessPattern::Sequential;
  /// Elements between consecutive visits when Pattern is Strided (the
  /// product of the inner dense extents); 1 for Sequential, unknowable
  /// (data-dependent) for Gather.
  int64_t Stride = 1;
};

/// One access's symbolic indexing map plus per-level classification.
struct AccessIndexing {
  std::string BindName; ///< PlanAccess::bindName() of the access.
  /// The output→input map in XLA notation: loop attrs of the term order on
  /// the left, the access's used coordinates on the right.
  std::string Map;
  std::vector<LevelIndexing> Levels;
};

/// The full analysis of a plan: per-access maps and the derived
/// access-pattern cost term.
struct IndexingInfo {
  std::vector<AccessIndexing> Accesses;
  /// Sum over levels of (estimated visits × pattern penalty); the term
  /// `planForOrder` stores into `Plan::AccessCost`.
  double AccessCost = 0.0;

  /// Deterministic rendering (golden-tested); the block EXPLAIN appends.
  std::string toString() const;

  const AccessIndexing *access(const std::string &BindName) const;
};

/// Analyzes \p P (as produced by planForOrder for \p Q): derives every
/// access's indexing map, classifies each level, and prices the pattern
/// term with \p O's penalties. Deterministic — `Plan::explain` recomputes
/// it rather than storing it.
IndexingInfo analyzeIndexing(const PlanQuery &Q, const Plan &P,
                             const PlanOptions &O = {});

//===----------------------------------------------------------------------===//
// Kernel schedule selection
//===----------------------------------------------------------------------===//

/// Cache-model constants for schedule selection. Conservative defaults for
/// contemporary x86/ARM cores; tests override them to force decisions.
struct ScheduleOptions {
  int64_t L1Bytes = 32 * 1024;
  int64_t L2Bytes = 256 * 1024;
  /// Lanes of the compiled-in portable SIMD type (support/simd.h); 1 when
  /// SIMD is compiled out, making every SIMD decision a scalar no-op.
  int64_t SimdWidth = 0; ///< 0 = use the compiled-in etch::simdWidth().
};

/// A concrete schedule for a fused kernel, chosen by the planner.
struct KernelSchedule {
  bool Tiled = false;  ///< Run the cache-blocked variant.
  bool Simd = false;   ///< Vectorize the dense-value tail loop.
  /// Column/tail tile in elements when Tiled (sized so the gathered
  /// operand's blocked working set fits half of L1); 0 = no blocking.
  int64_t ColTile = 0;
  std::string Reason;  ///< Human-readable decision trace (one line).
};

/// Chooses the kernel schedule for \p P from the indexing classification
/// and the query's statistics:
///
///   - SIMD exactly when the innermost loop attribute is free (each lane
///     is an independent output, so per-lane IEEE ops reproduce the scalar
///     kernel bit for bit), every located access at it is dense
///     sequential, and its extent covers at least one vector;
///   - tiling exactly when some gathered dense operand's working set
///     (extent × element size) exceeds L1 — the tile bounds the gather
///     range so the blocked slice stays cache-resident. Gathered operands
///     include the output workspace when a free attribute sits inside a
///     reduction loop (the whole output row is rewritten per reduction
///     step, as in the linear-combination matmul's workspace).
///
/// Never fires on reductions over summed innermost attributes: collapsing
/// a serial accumulation chain into lanes would reassociate floating-point
/// addition and break bit-identity.
KernelSchedule chooseSchedule(const PlanQuery &Q, const Plan &P,
                              const IndexingInfo &Info,
                              const ScheduleOptions &SO = {});

} // namespace etch

#endif // ETCH_PLANNER_INDEXING_H

//===- planner/realize.cpp - Realizing a plan as expr + bindings ----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "planner/realize.h"

#include "support/assert.h"

#include <algorithm>
#include <atomic>

namespace etch {

Attr RealizedPlan::fresh(Attr A) const {
  auto It = AttrMap.find(A.id());
  ETCH_ASSERT(It != AttrMap.end(), "attribute not part of the plan");
  return It->second;
}

RealizedPlan realizePlan(const PlanQuery &Q, const Plan &P,
                         const std::string &Tag) {
  static std::atomic<unsigned> Counter{0};
  RealizedPlan R;
  R.Accesses = P.Accesses;

  // Intern one fresh attribute per query attribute *in plan order*: the
  // interning order is the global order, so the fresh shapes below come out
  // sorted exactly when they follow the plan.
  for (Attr A : P.Order) {
    unsigned N = Counter.fetch_add(1);
    Attr F = Attr::named(Tag + "_" + A.name() + "_" + std::to_string(N));
    R.AttrMap[A.id()] = F;
    R.FreshDims.emplace_back(F, Q.dimOf(A));
  }

  // One binding per physical access; `Used` is sorted by plan order, so its
  // image under the fresh map is a valid (sorted) shape.
  TypeContext Ctx;
  for (const PlanAccess &A : R.Accesses) {
    TensorBinding B;
    B.Name = A.bindName();
    for (Attr U : A.Used)
      B.Shp.push_back(R.fresh(U));
    ETCH_ASSERT(std::is_sorted(B.Shp.begin(), B.Shp.end()),
                "realized shape must follow the fresh interning order");
    B.Levels = A.Levels;
    Ctx[B.Name] = B.Shp;
    R.Bindings.push_back(std::move(B));
  }

  // Reassemble the sum-of-products query over the fresh attributes.
  ExprPtr Root;
  for (const PlanTerm &T : Q.Terms) {
    ExprPtr Term;
    for (const PlanFactor &F : T.Factors) {
      // Find the access realizing this factor to recover its bind name.
      const PlanAccess *Acc = nullptr;
      for (const PlanAccess &A : R.Accesses)
        if (A.Tensor == F.Tensor && A.Stored == F.Query)
          Acc = &A;
      ETCH_ASSERT(Acc, "factor without a realized access");
      ExprPtr V = Expr::var(Acc->bindName());
      std::string Err;
      Term = Term ? mulExpand(std::move(Term), std::move(V), Ctx, &Err)
                  : std::move(V);
      ETCH_ASSERT(Term, "realized product failed to type-check");
    }
    for (Attr A : T.Expanded)
      Term = Expr::expand(R.fresh(A), std::move(Term));
    // Contract innermost attributes first, like core/expr.h's sumAll.
    std::vector<Attr> Summed;
    for (Attr A : T.Summed)
      Summed.push_back(R.fresh(A));
    std::sort(Summed.begin(), Summed.end());
    for (auto It = Summed.rbegin(); It != Summed.rend(); ++It)
      Term = Expr::sum(*It, std::move(Term));
    Root = Root ? Expr::add(std::move(Root), std::move(Term))
                : std::move(Term);
  }
  ETCH_ASSERT(Root, "plan with no terms");
  R.E = std::move(Root);

  std::string Err;
  ETCH_ASSERT(inferShape(R.E, Ctx, &Err), "realized query fails typing");
  return R;
}

void installPlan(LowerCtx &Ctx, const RealizedPlan &R) {
  for (const TensorBinding &B : R.Bindings)
    Ctx.bind(B);
  for (const auto &[A, N] : R.FreshDims)
    Ctx.setDim(A, N);
}

} // namespace etch

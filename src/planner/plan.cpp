//===- planner/plan.cpp - Plan IR, enumerator, and cost model -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "planner/plan.h"

#include "planner/indexing.h"
#include "support/assert.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace etch {

namespace {

/// Maximum number of product terms extraction will distribute into.
constexpr size_t MaxExtractTerms = 64;

std::string fmtNum(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3g", X);
  return Buf;
}

bool contains(const std::vector<Attr> &V, Attr A) {
  return std::find(V.begin(), V.end(), A) != V.end();
}

} // namespace

Shape PlanTerm::allAttrs() const {
  std::vector<Attr> All(Free.begin(), Free.end());
  All.insert(All.end(), Summed.begin(), Summed.end());
  return makeShape(std::move(All));
}

Shape PlanQuery::allAttrs() const {
  std::vector<Attr> All;
  for (const PlanTerm &T : Terms) {
    Shape TA = T.allAttrs();
    All.insert(All.end(), TA.begin(), TA.end());
  }
  return makeShape(std::move(All));
}

int64_t PlanQuery::dimOf(Attr A) const {
  auto It = Dims.find(A.id());
  ETCH_ASSERT(It != Dims.end(), "planner: unknown attribute extent");
  return It->second;
}

std::string PlanAccess::bindName() const {
  return Transposed ? Tensor + "_T" : Tensor;
}

//===----------------------------------------------------------------------===//
// extractQuery: sum-of-products normalization with renames resolved
//===----------------------------------------------------------------------===//

namespace {

struct ExtractFail {
  std::string Why;
};

/// Recursively normalizes into terms; Summed attributes are bound (fixed
/// identity), Free attributes are still subject to enclosing renames.
std::optional<std::vector<PlanTerm>> extractTerms(const ExprPtr &E,
                                                  const TypeContext &Ctx,
                                                  std::string *Err) {
  auto fail = [&](const std::string &Why) -> std::optional<std::vector<PlanTerm>> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };
  switch (E->kind()) {
  case ExprKind::Var: {
    auto It = Ctx.find(E->varName());
    if (It == Ctx.end())
      return fail("unbound variable " + E->varName());
    PlanTerm T;
    T.Factors.push_back({E->varName(),
                         std::vector<Attr>(It->second.begin(), It->second.end())});
    T.Free = It->second;
    return std::vector<PlanTerm>{std::move(T)};
  }
  case ExprKind::Add: {
    auto L = extractTerms(E->lhs(), Ctx, Err);
    if (!L)
      return std::nullopt;
    auto R = extractTerms(E->rhs(), Ctx, Err);
    if (!R)
      return std::nullopt;
    L->insert(L->end(), R->begin(), R->end());
    if (L->size() > MaxExtractTerms)
      return fail("term blow-up under +");
    return L;
  }
  case ExprKind::Mul: {
    auto L = extractTerms(E->lhs(), Ctx, Err);
    if (!L)
      return std::nullopt;
    auto R = extractTerms(E->rhs(), Ctx, Err);
    if (!R)
      return std::nullopt;
    std::vector<PlanTerm> Out;
    for (const PlanTerm &A : *L)
      for (const PlanTerm &B : *R) {
        // A product of contracted streams is not the contraction of a
        // product (the frontend refuses it too); the normal form requires
        // Σ to commute to the top of each term.
        if (!A.Summed.empty() || !B.Summed.empty())
          return fail("Σ under a · operand is not plannable");
        PlanTerm T;
        T.Factors = A.Factors;
        T.Factors.insert(T.Factors.end(), B.Factors.begin(), B.Factors.end());
        T.Free = shapeUnion(A.Free, B.Free);
        Out.push_back(std::move(T));
        if (Out.size() > MaxExtractTerms)
          return fail("term blow-up under ·");
      }
    return Out;
  }
  case ExprKind::Sum: {
    auto L = extractTerms(E->lhs(), Ctx, Err);
    if (!L)
      return std::nullopt;
    for (PlanTerm &T : *L) {
      if (!shapeContains(T.Free, E->attr()))
        return fail("Σ over attribute not in shape");
      T.Free = shapeMinus(T.Free, Shape{E->attr()});
      T.Summed.push_back(E->attr());
    }
    return L;
  }
  case ExprKind::Expand: {
    auto L = extractTerms(E->lhs(), Ctx, Err);
    if (!L)
      return std::nullopt;
    for (PlanTerm &T : *L) {
      if (contains(T.Summed, E->attr()))
        return fail("↑ shadows a contracted attribute");
      T.Free = shapeUnion(T.Free, Shape{E->attr()});
    }
    return L;
  }
  case ExprKind::Rename: {
    auto L = extractTerms(E->lhs(), Ctx, Err);
    if (!L)
      return std::nullopt;
    const auto &M = E->mapping();
    auto mapA = [&M](Attr A) {
      for (const auto &[From, To] : M)
        if (From == A)
          return To;
      return A;
    };
    for (PlanTerm &T : *L) {
      // Renames act on the free shape only; contracted attributes keep
      // their identity. A rename whose target collides with a bound
      // attribute of this term would conflate two distinct loops.
      Shape NewFree;
      for (Attr A : T.Free) {
        Attr B = mapA(A);
        if (contains(T.Summed, B))
          return fail("rename target collides with contracted attribute");
        NewFree.push_back(B);
      }
      Shape Sorted = makeShape(NewFree);
      if (Sorted.size() != T.Free.size())
        return fail("rename conflates attributes");
      T.Free = std::move(Sorted);
      for (PlanFactor &F : T.Factors)
        for (Attr &A : F.Query)
          if (!contains(T.Summed, A))
            A = mapA(A);
    }
    return L;
  }
  }
  return fail("unknown expression kind");
}

} // namespace

std::optional<PlanQuery> extractQuery(const ExprPtr &E, const TypeContext &Ctx,
                                      std::map<std::string, TensorStats> Stats,
                                      std::map<uint32_t, int64_t> Dims,
                                      std::string *Err) {
  auto Terms = extractTerms(E, Ctx, Err);
  if (!Terms)
    return std::nullopt;
  PlanQuery Q;
  Q.Terms = std::move(*Terms);
  Q.Stats = std::move(Stats);
  Q.Dims = std::move(Dims);
  for (PlanTerm &T : Q.Terms) {
    // Attributes no factor drives iterate their whole extent (↑ only).
    Shape Covered;
    for (const PlanFactor &F : T.Factors) {
      if (!Q.Stats.count(F.Tensor)) {
        if (Err)
          *Err = "no statistics for tensor " + F.Tensor;
        return std::nullopt;
      }
      for (Attr A : F.Query)
        Covered.push_back(A);
    }
    T.Expanded = shapeMinus(T.allAttrs(), makeShape(std::move(Covered)));
  }
  // Extents: caller-provided first, then filled from the stats.
  for (const auto &[Name, S] : Q.Stats)
    for (const LevelStat &L : S.Levels)
      Q.Dims.emplace(L.A.id(), L.Extent);
  for (Attr A : Q.allAttrs())
    if (!Q.Dims.count(A.id())) {
      if (Err)
        *Err = "no extent known for attribute " + A.name();
      return std::nullopt;
    }
  return Q;
}

//===----------------------------------------------------------------------===//
// Costing one order
//===----------------------------------------------------------------------===//

namespace {

/// The stored-level statistic realizing query attribute \p A of factor
/// access \p Stored (query attrs in stored order): lookups are positional
/// because renames can make the query attribute differ from the attribute
/// the stats were collected under.
const LevelStat &levelFor(const TensorStats &S,
                          const std::vector<Attr> &Stored, Attr A) {
  for (size_t I = 0; I < Stored.size(); ++I)
    if (Stored[I] == A)
      return S.Levels[I];
  ETCH_ASSERT(false, "query attribute not accessed by this tensor");
  return S.Levels.front();
}

/// The independence estimate of distinct tuples of the query attributes
/// \p Sub within the access (T, Stored): the product of per-level distinct
/// counts, capped by nnz (a tensor cannot have more distinct sub-tuples
/// than entries).
double dpEstimate(const TensorStats &T, const std::vector<Attr> &Stored,
                  const std::vector<Attr> &Sub) {
  double P = 1.0;
  for (Attr A : Sub)
    P *= static_cast<double>(levelFor(T, Stored, A).Distinct);
  return std::min(P, static_cast<double>(T.Nnz));
}

/// Per-level format heuristic for a transposed two-level copy: dense outer
/// level when the attribute is at least half-full (CSR-style), compressed
/// otherwise (DCSR-style, robust to hypersparsity).
LevelSpec::Kind transposedOuterKind(const LevelStat &L) {
  return 2 * L.Distinct >= L.Extent ? LevelSpec::Dense
                                    : LevelSpec::Compressed;
}

/// Search-policy heuristic: galloping pays off on large compressed levels,
/// linear scanning wins on small ones. Hashed levels use the policy only
/// for the probe-miss fallback search over the sorted snapshot, which has
/// the same shape as a compressed scan.
SearchPolicy policyFor(LevelSpec::Kind K, int64_t Extent) {
  if ((K == LevelSpec::Compressed || K == LevelSpec::Hashed) &&
      Extent >= 4096)
    return SearchPolicy::Gallop;
  return SearchPolicy::Linear;
}

/// Per-visit cost of locating (skipping) into a level that is not driving
/// the intersection — the probe-vs-scan term: dense levels index directly,
/// hashed levels probe in O(1), compressed levels search their fiber
/// (log2 of the mean fill).
double locateCost(LevelSpec::Kind K, const LevelStat &St,
                  const PlanOptions &O) {
  switch (K) {
  case LevelSpec::Dense:
    return 0.0;
  case LevelSpec::Hashed:
    return O.HashProbeCost;
  case LevelSpec::Compressed:
    break;
  }
  return std::log2(2.0 + std::max(St.AvgFill, 0.0));
}

} // namespace

std::optional<Plan> planForOrder(const PlanQuery &Q,
                                 const std::vector<Attr> &Order,
                                 const PlanOptions &O) {
  // Sanity: Order must be a permutation of the query's attributes.
  ETCH_ASSERT(makeShape(Order) == Q.allAttrs(),
              "planForOrder: not a permutation of the query attributes");
  auto rankOf = [&Order](Attr A) {
    for (size_t I = 0; I < Order.size(); ++I)
      if (Order[I] == A)
        return I;
    ETCH_ASSERT(false, "attribute missing from order");
    return Order.size();
  };

  Plan P;
  P.Order = Order;

  // Physical accesses: one per distinct (tensor, attribute mapping).
  for (const PlanTerm &T : Q.Terms)
    for (const PlanFactor &F : T.Factors) {
      bool Seen = false;
      for (const PlanAccess &A : P.Accesses)
        Seen |= A.Tensor == F.Tensor && A.Stored == F.Query;
      if (Seen)
        continue;
      const TensorStats &S = Q.Stats.at(F.Tensor);
      PlanAccess A;
      A.Tensor = F.Tensor;
      A.Stored = F.Query;
      A.Used = F.Query;
      std::sort(A.Used.begin(), A.Used.end(),
                [&](Attr X, Attr Y) { return rankOf(X) < rankOf(Y); });
      A.Transposed = A.Used != A.Stored;
      if (A.Transposed &&
          (!O.AllowTranspose || !S.CanTranspose || A.Used.size() != 2))
        return std::nullopt; // Order not realizable for this access.
      for (size_t L = 0; L < A.Used.size(); ++L) {
        LevelSpec Spec;
        const LevelStat &St = levelFor(S, A.Stored, A.Used[L]);
        if (!A.Transposed)
          Spec.K = St.Kind;
        else
          Spec.K = L == 0 ? transposedOuterKind(St) : LevelSpec::Compressed;
        if (Spec.K == LevelSpec::Hashed)
          Spec.TabSize = hashedTabSizeFor(static_cast<size_t>(S.Nnz));
        Spec.Policy = policyFor(Spec.K, St.Extent);
        A.Levels.push_back(Spec);
      }
      if (A.Transposed)
        P.TransposeCost += O.TransposeCostPerNnz * static_cast<double>(S.Nnz);
      P.Accesses.push_back(std::move(A));
    }

  // Cost every term under the order: at each level, the fused loop visits
  // roughly the smallest participating stream's conditional count; dense
  // levels enumerate their extent (they locate in O(1) but iterate all
  // positions when driving). Every participating stream that is *not* the
  // driving one additionally pays a per-visit locate charge (the
  // probe-vs-scan term of locateCost above).
  auto costTerms = [&](Plan &Pl) {
    Pl.StreamCost = 0.0;
    Pl.TermLevels.clear();
    auto accessOf = [&Pl](const PlanFactor &F) -> const PlanAccess & {
      for (const PlanAccess &A : Pl.Accesses)
        if (A.Tensor == F.Tensor && A.Stored == F.Query)
          return A;
      ETCH_ASSERT(false, "factor without access");
      return Pl.Accesses.front();
    };
    for (const PlanTerm &T : Q.Terms) {
      Shape TermAttrs = T.allAttrs();
      std::vector<PlanLevel> Levels;
      std::vector<std::vector<Attr>> Fixed(T.Factors.size()); // per factor
      double Cum = 1.0, TermCost = 0.0;
      for (Attr A : Order) {
        if (!shapeContains(TermAttrs, A))
          continue;
        PlanLevel L;
        L.A = A;
        L.Extent = Q.dimOf(A);
        L.Summed = contains(T.Summed, A);
        double Best = -1.0;
        size_t BestFI = T.Factors.size();
        std::vector<std::pair<size_t, double>> Locates; // (factor, charge)
        for (size_t FI = 0; FI < T.Factors.size(); ++FI) {
          const PlanFactor &F = T.Factors[FI];
          if (!contains(F.Query, A))
            continue;
          const PlanAccess &Acc = accessOf(F);
          const TensorStats &S = Q.Stats.at(F.Tensor);
          size_t Pos = 0;
          while (Acc.Used[Pos] != A)
            ++Pos;
          double Cand;
          if (Acc.Levels[Pos].K == LevelSpec::Dense) {
            Cand = static_cast<double>(L.Extent);
          } else {
            std::vector<Attr> &Fx = Fixed[FI];
            double Before = std::max(dpEstimate(S, F.Query, Fx), 1.0);
            std::vector<Attr> With = Fx;
            With.push_back(A);
            Cand = dpEstimate(S, F.Query, With) / Before;
          }
          if (Best < 0.0 || Cand < Best) {
            Best = Cand;
            BestFI = FI;
          }
          Locates.emplace_back(
              FI,
              locateCost(Acc.Levels[Pos].K, levelFor(S, F.Query, A), O));
          L.Drivers.push_back(Acc.bindName());
        }
        if (Best < 0.0)
          Best = static_cast<double>(L.Extent); // ↑ only: full extent.
        if (BestFI < T.Factors.size())
          L.Driver = accessOf(T.Factors[BestFI]).bindName();
        for (size_t FI = 0; FI < T.Factors.size(); ++FI)
          if (contains(T.Factors[FI].Query, A))
            Fixed[FI].push_back(A);
        L.Iters = Best;
        Cum *= Best;
        L.CumIters = Cum;
        TermCost += Cum;
        for (const auto &[FI, Loc] : Locates)
          if (FI != BestFI)
            TermCost += Cum * Loc;
        Levels.push_back(std::move(L));
      }
      Pl.StreamCost += TermCost;
      Pl.TermLevels.push_back(std::move(Levels));
    }
    // The access-pattern term (planner/indexing.h): gather and strided
    // visits priced from the per-level classification, so orders with
    // equal iteration counts split on how predictably they touch memory.
    Pl.AccessCost = analyzeIndexing(Q, Pl, O).AccessCost;
  };
  costTerms(P);

  // Hashed re-format enumeration: for every single-level as-stored
  // compressed access whose statistics permit a hashed copy, try the
  // hashed outer level and keep the cheapest combination. Masks ascend
  // and the comparison is strict, so ties prefer fewer (and earlier)
  // rehashes — fully deterministic.
  std::vector<size_t> HashCand;
  if (O.AllowHashed)
    for (size_t I = 0; I < P.Accesses.size(); ++I) {
      const PlanAccess &A = P.Accesses[I];
      if (!A.Transposed && A.Used.size() == 1 &&
          A.Levels[0].K == LevelSpec::Compressed &&
          Q.Stats.at(A.Tensor).CanHash)
        HashCand.push_back(I);
    }
  if (HashCand.size() > 4)
    HashCand.resize(4); // Cap the subset enumeration.
  for (size_t Mask = 1; Mask < (size_t(1) << HashCand.size()); ++Mask) {
    Plan Alt = P;
    Alt.RehashCost = 0.0;
    for (size_t B = 0; B < HashCand.size(); ++B) {
      if (!(Mask >> B & 1))
        continue;
      PlanAccess &A = Alt.Accesses[HashCand[B]];
      const TensorStats &S = Q.Stats.at(A.Tensor);
      A.Rehashed = true;
      A.Levels[0].K = LevelSpec::Hashed;
      A.Levels[0].TabSize = hashedTabSizeFor(static_cast<size_t>(S.Nnz));
      A.Levels[0].Policy =
          policyFor(LevelSpec::Hashed, S.Levels[0].Extent);
      Alt.RehashCost += O.HashBuildCostPerNnz * static_cast<double>(S.Nnz);
    }
    costTerms(Alt);
    if (Alt.cost() < P.cost())
      P = std::move(Alt);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Enumeration
//===----------------------------------------------------------------------===//

namespace {

double factorialCapped(size_t N, size_t Cap) {
  double F = 1.0;
  for (size_t I = 2; I <= N; ++I) {
    F *= static_cast<double>(I);
    if (F > static_cast<double>(Cap))
      return F;
  }
  return F;
}

/// Greedy order construction for large attribute sets: fix a starting
/// attribute, then repeatedly append the attribute with the smallest
/// estimated per-level iteration count over all terms.
std::vector<Attr> greedyOrder(const PlanQuery &Q, Attr Start) {
  Shape All = Q.allAttrs();
  std::vector<Attr> Order{Start};
  std::vector<Attr> Rest;
  for (Attr A : All)
    if (A != Start)
      Rest.push_back(A);
  while (!Rest.empty()) {
    size_t BestI = 0;
    double BestScore = -1.0;
    for (size_t I = 0; I < Rest.size(); ++I) {
      Attr A = Rest[I];
      double Score = 0.0;
      for (const PlanTerm &T : Q.Terms) {
        if (!shapeContains(T.allAttrs(), A))
          continue;
        double Cand = static_cast<double>(Q.dimOf(A));
        for (const PlanFactor &F : T.Factors) {
          if (!contains(F.Query, A))
            continue;
          const TensorStats &S = Q.Stats.at(F.Tensor);
          std::vector<Attr> Fx;
          for (Attr B : F.Query)
            if (contains(Order, B))
              Fx.push_back(B);
          double Before = std::max(dpEstimate(S, F.Query, Fx), 1.0);
          Fx.push_back(A);
          Cand = std::min(Cand, dpEstimate(S, F.Query, Fx) / Before);
        }
        Score += Cand;
      }
      if (BestScore < 0.0 || Score < BestScore) {
        BestScore = Score;
        BestI = I;
      }
    }
    Order.push_back(Rest[BestI]);
    Rest.erase(Rest.begin() + static_cast<long>(BestI));
  }
  return Order;
}

size_t transposeCount(const Plan &P) {
  size_t N = 0;
  for (const PlanAccess &A : P.Accesses)
    N += A.Transposed;
  return N;
}

std::string orderKey(const Plan &P) {
  std::string K;
  for (Attr A : P.Order)
    K += A.name() + "|";
  return K;
}

} // namespace

std::vector<Plan> enumeratePlans(const PlanQuery &Q, const PlanOptions &O) {
  Shape All = Q.allAttrs();
  std::vector<Plan> Plans;
  std::set<std::string> SeenOrders;
  auto tryOrder = [&](const std::vector<Attr> &Order) {
    auto P = planForOrder(Q, Order, O);
    if (!P)
      return;
    if (!SeenOrders.insert(orderKey(*P)).second)
      return;
    Plans.push_back(std::move(*P));
  };
  if (factorialCapped(All.size(), O.MaxOrders) <=
      static_cast<double>(O.MaxOrders)) {
    std::vector<Attr> Perm = All;
    do
      tryOrder(Perm);
    while (std::next_permutation(Perm.begin(), Perm.end()));
  } else {
    for (Attr Start : All)
      tryOrder(greedyOrder(Q, Start));
  }
  std::sort(Plans.begin(), Plans.end(), [](const Plan &A, const Plan &B) {
    if (A.cost() != B.cost())
      return A.cost() < B.cost();
    size_t TA = transposeCount(A), TB = transposeCount(B);
    if (TA != TB)
      return TA < TB;
    return orderKey(A) < orderKey(B);
  });
  return Plans;
}

std::optional<Plan> bestPlan(const PlanQuery &Q, const PlanOptions &O) {
  auto Plans = enumeratePlans(Q, O);
  if (Plans.empty())
    return std::nullopt;
  return Plans.front();
}

//===----------------------------------------------------------------------===//
// EXPLAIN
//===----------------------------------------------------------------------===//

std::string Plan::explain(const PlanQuery &Q) const {
  std::ostringstream OS;
  OS << "order:";
  if (Order.empty())
    OS << " (scalar)";
  for (size_t I = 0; I < Order.size(); ++I)
    OS << (I ? " < " : " ") << Order[I].name();
  OS << "\n";
  OS << "cost: " << fmtNum(cost()) << " = " << fmtNum(StreamCost)
     << " stream + " << fmtNum(TransposeCost) << " transpose + "
     << fmtNum(RehashCost) << " rehash + " << fmtNum(AccessCost)
     << " access\n";
  OS << "inputs:\n";
  for (const auto &[Name, S] : Q.Stats)
    OS << "  " << statsToString(S) << "\n";
  for (size_t TI = 0; TI < Q.Terms.size(); ++TI) {
    const PlanTerm &T = Q.Terms[TI];
    OS << "term " << TI + 1 << ":";
    for (Attr A : T.Summed)
      OS << " Σ" << A.name();
    for (size_t FI = 0; FI < T.Factors.size(); ++FI) {
      const PlanFactor &F = T.Factors[FI];
      OS << (FI || !T.Summed.empty() ? " " : " ") << (FI ? "· " : "")
         << F.Tensor << "(";
      for (size_t I = 0; I < F.Query.size(); ++I)
        OS << (I ? ", " : "") << F.Query[I].name();
      OS << ")";
    }
    OS << "\n";
    for (const PlanLevel &L : TermLevels[TI]) {
      OS << "  " << (L.Summed ? "Σ " : "for ") << L.A.name() << " ["
         << L.Extent << "]: iters " << fmtNum(L.Iters) << ", visits "
         << fmtNum(L.CumIters);
      if (L.Drivers.empty())
        OS << ", expand";
      else {
        OS << ", drivers";
        for (const std::string &D : L.Drivers)
          OS << " " << D;
      }
      OS << "\n";
    }
  }
  OS << "accesses:\n";
  for (const PlanAccess &A : Accesses) {
    OS << "  " << A.bindName() << ": ";
    for (size_t L = 0; L < A.Used.size(); ++L) {
      const LevelSpec &Spec = A.Levels[L];
      OS << (L ? " -> " : "")
         << (Spec.K == LevelSpec::Dense    ? "dense"
             : Spec.K == LevelSpec::Hashed ? "hashed"
                                           : "compressed")
         << "(" << A.Used[L].name();
      if (Spec.K != LevelSpec::Dense)
        OS << ", "
           << (Spec.Policy == SearchPolicy::Gallop   ? "gallop"
               : Spec.Policy == SearchPolicy::Binary ? "binary"
                                                     : "linear");
      OS << ")";
    }
    OS << (A.Transposed  ? "  [transposed copy]"
           : A.Rehashed ? "  [hashed copy]"
                         : "  [as stored]")
       << "\n";
  }
  // The indexing-map analysis is deterministic in the plan, so EXPLAIN
  // recomputes it rather than the plan storing it (the priced AccessCost
  // above was computed from the same classification).
  OS << analyzeIndexing(Q, *this).toString();
  return OS.str();
}

} // namespace etch

//===- planner/realize.h - Realizing a plan as expr + bindings -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a chosen `Plan` back into compilable artifacts. The global
/// attribute order is the interning order (core/attr.h), so a plan's order
/// is *realized* by interning a fresh attribute per query attribute, in
/// plan sequence, and rebuilding the query over them: each physical access
/// becomes a variable bound directly at its (sorted) fresh attributes —
/// no Rename nodes survive — and the sum-of-products structure is
/// reassembled with `mulExpand` / `Σ`. Transposed accesses get a `_T`
/// binding name; the caller supplies the matching level-permuted data
/// (e.g. via `transpose(CsrMatrix)`).
///
/// `installPlan` pushes the bindings and extents into a `LowerCtx`, which
/// is how the compiler frontend "accepts a planner-chosen order".
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_PLANNER_REALIZE_H
#define ETCH_PLANNER_REALIZE_H

#include "planner/plan.h"

namespace etch {

/// A plan made concrete: an expression over fresh attributes plus the
/// tensor bindings (formats chosen by the plan) it is typed under.
struct RealizedPlan {
  ExprPtr E;                         ///< Rewritten query; no renames.
  std::map<uint32_t, Attr> AttrMap;  ///< Query attr id -> fresh attr.
  std::vector<TensorBinding> Bindings; ///< One per physical access.
  std::vector<PlanAccess> Accesses;  ///< Copied from the plan (bind names,
                                     ///< transposed flags) for data binding.
  std::vector<std::pair<Attr, int64_t>> FreshDims; ///< Fresh attr extents.

  /// The fresh attribute realizing query attribute \p A.
  Attr fresh(Attr A) const;
};

/// Realizes \p P for \p Q. \p Tag namespaces the fresh attribute names
/// ("<tag>_<attr>_<n>") so repeated realizations never collide.
RealizedPlan realizePlan(const PlanQuery &Q, const Plan &P,
                         const std::string &Tag);

/// Installs the realized bindings and extents into \p Ctx; afterwards
/// `compileExpr(Ctx, R.E, ...)` compiles the planned kernel. The caller
/// still binds the actual arrays (transposed where Accesses say so) into
/// the VM memory under each access's `bindName()`.
void installPlan(LowerCtx &Ctx, const RealizedPlan &R);

} // namespace etch

#endif // ETCH_PLANNER_REALIZE_H

//===- planner/indexing.cpp - Access indexing maps and schedules ----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "planner/indexing.h"

#include "support/assert.h"
#include "support/simd.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace etch {

const char *accessPatternName(AccessPattern P) {
  switch (P) {
  case AccessPattern::Sequential:
    return "sequential";
  case AccessPattern::Strided:
    return "strided";
  case AccessPattern::Gather:
    break;
  }
  return "gather";
}

namespace {

std::string fmtNum(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3g", X);
  return Buf;
}

const char *kindName(LevelSpec::Kind K) {
  switch (K) {
  case LevelSpec::Dense:
    return "dense";
  case LevelSpec::Hashed:
    return "hashed";
  case LevelSpec::Compressed:
    break;
  }
  return "compressed";
}

/// The plan level for attribute \p A of term \p TI, or nullptr when the
/// term does not iterate it.
const PlanLevel *levelAt(const Plan &P, size_t TI, Attr A) {
  for (const PlanLevel &L : P.TermLevels[TI])
    if (L.A == A)
      return &L;
  return nullptr;
}

/// The storage kind the *driving* access exposes at plan level \p L: the
/// coordinates every located access at this loop must follow. Expand-only
/// levels enumerate their extent, which is dense iteration.
LevelSpec::Kind driverKind(const Plan &P, const PlanLevel &L) {
  if (L.Driver.empty())
    return LevelSpec::Dense;
  for (const PlanAccess &A : P.Accesses) {
    if (A.bindName() != L.Driver)
      continue;
    for (size_t I = 0; I < A.Used.size(); ++I)
      if (A.Used[I] == L.A)
        return A.Levels[I].K;
  }
  ETCH_ASSERT(false, "indexing: driver access missing its level");
  return LevelSpec::Dense;
}

} // namespace

const AccessIndexing *IndexingInfo::access(const std::string &BindName) const {
  for (const AccessIndexing &A : Accesses)
    if (A.BindName == BindName)
      return &A;
  return nullptr;
}

IndexingInfo analyzeIndexing(const PlanQuery &Q, const Plan &P,
                             const PlanOptions &O) {
  IndexingInfo Info;
  double GatherVisits = 0.0, StridedVisits = 0.0;

  for (const PlanAccess &Acc : P.Accesses) {
    // The term whose loop nest this access participates in (accesses are
    // deduplicated per (tensor, attribute mapping), so the classification
    // is identical wherever the factor recurs).
    size_t TI = Q.Terms.size();
    for (size_t T = 0; T < Q.Terms.size() && TI == Q.Terms.size(); ++T)
      for (const PlanFactor &F : Q.Terms[T].Factors)
        if (F.Tensor == Acc.Tensor && F.Query == Acc.Stored) {
          TI = T;
          break;
        }
    ETCH_ASSERT(TI < Q.Terms.size(), "indexing: access without a term");

    AccessIndexing AI;
    AI.BindName = Acc.bindName();

    // The symbolic map, XLA-style: the term's loop variables (plan order)
    // on the left, this access's used coordinates on the right.
    Shape TermAttrs = Q.Terms[TI].allAttrs();
    std::ostringstream Map;
    Map << "(";
    bool First = true;
    for (Attr A : P.Order) {
      if (!shapeContains(TermAttrs, A))
        continue;
      Map << (First ? "" : ", ") << A.name();
      First = false;
    }
    Map << ") -> (";
    for (size_t L = 0; L < Acc.Used.size(); ++L)
      Map << (L ? ", " : "") << Acc.Used[L].name();
    Map << ")";
    AI.Map = Map.str();

    for (size_t LI = 0; LI < Acc.Used.size(); ++LI) {
      LevelIndexing LX;
      LX.A = Acc.Used[LI];
      LX.Kind = Acc.Levels[LI].K;
      const PlanLevel *PL = levelAt(P, TI, LX.A);
      ETCH_ASSERT(PL, "indexing: access level outside its term's loops");
      LX.Driving = !PL->Driver.empty() && PL->Driver == AI.BindName;
      if (LX.Driving) {
        // Drives the intersection: walks its own pos/crd/val storage
        // monotonically, whatever the level kind.
        LX.Pattern = AccessPattern::Sequential;
      } else if (LX.Kind == LevelSpec::Dense) {
        // Located dense level: the driver supplies the coordinate. A
        // compressed/hashed driver jumps through its crd array, so the
        // located offsets are data-dependent — a gather. A dense driver
        // advances the coordinate by one per visit; the located offset
        // then moves by the product of the inner dense extents (> 1 for
        // an outer level of dense value storage — a constant stride), or
        // walks an inner pos array at unit stride.
        if (driverKind(P, *PL) != LevelSpec::Dense) {
          LX.Pattern = AccessPattern::Gather;
        } else {
          int64_t Stride = 1;
          bool AllDenseInner = true;
          for (size_t In = LI + 1; In < Acc.Used.size(); ++In) {
            if (Acc.Levels[In].K != LevelSpec::Dense)
              AllDenseInner = false;
            else
              Stride *= Q.dimOf(Acc.Used[In]);
          }
          LX.Stride = AllDenseInner ? Stride : 1;
          LX.Pattern = LX.Stride > 1 ? AccessPattern::Strided
                                     : AccessPattern::Sequential;
        }
      } else {
        // Located compressed level: every visit searches its fiber for
        // the driver's coordinate. Located hashed level: every visit
        // probes the table. Both touch data-dependent positions.
        LX.Pattern = AccessPattern::Gather;
      }

      switch (LX.Pattern) {
      case AccessPattern::Gather:
        GatherVisits += PL->CumIters;
        break;
      case AccessPattern::Strided:
        StridedVisits += PL->CumIters;
        break;
      case AccessPattern::Sequential:
        break;
      }
      AI.Levels.push_back(LX);
    }
    Info.Accesses.push_back(std::move(AI));
  }

  Info.AccessCost =
      O.GatherVisitCost * GatherVisits + O.StridedVisitCost * StridedVisits;
  return Info;
}

std::string IndexingInfo::toString() const {
  std::ostringstream OS;
  OS << "indexing:\n";
  for (const AccessIndexing &A : Accesses) {
    OS << "  " << A.BindName << ": " << A.Map << ";";
    for (size_t L = 0; L < A.Levels.size(); ++L) {
      const LevelIndexing &LX = A.Levels[L];
      OS << (L ? ", " : " ") << LX.A.name() << " " << kindName(LX.Kind)
         << " " << accessPatternName(LX.Pattern);
      if (LX.Pattern == AccessPattern::Strided)
        OS << "(x" << LX.Stride << ")";
      if (LX.Driving)
        OS << " [drives]";
    }
    OS << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Kernel schedule selection
//===----------------------------------------------------------------------===//

KernelSchedule chooseSchedule(const PlanQuery &Q, const Plan &P,
                              const IndexingInfo &Info,
                              const ScheduleOptions &SO) {
  KernelSchedule KS;
  int64_t Width = SO.SimdWidth > 0 ? SO.SimdWidth : simdWidth();
  std::ostringstream Why;

  if (P.Order.empty()) {
    KS.Reason = "scalar plan: nothing to schedule";
    return KS;
  }

  // SIMD on the innermost loop: legal for bit-identity only when each lane
  // is an independent output — the attribute must be free (a summed
  // innermost loop is a serial accumulation chain; splitting it into lanes
  // reassociates fp addition). Profitable only when every located access
  // at the level streams dense values sequentially (a gather would
  // serialize the vector anyway) and the extent covers a vector.
  Attr Inner = P.Order.back();
  bool InnerFree = false, InnerSeen = false;
  for (const PlanTerm &T : Q.Terms) {
    if (!shapeContains(T.allAttrs(), Inner))
      continue;
    InnerSeen = true;
    InnerFree = !std::count(T.Summed.begin(), T.Summed.end(), Inner);
  }
  bool InnerDenseSeq = InnerSeen;
  for (const AccessIndexing &A : Info.Accesses)
    for (const LevelIndexing &LX : A.Levels)
      if (LX.A == Inner &&
          !(LX.Kind == LevelSpec::Dense &&
            LX.Pattern == AccessPattern::Sequential))
        InnerDenseSeq = false;
  int64_t InnerExtent = Q.dimOf(Inner);
  if (Width > 1 && InnerSeen && InnerFree && InnerDenseSeq &&
      InnerExtent >= Width) {
    KS.Simd = true;
    Why << "simd: inner " << Inner.name() << " free, dense sequential, "
        << InnerExtent << " >= " << Width << " lanes";
  } else {
    Why << "scalar: inner " << Inner.name()
        << (!InnerFree        ? " is a reduction"
            : !InnerDenseSeq  ? " has non-sequential access"
            : Width <= 1      ? " (simd compiled out)"
                              : " too narrow");
  }

  // Tiling: find the widest gathered dense operand. Its working set is
  // extent × sizeof(double); once that spills L1 the gathers miss, and
  // bounding the gathered coordinate range to a tile restores residency.
  // The tile is sized so the blocked slice fills half of L1 (the other
  // half holds the driving stream's own arrays).
  int64_t WorstGather = 0;
  std::string WorstName;
  for (const AccessIndexing &A : Info.Accesses)
    for (const LevelIndexing &LX : A.Levels)
      if (LX.Pattern == AccessPattern::Gather &&
          LX.Kind == LevelSpec::Dense) {
        int64_t Bytes = Q.dimOf(LX.A) * static_cast<int64_t>(sizeof(double));
        if (Bytes > WorstGather) {
          WorstGather = Bytes;
          WorstName = A.BindName + "(" + LX.A.name() + ")";
        }
      }
  // The output workspace scatters too: a free attribute with a summed loop
  // *outside* it is rewritten once per iteration of that reduction (the
  // linear-combination matmul's W[k] += ... restarts k for every j), so
  // the whole dense output row is a gathered operand. A free attribute
  // with no enclosing reduction is written monotonically as its loop
  // advances — streaming, never a reason to tile.
  for (const PlanTerm &T : Q.Terms) {
    bool SummedSeen = false;
    for (Attr A : P.Order) {
      if (std::count(T.Summed.begin(), T.Summed.end(), A)) {
        SummedSeen = true;
        continue;
      }
      if (!SummedSeen || !shapeContains(T.Free, A))
        continue;
      int64_t Bytes = Q.dimOf(A) * static_cast<int64_t>(sizeof(double));
      if (Bytes > WorstGather) {
        WorstGather = Bytes;
        WorstName = std::string("output(") + A.name() + ")";
      }
    }
  }
  if (WorstGather > SO.L1Bytes) {
    KS.Tiled = true;
    KS.ColTile = std::max<int64_t>(
        SO.L1Bytes / 2 / static_cast<int64_t>(sizeof(double)), 1);
    Why << "; tiled: " << WorstName << " gathers "
        << fmtNum(static_cast<double>(WorstGather)) << "B > L1 "
        << fmtNum(static_cast<double>(SO.L1Bytes)) << "B, tile "
        << KS.ColTile;
  } else if (WorstGather > 0) {
    Why << "; untiled: gathered operand "
        << fmtNum(static_cast<double>(WorstGather)) << "B fits L1";
  } else {
    Why << "; untiled: no gathered dense operand";
  }

  KS.Reason = Why.str();
  return KS;
}

} // namespace etch

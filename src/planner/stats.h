//===- planner/stats.h - Input statistics for the planner ------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tensor statistics the cost model consumes: total nonzeros plus, for
/// every storage level, the level's kind (dense/compressed/hashed), the
/// attribute extent, the number of *distinct* coordinates observed at that
/// attribute, and the average branching factor (children per distinct
/// parent prefix).
///
/// Distinct counts are per attribute, independent of the level's position
/// in the hierarchy, which makes every cost derived from them invariant
/// under attribute renaming and level permutation — the planner can score
/// an ordering without materializing the transposed tensor (the same idea
/// as cardinality estimation from column statistics in relational
/// optimizers, specialized to the level-format vocabulary of Section 7.3).
///
/// Builders exist for every owning format in src/formats/ and for raw
/// coordinate tuples (used by the fuzzer's entry lists and the relational
/// edge lists).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_PLANNER_STATS_H
#define ETCH_PLANNER_STATS_H

#include "compiler/frontend.h"
#include "formats/csf.h"
#include "formats/levels.h"
#include "formats/matrices.h"
#include "formats/vectors.h"

#include <cstdint>
#include <string>
#include <vector>

namespace etch {

/// Statistics for one storage level of a bound tensor.
struct LevelStat {
  Attr A;                                      ///< Attribute of this level.
  LevelSpec::Kind Kind = LevelSpec::Compressed; ///< Storage kind as bound.
  int64_t Extent = 0;   ///< Index-set size (the attribute's dimension).
  int64_t Distinct = 0; ///< Distinct coordinates observed at this attribute.
  double AvgFill = 0.0; ///< Mean children per distinct parent prefix.
};

/// Statistics for one bound tensor. Levels follow the stored hierarchy
/// order (outermost first); `Shp` of the matching TensorBinding.
struct TensorStats {
  std::string Name;
  int64_t Nnz = 0;
  std::vector<LevelStat> Levels;

  /// Whether the planner may schedule a transposed (level-permuted) copy of
  /// this tensor. Set by the builders for the two-level matrix formats
  /// (CSR/DCSR, via `transpose` / `fromCoo`); deeper formats would need a
  /// re-pack the repo does not provide yet.
  bool CanTranspose = false;

  /// Whether the planner may re-format this tensor's outer level as a
  /// hashed level (formats/levels.h): building the coordinate probe table
  /// is one pass over the entries. Set for single-level formats only
  /// (hashed levels are outermost-only).
  bool CanHash = false;

  /// Stored attribute sequence, outermost first.
  Shape shape() const;

  /// Distinct count for attribute \p A, or 0 if the tensor lacks it.
  int64_t distinctOf(Attr A) const;

  /// The level stat for \p A, or nullptr.
  const LevelStat *level(Attr A) const;
};

/// Core builder: statistics from distinct, in-extent coordinate tuples
/// (one per stored nonzero, each aligned with \p LevelAttrs). \p Kinds and
/// \p Extents are per level. Tuples need not be sorted.
TensorStats statsFromTuples(std::string Name,
                            const std::vector<Attr> &LevelAttrs,
                            const std::vector<LevelSpec::Kind> &Kinds,
                            const std::vector<int64_t> &Extents,
                            const std::vector<Tuple> &Tuples);

/// Format-specific builders, mirroring the bind*/``*Binding`` helpers of
/// compiler/frontend.h.
template <typename V>
TensorStats statsOfCsr(std::string Name, const CsrMatrix<V> &M, Attr Row,
                       Attr Col) {
  std::vector<Tuple> Tuples;
  Tuples.reserve(M.nnz());
  for (Idx R = 0; R < M.NumRows; ++R)
    for (size_t Q = M.Pos[static_cast<size_t>(R)];
         Q < M.Pos[static_cast<size_t>(R) + 1]; ++Q)
      Tuples.push_back({R, M.Crd[Q]});
  TensorStats S = statsFromTuples(
      std::move(Name), {Row, Col}, {LevelSpec::Dense, LevelSpec::Compressed},
      {M.NumRows, M.NumCols}, Tuples);
  S.CanTranspose = true;
  return S;
}

template <typename V>
TensorStats statsOfDcsr(std::string Name, const DcsrMatrix<V> &M, Attr Row,
                        Attr Col) {
  std::vector<Tuple> Tuples;
  Tuples.reserve(M.nnz());
  for (size_t RQ = 0; RQ < M.RowCrd.size(); ++RQ)
    for (size_t Q = M.Pos[RQ]; Q < M.Pos[RQ + 1]; ++Q)
      Tuples.push_back({M.RowCrd[RQ], M.Crd[Q]});
  TensorStats S = statsFromTuples(std::move(Name), {Row, Col},
                                  {LevelSpec::Compressed, LevelSpec::Compressed},
                                  {M.NumRows, M.NumCols}, Tuples);
  S.CanTranspose = true;
  return S;
}

template <typename V>
TensorStats statsOfSparseVector(std::string Name, const SparseVector<V> &X,
                                Attr A) {
  std::vector<Tuple> Tuples;
  Tuples.reserve(X.Crd.size());
  for (Idx C : X.Crd)
    Tuples.push_back({C});
  TensorStats S = statsFromTuples(std::move(Name), {A},
                                  {LevelSpec::Compressed}, {X.Size}, Tuples);
  S.CanHash = true;
  return S;
}

template <typename V>
TensorStats statsOfHashedVector(std::string Name, const HashedVector<V> &X,
                                Attr A) {
  std::vector<Tuple> Tuples;
  Tuples.reserve(X.Crd.size());
  for (Idx C : X.Crd)
    Tuples.push_back({C});
  TensorStats S = statsFromTuples(std::move(Name), {A}, {LevelSpec::Hashed},
                                  {X.Size}, Tuples);
  S.CanHash = true;
  return S;
}

template <typename V>
TensorStats statsOfDenseVector(std::string Name, const DenseVector<V> &X,
                               Attr A) {
  std::vector<Tuple> Tuples;
  for (size_t I = 0; I < X.Val.size(); ++I)
    if (X.Val[I] != V())
      Tuples.push_back({static_cast<Idx>(I)});
  return statsFromTuples(std::move(Name), {A}, {LevelSpec::Dense}, {X.Size},
                         Tuples);
}

template <typename V>
TensorStats statsOfCsf3(std::string Name, const CsfTensor3<V> &T, Attr I,
                        Attr J, Attr K) {
  std::vector<Tuple> Tuples;
  Tuples.reserve(T.Val.size());
  for (size_t P0 = 0; P0 < T.Crd0.size(); ++P0)
    for (size_t P1 = T.Pos0[P0]; P1 < T.Pos0[P0 + 1]; ++P1)
      for (size_t P2 = T.Pos1[P1]; P2 < T.Pos1[P1 + 1]; ++P2)
        Tuples.push_back({T.Crd0[P0], T.Crd1[P1], T.Crd2[P2]});
  return statsFromTuples(
      std::move(Name), {I, J, K},
      {LevelSpec::Compressed, LevelSpec::Compressed, LevelSpec::Compressed},
      {T.DimI, T.DimJ, T.DimK}, Tuples);
}

/// Renders one tensor's statistics on a single line, for EXPLAIN and the
/// CLI ("A: csr(i:10000, j:10000) nnz 200000 distinct(i)=9998 ...").
std::string statsToString(const TensorStats &S);

} // namespace etch

#endif // ETCH_PLANNER_STATS_H

//===- planner/stats.cpp - Input statistics for the planner ---------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "planner/stats.h"

#include "support/assert.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace etch {

Shape TensorStats::shape() const {
  Shape S;
  S.reserve(Levels.size());
  for (const LevelStat &L : Levels)
    S.push_back(L.A);
  return S;
}

int64_t TensorStats::distinctOf(Attr A) const {
  const LevelStat *L = level(A);
  return L ? L->Distinct : 0;
}

const LevelStat *TensorStats::level(Attr A) const {
  for (const LevelStat &L : Levels)
    if (L.A == A)
      return &L;
  return nullptr;
}

TensorStats statsFromTuples(std::string Name,
                            const std::vector<Attr> &LevelAttrs,
                            const std::vector<LevelSpec::Kind> &Kinds,
                            const std::vector<int64_t> &Extents,
                            const std::vector<Tuple> &Tuples) {
  const size_t Order = LevelAttrs.size();
  ETCH_ASSERT(Kinds.size() == Order && Extents.size() == Order,
              "per-level vectors must agree in length");
  TensorStats S;
  S.Name = std::move(Name);
  S.Nnz = static_cast<int64_t>(Tuples.size());
  // Distinct coordinates per attribute and distinct prefixes per depth, the
  // latter feeding the AvgFill branching factor.
  std::vector<std::set<Idx>> PerAttr(Order);
  std::vector<std::set<Tuple>> Prefixes(Order);
  for (const Tuple &T : Tuples) {
    ETCH_ASSERT(T.size() == Order, "tuple arity mismatch");
    Tuple Prefix;
    for (size_t L = 0; L < Order; ++L) {
      PerAttr[L].insert(T[L]);
      Prefix.push_back(T[L]);
      Prefixes[L].insert(Prefix);
    }
  }
  for (size_t L = 0; L < Order; ++L) {
    LevelStat St;
    St.A = LevelAttrs[L];
    St.Kind = Kinds[L];
    St.Extent = Extents[L];
    St.Distinct = static_cast<int64_t>(PerAttr[L].size());
    const double Parents =
        L == 0 ? 1.0 : static_cast<double>(Prefixes[L - 1].size());
    St.AvgFill =
        Parents == 0.0 ? 0.0 : static_cast<double>(Prefixes[L].size()) / Parents;
    S.Levels.push_back(St);
  }
  return S;
}

std::string statsToString(const TensorStats &S) {
  std::ostringstream OS;
  OS << S.Name << ":";
  for (const LevelStat &L : S.Levels)
    OS << " "
       << (L.Kind == LevelSpec::Dense    ? "dense"
           : L.Kind == LevelSpec::Hashed ? "hashed"
                                         : "compressed")
       << "("
       << L.A.name() << ":" << L.Extent << ", distinct " << L.Distinct
       << ")";
  OS << " nnz " << S.Nnz;
  return OS.str();
}

} // namespace etch

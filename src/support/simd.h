//===- support/simd.h - Portable SIMD for dense-value tails ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal portable vector type for the dense-value tail loops of the
/// tiled kernels (baselines/etch_kernels.h), built on the GCC/Clang vector
/// extensions. Lane ops are ordinary IEEE-754 scalar ops applied per lane,
/// so a vectorized loop whose lanes are *independent outputs* produces bit
/// for bit the result of its scalar original — the only shape the schedule
/// selector (planner/indexing.h) ever vectorizes. Reductions are never
/// vectorized: folding an accumulation chain across lanes would
/// reassociate fp addition.
///
/// Compile-time gated: `-DETCH_SIMD_DISABLED` (the CMake `ETCH_SIMD=OFF`
/// leg) or a compiler without the extension drops to `simdWidth() == 1`,
/// and every caller's scalar fallback loop — which is always compiled and
/// covers the remainder lanes anyway — handles the whole range. The CI
/// build matrix cross-checks the two configurations bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_SIMD_H
#define ETCH_SUPPORT_SIMD_H

#include <cstdint>
#include <cstring>

namespace etch {

#if !defined(ETCH_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__))
#define ETCH_SIMD_F64 1

// The 256-bit type changes the function-call ABI on targets without AVX;
// every simd helper here is inline and every caller keeps the vectors in
// registers or on its own stack, so the ABI note is moot. (GCC's -Wpsabi
// fires at each instantiation regardless of where the type is declared.)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

/// Four f64 lanes (256 bits): wide enough to load AVX when the target has
/// it, and the compiler splits it into pairs of SSE/NEON ops when not —
/// per-lane semantics are identical either way.
typedef double F64x4 __attribute__((vector_size(32), aligned(8)));

/// Compiled-in lane count of the portable vector type.
constexpr int64_t simdWidth() { return 4; }

/// Unaligned load/store (the kernels' row pointers have no alignment
/// guarantee; memcpy compiles to the unaligned vector move).
inline F64x4 simdLoad(const double *P) {
  F64x4 V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}

inline void simdStore(double *P, F64x4 V) { std::memcpy(P, &V, sizeof(V)); }

inline F64x4 simdBroadcast(double X) { return F64x4{X, X, X, X}; }

#else
#define ETCH_SIMD_F64 0

constexpr int64_t simdWidth() { return 1; }

#endif

/// Function multi-versioning for the hot tiled-kernel loops: compile the
/// annotated function once for the baseline target and once for AVX2,
/// dispatched by glibc's ifunc resolver at load time. AVX2 widens the
/// F64x4 ops above to real 256-bit instructions (the baseline splits them
/// into SSE pairs). The clone list deliberately excludes FMA targets: a
/// contracted multiply-add rounds once instead of twice, which would break
/// the bit-identity contract between scalar and vector schedules.
#if ETCH_SIMD_F64 && defined(__x86_64__) && defined(__GNUC__) &&               \
    !defined(__clang__) && !defined(__SANITIZE_ADDRESS__) &&                   \
    !defined(__SANITIZE_THREAD__)
#define ETCH_TARGET_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define ETCH_TARGET_CLONES
#endif

/// Human-readable description of the compiled-in SIMD configuration, for
/// bench host metadata ("vector_ext f64x4" / "scalar").
inline const char *simdDescription() {
#if ETCH_SIMD_F64
  return "vector_ext f64x4";
#else
  return "scalar";
#endif
}

} // namespace etch

#endif // ETCH_SUPPORT_SIMD_H

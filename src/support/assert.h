//===- support/assert.h - Assertion helpers --------------------*- C++ -*-===//
//
// Part of the etch project, a C++ reproduction of "Indexed Streams: A Formal
// Intermediate Representation for Fused Contraction Programs" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion macros used throughout the library. Library code never throws;
/// invariant violations abort with a message, mirroring LLVM's style.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_ASSERT_H
#define ETCH_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace etch {

/// Prints a fatal-error message and aborts. Used by the macros below; call
/// directly for invariant violations that must fire even in release builds.
[[noreturn]] inline void fatalError(const char *File, int Line,
                                    const char *Msg) {
  std::fprintf(stderr, "etch fatal error: %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace etch

/// Checks an invariant in all build modes. Unlike <cassert>, this is never
/// compiled out: the library's correctness arguments (lawfulness, strict
/// monotonicity) lean on these checks during testing.
#define ETCH_ASSERT(Cond, Msg)                                                 \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::etch::fatalError(__FILE__, __LINE__, Msg);                             \
  } while (false)

/// Marks a point in the program that must be unreachable.
#define ETCH_UNREACHABLE(Msg) ::etch::fatalError(__FILE__, __LINE__, Msg)

#endif // ETCH_SUPPORT_ASSERT_H

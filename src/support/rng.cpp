//===- support/rng.cpp - Deterministic random number generation ----------===//

#include "support/rng.h"

#include "support/assert.h"

#include <algorithm>
#include <unordered_set>

using namespace etch;

uint64_t Rng::nextBelow(uint64_t Bound) {
  ETCH_ASSERT(Bound > 0, "nextBelow bound must be positive");
  // Lemire's method: multiply into a 128-bit product and reject the small
  // biased region at the bottom of each residue class.
  uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  uint64_t Low = static_cast<uint64_t>(M);
  if (Low < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (Low < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      Low = static_cast<uint64_t>(M);
    }
  }
  return static_cast<uint64_t>(M >> 64);
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  ETCH_ASSERT(Lo <= Hi, "nextInRange requires Lo <= Hi");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

std::vector<uint64_t> Rng::sampleDistinctSorted(uint64_t Count,
                                                uint64_t Universe) {
  ETCH_ASSERT(Count <= Universe, "cannot sample more values than universe");
  // Floyd's algorithm: for J in [Universe-Count, Universe), insert a random
  // T in [0, J]; on collision insert J itself. Every Count-subset is equally
  // likely.
  std::unordered_set<uint64_t> Chosen;
  Chosen.reserve(Count * 2);
  for (uint64_t J = Universe - Count; J < Universe; ++J) {
    uint64_t T = nextBelow(J + 1);
    if (!Chosen.insert(T).second)
      Chosen.insert(J);
  }
  std::vector<uint64_t> Result(Chosen.begin(), Chosen.end());
  std::sort(Result.begin(), Result.end());
  return Result;
}

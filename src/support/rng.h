//===- support/rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) plus sampling helpers. All data
/// generators in the repository (synthetic tensors, TPC-H tables, property
/// tests) draw from this so that every experiment is reproducible from a
/// seed.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_RNG_H
#define ETCH_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace etch {

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG with a one-word state.
/// Vigna's reference construction; passes BigCrush when used as a stream.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Returns \p Count distinct integers sampled uniformly from [0, Universe),
  /// in increasing order. Requires Count <= Universe. Uses Floyd's algorithm
  /// so the cost is O(Count log Count) regardless of Universe.
  std::vector<uint64_t> sampleDistinctSorted(uint64_t Count,
                                             uint64_t Universe);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (std::size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

private:
  uint64_t State;
};

} // namespace etch

#endif // ETCH_SUPPORT_RNG_H

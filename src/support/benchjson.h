//===- support/benchjson.h - Machine-readable bench telemetry --*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON emitter for the figure-sweep benchmark drivers (no external
/// dependencies). Each driver collects `{bench, config, threads,
/// best_seconds}` rows and, when run with `--json <path>`, writes them as a
/// JSON object `{"host": {...}, "rows": [...]}` so the performance
/// trajectory is machine-trackable across PRs; the checked-in
/// `bench/results/BENCH_*.json` files are produced this way. The host
/// block records the cpu model, core count, and compiled-in SIMD
/// configuration, so checked-in trajectories from different recording
/// machines are comparable. Also hosts the shared `--json` / `--threads`
/// argv parsing used by those drivers.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_BENCHJSON_H
#define ETCH_SUPPORT_BENCHJSON_H

#include <string>
#include <vector>

namespace etch {

/// Accumulates benchmark result rows and renders them as a JSON array.
class BenchJson {
public:
  /// Appends one row.
  void add(const std::string &Bench, const std::string &Config, int Threads,
           double BestSeconds);

  /// Appends one row carrying the planner's cost-model estimate for the
  /// configuration, so predicted cost lands next to measured time in the
  /// tracked JSON ("planner_cost").
  void add(const std::string &Bench, const std::string &Config, int Threads,
           double BestSeconds, double PlannerCost);

  /// Appends one row additionally carrying the access-pattern term of the
  /// cost ("planner_access_cost", planner/indexing.h) — the component
  /// that drives tiled-vs-plain schedule selection.
  void add(const std::string &Bench, const std::string &Config, int Threads,
           double BestSeconds, double PlannerCost, double AccessCost);

  size_t size() const { return Rows.size(); }

  /// Renders `{"host": {...}, "rows": [...]}`.
  std::string toJson() const;

  /// The host-metadata block alone (cpu model from /proc/cpuinfo, core
  /// count, compiled-in SIMD width) as a JSON object literal.
  static std::string hostJson();

  /// Writes toJson() to \p Path; returns false (with a message on stderr)
  /// if the file cannot be opened.
  bool writeFile(const std::string &Path) const;

private:
  struct Row {
    std::string Bench, Config;
    int Threads;
    double BestSeconds;
    double PlannerCost;
    bool HasCost;
    double AccessCost;
    bool HasAccessCost;
  };
  std::vector<Row> Rows;
};

/// Options common to the figure-sweep drivers.
struct BenchOptions {
  std::string JsonPath;             ///< Empty: no JSON output.
  std::vector<int> Threads = {1, 2, 4, 8}; ///< Thread counts to sweep.
  int Reps = 3;                     ///< Repetitions per timeBest sample.
};

/// Parses `--json <path>`, `--threads <comma-list>`, and `--reps <n>` from
/// argv; unknown arguments abort with a usage message.
BenchOptions parseBenchArgs(int Argc, char **Argv);

} // namespace etch

#endif // ETCH_SUPPORT_BENCHJSON_H

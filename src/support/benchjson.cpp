//===- support/benchjson.cpp - Machine-readable bench telemetry -----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "support/benchjson.h"

#include "support/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace etch {

namespace {

/// Escapes a string for inclusion in a JSON string literal. Bench/config
/// names are plain ASCII identifiers; this still handles quotes,
/// backslashes, and control characters for safety.
std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

void BenchJson::add(const std::string &Bench, const std::string &Config,
                    int Threads, double BestSeconds) {
  Rows.push_back(
      {Bench, Config, Threads, BestSeconds, 0.0, false, 0.0, false});
}

void BenchJson::add(const std::string &Bench, const std::string &Config,
                    int Threads, double BestSeconds, double PlannerCost) {
  Rows.push_back(
      {Bench, Config, Threads, BestSeconds, PlannerCost, true, 0.0, false});
}

void BenchJson::add(const std::string &Bench, const std::string &Config,
                    int Threads, double BestSeconds, double PlannerCost,
                    double AccessCost) {
  Rows.push_back({Bench, Config, Threads, BestSeconds, PlannerCost, true,
                  AccessCost, true});
}

std::string BenchJson::hostJson() {
  std::string Cpu = "unknown";
  if (std::FILE *F = std::fopen("/proc/cpuinfo", "r")) {
    char Line[512];
    while (std::fgets(Line, sizeof(Line), F)) {
      if (std::strncmp(Line, "model name", 10) != 0)
        continue;
      const char *Colon = std::strchr(Line, ':');
      if (Colon) {
        Cpu = Colon + 1;
        while (!Cpu.empty() && (Cpu.front() == ' ' || Cpu.front() == '\t'))
          Cpu.erase(Cpu.begin());
        while (!Cpu.empty() && (Cpu.back() == '\n' || Cpu.back() == ' '))
          Cpu.pop_back();
      }
      break;
    }
    std::fclose(F);
  }
  unsigned Cores = std::thread::hardware_concurrency();
  return "{\"cpu\": \"" + escapeJson(Cpu) +
         "\", \"cores\": " + std::to_string(Cores ? Cores : 1) +
         ", \"simd\": \"" + simdDescription() +
         "\", \"simd_width\": " + std::to_string(simdWidth()) + "}";
}

std::string BenchJson::toJson() const {
  std::string Out = "{\"host\": " + hostJson() + ",\n \"rows\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.9g", R.BestSeconds);
    Out += "  {\"bench\": \"" + escapeJson(R.Bench) + "\", \"config\": \"" +
           escapeJson(R.Config) +
           "\", \"threads\": " + std::to_string(R.Threads) +
           ", \"best_seconds\": " + Buf;
    if (R.HasCost) {
      std::snprintf(Buf, sizeof(Buf), "%.9g", R.PlannerCost);
      Out += std::string(", \"planner_cost\": ") + Buf;
    }
    if (R.HasAccessCost) {
      std::snprintf(Buf, sizeof(Buf), "%.9g", R.AccessCost);
      Out += std::string(", \"planner_access_cost\": ") + Buf;
    }
    Out += "}";
    Out += I + 1 < Rows.size() ? ",\n" : "\n";
  }
  Out += " ]}\n";
  return Out;
}

bool BenchJson::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "benchjson: cannot open %s for writing\n",
                 Path.c_str());
    return false;
  }
  std::string S = toJson();
  std::fwrite(S.data(), 1, S.size(), F);
  std::fclose(F);
  return true;
}

BenchOptions parseBenchArgs(int Argc, char **Argv) {
  BenchOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      Opts.JsonPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc) {
      Opts.Threads.clear();
      for (const char *P = Argv[++I]; *P;) {
        char *End = nullptr;
        long T = std::strtol(P, &End, 10);
        if (End == P || T <= 0)
          break;
        Opts.Threads.push_back(static_cast<int>(T));
        P = *End == ',' ? End + 1 : End;
      }
      if (Opts.Threads.empty()) {
        std::fprintf(stderr, "%s: bad --threads list\n", Argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(Argv[I], "--reps") == 0 && I + 1 < Argc) {
      Opts.Reps = static_cast<int>(std::strtol(Argv[++I], nullptr, 10));
      if (Opts.Reps <= 0) {
        std::fprintf(stderr, "%s: bad --reps count\n", Argv[0]);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--threads <t1,t2,...>] "
                   "[--reps <n>]\n",
                   Argv[0]);
      std::exit(2);
    }
  }
  return Opts;
}

} // namespace etch

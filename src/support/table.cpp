//===- support/table.cpp - Aligned result-table printing -----------------===//

#include "support/table.h"

#include <cinttypes>
#include <cstdio>

using namespace etch;

ResultTable::ResultTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void ResultTable::addRow(std::vector<std::string> Cells) {
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

std::string ResultTable::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string ResultTable::num(int64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, Value);
  return Buf;
}

std::string ResultTable::toString() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto appendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      Out += Row[C];
      if (C + 1 < Row.size())
        Out.append(Widths[C] - Row[C].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  appendRow(Out, Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    appendRow(Out, Row);
  return Out;
}

std::string ResultTable::toCsv() const {
  std::string Out;
  auto appendRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      Out += Row[C];
      if (C + 1 < Row.size())
        Out += ',';
    }
    Out += '\n';
  };
  appendRow(Header);
  for (const auto &Row : Rows)
    appendRow(Row);
  return Out;
}

void ResultTable::print() const { std::fputs(toString().c_str(), stdout); }

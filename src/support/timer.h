//===- support/timer.h - Wall-clock timing helpers -------------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing used by the benchmark harnesses that produce the
/// paper's tables/figures (the google-benchmark binaries use their own
/// timing; this is for the sweep drivers that print figure data).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_TIMER_H
#define ETCH_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace etch {

/// A simple monotonic stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn repeatedly and returns the minimum wall time in seconds over
/// \p Reps runs (minimum is the standard robust estimator for CPU-bound
/// micro-benchmarks). \p Fn must be idempotent.
template <typename Fn> double timeBest(Fn &&Body, int Reps = 3) {
  double Best = 1e300;
  for (int I = 0; I < Reps; ++I) {
    Timer T;
    Body();
    double S = T.seconds();
    if (S < Best)
      Best = S;
  }
  return Best;
}

} // namespace etch

#endif // ETCH_SUPPORT_TIMER_H

//===- support/threadpool.cpp - Work-queue thread pool --------------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "support/threadpool.h"

#include <atomic>
#include <memory>

namespace etch {

namespace {

/// True while the current thread is executing inside parallelFor (either a
/// worker running a lane, or the caller's own lane). Nested parallelFor
/// calls detect this and run inline instead of enqueueing, which would
/// deadlock a single-worker pool waiting on itself.
thread_local bool InParallelRegion = false;

/// The shared state of one parallelFor call. Lanes pull chunk indices from
/// Next; Done counts *completed* chunks, so the caller's wait on
/// Done == N cannot return while any claimed chunk is still running —
/// which is what keeps Body (a caller-owned reference) alive for exactly
/// as long as any lane can dereference it. Straggler lanes that wake after
/// completion see Next >= N and exit without touching Body; they only
/// touch this struct, which they keep alive via shared_ptr.
struct ForState {
  explicit ForState(size_t N, const std::function<void(size_t)> &Body)
      : N(N), Body(&Body) {}

  const size_t N;
  const std::function<void(size_t)> *const Body;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
  std::mutex Mu;
  std::condition_variable AllDone;
};

/// One lane: claim chunks until none remain, then report completions.
void runLane(ForState &St) {
  bool Prev = InParallelRegion;
  InParallelRegion = true;
  size_t Completed = 0;
  for (;;) {
    size_t I = St.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= St.N)
      break;
    (*St.Body)(I);
    ++Completed;
  }
  InParallelRegion = Prev;
  if (Completed == 0)
    return;
  // Release ordering publishes the bodies' side effects to the caller's
  // acquire load in the wait predicate.
  size_t Done = St.Done.fetch_add(Completed, std::memory_order_acq_rel) +
                Completed;
  if (Done == St.N) {
    std::lock_guard<std::mutex> Lock(St.Mu);
    St.AllDone.notify_all();
  }
}

} // namespace

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Concurrency) {
  if (Concurrency == 0)
    Concurrency = hardwareThreads();
  Workers.reserve(Concurrency - 1);
  for (unsigned I = 1; I < Concurrency; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      HasWork.wait(Lock, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty())
        return; // Stop requested and nothing left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  // Serial pool, tiny trip count, or re-entrant call: run inline.
  if (Workers.empty() || N == 1 || InParallelRegion) {
    bool Prev = InParallelRegion;
    InParallelRegion = true;
    for (size_t I = 0; I < N; ++I)
      Body(I);
    InParallelRegion = Prev;
    return;
  }

  auto St = std::make_shared<ForState>(N, Body);
  size_t Lanes = std::min<size_t>(threadCount(), N);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (size_t I = 1; I < Lanes; ++I)
      Queue.emplace_back([St] { runLane(*St); });
  }
  HasWork.notify_all();

  runLane(*St); // The caller is a lane too.

  std::unique_lock<std::mutex> Lock(St->Mu);
  St->AllDone.wait(Lock, [&St] {
    return St->Done.load(std::memory_order_acquire) == St->N;
  });
}

} // namespace etch

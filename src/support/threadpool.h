//===- support/threadpool.h - Work-queue thread pool -----------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fork-join thread pool shared by the data-parallel evaluation
/// layer (`streams/parallel.h`), the parallel baseline kernels, and the
/// benchmark drivers. The only primitive is `parallelFor(N, Body)`: run
/// `Body(0) .. Body(N-1)`, distributing chunks over the workers *and* the
/// calling thread, and return when all have completed.
///
/// Design notes:
///   - The pool is sized in units of total concurrency: `ThreadPool(K)`
///     spawns K-1 workers and counts the caller as the K-th lane, so
///     `ThreadPool(1)` is a zero-thread pool that runs everything inline —
///     the serial drivers and the 1-thread benchmark configuration go
///     through exactly the same code path.
///   - Chunk indices are handed out through an atomic counter (work
///     stealing at chunk granularity), so imbalanced chunks do not idle
///     lanes; determinism is the *caller's* concern and is obtained by
///     reducing per-chunk results in chunk order (see parallelSumAll).
///   - Nested parallelFor calls from inside a worker run inline on that
///     worker; the pool never deadlocks on re-entry.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_THREADPOOL_H
#define ETCH_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace etch {

/// A fixed-size work-queue thread pool; see the file comment.
class ThreadPool {
public:
  /// Creates a pool with \p Concurrency total lanes (workers plus the
  /// calling thread). 0 means hardwareThreads().
  explicit ThreadPool(unsigned Concurrency = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total lanes: worker threads + 1 for the caller of parallelFor.
  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs Body(0) .. Body(N-1) across the pool and the calling thread;
  /// returns once every call has completed. Bodies for distinct indices may
  /// run concurrently; the caller is responsible for making their effects
  /// disjoint (or for reducing per-index results afterwards).
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// The machine's hardware concurrency (at least 1).
  static unsigned hardwareThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mu;
  std::condition_variable HasWork;
  std::deque<std::function<void()>> Queue;
  bool Stop = false;
};

} // namespace etch

#endif // ETCH_SUPPORT_THREADPOOL_H

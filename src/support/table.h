//===- support/table.h - Aligned result-table printing ---------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny result-table builder used by the benchmark drivers to print the
/// rows/series corresponding to the paper's tables and figures, both as an
/// aligned console table and (optionally) as CSV.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_SUPPORT_TABLE_H
#define ETCH_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace etch {

/// Accumulates rows of string cells under a fixed header and renders them.
class ResultTable {
public:
  explicit ResultTable(std::vector<std::string> Header);

  /// Appends one row; pads or truncates to the header width.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: formats a double with \p Precision digits after the point.
  static std::string num(double Value, int Precision = 3);

  /// Convenience: formats an integer.
  static std::string num(int64_t Value);

  /// Renders an aligned, human-readable table.
  std::string toString() const;

  /// Renders comma-separated values (header + rows).
  std::string toCsv() const;

  /// Prints toString() to stdout.
  void print() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace etch

#endif // ETCH_SUPPORT_TABLE_H

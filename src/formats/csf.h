//===- formats/csf.h - Compressed sparse fiber (order-3) -------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A three-level compressed sparse fiber (CSF) tensor: compressed at every
/// level, the format TACO and SPLATT use for higher-order tensors and the
/// input format of the MTTKRP benchmark (Figure 17).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FORMATS_CSF_H
#define ETCH_FORMATS_CSF_H

#include "core/krelation.h"
#include "formats/levels.h"
#include "streams/primitives.h"
#include "support/assert.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace etch {

/// A coordinate-form order-3 entry.
template <typename V> struct Coo3Entry {
  Idx I, J, K;
  V Val;
};

/// CSF for an order-3 tensor T(i, j, k).
template <typename V> struct CsfTensor3 {
  Idx DimI = 0, DimJ = 0, DimK = 0;
  std::vector<Idx> Crd0;    // Distinct i values.
  std::vector<size_t> Pos0; // Into Crd1; length Crd0.size() + 1.
  std::vector<Idx> Crd1;    // j values per i-fiber.
  std::vector<size_t> Pos1; // Into Crd2; length Crd1.size() + 1.
  std::vector<Idx> Crd2;    // k values per (i, j)-fiber.
  std::vector<V> Val;

  size_t nnz() const { return Val.size(); }

  static CsfTensor3 fromCoo(Idx DimI, Idx DimJ, Idx DimK,
                            std::vector<Coo3Entry<V>> Coo) {
    std::sort(Coo.begin(), Coo.end(), [](const auto &A, const auto &B) {
      return std::tie(A.I, A.J, A.K) < std::tie(B.I, B.J, B.K);
    });
    CsfTensor3 T;
    T.DimI = DimI;
    T.DimJ = DimJ;
    T.DimK = DimK;
    std::vector<std::pair<std::array<Idx, 3>, V>> Entries;
    Entries.reserve(Coo.size());
    for (const auto &E : Coo)
      Entries.push_back({{E.I, E.J, E.K}, E.Val});
    auto Pack = packLevels<V, 3>({LevelKind::Compressed,
                                  LevelKind::Compressed,
                                  LevelKind::Compressed},
                                 {DimI, DimJ, DimK}, Entries);
    T.Crd0 = std::move(Pack.Crd[0]);
    T.Pos0 = std::move(Pack.Pos[1]);
    T.Crd1 = std::move(Pack.Crd[1]);
    T.Pos1 = std::move(Pack.Pos[2]);
    T.Crd2 = std::move(Pack.Crd[2]);
    T.Val = std::move(Pack.Val);
    return T;
  }

  /// A nested stream `i ->s j ->s k ->s V`, compressed at every level.
  template <SearchPolicy P = SearchPolicy::Linear> auto stream() const {
    const Idx *Crd1P = Crd1.data();
    const Idx *Crd2P = Crd2.data();
    const V *ValP = Val.data();
    const size_t *Pos0P = Pos0.data();
    const size_t *Pos1P = Pos1.data();
    auto Fiber = [Crd1P, Crd2P, ValP, Pos0P, Pos1P](size_t QI) {
      auto Row = [Crd2P, ValP, Pos1P](size_t QJ) {
        auto Leaf = [ValP](size_t QK) { return ValP[QK]; };
        return SparseStream<decltype(Leaf), P>(Crd2P, Pos1P[QJ],
                                               Pos1P[QJ + 1], Leaf);
      };
      return SparseStream<decltype(Row), P>(Crd1P, Pos0P[QI], Pos0P[QI + 1],
                                            Row);
    };
    return SparseStream<decltype(Fiber), P>(Crd0.data(), 0, Crd0.size(),
                                            Fiber);
  }

  template <Semiring S>
  KRelation<S> toKRelation(Attr AI, Attr AJ, Attr AK) const {
    ETCH_ASSERT(AI < AJ && AJ < AK, "attribute order must match levels");
    KRelation<S> Rel(Shape{AI, AJ, AK});
    for (size_t QI = 0; QI < Crd0.size(); ++QI)
      for (size_t QJ = Pos0[QI]; QJ < Pos0[QI + 1]; ++QJ)
        for (size_t QK = Pos1[QJ]; QK < Pos1[QJ + 1]; ++QK)
          Rel.insert({Crd0[QI], Crd1[QJ], Crd2[QK]}, Val[QK]);
    Rel.pruneZeros();
    return Rel;
  }
};

} // namespace etch

#endif // ETCH_FORMATS_CSF_H

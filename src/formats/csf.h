//===- formats/csf.h - Compressed sparse fiber (order-3) -------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A three-level compressed sparse fiber (CSF) tensor: compressed at every
/// level, the format TACO and SPLATT use for higher-order tensors and the
/// input format of the MTTKRP benchmark (Figure 17).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FORMATS_CSF_H
#define ETCH_FORMATS_CSF_H

#include "core/krelation.h"
#include "streams/primitives.h"
#include "support/assert.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace etch {

/// A coordinate-form order-3 entry.
template <typename V> struct Coo3Entry {
  Idx I, J, K;
  V Val;
};

/// CSF for an order-3 tensor T(i, j, k).
template <typename V> struct CsfTensor3 {
  Idx DimI = 0, DimJ = 0, DimK = 0;
  std::vector<Idx> Crd0;    // Distinct i values.
  std::vector<size_t> Pos0; // Into Crd1; length Crd0.size() + 1.
  std::vector<Idx> Crd1;    // j values per i-fiber.
  std::vector<size_t> Pos1; // Into Crd2; length Crd1.size() + 1.
  std::vector<Idx> Crd2;    // k values per (i, j)-fiber.
  std::vector<V> Val;

  size_t nnz() const { return Val.size(); }

  static CsfTensor3 fromCoo(Idx DimI, Idx DimJ, Idx DimK,
                            std::vector<Coo3Entry<V>> Coo) {
    std::sort(Coo.begin(), Coo.end(), [](const auto &A, const auto &B) {
      return std::tie(A.I, A.J, A.K) < std::tie(B.I, B.J, B.K);
    });
    CsfTensor3 T;
    T.DimI = DimI;
    T.DimJ = DimJ;
    T.DimK = DimK;
    T.Pos0.push_back(0);
    for (size_t P = 0; P < Coo.size();) {
      ETCH_ASSERT(Coo[P].I >= 0 && Coo[P].I < DimI, "i out of range");
      T.Crd0.push_back(Coo[P].I);
      Idx I = Coo[P].I;
      while (P < Coo.size() && Coo[P].I == I) {
        Idx J = Coo[P].J;
        ETCH_ASSERT(J >= 0 && J < DimJ, "j out of range");
        T.Crd1.push_back(J);
        T.Pos1.push_back(T.Crd2.size());
        while (P < Coo.size() && Coo[P].I == I && Coo[P].J == J) {
          ETCH_ASSERT(Coo[P].K >= 0 && Coo[P].K < DimK, "k out of range");
          ETCH_ASSERT(T.Crd2.size() == T.Pos1.back() ||
                          T.Crd2.back() != Coo[P].K,
                      "duplicate coordinate");
          T.Crd2.push_back(Coo[P].K);
          T.Val.push_back(Coo[P].Val);
          ++P;
        }
      }
      T.Pos0.push_back(T.Crd1.size());
    }
    T.Pos1.push_back(T.Crd2.size());
    return T;
  }

  /// A nested stream `i ->s j ->s k ->s V`, compressed at every level.
  template <SearchPolicy P = SearchPolicy::Linear> auto stream() const {
    const Idx *Crd1P = Crd1.data();
    const Idx *Crd2P = Crd2.data();
    const V *ValP = Val.data();
    const size_t *Pos0P = Pos0.data();
    const size_t *Pos1P = Pos1.data();
    auto Fiber = [Crd1P, Crd2P, ValP, Pos0P, Pos1P](size_t QI) {
      auto Row = [Crd2P, ValP, Pos1P](size_t QJ) {
        auto Leaf = [ValP](size_t QK) { return ValP[QK]; };
        return SparseStream<decltype(Leaf), P>(Crd2P, Pos1P[QJ],
                                               Pos1P[QJ + 1], Leaf);
      };
      return SparseStream<decltype(Row), P>(Crd1P, Pos0P[QI], Pos0P[QI + 1],
                                            Row);
    };
    return SparseStream<decltype(Fiber), P>(Crd0.data(), 0, Crd0.size(),
                                            Fiber);
  }

  template <Semiring S>
  KRelation<S> toKRelation(Attr AI, Attr AJ, Attr AK) const {
    ETCH_ASSERT(AI < AJ && AJ < AK, "attribute order must match levels");
    KRelation<S> Rel(Shape{AI, AJ, AK});
    for (size_t QI = 0; QI < Crd0.size(); ++QI)
      for (size_t QJ = Pos0[QI]; QJ < Pos0[QI + 1]; ++QJ)
        for (size_t QK = Pos1[QJ]; QK < Pos1[QJ + 1]; ++QK)
          Rel.insert({Crd0[QI], Crd1[QJ], Crd2[QK]}, Val[QK]);
    Rel.pruneZeros();
    return Rel;
  }
};

} // namespace etch

#endif // ETCH_FORMATS_CSF_H

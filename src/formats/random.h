//===- formats/random.h - Synthetic sparse data generators -----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic tensor generators, mirroring the paper's use of
/// synthetic matrices swept across sparsity levels (Section 8.1: "we use
/// synthetic matrices ... as they let us sweep over different sparsity
/// percentages"). Values are drawn from [0.5, 1.5] so products never
/// cancel to zero by accident.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FORMATS_RANDOM_H
#define ETCH_FORMATS_RANDOM_H

#include "formats/csf.h"
#include "formats/matrices.h"
#include "formats/vectors.h"
#include "support/rng.h"

namespace etch {

/// A non-zero value in [0.5, 1.5].
inline double randomValue(Rng &R) { return 0.5 + R.nextDouble(); }

/// A sparse vector of dimension \p N with exactly \p Nnz entries.
inline SparseVector<double> randomSparseVector(Rng &R, Idx N, size_t Nnz) {
  SparseVector<double> V(N);
  for (uint64_t C : R.sampleDistinctSorted(Nnz, static_cast<uint64_t>(N)))
    V.push(static_cast<Idx>(C), randomValue(R));
  return V;
}

/// COO entries for a Rows x Cols matrix with exactly \p Nnz distinct
/// positions.
inline std::vector<CooEntry<double>> randomCoo(Rng &R, Idx Rows, Idx Cols,
                                               size_t Nnz) {
  std::vector<CooEntry<double>> Coo;
  Coo.reserve(Nnz);
  uint64_t Universe = static_cast<uint64_t>(Rows) * Cols;
  for (uint64_t C : R.sampleDistinctSorted(Nnz, Universe))
    Coo.push_back({static_cast<Idx>(C / Cols), static_cast<Idx>(C % Cols),
                   randomValue(R)});
  return Coo;
}

inline CsrMatrix<double> randomCsr(Rng &R, Idx Rows, Idx Cols, size_t Nnz) {
  return CsrMatrix<double>::fromCoo(Rows, Cols, randomCoo(R, Rows, Cols, Nnz));
}

inline DcsrMatrix<double> randomDcsr(Rng &R, Idx Rows, Idx Cols, size_t Nnz) {
  return DcsrMatrix<double>::fromCoo(Rows, Cols,
                                     randomCoo(R, Rows, Cols, Nnz));
}

/// An order-3 CSF tensor with exactly \p Nnz distinct coordinates.
inline CsfTensor3<double> randomCsf3(Rng &R, Idx DimI, Idx DimJ, Idx DimK,
                                     size_t Nnz) {
  std::vector<Coo3Entry<double>> Coo;
  Coo.reserve(Nnz);
  uint64_t Universe =
      static_cast<uint64_t>(DimI) * DimJ * static_cast<uint64_t>(DimK);
  for (uint64_t C : R.sampleDistinctSorted(Nnz, Universe)) {
    Idx K = static_cast<Idx>(C % DimK);
    Idx J = static_cast<Idx>((C / DimK) % DimJ);
    Idx I = static_cast<Idx>(C / (static_cast<uint64_t>(DimK) * DimJ));
    Coo.push_back({I, J, K, randomValue(R)});
  }
  return CsfTensor3<double>::fromCoo(DimI, DimJ, DimK, std::move(Coo));
}

/// A dense vector with uniform values in [0.5, 1.5].
inline DenseVector<double> randomDenseVector(Rng &R, Idx N) {
  DenseVector<double> V(N);
  for (Idx I = 0; I < N; ++I)
    V.Val[static_cast<size_t>(I)] = randomValue(R);
  return V;
}

} // namespace etch

#endif // ETCH_FORMATS_RANDOM_H

//===- formats/vectors.h - Dense and sparse vector storage -----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owning storage for one-dimensional tensors in the two level formats of
/// Example 5.2: dense (a value per index) and compressed (parallel sorted
/// coordinate / value arrays). Each exposes `stream()` accessors returning
/// indexed-stream cursors over its data; the compressed format offers every
/// SearchPolicy so benchmarks can ablate the skip implementation.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FORMATS_VECTORS_H
#define ETCH_FORMATS_VECTORS_H

#include "core/krelation.h"
#include "streams/primitives.h"
#include "support/assert.h"

#include <vector>

namespace etch {

/// A dense vector of length Size.
template <typename V> struct DenseVector {
  Idx Size = 0;
  std::vector<V> Val;

  explicit DenseVector(Idx Size = 0, V Init = V())
      : Size(Size), Val(static_cast<size_t>(Size), Init) {}

  /// A stream over all Size entries (zeros included).
  auto stream() const { return denseVecStream(Val.data(), Size); }
};

/// A compressed (sparse) vector: strictly increasing coordinates with their
/// values; Size records the nominal dimension.
template <typename V> struct SparseVector {
  Idx Size = 0;
  std::vector<Idx> Crd;
  std::vector<V> Val;

  SparseVector() = default;
  explicit SparseVector(Idx Size) : Size(Size) {}

  size_t nnz() const { return Crd.size(); }

  /// Appends an entry; coordinates must arrive strictly increasing.
  void push(Idx I, V X) {
    ETCH_ASSERT(Crd.empty() || I > Crd.back(),
                "sparse vector coordinates must be strictly increasing");
    ETCH_ASSERT(I >= 0 && I < Size, "coordinate out of range");
    Crd.push_back(I);
    Val.push_back(X);
  }

  /// A stream with the given skip policy (Example 5.2's `skip`; binary /
  /// galloping search make long skips logarithmic).
  template <SearchPolicy P = SearchPolicy::Linear> auto stream() const {
    return sparseVecStream<V, P>(Crd.data(), Val.data(), Crd.size());
  }

  /// The vector as a K-relation of shape {A} (test oracle form).
  template <Semiring S> KRelation<S> toKRelation(Attr A) const {
    KRelation<S> R(Shape{A});
    for (size_t P = 0; P < Crd.size(); ++P)
      R.insert({Crd[P]}, Val[P]);
    R.pruneZeros();
    return R;
  }
};

} // namespace etch

#endif // ETCH_FORMATS_VECTORS_H

//===- formats/matrices.h - CSR / DCSR / CSC matrix storage ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owning storage for sparse matrices as two-level hierarchies (Section 2.2
/// / Chou et al.'s level formats):
///
///   - CsrMatrix : dense rows over compressed columns (TACO's CSR);
///   - DcsrMatrix: compressed rows over compressed columns (doubly
///     compressed, for hypersparse matrices — the paper's `smul` bench);
///
/// Each exposes `stream()` returning a nested indexed stream
/// `row ->s col ->s V`; column-level SearchPolicy is a template knob.
/// Builders convert from coordinate (COO) form, and `toKRelation` produces
/// the oracle representation.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FORMATS_MATRICES_H
#define ETCH_FORMATS_MATRICES_H

#include "core/krelation.h"
#include "formats/levels.h"
#include "streams/primitives.h"
#include "support/assert.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace etch {

/// A coordinate-form entry used by the builders.
template <typename V> struct CooEntry {
  Idx Row, Col;
  V Val;
};

/// Sorts COO entries row-major and sums duplicates (dropping zeros).
template <typename V>
std::vector<CooEntry<V>> canonicalizeCoo(std::vector<CooEntry<V>> Coo) {
  std::sort(Coo.begin(), Coo.end(), [](const auto &A, const auto &B) {
    return std::tie(A.Row, A.Col) < std::tie(B.Row, B.Col);
  });
  std::vector<CooEntry<V>> Out;
  for (const auto &E : Coo) {
    if (!Out.empty() && Out.back().Row == E.Row && Out.back().Col == E.Col)
      Out.back().Val += E.Val;
    else
      Out.push_back(E);
  }
  std::erase_if(Out, [](const auto &E) { return E.Val == V(); });
  return Out;
}

/// CSR: for each of NumRows rows, columns Pos[i]..Pos[i+1) of (Crd, Val).
template <typename V> struct CsrMatrix {
  Idx NumRows = 0, NumCols = 0;
  std::vector<size_t> Pos; // Length NumRows + 1.
  std::vector<Idx> Crd;
  std::vector<V> Val;

  CsrMatrix() = default;
  CsrMatrix(Idx NumRows, Idx NumCols)
      : NumRows(NumRows), NumCols(NumCols),
        Pos(static_cast<size_t>(NumRows) + 1, 0) {}

  size_t nnz() const { return Crd.size(); }

  static CsrMatrix fromCoo(Idx NumRows, Idx NumCols,
                           std::vector<CooEntry<V>> Coo) {
    CsrMatrix M(NumRows, NumCols);
    auto Sorted = canonicalizeCoo(std::move(Coo));
    std::vector<std::pair<std::array<Idx, 2>, V>> Entries;
    Entries.reserve(Sorted.size());
    for (const auto &E : Sorted)
      Entries.push_back({{E.Row, E.Col}, E.Val});
    auto Pack = packLevels<V, 2>({LevelKind::Dense, LevelKind::Compressed},
                                 {NumRows, NumCols}, Entries);
    M.Pos = std::move(Pack.Pos[1]);
    M.Crd = std::move(Pack.Crd[1]);
    M.Val = std::move(Pack.Val);
    return M;
  }

  /// A nested stream: dense row level over compressed column level.
  template <SearchPolicy P = SearchPolicy::Linear> auto stream() const {
    const Idx *CrdP = Crd.data();
    const V *ValP = Val.data();
    const size_t *PosP = Pos.data();
    auto Row = [CrdP, ValP, PosP](Idx R) {
      auto Leaf = [ValP](size_t Q) { return ValP[Q]; };
      return SparseStream<decltype(Leaf), P>(CrdP, PosP[R], PosP[R + 1],
                                             Leaf);
    };
    return DenseStream<decltype(Row)>(NumRows, Row);
  }

  template <Semiring S>
  KRelation<S> toKRelation(Attr RowA, Attr ColA) const {
    ETCH_ASSERT(RowA < ColA, "attribute order must match level order");
    KRelation<S> Rel(Shape{RowA, ColA});
    for (Idx R = 0; R < NumRows; ++R)
      for (size_t Q = Pos[R]; Q < Pos[R + 1]; ++Q)
        Rel.insert({R, Crd[Q]}, Val[Q]);
    Rel.pruneZeros();
    return Rel;
  }
};

/// Transposes a CSR matrix into CSR form (i.e. produces CSC of the input)
/// with a counting sort over columns: O(nnz + rows + cols), no COO detour.
/// Rows of the result are the columns of \p M, in increasing coordinate
/// order, so the result is canonical CSR.
template <typename V> CsrMatrix<V> transpose(const CsrMatrix<V> &M) {
  CsrMatrix<V> T(M.NumCols, M.NumRows);
  T.Crd.resize(M.nnz());
  T.Val.resize(M.nnz());
  // Count entries per column, then prefix-sum into Pos.
  for (Idx C : M.Crd)
    ++T.Pos[static_cast<size_t>(C) + 1];
  for (size_t C = 0; C < static_cast<size_t>(T.NumRows); ++C)
    T.Pos[C + 1] += T.Pos[C];
  // Scatter; a second cursor array tracks each column's write position.
  std::vector<size_t> Cur(T.Pos.begin(), T.Pos.end() - 1);
  for (Idx R = 0; R < M.NumRows; ++R)
    for (size_t Q = M.Pos[static_cast<size_t>(R)];
         Q < M.Pos[static_cast<size_t>(R) + 1]; ++Q) {
      size_t W = Cur[static_cast<size_t>(M.Crd[Q])]++;
      T.Crd[W] = R;
      T.Val[W] = M.Val[Q];
    }
  return T;
}

/// DCSR: compressed row level (RowCrd) over compressed column level.
template <typename V> struct DcsrMatrix {
  Idx NumRows = 0, NumCols = 0;
  std::vector<Idx> RowCrd;  // Nonempty rows, strictly increasing.
  std::vector<size_t> Pos;  // Length RowCrd.size() + 1.
  std::vector<Idx> Crd;
  std::vector<V> Val;

  size_t nnz() const { return Crd.size(); }

  static DcsrMatrix fromCoo(Idx NumRows, Idx NumCols,
                            std::vector<CooEntry<V>> Coo) {
    DcsrMatrix M;
    M.NumRows = NumRows;
    M.NumCols = NumCols;
    auto Sorted = canonicalizeCoo(std::move(Coo));
    std::vector<std::pair<std::array<Idx, 2>, V>> Entries;
    Entries.reserve(Sorted.size());
    for (const auto &E : Sorted)
      Entries.push_back({{E.Row, E.Col}, E.Val});
    auto Pack =
        packLevels<V, 2>({LevelKind::Compressed, LevelKind::Compressed},
                         {NumRows, NumCols}, Entries);
    M.RowCrd = std::move(Pack.Crd[0]);
    M.Pos = std::move(Pack.Pos[1]);
    M.Crd = std::move(Pack.Crd[1]);
    M.Val = std::move(Pack.Val);
    return M;
  }

  /// A nested stream: compressed rows over compressed columns. \p RowP and
  /// \p ColP pick the skip policy per level.
  template <SearchPolicy RowP = SearchPolicy::Linear,
            SearchPolicy ColP = SearchPolicy::Linear>
  auto stream() const {
    const Idx *CrdP = Crd.data();
    const V *ValP = Val.data();
    const size_t *PosP = Pos.data();
    auto Row = [CrdP, ValP, PosP](size_t RQ) {
      auto Leaf = [ValP](size_t Q) { return ValP[Q]; };
      return SparseStream<decltype(Leaf), ColP>(CrdP, PosP[RQ], PosP[RQ + 1],
                                                Leaf);
    };
    return SparseStream<decltype(Row), RowP>(RowCrd.data(), 0, RowCrd.size(),
                                             Row);
  }

  template <Semiring S>
  KRelation<S> toKRelation(Attr RowA, Attr ColA) const {
    ETCH_ASSERT(RowA < ColA, "attribute order must match level order");
    KRelation<S> Rel(Shape{RowA, ColA});
    for (size_t RQ = 0; RQ < RowCrd.size(); ++RQ)
      for (size_t Q = Pos[RQ]; Q < Pos[RQ + 1]; ++Q)
        Rel.insert({RowCrd[RQ], Crd[Q]}, Val[Q]);
    Rel.pruneZeros();
    return Rel;
  }
};

} // namespace etch

#endif // ETCH_FORMATS_MATRICES_H

//===- formats/levels.h - Per-coordinate-level format abstraction -*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The level-format abstraction of Chou et al. ("Format Abstraction for
/// Sparse Tensor Algebra Compilers"): a tensor format is a composition of
/// per-coordinate-level formats, and every builder in this library is a
/// packing of canonical sorted coordinates into such a composition.
///
///   - LevelKind names the level formats the library implements: dense
///     (positions are coordinates), compressed (sorted crd/pos arrays),
///     singleton (one coordinate per parent position), and hashed (an
///     open-addressing coordinate->position map).
///   - packLevels is the generic builder: it packs canonical sorted
///     (tuple, value) entries into per-level pos/crd arrays for any
///     dense/compressed composition. CsrMatrix, DcsrMatrix, and CsfTensor3
///     route their fromCoo constructors through it (formats/matrices.h,
///     formats/csf.h), so there is exactly one grouping loop in the
///     library.
///   - CoordHashTable is the open-addressing core shared by the hashed
///     level: linear probing over a power-of-two table, -1 as the empty
///     key sentinel.
///   - HashedVector is the hashed level format as owning storage: O(1)
///     accumulation by coordinate in any order, then freeze() takes a
///     sorted snapshot so streams over it stay monotone (the paper's
///     stream laws require sorted iteration) while the table keeps
///     locate-by-coordinate O(1) for `skip` (streams/primitives.h's
///     HashedStream).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FORMATS_LEVELS_H
#define ETCH_FORMATS_LEVELS_H

#include "core/krelation.h"
#include "streams/primitives.h"
#include "support/assert.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace etch {

/// The level formats a coordinate hierarchy can compose (Chou et al.
/// Table 1; singleton appears only via fused crd arrays, hashed is the
/// paper's hash-table output format).
enum class LevelKind {
  Dense,      ///< Every coordinate 0..N-1 has a position.
  Compressed, ///< Sorted crd array segmented by a pos array.
  Singleton,  ///< Exactly one coordinate per parent position.
  Hashed,     ///< Coordinate->position map + sorted snapshot.
};

/// The arrays of a packed dense/compressed level composition. For level L:
/// dense levels use no arrays (positions are parent * extent + coordinate);
/// compressed levels have Crd[L] (one entry per fiber element) and Pos[L]
/// (one entry per parent position, plus one). Val parallels the leaf
/// level's positions.
template <typename V, size_t R> struct LevelPack {
  std::array<std::vector<Idx>, R> Crd;
  std::array<std::vector<size_t>, R> Pos;
  std::vector<V> Val;
};

/// Packs canonical entries into a level composition. \p Sorted must be
/// lexicographically sorted with no duplicate tuples (canonicalize first);
/// every coordinate is bounds-checked against \p Extents. This is the one
/// grouping loop behind CsrMatrix/DcsrMatrix/CsfTensor3::fromCoo.
template <typename V, size_t R>
LevelPack<V, R>
packLevels(const std::array<LevelKind, R> &Kinds,
           const std::array<Idx, R> &Extents,
           const std::vector<std::pair<std::array<Idx, R>, V>> &Sorted) {
  LevelPack<V, R> Out;
  for (size_t E = 1; E < Sorted.size(); ++E)
    ETCH_ASSERT(Sorted[E - 1].first < Sorted[E].first,
                "packLevels requires sorted, duplicate-free tuples");
  // ParentPos[E] = position of entry E's fiber within the previous level;
  // one virtual root fiber above level 0.
  std::vector<size_t> ParentPos(Sorted.size(), 0);
  size_t FiberCount = 1;
  for (size_t L = 0; L < R; ++L) {
    for (const auto &[T, Unused] : Sorted)
      ETCH_ASSERT(T[L] >= 0 && T[L] < Extents[L], "coordinate out of range");
    if (Kinds[L] == LevelKind::Dense) {
      // Positions multiply: a parent position spans Extent child slots.
      for (size_t E = 0; E < Sorted.size(); ++E)
        ParentPos[E] = ParentPos[E] * static_cast<size_t>(Extents[L]) +
                       static_cast<size_t>(Sorted[E].first[L]);
      FiberCount *= static_cast<size_t>(Extents[L]);
      continue;
    }
    ETCH_ASSERT(Kinds[L] == LevelKind::Compressed,
                "packLevels packs dense/compressed compositions");
    // Group entries by (parent position, coordinate): one crd entry per
    // distinct pair, counted into the parent's pos slot.
    Out.Pos[L].assign(FiberCount + 1, 0);
    size_t PrevParent = static_cast<size_t>(-1);
    Idx PrevCoord = -1;
    for (size_t E = 0; E < Sorted.size(); ++E) {
      size_t Par = ParentPos[E];
      Idx C = Sorted[E].first[L];
      if (Par != PrevParent || C != PrevCoord) {
        Out.Crd[L].push_back(C);
        ++Out.Pos[L][Par + 1];
        PrevParent = Par;
        PrevCoord = C;
      }
      ParentPos[E] = Out.Crd[L].size() - 1;
    }
    for (size_t P = 0; P + 1 < Out.Pos[L].size(); ++P)
      Out.Pos[L][P + 1] += Out.Pos[L][P];
    FiberCount = Out.Crd[L].size();
  }
  // Leaf values: parallel to leaf positions. A compressed leaf has exactly
  // one position per entry; a dense leaf scatters into the full extent.
  if (Kinds[R - 1] == LevelKind::Compressed) {
    Out.Val.reserve(Sorted.size());
    for (const auto &[Unused, X] : Sorted)
      Out.Val.push_back(X);
  } else {
    Out.Val.assign(FiberCount, V());
    for (size_t E = 0; E < Sorted.size(); ++E)
      Out.Val[ParentPos[E]] = Sorted[E].second;
  }
  return Out;
}

/// The open-addressing coordinate->position map behind the hashed level:
/// linear probing over a power-of-two table, key -1 marking empty slots.
/// Shared by HashedVector here and the relational hashed group-by; the
/// compiled `hashDest` lowering (compiler/codegen.cpp) emits exactly this
/// probe sequence as target code, so the two stay in sync by construction.
class CoordHashTable {
public:
  static constexpr int64_t Empty = -1;

  explicit CoordHashTable(size_t CapacityHint = 0) {
    size_t Buckets = 16;
    while (Buckets < 2 * CapacityHint)
      Buckets *= 2;
    Key.assign(Buckets, Empty);
    Pos.resize(Buckets);
  }

  size_t buckets() const { return Key.size(); }
  size_t size() const { return Count; }

  /// Returns the slot holding \p I, or the empty slot where it would be
  /// inserted.
  size_t slotOf(Idx I) const {
    size_t Mask = Key.size() - 1;
    size_t H = hashOf(I);
    while (Key[H] != Empty && Key[H] != I)
      H = (H + 1) & Mask;
    return H;
  }

  /// Returns the position stored for \p I, or ~size_t(0) when absent.
  size_t lookup(Idx I) const {
    size_t H = slotOf(I);
    return Key[H] == I ? Pos[H] : static_cast<size_t>(-1);
  }

  /// Inserts \p I -> \p P if absent (growing at 2/3 load); returns the
  /// stored position either way.
  size_t insert(Idx I, size_t P) {
    if (3 * (Count + 1) > 2 * Key.size())
      grow();
    size_t H = slotOf(I);
    if (Key[H] == I)
      return Pos[H];
    Key[H] = I;
    Pos[H] = P;
    ++Count;
    return P;
  }

  /// Overwrites the position stored for \p I (which must be present).
  void update(Idx I, size_t P) {
    size_t H = slotOf(I);
    ETCH_ASSERT(Key[H] == I, "update of absent key");
    Pos[H] = P;
  }

  const std::vector<int64_t> &keys() const { return Key; }
  const std::vector<size_t> &positions() const { return Pos; }

private:
  // Fibonacci multiplicative hashing (same constant as the relational
  // HashIndex); unsigned arithmetic, so wraparound is well-defined.
  size_t hashOf(Idx I) const {
    uint64_t Shift = 64 - static_cast<uint64_t>(std::countr_zero(Key.size()));
    return static_cast<size_t>(
        (static_cast<uint64_t>(I) * 0x9e3779b97f4a7c15ULL) >> Shift);
  }

  void grow() {
    std::vector<int64_t> OldKey = std::move(Key);
    std::vector<size_t> OldPos = std::move(Pos);
    Key.assign(OldKey.size() * 2, Empty);
    Pos.assign(OldKey.size() * 2, 0);
    for (size_t H = 0; H < OldKey.size(); ++H)
      if (OldKey[H] != Empty) {
        size_t S = slotOf(OldKey[H]);
        Key[S] = OldKey[H];
        Pos[S] = OldPos[H];
      }
  }

  std::vector<int64_t> Key;
  std::vector<size_t> Pos;
  size_t Count = 0;
};

/// A hashed level as owning rank-1 storage: the paper's hash-table format.
/// Coordinates accumulate in any order at O(1) each; freeze() then sorts a
/// (Crd, Val) snapshot — restoring the monotone iteration the stream laws
/// require — and repoints the table at sorted ranks, so `skip` can locate
/// an exact coordinate with one probe instead of a search.
template <typename V> struct HashedVector {
  Idx Size = 0;

  explicit HashedVector(Idx Size = 0, size_t CapacityHint = 0)
      : Size(Size), Table(CapacityHint) {}

  size_t nnz() const { return Crd.size(); }
  bool frozen() const { return Frozen; }
  const CoordHashTable &table() const { return Table; }

  /// Adds \p X to the entry at \p I, creating it when absent. Any order,
  /// duplicates welcome — this is the group-by accumulation primitive.
  void accumulate(Idx I, V X) {
    ETCH_ASSERT(!Frozen, "accumulate after freeze");
    ETCH_ASSERT(I >= 0 && I < Size, "coordinate out of range");
    size_t P = Table.insert(I, Crd.size());
    if (P == Crd.size()) {
      Crd.push_back(I);
      Val.push_back(X);
    } else {
      Val[P] += X;
    }
  }

  /// The entry's accumulator, created zero on first touch. The reference
  /// is valid until the next insertion of a different new coordinate.
  V &slot(Idx I) {
    ETCH_ASSERT(!Frozen, "slot after freeze");
    ETCH_ASSERT(I >= 0 && I < Size, "coordinate out of range");
    size_t P = Table.insert(I, Crd.size());
    if (P == Crd.size()) {
      Crd.push_back(I);
      Val.push_back(V());
    }
    return Val[P];
  }

  /// Sorts the snapshot by coordinate and repoints the table at sorted
  /// ranks. Streams require a frozen vector.
  void freeze() {
    if (Frozen)
      return;
    std::vector<size_t> Perm(Crd.size());
    std::iota(Perm.begin(), Perm.end(), size_t(0));
    std::sort(Perm.begin(), Perm.end(),
              [&](size_t A, size_t B) { return Crd[A] < Crd[B]; });
    std::vector<Idx> SCrd(Crd.size());
    std::vector<V> SVal(Val.size());
    for (size_t R = 0; R < Perm.size(); ++R) {
      SCrd[R] = Crd[Perm[R]];
      SVal[R] = Val[Perm[R]];
      Table.update(SCrd[R], R);
    }
    Crd = std::move(SCrd);
    Val = std::move(SVal);
    Frozen = true;
  }

  /// A stream over the sorted snapshot whose `skip` probes the table first
  /// (O(1) on exact coordinate hits) and falls back to \p P search.
  template <SearchPolicy P = SearchPolicy::Linear> auto stream() const {
    ETCH_ASSERT(Frozen, "stream over an unfrozen HashedVector");
    return hashedVecStream<V, P>(Crd.data(), Val.data(), Crd.size(),
                                 Table.keys().data(),
                                 Table.positions().data(),
                                 Table.buckets());
  }

  /// The vector as a K-relation of shape {A} (test oracle form).
  template <Semiring S> KRelation<S> toKRelation(Attr A) const {
    KRelation<S> R(Shape{A});
    for (size_t P = 0; P < Crd.size(); ++P)
      R.insert({Crd[P]}, Val[P]);
    R.pruneZeros();
    return R;
  }

  std::vector<Idx> Crd; ///< Snapshot coordinates (sorted once frozen).
  std::vector<V> Val;   ///< Parallel values.

private:
  CoordHashTable Table;
  bool Frozen = false;
};

} // namespace etch

#endif // ETCH_FORMATS_LEVELS_H

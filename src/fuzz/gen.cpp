//===- fuzz/gen.cpp - Seeded generation of random fuzz cases -------------===//

#include "fuzz/gen.h"

#include "support/assert.h"
#include "support/rng.h"

#include <algorithm>
#include <limits>
#include <set>

using namespace etch;

namespace {

/// An expression under construction, with its typing tracked incrementally
/// (same bookkeeping fuzzValidate re-derives).
struct Node {
  ExprPtr E;
  FuzzTyping Ty;
};

class Gen {
public:
  Gen(uint64_t Seed, const GenOptions &Opts) : R(Seed), Opts(Opts) {}

  FuzzCase run() {
    Huge = R.nextBool(Opts.HugeProb);
    pickSemiring();
    pickDims();
    int Depth = 1 + static_cast<int>(R.nextBelow(
                        static_cast<uint64_t>(std::max(1, Opts.MaxDepth))));
    Node N = genExpr(Depth);

    FuzzCase C;
    C.SemiringName = Semiring;
    const auto &U = fuzzAttrUniverse();
    for (size_t I = 0; I < U.size(); ++I)
      C.Dims.emplace_back(U[I], Dim[I]);
    C.Tensors = Tensors;
    C.E = N.E;

    std::string Err;
    auto Ty = fuzzValidate(C, &Err);
    ETCH_ASSERT(Ty, "generator produced an invalid case");
    ETCH_ASSERT(Ty->Sig == N.Ty.Sig && Ty->Dense == N.Ty.Dense,
                "generator typing out of sync with the validator");
    return C;
  }

private:
  Rng R;
  GenOptions Opts;
  bool Huge = false;
  std::string Semiring;
  std::vector<Idx> Dim; // aligned with fuzzAttrUniverse()
  std::vector<FuzzTensor> Tensors;

  Idx dimOf(Attr A) const {
    const auto &U = fuzzAttrUniverse();
    for (size_t I = 0; I < U.size(); ++I)
      if (U[I] == A)
        return Dim[I];
    ETCH_UNREACHABLE("attribute outside the fuzz universe");
  }

  void pickSemiring() {
    uint64_t X = R.nextBelow(100);
    Semiring = X < 35 ? "f64" : X < 60 ? "i64" : X < 80 ? "bool" : "minplus";
  }

  void pickDims() {
    const auto &U = fuzzAttrUniverse();
    Dim.assign(U.size(), 0);
    if (Huge) {
      const Idx IMax = std::numeric_limits<Idx>::max();
      const Idx Half = static_cast<Idx>(1) << 62;
      const Idx Choices[] = {IMax, IMax - 5, Half + 3, Half, Half - 2};
      bool Equal = R.nextBool(0.7);
      Idx Common = Choices[R.nextBelow(5)];
      for (Idx &D : Dim)
        D = Equal ? Common : Choices[R.nextBelow(5)];
    } else {
      bool Equal = R.nextBool(0.4);
      Idx Common = 2 + static_cast<Idx>(R.nextBelow(7)); // 2..8
      for (Idx &D : Dim) {
        if (Equal)
          D = Common;
        else if (R.nextBool(0.05))
          D = 0; // empty index set: everything over it is empty
        else
          D = 1 + static_cast<Idx>(R.nextBelow(8)); // 1..8
      }
    }
  }

  /// A raw entry value for the chosen semiring. Small exact values, with
  /// occasional explicit semiring zeros (0, or +inf under (min,+)) to
  /// exercise pruning paths.
  double genValue() {
    if (Semiring == "i64")
      return static_cast<double>(R.nextInRange(-3, 3));
    if (Semiring == "bool")
      return R.nextBool(0.9) ? 1.0 : 0.0;
    if (Semiring == "minplus")
      return R.nextBool(0.06) ? std::numeric_limits<double>::infinity()
                              : static_cast<double>(R.nextInRange(-6, 12)) *
                                    0.5;
    return static_cast<double>(R.nextInRange(-8, 8)) * 0.5; // f64
  }

  FuzzFormat pickFormat(size_t Arity) {
    switch (Arity) {
    case 1:
      return (!Huge && R.nextBool(0.45)) ? FuzzFormat::DenseVec
                                         : FuzzFormat::SparseVec;
    case 2:
      if (Huge)
        return FuzzFormat::Dcsr;
      return R.nextBool(0.5) ? FuzzFormat::Csr : FuzzFormat::Dcsr;
    default:
      return FuzzFormat::Csf3;
    }
  }

  /// A coordinate in [0, D) clustered at the interesting spots of a huge
  /// extent: near zero, near 1 << 62 (the repeatUnbounded scale), near the
  /// top of the extent, or uniform.
  Idx hugeCoord(Idx D) {
    Idx C;
    switch (R.nextBelow(4)) {
    case 0:
      C = static_cast<Idx>(R.nextBelow(8));
      break;
    case 1:
      C = (static_cast<Idx>(1) << 62) - 2 + static_cast<Idx>(R.nextBelow(5));
      break;
    case 2:
      C = D - 1 - static_cast<Idx>(R.nextBelow(4));
      break;
    default:
      C = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(D)));
      break;
    }
    return std::clamp<Idx>(C, 0, D - 1);
  }

  FuzzTensor genTensor(const Shape &Sh) {
    FuzzTensor T;
    T.Name = "t" + std::to_string(Tensors.size());
    T.Shp = Sh;
    T.Fmt = pickFormat(Sh.size());

    uint64_t Target =
        R.nextBool(0.08) ? 0 : 1 + R.nextBelow(Huge ? 6 : 10);
    if (Huge) {
      std::set<Tuple> Got;
      for (uint64_t A = 0; A < Target * 4 && Got.size() < Target; ++A) {
        Tuple Tu;
        for (Attr At : Sh)
          Tu.push_back(hugeCoord(dimOf(At)));
        Got.insert(std::move(Tu));
      }
      for (const Tuple &Tu : Got)
        T.Entries.push_back({Tu, genValue()});
    } else {
      uint64_t Uni = 1;
      for (Attr At : Sh)
        Uni *= static_cast<uint64_t>(dimOf(At)); // dims <= 8, so <= 512
      if (Uni > 0 && Uni <= 128 && R.nextBool(0.12))
        Target = Uni; // full (dense) support
      Target = std::min(Target, Uni);
      // Sorted linear indices decode row-major into lexicographically
      // sorted tuples, which is the storage order every format wants.
      for (uint64_t L : R.sampleDistinctSorted(Target, Uni)) {
        Tuple Tu(Sh.size());
        uint64_t Rem = L;
        for (size_t I = Sh.size(); I-- > 0;) {
          uint64_t D = static_cast<uint64_t>(dimOf(Sh[I]));
          Tu[I] = static_cast<Idx>(Rem % D);
          Rem /= D;
        }
        T.Entries.push_back({std::move(Tu), genValue()});
      }
    }
    Tensors.push_back(T);
    return T;
  }

  const FuzzTensor *findTensor(const std::string &Name) const {
    for (const FuzzTensor &T : Tensors)
      if (T.Name == Name)
        return &T;
    return nullptr;
  }

  /// A Var leaf of the given shape; sometimes reuses an existing tensor of
  /// that shape so one tensor feeds several operands (aliasing coverage).
  Node genLeaf(const Shape &Sh) {
    ETCH_ASSERT(!Sh.empty() && Sh.size() <= 3, "leaf arity out of range");
    const FuzzTensor *Pick = nullptr;
    if (R.nextBool(0.35)) {
      std::vector<const FuzzTensor *> Same;
      for (const FuzzTensor &T : Tensors)
        if (T.Shp == Sh)
          Same.push_back(&T);
      if (!Same.empty())
        Pick = Same[R.nextBelow(Same.size())];
    }
    FuzzTensor T = Pick ? *Pick : genTensor(Sh);
    Node N;
    N.E = Expr::var(T.Name);
    // Read the shape back off the copy: genTensor grew Tensors, so \p Sh
    // is dangling if the caller passed a stored tensor's shape.
    for (Attr A : T.Shp)
      N.Ty.Sig.push_back({A, false});
    return N;
  }

  /// A random sorted attribute set of arity 1..3 from the universe.
  Shape randomShape() {
    uint64_t X = R.nextBelow(10);
    size_t K = X < 4 ? 1 : X < 8 ? 2 : 3;
    const auto &U = fuzzAttrUniverse();
    Shape Sh;
    for (uint64_t I : R.sampleDistinctSorted(K, U.size()))
      Sh.push_back(U[I]);
    return Sh;
  }

  /// Wraps ↑ around \p N for every attribute of \p Target it is missing.
  Node wrapExpand(Node N, const Shape &Target) {
    for (Attr A : shapeMinus(Target, fuzzIndexedShape(N.Ty.Sig))) {
      N.E = Expr::expand(A, N.E);
      fuzzSigExpandInsert(N.Ty.Sig, A);
      N.Ty.Dense = shapeUnion(N.Ty.Dense, {A});
    }
    return N;
  }

  /// `A · B` over target shape \p Sh: each operand covers a random subset
  /// (their union is Sh) and is expanded up to the full shape, so the
  /// product is dense-free — the paper's inferred-expansion form.
  Node genMul(const Shape &Sh, int D) {
    std::vector<int> Side(Sh.size()); // 0 = both, 1 = left only, 2 = right
    bool AnyL = false, AnyR = false;
    for (int &S : Side) {
      S = Huge ? 0 : static_cast<int>(R.nextBelow(3));
      AnyL |= S != 2;
      AnyR |= S != 1;
    }
    if (!AnyL || !AnyR)
      std::fill(Side.begin(), Side.end(), 0);
    Shape SA, SB;
    for (size_t I = 0; I < Sh.size(); ++I) {
      if (Side[I] != 2)
        SA.push_back(Sh[I]);
      if (Side[I] != 1)
        SB.push_back(Sh[I]);
    }
    Node L = wrapExpand(genSimple(SA, D - 1), Sh);
    Node Rn = wrapExpand(genSimple(SB, D - 1), Sh);
    Node N;
    N.E = Expr::mul(L.E, Rn.E);
    for (Attr At : Sh)
      N.Ty.Sig.push_back({At, false});
    return N; // dense = (Sh\SA) ∩ (Sh\SB) = ∅ by construction
  }

  /// A Σ-free, fully indexed, dense-free expression of exactly shape \p Sh
  /// — the only form allowed under a `·` operand.
  Node genSimple(const Shape &Sh, int D) {
    if (D <= 0 || R.nextBool(0.35))
      return genLeaf(Sh);
    if (R.nextBool(0.5)) {
      Node A = genSimple(Sh, D - 1);
      Node B = genSimple(Sh, D - 1);
      Node N;
      N.E = Expr::add(A.E, B.E);
      N.Ty = A.Ty;
      return N;
    }
    return genMul(Sh, D);
  }

  /// Rebuilds \p E with the same operator structure but freshly chosen
  /// leaf tensors of the same shapes (sometimes the very same tensor) —
  /// guaranteed to have the identical typing, which is what `+` needs.
  ExprPtr genLikeExpr(const ExprPtr &E) {
    switch (E->kind()) {
    case ExprKind::Var: {
      const FuzzTensor *T = findTensor(E->varName());
      ETCH_ASSERT(T, "genLike over an unbound variable");
      if (R.nextBool(0.4))
        return E; // alias the same tensor
      // Copy the shape: genLeaf may materialize a fresh tensor, growing
      // Tensors and invalidating T (and a reference to T->Shp with it).
      Shape Sh = T->Shp;
      return genLeaf(Sh).E;
    }
    case ExprKind::Add:
      return Expr::add(genLikeExpr(E->lhs()), genLikeExpr(E->rhs()));
    case ExprKind::Mul:
      return Expr::mul(genLikeExpr(E->lhs()), genLikeExpr(E->rhs()));
    case ExprKind::Sum:
      return Expr::sum(E->attr(), genLikeExpr(E->lhs()));
    case ExprKind::Expand:
      return Expr::expand(E->attr(), genLikeExpr(E->lhs()));
    case ExprKind::Rename:
      return Expr::rename(E->mapping(), genLikeExpr(E->lhs()));
    }
    ETCH_UNREACHABLE("unknown expression kind");
  }

  /// Tries to wrap \p A in an order-preserving rename whose target
  /// attributes have the same extents (a few random attempts; identity
  /// renames are allowed and still exercise the Rename node).
  bool tryRename(const Node &A, Node &Out) {
    Shape Have = fuzzIndexedShape(A.Ty.Sig);
    if (Have.empty())
      return false;
    const auto &U = fuzzAttrUniverse();
    for (int Try = 0; Try < 6; ++Try) {
      auto Pick = R.sampleDistinctSorted(Have.size(), U.size());
      std::vector<Attr> To;
      bool Ok = true;
      for (size_t I = 0; I < Pick.size() && Ok; ++I) {
        Attr T = U[Pick[I]];
        Ok = dimOf(T) == dimOf(Have[I]);
        To.push_back(T);
      }
      if (!Ok)
        continue;
      std::vector<std::pair<Attr, Attr>> Map;
      for (size_t I = 0; I < Have.size(); ++I)
        if (Have[I] != To[I])
          Map.emplace_back(Have[I], To[I]);
      Out.E = Expr::rename(Map, A.E);
      Out.Ty = A.Ty;
      for (FuzzLevel &L : Out.Ty.Sig) {
        if (L.Contracted)
          continue;
        for (const auto &[F, T] : Map)
          if (L.A == F) {
            L.A = T;
            break;
          }
      }
      Shape ND;
      for (Attr Dn : A.Ty.Dense) {
        Attr Y = Dn;
        for (const auto &[F, T] : Map)
          if (F == Dn) {
            Y = T;
            break;
          }
        ND.push_back(Y);
      }
      Out.Ty.Dense = makeShape(ND);
      return true;
    }
    return false;
  }

  Node genExpr(int D) {
    if (D <= 0)
      return genLeaf(randomShape());
    switch (R.nextBelow(6)) {
    case 0:
      return genLeaf(randomShape());
    case 1:
      return genMul(randomShape(), D);
    case 2: { // add: a structural twin, or an independent same-shape term
      Node A = genExpr(D - 1);
      Shape Sh = fuzzIndexedShape(A.Ty.Sig);
      Node B;
      if (A.Ty.Dense.empty() && fuzzMaskOf(A.Ty.Sig) == 0 && !Sh.empty() &&
          Sh.size() <= 3 && R.nextBool(0.5))
        B = genSimple(Sh, D - 1);
      else
        B = Node{genLikeExpr(A.E), A.Ty};
      Node N;
      N.E = Expr::add(A.E, B.E);
      N.Ty = A.Ty;
      return N;
    }
    case 3: { // sum over any indexed, non-expanded attribute
      Node A = genExpr(D - 1);
      Shape Cand = shapeMinus(fuzzIndexedShape(A.Ty.Sig), A.Ty.Dense);
      if (Cand.empty())
        return A;
      Attr At = Cand[R.nextBelow(Cand.size())];
      Node N;
      N.E = Expr::sum(At, A.E);
      N.Ty = A.Ty;
      fuzzSigContract(N.Ty.Sig, At);
      return N;
    }
    case 4: { // expand over a fresh attribute (normal mode only)
      Node A = genExpr(D - 1);
      if (Huge || static_cast<int>(A.Ty.Sig.size()) >= FuzzMaxLevels)
        return A;
      Shape Cand = shapeMinus(Shape(fuzzAttrUniverse()),
                              fuzzIndexedShape(A.Ty.Sig));
      if (Cand.empty())
        return A;
      Attr At = Cand[R.nextBelow(Cand.size())];
      Node N;
      N.E = Expr::expand(At, A.E);
      N.Ty = A.Ty;
      fuzzSigExpandInsert(N.Ty.Sig, At);
      N.Ty.Dense = shapeUnion(N.Ty.Dense, {At});
      return N;
    }
    default: { // rename
      Node A = genExpr(D - 1);
      Node N;
      return tryRename(A, N) ? N : A;
    }
    }
  }
};

} // namespace

FuzzCase etch::genCase(uint64_t Seed, const GenOptions &Opts) {
  return Gen(Seed, Opts).run();
}

//===- fuzz/reorder.cpp - Attribute-order sweeps for fuzz cases -----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/reorder.h"

#include "support/assert.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace etch {

namespace {

/// Pre-interned permutation universes: for every permutation of the fuzz
/// pool there is a fixed quadruple of fresh attributes interned ascending,
/// so realizing an order never perturbs the global interning order at
/// sweep time. 24 * 4 attributes total, built once.
const std::map<FuzzPerm, std::vector<Attr>> &permUniverses() {
  static const std::map<FuzzPerm, std::vector<Attr>> Table = [] {
    std::map<FuzzPerm, std::vector<Attr>> T;
    FuzzPerm P{0, 1, 2, 3};
    int Rank = 0;
    do {
      std::vector<Attr> Us;
      for (int I = 0; I < 4; ++I)
        Us.push_back(Attr::named("fzp" + std::to_string(Rank) + "_" +
                                 std::to_string(I)));
      T.emplace(P, std::move(Us));
      ++Rank;
    } while (std::next_permutation(P.begin(), P.end()));
    return T;
  }();
  return Table;
}

/// The dense-storage extent guard of fuzzValidate; a reorder that lands a
/// huge extent on a CSR row level downgrades the tensor to DCSR instead of
/// becoming illegal.
constexpr Idx DenseExtentGuard = 1 << 20;

ExprPtr mapExpr(const ExprPtr &E, const std::map<uint32_t, Attr> &M) {
  auto MapA = [&M](Attr A) {
    auto It = M.find(A.id());
    return It == M.end() ? A : It->second;
  };
  switch (E->kind()) {
  case ExprKind::Var:
    return Expr::var(E->varName());
  case ExprKind::Add:
    return Expr::add(mapExpr(E->lhs(), M), mapExpr(E->rhs(), M));
  case ExprKind::Mul:
    return Expr::mul(mapExpr(E->lhs(), M), mapExpr(E->rhs(), M));
  case ExprKind::Sum:
    return Expr::sum(MapA(E->attr()), mapExpr(E->lhs(), M));
  case ExprKind::Expand:
    return Expr::expand(MapA(E->attr()), mapExpr(E->lhs(), M));
  case ExprKind::Rename: {
    std::vector<std::pair<Attr, Attr>> Pairs;
    for (const auto &[From, To] : E->mapping())
      Pairs.emplace_back(MapA(From), MapA(To));
    return Expr::rename(std::move(Pairs), mapExpr(E->lhs(), M));
  }
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

std::string permToString(const FuzzPerm &Perm) {
  const auto &U = fuzzAttrUniverse();
  std::string S = "order";
  for (int I : Perm)
    S += " " + U[static_cast<size_t>(I)].name();
  return S;
}

} // namespace

std::optional<FuzzCase> fuzzReorder(const FuzzCase &C, const FuzzPerm &Perm,
                                    std::string *Err) {
  auto fail = [&](const std::string &Why) -> std::optional<FuzzCase> {
    if (Err)
      *Err = Why;
    return std::nullopt;
  };
  auto It = permUniverses().find(Perm);
  if (It == permUniverses().end())
    return fail("not a permutation of the fuzz universe");
  const std::vector<Attr> &NewU = It->second;
  const std::vector<Attr> &OldU = fuzzAttrUniverse();

  // Original universe attr at new-order position i: OldU[Perm[i]] -> NewU[i].
  std::map<uint32_t, Attr> M;
  for (size_t I = 0; I < NewU.size(); ++I)
    M[OldU[static_cast<size_t>(Perm[I])].id()] = NewU[I];
  auto MapA = [&M, &fail](Attr A) -> std::optional<Attr> {
    auto F = M.find(A.id());
    if (F == M.end())
      return std::nullopt;
    return F->second;
  };

  FuzzCase R;
  R.SemiringName = C.SemiringName;
  for (const auto &[A, N] : C.Dims) {
    auto NA = MapA(A);
    if (!NA)
      return fail("case uses an attribute outside the fuzz universe");
    R.Dims.emplace_back(*NA, N);
  }
  std::sort(R.Dims.begin(), R.Dims.end());

  for (const FuzzTensor &T : C.Tensors) {
    FuzzTensor NT;
    NT.Name = T.Name;
    NT.Fmt = T.Fmt;
    // Map the shape, then re-sort it into the new hierarchy; OldPos[j] is
    // the original level feeding new level j.
    std::vector<std::pair<Attr, size_t>> Mapped;
    for (size_t L = 0; L < T.Shp.size(); ++L) {
      auto NA = MapA(T.Shp[L]);
      if (!NA)
        return fail("tensor attribute outside the fuzz universe");
      Mapped.emplace_back(*NA, L);
    }
    std::sort(Mapped.begin(), Mapped.end());
    std::vector<size_t> OldPos;
    for (const auto &[A, L] : Mapped) {
      NT.Shp.push_back(A);
      OldPos.push_back(L);
    }
    NT.Entries.reserve(T.Entries.size());
    for (const FuzzEntry &E : T.Entries) {
      FuzzEntry NE;
      NE.Val = E.Val;
      for (size_t L : OldPos)
        NE.Coords.push_back(E.Coords[L]);
      NT.Entries.push_back(std::move(NE));
    }
    std::sort(NT.Entries.begin(), NT.Entries.end(),
              [](const FuzzEntry &A, const FuzzEntry &B) {
                return A.Coords < B.Coords;
              });
    // A CSR whose new row level has a huge extent would trip the dense
    // storage guard; store the permuted copy doubly compressed instead.
    if (NT.Fmt == FuzzFormat::Csr && R.dimOf(NT.Shp[0]) > DenseExtentGuard)
      NT.Fmt = FuzzFormat::Dcsr;
    R.Tensors.push_back(std::move(NT));
  }

  R.E = mapExpr(C.E, M);
  std::string VErr;
  if (!fuzzValidate(R, &VErr))
    return fail("illegal under this order: " + VErr);
  return R;
}

std::vector<FuzzPerm> fuzzLegalOrders(const FuzzCase &C, size_t MaxOrders) {
  std::vector<FuzzPerm> Out;
  if (!fuzzValidate(C))
    return Out;
  // Attributes the case actually constrains; permutations that agree on
  // them produce identical cases, so dedup by the projection.
  std::set<uint32_t> Used;
  for (const auto &[A, N] : C.Dims)
    Used.insert(A.id());
  const auto &U = fuzzAttrUniverse();
  std::set<std::vector<int>> SeenProj;
  FuzzPerm P{0, 1, 2, 3};
  do {
    std::vector<int> Proj;
    for (int I : P)
      if (Used.count(U[static_cast<size_t>(I)].id()))
        Proj.push_back(I);
    if (!SeenProj.insert(Proj).second)
      continue;
    if (fuzzReorder(C, P))
      Out.push_back(P);
    if (Out.size() >= MaxOrders)
      break;
  } while (std::next_permutation(P.begin(), P.end()));
  return Out;
}

std::string FuzzOrderReport::toString() const {
  if (!failing())
    return "ok (" + std::to_string(OrdersRun) + " orders)";
  std::ostringstream Os;
  Os << "diverges under " << permToString(FailingPerm);
  if (!TotalMismatch.empty())
    Os << "\noracle total mismatch: " << TotalMismatch;
  if (!Rep.Divs.empty() || Rep.Invalid)
    Os << "\n" << Rep.toString();
  return Os.str();
}

FuzzOrderReport runFuzzCaseOrders(const FuzzCase &C, size_t MaxOrders,
                                  VmBackend Backend) {
  FuzzOrderReport R;
  auto Base = fuzzOracleTotal(C);
  if (!Base)
    return R; // Invalid cases are not failures (mirrors runFuzzCase).
  const bool Approx = C.SemiringName == "f64";
  for (const FuzzPerm &Perm : fuzzLegalOrders(C, MaxOrders)) {
    auto RC = fuzzReorder(C, Perm);
    ETCH_ASSERT(RC, "legal order must reorder cleanly");
    ++R.OrdersRun;
    // Cross-order oracle agreement: totals are attribute-independent.
    auto Tot = fuzzOracleTotal(*RC);
    ETCH_ASSERT(Tot, "reordered case re-validates");
    bool TotOk;
    if (Approx) {
      double Scale =
          std::max({1.0, std::fabs(Base->Num), std::fabs(Tot->Num)});
      TotOk = std::fabs(Base->Num - Tot->Num) <= 1e-9 * Scale;
    } else {
      TotOk = Base->Text == Tot->Text;
    }
    if (!TotOk) {
      R.FailingPerm = Perm;
      R.TotalMismatch = "want " + Base->Text + "  got " + Tot->Text;
      return R;
    }
    // The full executor matrix under the permuted order.
    FuzzReport Rep = runFuzzCase(*RC, Backend);
    if (Rep.failing() || Rep.Invalid) {
      R.FailingPerm = Perm;
      R.Rep = std::move(Rep);
      return R;
    }
  }
  return R;
}

} // namespace etch

//===- fuzz/reorder.h - Attribute-order sweeps for fuzz cases --*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a fuzz case under alternative global attribute orders. The global
/// order is the interning order, so an alternative order is realized by
/// *remapping* the case onto a pre-interned permutation universe: for each
/// of the 4! = 24 permutations of the fuzz attribute pool there is a fixed
/// set of fresh attributes interned ascending, and `fuzzReorder` rewrites
/// dims, tensors (levels and entries re-sorted into the new hierarchy),
/// and the expression onto it. Orders that break validation (a rename that
/// stops being monotone, dense storage landing on a huge extent the
/// CSR→DCSR downgrade cannot absorb) are skipped as *illegal*, mirroring
/// Definition 5.7 rather than weakening it.
///
/// `runFuzzCaseOrders` is the executor-matrix sweep: every legal order's
/// case runs through the full `runFuzzCase` matrix, and its oracle total
/// must also agree with the original case's total (the denotational
/// semantics is permutation-equivariant, so any disagreement is a bug in
/// either a semantics or the reorder transformation itself).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_REORDER_H
#define ETCH_FUZZ_REORDER_H

#include "fuzz/exec.h"

namespace etch {

/// A permutation of fuzz-universe positions: Perm[i] = the original
/// universe index whose attribute comes i-th in the new global order.
using FuzzPerm = std::vector<int>;

/// Rewrites \p C onto the permutation universe of \p Perm. Returns nullopt
/// (with a diagnostic) if the reordered case fails validation — the order
/// is illegal for this case. The identity permutation returns a case
/// equivalent to \p C modulo attribute names.
std::optional<FuzzCase> fuzzReorder(const FuzzCase &C, const FuzzPerm &Perm,
                                    std::string *Err = nullptr);

/// The distinct legal orders of \p C (permutations projected to the
/// attributes the case actually uses), identity-equivalent order first,
/// capped at \p MaxOrders. A case that itself fails validation has none.
std::vector<FuzzPerm> fuzzLegalOrders(const FuzzCase &C,
                                      size_t MaxOrders = 24);

/// The outcome of an order sweep.
struct FuzzOrderReport {
  size_t OrdersRun = 0;     ///< Legal orders executed (identity included).
  FuzzPerm FailingPerm;     ///< The first failing permutation, if any.
  FuzzReport Rep;           ///< Its executor report (or empty).
  std::string TotalMismatch; ///< Cross-order oracle-total disagreement.

  bool failing() const { return !FailingPerm.empty(); }
  std::string toString() const;
};

/// Runs \p C under every legal order (up to \p MaxOrders): the full
/// executor matrix per order plus the cross-order oracle-total check.
/// Stops at the first failing order. \p Backend selects the compiled
/// executor(s), as in runFuzzCase.
FuzzOrderReport runFuzzCaseOrders(const FuzzCase &C, size_t MaxOrders = 24,
                                  VmBackend Backend = VmBackend::Both);

} // namespace etch

#endif // ETCH_FUZZ_REORDER_H

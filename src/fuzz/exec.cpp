//===- fuzz/exec.cpp - The differential executor matrix -------------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/exec.h"

#include "compiler/bytecode.h"
#include "compiler/frontend.h"
#include "compiler/imp.h"
#include "compiler/jit.h"
#include "compiler/vm.h"
#include "core/eval.h"
#include "core/semiring.h"
#include "formats/csf.h"
#include "formats/matrices.h"
#include "formats/vectors.h"
#include "fuzz/dynstream.h"
#include "support/assert.h"

#include <cmath>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>

using namespace etch;

namespace {

/// Leaf storage element: the semiring's value type, except the boolean
/// semiring which stores uint8_t indicators (std::vector<bool> has no
/// data() to stream over).
template <Semiring S>
using StoreT = std::conditional_t<std::is_same_v<typename S::Value, bool>,
                                  uint8_t, typename S::Value>;

/// All of a case's tensors materialized into real format storage. Hv is
/// only populated by the formats matrix (addHashed): every sparse-vector
/// tensor re-materialized as a hashed coordinate level.
template <Semiring S> struct Mats {
  using V = StoreT<S>;
  std::map<std::string, SparseVector<V>> Sv;
  std::map<std::string, DenseVector<V>> Dv;
  std::map<std::string, CsrMatrix<V>> Csr;
  std::map<std::string, DcsrMatrix<V>> Dcsr;
  std::map<std::string, CsfTensor3<V>> Csf;
  std::map<std::string, HashedVector<V>> Hv;
};

/// Builds format arrays directly from the (sorted, distinct, validated)
/// case entries. The fromCoo builders are deliberately not used: their
/// canonicalization drops values equal to `V()`, which is the additive
/// identity for (+,*) semirings but a perfectly meaningful value under
/// (min,+), where the zero is +inf.
template <Semiring S> Mats<S> materialize(const FuzzCase &C) {
  using V = StoreT<S>;
  Mats<S> M;
  auto Conv = [](double Raw) { return static_cast<V>(fuzzValue<S>(Raw)); };
  for (const FuzzTensor &T : C.Tensors) {
    const auto &E = T.Entries;
    switch (T.Fmt) {
    case FuzzFormat::SparseVec: {
      SparseVector<V> X(C.dimOf(T.Shp[0]));
      for (const FuzzEntry &En : E)
        X.push(En.Coords[0], Conv(En.Val));
      M.Sv.emplace(T.Name, std::move(X));
      break;
    }
    case FuzzFormat::DenseVec: {
      // Unset positions hold the semiring zero, not V() (again: +inf under
      // (min,+)).
      DenseVector<V> X(C.dimOf(T.Shp[0]), static_cast<V>(S::zero()));
      for (const FuzzEntry &En : E)
        X.Val[static_cast<size_t>(En.Coords[0])] = Conv(En.Val);
      M.Dv.emplace(T.Name, std::move(X));
      break;
    }
    case FuzzFormat::Csr: {
      Idx Rows = C.dimOf(T.Shp[0]);
      CsrMatrix<V> X(Rows, C.dimOf(T.Shp[1]));
      size_t Q = 0;
      for (Idx R = 0; R < Rows; ++R) {
        X.Pos[static_cast<size_t>(R)] = X.Crd.size();
        while (Q < E.size() && E[Q].Coords[0] == R) {
          X.Crd.push_back(E[Q].Coords[1]);
          X.Val.push_back(Conv(E[Q].Val));
          ++Q;
        }
      }
      X.Pos[static_cast<size_t>(Rows)] = X.Crd.size();
      M.Csr.emplace(T.Name, std::move(X));
      break;
    }
    case FuzzFormat::Dcsr: {
      DcsrMatrix<V> X;
      X.NumRows = C.dimOf(T.Shp[0]);
      X.NumCols = C.dimOf(T.Shp[1]);
      X.Pos.push_back(0);
      for (size_t Q = 0; Q < E.size();) {
        Idx R = E[Q].Coords[0];
        X.RowCrd.push_back(R);
        while (Q < E.size() && E[Q].Coords[0] == R) {
          X.Crd.push_back(E[Q].Coords[1]);
          X.Val.push_back(Conv(E[Q].Val));
          ++Q;
        }
        X.Pos.push_back(X.Crd.size());
      }
      M.Dcsr.emplace(T.Name, std::move(X));
      break;
    }
    case FuzzFormat::Csf3: {
      CsfTensor3<V> X;
      X.DimI = C.dimOf(T.Shp[0]);
      X.DimJ = C.dimOf(T.Shp[1]);
      X.DimK = C.dimOf(T.Shp[2]);
      X.Pos0.push_back(0);
      for (size_t Q = 0; Q < E.size();) {
        Idx I = E[Q].Coords[0];
        X.Crd0.push_back(I);
        while (Q < E.size() && E[Q].Coords[0] == I) {
          Idx J = E[Q].Coords[1];
          X.Crd1.push_back(J);
          X.Pos1.push_back(X.Crd2.size());
          while (Q < E.size() && E[Q].Coords[0] == I && E[Q].Coords[1] == J) {
            X.Crd2.push_back(E[Q].Coords[2]);
            X.Val.push_back(Conv(E[Q].Val));
            ++Q;
          }
        }
        X.Pos0.push_back(X.Crd1.size());
      }
      X.Pos1.push_back(X.Crd2.size());
      M.Csf.emplace(T.Name, std::move(X));
      break;
    }
    }
  }
  return M;
}

/// Re-materializes every sparse-vector tensor as a hashed coordinate level
/// (insertion via the probe table, then a frozen sorted snapshot). Entries
/// are distinct, so accumulate never merges — the snapshot holds exactly
/// the case data, bit-identical to the SparseVector layout.
template <Semiring S> void addHashed(Mats<S> &M, const FuzzCase &C) {
  using V = StoreT<S>;
  for (const FuzzTensor &T : C.Tensors) {
    if (T.Fmt != FuzzFormat::SparseVec)
      continue;
    HashedVector<V> H(C.dimOf(T.Shp[0]), T.Entries.size());
    for (const FuzzEntry &En : T.Entries)
      H.accumulate(En.Coords[0], static_cast<V>(fuzzValue<S>(En.Val)));
    H.freeze();
    M.Hv.emplace(T.Name, std::move(H));
  }
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

/// Materializes every dense (expand-produced) attribute of \p R over its
/// full extent [0, dim). KRelation::expandFinite cannot do this (it asserts
/// the attribute is not already in the shape), so replay each entry against
/// a copy whose dense set shrinks by one attribute at a time.
template <Semiring S>
KRelation<S> densifyAll(KRelation<S> R, const FuzzCase &C) {
  while (!R.denseAttrs().empty()) {
    Attr A = R.denseAttrs().front();
    Idx N = C.dimOf(A);
    KRelation<S> Next(R.shape(), shapeMinus(R.denseAttrs(), Shape{A}));
    int Pos = shapeIndexOf(Next.finiteShape(), A);
    ETCH_ASSERT(Pos >= 0, "densified attribute must be finite");
    for (const auto &[T, V] : R.entries())
      for (Idx I = 0; I < N; ++I) {
        Tuple U = T;
        U.insert(U.begin() + Pos, I);
        Next.insert(U, V);
      }
    R = std::move(Next);
  }
  R.pruneZeros();
  return R;
}

//===----------------------------------------------------------------------===//
// Comparison and reporting
//===----------------------------------------------------------------------===//

/// Scalar agreement. Exact for i64/bool and for (min,+) — min and + of the
/// generator's dyadic-rational values re-associate exactly — and within a
/// scaled tolerance for f64, whose parallel and compiled legs re-associate
/// sums. Note KRelation::approxEquals is NOT usable for (min,+): its scaled
/// tolerance is infinite against the +inf zero of missing entries.
template <Semiring S> bool valEq(typename S::Value A, typename S::Value B) {
  if (A == B)
    return true;
  if constexpr (std::is_same_v<S, F64Semiring>) {
    double Scale = std::max({1.0, std::fabs(A), std::fabs(B)});
    return std::fabs(A - B) <= 1e-9 * Scale;
  } else {
    return false;
  }
}

template <Semiring S>
bool relEq(const KRelation<S> &A, const KRelation<S> &B) {
  if constexpr (std::is_same_v<S, F64Semiring>)
    return A.approxEquals(B);
  else
    return A.equals(B);
}

template <Semiring S> std::string valStr(typename S::Value V) {
  std::ostringstream Os;
  if constexpr (std::is_same_v<typename S::Value, bool>)
    Os << (V ? "true" : "false");
  else
    Os << V;
  return Os.str();
}

std::string cap(std::string Str, size_t Max = 2000) {
  if (Str.size() > Max) {
    Str.resize(Max);
    Str += " ...";
  }
  return Str;
}

void reportDiv(FuzzReport &Rep, const FuzzCase &C, std::string Leg,
               const std::string &Detail) {
  Rep.Divs.push_back(
      FuzzDivergence{std::move(Leg), cap(C.summary() + "\n" + Detail)});
}

template <Semiring S>
std::string relDetail(const KRelation<S> &Want, const KRelation<S> &Got) {
  return "want: " + Want.toString() + "\n got: " + Got.toString();
}

template <Semiring S>
std::string valDetail(typename S::Value Want, typename S::Value Got) {
  return "want: " + valStr<S>(Want) + "  got: " + valStr<S>(Got);
}

const char *policyName(SearchPolicy P) {
  switch (P) {
  case SearchPolicy::Linear:
    return "linear";
  case SearchPolicy::Binary:
    return "binary";
  case SearchPolicy::Gallop:
    return "gallop";
  }
  ETCH_UNREACHABLE("unknown search policy");
}

//===----------------------------------------------------------------------===//
// Runtime-stream legs
//===----------------------------------------------------------------------===//

/// Builds the type-erased runtime stream for an expression, mirroring the
/// placement discipline fuzzValidate derives (and the compiler lowers):
/// Σ contracts the unique indexed level carrying its attribute; ↑ inserts a
/// repeat level at the shallowest slot after `attrsBefore` indexed levels.
template <Semiring S, SearchPolicy P> struct StreamBuilder {
  const FuzzCase &C;
  const Mats<S> &M;
  bool Hashed1D = false; ///< Sparse vectors stream from M.Hv, not M.Sv.

  struct Res {
    DynStream<S> Q;
    FuzzSig Sig;
  };

  Res build(const ExprPtr &E) const {
    switch (E->kind()) {
    case ExprKind::Var: {
      const FuzzTensor *T = C.tensor(E->varName());
      ETCH_ASSERT(T, "expression references an unknown tensor");
      Res R;
      for (Attr A : T->Shp)
        R.Sig.push_back(FuzzLevel{A, false});
      switch (T->Fmt) {
      case FuzzFormat::SparseVec:
        if (Hashed1D)
          R.Q = Erased<S, 1>(M.Hv.at(T->Name).template stream<P>(), 0u);
        else
          R.Q = Erased<S, 1>(M.Sv.at(T->Name).template stream<P>(), 0u);
        break;
      case FuzzFormat::DenseVec:
        R.Q = Erased<S, 1>(M.Dv.at(T->Name).stream(), 0u);
        break;
      case FuzzFormat::Csr:
        R.Q = Erased<S, 2>(M.Csr.at(T->Name).template stream<P>(), 0u);
        break;
      case FuzzFormat::Dcsr:
        R.Q = Erased<S, 2>(M.Dcsr.at(T->Name).template stream<P, P>(), 0u);
        break;
      case FuzzFormat::Csf3:
        R.Q = Erased<S, 3>(M.Csf.at(T->Name).template stream<P>(), 0u);
        break;
      }
      return R;
    }
    case ExprKind::Mul: {
      Res A = build(E->lhs()), B = build(E->rhs());
      return Res{dynMul<S>(A.Q, B.Q), A.Sig};
    }
    case ExprKind::Add: {
      Res A = build(E->lhs()), B = build(E->rhs());
      return Res{dynAdd<S>(A.Q, B.Q), A.Sig};
    }
    case ExprKind::Sum: {
      Res A = build(E->lhs());
      int K = -1;
      for (size_t L = 0; L < A.Sig.size(); ++L)
        if (!A.Sig[L].Contracted && A.Sig[L].A == E->attr()) {
          K = static_cast<int>(L);
          break;
        }
      ETCH_ASSERT(K >= 0, "sum attribute not in the signature");
      Res O;
      O.Q = dynContractAt<S>(A.Q, K);
      O.Sig = A.Sig;
      O.Sig[static_cast<size_t>(K)].Contracted = true;
      return O;
    }
    case ExprKind::Expand: {
      Res A = build(E->lhs());
      int Depth = attrsBefore(fuzzIndexedShape(A.Sig), E->attr());
      size_t K = 0;
      for (int Seen = 0; K < A.Sig.size() && Seen < Depth; ++K)
        if (!A.Sig[K].Contracted)
          ++Seen;
      Res O;
      O.Q = dynExpandAt<S>(A.Q, static_cast<int>(K), C.dimOf(E->attr()));
      O.Sig = A.Sig;
      fuzzSigExpandInsert(O.Sig, E->attr());
      return O;
    }
    case ExprKind::Rename: {
      // Pure re-labelling: the stream is untouched, only the signature's
      // indexed attributes change (extents are equal by validation).
      Res A = build(E->lhs());
      for (FuzzLevel &L : A.Sig) {
        if (L.Contracted)
          continue;
        for (const auto &[From, To] : E->mapping())
          if (L.A == From) {
            L.A = To;
            break;
          }
      }
      return A;
    }
    }
    ETCH_UNREACHABLE("unknown expression kind");
  }
};

template <Semiring S, SearchPolicy P>
void runStreamLegs(const FuzzCase &C, const FuzzTyping &Ty, const Mats<S> &M,
                   ThreadPool &Pool, const KRelation<S> &Want,
                   typename S::Value WantTotal, FuzzReport &Rep,
                   bool Hashed1D = false) {
  std::string Tag = std::string(Hashed1D ? "hstream/" : "stream/") +
                    policyName(P);
  StreamBuilder<S, P> B{C, M, Hashed1D};
  auto R = B.build(C.E);
  ETCH_ASSERT(R.Sig == Ty.Sig, "builder and validator signatures agree");
  uint32_t Mask = fuzzMaskOf(R.Sig);
  ETCH_ASSERT(Mask == dynMask<S>(R.Q), "mask bookkeeping agrees");
  Shape OutSh = fuzzIndexedShape(R.Sig);

  // Mask-aware evaluation (every case).
  KRelation<S> Got = dynEval<S>(R.Q, OutSh);
  if (!relEq<S>(Got, Want))
    reportDiv(Rep, C, Tag + "/eval", relDetail<S>(Want, Got));

  // The library's own evalStream, sound when nothing is contracted.
  if (Mask == 0) {
    KRelation<S> Got2 = std::visit(
        [&OutSh](const auto &E) -> KRelation<S> {
          using T = std::decay_t<decltype(E)>;
          if constexpr (std::is_same_v<T, std::monostate>)
            ETCH_UNREACHABLE("evaluation of an empty stream");
          else
            return evalStream<S>(E, OutSh);
        },
        R.Q);
    if (!relEq<S>(Got2, Want))
      reportDiv(Rep, C, Tag + "/evalStream", relDetail<S>(Want, Got2));
  }

  // The library's sumAll (sound for any mask).
  typename S::Value Tot = dynSumAll<S>(R.Q);
  if (!valEq<S>(Tot, WantTotal))
    reportDiv(Rep, C, Tag + "/sumAll", valDetail<S>(WantTotal, Tot));

  // Parallel drivers need an indexed outermost level to range-partition.
  if ((Mask & 1) == 0 && !R.Sig.empty()) {
    Idx Extent = C.dimOf(R.Sig[0].A);
    for (size_t NC : {size_t(1), size_t(3)}) {
      auto Chunks = partitionDense(Extent, NC);
      auto PTot = dynParallelSumAll<S>(Pool, R.Q, Chunks);
      if (!valEq<S>(PTot, WantTotal))
        reportDiv(Rep, C, Tag + "/psum" + std::to_string(NC),
                  valDetail<S>(WantTotal, PTot));
      KRelation<S> PRel = dynParallelEval<S>(Pool, R.Q, OutSh, Chunks);
      if (!relEq<S>(PRel, Want))
        reportDiv(Rep, C, Tag + "/peval" + std::to_string(NC),
                  relDetail<S>(Want, PRel));
      if (Mask == 0) {
        KRelation<S> PRel2 = std::visit(
            [&](const auto &E) -> KRelation<S> {
              using T = std::decay_t<decltype(E)>;
              if constexpr (std::is_same_v<T, std::monostate>)
                ETCH_UNREACHABLE("evaluation of an empty stream");
              else
                return parallelEvalStream<S>(Pool, E, OutSh, Chunks);
            },
            R.Q);
        if (!relEq<S>(PRel2, Want))
          reportDiv(Rep, C, Tag + "/pevalStream" + std::to_string(NC),
                    relDetail<S>(Want, PRel2));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Compiled (VM) legs
//===----------------------------------------------------------------------===//

const ScalarAlgebra *algebraFor(const std::string &Name) {
  if (Name == "f64")
    return &f64Algebra();
  if (Name == "i64")
    return &i64Algebra();
  if (Name == "bool")
    return &boolAlgebra();
  if (Name == "minplus")
    return &minPlusAlgebra();
  return nullptr;
}

/// How the formats matrix re-binds sparse-vector tensors: as stored
/// (None), or overridden to a hashed, compressed, or dense level. All
/// three overrides bind the same sorted snapshot data, so the compiled
/// legs compute over identical inputs.
enum class VecOverride { None, Hashed, Compressed, Dense };

TensorBinding bindingFor(const FuzzTensor &T, SearchPolicy P,
                         VecOverride Ov = VecOverride::None, size_t Nnz = 0) {
  switch (T.Fmt) {
  case FuzzFormat::SparseVec:
    switch (Ov) {
    case VecOverride::None:
    case VecOverride::Compressed:
      break;
    case VecOverride::Hashed:
      return hashedVecBinding(T.Name, T.Shp[0], hashedTabSizeFor(Nnz), P);
    case VecOverride::Dense:
      return denseVecBinding(T.Name, T.Shp[0]);
    }
    return sparseVecBinding(T.Name, T.Shp[0], P);
  case FuzzFormat::DenseVec:
    return denseVecBinding(T.Name, T.Shp[0]);
  case FuzzFormat::Csr:
    return csrBinding(T.Name, T.Shp[0], T.Shp[1], P);
  case FuzzFormat::Dcsr:
    return dcsrBinding(T.Name, T.Shp[0], T.Shp[1], P);
  case FuzzFormat::Csf3:
    return csf3Binding(T.Name, T.Shp[0], T.Shp[1], T.Shp[2], P);
  }
  ETCH_UNREACHABLE("unknown format");
}

template <Semiring S>
void bindArrays(VmMemory &Mem, const FuzzTensor &T, const Mats<S> &M,
                VecOverride Ov = VecOverride::None) {
  using V = StoreT<S>;
  auto PutVals = [&Mem](const std::string &Name, const std::vector<V> &Data) {
    if constexpr (std::is_same_v<typename S::Value, bool>) {
      std::vector<ImpValue> W;
      W.reserve(Data.size());
      for (V X : Data)
        W.push_back(static_cast<bool>(X));
      Mem.setArray(Name, std::move(W));
    } else if constexpr (std::is_same_v<typename S::Value, int64_t>) {
      Mem.setArrayI64(Name, Data);
    } else {
      Mem.setArrayF64(Name, Data);
    }
  };
  auto PutPos = [&Mem](const std::string &Name,
                       const std::vector<size_t> &Pos) {
    Mem.setArrayI64(Name,
                    std::vector<int64_t>(Pos.begin(), Pos.end()));
  };
  switch (T.Fmt) {
  case FuzzFormat::SparseVec: {
    const auto &X = M.Sv.at(T.Name);
    if (Ov == VecOverride::Hashed) {
      const auto &H = M.Hv.at(T.Name);
      Mem.setArrayI64(T.Name + "_pos0",
                      {0, static_cast<int64_t>(H.Crd.size())});
      Mem.setArrayI64(T.Name + "_crd0", H.Crd);
      PutVals(T.Name + "_vals", H.Val);
      int64_t TabSize = hashedTabSizeFor(H.Crd.size());
      auto [Key, Rank] = hashedProbeArrays(H.Crd, TabSize);
      Mem.setArrayI64(T.Name + "_hkey0", Key);
      Mem.setArrayI64(T.Name + "_hpos0", Rank);
      break;
    }
    if (Ov == VecOverride::Dense) {
      // Unset positions hold the semiring zero (+inf under (min,+)).
      std::vector<V> D(static_cast<size_t>(X.Size),
                       static_cast<V>(S::zero()));
      for (size_t Q = 0; Q < X.Crd.size(); ++Q)
        D[static_cast<size_t>(X.Crd[Q])] = X.Val[Q];
      PutVals(T.Name + "_vals", D);
      break;
    }
    Mem.setArrayI64(T.Name + "_pos0",
                    {0, static_cast<int64_t>(X.Crd.size())});
    Mem.setArrayI64(T.Name + "_crd0", X.Crd);
    PutVals(T.Name + "_vals", X.Val);
    break;
  }
  case FuzzFormat::DenseVec: {
    PutVals(T.Name + "_vals", M.Dv.at(T.Name).Val);
    break;
  }
  case FuzzFormat::Csr: {
    const auto &X = M.Csr.at(T.Name);
    PutPos(T.Name + "_pos1", X.Pos);
    Mem.setArrayI64(T.Name + "_crd1", X.Crd);
    PutVals(T.Name + "_vals", X.Val);
    break;
  }
  case FuzzFormat::Dcsr: {
    const auto &X = M.Dcsr.at(T.Name);
    Mem.setArrayI64(T.Name + "_pos0",
                    {0, static_cast<int64_t>(X.RowCrd.size())});
    Mem.setArrayI64(T.Name + "_crd0", X.RowCrd);
    PutPos(T.Name + "_pos1", X.Pos);
    Mem.setArrayI64(T.Name + "_crd1", X.Crd);
    PutVals(T.Name + "_vals", X.Val);
    break;
  }
  case FuzzFormat::Csf3: {
    const auto &X = M.Csf.at(T.Name);
    Mem.setArrayI64(T.Name + "_pos0",
                    {0, static_cast<int64_t>(X.Crd0.size())});
    Mem.setArrayI64(T.Name + "_crd0", X.Crd0);
    PutPos(T.Name + "_pos1", X.Pos0);
    Mem.setArrayI64(T.Name + "_crd1", X.Crd1);
    PutPos(T.Name + "_pos2", X.Pos1);
    Mem.setArrayI64(T.Name + "_crd2", X.Crd2);
    PutVals(T.Name + "_vals", X.Val);
    break;
  }
  }
}

template <Semiring S>
std::optional<typename S::Value> fromImp(const ImpValue &V) {
  if constexpr (std::is_same_v<typename S::Value, bool>) {
    if (const bool *B = std::get_if<bool>(&V))
      return *B;
  } else if constexpr (std::is_same_v<typename S::Value, int64_t>) {
    if (const int64_t *I = std::get_if<int64_t>(&V))
      return *I;
  } else {
    if (const double *D = std::get_if<double>(&V))
      return *D;
  }
  return std::nullopt;
}

/// Bit-level ImpValue equality: f64 compares as bit patterns (the two VMs
/// promise bit-identical results, so even NaN payloads must agree).
bool impBitsEq(const ImpValue &A, const ImpValue &B) {
  if (impTypeOf(A) != impTypeOf(B))
    return false;
  if (const double *X = std::get_if<double>(&A)) {
    uint64_t XB, YB;
    std::memcpy(&XB, X, sizeof(XB));
    std::memcpy(&YB, &std::get<double>(B), sizeof(YB));
    return XB == YB;
  }
  return A == B;
}

std::string impToStr(const ImpValue &V) {
  return EExpr::constant(V)->toString();
}

/// Checks one executor's "out" against the oracle total, reporting under
/// \p Tag. Returns the scalar read back (nullopt when missing/mistyped).
template <Semiring S>
std::optional<ImpValue> checkVmOut(const FuzzCase &C, VmMemory &Mem,
                                   const VmRunResult &R,
                                   typename S::Value WantTotal,
                                   const std::string &Tag, FuzzReport &Rep) {
  if (!R.ok()) {
    reportDiv(Rep, C, Tag, "vm error: " + *R.Error);
    return std::nullopt;
  }
  auto Out = Mem.getScalar("out");
  if (!Out) {
    reportDiv(Rep, C, Tag, "program produced no 'out' scalar");
    return std::nullopt;
  }
  auto Got = fromImp<S>(*Out);
  if (!Got) {
    reportDiv(Rep, C, Tag, "'out' has the wrong scalar type");
    return std::nullopt;
  }
  if (!valEq<S>(*Got, WantTotal))
    reportDiv(Rep, C, Tag, valDetail<S>(WantTotal, *Got));
  return Out;
}

/// Runs the three compiled legs (O0/linear, O1/binary, O2/gallop) on tree
/// and/or bytecode executors. \p Ov overrides every sparse-vector tensor's
/// binding (formats matrix); \p FormTag prefixes the leg tags ("h"/"c"/"d"
/// -> "hvm/O1", "hbvm/O1", ...). When \p OutByOpt is non-null, the output
/// scalar of each opt level is stored there for cross-form bit comparison.
template <Semiring S>
void runVmLegs(const FuzzCase &C, const Mats<S> &M,
               typename S::Value WantTotal, VmBackend Backend,
               FuzzReport &Rep, VecOverride Ov = VecOverride::None,
               const char *FormTag = "",
               std::optional<ImpValue> *OutByOpt = nullptr) {
  const ScalarAlgebra *Alg = algebraFor(C.SemiringName);
  ETCH_ASSERT(Alg, "dispatch guarantees a known semiring");
  const struct {
    int Opt;
    SearchPolicy P;
  } Legs[] = {{0, SearchPolicy::Linear},
              {1, SearchPolicy::Binary},
              {2, SearchPolicy::Gallop}};
  bool Tree = Backend != VmBackend::Bytecode;
  bool Bc = Backend == VmBackend::Bytecode || Backend == VmBackend::Both;
  bool Nat = Backend == VmBackend::Native;
  for (const auto &Leg : Legs) {
    std::string Level = "O" + std::to_string(Leg.Opt);
    LowerCtx Ctx;
    Ctx.Alg = Alg;
    Ctx.OptLevel = Leg.Opt;
    for (const auto &[A, N] : C.Dims)
      Ctx.setDim(A, N);
    for (const FuzzTensor &T : C.Tensors) {
      size_t Nnz = T.Fmt == FuzzFormat::SparseVec && Ov != VecOverride::None
                       ? M.Hv.at(T.Name).nnz()
                       : 0;
      Ctx.bind(bindingFor(T, Leg.P, Ov, Nnz));
    }
    PRef Prog = compileFullContraction(Ctx, C.E, "out");

    VmRunResult TreeR, BcR;
    std::optional<ImpValue> TreeOut, BcOut;
    if (Tree) {
      VmMemory Mem;
      for (const FuzzTensor &T : C.Tensors)
        bindArrays<S>(Mem, T, M, Ov);
      TreeR = vmRun(Prog, Mem);
      TreeOut = checkVmOut<S>(C, Mem, TreeR, WantTotal,
                              FormTag + ("vm/" + Level), Rep);
    }
    if (Bc) {
      std::string Tag = FormTag + ("bvm/" + Level);
      BytecodeProgram BC = compileBytecode(Prog);
      if (!BC.ok()) {
        reportDiv(Rep, C, Tag, "bytecode compile error: " + BC.CompileError);
        continue;
      }
      VmMemory Mem;
      for (const FuzzTensor &T : C.Tensors)
        bindArrays<S>(Mem, T, M, Ov);
      BcR = bytecodeRun(BC, Mem);
      BcOut = checkVmOut<S>(C, Mem, BcR, WantTotal, Tag, Rep);
    }
    VmRunResult NatR;
    std::optional<ImpValue> NatOut;
    if (Nat) {
      std::string Tag = FormTag + ("nvm/" + Level);
      // Step-counting kernels so the strict cross-check below covers the
      // budget semantics too. The driver has already verified a toolchain
      // exists, so any failure here is an emitter/jit gap worth reporting.
      JitOptions JO;
      JO.CountSteps = true;
      std::string JitErr;
      NativeKernelRef K = jitCompile(Prog, JO, &JitErr);
      if (!K) {
        // The source-size cap is a designed decline (production falls
        // back to the bytecode VM), not an emitter gap — skip the leg.
        if (JitErr.rfind(JitSourceTooLargePrefix, 0) != 0)
          reportDiv(Rep, C, Tag, "jit compile error: " + JitErr);
        continue;
      }
      VmMemory Mem;
      for (const FuzzTensor &T : C.Tensors)
        bindArrays<S>(Mem, T, M, Ov);
      NatR = K->run(Mem);
      NatOut = checkVmOut<S>(C, Mem, NatR, WantTotal, Tag, Rep);
    }
    if (OutByOpt)
      OutByOpt[Leg.Opt] = Tree ? TreeOut : BcOut;
    // Direct tree ≡ bytecode cross-check, stricter than the oracle
    // comparison: identical steps, identical error text, bit-identical
    // output scalar.
    if (Tree && Bc) {
      std::string Tag = FormTag + ("tree-vs-bvm/" + Level);
      if (TreeR.Steps != BcR.Steps)
        reportDiv(Rep, C, Tag,
                  "step counts differ: tree=" + std::to_string(TreeR.Steps) +
                      " bytecode=" + std::to_string(BcR.Steps));
      std::string TreeErr = TreeR.Error ? *TreeR.Error : "";
      std::string BcErr = BcR.Error ? *BcR.Error : "";
      if (TreeErr != BcErr)
        reportDiv(Rep, C, Tag,
                  "errors differ: tree='" + TreeErr + "' bytecode='" +
                      BcErr + "'");
      if (TreeOut && BcOut && !impBitsEq(*TreeOut, *BcOut))
        reportDiv(Rep, C, Tag,
                  "'out' differs bit-wise: tree=" + impToStr(*TreeOut) +
                      " bytecode=" + impToStr(*BcOut));
    }
    // Same strictness for the native backend: identical steps, identical
    // error text, bit-identical output scalar versus the tree VM.
    if (Tree && Nat) {
      std::string Tag = FormTag + ("tree-vs-nvm/" + Level);
      if (TreeR.Steps != NatR.Steps)
        reportDiv(Rep, C, Tag,
                  "step counts differ: tree=" + std::to_string(TreeR.Steps) +
                      " native=" + std::to_string(NatR.Steps));
      std::string TreeErr = TreeR.Error ? *TreeR.Error : "";
      std::string NatErr = NatR.Error ? *NatR.Error : "";
      if (TreeErr != NatErr)
        reportDiv(Rep, C, Tag,
                  "errors differ: tree='" + TreeErr + "' native='" + NatErr +
                      "'");
      if (TreeOut && NatOut && !impBitsEq(*TreeOut, *NatOut))
        reportDiv(Rep, C, Tag,
                  "'out' differs bit-wise: tree=" + impToStr(*TreeOut) +
                      " native=" + impToStr(*NatOut));
    }
  }
}

//===----------------------------------------------------------------------===//
// Per-semiring driver
//===----------------------------------------------------------------------===//

template <Semiring S>
void runTyped(const FuzzCase &C, const FuzzTyping &Ty, ThreadPool &Pool,
              VmBackend Backend, FuzzReport &Rep) {
  ValueContext<S> Inputs;
  for (const FuzzTensor &T : C.Tensors)
    Inputs.emplace(T.Name, fuzzTensorRelation<S>(T));
  KRelation<S> Want = densifyAll<S>(evalT<S>(C.E, Inputs), C);
  typename S::Value WantTotal = S::zero();
  for (const auto &[Tu, V] : Want.entries())
    WantTotal = S::add(WantTotal, V);

  Mats<S> M = materialize<S>(C);
  runStreamLegs<S, SearchPolicy::Linear>(C, Ty, M, Pool, Want, WantTotal,
                                         Rep);
  runStreamLegs<S, SearchPolicy::Binary>(C, Ty, M, Pool, Want, WantTotal,
                                         Rep);
  runStreamLegs<S, SearchPolicy::Gallop>(C, Ty, M, Pool, Want, WantTotal,
                                         Rep);
  runVmLegs<S>(C, M, WantTotal, Backend, Rep);
}

/// The dense override materializes the full extent; beyond this it is
/// skipped (sparse vectors over huge index spaces are exactly the inputs
/// hashing exists for).
constexpr Idx MaxDenseOverrideExtent = Idx(1) << 16;

template <Semiring S>
void runFormatsTyped(const FuzzCase &C, const FuzzTyping &Ty,
                     ThreadPool &Pool, VmBackend Backend, FuzzReport &Rep) {
  ValueContext<S> Inputs;
  for (const FuzzTensor &T : C.Tensors)
    Inputs.emplace(T.Name, fuzzTensorRelation<S>(T));
  KRelation<S> Want = densifyAll<S>(evalT<S>(C.E, Inputs), C);
  typename S::Value WantTotal = S::zero();
  for (const auto &[Tu, V] : Want.entries())
    WantTotal = S::add(WantTotal, V);

  Mats<S> M = materialize<S>(C);
  addHashed<S>(M, C);

  // Hashed runtime streams (sorted snapshot iterate, probe-first skip)
  // against the oracle, per policy.
  runStreamLegs<S, SearchPolicy::Linear>(C, Ty, M, Pool, Want, WantTotal,
                                         Rep, /*Hashed1D=*/true);
  runStreamLegs<S, SearchPolicy::Binary>(C, Ty, M, Pool, Want, WantTotal,
                                         Rep, /*Hashed1D=*/true);
  runStreamLegs<S, SearchPolicy::Gallop>(C, Ty, M, Pool, Want, WantTotal,
                                         Rep, /*Hashed1D=*/true);

  // Compiled legs with every sparse vector re-bound hashed / compressed /
  // dense. Hashed and compressed iterate the same sorted snapshot, so
  // their outputs must agree bit-for-bit; dense changes the loop structure
  // and is held to the oracle tolerance only.
  std::optional<ImpValue> HOut[3], COut[3];
  runVmLegs<S>(C, M, WantTotal, Backend, Rep, VecOverride::Hashed, "h",
               HOut);
  runVmLegs<S>(C, M, WantTotal, Backend, Rep, VecOverride::Compressed, "c",
               COut);
  bool DenseOk = true;
  for (const FuzzTensor &T : C.Tensors)
    if (T.Fmt == FuzzFormat::SparseVec &&
        C.dimOf(T.Shp[0]) > MaxDenseOverrideExtent)
      DenseOk = false;
  if (DenseOk)
    runVmLegs<S>(C, M, WantTotal, Backend, Rep, VecOverride::Dense, "d");

  for (int K = 0; K < 3; ++K)
    if (HOut[K] && COut[K] && !impBitsEq(*HOut[K], *COut[K]))
      reportDiv(Rep, C, "hashed-vs-compressed/O" + std::to_string(K),
                "'out' differs bit-wise: hashed=" + impToStr(*HOut[K]) +
                    " compressed=" + impToStr(*COut[K]));
}

/// The dense-tail tiling matrix: one O2/gallop lowering, run on the tree
/// VM and on native kernels at several TileDenseTails values, all
/// cross-checked bit-for-bit. Tiles chosen to force both degenerate
/// blocks (tile 3: many boundary re-checks) and whole-loop blocks
/// (tile 1024: most fuzz extents fit one block).
template <Semiring S>
void runTilesTyped(const FuzzCase &C, FuzzReport &Rep) {
  ValueContext<S> Inputs;
  for (const FuzzTensor &T : C.Tensors)
    Inputs.emplace(T.Name, fuzzTensorRelation<S>(T));
  KRelation<S> Want = densifyAll<S>(evalT<S>(C.E, Inputs), C);
  typename S::Value WantTotal = S::zero();
  for (const auto &[Tu, V] : Want.entries())
    WantTotal = S::add(WantTotal, V);
  Mats<S> M = materialize<S>(C);

  const ScalarAlgebra *Alg = algebraFor(C.SemiringName);
  ETCH_ASSERT(Alg, "dispatch guarantees a known semiring");
  LowerCtx Ctx;
  Ctx.Alg = Alg;
  Ctx.OptLevel = 2;
  for (const auto &[A, N] : C.Dims)
    Ctx.setDim(A, N);
  for (const FuzzTensor &T : C.Tensors)
    Ctx.bind(bindingFor(T, SearchPolicy::Gallop, VecOverride::None, 0));
  PRef Prog = compileFullContraction(Ctx, C.E, "out");

  // Tree VM reference. A step-budget exhaustion here is not comparable to
  // the uncounted native legs, so the bit anchor only applies on success.
  std::optional<ImpValue> TreeOut;
  {
    VmMemory Mem;
    for (const FuzzTensor &T : C.Tensors)
      bindArrays<S>(Mem, T, M, VecOverride::None);
    VmRunResult R = vmRun(Prog, Mem);
    if (R.ok())
      TreeOut = checkVmOut<S>(C, Mem, R, WantTotal, "tiles/vm/O2", Rep);
  }

  const int64_t Tiles[] = {0, 3, 1024};
  constexpr int NTiles = 3;
  std::optional<ImpValue> Out[NTiles];
  std::string Err[NTiles];
  for (int K = 0; K < NTiles; ++K) {
    std::string Tag = "tiles/nvm/t" + std::to_string(Tiles[K]);
    JitOptions JO;
    JO.CountSteps = false;
    JO.TileDenseTails = Tiles[K];
    std::string JitErr;
    NativeKernelRef Kern = jitCompile(Prog, JO, &JitErr);
    if (!Kern) {
      // The source-size cap is a designed decline; anything else is an
      // emitter gap. Either way the cross-checks below are meaningless
      // with a leg missing.
      if (JitErr.rfind(JitSourceTooLargePrefix, 0) != 0)
        reportDiv(Rep, C, Tag, "jit compile error: " + JitErr);
      return;
    }
    VmMemory Mem;
    for (const FuzzTensor &T : C.Tensors)
      bindArrays<S>(Mem, T, M, VecOverride::None);
    VmRunResult R = Kern->run(Mem);
    Err[K] = R.Error ? *R.Error : "";
    if (R.ok())
      Out[K] = checkVmOut<S>(C, Mem, R, WantTotal, Tag, Rep);
  }

  // The blocked emission must be invisible: identical error text and
  // bit-identical 'out' across every tile, and bit-identical to the tree
  // VM whenever both succeeded.
  for (int K = 1; K < NTiles; ++K) {
    std::string Tag = "tiles/plain-vs-t" + std::to_string(Tiles[K]);
    if (Err[0] != Err[K])
      reportDiv(Rep, C, Tag,
                "errors differ: plain='" + Err[0] + "' tiled='" + Err[K] +
                    "'");
    if (Out[0] && Out[K] && !impBitsEq(*Out[0], *Out[K]))
      reportDiv(Rep, C, Tag,
                "'out' differs bit-wise: plain=" + impToStr(*Out[0]) +
                    " tiled=" + impToStr(*Out[K]));
  }
  if (TreeOut && Out[0] && !impBitsEq(*TreeOut, *Out[0]))
    reportDiv(Rep, C, "tiles/tree-vs-plain",
              "'out' differs bit-wise: tree=" + impToStr(*TreeOut) +
                  " native=" + impToStr(*Out[0]));
}

} // namespace

std::string FuzzReport::toString() const {
  if (Invalid)
    return "invalid: " + ValidationError;
  if (Divs.empty())
    return "ok";
  std::ostringstream Os;
  Os << Divs.size() << " divergence(s)";
  for (const FuzzDivergence &D : Divs)
    Os << "\n[" << D.Leg << "] " << D.Detail;
  return Os.str();
}

FuzzReport etch::runFuzzCase(const FuzzCase &C, ThreadPool &Pool,
                             VmBackend Backend) {
  FuzzReport Rep;
  std::string Err;
  auto Ty = fuzzValidate(C, &Err);
  if (!Ty) {
    Rep.Invalid = true;
    Rep.ValidationError = Err;
    return Rep;
  }
  if (C.SemiringName == "f64")
    runTyped<F64Semiring>(C, *Ty, Pool, Backend, Rep);
  else if (C.SemiringName == "i64")
    runTyped<I64Semiring>(C, *Ty, Pool, Backend, Rep);
  else if (C.SemiringName == "bool")
    runTyped<BoolSemiring>(C, *Ty, Pool, Backend, Rep);
  else if (C.SemiringName == "minplus")
    runTyped<MinPlusSemiring>(C, *Ty, Pool, Backend, Rep);
  else {
    Rep.Invalid = true;
    Rep.ValidationError = "unknown semiring '" + C.SemiringName + "'";
  }
  return Rep;
}

FuzzReport etch::runFuzzTiles(const FuzzCase &C) {
  FuzzReport Rep;
  std::string Err;
  auto Ty = fuzzValidate(C, &Err);
  if (!Ty) {
    Rep.Invalid = true;
    Rep.ValidationError = Err;
    return Rep;
  }
  if (C.SemiringName == "f64")
    runTilesTyped<F64Semiring>(C, Rep);
  else if (C.SemiringName == "i64")
    runTilesTyped<I64Semiring>(C, Rep);
  else if (C.SemiringName == "bool")
    runTilesTyped<BoolSemiring>(C, Rep);
  else if (C.SemiringName == "minplus")
    runTilesTyped<MinPlusSemiring>(C, Rep);
  else {
    Rep.Invalid = true;
    Rep.ValidationError = "unknown semiring '" + C.SemiringName + "'";
  }
  return Rep;
}

namespace {

template <Semiring S> FuzzTotal oracleTotalTyped(const FuzzCase &C) {
  ValueContext<S> Inputs;
  for (const FuzzTensor &T : C.Tensors)
    Inputs.emplace(T.Name, fuzzTensorRelation<S>(T));
  KRelation<S> Want = densifyAll<S>(evalT<S>(C.E, Inputs), C);
  typename S::Value Total = S::zero();
  for (const auto &[Tu, V] : Want.entries())
    Total = S::add(Total, V);
  FuzzTotal R;
  R.Text = valStr<S>(Total);
  R.Num = static_cast<double>(Total);
  return R;
}

} // namespace

std::optional<FuzzTotal> etch::fuzzOracleTotal(const FuzzCase &C) {
  if (!fuzzValidate(C))
    return std::nullopt;
  if (C.SemiringName == "f64")
    return oracleTotalTyped<F64Semiring>(C);
  if (C.SemiringName == "i64")
    return oracleTotalTyped<I64Semiring>(C);
  if (C.SemiringName == "bool")
    return oracleTotalTyped<BoolSemiring>(C);
  if (C.SemiringName == "minplus")
    return oracleTotalTyped<MinPlusSemiring>(C);
  return std::nullopt;
}

FuzzReport etch::runFuzzFormats(const FuzzCase &C, ThreadPool &Pool,
                                VmBackend Backend) {
  FuzzReport Rep;
  std::string Err;
  auto Ty = fuzzValidate(C, &Err);
  if (!Ty) {
    Rep.Invalid = true;
    Rep.ValidationError = Err;
    return Rep;
  }
  bool AnySparseVec = false;
  for (const FuzzTensor &T : C.Tensors)
    AnySparseVec = AnySparseVec || T.Fmt == FuzzFormat::SparseVec;
  if (!AnySparseVec)
    return Rep;
  if (C.SemiringName == "f64")
    runFormatsTyped<F64Semiring>(C, *Ty, Pool, Backend, Rep);
  else if (C.SemiringName == "i64")
    runFormatsTyped<I64Semiring>(C, *Ty, Pool, Backend, Rep);
  else if (C.SemiringName == "bool")
    runFormatsTyped<BoolSemiring>(C, *Ty, Pool, Backend, Rep);
  else if (C.SemiringName == "minplus")
    runFormatsTyped<MinPlusSemiring>(C, *Ty, Pool, Backend, Rep);
  else {
    Rep.Invalid = true;
    Rep.ValidationError = "unknown semiring '" + C.SemiringName + "'";
  }
  return Rep;
}

namespace {

ThreadPool &sharedFuzzPool() {
  // Shared across calls: the shrinker invokes the executor hundreds of
  // times per campaign and must not pay thread spawn/join each time.
  static ThreadPool Pool(3);
  return Pool;
}

} // namespace

FuzzReport etch::runFuzzCase(const FuzzCase &C, VmBackend Backend) {
  return runFuzzCase(C, sharedFuzzPool(), Backend);
}

FuzzReport etch::runFuzzFormats(const FuzzCase &C, VmBackend Backend) {
  return runFuzzFormats(C, sharedFuzzPool(), Backend);
}

//===- fuzz/shrink.cpp - Greedy minimization of failing cases -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/shrink.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace etch;

namespace {

size_t exprNodes(const ExprPtr &E) {
  if (!E)
    return 0;
  size_t N = 1;
  if (E->lhs())
    N += exprNodes(E->lhs());
  if (E->rhs())
    N += exprNodes(E->rhs());
  return N;
}

void collectVars(const ExprPtr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->kind() == ExprKind::Var)
    Out.insert(E->varName());
  collectVars(E->lhs(), Out);
  collectVars(E->rhs(), Out);
}

/// Rebuilds \p E with the preorder-\p Target node replaced by \p Repl.
/// \p Counter threads the preorder numbering through the walk.
ExprPtr rebuildAt(const ExprPtr &E, int &Counter, int Target,
                  const ExprPtr &Repl) {
  int Mine = Counter++;
  if (Mine == Target)
    return Repl;
  switch (E->kind()) {
  case ExprKind::Var:
    return E;
  case ExprKind::Add:
  case ExprKind::Mul: {
    ExprPtr L = rebuildAt(E->lhs(), Counter, Target, Repl);
    ExprPtr R = rebuildAt(E->rhs(), Counter, Target, Repl);
    if (L == E->lhs() && R == E->rhs())
      return E;
    return E->kind() == ExprKind::Add ? Expr::add(L, R) : Expr::mul(L, R);
  }
  case ExprKind::Sum:
  case ExprKind::Expand: {
    ExprPtr L = rebuildAt(E->lhs(), Counter, Target, Repl);
    if (L == E->lhs())
      return E;
    return E->kind() == ExprKind::Sum ? Expr::sum(E->attr(), L)
                                      : Expr::expand(E->attr(), L);
  }
  case ExprKind::Rename: {
    ExprPtr L = rebuildAt(E->lhs(), Counter, Target, Repl);
    if (L == E->lhs())
      return E;
    return Expr::rename(E->mapping(), L);
  }
  }
  return E;
}

/// The preorder-\p Target node itself (for enumerating its children).
const ExprPtr *nodeAt(const ExprPtr &E, int &Counter, int Target) {
  int Mine = Counter++;
  if (Mine == Target)
    return &E;
  if (E->lhs())
    if (const ExprPtr *R = nodeAt(E->lhs(), Counter, Target))
      return R;
  if (E->rhs())
    if (const ExprPtr *R = nodeAt(E->rhs(), Counter, Target))
      return R;
  return nullptr;
}

struct Shrinker {
  const FuzzFailPred &StillFails;
  FuzzCase C;

  /// Installs \p Cand if it is still a valid, still-failing case.
  bool accept(const FuzzCase &Cand) {
    if (!fuzzValidate(Cand))
      return false;
    if (!StillFails(Cand))
      return false;
    C = Cand;
    return true;
  }

  /// Pass 1: replace any node by one of its children, repeatedly. Iterated
  /// hoisting reaches every subtree of the original expression, so this
  /// subsumes whole-tree subtree selection at finer granularity.
  bool hoistChildren() {
    bool Changed = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      int N = static_cast<int>(exprNodes(C.E));
      for (int I = 0; I < N && !Progress; ++I) {
        int Counter = 0;
        const ExprPtr *Node = nodeAt(C.E, Counter, I);
        if (!Node)
          break;
        for (const ExprPtr &Child : {(*Node)->lhs(), (*Node)->rhs()}) {
          if (!Child)
            continue;
          FuzzCase Cand = C;
          int Counter2 = 0;
          Cand.E = rebuildAt(C.E, Counter2, I, Child);
          if (accept(Cand)) {
            Progress = Changed = true;
            break;
          }
        }
      }
    }
    return Changed;
  }

  /// Pass 2: drop tensors the expression no longer references. Reference-
  /// preserving, so it needs no predicate run — but the result must still
  /// validate (it always does: validation never requires unused tensors).
  bool gcTensors() {
    std::set<std::string> Used;
    collectVars(C.E, Used);
    FuzzCase Cand = C;
    std::erase_if(Cand.Tensors, [&Used](const FuzzTensor &T) {
      return !Used.count(T.Name);
    });
    if (Cand.Tensors.size() == C.Tensors.size())
      return false;
    return accept(Cand);
  }

  /// Pass 3: ddmin-style removal of contiguous entry windows per tensor.
  bool dropEntryWindows() {
    bool Changed = false;
    for (size_t TI = 0; TI < C.Tensors.size(); ++TI) {
      size_t Window = C.Tensors[TI].Entries.size();
      while (Window >= 1) {
        bool Removed = true;
        while (Removed) {
          Removed = false;
          size_t N = C.Tensors[TI].Entries.size();
          for (size_t Start = 0; Start + Window <= N; ++Start) {
            FuzzCase Cand = C;
            auto &E = Cand.Tensors[TI].Entries;
            E.erase(E.begin() + static_cast<long>(Start),
                    E.begin() + static_cast<long>(Start + Window));
            if (accept(Cand)) {
              Removed = Changed = true;
              break;
            }
          }
        }
        Window /= 2;
      }
    }
    return Changed;
  }

  /// Pass 4: normalize entry values to 1.
  bool onesValues() {
    bool Changed = false;
    for (size_t TI = 0; TI < C.Tensors.size(); ++TI)
      for (size_t EI = 0; EI < C.Tensors[TI].Entries.size(); ++EI) {
        if (C.Tensors[TI].Entries[EI].Val == 1.0)
          continue;
        FuzzCase Cand = C;
        Cand.Tensors[TI].Entries[EI].Val = 1.0;
        if (accept(Cand))
          Changed = true;
      }
    return Changed;
  }

  /// Pass 5: clamp each extent to the largest coordinate using it, plus
  /// one. Validation rejects the candidate when another constraint (a
  /// rename's equal-extent requirement, say) still needs the larger extent.
  bool shrinkDims() {
    bool Changed = false;
    for (size_t DI = 0; DI < C.Dims.size(); ++DI) {
      Attr A = C.Dims[DI].first;
      Idx Need = 0;
      for (const FuzzTensor &T : C.Tensors)
        for (size_t L = 0; L < T.Shp.size(); ++L)
          if (T.Shp[L] == A)
            for (const FuzzEntry &E : T.Entries)
              Need = std::max(Need, E.Coords[L] + 1);
      if (Need >= C.Dims[DI].second)
        continue;
      FuzzCase Cand = C;
      Cand.Dims[DI].second = Need;
      if (accept(Cand))
        Changed = true;
    }
    return Changed;
  }
};

} // namespace

size_t etch::fuzzCaseSize(const FuzzCase &C) {
  size_t N = exprNodes(C.E) + C.Tensors.size();
  for (const FuzzTensor &T : C.Tensors)
    N += T.Entries.size();
  return N;
}

FuzzCase etch::shrinkCase(FuzzCase C, const FuzzFailPred &StillFails,
                          int MaxRounds) {
  Shrinker Sh{StillFails, std::move(C)};
  for (int Round = 0; Round < MaxRounds; ++Round) {
    bool Changed = false;
    Changed |= Sh.hoistChildren();
    Changed |= Sh.gcTensors();
    Changed |= Sh.dropEntryWindows();
    Changed |= Sh.onesValues();
    Changed |= Sh.shrinkDims();
    if (!Changed)
      break;
  }
  return std::move(Sh.C);
}

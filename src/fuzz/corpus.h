//===- fuzz/corpus.h - Text serialization of fuzz cases --------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The regression-corpus text format (tests/corpus/*.txt): a shrunken
/// failing case per file, human-readable and hand-editable. Example:
///
///   etch-fuzz-case v1
///   # the one-line bug note goes here
///   semiring minplus
///   attr fza 6
///   attr fzb 4
///   tensor t0 sparsevec fza
///   entry 2 1.5
///   entry 4 inf
///   tensor t1 csr fza fzb
///   entry 0 3 1
///   expr (sum fza (* (var t0) (exp fzb (var t0))))
///
/// `attr` lines register extents; attribute names must come from the fuzz
/// universe (fza..fzd) so parsing never perturbs the global interning
/// order. `entry` lines attach to the preceding `tensor` (coordinates then
/// a value; `inf` spells the (min,+) zero). The expression grammar is
///   (var t) | (+ e e) | (* e e) | (sum a e) | (exp a e) | (ren a>b,... e)
/// where a bare `-` in place of the rename mapping spells the identity
/// (empty) mapping — the generator emits identity renames to exercise the
/// Rename node itself.
/// The parser checks structure only; semantic checks (sortedness, ranges,
/// typability) stay in fuzzValidate, which the executor runs first — a
/// corrupted corpus file reports as invalid instead of crashing.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_CORPUS_H
#define ETCH_FUZZ_CORPUS_H

#include "fuzz/fuzzcase.h"

#include <optional>
#include <string>

namespace etch {

/// Renders \p C in the corpus text format. \p Comment, if nonempty, is
/// emitted as `# ...` lines under the header (embedded newlines split it).
std::string serializeCase(const FuzzCase &C, const std::string &Comment = "");

/// Parses the corpus text format. Returns nullopt on malformed input and
/// stores a diagnostic in \p Err if non-null.
std::optional<FuzzCase> parseCase(const std::string &Text,
                                  std::string *Err = nullptr);

/// File convenience wrappers.
bool writeCaseFile(const std::string &Path, const FuzzCase &C,
                   const std::string &Comment = "");
std::optional<FuzzCase> readCaseFile(const std::string &Path,
                                     std::string *Err = nullptr);

} // namespace etch

#endif // ETCH_FUZZ_CORPUS_H

//===- fuzz/dynstream.h - Type-erased runtime indexed streams --*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-composable indexed streams for the differential fuzzer. The
/// stream library is fully template-typed — every combinator fixes its
/// operand types and its Contracted flag at compile time — but the fuzzer
/// needs to build the stream for an *arbitrary generated expression*. The
/// bridge is `Erased<S, D>`: a depth-indexed type-erased stream whose value
/// type is `Erased<S, D-1>` (scalar at D == 1), so the real library
/// combinators (MulStream, AddStream, ContractStream, MapStream,
/// RepeatStream) can be instantiated *over erased children* and are exactly
/// the code under test; erasure only pays a virtual hop per level.
///
/// Contractedness is static in the library, so `Erased` additionally
/// carries a runtime level mask (bit k set = level k is a Σ level,
/// outermost level is bit 0). `dynEval` mirrors `detail::evalRec` against
/// that mask; the *real* `evalStream`/`sumAll`/parallel drivers are used
/// directly whenever their static preconditions hold (see fuzz/exec.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_DYNSTREAM_H
#define ETCH_FUZZ_DYNSTREAM_H

#include "fuzz/fuzzcase.h"
#include "streams/combinators.h"
#include "streams/eval.h"
#include "streams/parallel.h"
#include "streams/primitives.h"
#include "support/assert.h"
#include "support/threadpool.h"

#include <bit>
#include <memory>
#include <type_traits>
#include <utility>
#include <variant>

namespace etch {

/// A type-erased indexed stream of \p D total levels (contracted levels
/// included) over semiring \p S. Satisfies AnIndexedStream; copying clones
/// the underlying cursor (streams are cheap value types, Definition 5.1).
template <Semiring S, int D> class Erased {
  static_assert(D >= 1, "a stream has at least one level");

public:
  static constexpr int Depth = D;
  using ValueType =
      std::conditional_t<D == 1, typename S::Value, Erased<S, D - 1>>;
  // Static flag only; the truth lives in the runtime mask. Every consumer
  // that relies on the static flag (evalStream's shape check, BoundedStream)
  // is only applied when mask() says it is sound — see fuzz/exec.cpp.
  static constexpr bool Contracted = false;

  Erased() = default;

  /// Wraps a concrete stream. \p Mask covers this level (bit 0) and all
  /// inner levels; produced values that are not already erased are wrapped
  /// with Mask >> 1.
  template <typename St>
    requires(!std::is_same_v<std::decay_t<St>, Erased> && AnIndexedStream<St>)
  Erased(St Q, uint32_t Mask)
      : Msk(Mask),
        Impl(std::make_unique<Model<St>>(std::move(Q), Mask >> 1)) {}

  Erased(const Erased &O)
      : Msk(O.Msk), Impl(O.Impl ? O.Impl->clone() : nullptr) {}
  Erased(Erased &&) noexcept = default;
  Erased &operator=(const Erased &O) {
    Msk = O.Msk;
    Impl = O.Impl ? O.Impl->clone() : nullptr;
    return *this;
  }
  Erased &operator=(Erased &&) noexcept = default;

  bool valid() const { return Impl && Impl->valid(); }
  Idx index() const { return Impl->index(); }
  bool ready() const { return Impl->ready(); }
  ValueType value() const { return Impl->value(); }
  void skip(Idx I, bool Strict) { Impl->skip(I, Strict); }

  /// Fast δ from a ready state: forwards to advanceReady on the wrapped
  /// stream, so inner fast paths (`++pos` etc.) are still exercised.
  void next() { Impl->next(); }

  /// The runtime contracted-level mask (bit 0 = this level).
  uint32_t mask() const { return Msk; }

  /// Number of indexed (non-Σ) levels — the length of the output shape.
  int indexedLevels() const { return D - std::popcount(Msk); }

private:
  struct Concept {
    virtual ~Concept() = default;
    virtual std::unique_ptr<Concept> clone() const = 0;
    virtual bool valid() const = 0;
    virtual Idx index() const = 0;
    virtual bool ready() const = 0;
    virtual ValueType value() const = 0;
    virtual void skip(Idx I, bool Strict) = 0;
    virtual void next() = 0;
  };

  template <typename St> struct Model final : Concept {
    St Q;
    uint32_t InnerMask;

    Model(St Q, uint32_t InnerMask)
        : Q(std::move(Q)), InnerMask(InnerMask) {}

    std::unique_ptr<Concept> clone() const override {
      return std::make_unique<Model>(*this);
    }
    bool valid() const override { return Q.valid(); }
    Idx index() const override { return Q.index(); }
    bool ready() const override { return Q.ready(); }
    ValueType value() const override {
      if constexpr (D == 1) {
        // Leaf storage may be narrower than the semiring's value type
        // (uint8_t indicators under the boolean semiring).
        return static_cast<ValueType>(Q.value());
      } else if constexpr (std::is_same_v<std::decay_t<decltype(Q.value())>,
                                          Erased<S, D - 1>>) {
        return Q.value(); // already erased; carries its own mask
      } else {
        return Erased<S, D - 1>(Q.value(), InnerMask);
      }
    }
    void skip(Idx I, bool Strict) override { Q.skip(I, Strict); }
    void next() override { advanceReady(Q); }
  };

  uint32_t Msk = 0;
  std::unique_ptr<Concept> Impl;
};

/// A runtime-depth stream: one alternative per supported depth.
template <Semiring S>
using DynStream = std::variant<std::monostate, Erased<S, 1>, Erased<S, 2>,
                               Erased<S, 3>, Erased<S, 4>>;

/// Total levels of a DynStream (0 for the empty monostate).
template <Semiring S> int dynDepth(const DynStream<S> &Q) {
  return static_cast<int>(Q.index());
}

/// The runtime contracted-level mask.
template <Semiring S> uint32_t dynMask(const DynStream<S> &Q) {
  return std::visit(
      [](const auto &E) -> uint32_t {
        if constexpr (std::is_same_v<std::decay_t<decltype(E)>,
                                     std::monostate>)
          return 0;
        else
          return E.mask();
      },
      Q);
}

//===----------------------------------------------------------------------===//
// Combinator application at runtime depth
//===----------------------------------------------------------------------===//

/// Product of two equal-depth, fully indexed streams: the real MulStream
/// over erased operands.
template <Semiring S>
DynStream<S> dynMul(const DynStream<S> &A, const DynStream<S> &B) {
  return std::visit(
      [](const auto &Ea, const auto &Eb) -> DynStream<S> {
        using TA = std::decay_t<decltype(Ea)>;
        using TB = std::decay_t<decltype(Eb)>;
        if constexpr (std::is_same_v<TA, TB> &&
                      !std::is_same_v<TA, std::monostate>) {
          ETCH_ASSERT(Ea.mask() == 0 && Eb.mask() == 0,
                      "cannot multiply contracted levels");
          return DynStream<S>(
              TA(mulStreams<S>(Ea, Eb), /*Mask=*/0u));
        } else {
          ETCH_UNREACHABLE("mul operands must have equal depth");
        }
      },
      A, B);
}

/// Union-merge of two equal-depth streams with identical level masks: the
/// real AddStream over erased operands.
template <Semiring S>
DynStream<S> dynAdd(const DynStream<S> &A, const DynStream<S> &B) {
  return std::visit(
      [](const auto &Ea, const auto &Eb) -> DynStream<S> {
        using TA = std::decay_t<decltype(Ea)>;
        using TB = std::decay_t<decltype(Eb)>;
        if constexpr (std::is_same_v<TA, TB> &&
                      !std::is_same_v<TA, std::monostate>) {
          ETCH_ASSERT(Ea.mask() == Eb.mask(),
                      "addition operands must agree on contracted levels");
          return DynStream<S>(TA(addStreams<S>(Ea, Eb), Ea.mask()));
        } else {
          ETCH_UNREACHABLE("add operands must have equal depth");
        }
      },
      A, B);
}

namespace fuzz_detail {

/// Applies ContractStream at level \p K (0 = outermost) of an erased
/// stream, threading through MapStream at the levels above — the runtime
/// mirror of the `map^k Σ` construction (Section 5.2).
template <Semiring S, int D>
Erased<S, D> contractAt(Erased<S, D> Q, int K) {
  uint32_t NewMask = Q.mask() | (1u << K);
  ETCH_ASSERT(!(Q.mask() & (1u << K)), "level is already contracted");
  if (K == 0)
    return Erased<S, D>(contractStream(std::move(Q)), NewMask);
  if constexpr (D > 1) {
    auto Fn = [K](Erased<S, D - 1> V) {
      return contractAt<S, D - 1>(std::move(V), K - 1);
    };
    return Erased<S, D>(mapStream(std::move(Q), Fn), NewMask);
  } else {
    ETCH_UNREACHABLE("contraction level exceeds stream depth");
  }
}

/// Inserts a RepeatStream level at position \p K (0 = above the current
/// outermost level, D = below the leaf), the runtime mirror of `map^k ↑`.
template <Semiring S, int D>
Erased<S, D + 1> expandAt(Erased<S, D> Q, int K, Idx Extent) {
  uint32_t M = Q.mask();
  uint32_t NewMask = (M & ((1u << K) - 1)) | ((M >> K) << (K + 1));
  if (K == 0)
    return Erased<S, D + 1>(
        RepeatStream<Erased<S, D>>(Extent, std::move(Q)), NewMask);
  if constexpr (D > 1) {
    auto Fn = [K, Extent](Erased<S, D - 1> V) {
      return expandAt<S, D - 1>(std::move(V), K - 1, Extent);
    };
    return Erased<S, D + 1>(mapStream(std::move(Q), Fn), NewMask);
  } else {
    // K == 1 at a leaf level: repeat the scalar below it.
    ETCH_ASSERT(K == 1, "expansion level exceeds stream depth");
    auto Fn = [Extent](typename S::Value V) {
      return Erased<S, 1>(RepeatStream<typename S::Value>(Extent, V),
                          /*Mask=*/0u);
    };
    return Erased<S, 2>(mapStream(std::move(Q), Fn), NewMask);
  }
}

} // namespace fuzz_detail

/// Contracts the level at position \p K of a runtime-depth stream.
template <Semiring S>
DynStream<S> dynContractAt(const DynStream<S> &Q, int K) {
  return std::visit(
      [K](const auto &E) -> DynStream<S> {
        using T = std::decay_t<decltype(E)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          ETCH_UNREACHABLE("contraction of an empty stream");
        } else {
          ETCH_ASSERT(K >= 0 && K < T::Depth, "contraction level in range");
          return DynStream<S>(fuzz_detail::contractAt<S, T::Depth>(E, K));
        }
      },
      Q);
}

/// Inserts an expansion level of the given extent at position \p K.
template <Semiring S>
DynStream<S> dynExpandAt(const DynStream<S> &Q, int K, Idx Extent) {
  return std::visit(
      [K, Extent](const auto &E) -> DynStream<S> {
        using T = std::decay_t<decltype(E)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          ETCH_UNREACHABLE("expansion of an empty stream");
        } else if constexpr (T::Depth >= FuzzMaxLevels) {
          ETCH_UNREACHABLE("expansion would exceed the level cap");
        } else {
          ETCH_ASSERT(K >= 0 && K <= T::Depth, "expansion level in range");
          return DynStream<S>(
              fuzz_detail::expandAt<S, T::Depth>(E, K, Extent));
        }
      },
      Q);
}

//===----------------------------------------------------------------------===//
// Evaluation against the runtime mask
//===----------------------------------------------------------------------===//

namespace fuzz_detail {

/// `detail::evalRec` with the compile-time Contracted flag replaced by the
/// erased stream's runtime mask; everything else — the ready/blocked loop
/// shape, advanceReady on ready states — is byte-for-byte the same
/// discipline, so the streams underneath run exactly as the library runs
/// them.
template <Semiring S, int D>
void evalDynRec(Erased<S, D> Q, KRelation<S> &Out, Tuple &Prefix) {
  bool Contr = (Q.mask() & 1) != 0;
  while (Q.valid()) {
    if (Q.ready()) {
      if (!Contr)
        Prefix.push_back(Q.index());
      if constexpr (D > 1)
        evalDynRec<S, D - 1>(Q.value(), Out, Prefix);
      else
        Out.insert(Prefix, Q.value());
      if (!Contr)
        Prefix.pop_back();
      advanceReady(Q);
    } else {
      Q.skip(Q.index(), false);
    }
  }
}

} // namespace fuzz_detail

/// Evaluates a runtime-depth stream into a K-relation over \p Sh (the
/// stream's indexed levels, outermost first).
template <Semiring S>
KRelation<S> dynEval(const DynStream<S> &Q, const Shape &Sh) {
  return std::visit(
      [&Sh](const auto &E) -> KRelation<S> {
        using T = std::decay_t<decltype(E)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          ETCH_UNREACHABLE("evaluation of an empty stream");
        } else {
          ETCH_ASSERT(static_cast<int>(Sh.size()) == E.indexedLevels(),
                      "shape length must match the indexed depth");
          KRelation<S> Out(Sh);
          Tuple Prefix;
          fuzz_detail::evalDynRec<S, T::Depth>(E, Out, Prefix);
          Out.pruneZeros();
          return Out;
        }
      },
      Q);
}

/// Full contraction through the *real* `sumAll` driver (summation ignores
/// contracted flags, so it is sound for any mask).
template <Semiring S>
typename S::Value dynSumAll(const DynStream<S> &Q) {
  return std::visit(
      [](const auto &E) -> typename S::Value {
        using T = std::decay_t<decltype(E)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          ETCH_UNREACHABLE("summation of an empty stream");
        } else {
          return sumAll<S>(E);
        }
      },
      Q);
}

/// Full contraction through the *real* `parallelSumAll` driver. Requires an
/// indexed outermost level (mask bit 0 clear): a Σ outer level reports
/// index 0 at every state, so range-bounding it would double-count.
template <Semiring S>
typename S::Value dynParallelSumAll(ThreadPool &Pool, const DynStream<S> &Q,
                                    const std::vector<IdxRange> &Chunks) {
  return std::visit(
      [&](const auto &E) -> typename S::Value {
        using T = std::decay_t<decltype(E)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          ETCH_UNREACHABLE("summation of an empty stream");
        } else {
          ETCH_ASSERT((E.mask() & 1) == 0,
                      "parallel drivers need an indexed outer level");
          return parallelSumAll<S>(Pool, E, Chunks);
        }
      },
      Q);
}

/// Chunk-parallel evaluation: the real BoundedStream clips each fork of the
/// cursor, the mask-aware loop evaluates each chunk, and partials merge in
/// chunk order (mirroring parallelEvalStream).
template <Semiring S>
KRelation<S> dynParallelEval(ThreadPool &Pool, const DynStream<S> &Q,
                             const Shape &Sh,
                             const std::vector<IdxRange> &Chunks) {
  return std::visit(
      [&](const auto &E) -> KRelation<S> {
        using T = std::decay_t<decltype(E)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          ETCH_UNREACHABLE("evaluation of an empty stream");
        } else {
          ETCH_ASSERT((E.mask() & 1) == 0,
                      "parallel drivers need an indexed outer level");
          std::vector<KRelation<S>> Parts(Chunks.size(), KRelation<S>(Sh));
          Pool.parallelFor(Chunks.size(), [&](size_t C) {
            T B(BoundedStream<T>(E, Chunks[C].Lo, Chunks[C].Hi), E.mask());
            KRelation<S> R(Sh);
            Tuple Prefix;
            fuzz_detail::evalDynRec<S, T::Depth>(std::move(B), R, Prefix);
            R.pruneZeros();
            Parts[C] = std::move(R);
          });
          KRelation<S> Out(Sh);
          for (const KRelation<S> &P : Parts)
            for (const auto &[T2, V] : P.entries())
              Out.insert(T2, V);
          Out.pruneZeros();
          return Out;
        }
      },
      Q);
}

} // namespace etch

#endif // ETCH_FUZZ_DYNSTREAM_H

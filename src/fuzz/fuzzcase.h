//===- fuzz/fuzzcase.h - A differential-fuzzing test case ------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit the fuzzer generates, executes, shrinks, and serializes: a
/// semiring name, attribute extents, input tensors (format + raw entries),
/// and one well-typed contraction expression over them. Raw values are kept
/// as doubles and converted per semiring at materialization time, so one
/// case format covers every scalar algebra.
///
/// `fuzzValidate` re-derives the *level signature* of the expression — the
/// stream's levels outermost-first with Σ levels marked — enforcing exactly
/// the constraints the stream/compiler lowerings assert (no Σ level under
/// `·`, matching level signatures under `+`, order-preserving renames, the
/// level cap). The executor refuses cases that fail validation instead of
/// tripping lowering asserts, which keeps hand-edited corpus files safe.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_FUZZCASE_H
#define ETCH_FUZZ_FUZZCASE_H

#include "core/expr.h"
#include "core/krelation.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace etch {

/// The deepest stream the fuzzer builds (generator grammar and the erased
/// stream variant in fuzz/dynstream.h both cap total levels here).
inline constexpr int FuzzMaxLevels = 4;

/// The storage formats the fuzzer draws leaf tensors from (formats/).
enum class FuzzFormat { SparseVec, DenseVec, Csr, Dcsr, Csf3 };

/// Name <-> enum for the corpus text format.
const char *fuzzFormatName(FuzzFormat F);
std::optional<FuzzFormat> fuzzFormatByName(const std::string &Name);

/// Number of levels (attributes) of a format.
int fuzzFormatArity(FuzzFormat F);

/// True if the format stores a dense value level (unset positions must be
/// materialized as the semiring zero).
bool fuzzFormatHasDenseValues(FuzzFormat F);

/// One stored tensor entry: coordinates aligned with the tensor's shape and
/// a raw value (converted per semiring; +inf encodes the (min,+) zero).
struct FuzzEntry {
  Tuple Coords;
  double Val = 0.0;
};

/// One input tensor: entries sorted lexicographically, coordinates distinct
/// and within the attribute extents.
struct FuzzTensor {
  std::string Name;
  FuzzFormat Fmt = FuzzFormat::SparseVec;
  Shape Shp;
  std::vector<FuzzEntry> Entries;
};

/// A complete differential test case.
struct FuzzCase {
  std::string SemiringName = "f64";
  std::vector<std::pair<Attr, Idx>> Dims; ///< sorted by attribute order
  std::vector<FuzzTensor> Tensors;
  ExprPtr E;

  Idx dimOf(Attr A) const;
  const FuzzTensor *tensor(const std::string &Name) const;
  TypeContext types() const;

  /// One-line human summary ("i64 | Σfza (t0 · ↑fzb t1) | t0:sparsevec#3").
  std::string summary() const;
};

/// The attribute pool the generator draws from, interned in hierarchy
/// order (fza < fzb < fzc < fzd in the global attribute order).
const std::vector<Attr> &fuzzAttrUniverse();

/// One stream level: its attribute and whether it is a Σ (contracted) level.
/// Contracted levels keep their attribute purely for bookkeeping.
struct FuzzLevel {
  Attr A;
  bool Contracted = false;

  friend bool operator==(const FuzzLevel &X, const FuzzLevel &Y) {
    return X.A == Y.A && X.Contracted == Y.Contracted;
  }
};

/// A level signature: levels outermost-first, Σ levels included.
using FuzzSig = std::vector<FuzzLevel>;

/// The derived stream type of an expression.
struct FuzzTyping {
  FuzzSig Sig;
  Shape Dense; ///< expand-produced attributes still in the shape
};

/// The runtime contracted-level mask of a signature (bit 0 = outermost).
uint32_t fuzzMaskOf(const FuzzSig &Sig);

/// Marks the (unique) indexed level carrying \p A as contracted; returns
/// false if no such level exists.
bool fuzzSigContract(FuzzSig &Sig, Attr A);

/// Inserts a new indexed level for \p A at the position the lowering uses:
/// the shallowest slot after `attrsBefore` indexed levels.
void fuzzSigExpandInsert(FuzzSig &Sig, Attr A);

/// The indexed (non-Σ) attributes of a signature, outermost-first. This is
/// the output shape of evaluating the stream.
Shape fuzzIndexedShape(const FuzzSig &Sig);

/// Validates the whole case — tensor well-formedness against the extents
/// plus the expression against the implementable fragment — and returns the
/// root typing. On failure returns nullopt and stores a diagnostic in
/// \p Err if non-null.
std::optional<FuzzTyping> fuzzValidate(const FuzzCase &C,
                                       std::string *Err = nullptr);

/// Converts a raw case value into a semiring value.
template <Semiring S> typename S::Value fuzzValue(double Raw) {
  if constexpr (std::is_same_v<typename S::Value, bool>)
    return Raw != 0.0;
  else
    return static_cast<typename S::Value>(Raw);
}

/// The oracle-side relation for one tensor (finite support, no dense part);
/// for dense-value formats absent positions are simply zero, which agrees
/// with the zero-filled stream/VM storage.
template <Semiring S>
KRelation<S> fuzzTensorRelation(const FuzzTensor &T) {
  KRelation<S> R(T.Shp);
  for (const FuzzEntry &E : T.Entries)
    R.insert(E.Coords, fuzzValue<S>(E.Val));
  R.pruneZeros();
  return R;
}

} // namespace etch

#endif // ETCH_FUZZ_FUZZCASE_H

//===- fuzz/gen.h - Seeded generation of random fuzz cases -----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The case generator: from a 64-bit seed, a well-typed contraction
/// expression (Var/Add/Mul/Sum/Expand/Rename, up to ~4 operator levels and
/// 4 stream levels) over randomly materialized input tensors, in one of two
/// modes:
///
///   - normal (~90%): small extents (0..8), every format, every operator;
///     entry counts span empty / sparse / dense / skewed supports and
///     values include explicit semiring zeros.
///   - huge (~10%): adversarial extents near `1 << 62` and the `Idx`
///     maximum with coordinates clustered at both ends — sparse-only
///     formats and no expansion, aimed at skip/search/partition arithmetic
///     (overflow, saturation) rather than value coverage.
///
/// Generation is typed by construction: every production tracks the level
/// signature and the expand-produced (dense) attribute set, so emitted
/// cases always pass `fuzzValidate` — asserted before returning.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_GEN_H
#define ETCH_FUZZ_GEN_H

#include "fuzz/fuzzcase.h"

#include <cstdint>

namespace etch {

struct GenOptions {
  /// Probability of the adversarial huge-extent mode.
  double HugeProb = 0.10;
  /// Maximum operator depth of the generated expression tree.
  int MaxDepth = 4;
};

/// Generates the case for \p Seed. Deterministic: equal seeds and options
/// yield structurally identical cases.
FuzzCase genCase(uint64_t Seed, const GenOptions &Opts = {});

} // namespace etch

#endif // ETCH_FUZZ_GEN_H

//===- fuzz/corpus.cpp - Text serialization of fuzz cases -----------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/corpus.h"

#include "support/assert.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

using namespace etch;

namespace {

std::string fmtDouble(double V) {
  if (std::isinf(V))
    return V > 0 ? "inf" : "-inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

void writeExpr(std::ostream &Os, const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::Var:
    Os << "(var " << E->varName() << ")";
    return;
  case ExprKind::Add:
  case ExprKind::Mul:
    Os << "(" << (E->kind() == ExprKind::Add ? "+" : "*") << " ";
    writeExpr(Os, E->lhs());
    Os << " ";
    writeExpr(Os, E->rhs());
    Os << ")";
    return;
  case ExprKind::Sum:
  case ExprKind::Expand:
    Os << "(" << (E->kind() == ExprKind::Sum ? "sum" : "exp") << " "
       << E->attr().name() << " ";
    writeExpr(Os, E->lhs());
    Os << ")";
    return;
  case ExprKind::Rename: {
    Os << "(ren ";
    if (E->mapping().empty())
      Os << "-"; // identity mapping
    bool First = true;
    for (const auto &[From, To] : E->mapping()) {
      if (!First)
        Os << ",";
      Os << From.name() << ">" << To.name();
      First = false;
    }
    Os << " ";
    writeExpr(Os, E->lhs());
    Os << ")";
    return;
  }
  }
  ETCH_UNREACHABLE("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

struct Parser {
  std::string Error;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  /// Looks up a fuzz-universe attribute; never interns new names, so a
  /// corpus file cannot perturb the global attribute order.
  std::optional<Attr> attrByName(const std::string &Name) {
    for (Attr A : fuzzAttrUniverse())
      if (A.name() == Name)
        return A;
    return std::nullopt;
  }

  bool parseIdx(const std::string &Tok, Idx &Out) {
    char *End = nullptr;
    errno = 0;
    long long V = std::strtoll(Tok.c_str(), &End, 10);
    if (End == Tok.c_str() || *End != '\0' || errno == ERANGE)
      return fail("bad integer '" + Tok + "'");
    Out = static_cast<Idx>(V);
    return true;
  }

  bool parseVal(const std::string &Tok, double &Out) {
    char *End = nullptr;
    Out = std::strtod(Tok.c_str(), &End);
    if (End == Tok.c_str() || *End != '\0')
      return fail("bad value '" + Tok + "'");
    return true;
  }

  // S-expression scanner over one `expr` line.
  std::string Src;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Src.size() && std::isspace(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
  }

  std::optional<std::string> token() {
    skipWs();
    if (Pos >= Src.size())
      return std::nullopt;
    char C = Src[Pos];
    if (C == '(' || C == ')') {
      ++Pos;
      return std::string(1, C);
    }
    size_t Start = Pos;
    while (Pos < Src.size() && !std::isspace(static_cast<unsigned char>(Src[Pos])) &&
           Src[Pos] != '(' && Src[Pos] != ')')
      ++Pos;
    return Src.substr(Start, Pos - Start);
  }

  ExprPtr parseExpr() {
    auto T = token();
    if (!T)
      return fail("unexpected end of expression"), nullptr;
    if (*T != "(")
      return fail("expected '(' in expression"), nullptr;
    auto Head = token();
    if (!Head)
      return fail("missing operator after '('"), nullptr;
    ExprPtr Out;
    if (*Head == "var") {
      auto Name = token();
      if (!Name || *Name == "(" || *Name == ")")
        return fail("var needs a tensor name"), nullptr;
      Out = Expr::var(*Name);
    } else if (*Head == "+" || *Head == "*") {
      ExprPtr A = parseExpr();
      ExprPtr B = A ? parseExpr() : nullptr;
      if (!B)
        return nullptr;
      Out = *Head == "+" ? Expr::add(A, B) : Expr::mul(A, B);
    } else if (*Head == "sum" || *Head == "exp") {
      auto Name = token();
      if (!Name)
        return fail(*Head + " needs an attribute"), nullptr;
      auto A = attrByName(*Name);
      if (!A)
        return fail("unknown attribute '" + *Name + "'"), nullptr;
      ExprPtr Body = parseExpr();
      if (!Body)
        return nullptr;
      Out = *Head == "sum" ? Expr::sum(*A, Body) : Expr::expand(*A, Body);
    } else if (*Head == "ren") {
      auto MapTok = token();
      if (!MapTok || *MapTok == "(" || *MapTok == ")")
        return fail("ren needs a from>to,... mapping"), nullptr;
      std::vector<std::pair<Attr, Attr>> Map;
      if (*MapTok != "-") { // `-` spells the identity (empty) mapping
        std::stringstream Ss(*MapTok);
        std::string Pair;
        while (std::getline(Ss, Pair, ',')) {
          size_t Gt = Pair.find('>');
          if (Gt == std::string::npos)
            return fail("bad rename pair '" + Pair + "'"), nullptr;
          auto From = attrByName(Pair.substr(0, Gt));
          auto To = attrByName(Pair.substr(Gt + 1));
          if (!From || !To)
            return fail("unknown attribute in rename '" + Pair + "'"),
                   nullptr;
          Map.emplace_back(*From, *To);
        }
        if (Map.empty())
          return fail("empty rename mapping"), nullptr;
      }
      ExprPtr Body = parseExpr();
      if (!Body)
        return nullptr;
      Out = Expr::rename(std::move(Map), Body);
    } else {
      return fail("unknown operator '" + *Head + "'"), nullptr;
    }
    auto Close = token();
    if (!Close || *Close != ")")
      return fail("expected ')'"), nullptr;
    return Out;
  }
};

} // namespace

std::string etch::serializeCase(const FuzzCase &C, const std::string &Comment) {
  std::ostringstream Os;
  Os << "etch-fuzz-case v1\n";
  if (!Comment.empty()) {
    std::stringstream Ss(Comment);
    std::string Line;
    while (std::getline(Ss, Line))
      Os << "# " << Line << "\n";
  }
  Os << "semiring " << C.SemiringName << "\n";
  for (const auto &[A, N] : C.Dims)
    Os << "attr " << A.name() << " " << N << "\n";
  for (const FuzzTensor &T : C.Tensors) {
    Os << "tensor " << T.Name << " " << fuzzFormatName(T.Fmt);
    for (Attr A : T.Shp)
      Os << " " << A.name();
    Os << "\n";
    for (const FuzzEntry &E : T.Entries) {
      Os << "entry";
      for (Idx I : E.Coords)
        Os << " " << I;
      Os << " " << fmtDouble(E.Val) << "\n";
    }
  }
  Os << "expr ";
  ETCH_ASSERT(C.E, "cannot serialize a case without an expression");
  writeExpr(Os, C.E);
  Os << "\n";
  return Os.str();
}

std::optional<FuzzCase> etch::parseCase(const std::string &Text,
                                        std::string *Err) {
  Parser P;
  auto Fail = [&](const std::string &Msg) -> std::optional<FuzzCase> {
    if (Err)
      *Err = P.Error.empty() ? Msg : P.Error;
    return std::nullopt;
  };

  FuzzCase C;
  C.SemiringName.clear();
  bool SawHeader = false;
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    // Tokenize the line.
    std::istringstream Ls(Line);
    std::string Kw;
    if (!(Ls >> Kw) || Kw[0] == '#')
      continue;
    std::string Where = " (line " + std::to_string(LineNo) + ")";
    if (!SawHeader) {
      std::string Ver;
      if (Kw != "etch-fuzz-case" || !(Ls >> Ver) || Ver != "v1")
        return Fail("missing 'etch-fuzz-case v1' header" + Where);
      SawHeader = true;
      continue;
    }
    if (Kw == "semiring") {
      if (!C.SemiringName.empty())
        return Fail("duplicate semiring line" + Where);
      if (!(Ls >> C.SemiringName))
        return Fail("semiring needs a name" + Where);
    } else if (Kw == "attr") {
      std::string Name;
      std::string NumTok;
      if (!(Ls >> Name >> NumTok))
        return Fail("attr needs a name and an extent" + Where);
      auto A = P.attrByName(Name);
      if (!A)
        return Fail("unknown attribute '" + Name + "'" + Where);
      Idx N = 0;
      if (!P.parseIdx(NumTok, N))
        return Fail(P.Error + Where);
      for (const auto &[B, _] : C.Dims)
        if (B == *A)
          return Fail("duplicate attr line for '" + Name + "'" + Where);
      C.Dims.emplace_back(*A, N);
    } else if (Kw == "tensor") {
      std::string Name, FmtName;
      if (!(Ls >> Name >> FmtName))
        return Fail("tensor needs a name and a format" + Where);
      auto Fmt = fuzzFormatByName(FmtName);
      if (!Fmt)
        return Fail("unknown format '" + FmtName + "'" + Where);
      FuzzTensor T;
      T.Name = Name;
      T.Fmt = *Fmt;
      std::string AttrName;
      while (Ls >> AttrName) {
        auto A = P.attrByName(AttrName);
        if (!A)
          return Fail("unknown attribute '" + AttrName + "'" + Where);
        T.Shp.push_back(*A);
      }
      if (static_cast<int>(T.Shp.size()) != fuzzFormatArity(*Fmt))
        return Fail("format " + FmtName + " needs " +
                    std::to_string(fuzzFormatArity(*Fmt)) + " attributes" +
                    Where);
      C.Tensors.push_back(std::move(T));
    } else if (Kw == "entry") {
      if (C.Tensors.empty())
        return Fail("entry before any tensor" + Where);
      FuzzTensor &T = C.Tensors.back();
      size_t Arity = T.Shp.size();
      std::vector<std::string> Toks;
      std::string Tok;
      while (Ls >> Tok)
        Toks.push_back(Tok);
      if (Toks.size() != Arity + 1)
        return Fail("entry needs " + std::to_string(Arity) +
                    " coordinates and a value" + Where);
      FuzzEntry E;
      for (size_t I = 0; I < Arity; ++I) {
        Idx X = 0;
        if (!P.parseIdx(Toks[I], X))
          return Fail(P.Error + Where);
        E.Coords.push_back(X);
      }
      if (!P.parseVal(Toks.back(), E.Val))
        return Fail(P.Error + Where);
      T.Entries.push_back(std::move(E));
    } else if (Kw == "expr") {
      if (C.E)
        return Fail("duplicate expr line" + Where);
      std::string Rest;
      std::getline(Ls, Rest);
      P.Src = Rest;
      P.Pos = 0;
      C.E = P.parseExpr();
      if (!C.E)
        return Fail(P.Error + Where);
      P.skipWs();
      if (P.Pos < P.Src.size())
        return Fail("trailing garbage after expression" + Where);
    } else {
      return Fail("unknown directive '" + Kw + "'" + Where);
    }
  }
  if (!SawHeader)
    return Fail("missing 'etch-fuzz-case v1' header");
  if (C.SemiringName.empty())
    return Fail("missing semiring line");
  if (!C.E)
    return Fail("missing expr line");
  return C;
}

bool etch::writeCaseFile(const std::string &Path, const FuzzCase &C,
                         const std::string &Comment) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << serializeCase(C, Comment);
  return static_cast<bool>(Out);
}

std::optional<FuzzCase> etch::readCaseFile(const std::string &Path,
                                           std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseCase(Buf.str(), Err);
}
